package patlabor

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI builds and runs a command of this module with `go run`.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLINetgenAndRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test (builds binaries)")
	}
	dir := t.TempDir()
	out := runCLI(t, "./cmd/netgen", "-o", dir, "-designs", "1", "-nets", "4")
	if !strings.Contains(out, "synth01.nets") {
		t.Fatalf("netgen output: %s", out)
	}
	netsFile := filepath.Join(dir, "synth01.nets")
	if _, err := os.Stat(netsFile); err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"patlabor", "salt", "ysd", "pd", "ks"} {
		out = runCLI(t, "./cmd/patlabor", "-nets", netsFile, "-method", method)
		if !strings.Contains(out, "Pareto solutions") {
			t.Fatalf("%s router output: %s", method, out)
		}
	}
}

func TestCLIGadget(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	out := runCLI(t, "./cmd/netgen", "-o", dir, "-gadget", "2")
	if !strings.Contains(out, "sgadget_m2") {
		t.Fatalf("gadget output: %s", out)
	}
	out = runCLI(t, "./cmd/patlabor", "-nets", filepath.Join(dir, "sgadget_m2.nets"))
	// m=2 gadget has at least 4 Pareto solutions.
	if !strings.Contains(out, "Pareto solutions") {
		t.Fatalf("router output: %s", out)
	}
}

func TestCLILutgenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	route := func(table string) []Candidate {
		t.Helper()
		net := NewNet(Pt(0, 0), Pt(10, 4), Pt(3, 9), Pt(8, 1))
		cands, err := Route(net, Options{TablePath: table})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactFrontier(net)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != len(exact) {
			t.Fatalf("table-backed route %d candidates, exact %d", len(cands), len(exact))
		}
		return cands
	}

	// Default output is the flat zero-copy format.
	flat := filepath.Join(dir, "t.plut")
	out := runCLI(t, "./cmd/lutgen", "-degrees", "4", "-o", flat, "-check")
	if !strings.Contains(out, "degree 4:") || !strings.Contains(out, "(flat,") {
		t.Fatalf("lutgen output: %s", out)
	}
	route(flat)

	// The legacy gob format still writes and loads.
	gobTable := filepath.Join(dir, "t.gob")
	out = runCLI(t, "./cmd/lutgen", "-degrees", "4", "-o", gobTable, "-format", "gob", "-check")
	if !strings.Contains(out, "(gob,") {
		t.Fatalf("lutgen gob output: %s", out)
	}
	route(gobTable)

	// -convert migrates gob -> flat.
	converted := filepath.Join(dir, "converted.plut")
	runCLI(t, "./cmd/lutgen", "-convert", gobTable, "-o", converted, "-check")
	route(converted)
}

func TestCLILutgenShardMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	const shards = 2
	paths := make([]string, shards)
	for s := 0; s < shards; s++ {
		paths[s] = filepath.Join(dir, "shard"+string(rune('0'+s))+".plut")
		out := runCLI(t, "./cmd/lutgen", "-degrees", "4", "-shard",
			string(rune('0'+s))+"/2", "-o", paths[s], "-check")
		if !strings.Contains(out, "shard") {
			t.Fatalf("shard %d output: %s", s, out)
		}
	}
	// Merging a strict subset fails, naming the missing shards.
	out := runCLIErr(t, "./cmd/lutgen", "-merge", "-o", filepath.Join(dir, "bad.plut"), paths[0])
	if !strings.Contains(out, "missing shards [1]") {
		t.Fatalf("partial merge output: %s", out)
	}
	// The full merge covers the degree and routes exactly.
	merged := filepath.Join(dir, "merged.plut")
	runCLI(t, append([]string{"./cmd/lutgen", "-merge", "-degrees", "4", "-check", "-o", merged}, paths...)...)
	net := NewNet(Pt(0, 0), Pt(10, 4), Pt(3, 9), Pt(8, 1))
	cands, err := Route(net, Options{TablePath: merged})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactFrontier(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(exact) {
		t.Fatalf("merged-table route %d candidates, exact %d", len(cands), len(exact))
	}
}

func TestCLIExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	out := runCLI(t, "./cmd/experiments", "-quick", "-exp", "thm1")
	if !strings.Contains(out, "Theorem 1") {
		t.Fatalf("experiments output: %s", out)
	}
}

// runCLIErr runs a command expecting failure; it returns combined output.
func runCLIErr(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v succeeded, want failure\n%s", args, out)
	}
	return string(out)
}

func TestCLIMethodTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	runCLI(t, "./cmd/netgen", "-o", dir, "-designs", "1", "-nets", "4")
	netsFile := filepath.Join(dir, "synth01.nets")

	// A generous timeout routes end to end.
	out := runCLI(t, "./cmd/patlabor", "-nets", netsFile, "-method", "salt", "-timeout", "30s")
	if !strings.Contains(out, "Pareto solutions") {
		t.Fatalf("salt with timeout: %s", out)
	}
	// An expired deadline aborts the batch with a context error.
	out = runCLIErr(t, "./cmd/patlabor", "-nets", netsFile, "-method", "salt", "-timeout", "1ns")
	if !strings.Contains(out, "deadline exceeded") {
		t.Fatalf("expired deadline output: %s", out)
	}
	// -timeout also bounds the experiment driver.
	out = runCLIErr(t, "./cmd/experiments", "-quick", "-exp", "thm1", "-timeout", "1ns")
	if !strings.Contains(out, "deadline exceeded") {
		t.Fatalf("experiments expired deadline output: %s", out)
	}
}

func TestCLIPatlint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	// The repository itself lints clean (the CI gate).
	out := runCLI(t, "./cmd/patlint", "./...")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("patlint on clean repo produced output:\n%s", out)
	}
	// Every seeded-violation fixture makes the driver exit nonzero with
	// diagnostics in the canonical format.
	for _, fixture := range []string{"exactness", "determinism", "sorthygiene", "ctxrules", "ignore"} {
		out = runCLIErr(t, "./cmd/patlint", "internal/patlint/testdata/"+fixture)
		if !strings.Contains(out, "patlint(") {
			t.Fatalf("fixture %s: no diagnostics in output:\n%s", fixture, out)
		}
	}
	// The allowlisted-package fixture exits zero: floats are fine there.
	out = runCLI(t, "./cmd/patlint", "internal/patlint/testdata/allowed")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("patlint on allowed fixture produced output:\n%s", out)
	}
}
