package salt

import (
	"math"
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestBuildRespectsShallownessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(20)
		net := randNet(rng, n, 200)
		for _, eps := range []float64{0, 0.1, 0.5, 1, 2} {
			tr := Build(net, eps)
			if err := tr.Validate(net); err != nil {
				t.Fatalf("trial %d eps %v: %v", trial, eps, err)
			}
			delays := tr.SinkDelays()
			for pin := 1; pin < n; pin++ {
				bound := (1 + eps) * float64(geom.Dist(net.Source(), net.Pins[pin]))
				if float64(delays[pin]) > bound+1e-9 {
					t.Fatalf("trial %d eps %v pin %d: delay %d exceeds bound %.1f",
						trial, eps, pin, delays[pin], bound)
				}
			}
		}
	}
}

func TestBuildEpsZeroIsShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		net := randNet(rng, 4+rng.Intn(12), 150)
		tr := Build(net, 0)
		if tr.MaxDelay() != rsma.MinDelay(net) {
			t.Fatalf("trial %d: eps=0 delay %d, want %d", trial, tr.MaxDelay(), rsma.MinDelay(net))
		}
	}
}

func TestBuildEpsInfIsSMT(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		net := randNet(rng, 4+rng.Intn(6), 100)
		tr := Build(net, math.Inf(1))
		smt := rsmt.Tree(net)
		if tr.Wirelength() > smt.Wirelength() {
			t.Fatalf("trial %d: eps=inf wirelength %d exceeds SMT %d",
				trial, tr.Wirelength(), smt.Wirelength())
		}
	}
}

func TestSweepIsFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 15; trial++ {
		net := randNet(rng, 5+rng.Intn(15), 200)
		items := Sweep(net, nil)
		if len(items) == 0 {
			t.Fatal("empty sweep")
		}
		sols := make([]pareto.Sol, len(items))
		for i, it := range items {
			sols[i] = it.Sol
			if err := it.Val.Validate(net); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if it.Val.Sol() != it.Sol {
				t.Fatalf("trial %d: objective mismatch", trial)
			}
		}
		if !pareto.IsFrontier(sols) {
			t.Fatalf("trial %d: sweep not a canonical frontier: %v", trial, sols)
		}
	}
}

func TestRebalanceDoesNotModifyInput(t *testing.T) {
	net := randNet(rand.New(rand.NewSource(65)), 8, 100)
	base := rsmt.Tree(net)
	w, d := base.Wirelength(), base.MaxDelay()
	_ = Rebalance(base, net, 0)
	if base.Wirelength() != w || base.MaxDelay() != d {
		t.Fatal("Rebalance modified its input tree")
	}
}

func TestSweepContainsExactRSMTEndpoint(t *testing.T) {
	// For degrees where the RSMT engine is exact, the sweep's cheapest
	// solution must be exactly the minimum wirelength.
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		net := randNet(rng, 4+rng.Intn(4), 120) // 4..7 <= rsmt.ExactDegree
		items := Sweep(net, nil)
		if items[0].Sol.W != rsmt.Wirelength(net) {
			t.Fatalf("trial %d: sweep min wire %d, RSMT %d",
				trial, items[0].Sol.W, rsmt.Wirelength(net))
		}
	}
}
