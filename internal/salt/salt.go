// Package salt implements the SALT baseline [5] (Chen & Young): Steiner
// shallow-light trees controlled by a tradeoff parameter ε. SALT starts
// from a Steiner minimal tree and enforces, with a KRY-style traversal,
// that every sink's tree path is at most (1+ε) times its L1 distance from
// the source, breaking the budget by shortcutting the offending sink to
// the source. Post-processing (delay-preserving Steinerisation and a
// Steiner-relocation variant) recovers wirelength, as in SALT's refinement
// stage.
//
// ε → ∞ reproduces the SMT; ε = 0 forces a shortest-path tree. Sweeping ε
// produces the Pareto set the paper compares against (SALT generates one
// tree per parameter value; the sweep is how "SALT with different
// parameters" obtains a solution set in §VI).
package salt

import (
	"math"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

// Build constructs a shallow-light tree with parameter eps >= 0. The
// returned tree satisfies pathlen(v) <= (1+eps)·‖r−v‖₁ for every sink v.
func Build(net tree.Net, eps float64) *tree.Tree {
	t := rsmt.Tree(net)
	return Rebalance(t, net, eps)
}

// Rebalance enforces the (1+eps) shallowness bound on a copy of t by
// shortcutting breaching sinks to the source, then Steinerises. The input
// tree is not modified.
func Rebalance(t *tree.Tree, net tree.Net, eps float64) *tree.Tree {
	ev := tree.GetEvaluator()
	out := RebalanceWith(t, net, eps, ev)
	tree.PutEvaluator(ev)
	return out
}

// RebalanceWith is Rebalance evaluating through ev's scratch, for callers
// (the local search, Sweep) that rebalance across a whole ε grid with one
// evaluator. Path lengths are computed interleaved with the shortcut
// edits — a shortcut shortens the path of every downstream sink — so the
// traversal order is snapshotted before any edit, exactly as the
// original single-pass formulation.
func RebalanceWith(t *tree.Tree, net tree.Net, eps float64, ev *tree.Evaluator) *tree.Tree {
	out := t.Clone()
	src := net.Source()
	ev.Load(out)
	pl := ev.LengthScratch(out.Len())
	for _, v := range ev.Order() {
		p := out.Parent[v]
		if p < 0 {
			continue
		}
		pl[v] = pl[p] + geom.Dist(out.Nodes[v].P, out.Nodes[p].P)
		nd := out.Nodes[v]
		if nd.Pin < 1 {
			continue
		}
		direct := geom.Dist(src, nd.P)
		if float64(pl[v]) > (1+eps)*float64(direct) {
			// Breach: shortcut the sink straight to the source.
			out.Parent[v] = out.Root
			pl[v] = direct
		}
	}
	out.CompactWith(ev)
	out.SteinerizeWith(ev)
	return out
}

// DefaultEpsilons is the parameter grid used when sweeping SALT to obtain
// a solution set. It spans shortest-path trees (0) to the pure SMT (+Inf).
func DefaultEpsilons() []float64 {
	return []float64{0, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 0.9, 1.3, 2, 3, 5, math.Inf(1)}
}

// Sweep runs SALT across the parameter grid and returns the Pareto set of
// the produced trees (including Steiner-relocation variants).
func Sweep(net tree.Net, epsilons []float64) []pareto.Item[*tree.Tree] {
	if len(epsilons) == 0 {
		epsilons = DefaultEpsilons()
	}
	ev := tree.GetEvaluator()
	defer tree.PutEvaluator(ev)
	set := &pareto.Set[*tree.Tree]{}
	base := rsmt.Tree(net)
	for _, eps := range epsilons {
		t := RebalanceWith(base, net, eps, ev)
		set.Add(ev.Sol(t), t)
		// Wirelength-greedy variant: relocating Steiner points may trade
		// delay for wirelength; offer it as another candidate.
		v := t.Clone()
		if v.RelocateSteinersWith(ev) {
			v.SteinerizeWith(ev)
			set.Add(ev.Sol(v), v)
		}
	}
	return set.Items()
}
