package dw

import (
	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// bruteFrontier computes the exact Pareto frontier of a small net by
// exhaustive enumeration, entirely independently of the dynamic program:
// it tries every subset of at most degree-2 Steiner candidates from the
// Hanan grid and every labelled spanning tree (via Prüfer sequences) over
// pins plus chosen Steiner points. Only practical for degree <= 4.
func bruteFrontier(net tree.Net) []pareto.Sol {
	n := net.Degree()
	g := hanan.NewGrid(net.Pins)
	pinSet := map[geom.Point]bool{}
	for _, p := range net.Pins {
		pinSet[p] = true
	}
	var candidates []geom.Point
	for idx := 0; idx < g.NumNodes(); idx++ {
		p := g.Point(idx)
		if !pinSet[p] {
			candidates = append(candidates, p)
		}
	}
	maxSteiner := n - 2
	if maxSteiner < 0 {
		maxSteiner = 0
	}
	var all []pareto.Sol
	var chosen []geom.Point
	var rec func(start int)
	rec = func(start int) {
		all = append(all, enumerateTrees(net, chosen)...)
		if len(chosen) == maxSteiner {
			return
		}
		for i := start; i < len(candidates); i++ {
			chosen = append(chosen, candidates[i])
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec(0)
	return pareto.Filter(all)
}

// enumerateTrees evaluates every labelled spanning tree over the given
// vertex set (pins first, then Steiner points) and returns the objective
// vectors.
func enumerateTrees(net tree.Net, steiner []geom.Point) []pareto.Sol {
	pts := append(append([]geom.Point(nil), net.Pins...), steiner...)
	k := len(pts)
	nPins := net.Degree()
	var out []pareto.Sol
	if k == 1 {
		return []pareto.Sol{{W: 0, D: 0}}
	}
	if k == 2 {
		d := geom.Dist(pts[0], pts[1])
		return []pareto.Sol{{W: d, D: d}}
	}
	// All Prüfer sequences of length k-2 over k labels.
	seq := make([]int, k-2)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(seq) {
			if sol, ok := evalPrufer(pts, nPins, seq); ok {
				out = append(out, sol)
			}
			return
		}
		for v := 0; v < k; v++ {
			seq[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return out
}

// evalPrufer decodes a Prüfer sequence into a tree on pts and evaluates
// (wirelength, delay from vertex 0 to vertices 1..nPins-1).
func evalPrufer(pts []geom.Point, nPins int, seq []int) (pareto.Sol, bool) {
	k := len(pts)
	deg := make([]int, k)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range seq {
		deg[v]++
	}
	type edge struct{ a, b int }
	edges := make([]edge, 0, k-1)
	used := make([]bool, k)
	for _, v := range seq {
		leaf := -1
		for u := 0; u < k; u++ {
			if deg[u] == 1 && !used[u] {
				leaf = u
				break
			}
		}
		edges = append(edges, edge{leaf, v})
		used[leaf] = true
		deg[v]--
	}
	last := make([]int, 0, 2)
	for u := 0; u < k; u++ {
		if !used[u] && deg[u] == 1 {
			last = append(last, u)
		}
	}
	edges = append(edges, edge{last[0], last[1]})

	adj := make([][]int, k)
	var w int64
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
		w += geom.Dist(pts[e.a], pts[e.b])
	}
	// BFS path lengths from vertex 0.
	dist := make([]int64, k)
	seen := make([]bool, k)
	seen[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				dist[v] = dist[u] + geom.Dist(pts[u], pts[v])
				queue = append(queue, v)
			}
		}
	}
	var d int64
	for v := 1; v < nPins; v++ {
		if dist[v] > d {
			d = dist[v]
		}
	}
	return pareto.Sol{W: w, D: d}, true
}
