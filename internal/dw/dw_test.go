package dw

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestFrontierDegree1(t *testing.T) {
	net := tree.Net{Pins: []geom.Point{geom.Pt(3, 4)}}
	items, err := Frontier(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Sol != (pareto.Sol{W: 0, D: 0}) {
		t.Fatalf("degree-1 frontier = %v", items)
	}
	if err := items[0].Val.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierDegree2(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 7))
	items, err := Frontier(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Sol != (pareto.Sol{W: 12, D: 12}) {
		t.Fatalf("degree-2 frontier = %v", items)
	}
	if err := items[0].Val.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierCollinear(t *testing.T) {
	// Three collinear pins: a single solution (the straight line).
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0))
	sols, err := FrontierSols(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0] != (pareto.Sol{W: 10, D: 10}) {
		t.Fatalf("collinear frontier = %v", sols)
	}
}

func TestFrontierLShape(t *testing.T) {
	// Source (0,0), sinks (10,0) and (10,10): the path through (10,0) is
	// simultaneously optimal in both objectives.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10))
	sols, err := FrontierSols(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0] != (pareto.Sol{W: 20, D: 20}) {
		t.Fatalf("L-shape frontier = %v", sols)
	}
}

func TestFrontierKnownTradeoff(t *testing.T) {
	// Source in the middle, two sinks on opposite sides, one far sink
	// reachable via a shared trunk or directly: constructed so the RSMT
	// and the SPT differ.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(10, -1), geom.Pt(20, 0))
	sols, err := FrontierSols(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) < 1 {
		t.Fatal("empty frontier")
	}
	truth := bruteFrontier(net)
	assertSameFrontier(t, sols, truth)
}

func assertSameFrontier(t *testing.T, got, want []pareto.Sol) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("frontier size %d, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier mismatch at %d\n got: %v\nwant: %v", i, got, want)
		}
	}
}

func TestFrontierMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(2) // 3 or 4 pins
		net := randNet(rng, n, 12)
		got, err := FrontierSols(net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := bruteFrontier(net)
		if len(got) != len(want) {
			t.Fatalf("trial %d (net %v): got %v, want %v", trial, net.Pins, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (net %v): got %v, want %v", trial, net.Pins, got, want)
			}
		}
	}
}

func TestFrontierTreesMatchSols(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5) // 2..6 pins
		net := randNet(rng, n, 30)
		items, err := Frontier(net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Fatalf("trial %d: empty frontier", trial)
		}
		for _, it := range items {
			if err := it.Val.Validate(net); err != nil {
				t.Fatalf("trial %d: invalid tree: %v", trial, err)
			}
			if got := it.Val.Sol(); got != it.Sol {
				t.Fatalf("trial %d: tree objectives %v != reported %v (net %v)",
					trial, got, it.Sol, net.Pins)
			}
		}
		if !pareto.IsFrontier(sols(items)) {
			t.Fatalf("trial %d: result is not a canonical frontier", trial)
		}
	}
}

func sols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestPruningsDoNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	variants := []Options{
		{},
		{PruneCorners: true},
		{ProjectOutside: true},
		{BoundarySplits: true},
		{PruneCorners: true, ProjectOutside: true},
		{PruneCorners: true, BoundarySplits: true},
		{ProjectOutside: true, BoundarySplits: true},
		DefaultOptions(),
	}
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4) // 3..6 pins
		net := randNet(rng, n, 40)
		ref, err := FrontierSols(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range variants {
			got, err := FrontierSols(net, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("trial %d opts %+v: %v, want %v (net %v)", trial, opt, got, ref, net.Pins)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d opts %+v: %v, want %v (net %v)", trial, opt, got, ref, net.Pins)
				}
			}
		}
	}
}

func TestFrontierDuplicatePins(t *testing.T) {
	// Two sinks at the same point, plus a sink on the source.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(0, 0))
	items, err := Frontier(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Sol != (pareto.Sol{W: 10, D: 10}) {
		t.Fatalf("duplicate-pin frontier = %v", sols(items))
	}
	if err := items[0].Val.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierEndpointsAreOptima(t *testing.T) {
	// The frontier's first point minimises W (the RSMT wirelength) and its
	// last point minimises D (the shortest-path delay = max L1 distance).
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		net := randNet(rng, n, 50)
		sols, err := FrontierSols(net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		last := sols[len(sols)-1]
		var spt int64
		for _, p := range net.Sinks() {
			if d := geom.Dist(net.Source(), p); d > spt {
				spt = d
			}
		}
		if last.D != spt {
			t.Fatalf("trial %d: min delay %d, want SPT bound %d (net %v)",
				trial, last.D, spt, net.Pins)
		}
		// Min wirelength must not exceed the star's and must be at least
		// the HPWL lower bound... HPWL is a lower bound for RSMT.
		star := tree.Star(net).Wirelength()
		if sols[0].W > star {
			t.Fatalf("trial %d: min wirelength %d exceeds star %d", trial, sols[0].W, star)
		}
		if sols[0].W < geom.HPWL(net.Pins...) {
			t.Fatalf("trial %d: min wirelength %d below HPWL bound %d", trial, sols[0].W, geom.HPWL(net.Pins...))
		}
	}
}

func TestFrontierDegreeTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := randNet(rng, MaxExactDegree+1, 100)
	if _, err := Frontier(net, DefaultOptions()); err == nil {
		t.Fatal("expected an error for oversized degree")
	}
}

func TestFrontierEmptyNet(t *testing.T) {
	if _, err := Frontier(tree.Net{}, DefaultOptions()); err == nil {
		t.Fatal("expected an error for an empty net")
	}
}

func TestFrontierDegree7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 5; trial++ {
		net := randNet(rng, 7, 100)
		items, err := Frontier(net, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if err := it.Val.Validate(net); err != nil {
				t.Fatal(err)
			}
			if it.Val.Sol() != it.Sol {
				t.Fatalf("objective mismatch: %v vs %v", it.Val.Sol(), it.Sol)
			}
		}
	}
}
