// Package dw implements Pareto-DW (§IV-A of the paper): an exact dynamic
// program over the Hanan grid that computes the full Pareto frontier of
// timing-driven routing trees for a net, together with one tree per
// frontier point.
//
// The state S_{v,Q} is the Pareto set of (wirelength, delay) objective
// vectors of trees rooted at grid node v spanning the sink subset Q.
// Recurrence (1) of the paper:
//
//	S_{v,Q} = Pareto( ∪_u  S_{u,Q} + ‖u−v‖₁ ,            (extension)
//	                  ∪_{Q₁⊂Q} S_{v,Q₁} ⊕ S_{v,Q\Q₁} )    (merge)
//
// Subsets are processed in increasing popcount order; every solution keeps
// a backpointer so the corresponding tree can be reconstructed exactly.
//
// The three pruning lemmas of §V-A are implemented and independently
// switchable for ablation studies:
//
//	Lemma 2 — corner grid nodes (no pin weakly dominating them in one of
//	          the four quadrant orders) are removed from the grid.
//	Lemma 3 — for v outside the bounding box of Q, S_{v,Q} is derived by
//	          projecting v onto BB(Q) instead of scanning all nodes.
//	Lemma 4 — when all sinks of Q lie on the grid boundary, only splits
//	          into circularly consecutive runs are enumerated.
package dw

import (
	"context"
	"fmt"
	"math/bits"
	"slices"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Options controls the pruning techniques of the dynamic program. All
// prunings are safe: results are identical with any combination, only the
// running time changes.
type Options struct {
	PruneCorners   bool // Lemma 2
	ProjectOutside bool // Lemma 3
	BoundarySplits bool // Lemma 4
}

// DefaultOptions enables every pruning.
func DefaultOptions() Options {
	return Options{PruneCorners: true, ProjectOutside: true, BoundarySplits: true}
}

// MaxExactDegree is the largest net degree Frontier accepts. The DP is
// exponential in the degree; beyond this the practical method's local
// search (internal/core) must be used.
const MaxExactDegree = 16

// Frontier computes the exact Pareto frontier of the net and one optimal
// tree per frontier point, in canonical frontier order.
func Frontier(net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	return FrontierContext(context.Background(), net, opts)
}

// FrontierContext is Frontier with cancellation: the context is checked
// once per sink-subset of the dynamic program, so an expired deadline
// aborts within one subset's worth of work.
func FrontierContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	c, err := newComputation(net, opts)
	if err != nil {
		return nil, err
	}
	entries, err := c.run(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]pareto.Item[*tree.Tree], len(entries))
	for i, e := range entries {
		t := c.reconstruct(e)
		out[i] = pareto.Item[*tree.Tree]{Sol: pareto.Sol{W: c.arena[e].w, D: c.arena[e].d}, Val: t}
	}
	return out, nil
}

// FrontierSols computes only the objective vectors of the exact Pareto
// frontier (no tree reconstruction).
func FrontierSols(net tree.Net, opts Options) ([]pareto.Sol, error) {
	return FrontierSolsContext(context.Background(), net, opts)
}

// FrontierSolsContext is FrontierSols with cancellation (see
// FrontierContext).
func FrontierSolsContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Sol, error) {
	c, err := newComputation(net, opts)
	if err != nil {
		return nil, err
	}
	entries, err := c.run(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]pareto.Sol, len(entries))
	for i, e := range entries {
		out[i] = pareto.Sol{W: c.arena[e].w, D: c.arena[e].d}
	}
	return out, nil
}

type entKind uint8

const (
	kBase  entKind = iota // a single sink at its own node
	kExt                  // extension: edge from node b to this state's node
	kMerge                // union of two subtrees rooted at the same node
)

// ent is one solution with its backpointer. For kExt, a is the child entry
// and b the node extended from; for kMerge, a and b are the child entries;
// for kBase, sink is the pin index realised.
type ent struct {
	w, d int64
	a, b int32
	sink int16
	kind entKind
}

type computation struct {
	net     tree.Net
	opts    Options
	grid    *hanan.Grid
	arena   []ent
	nodes   []int // unpruned grid node indices
	keep    []bool
	m       int   // number of distinct sinks
	sinkNd  []int // grid node of each distinct sink
	sinkPt  []geom.Point
	sinkPin []int16       // original pin index of each distinct sink
	dup     map[int][]int // distinct sink -> extra pin indices at same point
	rootNd  int
	// boundary circular order position of each sink, -1 if interior
	boundaryPos []int
	// S[q] maps grid node -> entry indices (canonical frontier order).
	S [][][]int32

	// Per-subset scratch, reused across the 2^m DP steps (the DP runs
	// once per local-search window, so these appends dominated the
	// router's allocation profile before they were hoisted here).
	insideBuf []int      // insideNodes result
	splitsBuf []int      // splits / boundarySplits result
	msBuf     []bdMember // boundarySplits members
	srcsBuf   []int      // extend's non-empty source nodes
	// seenStamp/seenGen replace boundarySplits' per-call map: a submask is
	// "seen" when its stamp equals the current generation.
	seenStamp []int32
	seenGen   int32
}

// bdMember is one sink of a boundary-split enumeration with its position
// in the clockwise boundary walk.
type bdMember struct{ s, pos int }

func newComputation(net tree.Net, opts Options) (*computation, error) {
	n := net.Degree()
	if n == 0 {
		return nil, fmt.Errorf("dw: empty net")
	}
	if n > MaxExactDegree {
		return nil, fmt.Errorf("dw: degree %d exceeds MaxExactDegree %d", n, MaxExactDegree)
	}
	c := &computation{net: net, opts: opts, grid: hanan.NewGrid(net.Pins)}

	// Collapse duplicate sink positions; drop sinks at the source.
	src := net.Source()
	byPoint := map[geom.Point]int{}
	c.dup = map[int][]int{}
	for pin := 1; pin < n; pin++ {
		p := net.Pins[pin]
		if p == src {
			c.dup[-1] = append(c.dup[-1], pin)
			continue
		}
		if k, ok := byPoint[p]; ok {
			c.dup[k] = append(c.dup[k], pin)
			continue
		}
		k := len(c.sinkPt)
		byPoint[p] = k
		c.sinkPt = append(c.sinkPt, p)
		c.sinkPin = append(c.sinkPin, int16(pin))
		nd, err := c.grid.Locate(p)
		if err != nil {
			return nil, err
		}
		c.sinkNd = append(c.sinkNd, nd)
	}
	c.m = len(c.sinkPt)
	if c.m > 62 {
		return nil, fmt.Errorf("dw: too many distinct sinks (%d)", c.m)
	}
	rootNd, err := c.grid.Locate(src)
	if err != nil {
		return nil, err
	}
	c.rootNd = rootNd
	c.computeKeep()
	c.computeBoundary()
	return c, nil
}

// computeKeep applies Lemma 2: a grid node is pruned when one of the four
// quadrant orders contains no pin weakly dominating it.
func (c *computation) computeKeep() {
	nn := c.grid.NumNodes()
	c.keep = make([]bool, nn)
	for idx := 0; idx < nn; idx++ {
		p := c.grid.Point(idx)
		if !c.opts.PruneCorners {
			c.keep[idx] = true
			continue
		}
		var ll, lr, ul, ur bool
		for _, q := range c.net.Pins {
			if q.X <= p.X && q.Y <= p.Y {
				ll = true
			}
			if q.X >= p.X && q.Y <= p.Y {
				lr = true
			}
			if q.X <= p.X && q.Y >= p.Y {
				ul = true
			}
			if q.X >= p.X && q.Y >= p.Y {
				ur = true
			}
		}
		c.keep[idx] = ll && lr && ul && ur
	}
	for idx := 0; idx < nn; idx++ {
		if c.keep[idx] {
			c.nodes = append(c.nodes, idx)
		}
	}
}

// computeBoundary assigns each sink its position in the clockwise walk of
// the grid boundary, or -1 for interior sinks (Lemma 4).
func (c *computation) computeBoundary() {
	c.boundaryPos = make([]int, c.m)
	nx, ny := len(c.grid.Xs), len(c.grid.Ys)
	// Clockwise walk starting at (0,0): up the left edge, right along the
	// top, down the right edge, left along the bottom.
	pos := map[int]int{}
	step := 0
	add := func(i, j int) {
		nd := c.grid.Node(i, j)
		if _, ok := pos[nd]; !ok {
			pos[nd] = step
			step++
		}
	}
	for j := 0; j < ny; j++ {
		add(0, j)
	}
	for i := 1; i < nx; i++ {
		add(i, ny-1)
	}
	for j := ny - 2; j >= 0; j-- {
		add(nx-1, j)
	}
	for i := nx - 2; i >= 1; i-- {
		add(i, 0)
	}
	for s := 0; s < c.m; s++ {
		if p, ok := pos[c.sinkNd[s]]; ok {
			c.boundaryPos[s] = p
		} else {
			c.boundaryPos[s] = -1
		}
	}
}

// run executes the dynamic program and returns the entry indices of the
// final frontier S_{r, all sinks}. The context is checked before every
// sink-subset so cancellation binds within one DP step.
func (c *computation) run(ctx context.Context) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.m == 0 {
		// No distinct sinks: the frontier is the single empty tree.
		c.arena = append(c.arena, ent{w: 0, d: 0, kind: kBase, sink: -1})
		return []int32{0}, nil
	}
	full := (1 << c.m) - 1
	c.S = make([][][]int32, full+1)
	nn := c.grid.NumNodes()

	// Subsets in increasing popcount order.
	order := make([]int, 0, full)
	for q := 1; q <= full; q++ {
		order = append(order, q)
	}
	slices.SortFunc(order, func(a, b int) int {
		if ba, bb := bits.OnesCount(uint(a)), bits.OnesCount(uint(b)); ba != bb {
			return ba - bb
		}
		return a - b
	})

	for _, q := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		Sq := make([][]int32, nn)
		// M: merge/base candidates per node.
		M := make([][]int32, nn)
		if bits.OnesCount(uint(q)) == 1 {
			s := bits.TrailingZeros(uint(q))
			e := c.push(ent{w: 0, d: 0, kind: kBase, sink: int16(s)})
			M[c.sinkNd[s]] = []int32{e}
		} else {
			c.mergeCandidates(q, M)
		}
		c.extend(q, M, Sq)
		c.S[q] = Sq
	}
	return c.stateAt(full, c.rootNd), nil
}

// bbox returns the inclusive rank-coordinate bounding box of the sinks in q.
func (c *computation) bbox(q int) (ilo, jlo, ihi, jhi int) {
	first := true
	for s := 0; s < c.m; s++ {
		if q&(1<<s) == 0 {
			continue
		}
		i, j := c.grid.Coords(c.sinkNd[s])
		if first {
			ilo, jlo, ihi, jhi = i, j, i, j
			first = false
			continue
		}
		if i < ilo {
			ilo = i
		}
		if i > ihi {
			ihi = i
		}
		if j < jlo {
			jlo = j
		}
		if j > jhi {
			jhi = j
		}
	}
	return
}

// insideNodes returns the unpruned grid nodes inside the rank bounding box
// of q (all unpruned nodes when Lemma 3 is disabled). The result aliases
// a scratch buffer valid until the next call.
func (c *computation) insideNodes(q int) []int {
	if !c.opts.ProjectOutside {
		return c.nodes
	}
	ilo, jlo, ihi, jhi := c.bbox(q)
	out := c.insideBuf[:0]
	for j := jlo; j <= jhi; j++ {
		for i := ilo; i <= ihi; i++ {
			nd := c.grid.Node(i, j)
			if c.keep[nd] {
				out = append(out, nd)
			}
		}
	}
	c.insideBuf = out
	return out
}

// mergeCandidates fills M[v] with the Pareto-filtered merge solutions
// S_{v,Q1} ⊕ S_{v,Q2} over the admissible splits of q.
func (c *computation) mergeCandidates(q int, M [][]int32) {
	splits := c.splits(q)
	inside := c.insideNodes(q)
	var cand []ent
	for _, v := range inside {
		cand = cand[:0]
		for _, q1 := range splits {
			q2 := q &^ q1
			s1 := c.stateAt(q1, v)
			s2 := c.stateAt(q2, v)
			for _, e1 := range s1 {
				for _, e2 := range s2 {
					w := c.arena[e1].w + c.arena[e2].w
					d := geom.Max64(c.arena[e1].d, c.arena[e2].d)
					cand = append(cand, ent{w: w, d: d, kind: kMerge, a: e1, b: e2})
				}
			}
		}
		M[v] = c.filterPush(cand)
	}
}

// splits enumerates the submasks q1 of q to merge with q\q1, each
// unordered split exactly once (q1 always contains q's lowest sink).
// With Lemma 4, when every sink of q is on the grid boundary only
// circularly consecutive runs are returned.
func (c *computation) splits(q int) []int {
	low := q & -q
	if c.opts.BoundarySplits && c.allOnBoundary(q) {
		return c.boundarySplits(q, low)
	}
	out := c.splitsBuf[:0]
	for q1 := (q - 1) & q; q1 > 0; q1 = (q1 - 1) & q {
		if q1&low != 0 {
			out = append(out, q1)
		}
	}
	c.splitsBuf = out
	return out
}

func (c *computation) allOnBoundary(q int) bool {
	for s := 0; s < c.m; s++ {
		if q&(1<<s) != 0 && c.boundaryPos[s] < 0 {
			return false
		}
	}
	return true
}

// boundarySplits returns the splits {q1, q\q1} where both sides are
// circularly consecutive in the clockwise boundary order, with q1
// containing the sink of mask low.
func (c *computation) boundarySplits(q, low int) []int {
	// Members sorted by boundary position (positions are distinct — each
	// distinct sink occupies its own grid node).
	ms := c.msBuf[:0]
	for s := 0; s < c.m; s++ {
		if q&(1<<s) != 0 {
			ms = append(ms, bdMember{s, c.boundaryPos[s]})
		}
	}
	c.msBuf = ms
	slices.SortFunc(ms, func(a, b bdMember) int { return a.pos - b.pos })
	k := len(ms)
	if c.seenStamp == nil {
		c.seenStamp = make([]int32, 1<<c.m)
	}
	c.seenGen++
	out := c.splitsBuf[:0]
	// All circular runs of length 1..k-1; keep the side containing low.
	for start := 0; start < k; start++ {
		mask := 0
		for l := 1; l < k; l++ {
			mask |= 1 << ms[(start+l-1)%k].s
			q1 := mask
			if q1&low == 0 {
				q1 = q &^ q1
			}
			if c.seenStamp[q1] != c.seenGen {
				c.seenStamp[q1] = c.seenGen
				out = append(out, q1)
			}
		}
	}
	c.splitsBuf = out
	return out
}

// extend computes the extension closure: S_{v,q} for inside nodes from the
// union over inside u of M_u + dist(u,v). Outside nodes are resolved
// lazily through stateAt (Lemma 3).
func (c *computation) extend(q int, M, Sq [][]int32) {
	inside := c.insideNodes(q)
	// Collect source nodes with non-empty M.
	srcs := c.srcsBuf[:0]
	for _, u := range inside {
		if len(M[u]) > 0 {
			srcs = append(srcs, u)
		}
	}
	c.srcsBuf = srcs
	var cand []ent
	for _, v := range inside {
		cand = cand[:0]
		for _, u := range srcs {
			dist := c.grid.Dist(u, v)
			for _, e := range M[u] {
				cand = append(cand, ent{
					w: c.arena[e].w + dist, d: c.arena[e].d + dist,
					kind: kExt, a: e, b: int32(u),
				})
			}
		}
		Sq[v] = c.filterPush(cand)
	}
	if !c.opts.ProjectOutside {
		return
	}
	// Outside nodes: projection derivation (Lemma 3), computed eagerly so
	// later merges can read any node's state uniformly.
	ilo, jlo, ihi, jhi := c.bbox(q)
	for _, v := range c.nodes {
		i, j := c.grid.Coords(v)
		if i >= ilo && i <= ihi && j >= jlo && j <= jhi {
			continue
		}
		ci, cj := clamp(i, ilo, ihi), clamp(j, jlo, jhi)
		u := c.grid.Node(ci, cj)
		if !c.keep[u] {
			// The projection of an unpruned node onto BB(q) always has a
			// pin in each quadrant (sinks of q supply two sides, the pins
			// witnessing v's quadrants supply the others), so it is never
			// corner-pruned.
			panic("dw: projection target pruned; Lemma 2/3 invariant broken")
		}
		dist := c.grid.Dist(u, v)
		src := Sq[u]
		der := make([]int32, 0, len(src))
		for _, e := range src {
			der = append(der, c.push(ent{
				w: c.arena[e].w + dist, d: c.arena[e].d + dist,
				kind: kExt, a: e, b: int32(u),
			}))
		}
		Sq[v] = der
	}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// stateAt returns S_{q, v}.
func (c *computation) stateAt(q, v int) []int32 {
	return c.S[q][v]
}

func (c *computation) push(e ent) int32 {
	c.arena = append(c.arena, e)
	return int32(len(c.arena) - 1)
}

// filterPush Pareto-filters candidate entries and pushes only the
// survivors into the arena, returning their indices in canonical order
// (w increasing, d strictly decreasing), duplicates dropped.
func (c *computation) filterPush(cand []ent) []int32 {
	if len(cand) == 0 {
		return nil
	}
	slices.SortFunc(cand, func(a, b ent) int {
		if a.w != b.w {
			if a.w < b.w {
				return -1
			}
			return 1
		}
		switch {
		case a.d < b.d:
			return -1
		case a.d > b.d:
			return 1
		}
		return 0
	})
	// Count survivors first so the persistent result is one exact
	// allocation rather than a growth sequence.
	n := 0
	bestD := int64(1<<63 - 1)
	for _, e := range cand {
		if e.d < bestD {
			n++
			bestD = e.d
		}
	}
	out := make([]int32, 0, n)
	bestD = int64(1<<63 - 1)
	for _, e := range cand {
		if e.d < bestD {
			out = append(out, c.push(e))
			bestD = e.d
		}
	}
	return out
}

// reconstruct rebuilds the routing tree of entry e, rooted at the source.
func (c *computation) reconstruct(e int32) *tree.Tree {
	t := tree.New(c.net.Source(), 0)
	c.emit(e, c.rootNd, t.Root, t)
	// Attach duplicate pins: sinks co-located with the source...
	for _, pin := range c.dup[-1] {
		t.Add(c.net.Source(), pin, t.Root)
	}
	// ...and sinks co-located with another sink, attached with zero-length
	// edges at their shared position. Iterate distinct sinks by index, not
	// by ranging c.dup: map order would make the node order of trees with
	// duplicate pins depend on the iteration seed.
	for k := 0; k < c.m; k++ {
		for _, pin := range c.dup[k] {
			// Find a tree node at the sink position.
			at := -1
			for i, nd := range t.Nodes {
				if nd.P == c.sinkPt[k] {
					at = i
					break
				}
			}
			if at < 0 {
				at = t.Root // unreachable in valid reconstructions
			}
			t.Add(c.sinkPt[k], pin, at)
		}
	}
	t.Compact()
	return t
}

// emit materialises entry e as a subtree hanging off tree node atNode,
// where atNode is positioned at grid node v.
func (c *computation) emit(e int32, v int, atNode int, t *tree.Tree) {
	en := c.arena[e]
	switch en.kind {
	case kBase:
		if en.sink < 0 {
			return
		}
		pt := c.sinkPt[en.sink]
		pin := int(c.sinkPin[en.sink])
		if t.Nodes[atNode].P == pt && t.Nodes[atNode].IsSteiner() {
			t.Nodes[atNode].Pin = pin
			return
		}
		t.Add(pt, pin, atNode)
	case kExt:
		u := int(en.b)
		child := t.Add(c.grid.Point(u), -1, atNode)
		c.emit(en.a, u, child, t)
	case kMerge:
		c.emit(en.a, v, atNode, t)
		c.emit(en.b, v, atNode, t)
	}
}
