package groute

import (
	"math/rand"
	"strings"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func mustGrid(t *testing.T, nx, ny int, cw, ch int64, cap int) *Grid {
	t.Helper()
	g, err := NewGrid(nx, ny, cw, ch, cap)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5, 10, 10, 1); err == nil {
		t.Fatal("zero-width grid accepted")
	}
	if _, err := NewGrid(5, 5, 0, 10, 1); err == nil {
		t.Fatal("zero cell accepted")
	}
	if _, err := NewGrid(5, 5, 10, 10, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestCellOfClamps(t *testing.T) {
	g := mustGrid(t, 4, 4, 10, 10, 1)
	if x, y := g.CellOf(geom.Pt(-5, 500)); x != 0 || y != 3 {
		t.Fatalf("CellOf = %d,%d", x, y)
	}
	if x, y := g.CellOf(geom.Pt(25, 5)); x != 2 || y != 0 {
		t.Fatalf("CellOf = %d,%d", x, y)
	}
}

func TestEmbedStraightWire(t *testing.T) {
	g := mustGrid(t, 5, 5, 10, 10, 1)
	// Horizontal wire across 3 cells at row 0.
	net := tree.NewNet(geom.Pt(5, 5), geom.Pt(35, 5))
	tr := tree.Star(net)
	g.Add(tr)
	// Cells 0->3 in row 0: crossings 0-1, 1-2, 2-3.
	used := 0
	for _, u := range g.hUse {
		used += u
	}
	if used != 3 {
		t.Fatalf("horizontal crossings = %d, want 3", used)
	}
	for _, u := range g.vUse {
		if u != 0 {
			t.Fatal("vertical usage on a horizontal wire")
		}
	}
	g.Remove(tr)
	if g.MaxUse() != 0 {
		t.Fatal("Remove did not restore usage")
	}
}

func TestEmbedLShape(t *testing.T) {
	g := mustGrid(t, 5, 5, 10, 10, 0)
	net := tree.NewNet(geom.Pt(5, 5), geom.Pt(25, 35))
	g.Add(tree.Star(net))
	// L: horizontal row 0 cells 0->2 (2 crossings), vertical column 2
	// rows 0->3 (3 crossings). With cap 0 every crossing overflows.
	if g.Overflow() != 5 {
		t.Fatalf("overflow = %d, want 5", g.Overflow())
	}
}

func TestAddRemoveRandomRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := mustGrid(t, 8, 8, 100, 100, 2)
	var trees []*tree.Tree
	for i := 0; i < 20; i++ {
		pins := make([]geom.Point, 2+rng.Intn(5))
		for j := range pins {
			pins[j] = geom.Pt(rng.Int63n(800), rng.Int63n(800))
		}
		tr := tree.Star(tree.Net{Pins: pins})
		trees = append(trees, tr)
		g.Add(tr)
	}
	for _, tr := range trees {
		g.Remove(tr)
	}
	if g.MaxUse() != 0 || g.Overflow() != 0 {
		t.Fatalf("usage not restored: max %d overflow %d", g.MaxUse(), g.Overflow())
	}
}

// hotspotNets builds nets whose cheap candidates all cross one column,
// while alternative Pareto candidates avoid it.
func hotspotNets(t *testing.T, count int) []NetCandidates {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	var nets []NetCandidates
	for len(nets) < count {
		// Driver east, sinks west spread: rich frontier nets.
		src := geom.Pt(700+rng.Int63n(80), 100+rng.Int63n(600))
		var sinks []geom.Point
		for j := 0; j < 4; j++ {
			sinks = append(sinks, geom.Pt(rng.Int63n(300), 100+rng.Int63n(600)))
		}
		net := tree.NewNet(src, sinks...)
		cands, err := dw.Frontier(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) < 2 {
			continue // the selection tests need a real tradeoff
		}
		nets = append(nets, NetCandidates{Cands: cands})
	}
	return nets
}

func TestSelectReducesOverflowWithCandidates(t *testing.T) {
	nets := hotspotNets(t, 15)
	// Selection restricted to the single cheapest candidate.
	gSingle := mustGrid(t, 8, 8, 100, 100, 3)
	single := make([]NetCandidates, len(nets))
	for i, nc := range nets {
		single[i] = NetCandidates{Cands: nc.Cands[:1]}
	}
	_, resSingle, err := Select(gSingle, single, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Full Pareto selection.
	gFull := mustGrid(t, 8, 8, 100, 100, 3)
	_, resFull, err := Select(gFull, nets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Overflow > resSingle.Overflow {
		t.Fatalf("candidate selection increased overflow: %d vs %d",
			resFull.Overflow, resSingle.Overflow)
	}
}

func TestSelectRespectsBudgets(t *testing.T) {
	nets := hotspotNets(t, 6)
	for i := range nets {
		// Budget = fastest candidate's delay: only it qualifies.
		fastest := nets[i].Cands[len(nets[i].Cands)-1]
		nets[i].Budget = fastest.Sol.D
	}
	g := mustGrid(t, 8, 8, 100, 100, 100)
	choice, res, err := Select(g, nets, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMiss != 0 {
		t.Fatalf("budget misses = %d", res.BudgetMiss)
	}
	for i, ci := range choice {
		if nets[i].Cands[ci].Sol.D > nets[i].Budget {
			t.Fatalf("net %d: chosen delay %d over budget %d",
				i, nets[i].Cands[ci].Sol.D, nets[i].Budget)
		}
	}
}

func TestSelectImpossibleBudgetFallsBack(t *testing.T) {
	nets := hotspotNets(t, 3)
	for i := range nets {
		nets[i].Budget = 1 // unmeetable
	}
	g := mustGrid(t, 8, 8, 100, 100, 100)
	choice, res, err := Select(g, nets, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetMiss != len(nets) {
		t.Fatalf("budget misses = %d, want %d", res.BudgetMiss, len(nets))
	}
	for i, ci := range choice {
		if ci != len(nets[i].Cands)-1 {
			t.Fatalf("net %d: fallback was not the fastest candidate", i)
		}
	}
}

func TestSelectRejectsEmptyCandidates(t *testing.T) {
	g := mustGrid(t, 4, 4, 10, 10, 1)
	if _, _, err := Select(g, []NetCandidates{{}}, 1); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

func TestSelectAccounting(t *testing.T) {
	nets := hotspotNets(t, 5)
	g := mustGrid(t, 8, 8, 100, 100, 3)
	choice, res, err := Select(g, nets, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wire int64
	for i, ci := range choice {
		wire += nets[i].Cands[ci].Sol.W
	}
	if wire != res.TotalWire {
		t.Fatalf("TotalWire %d != recomputed %d", res.TotalWire, wire)
	}
	if res.Overflow != g.Overflow() || res.MaxUse != g.MaxUse() {
		t.Fatal("result does not match final grid state")
	}
	if res.Passes < 1 {
		t.Fatal("no passes recorded")
	}
}

func TestHeatmap(t *testing.T) {
	g := mustGrid(t, 4, 4, 10, 10, 2)
	net := tree.NewNet(geom.Pt(5, 5), geom.Pt(35, 35))
	g.Add(tree.Star(net))
	out := g.Heatmap()
	if !strings.Contains(out, "4x4") || !strings.Contains(out, "capacity 2") {
		t.Fatalf("heatmap = %q", out)
	}
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("heatmap too short:\n%s", out)
	}
	// Zero-capacity grids render without dividing by zero.
	g0 := mustGrid(t, 3, 3, 10, 10, 0)
	g0.Add(tree.Star(net))
	if out := g0.Heatmap(); !strings.Contains(out, "@") {
		t.Fatalf("zero-cap heatmap = %q", out)
	}
}
