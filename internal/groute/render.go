package groute

import (
	"fmt"
	"strings"
)

// Heatmap renders per-cell congestion as ASCII art: each cell shows the
// worst utilisation of its outgoing (east/north) boundary crossings, on
// the scale " .:-=+*#%@" (empty → ≥2× capacity). Row 0 (lowest y) prints
// at the bottom.
func (g *Grid) Heatmap() string {
	const ramp = " .:-=+*#%@"
	level := func(use int) byte {
		if g.Cap == 0 {
			if use > 0 {
				return ramp[len(ramp)-1]
			}
			return ramp[0]
		}
		idx := use * (len(ramp) - 1) / (2 * g.Cap)
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		return ramp[idx]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "congestion heatmap (%dx%d cells, capacity %d)\n", g.NX, g.NY, g.Cap)
	for y := g.NY - 1; y >= 0; y-- {
		b.WriteString("  ")
		for x := 0; x < g.NX; x++ {
			use := 0
			if x < g.NX-1 {
				if u := g.hUse[y*(g.NX-1)+x]; u > use {
					use = u
				}
			}
			if y < g.NY-1 {
				if u := g.vUse[y*g.NX+x]; u > use {
					use = u
				}
			}
			b.WriteByte(level(use))
		}
		b.WriteByte('\n')
	}
	b.WriteString("  scale: ' '=0 … '@'>=2x capacity\n")
	return b.String()
}
