// Package groute is a compact global-routing substrate: a G-cell grid
// with per-edge capacities, tree embedding, overflow accounting and a
// rip-up-and-reselect topology selector that chooses, per net, one
// candidate from a Pareto set under congestion and timing constraints.
//
// It realises the paper's motivating application (§I): "selecting net
// topologies from a candidate solution set may improve the performance of
// global routers" — the selector consumes exactly the candidate sets
// PatLabor produces.
package groute

import (
	"fmt"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Grid is a global-routing grid of NX×NY cells whose boundary crossings
// have uniform capacity Cap. Horizontal edge (x,y)-(x+1,y) and vertical
// edge (x,y)-(x,y+1) usages are tracked separately.
type Grid struct {
	NX, NY       int
	CellW, CellH int64
	Cap          int
	hUse         []int // (NX-1)*NY
	vUse         []int // NX*(NY-1)
}

// NewGrid builds an empty grid. All dimensions must be positive.
func NewGrid(nx, ny int, cellW, cellH int64, capacity int) (*Grid, error) {
	if nx < 1 || ny < 1 || cellW < 1 || cellH < 1 || capacity < 0 {
		return nil, fmt.Errorf("groute: invalid grid %dx%d cell %dx%d cap %d",
			nx, ny, cellW, cellH, capacity)
	}
	return &Grid{
		NX: nx, NY: ny, CellW: cellW, CellH: cellH, Cap: capacity,
		hUse: make([]int, (nx-1)*ny),
		vUse: make([]int, nx*(ny-1)),
	}, nil
}

// CellOf maps a plane point to its grid cell, clamped to the grid.
func (g *Grid) CellOf(p geom.Point) (int, int) {
	x := int(p.X / g.CellW)
	y := int(p.Y / g.CellH)
	return clamp(x, 0, g.NX-1), clamp(y, 0, g.NY-1)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// apply embeds every tree edge as an L-shape in cell space (horizontal
// run first, then vertical at the target column) and adds delta to each
// crossed grid edge.
func (g *Grid) apply(t *tree.Tree, delta int) {
	for i, par := range t.Parent {
		if par < 0 {
			continue
		}
		x1, y1 := g.CellOf(t.Nodes[par].P)
		x2, y2 := g.CellOf(t.Nodes[i].P)
		g.applySegment(x1, y1, x2, y2, delta)
	}
}

func (g *Grid) applySegment(x1, y1, x2, y2, delta int) {
	lo, hi := x1, x2
	if lo > hi {
		lo, hi = hi, lo
	}
	for x := lo; x < hi; x++ {
		g.hUse[y1*(g.NX-1)+x] += delta
	}
	lo, hi = y1, y2
	if lo > hi {
		lo, hi = hi, lo
	}
	for y := lo; y < hi; y++ {
		g.vUse[y*g.NX+x2] += delta
	}
}

// Add embeds the tree, increasing edge usage.
func (g *Grid) Add(t *tree.Tree) { g.apply(t, 1) }

// Remove un-embeds a previously added tree.
func (g *Grid) Remove(t *tree.Tree) { g.apply(t, -1) }

// Overflow returns the total usage above capacity across all grid edges.
func (g *Grid) Overflow() int {
	o := 0
	for _, u := range g.hUse {
		if u > g.Cap {
			o += u - g.Cap
		}
	}
	for _, u := range g.vUse {
		if u > g.Cap {
			o += u - g.Cap
		}
	}
	return o
}

// MaxUse returns the largest single-edge usage.
func (g *Grid) MaxUse() int {
	m := 0
	for _, u := range g.hUse {
		if u > m {
			m = u
		}
	}
	for _, u := range g.vUse {
		if u > m {
			m = u
		}
	}
	return m
}

// marginalCost returns the overflow a tree would add if embedded now.
func (g *Grid) marginalCost(t *tree.Tree) int {
	cost := 0
	count := func(use int) {
		if use >= g.Cap {
			cost++
		}
	}
	for i, par := range t.Parent {
		if par < 0 {
			continue
		}
		x1, y1 := g.CellOf(t.Nodes[par].P)
		x2, y2 := g.CellOf(t.Nodes[i].P)
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		for x := lo; x < hi; x++ {
			count(g.hUse[y1*(g.NX-1)+x])
		}
		lo, hi = y1, y2
		if lo > hi {
			lo, hi = hi, lo
		}
		for y := lo; y < hi; y++ {
			count(g.vUse[y*g.NX+x2])
		}
	}
	return cost
}

// NetCandidates is one net's Pareto candidate set plus an optional delay
// budget (0 = unconstrained). Candidates must be in canonical order.
type NetCandidates struct {
	Cands  []pareto.Item[*tree.Tree]
	Budget int64
}

// Result summarises a topology selection.
type Result struct {
	Overflow   int
	MaxUse     int
	TotalWire  int64
	BudgetMiss int
	Passes     int
}

// Select picks one candidate per net minimising (overflow, wirelength)
// subject to each net's delay budget, by greedy insertion followed by
// rip-up-and-reselect passes. It returns the chosen candidate index per
// net and the final accounting. Nets whose budget no candidate meets use
// their fastest candidate and count as budget misses.
func Select(g *Grid, nets []NetCandidates, passes int) ([]int, Result, error) {
	choice := make([]int, len(nets))
	for i, nc := range nets {
		if len(nc.Cands) == 0 {
			return nil, Result{}, fmt.Errorf("groute: net %d has no candidates", i)
		}
		choice[i] = pickInitial(nc)
		g.Add(nc.Cands[choice[i]].Val)
	}
	if passes < 1 {
		passes = 3
	}
	done := 0
	for pass := 0; pass < passes; pass++ {
		changed := false
		for i, nc := range nets {
			if len(nc.Cands) == 1 {
				continue
			}
			cur := choice[i]
			g.Remove(nc.Cands[cur].Val)
			best, bestCost, bestW := -1, 0, int64(0)
			for ci, c := range nc.Cands {
				if !meets(nc, ci) {
					continue
				}
				cost := g.marginalCost(c.Val)
				if best < 0 || cost < bestCost || (cost == bestCost && c.Sol.W < bestW) {
					best, bestCost, bestW = ci, cost, c.Sol.W
				}
			}
			if best < 0 {
				best = len(nc.Cands) - 1 // fastest candidate as fallback
			}
			g.Add(nc.Cands[best].Val)
			if best != cur {
				changed = true
			}
			choice[i] = best
		}
		done = pass + 1
		if !changed {
			break
		}
	}
	res := Result{Overflow: g.Overflow(), MaxUse: g.MaxUse(), Passes: done}
	for i, nc := range nets {
		c := nc.Cands[choice[i]]
		res.TotalWire += c.Sol.W
		if nc.Budget > 0 && c.Sol.D > nc.Budget {
			res.BudgetMiss++
		}
	}
	return choice, res, nil
}

// pickInitial selects the cheapest candidate meeting the budget (or the
// fastest when none does).
func pickInitial(nc NetCandidates) int {
	for ci := range nc.Cands {
		if meets(nc, ci) {
			return ci
		}
	}
	return len(nc.Cands) - 1
}

func meets(nc NetCandidates, ci int) bool {
	return nc.Budget <= 0 || nc.Cands[ci].Sol.D <= nc.Budget
}
