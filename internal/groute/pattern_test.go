package groute

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func TestEdgePatterns(t *testing.T) {
	// Straight edges: a single candidate.
	if p := edgePatterns(0, 0, 3, 0, 2); len(p) != 1 || len(p[0]) != 1 {
		t.Fatalf("straight = %+v", p)
	}
	// Same cell: nothing.
	if p := edgePatterns(1, 1, 1, 1, 2); p != nil {
		t.Fatalf("same-cell = %+v", p)
	}
	// Bent edges: 2 Ls plus Zs.
	p := edgePatterns(0, 0, 4, 3, 2)
	if len(p) < 2 {
		t.Fatalf("bent = %d candidates", len(p))
	}
	// Every candidate connects the endpoints with straight runs of the
	// same total cell length.
	wantLen := 4 + 3
	for ci, cand := range p {
		length := 0
		cur := [2]int{0, 0}
		for _, s := range cand {
			if s.X1 != cur[0] || s.Y1 != cur[1] {
				t.Fatalf("candidate %d discontinuous: %+v", ci, cand)
			}
			if s.X1 != s.X2 && s.Y1 != s.Y2 {
				t.Fatalf("candidate %d has a diagonal segment: %+v", ci, s)
			}
			length += abs(s.X2-s.X1) + abs(s.Y2-s.Y1)
			cur = [2]int{s.X2, s.Y2}
		}
		if cur != [2]int{4, 3} {
			t.Fatalf("candidate %d ends at %v", ci, cur)
		}
		if length != wantLen {
			t.Fatalf("candidate %d length %d, want %d", ci, length, wantLen)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestJogPositions(t *testing.T) {
	if jogPositions(0, 1, 3) != nil {
		t.Fatal("adjacent cells cannot jog")
	}
	if got := jogPositions(0, 3, 5); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("all-interior = %v", got)
	}
	got := jogPositions(0, 10, 3)
	if len(got) != 3 {
		t.Fatalf("spaced = %v", got)
	}
	for _, m := range got {
		if m <= 0 || m >= 10 {
			t.Fatalf("jog %d outside interior", m)
		}
	}
}

func TestEmbedBestAndRemoveRestores(t *testing.T) {
	g := mustGrid(t, 8, 8, 10, 10, 1)
	net := tree.NewNet(geom.Pt(5, 5), geom.Pt(75, 65), geom.Pt(15, 75))
	tr := tree.Star(net)
	e := g.EmbedBest(tr, 2)
	if len(e.Segs) == 0 {
		t.Fatal("empty embedding")
	}
	if g.MaxUse() == 0 {
		t.Fatal("embedding used no edges")
	}
	g.RemoveEmbedding(e)
	if g.MaxUse() != 0 || g.Overflow() != 0 {
		t.Fatal("RemoveEmbedding did not restore usage")
	}
}

func TestEmbedBestAvoidsCongestion(t *testing.T) {
	// Saturate the straight corridor; the pattern router must jog around.
	g := mustGrid(t, 6, 6, 10, 10, 1)
	// A blocking wire along row 2 (cells (0,2)..(5,2)).
	block := tree.Star(tree.NewNet(geom.Pt(5, 25), geom.Pt(55, 25)))
	g.Add(block)
	// A bent edge whose lower-L would ride the blocked row.
	net := tree.NewNet(geom.Pt(5, 25), geom.Pt(55, 45))
	tr := tree.Star(net)
	e := g.EmbedBest(tr, 3)
	if g.Overflow() != 0 {
		t.Fatalf("pattern router overflowed: %d (embedding %+v)", g.Overflow(), e.Segs)
	}
}

func TestRerouteReducesOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := mustGrid(t, 10, 10, 10, 10, 2)
	var trees []*tree.Tree
	for i := 0; i < 25; i++ {
		pins := make([]geom.Point, 3)
		for j := range pins {
			pins[j] = geom.Pt(rng.Int63n(100), rng.Int63n(100))
		}
		trees = append(trees, tree.Star(tree.Net{Pins: pins}))
	}
	// Initial: plain L embeddings.
	embeds := make([]*TreeEmbedding, len(trees))
	for i, tr := range trees {
		embeds[i] = g.EmbedBest(tr, 0)
	}
	before := g.Overflow()
	embeds, err := Reroute(g, trees, embeds, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	after := g.Overflow()
	if after > before {
		t.Fatalf("Reroute increased overflow %d -> %d", before, after)
	}
	// Accounting stays consistent: removing everything restores zero.
	for _, e := range embeds {
		g.RemoveEmbedding(e)
	}
	if g.MaxUse() != 0 {
		t.Fatal("usage not restored after removing all embeddings")
	}
}

func TestRerouteValidation(t *testing.T) {
	g := mustGrid(t, 4, 4, 10, 10, 1)
	tr := tree.Star(tree.NewNet(geom.Pt(0, 0), geom.Pt(30, 30)))
	if _, err := Reroute(g, []*tree.Tree{tr}, []*TreeEmbedding{}, 1, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// nil embeddings bootstrap from scratch.
	embeds, err := Reroute(g, []*tree.Tree{tr}, nil, 1, 1)
	if err != nil || len(embeds) != 1 {
		t.Fatalf("bootstrap: %v, %d embeddings", err, len(embeds))
	}
}
