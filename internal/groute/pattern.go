package groute

import (
	"fmt"

	"patlabor/internal/tree"
)

// CellSeg is one straight run in cell coordinates (X1 == X2 or Y1 == Y2).
type CellSeg struct {
	X1, Y1, X2, Y2 int
}

// TreeEmbedding is a concrete pattern-routed embedding of one tree: the
// straight cell segments of every edge. It is the unit of rip-up for
// pattern rerouting.
type TreeEmbedding struct {
	Segs []CellSeg
}

func (g *Grid) applySegs(segs []CellSeg, delta int) {
	for _, s := range segs {
		g.applySegment(s.X1, s.Y1, s.X2, s.Y2, delta)
	}
}

// AddEmbedding embeds e, increasing edge usage.
func (g *Grid) AddEmbedding(e *TreeEmbedding) { g.applySegs(e.Segs, 1) }

// RemoveEmbedding un-embeds e.
func (g *Grid) RemoveEmbedding(e *TreeEmbedding) { g.applySegs(e.Segs, -1) }

// costSegs returns the marginal overflow of embedding the segments now.
func (g *Grid) costSegs(segs []CellSeg) int {
	cost := 0
	for _, s := range segs {
		lo, hi := s.X1, s.X2
		if lo > hi {
			lo, hi = hi, lo
		}
		for x := lo; x < hi; x++ {
			if g.hUse[s.Y1*(g.NX-1)+x] >= g.Cap {
				cost++
			}
		}
		lo, hi = s.Y1, s.Y2
		if lo > hi {
			lo, hi = hi, lo
		}
		for y := lo; y < hi; y++ {
			if g.vUse[y*g.NX+s.X2] >= g.Cap {
				cost++
			}
		}
	}
	return cost
}

// edgePatterns enumerates candidate pattern routes for an edge between
// cells (x1,y1) and (x2,y2): the two L-shapes plus up to maxJogs Z-shapes
// per orientation (a jog at an intermediate column or row). All patterns
// have identical cell length; they differ only in which boundaries they
// cross.
func edgePatterns(x1, y1, x2, y2, maxJogs int) [][]CellSeg {
	if x1 == x2 && y1 == y2 {
		return nil
	}
	if x1 == x2 || y1 == y2 {
		return [][]CellSeg{{{x1, y1, x2, y2}}}
	}
	var out [][]CellSeg
	// L-shapes.
	out = append(out,
		[]CellSeg{{x1, y1, x2, y1}, {x2, y1, x2, y2}}, // horizontal first
		[]CellSeg{{x1, y1, x1, y2}, {x1, y2, x2, y2}}, // vertical first
	)
	// HVH Z-shapes: jog at column m strictly between x1 and x2.
	lo, hi := x1, x2
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, m := range jogPositions(lo, hi, maxJogs) {
		out = append(out, []CellSeg{{x1, y1, m, y1}, {m, y1, m, y2}, {m, y2, x2, y2}})
	}
	// VHV Z-shapes: jog at row m strictly between y1 and y2.
	lo, hi = y1, y2
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, m := range jogPositions(lo, hi, maxJogs) {
		out = append(out, []CellSeg{{x1, y1, x1, m}, {x1, m, x2, m}, {x2, m, x2, y2}})
	}
	return out
}

// jogPositions returns up to k evenly spaced interior positions of (lo,hi).
func jogPositions(lo, hi, k int) []int {
	span := hi - lo
	if span < 2 || k < 1 {
		return nil
	}
	if span-1 <= k {
		out := make([]int, 0, span-1)
		for m := lo + 1; m < hi; m++ {
			out = append(out, m)
		}
		return out
	}
	out := make([]int, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, lo+i*span/(k+1))
	}
	return out
}

// EmbedBest pattern-routes the tree edge by edge, greedily choosing the
// candidate with the least marginal overflow (ties keep the earliest, an
// L-shape) and applying it immediately so later edges see earlier ones.
func (g *Grid) EmbedBest(t *tree.Tree, maxJogs int) *TreeEmbedding {
	e := &TreeEmbedding{}
	for i, p := range t.Parent {
		if p < 0 {
			continue
		}
		x1, y1 := g.CellOf(t.Nodes[p].P)
		x2, y2 := g.CellOf(t.Nodes[i].P)
		cands := edgePatterns(x1, y1, x2, y2, maxJogs)
		if len(cands) == 0 {
			continue
		}
		best, bestCost := 0, g.costSegs(cands[0])
		for ci := 1; ci < len(cands); ci++ {
			if c := g.costSegs(cands[ci]); c < bestCost {
				best, bestCost = ci, c
			}
		}
		g.applySegs(cands[best], 1)
		e.Segs = append(e.Segs, cands[best]...)
	}
	return e
}

// Reroute rip-up-and-re-embeds every tree with pattern routing for the
// given number of passes and returns the resulting embeddings. The trees
// must already be embedded via the returned embeddings of a previous
// EmbedBest/AddEmbedding round — for convenience, pass nil embeddings to
// start from scratch (trees are embedded first with plain L-shapes).
func Reroute(g *Grid, trees []*tree.Tree, embeds []*TreeEmbedding, passes, maxJogs int) ([]*TreeEmbedding, error) {
	if embeds == nil {
		embeds = make([]*TreeEmbedding, len(trees))
		for i, t := range trees {
			embeds[i] = g.EmbedBest(t, 0) // L-only initial embedding
		}
	}
	if len(embeds) != len(trees) {
		return nil, fmt.Errorf("groute: %d trees but %d embeddings", len(trees), len(embeds))
	}
	if passes < 1 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		for i, t := range trees {
			g.RemoveEmbedding(embeds[i])
			embeds[i] = g.EmbedBest(t, maxJogs)
		}
	}
	return embeds, nil
}
