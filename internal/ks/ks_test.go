package ks

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/lut"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestFrontierSmallIsExact(t *testing.T) {
	// When the whole net fits in a leaf, Pareto-KS is exactly Pareto-DW.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		net := randNet(rng, n, 80)
		items, err := Frontier(net, Options{Leaf: 6})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d: %v, want %v", trial, sols(items), want)
		}
		for i := range want {
			if items[i].Sol != want[i] {
				t.Fatalf("trial %d: %v, want %v", trial, sols(items), want)
			}
		}
	}
}

func sols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestFrontierLargeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, n := range []int{12, 20, 35} {
		net := randNet(rng, n, 300)
		items, err := Frontier(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Fatal("empty frontier")
		}
		var ss []pareto.Sol
		for _, it := range items {
			ss = append(ss, it.Sol)
			if err := it.Val.Validate(net); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if it.Val.Sol() != it.Sol {
				t.Fatalf("n=%d: tree objectives %v != %v", n, it.Val.Sol(), it.Sol)
			}
		}
		if !pareto.IsFrontier(ss) {
			t.Fatalf("n=%d: not canonical: %v", n, ss)
		}
	}
}

func TestFrontierApproximationQuality(t *testing.T) {
	// On nets just above the leaf size the KS result must stay within a
	// small constant of the exact frontier (Theorem 4's bound is loose;
	// empirically the ratio is small).
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		net := randNet(rng, 10, 120)
		items, err := Frontier(net, Options{Leaf: 6})
		if err != nil {
			t.Fatal(err)
		}
		truth, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r := pareto.ApproxRatio(sols(items), truth); r > 2.0 {
			t.Fatalf("trial %d: approximation ratio %.2f too large", trial, r)
		}
	}
}

func TestFrontierMaxSetCap(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	net := randNet(rng, 25, 400)
	items, err := Frontier(net, Options{MaxSet: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) > 3 {
		t.Fatalf("cap violated: %d items", len(items))
	}
	for _, it := range items {
		if err := it.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrontierEmptyNet(t *testing.T) {
	if _, err := Frontier(tree.Net{}, Options{}); err == nil {
		t.Fatal("empty net accepted")
	}
}

func TestCapSpreadsAcrossFrontier(t *testing.T) {
	items := make([]pareto.Item[*tree.Tree], 9)
	for i := range items {
		items[i] = pareto.Item[*tree.Tree]{Sol: pareto.Sol{W: int64(i), D: int64(9 - i)}}
	}
	out := pareto.CapItems(items, 3)
	if len(out) != 3 {
		t.Fatalf("cap kept %d", len(out))
	}
	// Endpoints survive.
	if out[0].Sol != items[0].Sol || out[len(out)-1].Sol != items[8].Sol {
		t.Fatalf("cap dropped endpoints: %v", out)
	}
	// No-op cases.
	if got := pareto.CapItems(items, 0); len(got) != 9 {
		t.Fatal("cap 0 must keep all")
	}
	if got := pareto.CapItems(items[:2], 5); len(got) != 2 {
		t.Fatal("cap above size must keep all")
	}
	// Duplicate-collapsing path: capping 2 of 2 identical-ends.
	two := items[:2]
	if got := pareto.CapItems(two, 2); len(got) != 2 {
		t.Fatalf("cap = %v", got)
	}
}

func TestFrontierWithTableLeaves(t *testing.T) {
	// Remark 1: table-backed leaves give identical results to DP leaves.
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 8; trial++ {
		net := randNet(rng, 14, 200)
		a, err := Frontier(net, Options{Leaf: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Frontier(net, Options{Leaf: 5, Table: lut.Default()})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d items", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Sol != b[i].Sol {
				t.Fatalf("trial %d: divergence at %d: %v vs %v", trial, i, a[i].Sol, b[i].Sol)
			}
			if err := b[i].Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
	}
}
