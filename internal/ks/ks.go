// Package ks implements Pareto-KS (§IV-B of the paper): a polynomial-time
// approximation of the Pareto frontier by divide-and-conquer in the style
// of Kalpakis–Sherman. The pin set is split at a median pin on axes
// alternating with depth; sub-problems small enough are solved exactly by
// Pareto-DW; sub-frontiers are combined with the ⊕ operator, connecting
// each far sub-source to the near source with a direct edge.
//
// Theorem 4: Pareto-KS O(√(n/log n))-approximates every frontier point in
// Õ(n²·|S|²) time. With lookup-table leaves of size λ the bound becomes
// O(√(n/λ)) (Remark 1).
package ks

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/lut"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Options configures Pareto-KS.
type Options struct {
	// Leaf is the largest sub-problem solved exactly. 0 selects
	// max(4, min(MaxLeaf, ⌈log2 n⌉+1)) as in the paper's |P| <= log n rule.
	Leaf int
	// MaxSet caps the Pareto set size carried per sub-problem (0 =
	// unlimited). Combining is quadratic in set sizes; a cap keeps large
	// instances tractable at a small loss of frontier resolution.
	MaxSet int
	// Table answers leaves from lookup tables when they cover the leaf
	// degree (Remark 1: LUT leaves turn the O(√(n/log n)) bound into
	// O(√(n/λ)) and the time bound into Õ(nλ|S|²)); uncovered leaves fall
	// back to the exact DP. Nil disables table lookups.
	Table *lut.Table
}

// MaxLeaf bounds the exact leaf size (the exact DP is exponential).
const MaxLeaf = 9

// Frontier approximates the Pareto frontier of the net, returning one tree
// per retained solution in canonical order.
func Frontier(net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	return FrontierContext(context.Background(), net, opts)
}

// FrontierContext is Frontier with cancellation: the context is checked at
// every node of the divide-and-conquer recursion and threaded into the
// exact DP solving the leaves.
func FrontierContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	n := net.Degree()
	if n == 0 {
		return nil, fmt.Errorf("ks: empty net")
	}
	leaf := opts.Leaf
	if leaf <= 0 {
		leaf = 4
		for v := n; v > 16; v >>= 1 {
			leaf++
		}
	}
	if leaf > MaxLeaf {
		leaf = MaxLeaf
	}
	if leaf < 2 {
		leaf = 2
	}
	pins := make([]int, n)
	for i := range pins {
		pins[i] = i
	}
	items, err := route(ctx, net, pins, leaf, opts, 0)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// route solves the sub-net given by pin indices (pins[0] is the
// sub-source) and returns its Pareto set with trees in the parent frame.
func route(ctx context.Context, net tree.Net, pins []int, leaf int, opt Options, depth int) ([]pareto.Item[*tree.Tree], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pins) <= leaf {
		sub := tree.Net{Pins: make([]geom.Point, len(pins))}
		for i, p := range pins {
			sub.Pins[i] = net.Pins[p]
		}
		var items []pareto.Item[*tree.Tree]
		var err error
		if opt.Table != nil {
			var ok bool
			items, ok, err = opt.Table.Query(sub)
			if err != nil {
				return nil, err
			}
			if !ok {
				items = nil
			}
		}
		if items == nil {
			items, err = dw.FrontierContext(ctx, sub, dw.DefaultOptions())
			if err != nil {
				return nil, err
			}
		}
		for _, it := range items {
			if err := it.Val.RelabelPins(pins); err != nil {
				return nil, err
			}
		}
		return pareto.CapItems(items, opt.MaxSet), nil
	}
	// Divide at the median pin of the alternating axis (the source always
	// stays in the near half as its source; the far half is rooted at its
	// pin closest to the source, per step 3 of the algorithm).
	src := pins[0]
	sinks := append([]int(nil), pins[1:]...)
	axis := depth % 2
	// Stable on the full (axis, off-axis) coordinate key: coincident pins
	// keep their input order, which is itself deterministic.
	slices.SortStableFunc(sinks, func(x, y int) int {
		pa, pb := net.Pins[x], net.Pins[y]
		if axis == 0 {
			if c := cmp.Compare(pa.X, pb.X); c != 0 {
				return c
			}
			return cmp.Compare(pa.Y, pb.Y)
		}
		if c := cmp.Compare(pa.Y, pb.Y); c != 0 {
			return c
		}
		return cmp.Compare(pa.X, pb.X)
	})
	mid := len(sinks) / 2
	nearSinks, farSinks := sinks[:mid], sinks[mid:]
	// Keep the source's own half "near": if the source is beyond the
	// median on the split axis, swap halves so the far half is the one
	// away from the source.
	if len(nearSinks) > 0 && len(farSinks) > 0 {
		sp, np := net.Pins[src], net.Pins[nearSinks[0]]
		fp := net.Pins[farSinks[len(farSinks)-1]]
		if axisDist(sp, np, axis) > axisDist(sp, fp, axis) {
			nearSinks, farSinks = farSinks, nearSinks
		}
	}
	// Far sub-source: the far pin closest to the source.
	g := farSinks[0]
	for _, p := range farSinks[1:] {
		if geom.Dist(net.Pins[p], net.Pins[src]) < geom.Dist(net.Pins[g], net.Pins[src]) {
			g = p
		}
	}
	farPins := []int{g}
	for _, p := range farSinks {
		if p != g {
			farPins = append(farPins, p)
		}
	}
	nearPins := append([]int{src}, nearSinks...)

	s1, err := route(ctx, net, nearPins, leaf, opt, depth+1)
	if err != nil {
		return nil, err
	}
	s2, err := route(ctx, net, farPins, leaf, opt, depth+1)
	if err != nil {
		return nil, err
	}
	// Combine: T1 ∪ T2 plus the bridging edge src→g.
	c := geom.Dist(net.Pins[src], net.Pins[g])
	set := &pareto.Set[*tree.Tree]{}
	for _, a := range s1 {
		// |s1|×|s2| clone+graft work: honour cancellation between rows.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, b := range s2 {
			sol := pareto.Sol{
				W: a.Sol.W + b.Sol.W + c,
				D: geom.Max64(a.Sol.D, c+b.Sol.D),
			}
			if !pareto.Contains(set.Sols(), sol) {
				t := a.Val.Clone()
				t.Graft(b.Val, t.Root)
				set.Add(sol, t)
			}
		}
	}
	return pareto.CapItems(set.Items(), opt.MaxSet), nil
}

func axisDist(a, b geom.Point, axis int) int64 {
	if axis == 0 {
		return geom.Abs64(a.X - b.X)
	}
	return geom.Abs64(a.Y - b.Y)
}
