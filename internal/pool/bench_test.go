package pool

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkEach measures the dispatch overhead of the parallel-for on
// per-index work of varying cost. The work=tiny rows are the small-net
// batch regime — a few hundred nanoseconds of routing per index — where
// per-index channel operations used to dominate; chunked dispatch
// amortizes one channel round trip over a run of indices. The work=spin
// rows model mid-sized nets and bound the load-balancing cost of
// chunking. scripts/bench.sh pr9 records the suite in BENCH_PR9.json.
func BenchmarkEach(b *testing.B) {
	spin := func(iters int) int64 {
		var s int64
		for i := 0; i < iters; i++ {
			s += int64(i)
		}
		return s
	}
	var sink atomic.Int64
	for _, c := range []struct {
		name  string
		iters int
	}{
		{"tiny", 16},
		{"spin", 2048},
	} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("work=%s/workers=%d", c.name, workers), func(b *testing.B) {
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := Each(ctx, 1024, workers, func(worker, j int) error {
						sink.Store(spin(c.iters))
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
