package pool

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestEachCoversAll: every index is visited exactly once at any worker
// count, including the serial path.
func TestEachCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var mu sync.Mutex
		seen := make(map[int]int)
		err := Each(context.Background(), 100, workers, func(worker, i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < 100; i++ {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i])
			}
		}
	}
}

// TestEachLowestError: when several jobs fail, the error of the
// lowest-failing index wins — the determinism contract callers (engine
// batches, hier cluster fan-out) rely on.
func TestEachLowestError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := Each(context.Background(), 50, workers, func(worker, i int) error {
			if i%7 == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err %v, want job 3's", workers, err)
		}
	}
}

// TestEachPreCancelled: a cancelled context wins over job errors on the
// serial path and aborts promptly on the parallel path.
func TestEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		ran := 0
		err := Each(ctx, 10, workers, func(worker, i int) error {
			ran++
			return nil
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran != 0 {
			t.Fatalf("serial path ran %d jobs under a cancelled context", ran)
		}
	}
}
