package pool

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestEachCoversAll: every index is visited exactly once at any worker
// count, including the serial path.
func TestEachCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var mu sync.Mutex
		seen := make(map[int]int)
		err := Each(context.Background(), 100, workers, func(worker, i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < 100; i++ {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i])
			}
		}
	}
}

// TestEachLowestError: when several jobs fail, the error of the
// lowest-failing index wins — the determinism contract callers (engine
// batches, hier cluster fan-out) rely on.
func TestEachLowestError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := Each(context.Background(), 50, workers, func(worker, i int) error {
			if i%7 == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err %v, want job 3's", workers, err)
		}
	}
}

// TestEachChunkedLowestError stresses the lowest-failed-index guarantee
// across chunk boundaries: n large enough that chunked dispatch hands
// out multi-index chunks, failures scattered so the lowest one lands
// mid-chunk while a sibling chunk fails first in wall time (the later,
// slower failure has the lower index). Repeated runs must always report
// the lowest index — a received chunk runs whole even after another
// worker trips the stop signal.
func TestEachChunkedLowestError(t *testing.T) {
	const n = 4 * 8 * chunksPerWorker // several chunks per worker at every tested width
	for _, workers := range []int{2, 8, 32} {
		for run := 0; run < 20; run++ {
			err := Each(context.Background(), n, workers, func(worker, i int) error {
				switch {
				case i == 5:
					// Lowest failure, delayed past the eager one below.
					for s := 0; s < 1<<12; s++ {
						_ = s
					}
					return fmt.Errorf("job %d failed", i)
				case i >= n/2 && i%3 == 0:
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "job 5 failed" {
				t.Fatalf("workers=%d run=%d: err %v, want job 5's", workers, run, err)
			}
		}
	}
}

// TestEachChunkCoversAll: index coverage holds when n is not a multiple
// of the chunk size (the last chunk is short, not overrun).
func TestEachChunkCoversAll(t *testing.T) {
	const n = 8*chunksPerWorker*4 + 3
	var mu sync.Mutex
	seen := make(map[int]int)
	err := Each(context.Background(), n, 8, func(worker, i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i])
		}
	}
	if len(seen) != n {
		t.Fatalf("%d distinct indices visited, want %d", len(seen), n)
	}
}

// TestEachPreCancelled: a cancelled context wins over job errors on the
// serial path and aborts promptly on the parallel path.
func TestEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		ran := 0
		err := Each(ctx, 10, workers, func(worker, i int) error {
			ran++
			return nil
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran != 0 {
			t.Fatalf("serial path ran %d jobs under a cancelled context", ran)
		}
	}
}
