// Package pool provides the repo's deterministic parallel-for: a bounded
// worker pool dispatching indices in order, with per-index error capture
// and context cancellation. It is the concurrency primitive shared by the
// batch engine (across nets) and the hierarchical router (across clusters
// of one net); both owe it the standing determinism contract — callers
// write results only to their own index's slot and aggregate serially, so
// output is byte-identical at any worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Chunked dispatch parameters: aim for chunksPerWorker chunks per
// worker (several, so a skewed index doesn't strand the tail on one
// goroutine), but never more than maxChunk indices per channel send
// (bounding how long a failure drain can lag on huge n).
const (
	chunksPerWorker = 8
	maxChunk        = 256
)

// Each runs fn(worker, i) for every i in [0,n) on a pool of `workers`
// goroutines (<=0 means GOMAXPROCS; the pool never exceeds n). worker is
// the goroutine's index in [0,workers): callers use it to address
// per-worker scratch without locking. Indices are dispatched in order; on
// failure the pool drains in-flight work, stops dispatching, and returns
// the error of the lowest failed index — so the reported error is
// deterministic even though scheduling is not. When ctx is cancelled,
// dispatch stops, handed-out indices abort at their next internal ctx
// check, and ctx.Err() is returned (taking precedence over per-index
// errors).
func Each(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				// Match the pooled path: a cancellation-caused failure
				// surfaces as ctx.Err(), not the per-index wrapper.
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				return err
			}
		}
		return nil
	}
	// Indices are handed out as contiguous chunks, one channel operation
	// per chunk, so per-index dispatch overhead amortizes: with tiny
	// per-index work the channel rendezvous dominates end-to-end time
	// (block profiles put chanrecv+selectgo above 90% of block time under
	// index-at-a-time dispatch). The chunk size splits the range into
	// several chunks per worker — small enough to keep load balanced when
	// per-index cost is skewed, large enough that channel traffic is
	// negligible either way.
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	} else if chunk > maxChunk {
		chunk = maxChunk
	}
	jobs := make(chan int)
	errs := make([]error, n)
	var failed sync.Once
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// A received chunk always runs to completion: the lowest-failed-
			// index guarantee needs every index below a failure executed,
			// and a sibling's failure may land mid-chunk. Cancellation is
			// exempt — fn aborts at its own ctx checks and ctx.Err() takes
			// precedence over every per-index error anyway.
			for lo := range jobs {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(worker, i); err != nil {
						errs[i] = err
						failed.Do(func() { close(stop) })
					}
				}
			}
		}(w)
	}
	// Dispatch chunks in index order: when a failure closes stop, every
	// chunk at or below the failed index has already been handed out and
	// will run whole, while every undispatched chunk lies strictly above
	// it — so after wg.Wait the lowest non-nil error is stable across
	// runs. Cancellation closes the same window: no further chunk is
	// handed out, handed-out indices abort at their next internal ctx
	// check, and the workers exit when the job channel closes — nothing
	// leaks.
dispatch:
	for i := 0; i < n; i += chunk {
		select {
		case jobs <- i:
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
