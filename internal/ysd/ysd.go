// Package ysd implements the YSD baseline [6] (Yang, Sun & Ding): a
// weighted-sum method minimising w(T) + β·d(T) for a tunable β, using a
// learned model for small-degree nets and divide-and-conquer for
// large-degree nets.
//
// Substitution (see DESIGN.md): YSD's per-degree neural network, which
// approximates the weighted-sum-optimal topology, is replaced by an exact
// weighted-sum oracle — the argmin of w + β·d over the true Pareto
// frontier computed by internal/dw. This is YSD's best case: no model
// error, no GPU. The structural property the paper exploits remains: a
// weighted-sum minimiser can only ever reach solutions on the lower-left
// convex hull of the frontier, so non-convex frontier points are
// unreachable for every β, and the non-optimality ratios of Table III grow
// with degree exactly as reported.
package ysd

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// SmallDegree is the largest degree routed by the weighted-sum oracle, as
// in the paper (YSD trains models for n <= 9).
const SmallDegree = 9

// LeafDegree is the sub-problem size at which the divide-and-conquer
// recursion bottoms out. The paper's YSD uses its neural model for every
// leaf; our oracle leaf is capped at 7 to keep the exact DP per leaf fast.
const LeafDegree = 7

// ConvexHull returns the subset of a canonical Pareto frontier reachable
// by weighted-sum minimisation: the vertices of the lower-left convex
// hull. Every argmin of w + β·d for some β >= 0 is a hull vertex and vice
// versa.
func ConvexHull[T any](items []pareto.Item[T]) []pareto.Item[T] {
	if len(items) <= 2 {
		return append([]pareto.Item[T](nil), items...)
	}
	var hull []pareto.Item[T]
	for _, it := range items {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2].Sol, hull[len(hull)-1].Sol
			c := it.Sol
			// b lies on or above segment a-c ⟺ cross <= 0: not a vertex.
			cross := (b.W-a.W)*(c.D-a.D) - (b.D-a.D)*(c.W-a.W)
			if cross <= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, it)
	}
	return hull
}

// SmallSweep returns every solution the oracle YSD can produce for a
// small-degree net across all β: the convex hull of the exact frontier.
func SmallSweep(net tree.Net) ([]pareto.Item[*tree.Tree], error) {
	return SmallSweepContext(context.Background(), net)
}

// SmallSweepContext is SmallSweep with cancellation threaded into the
// exact DP.
func SmallSweepContext(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
	if net.Degree() > SmallDegree {
		return nil, fmt.Errorf("ysd: degree %d exceeds SmallDegree", net.Degree())
	}
	items, err := dw.FrontierContext(ctx, net, dw.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return ConvexHull(items), nil
}

// Build returns the YSD tree for one parameter value β.
func Build(net tree.Net, beta float64) (*tree.Tree, error) {
	pins := make([]int, net.Degree())
	for i := range pins {
		pins[i] = i
	}
	return route(context.Background(), net, pins, beta, 0)
}

// route solves the sub-net of `net` given by pin indices `pins` (pins[0]
// is the sub-source), returning a tree in the parent net's pin frame.
func route(ctx context.Context, net tree.Net, pins []int, beta float64, depth int) (*tree.Tree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sub := tree.Net{Pins: make([]geom.Point, len(pins))}
	for i, p := range pins {
		sub.Pins[i] = net.Pins[p]
	}
	if len(pins) <= LeafDegree {
		items, err := dw.FrontierContext(ctx, sub, dw.DefaultOptions())
		if err != nil {
			return nil, err
		}
		best := items[0]
		bestV := float64(best.Sol.W) + beta*float64(best.Sol.D)
		for _, it := range items[1:] {
			if v := float64(it.Sol.W) + beta*float64(it.Sol.D); v < bestV {
				best, bestV = it, v
			}
		}
		t := best.Val
		if err := t.RelabelPins(pins); err != nil {
			return nil, err
		}
		return t, nil
	}
	// Divide: split the sinks at the median of the axis alternating with
	// depth; the source is kept in both sub-problems as their source.
	sinks := pins[1:]
	axis := depth % 2
	ord := append([]int(nil), sinks...)
	// Stable on the full (axis, off-axis) coordinate key: coincident pins
	// keep their input order, which is itself deterministic.
	slices.SortStableFunc(ord, func(x, y int) int {
		pa, pb := net.Pins[x], net.Pins[y]
		if axis == 0 {
			if c := cmp.Compare(pa.X, pb.X); c != 0 {
				return c
			}
			return cmp.Compare(pa.Y, pb.Y)
		}
		if c := cmp.Compare(pa.Y, pb.Y); c != 0 {
			return c
		}
		return cmp.Compare(pa.X, pb.X)
	})
	mid := len(ord) / 2
	left := append([]int{pins[0]}, ord[:mid]...)
	right := append([]int{pins[0]}, ord[mid:]...)
	tl, err := route(ctx, net, left, beta, depth+1)
	if err != nil {
		return nil, err
	}
	trr, err := route(ctx, net, right, beta, depth+1)
	if err != nil {
		return nil, err
	}
	merged, err := tree.MergeAtRoot(tl, trr)
	if err != nil {
		return nil, err
	}
	merged.Steinerize()
	return merged, nil
}

// DefaultBetas is the parameter grid used when sweeping YSD.
func DefaultBetas() []float64 {
	return []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2.5, 4, 8, 16, 1e6}
}

// Sweep runs YSD across the β grid and returns the Pareto set of produced
// trees. For small nets the exact hull is returned directly (a dense β
// sweep converges to it).
func Sweep(net tree.Net, betas []float64) ([]pareto.Item[*tree.Tree], error) {
	return SweepContext(context.Background(), net, betas)
}

// SweepContext is Sweep with cancellation: the context is checked per β
// and threaded into the recursion and its exact-DP leaves.
func SweepContext(ctx context.Context, net tree.Net, betas []float64) ([]pareto.Item[*tree.Tree], error) {
	if net.Degree() <= SmallDegree {
		return SmallSweepContext(ctx, net)
	}
	if len(betas) == 0 {
		betas = DefaultBetas()
	}
	pins := make([]int, net.Degree())
	for i := range pins {
		pins[i] = i
	}
	set := &pareto.Set[*tree.Tree]{}
	for _, b := range betas {
		t, err := route(ctx, net, pins, b, 0)
		if err != nil {
			return nil, err
		}
		set.Add(t.Sol(), t)
	}
	return set.Items(), nil
}
