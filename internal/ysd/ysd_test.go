package ysd

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestConvexHullBasics(t *testing.T) {
	items := []pareto.Item[int]{
		{Sol: pareto.Sol{W: 0, D: 10}}, {Sol: pareto.Sol{W: 1, D: 8}},
		{Sol: pareto.Sol{W: 2, D: 7}}, {Sol: pareto.Sol{W: 5, D: 1}},
	}
	hull := ConvexHull(items)
	// (2,7) is not weighted-sum reachable: better than (1,8) needs β>1,
	// better than (5,1) needs β<1/2.
	want := []pareto.Sol{{W: 0, D: 10}, {W: 1, D: 8}, {W: 5, D: 1}}
	if len(hull) != len(want) {
		t.Fatalf("hull = %v", hullSols(hull))
	}
	for i := range want {
		if hull[i].Sol != want[i] {
			t.Fatalf("hull = %v, want %v", hullSols(hull), want)
		}
	}
}

func hullSols[T any](items []pareto.Item[T]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestConvexHullMatchesBetaSweep(t *testing.T) {
	// Property: the hull equals the set of argmin(w+βd) over a dense β
	// grid for random frontiers.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 100; trial++ {
		var raw []pareto.Sol
		for k := 0; k < 2+rng.Intn(10); k++ {
			raw = append(raw, pareto.Sol{W: rng.Int63n(100), D: rng.Int63n(100)})
		}
		front := pareto.Filter(raw)
		items := make([]pareto.Item[int], len(front))
		for i, s := range front {
			items[i] = pareto.Item[int]{Sol: s}
		}
		hull := ConvexHull(items)
		hullSet := map[pareto.Sol]bool{}
		for _, h := range hull {
			hullSet[h.Sol] = true
		}
		// Every β optimum must be on the hull (allowing ties: some optimum
		// for that β is on the hull).
		for _, beta := range []float64{0, 0.01, 0.1, 0.3, 0.5, 1, 2, 5, 50, 1e6} {
			bestV := 1e30
			for _, s := range front {
				if v := float64(s.W) + beta*float64(s.D); v < bestV {
					bestV = v
				}
			}
			ok := false
			for _, h := range hull {
				if v := float64(h.Sol.W) + beta*float64(h.Sol.D); v <= bestV+1e-6 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: β=%v optimum not on hull %v (front %v)",
					trial, beta, hullSols(hull), front)
			}
		}
		// Hull vertices must each be optimal for some β in a dense grid.
		for _, h := range hull {
			ok := false
			for beta := 0.0; beta <= 100 && !ok; beta += 0.05 {
				v := float64(h.Sol.W) + beta*float64(h.Sol.D)
				best := true
				for _, s := range front {
					if float64(s.W)+beta*float64(s.D) < v-1e-6 {
						best = false
						break
					}
				}
				ok = best
			}
			if !ok {
				t.Fatalf("trial %d: hull point %v not optimal for any sampled β (front %v)",
					trial, h.Sol, front)
			}
		}
	}
}

func TestSmallSweepSubsetOfFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	sawGap := false
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4) // 4..7
		net := randNet(rng, n, 80)
		items, err := SmallSweep(net)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) > len(truth) {
			t.Fatalf("trial %d: hull larger than frontier", trial)
		}
		for _, it := range items {
			if !pareto.Contains(truth, it.Sol) {
				t.Fatalf("trial %d: hull point %v not on frontier %v", trial, it.Sol, truth)
			}
			if err := it.Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
		if len(items) < len(truth) {
			sawGap = true // YSD missed non-convex frontier points
		}
	}
	if !sawGap {
		t.Log("note: no non-convex frontier encountered in sample (unusual but possible)")
	}
}

func TestBuildLargeNet(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	net := randNet(rng, 25, 300)
	for _, beta := range []float64{0, 1, 1e6} {
		tr, err := Build(net, beta)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(net); err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
	}
	// Larger β must not increase delay (weighted-sum monotonicity holds
	// per leaf; verify the common global pattern on this instance).
	t0, _ := Build(net, 0)
	tBig, _ := Build(net, 1e6)
	if tBig.MaxDelay() > t0.MaxDelay() {
		t.Fatalf("delay grew with β: %d -> %d", t0.MaxDelay(), tBig.MaxDelay())
	}
}

func TestSweepLargeIsFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	net := randNet(rng, 30, 300)
	items, err := Sweep(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sols []pareto.Sol
	for _, it := range items {
		sols = append(sols, it.Sol)
		if err := it.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
	if !pareto.IsFrontier(sols) {
		t.Fatalf("sweep not canonical: %v", sols)
	}
}

func TestSmallSweepRejectsLargeNet(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	if _, err := SmallSweep(randNet(rng, SmallDegree+1, 100)); err == nil {
		t.Fatal("oversized SmallSweep accepted")
	}
}
