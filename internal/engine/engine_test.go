package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"patlabor/internal/core"
	"patlabor/internal/lut"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// TestRouteAllDifferential is the determinism contract: pooled batches
// return byte-identical frontiers to routing each net serially with
// core.Frontier, on 220 random small nets of degree 2..7 — at the
// standard width, and oversubscribed (4×GOMAXPROCS workers) with the
// sharded sub-frontier cache cold and warm.
func TestRouteAllDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	const count = 220
	nets := make([]tree.Net, count)
	for i := range nets {
		deg := 2 + rng.Intn(6) // 2..7
		nets[i] = netgen.Uniform(rng, deg, 4000)
	}

	serial := make([][]pareto.Sol, count)
	for i, net := range nets {
		sols, err := core.Frontier(net, core.Options{})
		if err != nil {
			t.Fatalf("serial net %d: %v", i, err)
		}
		serial[i] = sols
	}

	// The cell grid: the standard pooled width, then an oversubscribed
	// pool (4×GOMAXPROCS — workers far outnumber cores, so the scheduler
	// interleaves them aggressively and every shard of the sub-frontier
	// cache sees mixed traffic) with the cache cold and warm. A warm cell
	// reuses its engine for a second pass: every window hits the sharded
	// memo, the strictest cache-transport check.
	over := 4 * runtime.GOMAXPROCS(0)
	cells := []struct {
		name   string
		opts   Options
		passes int
	}{
		{"workers=8", Options{Workers: 8}, 1},
		{fmt.Sprintf("workers=%d/cache=cold", over), Options{Workers: over}, 1},
		{fmt.Sprintf("workers=%d/cache=warm", over), Options{Workers: over}, 2},
	}
	for _, cell := range cells {
		eng, err := New(cell.opts)
		if err != nil {
			t.Fatalf("%s: %v", cell.name, err)
		}
		var results []Result
		for p := 0; p < cell.passes; p++ {
			results, err = eng.RouteAll(context.Background(), nets)
			if err != nil {
				t.Fatalf("%s pass %d: %v", cell.name, p, err)
			}
		}
		if len(results) != count {
			t.Fatalf("%s: got %d results for %d nets", cell.name, len(results), count)
		}
		for i, cands := range results {
			got := make([]pareto.Sol, len(cands))
			for k, c := range cands {
				got[k] = c.Sol
				if err := c.Val.Validate(nets[i]); err != nil {
					t.Fatalf("%s: net %d candidate %d: %v", cell.name, i, k, err)
				}
			}
			want := serial[i]
			if !bytes.Equal([]byte(fmt.Sprint(got)), []byte(fmt.Sprint(want))) {
				t.Fatalf("%s: net %d (degree %d): concurrent frontier %v != serial %v",
					cell.name, i, nets[i].Degree(), got, want)
			}
		}
	}
}

// TestRouteAllWorkerCounts re-routes one batch at several worker counts
// and demands identical output each time.
func TestRouteAllWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nets := make([]tree.Net, 40)
	for i := range nets {
		nets[i] = netgen.Clustered(rng, 4+rng.Intn(5), 10000, 900)
	}
	var ref []Result
	for _, w := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		res, err := RouteAll(context.Background(), nets, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if fmt.Sprint(solsOf(res[i])) != fmt.Sprint(solsOf(ref[i])) {
				t.Fatalf("workers=%d: net %d differs", w, i)
			}
		}
	}
}

func solsOf(r Result) []pareto.Sol {
	out := make([]pareto.Sol, len(r))
	for i, c := range r {
		out[i] = c.Sol
	}
	return out
}

// TestRouteAllLargeNets exercises the local-search path (degree > λ)
// concurrently; -race validates there is no hidden shared state.
func TestRouteAllLargeNets(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nets := make([]tree.Net, 6)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 12+rng.Intn(8), 20000)
	}
	e, err := New(Options{Workers: 4, Lambda: 7, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteAll(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, cands := range res {
		if len(cands) == 0 {
			t.Fatalf("net %d: empty frontier", i)
		}
		serial, err := core.Route(nets[i], core.Options{Lambda: 7, Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(solsOf(cands)) != fmt.Sprint(solsOf(serial)) {
			t.Fatalf("net %d: concurrent local search differs from serial", i)
		}
	}
}

// TestRouteAllError checks the lowest failed index wins deterministically.
func TestRouteAllError(t *testing.T) {
	good := netgen.Uniform(rand.New(rand.NewSource(1)), 4, 100)
	nets := []tree.Net{good, {}, good, {}}
	_, err := RouteAll(context.Background(), nets, Options{Workers: 4})
	if err == nil {
		t.Fatal("empty net accepted")
	}
	if !strings.Contains(err.Error(), "net 1") {
		t.Fatalf("error %q does not name the lowest failed net", err)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nets := make([]tree.Net, 30)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 5, 3000)
	}
	e, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteAll(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.NetsRouted != 30 || s.Batches != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.Methods) != 1 || s.Methods[0].Name != "PatLabor" ||
		s.Methods[0].Nets != 30 || s.Methods[0].Errors != 0 {
		t.Fatalf("per-method stats = %+v", s.Methods)
	}
	if s.CacheHits+s.CacheMisses != 30 {
		t.Fatalf("cache traffic %d+%d, want 30 consults", s.CacheHits, s.CacheMisses)
	}
	if len(s.Degrees) != 1 || s.Degrees[0].Degree != 5 || s.Degrees[0].Nets != 30 {
		t.Fatalf("degree histogram = %+v", s.Degrees)
	}
	var bucketed int64
	for _, b := range s.Degrees[0].Buckets {
		bucketed += b
	}
	if bucketed != 30 {
		t.Fatalf("histogram holds %d nets, want 30", bucketed)
	}
	if s.Busy <= 0 || s.Elapsed <= 0 {
		t.Fatalf("timers not recorded: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
	e.Reset()
	s = e.Stats()
	if s.NetsRouted != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("Reset left counters: %+v", s)
	}
}

// TestStatsTableLoad checks the table cold-start surface: an engine
// built from a flat TablePath reports the load time and mapped bytes in
// Stats and renders them in the summary, and Reset does not zero them
// (they describe the table, not the batch).
func TestStatsTableLoad(t *testing.T) {
	src := lut.New()
	if err := src.Generate(4, 0); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.plut"
	if err := src.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Workers: 1, TablePath: path})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	nets := []tree.Net{netgen.Uniform(rng, 4, 500)}
	if _, err := e.RouteAll(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.TableColdStart <= 0 {
		t.Fatalf("TableColdStart = %v", s.TableColdStart)
	}
	if runtime.GOOS == "linux" && s.TableMappedBytes <= 0 {
		t.Fatalf("TableMappedBytes = %d on linux", s.TableMappedBytes)
	}
	if !strings.Contains(s.String(), "LUT load") {
		t.Fatalf("stats rendering lacks LUT load line:\n%s", s.String())
	}
	e.Reset()
	if s = e.Stats(); s.TableColdStart <= 0 {
		t.Fatal("Reset zeroed the table cold-start info")
	}
}

// TestStatsConcurrent hammers Stats() while a batch is in flight (the
// snapshot must be race-free under -race).
func TestStatsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nets := make([]tree.Net, 60)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 4+rng.Intn(3), 2000)
	}
	e, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = e.Stats()
			}
		}
	}()
	for r := 0; r < 3; r++ {
		if _, err := e.RouteAll(context.Background(), nets); err != nil {
			t.Error(err)
		}
	}
	close(done)
	wg.Wait()
	if got := e.Stats().NetsRouted; got != 180 {
		t.Fatalf("routed %d, want 180", got)
	}
}

func TestForEachDeterministicError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := ForEach(100, 8, func(i int) error {
			if i%30 == 17 { // fails at 17, 47, 77
				return fmt.Errorf("fail %d", i)
			}
			time.Sleep(time.Microsecond)
			return nil
		})
		if err == nil || err.Error() != "fail 17" {
			t.Fatalf("trial %d: err = %v, want fail 17", trial, err)
		}
	}
}

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hit := make([]int64, 257)
		err := ForEach(len(hit), workers, func(i int) error {
			hit[i]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{1024 * time.Microsecond, 10},
		{time.Hour, LatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
