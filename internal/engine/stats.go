package engine

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// LatencyBuckets is the number of power-of-two latency histogram buckets:
// bucket k counts nets whose routing took [2^k, 2^(k+1)) microseconds
// (bucket 0 also absorbs sub-microsecond routes, the last bucket absorbs
// everything slower).
const LatencyBuckets = 24

// DegreeLatency is the per-degree routing-latency histogram of one
// engine.
type DegreeLatency struct {
	Degree  int
	Nets    int64
	Total   time.Duration
	Max     time.Duration
	Buckets [LatencyBuckets]int64
}

// Mean returns the mean per-net routing time at this degree.
func (d DegreeLatency) Mean() time.Duration {
	if d.Nets == 0 {
		return 0
	}
	return d.Total / time.Duration(d.Nets)
}

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	return b
}

// MethodStats is one routing method's cumulative share of an engine's
// traffic: how many nets it routed successfully and how many of its
// routes failed.
type MethodStats struct {
	Name   string
	Nets   int64
	Errors int64
}

// Stats is a snapshot of an engine's cumulative counters.
type Stats struct {
	NetsRouted  int64
	Errors      int64
	Batches     int64
	Elapsed     time.Duration // wall clock summed over RouteAll calls
	Busy        time.Duration // per-net routing time summed over workers
	CacheHits   int64         // lookup-table pattern hits
	CacheMisses int64         // lookup-table fallbacks to the exact DP
	CacheErrors int64         // lookup-table hits that failed during instantiation
	// ToposEvaluated / TreesMaterialized expose the symbolic fast path's
	// savings: stored topologies whose (w, d) was evaluated by coefficient
	// dot products versus frontier survivors actually built as trees.
	ToposEvaluated    int64
	TreesMaterialized int64
	// SubFrontierHits / SubFrontierMisses count the local search's
	// sub-frontier memo traffic (core.SubCache, shared across the batch):
	// λ-pin windows answered by transforming a previously solved window
	// versus windows solved from scratch.
	SubFrontierHits   int64
	SubFrontierMisses int64
	// DedupHits / DedupMisses count the batch-level net dedup: nets
	// answered by transforming an identical (translation- or
	// symmetry-equivalent) batch-mate's frontier versus nets the dedup
	// layer examined but had to route.
	DedupHits   int64
	DedupMisses int64
	// EcoHits / EcoFullReroutes count the incremental-rerouting session's
	// traffic (internal/eco): tracked/rerouted nets answered without
	// running the router (cancelled edits, net-memo isometry hits) versus
	// full warm-cache reroutes. EcoHits + EcoFullReroutes equals the
	// session's Track + Reroute calls.
	EcoHits         int64
	EcoFullReroutes int64
	// DirtySubtrees counts the subtree roots edits dirtied across
	// previous frontiers' trees; CacheInvalidations counts the
	// sub-frontier cache keys reroutes evicted precisely (windows whose
	// geometry an edit changed).
	DirtySubtrees      int64
	CacheInvalidations int64
	// Hier* expose the hierarchical router's traffic (internal/hier,
	// method "hier" only): nets above the crossover routed via clustered
	// two-level trees versus nets handed straight to the flat router;
	// cluster subproblems solved (plus single-pin clusters needing none);
	// and the lifetime high-water marks for cluster size and recursion
	// depth (not rebased by Reset).
	HierNets       int64
	HierFlat       int64
	HierClusters   int64
	HierSingletons int64
	HierMaxCluster int64
	HierMaxLevels  int64
	// TableColdStart is the wall-clock time the engine's lookup table
	// spent loading from disk (gob decode or flat open+map), and
	// TableMappedBytes the bytes it currently memory-maps: together the
	// cold-start-to-first-query picture of the flat zero-copy format.
	// Neither rebases on Reset — they describe the table, not the batch.
	TableColdStart   time.Duration
	TableMappedBytes int64
	// Methods breaks NetsRouted/Errors down per routing method, sorted by
	// method name. A single engine routes with one method, but counters
	// survive Reset-free engine reuse and merge across batches.
	Methods []MethodStats
	Degrees []DegreeLatency
}

// collector is one worker's private accumulator; workers never share one,
// so recording needs no synchronisation.
type collector struct {
	nets    int64
	errs    int64
	busy    time.Duration
	degrees map[int]*DegreeLatency
}

// paddedCollector is the element type of a batch's per-worker collector
// slice. The bare collector is 32 bytes, so adjacent workers' hot
// counters would share a 64-byte cache line and every record() would
// ping-pong the line between cores — private data, shared line. The pad
// rounds each element up to 128 bytes (two lines, covering adjacent-line
// prefetchers) so the no-synchronisation promise of collector holds at
// the hardware level too. Merging at batch end stays deterministic:
// collectors are folded in worker-index order regardless of which worker
// finished first.
type paddedCollector struct {
	collector
	_ [96]byte
}

// degreeBin coarsens large degrees for the per-degree histograms: exact
// below 65, then one bin per decade boundary (≤100, ≤1000, ≤10000,
// above), so a mega-net batch (internal/hier territory, degrees 10³–10⁴)
// keeps the Degrees table at a bounded row count instead of one row per
// distinct huge degree.
func degreeBin(n int) int {
	switch {
	case n <= 64:
		return n
	case n <= 100:
		return 100
	case n <= 1000:
		return 1000
	case n <= 10000:
		return 10000
	default:
		return 100000
	}
}

func (c *collector) record(degree int, d time.Duration) {
	degree = degreeBin(degree)
	c.nets++
	c.busy += d
	if c.degrees == nil {
		c.degrees = map[int]*DegreeLatency{}
	}
	dl := c.degrees[degree]
	if dl == nil {
		dl = &DegreeLatency{Degree: degree}
		c.degrees[degree] = dl
	}
	dl.Nets++
	dl.Total += d
	if d > dl.Max {
		dl.Max = d
	}
	dl.Buckets[bucketOf(d)]++
}

// merge folds one worker's collector into the stats under the routing
// method's display name (caller holds the engine lock).
func (s *Stats) merge(methodName string, c *collector) {
	s.NetsRouted += c.nets
	s.Errors += c.errs
	s.Busy += c.busy
	if c.nets > 0 || c.errs > 0 {
		i := sort.Search(len(s.Methods), func(i int) bool { return s.Methods[i].Name >= methodName })
		if i == len(s.Methods) || s.Methods[i].Name != methodName {
			s.Methods = append(s.Methods, MethodStats{})
			copy(s.Methods[i+1:], s.Methods[i:])
			s.Methods[i] = MethodStats{Name: methodName}
		}
		s.Methods[i].Nets += c.nets
		s.Methods[i].Errors += c.errs
	}
	for deg, dl := range c.degrees {
		i := sort.Search(len(s.Degrees), func(i int) bool { return s.Degrees[i].Degree >= deg })
		if i == len(s.Degrees) || s.Degrees[i].Degree != deg {
			s.Degrees = append(s.Degrees, DegreeLatency{})
			copy(s.Degrees[i+1:], s.Degrees[i:])
			s.Degrees[i] = DegreeLatency{Degree: deg}
		}
		dst := &s.Degrees[i]
		dst.Nets += dl.Nets
		dst.Total += dl.Total
		if dl.Max > dst.Max {
			dst.Max = dl.Max
		}
		for b := range dl.Buckets {
			dst.Buckets[b] += dl.Buckets[b]
		}
	}
}

func (s Stats) clone() Stats {
	c := s
	c.Methods = append([]MethodStats(nil), s.Methods...)
	c.Degrees = append([]DegreeLatency(nil), s.Degrees...)
	return c
}

// Speedup is the ratio of summed per-net routing time to wall-clock time:
// the effective parallelism the batch achieved. Per-net times are wall
// clock as seen by each worker, so when the pool is oversubscribed
// (workers > GOMAXPROCS) they include scheduler wait and the ratio
// overstates true CPU parallelism.
func (s Stats) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Elapsed)
}

// String renders a compact multi-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nets routed   %d (%d errors, %d batches)\n", s.NetsRouted, s.Errors, s.Batches)
	for _, m := range s.Methods {
		fmt.Fprintf(&b, "method %-12s %6d nets", m.Name, m.Nets)
		if m.Errors > 0 {
			fmt.Fprintf(&b, "  %d errors", m.Errors)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "wall / busy   %s / %s (%.2fx effective parallelism)\n",
		s.Elapsed.Round(time.Microsecond), s.Busy.Round(time.Microsecond), s.Speedup())
	if s.TableColdStart > 0 || s.TableMappedBytes > 0 {
		fmt.Fprintf(&b, "LUT load      %s cold start", s.TableColdStart.Round(time.Microsecond))
		if s.TableMappedBytes > 0 {
			fmt.Fprintf(&b, ", %d bytes mapped", s.TableMappedBytes)
		}
		fmt.Fprintf(&b, "\n")
	}
	total := s.CacheHits + s.CacheMisses
	if total > 0 {
		fmt.Fprintf(&b, "LUT cache     %d hits / %d misses (%.1f%% hit rate", s.CacheHits, s.CacheMisses,
			100*float64(s.CacheHits)/float64(total))
		if s.CacheErrors > 0 {
			fmt.Fprintf(&b, ", %d errors", s.CacheErrors)
		}
		fmt.Fprintf(&b, ")\n")
	}
	if s.ToposEvaluated > 0 {
		fmt.Fprintf(&b, "LUT symbolic  %d topologies evaluated, %d trees materialized (%.1f%% skipped)\n",
			s.ToposEvaluated, s.TreesMaterialized,
			100*(1-float64(s.TreesMaterialized)/float64(s.ToposEvaluated)))
	}
	if sub := s.SubFrontierHits + s.SubFrontierMisses; sub > 0 {
		fmt.Fprintf(&b, "sub-frontier  %d hits / %d misses (%.1f%% hit rate)\n",
			s.SubFrontierHits, s.SubFrontierMisses, 100*float64(s.SubFrontierHits)/float64(sub))
	}
	if ded := s.DedupHits + s.DedupMisses; ded > 0 {
		fmt.Fprintf(&b, "net dedup     %d duplicates / %d unique (%.1f%% of batch deduped)\n",
			s.DedupHits, s.DedupMisses, 100*float64(s.DedupHits)/float64(ded))
	}
	if eco := s.EcoHits + s.EcoFullReroutes; eco > 0 {
		fmt.Fprintf(&b, "eco           %d hits / %d full reroutes (%.1f%% incremental)\n",
			s.EcoHits, s.EcoFullReroutes, 100*float64(s.EcoHits)/float64(eco))
		fmt.Fprintf(&b, "eco dirty     %d dirty subtrees, %d cache invalidations\n",
			s.DirtySubtrees, s.CacheInvalidations)
	}
	if s.HierNets > 0 || s.HierFlat > 0 {
		fmt.Fprintf(&b, "hier          %d hierarchical / %d flat nets, %d clusters + %d singletons\n",
			s.HierNets, s.HierFlat, s.HierClusters, s.HierSingletons)
		fmt.Fprintf(&b, "hier shape    max cluster %d pins, max depth %d levels\n",
			s.HierMaxCluster, s.HierMaxLevels)
	}
	for _, d := range s.Degrees {
		// Rows past 64 are decade bins (see degreeBin): label the upper bound.
		label := fmt.Sprintf("%-5d", d.Degree)
		if d.Degree > 64 {
			label = fmt.Sprintf("≤%-4d", d.Degree)
		}
		fmt.Fprintf(&b, "degree %s  %6d nets  mean %-10s max %s\n",
			label, d.Nets, d.Mean().Round(time.Microsecond), d.Max.Round(time.Microsecond))
	}
	return b.String()
}
