package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"patlabor/internal/dw"
	"patlabor/internal/method"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/salt"
	"patlabor/internal/tree"
)

// blockUntilCancelled is a registry method whose every route parks until
// the context is cancelled — it makes "a batch in flight when cancel
// arrives" deterministic instead of a race against real routing speed.
func init() {
	method.Register(method.NewFunc("Block-Until-Cancelled",
		func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}))
}

// TestRouteAllCancelMidBatch cancels a large batch while every worker is
// parked mid-route and demands: RouteAll returns context.Canceled within
// bounded time, the results are nil, and the goroutine count returns to
// its pre-batch baseline (no leaked workers).
func TestRouteAllCancelMidBatch(t *testing.T) {
	nets := make([]tree.Net, 500)
	rng := rand.New(rand.NewSource(42))
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 4, 1000)
	}
	baseline := runtime.NumGoroutine()

	e, err := New(Options{Workers: 8, Method: "block-until-cancelled"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	defer cancel()

	start := time.Now()
	res, err := e.RouteAll(ctx, nets)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled batch returned %d results, want nil", len(res))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want bounded abort", elapsed)
	}

	// Workers exit once the job channel closes; give the scheduler a
	// moment before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Fatalf("goroutines %d > baseline %d after cancel", got, baseline)
	}
}

// TestRouteAllPreCancelled verifies an already-cancelled context fails
// fast without routing anything.
func TestRouteAllPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nets := []tree.Net{netgen.Uniform(rand.New(rand.NewSource(2)), 5, 1000)}
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteAll(ctx, nets); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := e.Stats(); s.NetsRouted != 0 {
		t.Fatalf("pre-cancelled batch routed %d nets", s.NetsRouted)
	}
}

// TestDWExpiredDeadlineFailsFast routes a degree-9 net with the exact DP
// under an already-expired deadline: the DP must notice before its subset
// loop and return context.DeadlineExceeded near-instantly instead of
// enumerating 2^9 sink subsets.
func TestDWExpiredDeadlineFailsFast(t *testing.T) {
	net := netgen.Uniform(rand.New(rand.NewSource(9)), 9, 8000)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := dw.FrontierContext(ctx, net, dw.DefaultOptions())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("expired deadline took %v to surface", elapsed)
	}
}

// TestForEachContextCancel covers the single-worker and pooled paths of
// the parallel-for under cancellation.
func TestForEachContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var visited atomic.Int64
		err := ForEachContext(ctx, 1000, workers, func(i int) error {
			if i == 3 {
				cancel()
			}
			visited.Add(1)
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if visited.Load() >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch", workers)
		}
	}
}

// TestRouteAllMethodSelection routes a batch with Method: "salt" and
// checks the engine's output matches the serial baseline, and that the
// per-method counters are attributed to SALT's display name.
func TestRouteAllMethodSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nets := make([]tree.Net, 25)
	for i := range nets {
		nets[i] = netgen.Clustered(rng, 5+rng.Intn(6), 9000, 800)
	}
	e, err := New(Options{Workers: 4, Method: "salt"})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Method(); got != "SALT" {
		t.Fatalf("Method() = %q, want SALT", got)
	}
	res, err := e.RouteAll(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, cands := range res {
		want := salt.Sweep(nets[i], nil)
		if fmt.Sprint(solsOf(cands)) != fmt.Sprint(solsOf(want)) {
			t.Fatalf("net %d: engine SALT frontier differs from serial salt.Sweep", i)
		}
	}
	s := e.Stats()
	if len(s.Methods) != 1 || s.Methods[0].Name != "SALT" || s.Methods[0].Nets != 25 {
		t.Fatalf("per-method stats = %+v", s.Methods)
	}

	if _, err := New(Options{Method: "no-such-router"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
