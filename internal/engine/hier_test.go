package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/netgen"
	"patlabor/internal/tree"
)

// TestEngineHierMethod wires the hierarchical router through the engine:
// a mixed batch (small nets on the flat path, huge nets on the clustered
// path, plus a translated duplicate that must route to the same Sols) is
// byte-identical with workers 1 + cache off and workers 4 + cache on, and
// the hier counters surface through Stats.
func TestEngineHierMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nets := []tree.Net{
		netgen.Uniform(rng, 5, 4000),
		netgen.Clustered(rng, 30, 100000, 4000),
		netgen.MegaClustered(rng, 90, 100000, 5, 6000),
		netgen.MegaClustered(rng, 200, 100000, 8, 8000),
		netgen.Uniform(rng, 70, 30000),
	}
	// Translated duplicate of the degree-90 net: same relative geometry,
	// shifted die position — the batch dedup's 'L' key unifies it, and
	// translation equivariance demands identical frontier Sols.
	nets = append(nets, translateNet(geom.Pt(777, -333), nets[2]))

	ref, err := RouteAll(context.Background(), nets, Options{Method: "hier", Workers: 1, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Method: "hier", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RouteAll(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nets {
		if len(got[i]) == 0 {
			t.Fatalf("net %d: empty frontier", i)
		}
		if fmt.Sprint(solsOf(got[i])) != fmt.Sprint(solsOf(ref[i])) {
			t.Fatalf("net %d (degree %d): cached parallel frontier differs from serial cache-less",
				i, nets[i].Degree())
		}
		for k, c := range got[i] {
			if err := c.Val.Validate(nets[i]); err != nil {
				t.Fatalf("net %d candidate %d: %v", i, k, err)
			}
		}
	}
	if fmt.Sprint(solsOf(got[2])) != fmt.Sprint(solsOf(got[len(got)-1])) {
		t.Fatal("translated duplicate produced a different frontier")
	}

	s := e.Stats()
	// Degrees 90, 200 and 70 route hierarchically; the translated
	// duplicate is served by the batch dedup without a fourth route.
	if s.HierNets != 3 {
		t.Fatalf("HierNets = %d, want 3", s.HierNets)
	}
	if s.HierFlat != 2 {
		t.Fatalf("HierFlat = %d, want 2", s.HierFlat)
	}
	if s.HierClusters == 0 || s.HierMaxCluster < 2 || s.HierMaxLevels < 1 {
		t.Fatalf("hier shape counters missing: %+v", s)
	}
	text := s.String()
	if !strings.Contains(text, "hier") {
		t.Fatalf("Stats string lacks hier lines:\n%s", text)
	}

	e.Reset()
	if s := e.Stats(); s.HierNets != 0 || s.HierClusters != 0 {
		t.Fatalf("Reset did not rebase hier counters: %+v", s)
	}
}
