package engine

import (
	"encoding/binary"

	"patlabor/internal/hanan"
	"patlabor/internal/tree"
)

// dupAssign is one net's slot in a batch dedup plan: rep is the index of
// the net whose frontier answers for this one (rep == own index means the
// net is a representative and must be routed), and iso maps the
// representative's plane and pin indices onto this net's (nil for
// representatives).
type dupAssign struct {
	rep int
	iso *hanan.Isometry
}

// repCand is one representative already planned under a dedup key; ranks
// and tf are retained only for canonically keyed candidates, where the
// isometry must be derived (and verified) per duplicate.
type repCand struct {
	idx   int
	ranks hanan.Ranks
	tf    hanan.Transform
}

// planDedup scans the batch in index order and groups nets that are
// guaranteed to produce transform-identical frontiers, so RouteAll can
// route one representative per group and synthesize the rest. The
// grouping mirrors core.SubCache's key scheme, at net granularity:
//
//   - Small nets the lookup table covers key on their canonical symmetry
//     class ('S': canonical pattern plus canonically transformed gaps);
//     any of the 8 dihedral symmetries plus translation maps the
//     representative's frontier onto the duplicate's exactly. Equal keys
//     are re-verified coordinate-by-coordinate by hanan.NewIsometry; a
//     net whose isometry derivation fails against every candidate simply
//     becomes its own representative.
//
//   - All other nets key on translation only ('L': degree plus
//     source-relative pin coordinates, in pin order) — the exact DP and
//     the local search are translation-equivariant but not
//     reflection-invariant in their tie-breaks, and the local search's
//     pin selection follows sink indices, so an order-permuted translate
//     is deliberately NOT grouped (its frontier is not guaranteed
//     identical).
//
// The first occurrence of each key (lowest index) is the representative,
// so every duplicate's index is strictly above its representative's —
// which keeps RouteAll's lowest-failed-index error deterministic: a
// duplicate would fail exactly when its representative does, and the
// representative comes first.
//
// hits counts nets answered by a batch-mate, misses counts nets the
// dedup layer examined but had to route.
func (e *Engine) planDedup(nets []tree.Net) (assigns []dupAssign, hits, misses int64) {
	assigns = make([]dupAssign, len(nets))
	groups := make(map[string][]repCand)
	var buf []byte
	var hs, vs []int64
	for i, net := range nets {
		assigns[i].rep = i
		n := net.Degree()
		if n < 2 {
			continue // trivial nets: routing is cheaper than keying
		}
		canonical := n <= e.lambda && e.table != nil && e.table.Covers(n)
		var r hanan.Ranks
		var tf hanan.Transform
		if canonical {
			r = hanan.RanksOf(net)
			buf = append(buf[:0], 'S')
			buf, tf = hanan.AppendCanonicalKey(buf, r.Pattern)
			hs, vs = tf.ApplyLengthsInto(r.H, r.V, hs, vs)
			for _, g := range hs {
				buf = binary.AppendVarint(buf, g)
			}
			for _, g := range vs {
				buf = binary.AppendVarint(buf, g)
			}
		} else {
			buf = append(buf[:0], 'L')
			buf = binary.AppendUvarint(buf, uint64(n))
			src := net.Pins[0]
			for _, p := range net.Pins[1:] {
				buf = binary.AppendVarint(buf, p.X-src.X)
				buf = binary.AppendVarint(buf, p.Y-src.Y)
			}
		}
		cands := groups[string(buf)]
		matched := false
		for _, c := range cands {
			if canonical {
				iso, err := hanan.NewIsometry(c.ranks, c.tf, r, tf)
				if err != nil {
					continue // key collision: verification refused, try the next
				}
				assigns[i] = dupAssign{rep: c.idx, iso: iso}
			} else {
				delta := net.Pins[0].Sub(nets[c.idx].Pins[0])
				assigns[i] = dupAssign{rep: c.idx, iso: hanan.Translation(delta)}
			}
			matched = true
			break
		}
		if matched {
			hits++
			continue
		}
		misses++
		groups[string(buf)] = append(cands, repCand{idx: i, ranks: r, tf: tf})
	}
	return assigns, hits, misses
}

// degreeBucket labels a net degree for profiling: pprof samples taken
// while routing carry the bucket, so `go tool pprof` can attribute time
// to small exact solves versus large local searches.
func degreeBucket(n int) string {
	switch {
	case n <= 9:
		return "2-9"
	case n <= 16:
		return "10-16"
	case n <= 32:
		return "17-32"
	case n <= 64:
		return "33-64"
	case n <= 100:
		return "65-100"
	case n <= 1000:
		return "101-1000"
	case n <= 10000:
		return "1001-10000"
	default:
		return "10001+"
	}
}
