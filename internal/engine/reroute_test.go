package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/eco"
	"patlabor/internal/geom"
	"patlabor/internal/netgen"
	"patlabor/internal/tree"
)

// resultEqual reports whether two frontiers are byte-identical (objective
// vectors and trees, node for node).
func resultEqual(got, want Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("frontier size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Sol != want[i].Sol {
			return fmt.Errorf("item %d: sol %+v, want %+v", i, got[i].Sol, want[i].Sol)
		}
		a, b := got[i].Val, want[i].Val
		if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
			return fmt.Errorf("item %d: tree shape differs", i)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] || a.Parent[j] != b.Parent[j] {
				return fmt.Errorf("item %d: node %d differs", i, j)
			}
		}
	}
	return nil
}

// TestRerouteBatchDifferential is the worker-count half of the churn
// differential: the same pregenerated edit streams replayed through
// engines at workers 1, 8 and 4×GOMAXPROCS (the oversubscribed pool,
// every engine sharing its own warm sharded sub-frontier cache across
// steps) must agree with each other and with a serial from-scratch
// core.Route of every post-edit net, at every step.
func TestRerouteBatchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	const count, steps = 40, 3
	nets := make([]tree.Net, count)
	for i := range nets {
		deg := 2 + rng.Intn(6)
		if i%5 == 0 {
			deg = 10 + rng.Intn(9)
		}
		nets[i] = netgen.Uniform(rng, deg, 4000)
	}
	streams := make([][][]eco.Edit, count)
	for i, net := range nets {
		streams[i] = netgen.EditStream(rng, net, netgen.EditStreamOptions{
			Steps: steps, EditsPerStep: 1 + net.Degree()/8,
			RevertPercent: 30, StructuralPercent: 20, Span: 4000,
		})
	}

	ctx := context.Background()
	workerCounts := []int{1, 8, 4 * runtime.GOMAXPROCS(0)}
	handles := make([][]*eco.Handle, len(workerCounts))
	engines := make([]*Engine, len(workerCounts))
	for wi, w := range workerCounts {
		eng, err := New(Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		engines[wi] = eng
		if handles[wi], err = eng.Track(ctx, nets); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < steps; s++ {
		batch := make([][]eco.Edit, count)
		for i := range batch {
			batch[i] = streams[i][s]
		}
		var first []Result
		for wi, w := range workerCounts {
			got, err := engines[wi].RerouteBatch(ctx, handles[wi], batch)
			if err != nil {
				t.Fatalf("workers %d step %d: %v", w, s, err)
			}
			for i := range got {
				post := handles[wi][i].Net()
				want, err := core.Route(post, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := resultEqual(got[i], want); err != nil {
					t.Fatalf("workers %d step %d net %d vs scratch: %v", w, s, i, err)
				}
				if verr := got[i][0].Val.Validate(post); verr != nil {
					t.Fatalf("workers %d step %d net %d: %v", w, s, i, verr)
				}
			}
			if wi == 0 {
				first = got
			} else {
				for i := range got {
					if err := resultEqual(got[i], first[i]); err != nil {
						t.Fatalf("step %d net %d: workers %d diverge from workers %d: %v",
							s, i, w, workerCounts[0], err)
					}
				}
			}
		}
	}
}

// TestRerouteStats checks the eco counters surface through Stats, the
// channel invariant holds at the engine level, String renders the eco
// block, and Reset rebases the session-cumulative counters to zero.
func TestRerouteStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ctx := context.Background()
	eng, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]tree.Net, 8)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 4+rng.Intn(10), 3000)
	}
	handles, err := eng.Track(ctx, nets)
	if err != nil {
		t.Fatal(err)
	}
	edits := make([][]eco.Edit, len(handles))
	for i := range edits {
		// Half the batch is a no-op reroute — guaranteed identity EcoHits.
		if i%2 == 0 {
			edits[i] = nil
		} else {
			edits[i] = []eco.Edit{eco.PerturbCoords(1, geom.Pt(7, -7))}
		}
	}
	if _, err := eng.RerouteBatch(ctx, handles, edits); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	calls := int64(len(nets) + len(handles))
	if s.EcoHits+s.EcoFullReroutes != calls {
		t.Fatalf("EcoHits %d + EcoFullReroutes %d != %d Track/Reroute calls", s.EcoHits, s.EcoFullReroutes, calls)
	}
	if s.EcoHits < int64(len(handles)/2) {
		t.Fatalf("expected at least %d identity hits, got %d", len(handles)/2, s.EcoHits)
	}
	if s.DirtySubtrees <= 0 {
		t.Fatalf("DirtySubtrees = %d after real edits", s.DirtySubtrees)
	}
	if out := s.String(); !strings.Contains(out, "eco") {
		t.Fatalf("String() misses the eco block:\n%s", out)
	}
	eng.Reset()
	s = eng.Stats()
	if s.EcoHits != 0 || s.EcoFullReroutes != 0 || s.DirtySubtrees != 0 || s.CacheInvalidations != 0 {
		t.Fatalf("Reset left eco counters: %+v", s)
	}
	// Post-Reset traffic counts from the new baseline.
	if _, err := eng.RerouteBatch(ctx, handles, edits); err != nil {
		t.Fatal(err)
	}
	if s = eng.Stats(); s.EcoHits+s.EcoFullReroutes != int64(len(handles)) {
		t.Fatalf("rebased counters wrong: %+v", s)
	}
}

// TestRerouteErrors covers the failure surface: baseline-method engines
// reject ECO mode, mismatched batch lengths are caught, and an invalid
// edit reports the lowest failing net index without corrupting handles.
func TestRerouteErrors(t *testing.T) {
	ctx := context.Background()
	base, err := New(Options{Method: "salt"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Track(ctx, []tree.Net{tree.NewNet(geom.Pt(0, 0), geom.Pt(1, 1))}); err == nil {
		t.Fatal("baseline Track accepted")
	}
	if _, err := base.RerouteBatch(ctx, nil, nil); err == nil {
		t.Fatal("baseline RerouteBatch accepted")
	}

	eng, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	nets := []tree.Net{
		tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(9, 2)),
		tree.NewNet(geom.Pt(1, 1), geom.Pt(6, 6), geom.Pt(2, 9)),
	}
	handles, err := eng.Track(ctx, nets)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RerouteBatch(ctx, handles, make([][]eco.Edit, 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := [][]eco.Edit{
		{eco.MovePin(99, geom.Pt(0, 0))},
		{eco.MovePin(98, geom.Pt(0, 0))},
	}
	if _, err := eng.RerouteBatch(ctx, handles, bad); err == nil || !strings.Contains(err.Error(), "net 0") {
		t.Fatalf("want lowest-index failure, got %v", err)
	}
	// The failed batch left both handles at their pre-edit state.
	for i, h := range handles {
		want, err := core.Route(nets[i], core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := resultEqual(h.Frontier(), want); err != nil {
			t.Fatalf("net %d corrupted by failed batch: %v", i, err)
		}
	}
}

// TestPlanDedupMutationRegression pins down the staleness hazard the eco
// memo shares with the batch dedup: a net mutated by the caller between
// RouteAll calls must never be answered by the congruence-class
// representative of its previous geometry. planDedup keys each call's
// nets afresh, so the mutated net re-keys and re-routes; this test keeps
// it that way.
func TestPlanDedupMutationRegression(t *testing.T) {
	ctx := context.Background()
	eng, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := tree.NewNet(geom.Pt(0, 0), geom.Pt(40, 10), geom.Pt(12, 33), geom.Pt(35, 5))
	shifted := tree.Net{Pins: make([]geom.Point, base.Degree())}
	for i, p := range base.Pins {
		shifted.Pins[i] = p.Add(geom.Pt(1000, 2000))
	}
	nets := []tree.Net{base, shifted}
	first, err := eng.RouteAll(ctx, nets)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultEqual(first[0], first[1]); err == nil {
		// Translates route identically only up to translation; sols match.
		for i := range first[0] {
			if first[0][i].Sol != first[1][i].Sol {
				t.Fatal("translate dedup produced different sols")
			}
		}
	}

	// Mutate the second net in the caller's slice and route again: the
	// result must be the mutated net's own frontier, not the stale class
	// representative's.
	nets[1].Pins[2] = nets[1].Pins[2].Add(geom.Pt(500, -700))
	second, err := eng.RouteAll(ctx, nets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Route(nets[1], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultEqual(second[1], want); err != nil {
		t.Fatalf("mutated net answered stale: %v", err)
	}
	if verr := second[1][0].Val.Validate(nets[1]); verr != nil {
		t.Fatalf("mutated net's tree invalid: %v", verr)
	}
}
