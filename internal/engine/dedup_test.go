package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// applyNet realises a plane symmetry plus translation on a net, with the
// sink order permuted — the strongest disguise the dedup layer claims to
// see through for table-covered degrees.
func applyNet(rng *rand.Rand, tf hanan.Transform, d geom.Point, net tree.Net) tree.Net {
	apply := func(p geom.Point) geom.Point {
		x, y := p.X, p.Y
		if tf.Transpose {
			x, y = y, x
		}
		if tf.FlipX {
			x = -x
		}
		if tf.FlipY {
			y = -y
		}
		return geom.Pt(x+d.X, y+d.Y)
	}
	out := tree.Net{Pins: make([]geom.Point, net.Degree())}
	out.Pins[0] = apply(net.Pins[0])
	for i, j := range rng.Perm(net.Degree() - 1) {
		out.Pins[1+j] = apply(net.Pins[1+i])
	}
	return out
}

// translateNet shifts every pin by d, preserving sink order — the only
// disguise the 'L' translation key claims to see through (the local
// search's tie-breaks follow pin indices, so order-permuted copies are
// not guaranteed identical frontiers and must not dedup).
func translateNet(d geom.Point, net tree.Net) tree.Net {
	out := tree.Net{Pins: make([]geom.Point, net.Degree())}
	for i, p := range net.Pins {
		out.Pins[i] = geom.Pt(p.X+d.X, p.Y+d.Y)
	}
	return out
}

// dupBatch builds a 220-net batch rich in duplicates: a pool of base nets
// (small table-covered degrees plus a few local-search degrees), padded
// with symmetry/permutation copies of the small ones and order-preserving
// translates of the large ones, in shuffled order.
func dupBatch(rng *rand.Rand) []tree.Net {
	const count = 220
	transforms := hanan.AllTransforms()
	var base []tree.Net
	for i := 0; i < 24; i++ {
		base = append(base, netgen.Uniform(rng, 2+rng.Intn(6), 4000))
	}
	for i := 0; i < 6; i++ {
		base = append(base, netgen.Clustered(rng, 12+rng.Intn(3), 8000, 700))
	}
	nets := append([]tree.Net(nil), base...)
	for len(nets) < count {
		src := base[rng.Intn(len(base))]
		d := geom.Pt(rng.Int63n(20000)-10000, rng.Int63n(20000)-10000)
		if src.Degree() <= 7 {
			tf := transforms[rng.Intn(len(transforms))]
			nets = append(nets, applyNet(rng, tf, d, src))
		} else {
			nets = append(nets, translateNet(d, src))
		}
	}
	rng.Shuffle(len(nets), func(i, j int) { nets[i], nets[j] = nets[j], nets[i] })
	return nets
}

// TestBatchDedupDifferential is the acceptance gate of the batch caches:
// a duplicate-rich 220-net batch routed with the sub-frontier memo and
// net dedup on returns byte-identical frontiers to the same batch with
// NoCache, and the engine's stats actually show cache traffic.
func TestBatchDedupDifferential(t *testing.T) {
	nets := dupBatch(rand.New(rand.NewSource(42)))

	cached, err := New(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.RouteAll(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	// A second pass over the same engine: the dedup plan is per-batch,
	// but the sub-frontier memo persists, so every representative's
	// windows now take the hit path — which must be byte-identical too.
	got2, err := cached.RouteAll(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RouteAll(context.Background(), nets, Options{Workers: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}

	for i := range nets {
		gs := make([]pareto.Sol, len(got[i]))
		for k, c := range got[i] {
			gs[k] = c.Sol
			if err := c.Val.Validate(nets[i]); err != nil {
				t.Fatalf("net %d candidate %d: %v", i, k, err)
			}
		}
		ws := make([]pareto.Sol, len(want[i]))
		for k, c := range want[i] {
			ws[k] = c.Sol
		}
		if !bytes.Equal([]byte(fmt.Sprint(gs)), []byte(fmt.Sprint(ws))) {
			t.Fatalf("net %d (degree %d): cached frontier %v != uncached %v",
				i, nets[i].Degree(), gs, ws)
		}
		g2 := make([]pareto.Sol, len(got2[i]))
		for k, c := range got2[i] {
			g2[k] = c.Sol
		}
		if !bytes.Equal([]byte(fmt.Sprint(g2)), []byte(fmt.Sprint(gs))) {
			t.Fatalf("net %d: warm-memo frontier %v != cold %v", i, g2, gs)
		}
	}

	st := cached.Stats()
	if st.NetsRouted != 2*int64(len(nets)) {
		t.Fatalf("NetsRouted = %d, want %d (duplicates must still be counted)", st.NetsRouted, 2*len(nets))
	}
	var degreeNets int64
	for _, d := range st.Degrees {
		degreeNets += d.Nets
	}
	if degreeNets != 2*int64(len(nets)) {
		t.Fatalf("degree histogram covers %d nets, want %d", degreeNets, 2*len(nets))
	}
	if st.DedupHits == 0 {
		t.Fatal("no dedup hits on a duplicate-rich batch")
	}
	if st.DedupMisses == 0 {
		t.Fatal("no dedup misses (every batch has representatives)")
	}
	if st.SubFrontierHits == 0 {
		t.Fatal("no sub-frontier hits despite repeated large-net searches")
	}
	for _, want := range []string{"net dedup", "sub-frontier"} {
		if !strings.Contains(st.String(), want) {
			t.Fatalf("Stats.String() missing %q:\n%s", want, st.String())
		}
	}
}

// TestNoCacheStatsSilent checks the off switch: a NoCache engine reports
// zero cache traffic and its String() omits the cache lines.
func TestNoCacheStatsSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nets := make([]tree.Net, 12)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 4, 1000)
	}
	// Duplicate-heavy on purpose: even so, NoCache must not dedup.
	for i := 6; i < 12; i++ {
		nets[i] = nets[i-6]
	}
	e, err := New(Options{Workers: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteAll(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.DedupHits != 0 || st.DedupMisses != 0 || st.SubFrontierHits != 0 || st.SubFrontierMisses != 0 {
		t.Fatalf("NoCache engine reports cache traffic: %+v", st)
	}
	for _, banned := range []string{"net dedup", "sub-frontier"} {
		if strings.Contains(st.String(), banned) {
			t.Fatalf("NoCache Stats.String() contains %q:\n%s", banned, st.String())
		}
	}
}

// TestDedupReset checks that Reset rebases the sub-frontier snapshot: a
// second identical batch reports only its own traffic.
func TestDedupReset(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nets := []tree.Net{
		netgen.Clustered(rng, 12, 8000, 700),
	}
	nets = append(nets, translateNet(geom.Pt(500, -300), nets[0]))
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteAll(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", first.DedupHits)
	}
	e.Reset()
	zero := e.Stats()
	if zero.DedupHits != 0 || zero.SubFrontierHits != 0 || zero.SubFrontierMisses != 0 {
		t.Fatalf("Reset left cache counters: %+v", zero)
	}
	if _, err := e.RouteAll(context.Background(), nets); err != nil {
		t.Fatal(err)
	}
	second := e.Stats()
	if second.DedupHits != 1 {
		t.Fatalf("second batch DedupHits = %d, want 1", second.DedupHits)
	}
	// The memo survives Reset, so the repeated batch should hit at least
	// as often as it missed the first time around.
	if second.SubFrontierMisses > first.SubFrontierMisses {
		t.Fatalf("repeat batch missed more (%d) than the first (%d)",
			second.SubFrontierMisses, first.SubFrontierMisses)
	}
}

// TestPlanDedupSymmetry exercises the planner directly: translated and
// reflected copies of a table-covered net collapse onto one
// representative, and an unrelated net stays its own.
func TestPlanDedupSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := netgen.Uniform(rng, 5, 3000)
	tfs := hanan.AllTransforms()
	nets := []tree.Net{
		base,
		applyNet(rng, tfs[0], geom.Pt(100, 200), base), // translate
		netgen.Uniform(rng, 5, 3000),                   // unrelated
	}
	e, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	assigns, hits, misses := e.planDedup(nets)
	if assigns[0].rep != 0 || assigns[2].rep != 2 {
		t.Fatalf("representatives misassigned: %+v", assigns)
	}
	if assigns[1].rep != 0 || assigns[1].iso == nil {
		t.Fatalf("translate not deduped: %+v", assigns[1])
	}
	if hits != 1 || misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", hits, misses)
	}
	// Reflected copies dedup whenever the canonical keys line up (they
	// can legitimately differ under a stabilizer ambiguity, so count
	// successes over several trials rather than demanding each one).
	matched := 0
	for trial := 0; trial < 20; trial++ {
		b := netgen.Uniform(rng, 2+rng.Intn(6), 3000)
		m := applyNet(rng, tfs[1+rng.Intn(len(tfs)-1)], geom.Pt(rng.Int63n(1000), rng.Int63n(1000)), b)
		a, _, _ := e.planDedup([]tree.Net{b, m})
		if a[1].rep == 0 {
			matched++
			if a[1].iso == nil {
				t.Fatal("dedup without an isometry")
			}
		}
	}
	if matched < 10 {
		t.Fatalf("only %d/20 reflected copies deduped", matched)
	}
}
