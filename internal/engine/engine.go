// Package engine is the batch-routing engine: it fans a slice of nets out
// across a pool of workers, routes every net with a registered routing
// method (internal/method; PatLabor's core by default), and returns the
// per-net Pareto sets in input order regardless of completion order.
// Routing is embarrassingly parallel across nets — each net's construction
// touches no mutable shared state — so the only cross-goroutine structures
// are the read-only lookup table (internal/lut, immutable after its
// sync.Once build, RWMutex-guarded for file merges), the shared
// sub-frontier memo (core.SubCache, mutex-guarded; hits are byte-identical
// to recomputation, so results never depend on cache state or worker
// interleaving) and the engine's own statistics collector.
//
// On top of the worker pool the engine runs a batch-level net dedup (see
// planDedup): nets with identical canonical form — translates, and for
// table-covered small degrees any of the 8 plane symmetries — are routed
// once and the duplicates' frontiers synthesized by an exact isometry.
// Options.NoCache disables both the memo and the dedup.
//
// Every batch runs under a context.Context: cancellation stops dispatching
// new nets immediately, aborts in-flight nets at their next iteration
// check (the method layer threads the context into the DP subset loop and
// the local-search iterations), and leaves no goroutine behind — workers
// exit once the job channel closes.
//
// Determinism contract: for every net, the engine returns exactly the
// frontier the serial method would return, byte for byte, at any worker
// count. The differential test in engine_test.go enforces this.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"patlabor/internal/core"
	"patlabor/internal/eco"
	"patlabor/internal/hier"
	"patlabor/internal/lut"
	"patlabor/internal/method"
	"patlabor/internal/pareto"
	"patlabor/internal/policy"
	"patlabor/internal/pool"
	"patlabor/internal/tree"
)

// Result is one net's routed Pareto set: objective vectors paired with
// trees, in canonical frontier order.
type Result = []pareto.Item[*tree.Tree]

// Options configures an Engine. The zero value routes with the paper's
// defaults on GOMAXPROCS workers.
type Options struct {
	// Workers is the worker-pool size; <=0 uses runtime.GOMAXPROCS(0).
	Workers int
	// Method selects the routing method by registry name (internal/method;
	// "" = "patlabor"). The PatLabor method honours the remaining options;
	// baseline methods route with their own defaults.
	Method string
	// Lambda is the small-net threshold λ (0 = core.DefaultLambda).
	Lambda int
	// Iterations overrides the local-search iteration count (0 = ⌊n/λ⌋).
	Iterations int
	// Table answers small-net queries; nil uses the shared lut.Default().
	Table *lut.Table
	// TablePath optionally loads a lookup-table file produced by
	// cmd/lutgen into a private table (built-in eager degrees are merged
	// underneath). Both formats load: flat zero-copy tables ("PLUT"
	// magic) attach as a memory-mapped read-only backend, legacy gob
	// files decode in memory. Ignored when Table is set.
	TablePath string
	// Params overrides the trained pin-selection policy weights.
	Params *policy.Params
	// NoCache disables the batch's caches: the sub-frontier memo shared
	// across workers (core.SubCache) and the batch-level net dedup.
	// Results are byte-identical either way; the flag exists for A-B
	// benchmarking and for memory-predictable runs. It only affects the
	// patlabor method — baselines use neither cache.
	NoCache bool
}

// Engine routes batches of nets concurrently. It is safe for concurrent
// use; statistics accumulate across RouteAll calls until Reset.
type Engine struct {
	method  method.Method
	workers int
	table   *lut.Table
	// lambda is the resolved small-net threshold; planDedup needs it to
	// decide which nets the lookup table answers (and may therefore be
	// deduped across symmetries, not just translations).
	lambda int
	// dedup enables the batch-level net dedup; set only for the patlabor
	// method with caching on (baseline methods' tie-breaks have no
	// verified equivariance contract).
	dedup bool
	// subCache is the sub-frontier memo shared by every worker and every
	// RouteAll call of this engine; nil when caching is off or the method
	// never runs the local search.
	subCache *core.SubCache
	// eco is the incremental-rerouting session (nil for baseline
	// methods). It shares subCache, so reroutes and batch routes warm
	// the same window memo.
	eco *eco.Session
	// baseEco rebases the eco counters on Reset.
	baseEco eco.Stats
	// hier collects the hierarchical router's cluster counters (nil for
	// every other method); baseHier rebases the additive ones on Reset.
	hier     *hier.Counters
	baseHier hier.CounterSnapshot
	// base subtracts table traffic that predates this engine (the lut
	// counters are per-table, and the default table is shared
	// process-wide).
	base tableCounters
	// baseSubHits/baseSubMisses rebase the sub-frontier counters on Reset
	// (the SubCache is private to the engine, but Reset must still zero
	// the snapshot).
	baseSubHits, baseSubMisses int64

	mu    sync.Mutex
	stats Stats
}

// tableCounters is one snapshot of a lookup table's atomic query counters.
type tableCounters struct {
	hits, misses, errs      int64
	evaluated, materialized int64
}

func snapshotTable(t *lut.Table) tableCounters {
	var c tableCounters
	c.hits, c.misses = t.Counters()
	c.errs = t.QueryErrors()
	c.evaluated, c.materialized = t.EvalCounters()
	return c
}

// New builds an engine, resolving the routing method against the registry
// and loading the lookup-table file (if any) exactly once up front so
// workers never race on table construction.
func New(opts Options) (*Engine, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	table := opts.Table
	if table == nil && opts.TablePath != "" {
		table = lut.New()
		if err := table.LoadFile(opts.TablePath); err != nil {
			return nil, fmt.Errorf("engine: loading table: %w", err)
		}
		for d := 2; d <= lut.DefaultEagerDegree; d++ {
			if !table.Covers(d) {
				if err := table.Generate(d, 0); err != nil {
					return nil, err
				}
			}
		}
	}
	name := opts.Method
	if name == "" {
		name = "patlabor"
	}
	var m method.Method
	counting := table
	var subCache *core.SubCache
	var session *eco.Session
	var hierStats *hier.Counters
	dedup := false
	if method.Key(name) == "patlabor" {
		if !opts.NoCache {
			subCache = core.NewSubCache(0)
			dedup = true
		}
		// PatLabor routes with this engine's resolved core options; the
		// registry entry would use the defaults.
		m = method.PatLabor(core.Options{
			Lambda:     opts.Lambda,
			Iterations: opts.Iterations,
			Table:      table,
			Params:     opts.Params,
			Cache:      subCache,
			NoCache:    opts.NoCache,
		})
		// The eco session shares the engine's table and window memo; a
		// NoCache engine gets a cacheless session (identity fast path
		// only), proving reroute results never depend on cache state.
		var err error
		session, err = eco.NewSession(core.Options{
			Lambda:     opts.Lambda,
			Iterations: opts.Iterations,
			Table:      table,
			Params:     opts.Params,
			Cache:      subCache,
			NoCache:    opts.NoCache,
		})
		if err != nil {
			return nil, err
		}
		if counting == nil {
			// Resolve the shared table now (first use generates the eager
			// degrees), so that cost lands in construction, not mid-batch.
			counting = lut.Default()
		}
	} else if method.Key(name) == "hier" || method.Key(name) == "hierarchical" {
		if !opts.NoCache {
			subCache = core.NewSubCache(0)
			// The hierarchical pipeline is translation-equivariant end to
			// end (the partition compares coordinates, the port choice
			// compares distances, and the window solves inherit core's
			// contract), and nets small enough for the canonical 'S' key
			// route flat through core — so the batch dedup's guarantees
			// hold for hier exactly as for patlabor.
			dedup = true
		}
		hierStats = &hier.Counters{}
		m = method.Hier(hier.Options{
			Workers: workers,
			Core: core.Options{
				Lambda:     opts.Lambda,
				Iterations: opts.Iterations,
				Table:      table,
				Params:     opts.Params,
				Cache:      subCache,
				NoCache:    opts.NoCache,
			},
			Stats: hierStats,
		})
		if counting == nil {
			counting = lut.Default()
		}
	} else {
		mm, ok := method.Get(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown method %q (have %s)",
				name, strings.Join(method.Names(), ", "))
		}
		// Baseline methods never consult the lookup table; leave counting
		// nil (unless a table was passed explicitly) so a salt/ysd engine
		// does not pay for eager table generation.
		m = mm
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = core.DefaultLambda
	}
	e := &Engine{
		method:   m,
		workers:  workers,
		table:    counting,
		lambda:   lambda,
		dedup:    dedup,
		subCache: subCache,
		eco:      session,
		hier:     hierStats,
	}
	if counting != nil {
		e.base = snapshotTable(counting)
	}
	return e, nil
}

// Workers returns the resolved worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Method returns the display name of the engine's routing method.
func (e *Engine) Method() string { return e.method.Name() }

// RouteAll routes every net and returns the results positionally aligned
// with nets. The lowest-index failure is returned; later nets may be left
// unrouted once a failure occurs. When ctx is cancelled (or its deadline
// expires) mid-batch, dispatch stops promptly, in-flight nets abort at
// their next iteration check, the results are nil and ctx.Err() is
// returned.
func (e *Engine) RouteAll(ctx context.Context, nets []tree.Net) ([]Result, error) {
	var assigns []dupAssign
	var dedupHits, dedupMisses int64
	if e.dedup && len(nets) > 1 {
		assigns, dedupHits, dedupMisses = e.planDedup(nets)
	}
	methodName := e.method.Name()
	out := make([]Result, len(nets))
	local := make([]paddedCollector, e.workers)
	start := time.Now()
	err := pool.Each(ctx, len(nets), e.workers, func(worker, i int) error {
		if assigns != nil && assigns[i].rep != i {
			return nil // synthesized from its representative after the pass
		}
		t0 := time.Now()
		var cands Result
		var ferr error
		pprof.Do(ctx, pprof.Labels(
			"patlabor_method", methodName,
			"patlabor_degree", degreeBucket(nets[i].Degree()),
		), func(ctx context.Context) {
			cands, ferr = e.method.Frontier(ctx, nets[i])
		})
		if ferr != nil {
			local[worker].errs++
			return fmt.Errorf("engine: net %d: %w", i, ferr)
		}
		local[worker].record(nets[i].Degree(), time.Since(t0))
		out[i] = cands
		return nil
	})
	// Synthesize the duplicates from their representatives' frontiers.
	// Serial: each is a handful of small-tree clones through an isometry.
	var dups collector
	if err == nil && assigns != nil {
		for i := range assigns {
			// The synthesis pass can span thousands of nets; a cancelled
			// batch must stop here too, not just in the worker pool.
			if err = ctx.Err(); err != nil {
				break
			}
			a := assigns[i]
			if a.rep == i {
				continue
			}
			t0 := time.Now()
			src := out[a.rep]
			res := make(Result, len(src))
			for j, item := range src {
				res[j] = pareto.Item[*tree.Tree]{Sol: item.Sol, Val: a.iso.ApplyTree(item.Val)}
			}
			out[i] = res
			dups.record(nets[i].Degree(), time.Since(t0))
		}
	}
	elapsed := time.Since(start)

	e.mu.Lock()
	for w := range local {
		e.stats.merge(methodName, &local[w].collector)
	}
	if dups.nets > 0 {
		e.stats.merge(methodName, &dups)
	}
	e.stats.DedupHits += dedupHits
	e.stats.DedupMisses += dedupMisses
	e.stats.Batches++
	e.stats.Elapsed += elapsed
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats returns a snapshot of the engine's cumulative counters. The
// lookup-table counters stay zero for engines whose method never
// consults a table.
func (e *Engine) Stats() Stats {
	var cur tableCounters
	if e.table != nil {
		cur = snapshotTable(e.table)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats.clone()
	if e.table != nil {
		s.CacheHits = cur.hits - e.base.hits
		s.CacheMisses = cur.misses - e.base.misses
		s.CacheErrors = cur.errs - e.base.errs
		s.ToposEvaluated = cur.evaluated - e.base.evaluated
		s.TreesMaterialized = cur.materialized - e.base.materialized
		s.TableColdStart, s.TableMappedBytes = e.table.LoadInfo()
	}
	if e.subCache != nil {
		h, m := e.subCache.Counters()
		s.SubFrontierHits = h - e.baseSubHits
		s.SubFrontierMisses = m - e.baseSubMisses
	}
	if e.eco != nil {
		es := e.eco.Stats()
		s.EcoHits = es.EcoHits - e.baseEco.EcoHits
		s.EcoFullReroutes = es.FullReroutes - e.baseEco.FullReroutes
		s.DirtySubtrees = es.DirtySubtrees - e.baseEco.DirtySubtrees
		s.CacheInvalidations = es.CacheInvalidations - e.baseEco.CacheInvalidations
	}
	if e.hier != nil {
		hs := e.hier.Snapshot()
		s.HierNets = hs.Nets - e.baseHier.Nets
		s.HierFlat = hs.Flat - e.baseHier.Flat
		s.HierClusters = hs.Clusters - e.baseHier.Clusters
		s.HierSingletons = hs.Singletons - e.baseHier.Singletons
		// High-water marks do not rebase.
		s.HierMaxCluster = hs.MaxCluster
		s.HierMaxLevels = hs.MaxLevels
	}
	return s
}

// Reset zeroes the engine's counters (cache counters rebase to the
// table's current values).
func (e *Engine) Reset() {
	var cur tableCounters
	if e.table != nil {
		cur = snapshotTable(e.table)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
	e.base = cur
	if e.subCache != nil {
		e.baseSubHits, e.baseSubMisses = e.subCache.Counters()
	}
	if e.eco != nil {
		e.baseEco = e.eco.Stats()
	}
	if e.hier != nil {
		e.baseHier = e.hier.Snapshot()
	}
}

// RouteAll is the one-shot convenience: build an engine and route the
// batch under ctx.
func RouteAll(ctx context.Context, nets []tree.Net, opts Options) ([]Result, error) {
	e, err := New(opts)
	if err != nil {
		return nil, err
	}
	return e.RouteAll(ctx, nets)
}

// ForEach runs fn(i) for every i in [0,n) on a pool of `workers`
// goroutines (<=0 means GOMAXPROCS). Indices are dispatched in order; on
// failure the pool drains in-flight work, stops dispatching, and returns
// the error of the lowest failed index — so the reported error is
// deterministic even though scheduling is not. It is the parallel-for the
// experiment harness uses to keep aggregation order-independent: workers
// write only to their own index's slot, aggregation happens serially
// afterwards. The implementation lives in internal/pool, shared with the
// hierarchical router's intra-net cluster fan-out.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachContext is ForEach under a context: cancellation stops
// dispatching, the pool drains, and ctx.Err() is returned (taking
// precedence over any per-index error).
func ForEachContext(ctx context.Context, n, workers int, fn func(i int) error) error {
	return pool.Each(ctx, n, workers, func(_, i int) error { return fn(i) })
}
