package engine

import (
	"context"
	"fmt"
	"time"

	"patlabor/internal/eco"
	"patlabor/internal/pool"
	"patlabor/internal/tree"
)

// Rerouter returns the engine's incremental-rerouting session (ECO
// mode), sharing the engine's lookup table and sub-frontier memo — a
// net rerouted incrementally warms the same window cache batch routing
// uses. It is nil for baseline-method engines: incremental rerouting is
// defined by byte-identity to the patlabor method.
func (e *Engine) Rerouter() *eco.Session { return e.eco }

// Track registers every net with the engine's eco session, routing each
// through the worker pool, and returns the handles positionally aligned
// with nets. Routed nets count toward the engine's statistics exactly
// like a RouteAll batch; the lowest-index failure wins, as everywhere.
func (e *Engine) Track(ctx context.Context, nets []tree.Net) ([]*eco.Handle, error) {
	if e.eco == nil {
		return nil, fmt.Errorf("engine: method %q does not support incremental rerouting", e.method.Name())
	}
	handles := make([]*eco.Handle, len(nets))
	methodName := e.method.Name()
	local := make([]paddedCollector, e.workers)
	start := time.Now()
	err := pool.Each(ctx, len(nets), e.workers, func(worker, i int) error {
		t0 := time.Now()
		h, terr := e.eco.Track(ctx, nets[i])
		if terr != nil {
			local[worker].errs++
			return fmt.Errorf("engine: net %d: %w", i, terr)
		}
		local[worker].record(nets[i].Degree(), time.Since(t0))
		handles[i] = h
		return nil
	})
	e.mergeBatch(methodName, local, time.Since(start))
	if err != nil {
		return nil, err
	}
	return handles, nil
}

// RerouteBatch applies edits[i] to handles[i] across the worker pool and
// returns the post-edit Pareto frontiers in input order — each
// byte-identical to routing the post-edit net from scratch. Per-method
// and per-degree statistics accumulate as for RouteAll; the eco counters
// (EcoHits, DirtySubtrees, CacheInvalidations) surface through Stats.
func (e *Engine) RerouteBatch(ctx context.Context, handles []*eco.Handle, edits [][]eco.Edit) ([]Result, error) {
	if e.eco == nil {
		return nil, fmt.Errorf("engine: method %q does not support incremental rerouting", e.method.Name())
	}
	if len(handles) != len(edits) {
		return nil, fmt.Errorf("engine: %d handles but %d edit batches", len(handles), len(edits))
	}
	out := make([]Result, len(handles))
	methodName := e.method.Name()
	local := make([]paddedCollector, e.workers)
	start := time.Now()
	err := pool.Each(ctx, len(handles), e.workers, func(worker, i int) error {
		t0 := time.Now()
		items, rerr := handles[i].Reroute(ctx, edits[i])
		if rerr != nil {
			local[worker].errs++
			return fmt.Errorf("engine: net %d: %w", i, rerr)
		}
		local[worker].record(handles[i].Degree(), time.Since(t0))
		out[i] = items
		return nil
	})
	e.mergeBatch(methodName, local, time.Since(start))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergeBatch folds a batch's per-worker collectors and wall time into
// the engine's cumulative stats.
func (e *Engine) mergeBatch(methodName string, local []paddedCollector, elapsed time.Duration) {
	e.mu.Lock()
	for w := range local {
		e.stats.merge(methodName, &local[w].collector)
	}
	e.stats.Batches++
	e.stats.Elapsed += elapsed
	e.mu.Unlock()
}
