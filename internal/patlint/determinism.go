package patlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// checkNonDet flags the two nondeterminism sources that must never reach
// an algorithm package outside _test.go files (test files are not loaded):
// wall-clock reads (time.Now, time.Since) and math/rand imports. Routed
// results must be pure functions of the input net.
func checkNonDet(p *Package, report func(token.Pos, string, string)) {
	info := p.Info
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp.Pos(), RuleNonDet,
					fmt.Sprintf("import of %s in algorithm package (results must be deterministic; seed-free randomness is banned)", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || pkgNameOf(info, sel.X) != "time" {
				return true
			}
			if name := sel.Sel.Name; name == "Now" || name == "Since" {
				report(sel.Pos(), RuleNonDet,
					fmt.Sprintf("time.%s in algorithm package (wall-clock reads make runs nondeterministic)", name))
			}
			return true
		})
	}
}

// checkMapRange flags `range` statements over maps whose iteration order
// escapes into a slice: an append inside the loop body targeting a slice
// declared outside the loop, with no subsequent sort.*/slices.* call over
// that slice later in the same function. The sorted-keys idiom
// (collect keys, sort, then index the map) passes; a bare
// `for k, v := range m { out = append(out, v) }` does not.
func checkMapRange(p *Package, report func(token.Pos, string, string)) {
	info := p.Info
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRangeFunc(info, fd.Body, report)
		}
	}
}

func checkMapRangeFunc(info *types.Info, body *ast.BlockStmt, report func(token.Pos, string, string)) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := info.Types[rs.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		targets := appendTargets(info, rs)
		for _, tgt := range targets {
			if !sortedAfter(info, body, rs.End(), tgt) {
				report(rs.Pos(), RuleMapRange,
					fmt.Sprintf("map iteration order flows into %q with no subsequent sort (output order is nondeterministic)", tgt))
			}
		}
	}
}

// appendTargets returns the printed form of every slice expression that an
// append inside the range body grows, when its root variable is declared
// outside the loop (a per-iteration local cannot leak iteration order).
func appendTargets(info *types.Info, rs *ast.RangeStmt) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) || i >= len(as.Lhs) {
				continue
			}
			lhs := as.Lhs[i]
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			// Declared inside the loop body → per-iteration local, fine.
			if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
				continue
			}
			key := types.ExprString(lhs)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether, after position pos in the function body,
// some sort.*/slices.* call receives an argument printed exactly as tgt.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, tgt string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := pkgNameOf(info, sel.X); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == tgt {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isBuiltinAppend reports whether call invokes the built-in append.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootIdent returns the leftmost identifier of an lvalue expression
// (x, x.f, x[i].f → x), or nil for anything else.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
