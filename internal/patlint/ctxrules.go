package patlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The ctx rules enforce the context-propagation discipline of the
// routing packages (PR 3 threaded ctx at iteration granularity):
//
//   - ctxbg: a function that accepts a context.Context must not call
//     context.Background() or context.TODO(). Manufacturing a fresh root
//     context severs the caller's deadline and cancellation; only the
//     documented ctx-less compat shims (Frontier wrapping FrontierContext,
//     etc.) may do that, and they have no ctx parameter so the rule does
//     not see them.
//   - ctxloop: a loop doing iteration-scale work — a nested loop, or a
//     call into a context-aware callee — must reach a cancellation check:
//     the loop body, or an enclosing loop's body, must use the ctx
//     parameter (ctx.Err(), or passing ctx onward). A cancelled batch
//     must stop between iterations, not run a degree-9 DP to completion.

// checkCtxBg2 is the ctxbg analyzer entry point.
func checkCtxBg2(p *Pass) {
	eachCtxFunc(p.Pkg, func(fd *ast.FuncDecl, ctxParams []types.Object) {
		checkCtxBg(p.Pkg.Info, fd, p.report)
	})
}

// checkCtxLoop2 is the ctxloop analyzer entry point.
func checkCtxLoop2(p *Pass) {
	eachCtxFunc(p.Pkg, func(fd *ast.FuncDecl, ctxParams []types.Object) {
		checkCtxLoops(p.Pkg.Info, fd, ctxParams, p.report)
	})
}

// eachCtxFunc invokes fn on every declared function of the package that
// takes a context.Context parameter.
func eachCtxFunc(p *Package, fn func(*ast.FuncDecl, []types.Object)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(p.Info, fd)
			if len(ctxParams) == 0 {
				continue
			}
			fn(fd, ctxParams)
		}
	}
}

// contextParams returns the objects of fd's context.Context parameters.
func contextParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxBg flags context.Background()/context.TODO() anywhere in the
// body (closures included — a closure capturing ctx has no excuse either).
func checkCtxBg(info *types.Info, fd *ast.FuncDecl, report func(token.Pos, string, string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pkgNameOf(info, sel.X) != "context" {
			return true
		}
		if name := sel.Sel.Name; name == "Background" || name == "TODO" {
			report(call.Pos(), RuleCtxBg,
				fmt.Sprintf("context.%s() inside a context-aware function severs cancellation; thread the ctx parameter", name))
		}
		return true
	})
}

// checkCtxLoops walks the loops of fd (skipping closures, whose call
// sites are unknown) and flags heavy, uncovered ones.
func checkCtxLoops(info *types.Info, fd *ast.FuncDecl, ctxParams []types.Object, report func(token.Pos, string, string)) {
	usesCtx := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				obj := info.Uses[id]
				for _, cp := range ctxParams {
					if obj == cp {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}

	var walk func(n ast.Node, covered bool)
	walk = func(n ast.Node, covered bool) {
		switch s := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			body := loopBody(s)
			loopCovered := covered || usesCtx(body)
			if !loopCovered && loopIsHeavy(info, body) {
				report(n.Pos(), RuleCtxLoop,
					"loop does iteration-scale work but never reaches a cancellation check (use ctx.Err() or pass ctx into the body)")
			}
			for _, st := range body.List {
				walk(st, loopCovered)
			}
			return
		}
		// Generic recursion over non-loop nodes, preserving coverage.
		children(n, func(c ast.Node) { walk(c, covered) })
	}
	for _, st := range fd.Body.List {
		walk(st, false)
	}
}

// loopBody returns the block of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// loopIsHeavy reports whether the loop body does iteration-scale work: it
// contains a nested loop, or calls a function that itself takes a
// context.Context (i.e. a callee designed to be cancellable). Closures
// are skipped. Bookkeeping loops (appends, arithmetic, plain calls) pass.
func loopIsHeavy(info *types.Info, body *ast.BlockStmt) bool {
	heavy := false
	ast.Inspect(body, func(n ast.Node) bool {
		if heavy {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			heavy = true
			return false
		case *ast.CallExpr:
			if sig, ok := info.Types[n.Fun].Type.(*types.Signature); ok {
				params := sig.Params()
				for i := 0; i < params.Len(); i++ {
					if isContextType(params.At(i).Type()) {
						heavy = true
						return false
					}
				}
			}
		}
		return true
	})
	return heavy
}

// children invokes fn on each direct child node of n. ast.Inspect has no
// depth-one walk, so emulate it by stopping recursion after one level.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		fn(c)
		return false
	})
}
