package patlint

import (
	"go/ast"
	"go/types"
)

// checkGoLeak flags two goroutine-leak shapes that the PR 9 scalability
// harness can only catch statistically:
//
//   - a `go` statement launching a function with no exit path: the body
//     loops, but references no context.Context and performs no channel
//     operation, so nothing external can ever stop it. For `go f(...)`
//     the verdict comes from the goUnsafe fact (computed bottom-up, so
//     cross-package launches resolve); for `go func(){...}()` the
//     literal's body is analyzed directly.
//   - a send on a locally made unbuffered channel outside a select: if
//     the consumer returns early (the classic `for r := range results {
//     if r.err != nil { return } }`), the sender blocks forever. Buffer
//     the channel to its maximum occupancy or select on a done signal.
func checkGoLeak(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(p, info, fd)
			checkUnbufferedSends(p, info, fd)
		}
	}
}

// checkGoStmts flags go statements whose launched function cannot be
// stopped.
func checkGoStmts(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			if bodyIsGoUnsafe(info, fun.Body) {
				p.Report(gs.Pos(),
					"goroutine loops with no exit path (no ctx reference, no channel operation); nothing can ever stop it")
			}
		default:
			if callee := calleeObj(info, gs.Call); callee != nil && p.Facts.goUnsafe[callee] {
				p.Reportf(gs.Pos(),
					"goroutine %s loops with no exit path (no ctx reference, no channel operation); nothing can ever stop it",
					callee.Name())
			}
		}
		return true
	})
}

// checkUnbufferedSends flags bare sends on channels made unbuffered in
// this function. Closures are scanned too: the worker-pool idiom makes
// the channel in the parent and sends from a `go func(){...}()`.
func checkUnbufferedSends(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Channels made without a capacity argument in this function.
	unbuffered := make(map[types.Object]bool)
	noteMake := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		tv, ok := info.Types[call]
		if !ok {
			return
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return
		}
		if target, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := useOrDef(info, target); obj != nil {
				unbuffered[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					noteMake(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i < len(n.Names) {
					noteMake(n.Names[i], v)
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	// Sends that are a select comm clause are cancellable; anything else
	// on an unbuffered local channel can strand its goroutine.
	inSelect := make(map[*ast.SendStmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					inSelect[send] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || inSelect[send] {
			return true
		}
		root := rootIdent(send.Chan)
		if root == nil {
			return true
		}
		if obj := useOrDef(info, root); obj != nil && unbuffered[obj] {
			p.Reportf(send.Pos(),
				"send on unbuffered channel %q outside a select: an abandoned receiver strands this goroutine forever (buffer to maximum occupancy or select on a done signal)",
				root.Name)
		}
		return true
	})
}
