package patlint

import (
	"go/ast"
	"go/types"
)

// checkSharedMut is the cache-ownership analyzer. Values returned by the
// caching layers (SubCache sub-frontiers, ECO memo entries, LUT
// snapshots, dedup-synthesized trees) are shared between goroutines and
// across cache hits; a single in-place mutation silently corrupts every
// other reader and with it the byte-identity guarantee. Provenance is
// established two ways:
//
//   - annotation seeds: a function marked `//patlint:shared` returns
//     cache-owned data; a type marked `//patlint:shared` is cache-owned
//     wherever a value of it appears (unless the value was freshly
//     constructed in the same function — make/new/composite literal —
//     which the tracker treats as locally owned).
//   - propagation: facts.go marks any function that returns a tainted
//     value as shared itself, package by package in dependency order, so
//     a ctx-less wrapper around a memo lookup taints its callers too.
//
// Within a function, taint flows through assignments, range statements
// and field/element selection. A finding is any caller-visible write
// whose root is tainted: element/field assigns through pointers, slices
// or maps, in-place append, copy into, delete/clear, the sort/slices
// mutators, and calls into methods or functions whose summaries say they
// write through the receiver or that argument.
func checkSharedMut(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSharedMutFunc(p, info, fd)
		}
	}
}

func checkSharedMutFunc(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	tt := newTaintTracker(info, p.Facts)
	tt.scan(fd)
	if len(tt.taintedVars) == 0 && !tt.typeSeedsPossible(fd) {
		return
	}
	flagWrite := func(e ast.Expr) {
		p.Reportf(e.Pos(), "write to cache-owned data %q (clone before mutating; shared provenance per //patlint:shared)",
			types.ExprString(e))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root, visible := visibleWriteRoot(info, lhs); visible && root != nil && tt.identTainted(root) {
					flagWrite(lhs)
				}
			}
		case *ast.IncDecStmt:
			if root, visible := visibleWriteRoot(info, n.X); visible && root != nil && tt.identTainted(root) {
				flagWrite(n.X)
			}
		case *ast.CallExpr:
			// append(tainted, ...) may write into the shared backing
			// array whenever spare capacity exists, wherever the result
			// goes (assignment, return, argument).
			if isBuiltinAppend(info, n) && len(n.Args) > 0 && tt.tainted(n.Args[0]) {
				flagWrite(n.Args[0])
				return true
			}
			tt.flagCallMutations(p, n)
		}
		return true
	})
}

// flagCallMutations reports call arguments (or receivers) that the
// callee is known to write through when the argument is tainted.
func (t *taintTracker) flagCallMutations(p *Pass, call *ast.CallExpr) {
	t.facts.noteCallMutations(p.Pkg.Info, call, func(e ast.Expr) {
		if t.tainted(e) {
			p.Reportf(e.Pos(), "call mutates cache-owned data %q (clone before mutating; shared provenance per //patlint:shared)",
				types.ExprString(e))
		}
	})
}

// taintTracker computes, for one function, which local variables can
// hold cache-owned values.
type taintTracker struct {
	info  *types.Info
	facts *Facts
	// taintedVars holds locals assigned from a shared source.
	taintedVars map[types.Object]bool
	// owned holds locals rooted at a fresh allocation in this function
	// (make/new/composite literal); they defeat type-based seeding but
	// not explicit taint flow.
	owned map[types.Object]bool
}

func newTaintTracker(info *types.Info, facts *Facts) *taintTracker {
	return &taintTracker{
		info:        info,
		facts:       facts,
		taintedVars: make(map[types.Object]bool),
		owned:       make(map[types.Object]bool),
	}
}

// scan seeds ownership and runs taint flow to a fixpoint over fd's body
// (closures included: they share the enclosing function's variables).
func (t *taintTracker) scan(fd *ast.FuncDecl) {
	// Parameters and receivers of shared-annotated type are tainted: the
	// caller handed this function a cache-owned value.
	seedField := func(field *ast.Field) {
		for _, name := range field.Names {
			if obj := t.info.Defs[name]; obj != nil && t.typeShared(obj.Type()) {
				t.taintedVars[obj] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			seedField(field)
		}
	}
	for _, field := range fd.Type.Params.List {
		seedField(field)
	}
	// Ownership pass: fresh allocations make their variable locally owned.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && isFreshExpr(t.info, rhs) {
						if obj := useOrDef(t.info, id); obj != nil {
							t.owned[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				fresh := len(n.Values) == 0 // var x T: zero value, locally owned
				for _, v := range n.Values {
					if isFreshExpr(t.info, v) {
						fresh = true
					}
				}
				if fresh {
					if obj := t.info.Defs[name]; obj != nil {
						t.owned[obj] = true
					}
				}
			}
		}
		return true
	})
	// Taint flow to a fixpoint: x = tainted, for _, x := range tainted.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				anyTainted := false
				for _, rhs := range n.Rhs {
					if t.tainted(rhs) {
						anyTainted = true
					}
				}
				if !anyTainted {
					return true
				}
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if t.tainted(rhs) && t.taintLhs(n.Lhs[i]) {
							changed = true
						}
					}
				} else {
					for _, lhs := range n.Lhs {
						if t.taintLhs(lhs) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if t.tainted(n.X) {
					if t.taintLhs(n.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// taintLhs marks the variable behind a plain-identifier assignment
// target as tainted, reporting whether that was new. Non-ident targets
// (x.f = ..., x[i] = ...) are writes, not new bindings, and are handled
// by the write rules.
func (t *taintTracker) taintLhs(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := useOrDef(t.info, id)
	if obj == nil || t.taintedVars[obj] {
		return false
	}
	t.taintedVars[obj] = true
	return true
}

// tainted reports whether evaluating e can yield a cache-owned value.
func (t *taintTracker) tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if isFreshExpr(t.info, call) {
			return false // make/new of a shared-typed container is owned
		}
		if callee := calleeObj(t.info, call); callee != nil {
			// A resolvable callee has a fact: funcReturnsShared marked it
			// (directly or via propagation) iff it can return cache-owned
			// data. Constructors returning fresh values of a shared type
			// are correctly not shared.
			return t.facts.shared[callee]
		}
		// Unresolvable callee (func value, method value): fall back to
		// the result type — a shared-typed result is presumed cache-owned.
		if tv, ok := t.info.Types[call]; ok && t.typeShared(tv.Type) {
			return true
		}
		return false
	}
	if root := rootIdent(e); root != nil {
		if t.identTainted(root) {
			return true
		}
		// Type-based seed: a value of shared type is cache-owned unless
		// its root was freshly allocated here.
		if tv, ok := t.info.Types[e]; ok && t.typeShared(tv.Type) {
			if obj := useOrDef(t.info, root); obj != nil && !t.owned[obj] {
				// Package-level shared values (a global cache) taint too.
				return true
			}
		}
	}
	return false
}

// identTainted reports whether the identifier's object is tainted.
func (t *taintTracker) identTainted(id *ast.Ident) bool {
	obj := useOrDef(t.info, id)
	return obj != nil && t.taintedVars[obj]
}

// typeShared reports whether ty contains a shared-annotated named type
// after unwrapping pointers, slices and arrays.
func (t *taintTracker) typeShared(ty types.Type) bool {
	for i := 0; i < 8; i++ { // bound the unwrap, cycles cannot occur but cheap insurance
		switch v := ty.(type) {
		case *types.Pointer:
			ty = v.Elem()
		case *types.Slice:
			ty = v.Elem()
		case *types.Array:
			ty = v.Elem()
		case *types.Named:
			return t.facts.shared[v.Obj()]
		default:
			return false
		}
	}
	return false
}

// typeSeedsPossible reports whether any expression in fd has a shared
// type — a fast path to skip the write walk when nothing can be tainted.
func (t *taintTracker) typeSeedsPossible(fd *ast.FuncDecl) bool {
	possible := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if possible {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := t.info.Types[e]; ok && t.typeShared(tv.Type) {
			possible = true
			return false
		}
		return true
	})
	return possible
}

// isFreshExpr reports whether e constructs a new value: a composite
// literal, its address, or a make/new call.
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := v.X.(*ast.CompositeLit)
		return v.Op.String() == "&" && lit
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return id.Name == "make" || id.Name == "new"
			}
		}
	}
	return false
}
