package patlint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"patlabor/internal/patlint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loader is shared across tests: the std-lib source importer re-checks
// imported packages per Loader, so one instance keeps the suite fast.
var loader = sync.OnceValues(func() (*patlint.Loader, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	return patlint.NewLoader(wd)
})

// TestFixtureGolden runs each analyzer family over its seeded-violation
// fixture and compares the diagnostics against the committed golden file.
// The allowed fixture asserts the class gating: floats and map-order
// leaks outside the exact/deterministic packages produce no findings.
func TestFixtureGolden(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name      string
		wantClean bool
	}{
		{"exactness", false},
		{"determinism", false},
		{"sorthygiene", false},
		{"ctxrules", false},
		{"ignore", false},
		{"allowed", true},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			diags, err := patlint.Check(l, []string{"internal/patlint/testdata/" + fx.name})
			if err != nil {
				t.Fatal(err)
			}
			var lines []string
			for _, d := range diags {
				lines = append(lines, d.Format(l.Root))
			}
			got := strings.Join(lines, "\n")
			if len(lines) > 0 {
				got += "\n"
			}
			if fx.wantClean && got != "" {
				t.Fatalf("fixture %s should be clean, got:\n%s", fx.name, got)
			}
			if !fx.wantClean && got == "" {
				t.Fatalf("fixture %s produced no findings (driver would exit 0)", fx.name)
			}
			golden := filepath.Join("testdata", fx.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch (run `go test ./internal/patlint -update` after intended changes)\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestIgnoreSuppression pins the escape-hatch semantics: the ignore
// fixture seeds four suppressed violations (same line, line above,
// declaration doc comment) and exactly two survivors — the unannotated
// float and the reason-less directive.
func TestIgnoreSuppression(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := patlint.Check(l, []string{"internal/patlint/testdata/ignore"})
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	want := []string{patlint.RuleExact, patlint.RuleIgnore}
	if strings.Join(rules, ",") != strings.Join(want, ",") {
		t.Fatalf("surviving rules = %v, want %v", rules, want)
	}
}

// TestModuleLintsClean is the self-check: the repository itself must lint
// clean, so the CI gate (`go run ./cmd/patlint ./...`) stays green. Every
// analyzer runs over every package of the module.
func TestModuleLintsClean(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := patlint.Check(l, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.Format(l.Root))
	}
	if t.Failed() {
		t.Log("fix the findings or annotate with //patlint:ignore <rule> <reason>")
	}
}

// TestClassCatalog pins the package classification: a regression here
// would silently stop analyzing an exact package.
func TestClassCatalog(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	// A float smuggled into geom must be caught: run the exact analyzer
	// over the real package and check the rule would have applied, by
	// asserting the package loads with the exact class. The cheapest
	// observable signal is that patlint.Check on internal/geom runs the
	// exact analyzer — which reports nothing today — while the same code
	// in internal/policy would not be analyzed at all. Assert both lint
	// clean and that the fixture classified as exact does produce exact
	// findings (covered by TestFixtureGolden), leaving this test to pin
	// that the real packages are reachable by pattern.
	for _, pkg := range []string{"internal/geom", "internal/pareto", "internal/dw"} {
		diags, err := patlint.Check(l, []string{pkg})
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s: unexpected findings: %v", pkg, diags)
		}
	}
}
