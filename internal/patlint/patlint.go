// Package patlint is the repo's domain-invariant static-analysis suite.
// It mechanically enforces the correctness guarantees that PatLabor's
// differential tests rely on but the compiler cannot see:
//
//   - exact: the exact-arithmetic packages (geom, tree, pareto, dw, ks,
//     hanan, param, lut, rsmt, rsma) must not let float32/float64 values
//     or math.* floating-point helpers flow into their computations —
//     all coordinates, wirelengths, delays and dominance tests are exact
//     int64, with no epsilon comparisons anywhere.
//   - maprange: in deterministic packages, a `range` over a map whose
//     iteration feeds an appended slice must be followed by a sort of
//     that slice — otherwise output bytes depend on map iteration order.
//   - nondet: algorithm packages must not read wall-clock time
//     (time.Now/time.Since) or import math/rand outside _test.go files.
//   - sortslice: sort.Slice/sort.SliceStable are banned in favour of
//     slices.SortFunc/slices.SortStableFunc (the reflection-based
//     swapper accounted for 39% of allocated objects in internal/dw).
//   - ctxbg: in routing packages, a function that accepts a
//     context.Context must not manufacture context.Background()/TODO();
//     only the documented ctx-less compat shims may do that.
//   - ctxloop: in routing packages, a loop doing iteration-scale work
//     (nested loops, or calls into context-aware callees) inside a
//     context-aware function must reach a cancellation check.
//
// Findings are suppressed line-by-line (or declaration-by-declaration)
// with `//patlint:ignore <rule> <reason>`; the reason is mandatory.
// The analyzers use only the standard library (go/parser, go/ast,
// go/types, go/importer) so the tool builds with zero dependencies.
package patlint

import (
	"fmt"
	"go/token"
	"path"
	"slices"
	"strings"
)

// Rule names, as they appear in diagnostics and ignore directives.
const (
	RuleExact     = "exact"
	RuleMapRange  = "maprange"
	RuleNonDet    = "nondet"
	RuleSortSlice = "sortslice"
	RuleCtxBg     = "ctxbg"
	RuleCtxLoop   = "ctxloop"
	RuleIgnore    = "ignore" // malformed ignore directives
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos  token.Position // absolute file position
	Rule string
	Msg  string
}

// Format renders the diagnostic in the canonical patlint format with the
// file path relative to root: "pkg/file.go:line: patlint(rule): message".
func (d Diagnostic) Format(root string) string {
	file := d.Pos.Filename
	if rel, ok := strings.CutPrefix(file, root+"/"); ok {
		file = rel
	}
	return fmt.Sprintf("%s:%d: patlint(%s): %s", file, d.Pos.Line, d.Rule, d.Msg)
}

// class is the set of rule families that apply to a package.
type class uint8

const (
	classExact   class = 1 << iota // exact int64 arithmetic: no floats, no math.*
	classAlgo                      // deterministic algorithm: no clock/rand, ordered map output
	classRouting                   // context-aware routing: ctxbg + ctxloop
)

// exactPkgs are the internal packages whose arithmetic must stay exact.
var exactPkgs = map[string]bool{
	"geom": true, "tree": true, "pareto": true, "dw": true, "ks": true,
	"hanan": true, "param": true, "lut": true, "rsmt": true, "rsma": true,
	"eco": true, "hier": true,
}

// algoPkgs extends the exact set with the packages whose *outputs* must be
// deterministic even though they may hold floats (none do today).
var algoPkgs = map[string]bool{
	"core": true, "salt": true, "pd": true, "ysd": true, "embed": true,
}

// routingPkgs are the context-threaded packages (PR 3 threaded ctx at
// iteration granularity through these).
var routingPkgs = map[string]bool{
	"core": true, "dw": true, "ks": true, "ysd": true, "engine": true,
	"method": true, "salt": true, "pd": true, "rsmt": true, "rsma": true,
	"eco": true, "hier": true, "pool": true,
}

// floatAllowed documents the packages where floats are legitimate
// (reporting, policy scoring, plotting). They are simply not members of
// exactPkgs; the map exists so the rule catalog can name them.
var floatAllowed = map[string]bool{
	"policy": true, "stats": true, "textplot": true,
}

// fixtureClasses classifies the analyzer test fixtures under
// internal/patlint/testdata by directory base name, so each fixture
// package opts in to exactly the rule families it exercises.
var fixtureClasses = map[string]class{
	"exactness":   classExact | classAlgo,
	"determinism": classAlgo,
	"ctxrules":    classRouting,
	"sorthygiene": 0, // sortslice applies unconditionally
	"ignore":      classExact | classAlgo | classRouting,
	"allowed":     0, // a float-using package outside the exact set
}

// classFor returns the rule families applying to an import path.
func classFor(importPath string) class {
	if strings.Contains(importPath, "/testdata/") {
		return fixtureClasses[path.Base(importPath)]
	}
	rest, ok := strings.CutPrefix(importPath, "patlabor/internal/")
	if !ok {
		return 0
	}
	name, _, _ := strings.Cut(rest, "/")
	var c class
	if exactPkgs[name] {
		c |= classExact | classAlgo
	}
	if algoPkgs[name] {
		c |= classAlgo
	}
	if routingPkgs[name] {
		c |= classRouting
	}
	return c
}

// Check loads the packages matched by patterns (relative to the loader's
// module) and runs every analyzer, returning the surviving diagnostics in
// deterministic (file, line, column) order. Ignore directives have been
// applied; malformed directives surface as patlint(ignore) findings.
func Check(l *Loader, patterns []string) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		c := classFor(p.Path)
		var pkgDiags []Diagnostic
		report := func(pos token.Pos, rule, msg string) {
			pkgDiags = append(pkgDiags, Diagnostic{Pos: l.Fset.Position(pos), Rule: rule, Msg: msg})
		}
		if c&classExact != 0 {
			checkExact(p, report)
		}
		if c&classAlgo != 0 {
			checkNonDet(p, report)
			checkMapRange(p, report)
		}
		if c&classRouting != 0 {
			checkCtx(p, report)
		}
		checkSortSlice(p, report)
		diags = append(diags, applyIgnores(l.Fset, p, pkgDiags)...)
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if a.Pos.Filename != b.Pos.Filename {
			return strings.Compare(a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return strings.Compare(a.Rule, b.Rule)
	})
	return diags, nil
}
