// Package patlint is the repo's domain-invariant static-analysis suite.
// It mechanically enforces the correctness guarantees that PatLabor's
// differential tests rely on but the compiler cannot see:
//
//   - exact: the exact-arithmetic packages (geom, tree, pareto, dw, ks,
//     hanan, param, lut, rsmt, rsma) must not let float32/float64 values
//     or math.* floating-point helpers flow into their computations —
//     all coordinates, wirelengths, delays and dominance tests are exact
//     int64, with no epsilon comparisons anywhere.
//   - maprange: in deterministic packages, a `range` over a map whose
//     iteration feeds an appended slice must be followed by a sort of
//     that slice — otherwise output bytes depend on map iteration order.
//   - nondet: algorithm packages must not read wall-clock time
//     (time.Now/time.Since) or import math/rand outside _test.go files.
//   - sortslice: sort.Slice/sort.SliceStable are banned in favour of
//     slices.SortFunc/slices.SortStableFunc (the reflection-based
//     swapper accounted for 39% of allocated objects in internal/dw).
//   - ctxbg: in routing packages, a function that accepts a
//     context.Context must not manufacture context.Background()/TODO();
//     only the documented ctx-less compat shims may do that.
//   - ctxloop: in routing packages, a loop doing iteration-scale work
//     (nested loops, or calls into context-aware callees) inside a
//     context-aware function must reach a cancellation check.
//   - sharedmut: values whose provenance is a cache (`//patlint:shared`
//     functions and types — SubCache sub-frontiers, ECO memo entries,
//     LUT snapshots) must never be written through: no element assigns,
//     no in-place append/copy/delete, no sorting, no calls into mutating
//     methods or functions. Clone first.
//   - cancelloop: a loop that transitively reaches cancellable routing
//     work through ctx-less wrappers must still check the context — the
//     interprocedural completion of ctxloop, which only sees direct
//     ctx-taking callees.
//   - goleak: a `go` statement must launch something that can be stopped
//     (a context reference or a channel operation inside any loop), and
//     sends on locally made unbuffered channels must sit in a select so
//     an abandoned receiver cannot strand the sender.
//   - exactoverflow: in exact packages, int64 multiplies of two
//     unbounded operands, shifts of unbounded values, and loop
//     accumulation of unbounded call results must go through the checked
//     helpers (param.MulCheck/AddCheck/ShiftCheck, geom.AddCheck), which
//     panic loudly instead of wrapping silently.
//
// Findings are suppressed line-by-line (or declaration-by-declaration)
// with `//patlint:ignore <rule> <reason>`; the reason is mandatory and
// the rule name must exist. The analyzers use only the standard library
// (go/parser, go/ast, go/types, go/importer) so the tool builds with
// zero dependencies. Interprocedural facts (cache-ownership seeds,
// mutator summaries, ctx-work reachability, overflow-checked helpers)
// are collected per package in dependency order before analyzers run;
// see facts.go.
package patlint

import (
	"fmt"
	"go/token"
	"path"
	"strings"
)

// Rule names, as they appear in diagnostics and ignore directives.
const (
	RuleExact      = "exact"
	RuleMapRange   = "maprange"
	RuleNonDet     = "nondet"
	RuleSortSlice  = "sortslice"
	RuleCtxBg      = "ctxbg"
	RuleCtxLoop    = "ctxloop"
	RuleSharedMut  = "sharedmut"
	RuleCancelLoop = "cancelloop"
	RuleGoLeak     = "goleak"
	RuleOverflow   = "exactoverflow"
	RuleIgnore     = "ignore" // malformed or stale ignore directives
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos  token.Position // absolute file position
	Rule string
	Msg  string
}

// Format renders the diagnostic in the canonical patlint format with the
// file path relative to root: "pkg/file.go:line: patlint(rule): message".
func (d Diagnostic) Format(root string) string {
	file := d.Pos.Filename
	if rel, ok := strings.CutPrefix(file, root+"/"); ok {
		file = rel
	}
	return fmt.Sprintf("%s:%d: patlint(%s): %s", file, d.Pos.Line, d.Rule, d.Msg)
}

// class is the set of rule families that apply to a package.
type class uint8

const (
	classExact   class = 1 << iota // exact int64 arithmetic: no floats, no math.*
	classAlgo                      // deterministic algorithm: no clock/rand, ordered map output
	classRouting                   // context-aware routing: ctxbg + ctxloop
)

// exactPkgs are the internal packages whose arithmetic must stay exact.
var exactPkgs = map[string]bool{
	"geom": true, "tree": true, "pareto": true, "dw": true, "ks": true,
	"hanan": true, "param": true, "lut": true, "rsmt": true, "rsma": true,
	"eco": true, "hier": true,
}

// algoPkgs extends the exact set with the packages whose *outputs* must be
// deterministic even though they may hold floats (none do today).
var algoPkgs = map[string]bool{
	"core": true, "salt": true, "pd": true, "ysd": true, "embed": true,
}

// routingPkgs are the context-threaded packages (PR 3 threaded ctx at
// iteration granularity through these).
var routingPkgs = map[string]bool{
	"core": true, "dw": true, "ks": true, "ysd": true, "engine": true,
	"method": true, "salt": true, "pd": true, "rsmt": true, "rsma": true,
	"eco": true, "hier": true, "pool": true,
}

// floatAllowed documents the packages where floats are legitimate
// (reporting, policy scoring, plotting). They are simply not members of
// exactPkgs; the map exists so the rule catalog can name them.
var floatAllowed = map[string]bool{
	"policy": true, "stats": true, "textplot": true,
}

// fixtureClasses classifies the analyzer test fixtures under
// internal/patlint/testdata by directory base name, so each fixture
// package opts in to exactly the rule families it exercises.
var fixtureClasses = map[string]class{
	"exactness":     classExact | classAlgo,
	"determinism":   classAlgo,
	"ctxrules":      classRouting,
	"sorthygiene":   0, // sortslice applies unconditionally
	"ignore":        classExact | classAlgo | classRouting,
	"allowed":       0, // a float-using package outside the exact set
	"sharedmut":     classExact,
	"cancelloop":    classRouting,
	"goleak":        classRouting,
	"exactoverflow": classExact,
}

// classFor returns the rule families applying to an import path.
func classFor(importPath string) class {
	if strings.Contains(importPath, "/testdata/") {
		return fixtureClasses[path.Base(importPath)]
	}
	rest, ok := strings.CutPrefix(importPath, "patlabor/internal/")
	if !ok {
		return 0
	}
	name, _, _ := strings.Cut(rest, "/")
	var c class
	if exactPkgs[name] {
		c |= classExact | classAlgo
	}
	if algoPkgs[name] {
		c |= classAlgo
	}
	if routingPkgs[name] {
		c |= classRouting
	}
	return c
}

// Check loads the packages matched by patterns (relative to the loader's
// module) and runs every registered analyzer, returning the surviving
// diagnostics in deterministic (file, line, column) order. Ignore
// directives have been applied; malformed or stale directives surface as
// patlint(ignore) findings.
func Check(l *Loader, patterns []string) ([]Diagnostic, error) {
	return CheckRules(l, patterns, nil)
}

// CheckRules is Check restricted to the named rules (nil or empty runs
// all). Fact collection always runs over the full load set in dependency
// order, so a restricted run sees the same interprocedural summaries a
// full run would.
func CheckRules(l *Loader, patterns []string, rules []string) ([]Diagnostic, error) {
	analyzers, err := selectAnalyzers(rules)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	// Load returns dependencies before importers, so by the time a
	// package's facts are collected every callee it can name already has
	// its summary; analyzers then run with the complete tables.
	facts := newFacts()
	for _, p := range pkgs {
		facts.collect(p)
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		c := classFor(p.Path)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if a.Classes != 0 && c&a.Classes == 0 {
				continue
			}
			a.Run(&Pass{
				Pkg:   p,
				Fset:  l.Fset,
				Facts: facts,
				rule:  a.Name,
				report: func(pos token.Pos, rule, msg string) {
					pkgDiags = append(pkgDiags, Diagnostic{Pos: l.Fset.Position(pos), Rule: rule, Msg: msg})
				},
			})
		}
		diags = append(diags, applyIgnores(l.Fset, p, pkgDiags)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}
