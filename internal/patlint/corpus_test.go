package patlint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"patlabor/internal/patlint"
)

// wantRe matches an expected-diagnostic marker in a corpus fixture:
// `want(rule): message substring`, usually in a trailing comment on the
// offending line.
var wantRe = regexp.MustCompile(`want\((\w+)\): (.+?)\s*$`)

type wantMark struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

// TestAnalyzerCorpus runs the full analyzer suite over each
// interprocedural-analyzer corpus and requires an exact match between
// findings and `want(rule):` markers: every marker must produce its
// finding (true positives) and every finding must have a marker — which
// makes the marker-free good.go of each corpus a must-not-flag case.
func TestAnalyzerCorpus(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"sharedmut", "cancelloop", "goleak", "exactoverflow", "staleignore"} {
		t.Run(dir, func(t *testing.T) {
			fixDir := filepath.Join("testdata", dir)
			entries, err := os.ReadDir(fixDir)
			if err != nil {
				t.Fatal(err)
			}
			var wants []*wantMark
			sawGood := false
			for _, ent := range entries {
				if !strings.HasSuffix(ent.Name(), ".go") {
					continue
				}
				if ent.Name() == "good.go" {
					sawGood = true
				}
				data, err := os.ReadFile(filepath.Join(fixDir, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				for i, text := range strings.Split(string(data), "\n") {
					if m := wantRe.FindStringSubmatch(text); m != nil {
						wants = append(wants, &wantMark{
							file:   ent.Name(),
							line:   i + 1,
							rule:   m[1],
							substr: strings.TrimSpace(m[2]),
						})
					}
				}
			}
			if len(wants) == 0 {
				t.Fatalf("corpus %s has no want markers", dir)
			}
			if !sawGood && dir != "staleignore" {
				t.Fatalf("corpus %s has no good.go must-not-flag file", dir)
			}
			diags, err := patlint.Check(l, []string{"internal/patlint/testdata/" + dir})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				base := filepath.Base(d.Pos.Filename)
				matched := false
				for _, w := range wants {
					if !w.matched && w.file == base && w.line == d.Pos.Line &&
						w.rule == d.Rule && strings.Contains(d.Msg, w.substr) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", d.Format(l.Root))
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing finding: %s:%d: patlint(%s) matching %q", w.file, w.line, w.rule, w.substr)
				}
			}
		})
	}
}

// TestRuleSelection pins the -rules surface: a restricted run reports
// only the selected rule's findings, and unknown names are load errors
// listing the catalog.
func TestRuleSelection(t *testing.T) {
	l, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := patlint.CheckRules(l, []string{"internal/patlint/testdata/exactoverflow"}, []string{patlint.RuleOverflow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("restricted run produced no exactoverflow findings")
	}
	for _, d := range diags {
		if d.Rule != patlint.RuleOverflow {
			t.Errorf("restricted run leaked rule %s", d.Rule)
		}
	}
	if _, err := patlint.CheckRules(l, []string{"./..."}, []string{"nosuchrule"}); err == nil {
		t.Fatal("unknown rule did not error")
	} else if !strings.Contains(err.Error(), patlint.RuleSharedMut) {
		t.Errorf("unknown-rule error does not list the catalog: %v", err)
	}
}

// TestRegistryCatalog pins that the four interprocedural analyzers are
// registered and enabled by default.
func TestRegistryCatalog(t *testing.T) {
	rules := strings.Join(patlint.Rules(), ",")
	for _, want := range []string{
		patlint.RuleSharedMut, patlint.RuleCancelLoop, patlint.RuleGoLeak, patlint.RuleOverflow,
	} {
		if !strings.Contains(rules, want) {
			t.Errorf("rule %s not registered (have: %s)", want, rules)
		}
	}
	if len(patlint.Docs()) != len(patlint.Rules())-1 {
		t.Errorf("Docs()/Rules() length mismatch: %d vs %d (ignore meta-rule has no analyzer)",
			len(patlint.Docs()), len(patlint.Rules()))
	}
}
