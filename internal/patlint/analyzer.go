package patlint

import (
	"fmt"
	"go/token"
	"slices"
	"strings"
)

// Analyzer is one registered rule: a named check over a single package,
// with access to the module-wide fact tables (call-graph summaries and
// annotation seeds) that earlier packages in dependency order have
// already contributed to. Diagnostics carry the analyzer's name as their
// rule, so ignore directives, baselines and -rules selection all key on
// Name.
type Analyzer struct {
	// Name is the rule name as it appears in diagnostics, ignore
	// directives, the -rules flag and baseline entries.
	Name string
	// Doc is the one-line rule description shown by the driver.
	Doc string
	// Classes gates the analyzer to package classes (bitwise-or of
	// classExact/classAlgo/classRouting); zero runs it on every package.
	Classes class
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package: the parsed and
// type-checked package, the shared file set, the module-wide facts, and
// the report sink already bound to the analyzer's rule name.
type Pass struct {
	Pkg    *Package
	Fset   *token.FileSet
	Facts  *Facts
	report func(pos token.Pos, rule, msg string)
	rule   string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(pos, p.rule, msg)
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, p.rule, fmt.Sprintf(format, args...))
}

// registry lists every analyzer in registration (and therefore run)
// order. Diagnostics are position-sorted afterwards, so the order only
// affects tie-breaks between two findings at the same position.
var registry = []*Analyzer{
	{
		Name:    RuleExact,
		Doc:     "no float32/float64 values or math.* floating-point helpers in exact-arithmetic packages",
		Classes: classExact,
		Run:     func(p *Pass) { checkExact(p.Pkg, p.report) },
	},
	{
		Name:    RuleNonDet,
		Doc:     "no wall-clock reads (time.Now/Since) or math/rand in algorithm packages",
		Classes: classAlgo,
		Run:     func(p *Pass) { checkNonDet(p.Pkg, p.report) },
	},
	{
		Name:    RuleMapRange,
		Doc:     "map iteration feeding an appended slice must be followed by a sort",
		Classes: classAlgo,
		Run:     func(p *Pass) { checkMapRange(p.Pkg, p.report) },
	},
	{
		Name:    RuleSortSlice,
		Doc:     "sort.Slice/SliceStable banned module-wide in favour of slices.SortFunc",
		Classes: 0,
		Run:     func(p *Pass) { checkSortSlice(p.Pkg, p.report) },
	},
	{
		Name:    RuleCtxBg,
		Doc:     "no context.Background()/TODO() inside context-aware routing functions",
		Classes: classRouting,
		Run:     func(p *Pass) { checkCtxBg2(p) },
	},
	{
		Name:    RuleCtxLoop,
		Doc:     "iteration-scale loops in context-aware functions must reach a cancellation check",
		Classes: classRouting,
		Run:     func(p *Pass) { checkCtxLoop2(p) },
	},
	{
		Name:    RuleSharedMut,
		Doc:     "no in-place mutation of cache-owned data (//patlint:shared provenance)",
		Classes: classExact | classRouting,
		Run:     checkSharedMut,
	},
	{
		Name:    RuleCancelLoop,
		Doc:     "loops transitively calling cancellable routing work must check the context",
		Classes: classRouting,
		Run:     checkCancelLoop,
	},
	{
		Name:    RuleGoLeak,
		Doc:     "goroutines need a ctx/channel exit path; unbuffered sends need a select",
		Classes: classExact | classRouting,
		Run:     checkGoLeak,
	},
	{
		Name:    RuleOverflow,
		Doc:     "unbounded int64 multiply/shift/accumulation in exact packages needs a checked helper",
		Classes: classExact,
		Run:     checkOverflow,
	},
}

// Rules returns the registered rule names in registration order, plus the
// ignore meta-rule (which is not an analyzer but does own diagnostics).
func Rules() []string {
	out := make([]string, 0, len(registry)+1)
	for _, a := range registry {
		out = append(out, a.Name)
	}
	out = append(out, RuleIgnore)
	return out
}

// Docs returns "name: doc" lines for the driver's rule listing.
func Docs() []string {
	out := make([]string, 0, len(registry))
	for _, a := range registry {
		out = append(out, a.Name+": "+a.Doc)
	}
	return out
}

// knownRule reports whether name is a registered rule (or the ignore
// meta-rule); ignore directives naming anything else are themselves
// findings — a stale directive suppresses nothing and rots.
func knownRule(name string) bool {
	if name == RuleIgnore {
		return true
	}
	for _, a := range registry {
		if a.Name == name {
			return true
		}
	}
	return false
}

// selectAnalyzers resolves a -rules style list (nil or empty = all) to
// the analyzers to run, in registration order.
func selectAnalyzers(rules []string) ([]*Analyzer, error) {
	if len(rules) == 0 {
		return registry, nil
	}
	want := make(map[string]bool, len(rules))
	for _, r := range rules {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !knownRule(r) || r == RuleIgnore {
			return nil, fmt.Errorf("patlint: unknown rule %q (known: %s)", r, strings.Join(Rules(), ", "))
		}
		want[r] = true
	}
	var out []*Analyzer
	for _, a := range registry {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patlint: -rules selected no analyzers")
	}
	return out, nil
}

// sortDiagnostics orders diagnostics by (file, line, column, rule) — the
// canonical stable order of every output mode.
func sortDiagnostics(diags []Diagnostic) {
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if a.Pos.Filename != b.Pos.Filename {
			return strings.Compare(a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return strings.Compare(a.Rule, b.Rule)
	})
}
