package patlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// checkExact enforces the exact-arithmetic invariant: inside an exact
// package no float32/float64/complex value may flow through the code.
// It reports:
//   - float and imaginary literals;
//   - any use of the universe types float32/float64/complex64/complex128
//     (declarations, conversions, struct fields, signatures);
//   - math.* selectors other than integer constants (math.MaxInt64 and
//     friends are exact and allowed; math.Sqrt, math.Pi, math.Inf are not);
//   - calls to functions from other packages whose results carry floats
//     (value flow that never names a float type, e.g. `x := stats.Mean(v)`).
func checkExact(p *Package, report func(token.Pos, string, string)) {
	info := p.Info
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.FLOAT || n.Kind == token.IMAG {
					report(n.Pos(), RuleExact,
						fmt.Sprintf("floating-point literal %s in exact package (int64 arithmetic only)", n.Value))
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && isUniverseFloat(obj) {
					report(n.Pos(), RuleExact,
						fmt.Sprintf("use of %s in exact package (int64 arithmetic only)", n.Name))
				}
			case *ast.SelectorExpr:
				if pkgNameOf(info, n.X) != "math" {
					return true
				}
				obj := info.Uses[n.Sel]
				if obj == nil {
					return true
				}
				if c, ok := obj.(*types.Const); ok && c.Val().Kind() == constant.Int {
					return true // math.MaxInt64 etc. are exact
				}
				report(n.Pos(), RuleExact,
					fmt.Sprintf("math.%s in exact package (floating-point math is banned; use exact int64 helpers)", n.Sel.Name))
				return false
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
						obj.Pkg() != p.Pkg && obj.Pkg().Path() != "math" {
						if fn, ok := obj.(*types.Func); ok && signatureHasFloatResult(fn) {
							report(n.Pos(), RuleExact,
								fmt.Sprintf("call to %s.%s returns floating point in exact package", obj.Pkg().Name(), sel.Sel.Name))
						}
					}
				}
			}
			return true
		})
	}
}

// isUniverseFloat reports whether obj is one of the built-in inexact types.
func isUniverseFloat(obj types.Object) bool {
	if obj.Parent() != types.Universe {
		return false
	}
	switch obj.Name() {
	case "float32", "float64", "complex64", "complex128":
		return true
	}
	return false
}

// signatureHasFloatResult reports whether any result of fn carries a
// floating-point component.
func signatureHasFloatResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if typeHasFloat(res.At(i).Type(), make(map[types.Type]bool)) {
			return true
		}
	}
	return false
}

// typeHasFloat walks a type looking for an inexact basic component.
func typeHasFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return true
		}
	case *types.Slice:
		return typeHasFloat(t.Elem(), seen)
	case *types.Array:
		return typeHasFloat(t.Elem(), seen)
	case *types.Pointer:
		return typeHasFloat(t.Elem(), seen)
	case *types.Map:
		return typeHasFloat(t.Key(), seen) || typeHasFloat(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if typeHasFloat(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// pkgNameOf returns the package name when expr is a package qualifier
// ident (e.g. the `math` in `math.Sqrt`), or "".
func pkgNameOf(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
