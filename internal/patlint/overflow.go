package patlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// checkOverflow is the exact-arithmetic overflow analyzer. The exactness
// contract says every wirelength, delay and dominance test is exact
// int64 — which silently stops being true the moment an intermediate
// product or sum wraps. The analyzer flags the three shapes where the
// repo multiplies its int64 domain values (LUT coefficients, scaled
// prices, packed fingerprints):
//
//   - x * y where dataflow can bound neither operand;
//   - x << k where x is unbounded (or bounded but the constant shift
//     exceeds 31 bits);
//   - acc += f(...) inside a loop where the call result is unbounded —
//     the sum grows with iteration count, which no local inspection
//     bounds.
//
// "Bounded" is a deliberately small lattice: constants, conversions from
// ≤32-bit types, calls to `//patlint:checked` helpers (param.MulCheck
// and friends, which panic instead of wrapping), and the magnitude-
// shrinking operators (%, &, >>) over bounded operands. One bounded
// operand clears a multiply: a 32-bit coefficient times a domain value
// fits int64 whenever the domain value itself is in range, which is the
// invariant the rest of the module already maintains.
func checkOverflow(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOverflowOps(p, info, fd.Body)
			checkOverflowAccum(p, info, fd.Body)
		}
	}
}

// checkOverflowOps flags unbounded multiplies and shifts anywhere in the
// body (closures included).
func checkOverflowOps(p *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if tv, ok := info.Types[n]; !ok || tv.Value != nil || !isInt64Kind(tv.Type) {
				return true
			}
			switch n.Op {
			case token.MUL:
				if !boundedExpr(info, p.Facts, n.X) && !boundedExpr(info, p.Facts, n.Y) {
					p.Reportf(n.OpPos,
						"int64 multiply of two unbounded values %q (may wrap silently; use param.MulCheck or bound an operand)",
						types.ExprString(n))
				}
			case token.SHL:
				if shiftOverflows(info, p.Facts, n.X, n.Y) {
					p.Reportf(n.OpPos,
						"left shift of unbounded int64 %q (may wrap silently; use param.ShiftCheck or bound the operand)",
						types.ExprString(n))
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lhs, rhs := n.Lhs[0], n.Rhs[0]
			if tv, ok := info.Types[lhs]; !ok || !isInt64Kind(tv.Type) {
				return true
			}
			switch n.Tok {
			case token.MUL_ASSIGN:
				if !boundedExpr(info, p.Facts, lhs) && !boundedExpr(info, p.Facts, rhs) {
					p.Reportf(n.TokPos,
						"int64 *= of two unbounded values (may wrap silently; use param.MulCheck or bound an operand)")
				}
			case token.SHL_ASSIGN:
				if shiftOverflows(info, p.Facts, lhs, rhs) {
					p.Reportf(n.TokPos,
						"int64 <<= of an unbounded value (may wrap silently; use param.ShiftCheck or bound the operand)")
				}
			}
		}
		return true
	})
}

// shiftOverflows reports whether x << k can exceed 63 bits under the
// bounded lattice: unbounded x always can; bounded x (≤32-bit magnitude)
// only when a constant shift exceeds 31.
func shiftOverflows(info *types.Info, facts *Facts, x, k ast.Expr) bool {
	if !boundedExpr(info, facts, x) {
		return true
	}
	if tv, ok := info.Types[k]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v > 31 {
			return true
		}
	}
	return false
}

// checkOverflowAccum flags `acc += f(...)` inside loops when the call
// result is unbounded: the sum grows with the iteration count, so only a
// checked add (geom.AddCheck / param.AddCheck) keeps it honest.
func checkOverflowAccum(p *Pass, info *types.Info, body *ast.BlockStmt) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			for _, st := range loopBody(s).List {
				walk(st, depth+1)
			}
			return
		case *ast.AssignStmt:
			if depth > 0 && s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				lhs, rhs := s.Lhs[0], s.Rhs[0]
				if tv, ok := info.Types[lhs]; ok && isInt64Kind(tv.Type) {
					if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && !boundedExpr(info, p.Facts, call) {
						p.Reportf(s.TokPos,
							"loop accumulates unbounded int64 call result into %q (sum may wrap silently; use geom.AddCheck/param.AddCheck)",
							types.ExprString(lhs))
					}
				}
			}
		}
		children(n, func(c ast.Node) { walk(c, depth) })
	}
	for _, st := range body.List {
		walk(st, 0)
	}
}

// isInt64Kind reports whether t's underlying type is int64/uint64.
// time.Duration is excluded: duration arithmetic belongs to the
// reporting layers, not the exact domain.
func isInt64Kind(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "time" {
			return false
		}
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

// boundedExpr reports whether the magnitude of e is known to fit 32 bits
// (or the value is otherwise overflow-safe, e.g. produced by a checked
// helper).
func boundedExpr(info *types.Info, facts *Facts, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok {
		if tv.Value != nil {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && narrowKind(b.Kind()) {
			return true
		}
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		// Conversion T(x): bounded when the source type is narrow.
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			if atv, ok := info.Types[v.Args[0]]; ok {
				if atv.Value != nil {
					return true
				}
				if b, ok := atv.Type.Underlying().(*types.Basic); ok && narrowKind(b.Kind()) {
					return true
				}
			}
			return false
		}
		if callee := calleeObj(info, v); callee != nil && facts.checked[callee] {
			return true
		}
	case *ast.UnaryExpr:
		if v.Op == token.SUB || v.Op == token.ADD {
			return boundedExpr(info, facts, v.X)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.REM: // |x % y| < |y|
			return boundedExpr(info, facts, v.Y)
		case token.AND: // x & mask ≤ min magnitude
			return boundedExpr(info, facts, v.X) || boundedExpr(info, facts, v.Y)
		case token.SHR: // x >> k shrinks magnitude
			if boundedExpr(info, facts, v.X) {
				return true
			}
			// x >> 32 of any int64 fits 32 bits.
			if tv, ok := info.Types[v.Y]; ok && tv.Value != nil {
				if k, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && k >= 32 {
					return true
				}
			}
			return false
		}
	}
	return false
}

// narrowKind reports whether the basic kind is an integer of at most 32
// bits.
func narrowKind(k types.BasicKind) bool {
	switch k {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32, types.Bool:
		return true
	}
	return false
}
