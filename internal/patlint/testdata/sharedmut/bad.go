// Package sharedmut seeds violations for the cache-ownership analyzer:
// every write through a value whose provenance is the shared cache is a
// finding.
package sharedmut

import "slices"

// Frontier is a cache-owned frontier entry; all values alias the cache.
//
//patlint:shared cache-owned test type; readers alias items
type Frontier struct {
	items []int64
}

var cache = map[string]*Frontier{}

// lookup returns the cache-owned entry. The result type seeds taint, and
// returning a tainted value marks lookup itself as shared for callers.
func lookup(key string) *Frontier {
	return cache[key]
}

// MutateIndex writes an element of a cache-owned slice.
func MutateIndex(key string) {
	e := lookup(key)
	e.items[0] = 1 // want(sharedmut): write to cache-owned data
}

// AppendInPlace grows a cache-owned slice in place: with spare capacity
// the append writes into the shared backing array.
func AppendInPlace(key string) []int64 {
	e := lookup(key)
	return append(e.items, 9) // want(sharedmut): write to cache-owned data
}

// SortShared reorders the shared slice for every other reader.
func SortShared(key string) {
	e := lookup(key)
	slices.Sort(e.items) // want(sharedmut): call mutates cache-owned data
}

// reset writes through its receiver; facts mark it a mutator, and since
// the receiver is of a shared type the write itself is also a finding.
func (f *Frontier) reset() {
	f.items[0] = 0 // want(sharedmut): write to cache-owned data
}

// CallMutator reaches the mutation through a method call.
func CallMutator(key string) {
	e := lookup(key)
	e.reset() // want(sharedmut): call mutates cache-owned data
}

// CopyInto uses a cache-owned slice as a copy destination.
func CopyInto(key string, src []int64) {
	e := lookup(key)
	copy(e.items, src) // want(sharedmut): call mutates cache-owned data
}
