package sharedmut

import "slices"

// CloneThenSort copies the cache-owned slice before mutating — the
// canonical fix for every bad.go finding. No findings here.
func CloneThenSort(key string) []int64 {
	e := lookup(key)
	out := make([]int64, len(e.items))
	copy(out, e.items)
	slices.Sort(out)
	out = append(out, 5)
	out[0] = 3
	return out
}

// FreshEntry builds and fills its own entry: a locally constructed value
// of a shared type is owned, so the writes are fine — and because the
// returned value is owned, FreshEntry is not itself a shared source.
func FreshEntry() *Frontier {
	e := &Frontier{items: make([]int64, 4)}
	e.items[2] = 7
	return e
}

// ReadShared only reads cache-owned data, which is always allowed.
func ReadShared(key string) int64 {
	e := lookup(key)
	var s int64
	for _, v := range e.items {
		if v > s {
			s = v
		}
	}
	return s
}
