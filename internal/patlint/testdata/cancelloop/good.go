package cancelloop

import "context"

// BatchChecked checks the context every iteration — clean.
func BatchChecked(ctx context.Context, nets []int) int {
	total := 0
	for _, n := range nets {
		if ctx.Err() != nil {
			return total
		}
		total += wrapper(n)
	}
	return total
}

// BatchDirect threads the context straight into the work: the loop uses
// ctx, so both ctxloop and cancelloop are satisfied.
func BatchDirect(ctx context.Context, nets []int) int {
	total := 0
	for _, n := range nets {
		total += routeOne(ctx, n)
	}
	return total
}

// Bookkeeping loops that never reach ctx work need no check.
func Bookkeeping(ctx context.Context, nets []int) int {
	total := 0
	for _, n := range nets {
		total += n
	}
	return total
}
