// Package cancelloop seeds violations for the cancellation-loop
// analyzer: loops that transitively reach cancellable routing work
// through ctx-less wrappers without ever checking the context.
package cancelloop

import "context"

// routeOne is cancellable routing work: it takes a context.
func routeOne(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + 1
}

// wrapper hides the context: it calls ctx-taking work but takes no ctx
// itself, so a syntactic loop check cannot see the work. The facts table
// marks it ctxWork.
func wrapper(n int) int {
	return routeOne(context.Background(), n)
}

// BatchHidden loops over the ctx-less wrapper without checking ctx: the
// batch cannot be cancelled between iterations. ctxloop does not fire
// (no nested loop, no direct ctx-taking callee); cancelloop does.
func BatchHidden(ctx context.Context, nets []int) int {
	total := 0
	for _, n := range nets { // want(cancelloop): transitively reaches cancellable routing work
		total += wrapper(n)
	}
	return total
}
