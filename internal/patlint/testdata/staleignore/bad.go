// Package staleignore seeds the ignore meta-rule: a directive naming a
// rule that does not exist suppresses nothing and is itself a finding.
package staleignore

//patlint:ignore nosuchrule directive kept after the rule was renamed; want(ignore): unknown rule
var Kept = 1

// A directive naming a real rule with a reason stays legal even when it
// currently suppresses nothing.
//
//patlint:ignore sortslice demonstration of a valid directive
var Fine = 2
