// Package ignore exercises the //patlint:ignore escape hatch: the
// fixture is classified under every rule family, and each suppression
// style (same line, line above, declaration doc comment) silences its
// finding. One unannotated violation and one malformed directive survive.
package ignore

import "time"

// Halve demonstrates line-above suppression.
func Halve(x int64) int64 {
	//patlint:ignore exact fixture: line-above suppression
	return int64(float64(x) / 2)
}

// Stamp demonstrates same-line suppression.
func Stamp() int64 {
	return time.Now().UnixNano() //patlint:ignore nondet fixture: same-line suppression
}

// Mean demonstrates declaration-scoped suppression: the doc directive
// covers every float inside the function.
//
//patlint:ignore exact fixture: doc comment covers the whole declaration
func Mean(xs []int64) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// Bad has no directive, so its float result type survives as a finding.
func Bad() float64 {
	return 0
}

// MissingReason's directive below names no reason — itself a finding, and
// it suppresses nothing.
//
//patlint:ignore exact
var MissingReason = int64(1)
