// Package exactness seeds violations for the patlint exact analyzer: the
// fixture is classified like an exact-arithmetic package, so every float
// and non-integer math.* use below is a finding.
package exactness

import "math"

// Scale routes a value through floating point — findings for the float64
// conversion and the floating literal.
func Scale(x int64) int64 {
	f := float64(x) * 1.5
	return int64(f)
}

// Root calls math.Sqrt — a finding. The math.MaxInt64 guard is an exact
// integer constant and stays allowed.
func Root(x int64) int64 {
	if x > math.MaxInt64/2 {
		return x
	}
	return int64(math.Sqrt(float64(x)))
}

// Exact is clean: int64 arithmetic only, and the multiply has a constant
// operand so exactoverflow stays quiet too — no findings.
func Exact(x int64) int64 {
	return 2*x + 1
}
