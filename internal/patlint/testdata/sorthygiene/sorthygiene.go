// Package sorthygiene seeds violations for the patlint sortslice
// analyzer: the reflection-based sort.Slice/sort.SliceStable are banned
// module-wide in favour of the monomorphised slices functions.
package sorthygiene

import (
	"slices"
	"sort"
)

// Reflective uses the banned reflection-based sorts — two findings.
func Reflective(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Monomorphic uses the blessed replacements — no findings.
func Monomorphic(xs []int) {
	slices.SortFunc(xs, func(a, b int) int { return a - b })
	slices.SortStableFunc(xs, func(a, b int) int { return a - b })
}

// Ints uses the non-reflective std helper — allowed.
func Ints(xs []int) {
	sort.Ints(xs)
}
