package goleak

import "context"

// ProduceBuffered buffers the channel to its maximum occupancy: every
// send completes even after the consumer is gone. Clean.
func ProduceBuffered(vals []int) <-chan int {
	out := make(chan int, len(vals))
	go func() {
		for _, v := range vals {
			out <- v
		}
		close(out)
	}()
	return out
}

// ProduceSelect pairs each unbuffered send with a done signal. Clean.
func ProduceSelect(done <-chan struct{}, vals []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range vals {
			select {
			case out <- v:
			case <-done:
				return
			}
		}
	}()
	return out
}

// drain ranges over a channel: the loop ends when the channel closes, so
// the goroutine has an exit path.
func drain(ch <-chan int) {
	for range ch {
	}
}

// LaunchDrain launches a stoppable worker. Clean.
func LaunchDrain(ch chan int) {
	go drain(ch)
}

// tick references its context inside the loop — an exit path. Clean.
func tick(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// LaunchTick launches the ctx-aware worker. Clean.
func LaunchTick(ctx context.Context) {
	go tick(ctx)
}
