// Package goleak seeds violations for the goroutine-leak analyzer:
// goroutines with no exit path and bare sends on unbuffered channels.
package goleak

// pollForever loops with no ctx reference and no channel operation;
// nothing external can ever stop it. The facts table marks it goUnsafe.
func pollForever() {
	n := 0
	for {
		n++
	}
}

// LaunchUnstoppable fires a named function nothing can stop.
func LaunchUnstoppable() {
	go pollForever() // want(goleak): no exit path
}

// LaunchLitUnstoppable is the same leak as a function literal.
func LaunchLitUnstoppable() {
	go func() { // want(goleak): no exit path
		for {
		}
	}()
}

// Produce sends on a local unbuffered channel outside a select: if the
// consumer returns early, the goroutine blocks on the send forever.
func Produce(vals []int) <-chan int {
	out := make(chan int)
	go func() {
		for _, v := range vals {
			out <- v // want(goleak): send on unbuffered channel
		}
		close(out)
	}()
	return out
}
