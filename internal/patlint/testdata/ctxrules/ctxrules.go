// Package ctxrules seeds violations for the patlint ctxbg and ctxloop
// analyzers: the fixture is classified like a routing package, so
// context-aware functions must propagate their ctx.
package ctxrules

import "context"

// Work is a cancellable leaf the other fixtures call.
func Work(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Detached manufactures a root context inside a context-aware function —
// a ctxbg finding.
func Detached(ctx context.Context, n int) int {
	return Work(context.Background(), n)
}

// Sweep does nested-loop work without ever consulting ctx — a ctxloop
// finding on the outer loop.
func Sweep(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		for y := 0; y < x; y++ {
			s += y
		}
	}
	return s
}

// CallsWithoutCtx invokes a cancellable callee per element but severs the
// caller's ctx — a ctxbg finding for the TODO and a ctxloop finding for
// the loop.
func CallsWithoutCtx(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += Work(context.TODO(), x)
	}
	return s
}

// Covered reaches a cancellation check every iteration — no findings.
func Covered(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		if ctx.Err() != nil {
			return s
		}
		for y := 0; y < x; y++ {
			s += y
		}
	}
	return s
}

// Propagates passes ctx into the callee each iteration — no findings.
func Propagates(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += Work(ctx, x)
	}
	return s
}

// Shim is the documented compat pattern: no ctx parameter, so wrapping a
// Background context is legitimate — no findings.
func Shim(xs []int) int {
	return Covered(context.Background(), xs)
}
