package exactoverflow

// ScaleCoeff is clean: an operand converted from a narrow type is
// bounded, and a 32-bit factor cannot overflow an int64 product with an
// in-range domain value.
func ScaleCoeff(c int16, h int64) int64 {
	return int64(c) * h
}

// MaskLow is clean: constant shiftees (masks, bit probes) never flag.
func MaskLow(q int64, k uint) int64 {
	return q & (1<<20 - 1) & (1 << k)
}

// SumChecked routes the accumulation through an overflow-guarded helper.
func SumChecked(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s = addCheck(s, dist(x))
	}
	return s
}

// MulGuarded multiplies through the checked helper.
func MulGuarded(a, b int64) int64 {
	return mulCheck(a, b) + 1
}

// HalfDiff is clean: magnitude-shrinking operators keep values bounded.
func HalfDiff(a int64) int64 {
	return (a >> 32) * (a >> 33)
}

// addCheck panics instead of wrapping; the annotation tells the analyzer
// its results are safe.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func addCheck(a, b int64) int64 {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		panic("overflow")
	}
	return s
}

// mulCheck panics instead of wrapping.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func mulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b //patlint:ignore exactoverflow the division below detects the wrap
	if p/b != a {
		panic("overflow")
	}
	return p
}
