// Package exactoverflow seeds violations for the exact-arithmetic
// overflow analyzer: int64 products, shifts and loop accumulations over
// values dataflow cannot bound.
package exactoverflow

// dist returns an unbounded int64 (no //patlint:checked annotation).
func dist(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Price multiplies two unbounded int64 domain values.
func Price(cost, d int64) int64 {
	return cost * d // want(exactoverflow): multiply of two unbounded
}

// Pack shifts an unbounded value into the high bits.
func Pack(w, d int64) int64 {
	return w<<20 | d // want(exactoverflow): left shift of unbounded
}

// SumDists accumulates an unbounded call result in a loop: the sum grows
// with the iteration count.
func SumDists(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += dist(x) // want(exactoverflow): accumulates unbounded int64 call result
	}
	return s
}

// ScaleInPlace compounds an unbounded product in place.
func ScaleInPlace(prices []int64, rate int64) {
	for i := range prices {
		prices[i] *= rate // want(exactoverflow): *= of two unbounded
	}
}
