// Package determinism seeds violations for the patlint maprange and
// nondet analyzers: the fixture is classified like an algorithm package,
// so map iteration order must not leak and the wall clock is off limits.
package determinism

import (
	"math/rand"
	"slices"
	"time"
)

// Keys leaks map iteration order into the returned slice — a maprange
// finding.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts — the blessed idiom, no finding.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Total folds a map into an order-insensitive scalar — no finding.
func Total(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Stamp reads the wall clock — a nondet finding.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from math/rand — the import is the nondet finding.
func Jitter() int64 {
	return rand.Int63()
}
