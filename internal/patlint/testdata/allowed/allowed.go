// Package allowed mirrors the float-legitimate packages (policy, stats,
// textplot): it sits outside the exact/deterministic/routing classes, so
// floats, math.*, and map-order leaks produce no findings here. Only the
// module-wide sortslice rule applies, and this package honours it.
package allowed

import "math"

// Mean is reporting-style float math — fine outside the exact set.
func Mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Dev calls math.Sqrt — fine outside the exact set.
func Dev(x float64) float64 {
	return math.Sqrt(x)
}

// Keys leaks map order — maprange applies only to deterministic packages.
func Keys(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
