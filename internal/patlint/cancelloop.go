package patlint

import (
	"go/ast"
	"go/types"
)

// checkCancelLoop is the interprocedural completion of ctxloop. ctxloop
// only recognizes iteration-scale work syntactically: a nested loop, or
// a direct call to a ctx-taking callee. A loop that calls a ctx-less
// wrapper (Frontier instead of FrontierContext, a convenience helper
// three calls above the DP) does the same work but shows none of those
// markers, which is exactly the gap the PR 6 fuzzer exposed in dw. The
// facts table closes it: ctxWork marks every function that transitively
// reaches a ctx-taking callee, so a loop in a context-aware function
// that calls a no-ctx-param member of that set without the loop ever
// touching ctx is uncancellable routing work.
//
// Loops ctxloop already flags (loopIsHeavy) are skipped here so one
// defect yields one finding.
func checkCancelLoop(p *Pass) {
	info := p.Pkg.Info
	eachCtxFunc(p.Pkg, func(fd *ast.FuncDecl, ctxParams []types.Object) {
		var walk func(n ast.Node, covered bool)
		walk = func(n ast.Node, covered bool) {
			switch s := n.(type) {
			case *ast.FuncLit:
				return
			case *ast.ForStmt, *ast.RangeStmt:
				body := loopBody(s)
				loopCovered := covered || usesAnyObj(info, body, ctxParams)
				if !loopCovered && !loopIsHeavy(info, body) {
					if callee := hiddenCtxWork(info, p.Facts, body); callee != nil {
						p.Reportf(n.Pos(),
							"loop calls %s, which transitively reaches cancellable routing work, but never checks the context (use ctx.Err() or a ctx-taking variant)",
							callee.Name())
					}
				}
				for _, st := range body.List {
					walk(st, loopCovered)
				}
				return
			}
			children(n, func(c ast.Node) { walk(c, covered) })
		}
		for _, st := range fd.Body.List {
			walk(st, false)
		}
	})
}

// hiddenCtxWork returns a callee in body (closures excluded) that has no
// context parameter itself but transitively reaches ctx-taking work, or
// nil if there is none.
func hiddenCtxWork(info *types.Info, facts *Facts, body *ast.BlockStmt) types.Object {
	var found types.Object
	inspectOutsideFuncLits(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObj(info, call)
		if callee != nil && facts.ctxWork[callee] && !signatureTakesContext(callee) {
			found = callee
			return false
		}
		return true
	})
	return found
}

// usesAnyObj reports whether any identifier under n resolves to one of
// the given objects.
func usesAnyObj(info *types.Info, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			obj := info.Uses[id]
			for _, o := range objs {
				if obj == o {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
