package patlint

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"strings"
)

// JSONDiagnostic is the machine-readable form of one finding, with the
// file path relative to the module root so output is stable across
// checkouts. Arrays are emitted in the canonical (file, line, column,
// rule) order.
type JSONDiagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// ToJSON converts sorted diagnostics to their machine-readable form.
func ToJSON(root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File: relTo(root, d.Pos.Filename),
			Line: d.Pos.Line,
			Rule: d.Rule,
			Msg:  d.Msg,
		})
	}
	return out
}

// BaselineEntry is one grandfathered finding. Entries carry no line
// number: a baseline must survive unrelated edits above the finding, so
// matching is by (file, rule, msg) as a multiset.
type BaselineEntry struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// BaselineOf converts findings to baseline entries in sorted order.
func BaselineOf(root string, diags []Diagnostic) []BaselineEntry {
	out := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		out = append(out, BaselineEntry{File: relTo(root, d.Pos.Filename), Rule: d.Rule, Msg: d.Msg})
	}
	slices.SortFunc(out, func(a, b BaselineEntry) int {
		if c := strings.Compare(a.File, b.File); c != 0 {
			return c
		}
		if c := strings.Compare(a.Rule, b.Rule); c != 0 {
			return c
		}
		return strings.Compare(a.Msg, b.Msg)
	})
	return out
}

// LoadBaseline reads a baseline file (a JSON array of entries).
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("patlint: baseline %s: %w", path, err)
	}
	return entries, nil
}

// SaveBaseline writes entries as an indented JSON array (an empty
// baseline is the literal "[]", the preferred steady state).
func SaveBaseline(path string, entries []BaselineEntry) error {
	if entries == nil {
		entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline subtracts the baseline from the findings as a multiset:
// each entry forgives at most one matching finding. It returns the
// surviving (new) findings and the stale entries that matched nothing —
// stale entries mean the underlying finding was fixed and the baseline
// should be regenerated.
func ApplyBaseline(root string, diags []Diagnostic, base []BaselineEntry) (kept []Diagnostic, stale []BaselineEntry) {
	budget := make(map[BaselineEntry]int, len(base))
	for _, e := range base {
		budget[e]++
	}
	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		e := BaselineEntry{File: relTo(root, d.Pos.Filename), Rule: d.Rule, Msg: d.Msg}
		if budget[e] > 0 {
			budget[e]--
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range base {
		if budget[e] > 0 {
			budget[e]--
			stale = append(stale, e)
		}
	}
	return kept, stale
}

// relTo makes an absolute file path root-relative (the identity for
// paths outside root).
func relTo(root, file string) string {
	if rel, ok := strings.CutPrefix(file, root+"/"); ok {
		return rel
	}
	return file
}
