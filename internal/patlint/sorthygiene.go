package patlint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkSortSlice bans the reflection-based sort.Slice/sort.SliceStable in
// every package: PR 4 measured the reflect swapper at 39% of allocated
// objects in internal/dw's hot path, and slices.SortFunc compiles to a
// monomorphised comparator with identical semantics. It applies
// module-wide — a deterministic tie-break belongs in the comparator, not
// in whichever call happens to be stable.
func checkSortSlice(p *Package, report func(token.Pos, string, string)) {
	info := p.Info
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgNameOf(info, sel.X) != "sort" {
				return true
			}
			var repl string
			switch sel.Sel.Name {
			case "Slice":
				repl = "slices.SortFunc"
			case "SliceStable":
				repl = "slices.SortStableFunc"
			default:
				return true
			}
			report(call.Pos(), RuleSortSlice,
				fmt.Sprintf("sort.%s uses the reflection-based swapper; use %s with an explicit total-order compare", sel.Sel.Name, repl))
			return true
		})
	}
}
