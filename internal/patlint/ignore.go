package patlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the escape-hatch directive: `//patlint:ignore rule reason`.
// A directive suppresses findings of the named rule on its own line and on
// the line below it; placed in the doc comment of a top-level declaration
// it suppresses findings of that rule across the whole declaration.
// The reason is mandatory — a directive without one is itself a finding.
const ignorePrefix = "//patlint:ignore"

// directive is one parsed ignore comment.
type directive struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
}

// span is a declaration-scoped suppression range.
type span struct {
	rule       string
	start, end int // line range, inclusive
}

// fileIgnores indexes the directives of one file.
type fileIgnores struct {
	byLine  map[int][]string // line -> suppressed rules
	spans   []span
	bad     []directive // directives missing a reason
	unknown []directive // directives naming a rule that does not exist
}

// collectIgnores parses every `//patlint:ignore` comment of the file.
func collectIgnores(fset *token.FileSet, f *ast.File) *fileIgnores {
	fi := &fileIgnores{byLine: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			d := directive{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
			if len(fields) > 0 {
				d.rule = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			if d.rule == "" || d.reason == "" {
				fi.bad = append(fi.bad, d)
				continue
			}
			// A directive naming a rule that no longer exists suppresses
			// nothing; left in place it rots into misleading documentation,
			// so it is a finding in its own right (and still recorded, so
			// the author's intent is preserved until fixed).
			if !knownRule(d.rule) {
				fi.unknown = append(fi.unknown, d)
			}
			fi.byLine[d.line] = append(fi.byLine[d.line], d.rule)
		}
	}
	// Doc-comment directives cover their whole declaration: one annotation
	// on e.g. pareto.Hypervolume covers every float expression inside it.
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // already recorded in bad above
			}
			fi.spans = append(fi.spans, span{
				rule:  fields[0],
				start: fset.Position(decl.Pos()).Line,
				end:   fset.Position(decl.End()).Line,
			})
		}
	}
	return fi
}

// suppressed reports whether a finding of rule at line is covered by a
// directive on the same line, the line above, or an enclosing declaration.
func (fi *fileIgnores) suppressed(rule string, line int) bool {
	for _, r := range fi.byLine[line] {
		if r == rule {
			return true
		}
	}
	for _, r := range fi.byLine[line-1] {
		if r == rule {
			return true
		}
	}
	for _, s := range fi.spans {
		if s.rule == rule && line >= s.start && line <= s.end {
			return true
		}
	}
	return false
}

// applyIgnores filters the package's diagnostics through its ignore
// directives and reports malformed directives as patlint(ignore) findings.
func applyIgnores(fset *token.FileSet, p *Package, diags []Diagnostic) []Diagnostic {
	byFile := make(map[string]*fileIgnores, len(p.Files))
	out := make([]Diagnostic, 0, len(diags))
	for _, f := range p.Files {
		fi := collectIgnores(fset, f)
		byFile[fset.Position(f.Pos()).Filename] = fi
		for _, d := range fi.bad {
			out = append(out, Diagnostic{
				Pos:  fset.Position(d.pos),
				Rule: RuleIgnore,
				Msg:  "ignore directive needs a rule and a reason: //patlint:ignore <rule> <reason>",
			})
		}
		for _, d := range fi.unknown {
			out = append(out, Diagnostic{
				Pos:  fset.Position(d.pos),
				Rule: RuleIgnore,
				Msg:  fmt.Sprintf("ignore directive names unknown rule %q (known: %s)", d.rule, strings.Join(Rules(), ", ")),
			})
		}
	}
	for _, d := range diags {
		fi := byFile[d.Pos.Filename]
		if fi != nil && fi.suppressed(d.Rule, d.Pos.Line) {
			continue
		}
		out = append(out, d)
	}
	return out
}
