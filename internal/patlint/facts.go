package patlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation markers, written in the doc comment of a declaration:
//
//	//patlint:shared <why>   — on a func: its results alias cache-owned
//	                           data and must never be mutated by callers;
//	                           on a type: every value of the type is
//	                           cache-owned (its fields alias shared state).
//	//patlint:checked <why>  — on a func: its int64 results are
//	                           overflow-guarded (panics rather than
//	                           wrapping), so exactoverflow treats calls
//	                           to it as safe.
const (
	sharedMarker  = "//patlint:shared"
	checkedMarker = "//patlint:checked"
)

// Facts are the module-wide call-graph summaries the interprocedural
// analyzers consume. They are built once per Check, package by package in
// dependency order, so by the time an analyzer sees a package every
// callee it can name — same package or an import — already has its
// summary. Within a package the collector iterates to a fixpoint, so
// mutual recursion and declaration order do not matter.
type Facts struct {
	// shared marks *types.Func objects whose results are cache-owned
	// (annotation-seeded, then propagated: a function returning a shared
	// value is itself shared) and *types.TypeName objects whose values
	// are cache-owned wherever they appear.
	shared map[types.Object]bool
	// checked marks functions whose int64 results are overflow-guarded
	// (param.MulCheck and friends); exactoverflow treats their calls as
	// bounded.
	checked map[types.Object]bool
	// mutRecv marks methods that write through their receiver into
	// caller-visible memory (pointer receiver field/element writes, or
	// element writes through a value receiver's slice/map fields).
	mutRecv map[types.Object]bool
	// mutParam records, per function, a bitmask of parameters the body
	// writes through into caller-visible memory.
	mutParam map[types.Object]uint64
	// ctxWork marks functions that are cancellable work: they take a
	// context.Context, or transitively call something that does. The
	// cancelloop analyzer flags unchecked loops over the no-ctx-param
	// members of this set.
	ctxWork map[types.Object]bool
	// goUnsafe marks functions that are unsafe to launch bare with `go`:
	// they loop but reference no context and perform no channel
	// operation, so nothing external can ever stop them.
	goUnsafe map[types.Object]bool
}

func newFacts() *Facts {
	return &Facts{
		shared:   make(map[types.Object]bool),
		checked:  make(map[types.Object]bool),
		mutRecv:  make(map[types.Object]bool),
		mutParam: make(map[types.Object]uint64),
		ctxWork:  make(map[types.Object]bool),
		goUnsafe: make(map[types.Object]bool),
	}
}

// hasMarker reports whether any comment group of the declaration carries
// the marker directive.
func hasMarker(docs []*ast.CommentGroup, marker string) bool {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if rest, ok := strings.CutPrefix(c.Text, marker); ok {
				// Exact-word match: "//patlint:sharedX" is not a marker.
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					return true
				}
			}
		}
	}
	return false
}

// collect computes p's contribution to the fact tables. Dependencies of p
// have already been collected (Load returns packages topologically
// sorted), so cross-package calls resolve against final summaries; the
// inner loop reruns the package until its own tables stop growing.
func (f *Facts) collect(p *Package) {
	info := p.Info
	// Pass 1: annotation seeds.
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj := info.Defs[d.Name]
				if obj == nil {
					continue
				}
				if hasMarker([]*ast.CommentGroup{d.Doc}, sharedMarker) {
					f.shared[obj] = true
				}
				if hasMarker([]*ast.CommentGroup{d.Doc}, checkedMarker) {
					f.checked[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasMarker([]*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment}, sharedMarker) {
						if obj := info.Defs[ts.Name]; obj != nil {
							f.shared[obj] = true
						}
					}
				}
			}
		}
	}
	// Pass 2: per-function summaries, to a fixpoint over the package.
	for changed := true; changed; {
		changed = false
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if f.collectFunc(info, fd, obj) {
					changed = true
				}
			}
		}
	}
}

// collectFunc updates the summaries of one function, reporting whether
// anything new was learned.
func (f *Facts) collectFunc(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	changed := false
	if !f.ctxWork[obj] && f.funcIsCtxWork(info, fd) {
		f.ctxWork[obj] = true
		changed = true
	}
	if !f.goUnsafe[obj] && funcIsGoUnsafe(info, fd) {
		f.goUnsafe[obj] = true
		changed = true
	}
	if mask, recv := f.funcMutations(info, fd); true {
		if recv && !f.mutRecv[obj] {
			f.mutRecv[obj] = true
			changed = true
		}
		if old := f.mutParam[obj]; mask|old != old {
			f.mutParam[obj] = mask | old
			changed = true
		}
	}
	if !f.shared[obj] && f.funcReturnsShared(info, fd) {
		f.shared[obj] = true
		changed = true
	}
	return changed
}

// funcIsCtxWork reports whether fd takes a context.Context or calls (in
// its own body — closures excluded, their call sites are unknown) a
// function that is already known to be ctx work.
func (f *Facts) funcIsCtxWork(info *types.Info, fd *ast.FuncDecl) bool {
	if len(contextParams(info, fd)) > 0 {
		return true
	}
	work := false
	inspectOutsideFuncLits(fd.Body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeObj(info, call); callee != nil {
			if f.ctxWork[callee] || signatureTakesContext(callee) {
				work = true
				return false
			}
		}
		return true
	})
	return work
}

// signatureTakesContext reports whether obj is a function with a
// context.Context parameter — the cross-module fallback when no fact was
// collected (standard library, closures behind variables).
func signatureTakesContext(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// funcIsGoUnsafe reports whether launching fd in a bare goroutine could
// leak it: the body loops, but references no context.Context value and
// performs no channel operation, so no external signal can stop it.
func funcIsGoUnsafe(info *types.Info, fd *ast.FuncDecl) bool {
	return bodyIsGoUnsafe(info, fd.Body)
}

// bodyIsGoUnsafe is funcIsGoUnsafe over any function body (used for both
// declarations, via facts, and for go'd function literals directly).
func bodyIsGoUnsafe(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	hasLoop, hasExit := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if hasExit {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			// Ranging over a channel is itself an exit path: the loop
			// ends when the channel closes.
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					hasExit = true
					return false
				}
			}
			hasLoop = true
		case *ast.SendStmt, *ast.SelectStmt:
			hasExit = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				hasExit = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					hasExit = true
					return false
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				hasExit = true
				return false
			}
		}
		return true
	})
	return hasLoop && !hasExit
}

// funcMutations computes which caller-visible memory fd writes through:
// a bitmask over its parameters and whether it writes through its
// receiver. A write counts when it reaches memory the caller can see:
// any element/pointee write (slice index, map index, pointer deref), or
// a field write when the root is a pointer. Writes to a value-typed
// local's own fields stay local and do not count.
func (f *Facts) funcMutations(info *types.Info, fd *ast.FuncDecl) (mask uint64, recv bool) {
	roots := make(map[types.Object]int) // object -> param index, or -1 for receiver
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					roots[obj] = -1
				}
			}
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				roots[obj] = idx
			}
			idx++
		}
	}
	note := func(obj types.Object) {
		i, ok := roots[obj]
		if !ok {
			return
		}
		if i < 0 {
			recv = true
		} else if i < 64 {
			mask |= 1 << i
		}
	}
	noteLValue := func(e ast.Expr) {
		if root, visible := visibleWriteRoot(info, e); visible {
			if obj := useOrDef(info, root); obj != nil {
				note(obj)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				noteLValue(lhs)
			}
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) && len(call.Args) > 0 {
					// x = append(x, ...) may write into x's existing
					// backing array; treat the first operand as written.
					if root := rootIdent(call.Args[0]); root != nil {
						if obj := useOrDef(info, root); obj != nil {
							note(obj)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			noteLValue(n.X)
		case *ast.CallExpr:
			f.noteCallMutations(info, n, func(e ast.Expr) {
				if root := rootIdent(e); root != nil {
					if obj := useOrDef(info, root); obj != nil {
						note(obj)
					}
				}
			})
		}
		return true
	})
	return mask, recv
}

// noteCallMutations invokes written for every argument (or receiver) of
// the call that the callee is known to write through: the builtins copy/
// delete/clear, the sort/slices mutators, module functions with mutParam
// facts, and mutRecv methods.
func (f *Facts) noteCallMutations(info *types.Info, call *ast.CallExpr, written func(ast.Expr)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy", "delete", "clear":
				if len(call.Args) > 0 {
					written(call.Args[0])
				}
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg := pkgNameOf(info, sel.X); pkg == "sort" || pkg == "slices" {
			if len(call.Args) > 0 && stdSortMutates(sel.Sel.Name) {
				written(call.Args[0])
			}
			return
		}
	}
	callee := calleeObj(info, call)
	if callee == nil {
		return
	}
	if f.mutRecv[callee] {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			written(sel.X)
		}
	}
	if mask := f.mutParam[callee]; mask != 0 {
		for i, arg := range call.Args {
			if i < 64 && mask&(1<<i) != 0 {
				written(arg)
			}
		}
	}
}

// stdSortMutates reports whether the named sort/slices function writes
// through its first argument.
func stdSortMutates(name string) bool {
	switch name {
	case "Sort", "SortFunc", "SortStableFunc", "Stable", "Slice", "SliceStable",
		"Reverse", "Delete", "DeleteFunc", "Insert", "Compact", "CompactFunc", "Replace":
		return true
	}
	return false
}

// funcReturnsShared reports whether fd can return a value tainted as
// shared, which makes fd itself a shared-returning function.
func (f *Facts) funcReturnsShared(info *types.Info, fd *ast.FuncDecl) bool {
	tt := newTaintTracker(info, f)
	tt.scan(fd)
	shared := false
	inspectOutsideFuncLits(fd.Body, func(n ast.Node) bool {
		if shared {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if tt.tainted(res) {
				shared = true
				return false
			}
		}
		return true
	})
	return shared
}

// calleeObj resolves the callee of a call expression to its object, or
// nil (function values, conversions).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// useOrDef resolves an identifier to its object whether it is a use or
// its defining occurrence.
func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// visibleWriteRoot analyzes an lvalue and reports whether assigning to it
// writes memory visible outside the root variable: the write passes
// through a pointer deref, a slice element or a map element — or the
// root itself is a pointer, making even direct field writes external.
// Writes into a value-typed variable's own fields or array elements stay
// local. Returns the root identifier when visible.
func visibleWriteRoot(info *types.Info, e ast.Expr) (*ast.Ident, bool) {
	viaRef := false
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if viaRef {
				return v, true
			}
			if tv, ok := info.Types[v]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return v, true
				}
			}
			return v, false
		case *ast.SelectorExpr:
			// Selecting through a pointer dereferences implicitly.
			if tv, ok := info.Types[v.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					viaRef = true
				}
			}
			e = v.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[v.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					viaRef = true
				}
			}
			e = v.X
		case *ast.StarExpr:
			viaRef = true
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}

// inspectOutsideFuncLits walks n like ast.Inspect but does not descend
// into function literals (their execution context differs from the
// enclosing function's).
func inspectOutsideFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}
