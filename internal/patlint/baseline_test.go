package patlint_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"patlabor/internal/patlint"
)

func diag(root, file string, line int, rule, msg string) patlint.Diagnostic {
	return patlint.Diagnostic{
		Pos:  token.Position{Filename: filepath.Join(root, file), Line: line},
		Rule: rule,
		Msg:  msg,
	}
}

// TestBaselineRoundTrip pins the grandfathering semantics: entries match
// by (file, rule, msg) as a multiset — line drift is forgiven, new
// findings are not, and entries whose finding disappeared surface as
// stale.
func TestBaselineRoundTrip(t *testing.T) {
	const root = "/repo"
	old := []patlint.Diagnostic{
		diag(root, "internal/a/a.go", 10, "exact", "use of float64"),
		diag(root, "internal/a/a.go", 20, "exact", "use of float64"),
		diag(root, "internal/b/b.go", 5, "goleak", "no exit path"),
	}
	base := patlint.BaselineOf(root, old)
	if len(base) != 3 {
		t.Fatalf("baseline has %d entries, want 3", len(base))
	}

	// Same findings at different lines: all forgiven, nothing stale.
	moved := []patlint.Diagnostic{
		diag(root, "internal/a/a.go", 11, "exact", "use of float64"),
		diag(root, "internal/a/a.go", 99, "exact", "use of float64"),
		diag(root, "internal/b/b.go", 6, "goleak", "no exit path"),
	}
	kept, stale := patlint.ApplyBaseline(root, moved, base)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("moved findings: kept=%d stale=%d, want 0/0", len(kept), len(stale))
	}

	// A third duplicate exceeds the multiset budget; a novel finding is
	// never forgiven; fixing one duplicate leaves a stale entry.
	next := []patlint.Diagnostic{
		diag(root, "internal/a/a.go", 10, "exact", "use of float64"),
		diag(root, "internal/a/a.go", 20, "exact", "use of float64"),
		diag(root, "internal/a/a.go", 30, "exact", "use of float64"),
		diag(root, "internal/c/c.go", 1, "sharedmut", "write to cache-owned data"),
	}
	kept, stale = patlint.ApplyBaseline(root, next, base)
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2 (the extra duplicate and the novel one)", len(kept))
	}
	if len(stale) != 1 || stale[0].Rule != "goleak" {
		t.Fatalf("stale = %v, want the fixed goleak entry", stale)
	}
}
