package patlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	Path   string // import path ("patlabor/internal/geom")
	Dir    string // absolute directory
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Target bool // matched by the requested patterns (vs loaded as a dependency)
}

// Loader parses and type-checks module packages from source using only
// the standard library. Standard-library imports are resolved by the
// go/importer "source" importer; module-internal imports are resolved
// from the loader's own cache in dependency order. A Loader is reusable
// across Load calls (the std importer and package cache are shared),
// which keeps repeated analyses — e.g. one per test fixture — cheap.
type Loader struct {
	Root string // module root (directory containing go.mod)
	Mod  string // module path from go.mod
	Fset *token.FileSet

	std   types.Importer
	cache map[string]*Package // by import path
}

// NewLoader locates the enclosing module of dir and returns a Loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:  root,
		Mod:   mod,
		Fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*Package),
	}, nil
}

// findModule ascends from dir to the nearest go.mod and parses its module path.
func findModule(dir string) (root, mod string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(m), nil
				}
			}
			return "", "", fmt.Errorf("patlint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("patlint: no go.mod found above %s", abs)
		}
	}
}

// Load resolves the patterns ("./...", "dir", "dir/...") to package
// directories, parses the non-test files of each, and type-checks them
// together with any module-internal dependencies. It returns every loaded
// package; those matched by the patterns have Target set.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	// Parse the requested packages.
	byPath := make(map[string]*Package)
	var order []string
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no non-test Go files
		}
		p.Target = true
		byPath[p.Path] = p
		order = append(order, p.Path)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("patlint: no Go packages matched %v", patterns)
	}
	// Pull in module-internal dependencies (not analyzed, just needed for
	// type-checking the targets).
	for i := 0; i < len(order); i++ {
		p := byPath[order[i]]
		for _, imp := range packageImports(p.Files) {
			if !l.internal(imp) || byPath[imp] != nil {
				continue
			}
			dep, err := l.parseDir(l.dirFor(imp))
			if err != nil {
				return nil, err
			}
			if dep == nil {
				return nil, fmt.Errorf("patlint: import %q has no Go files", imp)
			}
			byPath[dep.Path] = dep
			order = append(order, dep.Path)
		}
	}
	// Type-check in dependency order.
	sorted, err := toposort(byPath)
	if err != nil {
		return nil, err
	}
	for _, p := range sorted {
		if err := l.typecheck(p, byPath); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}

// internal reports whether imp is a package of this module.
func (l *Loader) internal(imp string) bool {
	return imp == l.Mod || strings.HasPrefix(imp, l.Mod+"/")
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(imp string) string {
	return filepath.Join(l.Root, strings.TrimPrefix(strings.TrimPrefix(imp, l.Mod), "/"))
}

// pathFor maps an absolute package directory to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Mod
	}
	return l.Mod + "/" + filepath.ToSlash(rel)
}

// expand resolves command-line patterns to absolute package directories.
// Directories named testdata (and hidden/underscore/vendor directories)
// are skipped during ./... walks, matching the go tool, unless the
// pattern root itself lies inside a testdata tree.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		if st, err := os.Stat(base); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("patlint: not a package directory: %s", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		inTestdata := strings.Contains(base, string(filepath.Separator)+"testdata")
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "vendor" || (name == "testdata" && !inTestdata) {
					return filepath.SkipDir
				}
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of dir (with comments, for ignore
// directives). Returns nil if the directory holds no non-test Go files.
func (l *Loader) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS/_GOARCH
		// suffixes) so platform-split files don't collide: analyze the
		// same file set the host toolchain would compile.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{Path: l.pathFor(dir), Dir: dir, Files: files}, nil
}

// packageImports returns the deduplicated import paths of the files.
func packageImports(files []*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// toposort orders the packages so every module-internal dependency
// precedes its importers.
func toposort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int)
	var out []*Package
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("patlint: import cycle through %s", p)
		}
		state[p] = grey
		for _, imp := range packageImports(byPath[p].Files) {
			if byPath[imp] != nil {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[p] = black
		out = append(out, byPath[p])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports from the loader cache
// and everything else through the standard-library source importer.
type moduleImporter struct {
	l      *Loader
	byPath map[string]*Package
}

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if p := m.byPath[path]; p != nil && p.Pkg != nil {
		return p.Pkg, nil
	}
	if p := m.l.cache[path]; p != nil && p.Pkg != nil {
		return p.Pkg, nil
	}
	if m.l.internal(path) {
		return nil, fmt.Errorf("patlint: internal import %q not loaded", path)
	}
	return m.l.std.Import(path)
}

// typecheck runs go/types over the package, reusing a cached result when
// the same import path was checked by an earlier Load of this Loader.
func (l *Loader) typecheck(p *Package, byPath map[string]*Package) error {
	if cached := l.cache[p.Path]; cached != nil {
		*p = Package{Path: cached.Path, Dir: cached.Dir, Files: cached.Files,
			Pkg: cached.Pkg, Info: cached.Info, Target: p.Target}
		return nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	conf := types.Config{
		Importer: moduleImporter{l: l, byPath: byPath},
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(p.Path, l.Fset, p.Files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		if len(msgs) > 5 {
			msgs = append(msgs[:5], fmt.Sprintf("... and %d more", len(msgs)-5))
		}
		return fmt.Errorf("patlint: type errors in %s:\n  %s", p.Path, strings.Join(msgs, "\n  "))
	}
	p.Pkg, p.Info = pkg, info
	l.cache[p.Path] = p
	return nil
}
