package param

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func TestVecOps(t *testing.T) {
	a := Vec{1, 2, 0, 3}
	b := Vec{0, 2, 1, 3}
	if got := a.Add(b); !got.Eq(Vec{1, 4, 1, 6}) {
		t.Fatalf("Add = %v", got)
	}
	if a.LE(b) || !(Vec{0, 1, 0, 3}).LE(a) {
		t.Fatal("LE wrong")
	}
	// Eval: n-1 = 2 horizontal gaps (h), 2 vertical (v).
	h := []int64{10, 100}
	v := []int64{1000, 10000}
	if got := a.Eval(h, v); got != 10+200+30000 {
		t.Fatalf("Eval = %d", got)
	}
}

func TestSolutionPrunes(t *testing.T) {
	s1 := Solution{W: Vec{1, 0}, D: []Vec{{1, 0}}}
	s2 := Solution{W: Vec{1, 1}, D: []Vec{{1, 1}}}
	if !s1.Prunes(s2) {
		t.Error("s1 should prune s2")
	}
	if s2.Prunes(s1) {
		t.Error("s2 must not prune s1")
	}
	// Incomparable W.
	s3 := Solution{W: Vec{0, 2}, D: []Vec{{0, 2}}}
	if s1.Prunes(s3) || s3.Prunes(s1) {
		t.Error("incomparable solutions must not prune each other")
	}
	// Row matching: s4 has two rows both dominated by s5's single row.
	s4 := Solution{W: Vec{2, 2}, D: []Vec{{2, 0}, {0, 2}}}
	s5 := Solution{W: Vec{2, 2}, D: []Vec{{2, 2}}}
	if !s4.Prunes(s5) {
		t.Error("s4's rows are all below s5's row; s4 should prune s5")
	}
	if s5.Prunes(s4) {
		t.Error("s5's row is not below any single row of s4 in both coords")
	}
}

func TestPrunesImpliesDominanceEverywhere(t *testing.T) {
	// Property: when Prunes holds, evaluation is dominated on random
	// nonnegative gap assignments.
	rng := rand.New(rand.NewSource(21))
	dim := 6
	randSol := func(rows int) Solution {
		s := Solution{W: make(Vec, dim)}
		for k := range s.W {
			s.W[k] = int16(rng.Intn(4))
		}
		for r := 0; r < rows; r++ {
			row := make(Vec, dim)
			for k := range row {
				row[k] = int16(rng.Intn(4))
			}
			s.D = append(s.D, row)
		}
		return s
	}
	for trial := 0; trial < 500; trial++ {
		a := randSol(1 + rng.Intn(3))
		b := randSol(1 + rng.Intn(3))
		if !a.Prunes(b) {
			continue
		}
		for probe := 0; probe < 20; probe++ {
			h := make([]int64, dim/2)
			v := make([]int64, dim/2)
			for k := range h {
				h[k] = rng.Int63n(50)
				v[k] = rng.Int63n(50)
			}
			ea, eb := a.Eval(h, v), b.Eval(h, v)
			if ea.W > eb.W || ea.D > eb.D {
				t.Fatalf("Prunes violated: %v vs %v at h=%v v=%v: %v !<= %v", a, b, h, v, ea, eb)
			}
		}
	}
}

func TestFilterSolutions(t *testing.T) {
	s1 := Solution{W: Vec{1, 0}, D: []Vec{{1, 0}}}
	s2 := Solution{W: Vec{1, 1}, D: []Vec{{1, 1}}}
	s3 := Solution{W: Vec{0, 2}, D: []Vec{{0, 2}}}
	out := FilterSolutions([]Solution{s2, s1, s3})
	if len(out) != 2 {
		t.Fatalf("FilterSolutions kept %d, want 2", len(out))
	}
	// Equal solutions: exactly one kept.
	out2 := FilterSolutions([]Solution{s1, Solution{W: Vec{1, 0}, D: []Vec{{1, 0}}}})
	if len(out2) != 1 {
		t.Fatalf("equal solutions kept %d, want 1", len(out2))
	}
}

func randomGeneralNet(rng *rand.Rand, n int, span int64) tree.Net {
	used := map[int64]bool{}
	xs := make([]int64, 0, n)
	for len(xs) < n {
		x := rng.Int63n(span)
		if !used[x] {
			used[x] = true
			xs = append(xs, x)
		}
	}
	used = map[int64]bool{}
	ys := make([]int64, 0, n)
	for len(ys) < n {
		y := rng.Int63n(span)
		if !used[y] {
			used[y] = true
			ys = append(ys, y)
		}
	}
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(xs[i], ys[i])
	}
	return tree.Net{Pins: pins}
}

// frontierViaTopologies computes the exact frontier of a net by symbolic
// enumeration of its own pattern (identity transform), instantiation and
// concrete Pareto filtering.
func frontierViaTopologies(t *testing.T, net tree.Net, canonical bool) []pareto.Sol {
	t.Helper()
	r := hanan.RanksOf(net)
	pat, tf := r.Pattern, hanan.Transform{}
	if canonical {
		pat, tf = hanan.Canonical(r.Pattern)
	}
	topos, err := EnumeratePattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	var sols []pareto.Sol
	for _, topo := range topos {
		tr, err := topo.Instantiate(r, tf)
		if err != nil {
			t.Fatalf("Instantiate: %v", err)
		}
		if err := tr.Validate(net); err != nil {
			t.Fatalf("instantiated tree invalid: %v", err)
		}
		sols = append(sols, tr.Sol())
	}
	return pareto.Filter(sols)
}

func TestEnumerateMatchesDWIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3) // 3..5
		net := randomGeneralNet(rng, n, 50)
		got := frontierViaTopologies(t, net, false)
		want := dwFrontier(t, net)
		assertSame(t, net, got, want)
	}
}

func TestEnumerateMatchesDWCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		net := randomGeneralNet(rng, n, 50)
		got := frontierViaTopologies(t, net, true)
		want := dwFrontier(t, net)
		assertSame(t, net, got, want)
	}
}

func TestEnumerateTiedCoordinates(t *testing.T) {
	// Nets with shared coordinates exercise zero gap lengths.
	nets := []tree.Net{
		tree.NewNet(geom.Pt(0, 0), geom.Pt(0, 10), geom.Pt(10, 0)),
		tree.NewNet(geom.Pt(5, 5), geom.Pt(5, 0), geom.Pt(0, 5), geom.Pt(10, 5)),
	}
	for _, net := range nets {
		got := frontierViaTopologies(t, net, true)
		want := dwFrontier(t, net)
		assertSame(t, net, got, want)
	}
}

func assertSame(t *testing.T, net tree.Net, got, want []pareto.Sol) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("net %v: frontier %v, want %v", net.Pins, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("net %v: frontier %v, want %v", net.Pins, got, want)
		}
	}
}

func TestTopologySolutionMatchesInstantiation(t *testing.T) {
	// The symbolic (W, D) of a topology evaluated on the net's gaps must
	// equal the concrete tree objectives.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3)
		net := randomGeneralNet(rng, n, 40)
		r := hanan.RanksOf(net)
		topos, err := EnumeratePattern(r.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, topo := range topos {
			sym := topo.Solution(n).Eval(r.H, r.V)
			tr, err := topo.Instantiate(r, hanan.Transform{})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Sol() != sym {
				t.Fatalf("symbolic %v != concrete %v for topology %v", sym, tr.Sol(), topo)
			}
		}
	}
}

func TestEnumerateDegree2(t *testing.T) {
	pat := hanan.Pattern{N: 2, Perm: []uint8{0, 1}, Src: 0}
	topos, err := EnumeratePattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(topos) != 1 {
		t.Fatalf("degree-2 pattern has %d topologies, want 1", len(topos))
	}
}

func TestEnumerateRejectsInvalid(t *testing.T) {
	if _, err := EnumeratePattern(hanan.Pattern{N: 3, Perm: []uint8{0, 0, 1}, Src: 0}); err == nil {
		t.Fatal("invalid pattern accepted")
	}
	if _, err := EnumeratePattern(hanan.Pattern{N: 1, Perm: []uint8{0}, Src: 0}); err == nil {
		t.Fatal("degree-1 pattern accepted")
	}
	big := hanan.Pattern{N: 13, Perm: make([]uint8, 13), Src: 0}
	for i := range big.Perm {
		big.Perm[i] = uint8(i)
	}
	if _, err := EnumeratePattern(big); err == nil {
		t.Fatal("oversized pattern accepted")
	}
}

func TestCanonEqualForRelabeledTopology(t *testing.T) {
	a := Topology{
		Nodes:  []RankNode{{0, 0, -1}, {1, 1, 0}, {2, 2, 1}},
		Parent: []int16{-1, 0, 1},
	}
	// Same tree, children added in different order.
	b := Topology{
		Nodes:  []RankNode{{0, 0, -1}, {2, 2, 1}, {1, 1, 0}},
		Parent: []int16{-1, 2, 0},
	}
	if a.Canon() != b.Canon() {
		t.Fatal("Canon differs for relabelled topologies")
	}
}

func dwFrontier(t *testing.T, net tree.Net) []pareto.Sol {
	t.Helper()
	sols, err := dwSols(net)
	if err != nil {
		t.Fatal(err)
	}
	return sols
}
