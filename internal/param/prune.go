package param

// DominancePrune removes topologies whose parameterised solution is
// rendered redundant by an EARLIER stored topology: topology j is dropped
// when some i < j has sols[i].Prunes(sols[j]). The restriction to earlier
// pruners is what makes the filter safe for byte-identical table queries,
// not just solution-identical ones: if i < j and solution i dominates j
// for every nonnegative gap assignment, then on any concrete instance
// either j's point is strictly dominated (never materialized) or it ties
// i's point exactly — and the stable frontier tie-break already picks the
// earlier index i. Removing j therefore never changes which tree a query
// returns. Pruning an earlier topology by a later one would NOT be safe:
// on tie instances the earlier index wins, so removing it would hand the
// point to a different tree.
//
// Lookup-table generation applies this as a final pass over each pattern's
// enumerated class (the paper's Lemma-1 filter in the spirit of Maßberg's
// given-topology DP): the symbolic DP already prunes during its merge and
// extend steps, but the stored solutions are recompiled from the
// reconstructed, monotone-spliced topologies, whose delay-row form can be
// tighter than the arena form the DP compared — so a final pass catches
// redundancies the in-flight filter could not see, and keeps per-pattern
// topology counts bounded as the degree grows.
//
// Both input slices must be index-aligned (sols[i] corresponds to
// topos[i]); they are filtered in place. The pruned count is returned.
func DominancePrune(topos []Topology, sols []Solution) ([]Topology, []Solution, int) {
	if len(topos) != len(sols) {
		// Misaligned inputs: refuse to prune rather than guess.
		return topos, sols, 0
	}
	k := 0
	for j := range sols {
		dominated := false
		for i := 0; i < k; i++ {
			if sols[i].Prunes(sols[j]) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		topos[k] = topos[j]
		sols[k] = sols[j]
		k++
	}
	pruned := len(sols) - k
	return topos[:k], sols[:k], pruned
}
