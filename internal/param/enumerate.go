package param

import (
	"cmp"
	"fmt"
	"math/bits"
	"slices"

	"patlabor/internal/hanan"
)

// EnumeratePattern runs the symbolic Pareto-DW dynamic program of §V-A on
// a degree-n pattern and returns every potentially Pareto-optimal tree
// topology: any topology that is on the exact Pareto frontier for at least
// one concrete assignment of the gap lengths survives. The result is what
// a lookup table stores for the pattern.
//
// All three pruning lemmas are applied (they are safe, see internal/dw),
// plus the Lemma-1 parameterised dominance check via Solution.Prunes.
func EnumeratePattern(p hanan.Pattern) ([]Topology, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("param: invalid pattern %v", p)
	}
	n := p.N
	if n < 2 {
		return nil, fmt.Errorf("param: degree %d too small", n)
	}
	if n > 12 {
		return nil, fmt.Errorf("param: degree %d too large for symbolic enumeration", n)
	}
	e := newEnum(p)
	final := e.run()
	seen := map[string]bool{}
	var out []Topology
	for _, idx := range final {
		topo := e.reconstruct(idx)
		topo.spliceMonotone(n)
		k := topo.Canon()
		if !seen[k] {
			seen[k] = true
			out = append(out, topo)
		}
	}
	return out, nil
}

type sentKind uint8

const (
	sBase sentKind = iota
	sExt
	sMerge
)

type sent struct {
	sol  Solution
	fp   [nFP]int64 // fingerprint: (w,d) at fixed probe gap assignments
	a, b int32
	sink int16
	kind sentKind
}

// nFP probe assignments for cheap pruning pre-checks.
const nFP = 2

type enum struct {
	p      hanan.Pattern
	n      int
	arena  []sent
	keep   []bool
	nodes  []int
	m      int
	sinkNd []int // rank node of sink slot s
	rootNd int
	bpos   []int        // boundary walk position per sink, -1 interior
	probes [nFP][]int64 // probe gap vectors (dim 2n-2)
	distV  map[[2]int]Vec
	S      [][][]int32
}

func newEnum(p hanan.Pattern) *enum {
	n := p.N
	e := &enum{p: p, n: n, distV: map[[2]int]Vec{}}
	// Sinks in x-rank order, skipping the source.
	for i := 0; i < n; i++ {
		if uint8(i) == p.Src {
			e.rootNd = e.node(i, int(p.Perm[i]))
			continue
		}
		e.sinkNd = append(e.sinkNd, e.node(i, int(p.Perm[i])))
	}
	e.m = len(e.sinkNd)
	e.computeKeep()
	e.computeBoundary()
	e.buildProbes()
	return e
}

func (e *enum) node(i, j int) int        { return j*e.n + i }
func (e *enum) coords(nd int) (int, int) { return nd % e.n, nd / e.n }

func (e *enum) computeKeep() {
	n := e.n
	e.keep = make([]bool, n*n)
	type rp struct{ i, j int }
	pins := make([]rp, n)
	for i := 0; i < n; i++ {
		pins[i] = rp{i, int(e.p.Perm[i])}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var ll, lr, ul, ur bool
			for _, q := range pins {
				if q.i <= i && q.j <= j {
					ll = true
				}
				if q.i >= i && q.j <= j {
					lr = true
				}
				if q.i <= i && q.j >= j {
					ul = true
				}
				if q.i >= i && q.j >= j {
					ur = true
				}
			}
			nd := e.node(i, j)
			e.keep[nd] = ll && lr && ul && ur
			if e.keep[nd] {
				e.nodes = append(e.nodes, nd)
			}
		}
	}
}

func (e *enum) computeBoundary() {
	n := e.n
	pos := map[int]int{}
	step := 0
	add := func(i, j int) {
		nd := e.node(i, j)
		if _, ok := pos[nd]; !ok {
			pos[nd] = step
			step++
		}
	}
	for j := 0; j < n; j++ {
		add(0, j)
	}
	for i := 1; i < n; i++ {
		add(i, n-1)
	}
	for j := n - 2; j >= 0; j-- {
		add(n-1, j)
	}
	for i := n - 2; i >= 1; i-- {
		add(i, 0)
	}
	e.bpos = make([]int, e.m)
	for s, nd := range e.sinkNd {
		if p, ok := pos[nd]; ok {
			e.bpos[s] = p
		} else {
			e.bpos[s] = -1
		}
	}
}

// buildProbes fixes deterministic positive gap assignments used as cheap
// necessary conditions for Prunes.
func (e *enum) buildProbes() {
	dim := 2 * (e.n - 1)
	for f := 0; f < nFP; f++ {
		v := make([]int64, dim)
		for k := range v {
			switch f {
			case 0:
				v[k] = 1
			default:
				// Distinct pseudo-random-ish positive weights.
				v[k] = int64(3 + (7*k+11*f)%13)
			}
		}
		e.probes[f] = v
	}
}

// Fingerprint packing layout: w in the high bits, d in the low fpShift
// bits. Probe weights are small (≤ 15) so both values fit comfortably at
// every supported degree; if a future degree pushes one out of range the
// probe degrades to the fpOverflow sentinel, which never filters, so the
// exact Prunes check still decides and results stay identical.
const (
	fpShift    = 20
	fpMask     = 1<<fpShift - 1
	fpMaxW     = 1<<(63-fpShift) - 1
	fpOverflow = -1 // packing out of range: probe is inconclusive
)

func (e *enum) fingerprint(s Solution) [nFP]int64 {
	var fp [nFP]int64
	for f := 0; f < nFP; f++ {
		h := e.probes[f][:e.n-1]
		v := e.probes[f][e.n-1:]
		sol := s.Eval(h, v)
		// Pack (w,d) into a single comparable pair per probe: keep w in
		// the fingerprint and d in the second slot via separate probes.
		if sol.W < 0 || sol.W > fpMaxW || sol.D < 0 || sol.D > fpMask {
			fp[f] = fpOverflow
			continue
		}
		fp[f] = ShiftCheck(sol.W, fpShift) | sol.D
	}
	return fp
}

// fpMayPrune is a necessary condition for a.Prunes(b): on every probe,
// a's w and d must not exceed b's. An fpOverflow probe is inconclusive
// and never rules pruning out.
func fpMayPrune(a, b [nFP]int64) bool {
	for f := 0; f < nFP; f++ {
		if a[f] == fpOverflow || b[f] == fpOverflow {
			continue
		}
		aw, ad := a[f]>>fpShift, a[f]&fpMask
		bw, bd := b[f]>>fpShift, b[f]&fpMask
		if aw > bw || ad > bd {
			return false
		}
	}
	return true
}

func (e *enum) dist(a, b int) Vec {
	key := [2]int{a, b}
	if a > b {
		key = [2]int{b, a}
	}
	if v, ok := e.distV[key]; ok {
		return v
	}
	ai, aj := e.coords(a)
	bi, bj := e.coords(b)
	v := gapVec(e.n, RankNode{I: int8(ai), J: int8(aj)}, RankNode{I: int8(bi), J: int8(bj)})
	e.distV[key] = v
	return v
}

func (e *enum) run() []int32 {
	if e.m == 0 {
		return nil
	}
	full := (1 << e.m) - 1
	e.S = make([][][]int32, full+1)
	nn := e.n * e.n

	order := make([]int, 0, full)
	for q := 1; q <= full; q++ {
		order = append(order, q)
	}
	// Total order: popcount, then subset value — the values are distinct.
	slices.SortFunc(order, func(x, y int) int {
		if c := cmp.Compare(bits.OnesCount(uint(x)), bits.OnesCount(uint(y))); c != 0 {
			return c
		}
		return cmp.Compare(x, y)
	})

	dim := 2 * (e.n - 1)
	zero := make(Vec, dim)
	for _, q := range order {
		Sq := make([][]int32, nn)
		M := make([][]int32, nn)
		if bits.OnesCount(uint(q)) == 1 {
			s := bits.TrailingZeros(uint(q))
			sol := Solution{W: zero, D: []Vec{zero}}
			en := sent{sol: sol, kind: sBase, sink: int16(s)}
			en.fp = e.fingerprint(sol)
			e.arena = append(e.arena, en)
			M[e.sinkNd[s]] = []int32{int32(len(e.arena) - 1)}
		} else {
			e.mergeCandidates(q, M)
		}
		e.extend(q, M, Sq)
		e.S[q] = Sq
	}
	return e.S[full][e.rootNd]
}

func (e *enum) bbox(q int) (ilo, jlo, ihi, jhi int) {
	first := true
	for s := 0; s < e.m; s++ {
		if q&(1<<s) == 0 {
			continue
		}
		i, j := e.coords(e.sinkNd[s])
		if first {
			ilo, jlo, ihi, jhi = i, j, i, j
			first = false
			continue
		}
		if i < ilo {
			ilo = i
		}
		if i > ihi {
			ihi = i
		}
		if j < jlo {
			jlo = j
		}
		if j > jhi {
			jhi = j
		}
	}
	return
}

func (e *enum) insideNodes(q int) []int {
	ilo, jlo, ihi, jhi := e.bbox(q)
	var out []int
	for j := jlo; j <= jhi; j++ {
		for i := ilo; i <= ihi; i++ {
			nd := e.node(i, j)
			if e.keep[nd] {
				out = append(out, nd)
			}
		}
	}
	return out
}

func (e *enum) mergeCandidates(q int, M [][]int32) {
	splits := e.splits(q)
	inside := e.insideNodes(q)
	var cand []sent
	for _, v := range inside {
		cand = cand[:0]
		for _, q1 := range splits {
			q2 := q &^ q1
			for _, i1 := range e.S[q1][v] {
				for _, i2 := range e.S[q2][v] {
					s1, s2 := &e.arena[i1], &e.arena[i2]
					sol := Solution{
						W: s1.sol.W.Add(s2.sol.W),
						D: append(append([]Vec(nil), s1.sol.D...), s2.sol.D...),
					}
					cand = append(cand, sent{sol: sol, kind: sMerge, a: i1, b: i2})
				}
			}
		}
		M[v] = e.filterPush(cand)
	}
}

func (e *enum) splits(q int) []int {
	low := q & -q
	if e.allOnBoundary(q) {
		return e.boundarySplits(q, low)
	}
	var out []int
	for q1 := (q - 1) & q; q1 > 0; q1 = (q1 - 1) & q {
		if q1&low != 0 {
			out = append(out, q1)
		}
	}
	return out
}

func (e *enum) allOnBoundary(q int) bool {
	for s := 0; s < e.m; s++ {
		if q&(1<<s) != 0 && e.bpos[s] < 0 {
			return false
		}
	}
	return true
}

func (e *enum) boundarySplits(q, low int) []int {
	type member struct{ s, pos int }
	var ms []member
	for s := 0; s < e.m; s++ {
		if q&(1<<s) != 0 {
			ms = append(ms, member{s, e.bpos[s]})
		}
	}
	// Total order: boundary position, then sink slot (positions are
	// distinct for distinct pins; the slot tie-break makes it explicit).
	slices.SortFunc(ms, func(a, b member) int {
		if c := cmp.Compare(a.pos, b.pos); c != 0 {
			return c
		}
		return cmp.Compare(a.s, b.s)
	})
	k := len(ms)
	seen := map[int]bool{}
	var out []int
	for start := 0; start < k; start++ {
		mask := 0
		for l := 1; l < k; l++ {
			mask |= 1 << ms[(start+l-1)%k].s
			q1 := mask
			if q1&low == 0 {
				q1 = q &^ q1
			}
			if !seen[q1] {
				seen[q1] = true
				out = append(out, q1)
			}
		}
	}
	return out
}

func (e *enum) extend(q int, M, Sq [][]int32) {
	inside := e.insideNodes(q)
	var srcs []int
	for _, u := range inside {
		if len(M[u]) > 0 {
			srcs = append(srcs, u)
		}
	}
	var cand []sent
	for _, v := range inside {
		cand = cand[:0]
		for _, u := range srcs {
			g := e.dist(u, v)
			for _, idx := range M[u] {
				en := &e.arena[idx]
				if u == v {
					cand = append(cand, sent{sol: en.sol, kind: sExt, a: idx, b: int32(u)})
					continue
				}
				sol := Solution{W: en.sol.W.Add(g), D: make([]Vec, len(en.sol.D))}
				for r := range en.sol.D {
					sol.D[r] = en.sol.D[r].Add(g)
				}
				cand = append(cand, sent{sol: sol, kind: sExt, a: idx, b: int32(u)})
			}
		}
		Sq[v] = e.filterPush(cand)
	}
	// Lemma 3: outside nodes by projection.
	ilo, jlo, ihi, jhi := e.bbox(q)
	for _, v := range e.nodes {
		i, j := e.coords(v)
		if i >= ilo && i <= ihi && j >= jlo && j <= jhi {
			continue
		}
		ci, cj := clampInt(i, ilo, ihi), clampInt(j, jlo, jhi)
		u := e.node(ci, cj)
		g := e.dist(u, v)
		src := Sq[u]
		der := make([]int32, 0, len(src))
		for _, idx := range src {
			en := &e.arena[idx]
			sol := Solution{W: en.sol.W.Add(g), D: make([]Vec, len(en.sol.D))}
			for r := range en.sol.D {
				sol.D[r] = en.sol.D[r].Add(g)
			}
			ns := sent{sol: sol, kind: sExt, a: idx, b: int32(u)}
			ns.fp = e.fingerprint(sol)
			e.arena = append(e.arena, ns)
			der = append(der, int32(len(e.arena)-1))
		}
		Sq[v] = der
	}
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// filterPush removes candidates pruned by another candidate (Lemma-1
// check with fingerprint pre-screen), pushes survivors into the arena and
// returns their indices.
func (e *enum) filterPush(cand []sent) []int32 {
	if len(cand) == 0 {
		return nil
	}
	for i := range cand {
		cand[i].fp = e.fingerprint(cand[i].sol)
	}
	// Sort by probe-0 wirelength then delay: cheap dominance order.
	// Stable on the probe-0 key alone: equal-fingerprint candidates keep
	// arena order, which the dedup pass relies on.
	slices.SortStableFunc(cand, func(a, b sent) int { return cmp.Compare(a.fp[0], b.fp[0]) })
	kept := make([]int, 0, 16)
	for i := range cand {
		pruned := false
		for _, k := range kept {
			if fpMayPrune(cand[k].fp, cand[i].fp) && cand[k].sol.Prunes(cand[i].sol) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		// The newcomer may prune earlier kept entries.
		dst := kept[:0]
		for _, k := range kept {
			if fpMayPrune(cand[i].fp, cand[k].fp) && cand[i].sol.Prunes(cand[k].sol) {
				continue
			}
			dst = append(dst, k)
		}
		kept = append(dst, i)
	}
	out := make([]int32, 0, len(kept))
	for _, k := range kept {
		e.arena = append(e.arena, cand[k])
		out = append(out, int32(len(e.arena)-1))
	}
	return out
}

// reconstruct rebuilds the topology of final entry idx, rooted at the
// source rank node.
func (e *enum) reconstruct(idx int32) Topology {
	ri, rj := e.coords(e.rootNd)
	t := Topology{
		Nodes:  []RankNode{{I: int8(ri), J: int8(rj), Sink: -1}},
		Parent: []int16{-1},
	}
	e.emit(idx, e.rootNd, 0, &t)
	return t
}

func (e *enum) emit(idx int32, v int, atNode int16, t *Topology) {
	en := e.arena[idx]
	switch en.kind {
	case sBase:
		nd := e.sinkNd[en.sink]
		i, j := e.coords(nd)
		if t.Nodes[atNode].I == int8(i) && t.Nodes[atNode].J == int8(j) && t.Nodes[atNode].Sink < 0 && atNode != 0 {
			t.Nodes[atNode].Sink = int8(en.sink)
			return
		}
		t.Nodes = append(t.Nodes, RankNode{I: int8(i), J: int8(j), Sink: int8(en.sink)})
		t.Parent = append(t.Parent, atNode)
	case sExt:
		u := int(en.b)
		if u == v {
			e.emit(en.a, u, atNode, t)
			return
		}
		i, j := e.coords(u)
		t.Nodes = append(t.Nodes, RankNode{I: int8(i), J: int8(j), Sink: -1})
		t.Parent = append(t.Parent, atNode)
		e.emit(en.a, u, int16(len(t.Nodes)-1), t)
	case sMerge:
		e.emit(en.a, v, atNode, t)
		e.emit(en.b, v, atNode, t)
	}
}

// spliceMonotone removes Steiner nodes with exactly one child whose
// removal does not change any gap coefficient (the two edges are monotone
// end to end), compacting the topology.
func (t *Topology) spliceMonotone(n int) {
	for {
		ch := make([][]int, len(t.Nodes))
		for i, p := range t.Parent {
			if p >= 0 {
				ch[p] = append(ch[p], i)
			}
		}
		victim := -1
		for i := 1; i < len(t.Nodes); i++ {
			if t.Nodes[i].Sink >= 0 {
				continue
			}
			if len(ch[i]) > 1 {
				continue
			}
			if len(ch[i]) == 0 {
				victim = i
				break
			}
			c := ch[i][0]
			p := int(t.Parent[i])
			g1 := gapVec(n, t.Nodes[p], t.Nodes[i])
			g2 := gapVec(n, t.Nodes[i], t.Nodes[c])
			gd := gapVec(n, t.Nodes[p], t.Nodes[c])
			if g1.Add(g2).Eq(gd) {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		ch2 := ch[victim]
		for _, c := range ch2 {
			t.Parent[c] = t.Parent[victim]
		}
		last := len(t.Nodes) - 1
		if victim != last {
			t.Nodes[victim] = t.Nodes[last]
			t.Parent[victim] = t.Parent[last]
			for i := range t.Parent {
				if int(t.Parent[i]) == last {
					t.Parent[i] = int16(victim)
				}
			}
		}
		t.Nodes = t.Nodes[:last]
		t.Parent = t.Parent[:last]
	}
}
