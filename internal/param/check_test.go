package param

import (
	"math"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestMulCheck(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{math.MaxInt64, 0, 0},
		{3, 7, 21},
		{-3, 7, -21},
		{math.MaxInt64 / 2, 2, math.MaxInt64 - 1},
		{math.MinInt64, 1, math.MinInt64},
	}
	for _, c := range cases {
		if got := MulCheck(c.a, c.b); got != c.want {
			t.Errorf("MulCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	mustPanic(t, "MulCheck(max, 2)", func() { MulCheck(math.MaxInt64, 2) })
	mustPanic(t, "MulCheck(min, -1)", func() { MulCheck(math.MinInt64, -1) })
	mustPanic(t, "MulCheck(-1, min)", func() { MulCheck(-1, math.MinInt64) })
	mustPanic(t, "MulCheck(1<<32, 1<<32)", func() { MulCheck(1<<32, 1<<32) })
}

func TestAddCheck(t *testing.T) {
	if got := AddCheck(math.MaxInt64-1, 1); got != math.MaxInt64 {
		t.Errorf("AddCheck = %d, want MaxInt64", got)
	}
	if got := AddCheck(math.MinInt64+1, -1); got != math.MinInt64 {
		t.Errorf("AddCheck = %d, want MinInt64", got)
	}
	if got := AddCheck(-5, 7); got != 2 {
		t.Errorf("AddCheck(-5, 7) = %d, want 2", got)
	}
	mustPanic(t, "AddCheck(max, 1)", func() { AddCheck(math.MaxInt64, 1) })
	mustPanic(t, "AddCheck(min, -1)", func() { AddCheck(math.MinInt64, -1) })
}

func TestShiftCheck(t *testing.T) {
	if got := ShiftCheck(5, 20); got != 5<<20 {
		t.Errorf("ShiftCheck(5, 20) = %d", got)
	}
	if got := ShiftCheck(-3, 4); got != -48 {
		t.Errorf("ShiftCheck(-3, 4) = %d", got)
	}
	if got := ShiftCheck(0, 62); got != 0 {
		t.Errorf("ShiftCheck(0, 62) = %d", got)
	}
	mustPanic(t, "ShiftCheck(1<<44, 20)", func() { ShiftCheck(1<<44, 20) })
	mustPanic(t, "ShiftCheck(1, 63)", func() { ShiftCheck(1, 63) })
}

// TestFingerprintOverflowSentinel pins the conservative fallback of the
// enumeration fingerprint: a (w, d) pair outside the packing range
// degrades the probe to fpOverflow, and fpMayPrune treats such probes as
// inconclusive — never filtering, so the exact Prunes check still
// decides.
func TestFingerprintOverflowSentinel(t *testing.T) {
	inRange := [nFP]int64{1<<fpShift | 2, 3<<fpShift | 1}
	bigger := [nFP]int64{2<<fpShift | 3, 4<<fpShift | 2}
	over := inRange
	over[1] = fpOverflow
	if !fpMayPrune(inRange, bigger) {
		t.Error("in-range probes: smaller must stay a may-prune candidate")
	}
	if fpMayPrune(bigger, inRange) {
		t.Error("in-range probes: larger w/d must rule pruning out")
	}
	if !fpMayPrune(over, inRange) || !fpMayPrune(inRange, over) {
		t.Error("an fpOverflow probe must be inconclusive in both directions")
	}
	// The remaining probes still decide: with the overflowed probe
	// inconclusive, probe 0 of `bigger` vs `inRange` still rules out.
	overBig := bigger
	overBig[1] = fpOverflow
	if fpMayPrune(overBig, inRange) {
		t.Error("non-overflowed probes must still rule pruning out")
	}
}
