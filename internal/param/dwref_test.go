package param

import (
	"patlabor/internal/dw"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// dwSols exposes the concrete Pareto-DW frontier as the reference result
// for validating symbolic enumeration.
func dwSols(net tree.Net) ([]pareto.Sol, error) {
	return dw.FrontierSols(net, dw.DefaultOptions())
}
