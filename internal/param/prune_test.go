package param

import (
	"math/rand"
	"testing"

	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
)

// TestDominancePruneKeepsQueryResults enumerates real patterns, prunes
// their classes, and checks on many concrete gap assignments that the
// pruned class yields the same Pareto frontier with the same stable
// winner index (after translating through the survivor mapping) as the
// full class — the exact property table queries rely on.
func TestDominancePruneKeepsQueryResults(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{3, 4, 5} {
		pats := hanan.CanonicalPatterns(n)
		if len(pats) > 12 {
			pats = pats[:12]
		}
		for _, p := range pats {
			topos, err := EnumeratePattern(p)
			if err != nil {
				t.Fatal(err)
			}
			sols := Solutions(topos, n)
			keptTopos, keptSols, pruned := DominancePrune(
				append([]Topology(nil), topos...), append([]Solution(nil), sols...))
			if len(keptTopos) != len(keptSols) || len(keptTopos)+pruned != len(topos) {
				t.Fatalf("pattern %v: prune bookkeeping %d+%d != %d", p, len(keptTopos), pruned, len(topos))
			}
			// Map survivor index -> original index (prefix order preserved).
			orig := make([]int, 0, len(keptSols))
			next := 0
			for _, ks := range keptSols {
				for next < len(sols) && !sameSolution(sols[next], ks) {
					next++
				}
				if next == len(sols) {
					t.Fatalf("pattern %v: survivor not found in original order", p)
				}
				orig = append(orig, next)
				next++
			}
			dim := 2 * (n - 1)
			for trial := 0; trial < 40; trial++ {
				h := make([]int64, n-1)
				v := make([]int64, n-1)
				for k := 0; k < n-1; k++ {
					h[k] = int64(rng.Intn(5)) // zeros included: tie-heavy instances
					v[k] = int64(rng.Intn(5))
				}
				_ = dim
				fullWin := frontierWinners(sols, h, v)
				prunedWin := frontierWinners(keptSols, h, v)
				if len(fullWin) != len(prunedWin) {
					t.Fatalf("pattern %v trial %d: %d winners vs %d after prune", p, trial, len(fullWin), len(prunedWin))
				}
				for i := range fullWin {
					if orig[prunedWin[i]] != fullWin[i] {
						t.Fatalf("pattern %v trial %d point %d: winner %d, pruned table picks original %d",
							p, trial, i, fullWin[i], orig[prunedWin[i]])
					}
				}
			}
		}
	}
}

func sameSolution(a, b Solution) bool {
	if !a.W.Eq(b.W) || len(a.D) != len(b.D) {
		return false
	}
	for i := range a.D {
		if !a.D[i].Eq(b.D[i]) {
			return false
		}
	}
	return true
}

// frontierWinners mirrors the lookup table's stable frontier filter: sort
// evaluated points by (W, D, index), keep strictly-improving delays.
func frontierWinners(sols []Solution, h, v []int64) []int {
	type ev struct {
		sol pareto.Sol
		idx int
	}
	evals := make([]ev, len(sols))
	for i := range sols {
		evals[i] = ev{sol: sols[i].Eval(h, v), idx: i}
	}
	for i := 1; i < len(evals); i++ {
		for j := i; j > 0; j-- {
			a, b := evals[j-1], evals[j]
			if a.sol.W < b.sol.W || (a.sol.W == b.sol.W && (a.sol.D < b.sol.D ||
				(a.sol.D == b.sol.D && a.idx < b.idx))) {
				break
			}
			evals[j-1], evals[j] = evals[j], evals[j-1]
		}
	}
	var out []int
	bestD := int64(1<<63 - 1)
	for _, e := range evals {
		if e.sol.D < bestD {
			out = append(out, e.idx)
			bestD = e.sol.D
		}
	}
	return out
}

// TestDominancePruneOnlyEarlierPrunes builds a class where a LATER
// solution dominates an EARLIER one and checks the earlier survivor is
// kept: pruning it would flip the stable tie-break on degenerate
// instances.
func TestDominancePruneOnlyEarlierPrunes(t *testing.T) {
	mk := func(w Vec, rows ...Vec) Solution { return Solution{W: w, D: rows} }
	sols := []Solution{
		mk(Vec{2, 0}, Vec{2, 0}), // index 0: later sol dominates this...
		mk(Vec{1, 0}, Vec{1, 0}), // index 1: ...but must not prune it
		mk(Vec{3, 0}, Vec{3, 0}), // index 2: pruned by both earlier sols
	}
	topos := make([]Topology, len(sols))
	_, kept, pruned := DominancePrune(topos, sols)
	if pruned != 1 || len(kept) != 2 {
		t.Fatalf("pruned %d, kept %d; want 1 pruned (only the later dominated entry)", pruned, len(kept))
	}
	if !kept[0].W.Eq(Vec{2, 0}) || !kept[1].W.Eq(Vec{1, 0}) {
		t.Fatalf("survivors reordered or wrong: %v", kept)
	}
}

func TestDominancePruneMisaligned(t *testing.T) {
	topos := make([]Topology, 2)
	sols := make([]Solution, 3)
	_, _, pruned := DominancePrune(topos, sols)
	if pruned != 0 {
		t.Fatalf("misaligned inputs pruned %d entries", pruned)
	}
}
