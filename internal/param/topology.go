package param

import (
	"fmt"
	"slices"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/tree"
)

// Topology is a routing tree in rank space: node positions are Hanan-grid
// rank pairs (I, J) of a degree-n pattern. Node 0 is the root (the source
// pin). Sink identifies which sink slot a node realises (slot s is the
// s-th non-source pin in x-rank order), or -1 for Steiner nodes.
type Topology struct {
	Nodes  []RankNode
	Parent []int16
}

// RankNode is one topology vertex in rank coordinates.
type RankNode struct {
	I, J int8
	Sink int8
}

// Canon returns a canonical string encoding of the topology, used to
// deduplicate topologies produced by different DP derivations. Trees that
// differ only in node ordering share the same encoding.
func (t Topology) Canon() string {
	type edge struct{ a, b [3]int8 }
	key := func(i int) [3]int8 {
		n := t.Nodes[i]
		return [3]int8{n.I, n.J, n.Sink}
	}
	var edges []edge
	for i, p := range t.Parent {
		if p < 0 {
			continue
		}
		a, b := key(i), key(int(p))
		if less(b, a) {
			a, b = b, a
		}
		edges = append(edges, edge{a, b})
	}
	// Total order: (a, b) lexicographic — tree edges are distinct.
	slices.SortFunc(edges, func(x, y edge) int {
		if c := cmp3(x.a, y.a); c != 0 {
			return c
		}
		return cmp3(x.b, y.b)
	})
	buf := make([]byte, 0, 6*len(edges)+3)
	r := key(0)
	buf = append(buf, byte(r[0]), byte(r[1]), byte(r[2]))
	for _, e := range edges {
		buf = append(buf, byte(e.a[0]), byte(e.a[1]), byte(e.a[2]),
			byte(e.b[0]), byte(e.b[1]), byte(e.b[2]))
	}
	return string(buf)
}

func less(a, b [3]int8) bool { return cmp3(a, b) < 0 }

// cmp3 is the three-way lexicographic order on rank-node keys.
func cmp3(a, b [3]int8) int {
	for k := 0; k < 3; k++ {
		if a[k] != b[k] {
			return int(a[k]) - int(b[k])
		}
	}
	return 0
}

// Solution computes the parameterised (W, D) form of the topology for a
// degree-n pattern: wirelength coefficients from every edge, one delay row
// per sink from its root path.
func (t Topology) Solution(n int) Solution {
	dim := 2 * (n - 1)
	w := make(Vec, dim)
	// Node depth vectors accumulated root-first.
	rows := make([]Vec, len(t.Nodes))
	rows[0] = make(Vec, dim)
	order := t.topoOrder()
	var sol Solution
	for _, i := range order {
		p := t.Parent[i]
		if p < 0 {
			continue
		}
		g := gapVec(n, t.Nodes[i], t.Nodes[int(p)])
		for k := range w {
			w[k] += g[k]
		}
		rows[i] = rows[int(p)].Add(g)
	}
	sol.W = w
	for i, nd := range t.Nodes {
		if nd.Sink >= 0 {
			sol.D = append(sol.D, rows[i])
		}
	}
	return sol
}

// Solutions precompiles the (W, D) coefficient form of every topology of a
// degree-n pattern. Lookup tables store the result alongside the
// topologies so queries can evaluate frontiers by dot products against
// concrete gap lengths and instantiate only the Pareto survivors.
func Solutions(topos []Topology, n int) []Solution {
	out := make([]Solution, len(topos))
	for i := range topos {
		out[i] = topos[i].Solution(n)
	}
	return out
}

func (t Topology) topoOrder() []int {
	ch := make([][]int, len(t.Nodes))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	order := make([]int, 0, len(t.Nodes))
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		queue = append(queue, ch[v]...)
	}
	return order
}

// gapVec returns the coefficient vector of the L1 rank distance between
// two rank nodes: the horizontal gaps spanned plus the vertical gaps.
func gapVec(n int, a, b RankNode) Vec {
	g := make(Vec, 2*(n-1))
	i0, i1 := int(a.I), int(b.I)
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	for k := i0; k < i1; k++ {
		g[k]++
	}
	j0, j1 := int(a.J), int(b.J)
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	for k := j0; k < j1; k++ {
		g[n-1+k]++
	}
	return g
}

// Instantiate builds a concrete routing tree for the net whose rank view
// is r, by mapping the topology's rank coordinates through the inverse of
// tf (the transform that took the net's pattern to the canonical pattern
// this topology was stored under). Sink slots are mapped back to pin
// indices via the pattern's x-rank order.
func (t Topology) Instantiate(r hanan.Ranks, tf hanan.Transform) (*tree.Tree, error) {
	n := r.Pattern.N
	inv := tf.Invert()
	// slotPin[s] = pin index of the s-th non-source pin in x-rank order of
	// the ORIGINAL (net) pattern. The topology's sink slots are in the
	// canonical pattern's x-rank order; map through inv first.
	pinAtXRank := make([]int, n)
	for pin := 0; pin < n; pin++ {
		pinAtXRank[r.XRank[pin]] = pin
	}
	toPoint := func(nd RankNode) (geom.Point, int, error) {
		ci, cj := inv.Apply(n, int(nd.I), int(nd.J))
		if ci < 0 || ci >= n || cj < 0 || cj >= n {
			return geom.Point{}, 0, fmt.Errorf("param: rank (%d,%d) out of range", nd.I, nd.J)
		}
		pt := geom.Point{X: r.Xs[ci], Y: r.Ys[cj]}
		pin := -1
		if nd.Sink >= 0 {
			pin = pinAtXRank[ci]
		}
		return pt, pin, nil
	}
	rootPt, _, err := toPoint(t.Nodes[0])
	if err != nil {
		return nil, err
	}
	out := tree.New(rootPt, 0)
	idx := make([]int, len(t.Nodes))
	idx[0] = out.Root
	for _, i := range t.topoOrder() {
		if i == 0 {
			continue
		}
		nd := t.Nodes[i]
		pt, pin, err := toPoint(nd)
		if err != nil {
			return nil, err
		}
		if pin == 0 {
			return nil, fmt.Errorf("param: sink node maps to the source pin")
		}
		idx[i] = out.Add(pt, pin, idx[int(t.Parent[i])])
	}
	return out, nil
}
