// Package param implements parameterised (symbolic) routing tree solutions
// used to build lookup tables (§V-A of the paper). On the rank-space Hanan
// grid of a degree-n pattern, every distance is a nonnegative integer
// combination of the 2n-2 gap lengths l_1..l_{2n-2}. A solution is
// therefore represented not as a concrete (w,d) pair but as
//
//	( Σ_k W_k·l_k ,  max_i Σ_k D_ik·l_k )
//
// with an integer coefficient vector W and matrix D (one row per sink),
// exactly the (W, D) form of §V-A. Pruning uses the safe decision
// procedure substituted for the paper's SMT check (Lemma 1): solution 2 is
// pruned by solution 1 when W1 <= W2 componentwise and every row of D1 is
// componentwise dominated by some row of D2 — both conditions imply the
// first-order formula (2) for all l >= 0, so pruning never removes a
// topology that is uniquely optimal for some concrete instance.
package param

import (
	"fmt"

	"patlabor/internal/pareto"
)

// Vec is a coefficient vector over the gap lengths: index k < n-1 refers
// to horizontal gap H[k], index k >= n-1 to vertical gap V[k-(n-1)].
type Vec []int16

// Add returns a+b. The operands must have equal length.
func (a Vec) Add(b Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// LE reports whether a <= b componentwise.
func (a Vec) LE(b Vec) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Eq reports whether a == b.
func (a Vec) Eq(b Vec) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Eval returns Σ_k a_k·l_k for the concatenated gap vector l = H ++ V.
func (a Vec) Eval(h, v []int64) int64 {
	var s int64
	n1 := len(h)
	for k, c := range a {
		if c == 0 {
			continue
		}
		if k < n1 {
			s += int64(c) * h[k]
		} else {
			s += int64(c) * v[k-n1]
		}
	}
	return s
}

// Solution is a parameterised objective vector: wirelength coefficients W
// and delay coefficient rows D, one row per sink of the subtree (row order
// carries no meaning; the delay is the max over rows).
type Solution struct {
	W Vec
	D []Vec
}

// Eval instantiates the solution on concrete gap lengths.
func (s Solution) Eval(h, v []int64) pareto.Sol {
	var d int64
	for _, row := range s.D {
		if x := row.Eval(h, v); x > d {
			d = x
		}
	}
	return pareto.Sol{W: s.W.Eval(h, v), D: d}
}

// Prunes reports whether s renders t redundant for every nonnegative
// assignment of gap lengths: s's wirelength never exceeds t's and s's
// delay never exceeds t's. This is the sound substitution for the paper's
// SMT check of Lemma 1 (see the package comment).
func (s Solution) Prunes(t Solution) bool {
	if !s.W.LE(t.W) {
		return false
	}
	for _, rs := range s.D {
		matched := false
		for _, rt := range t.D {
			if rs.LE(rt) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// String renders the solution compactly for diagnostics.
func (s Solution) String() string {
	return fmt.Sprintf("W=%v D=%v", s.W, s.D)
}

// FilterSolutions removes solutions pruned by another (ties keep the
// earlier element). Quadratic in the set size, which stays small for
// table-degree patterns.
func FilterSolutions(sols []Solution) []Solution {
	keep := make([]bool, len(sols))
	for i := range keep {
		keep[i] = true
	}
	for i := range sols {
		if !keep[i] {
			continue
		}
		for j := range sols {
			if i == j || !keep[j] {
				continue
			}
			if sols[i].Prunes(sols[j]) {
				// Break mutual pruning (equivalent solutions) by index.
				if sols[j].Prunes(sols[i]) && j < i {
					continue
				}
				keep[j] = false
			}
		}
	}
	out := sols[:0:0]
	for i, k := range keep {
		if k {
			out = append(out, sols[i])
		}
	}
	return out
}
