package param

import "math"

// Checked int64 arithmetic for the parameterized-LUT layers. ROADMAP
// item 3 (Lagrangian pricing) multiplies scaled edge prices, and the
// enumeration fingerprint packs (W, D) pairs into one int64; both are
// exactness-critical, so an overflow must panic loudly rather than wrap
// into a plausible wrong value. The //patlint:checked annotation tells
// the exactoverflow analyzer that results routed through these helpers
// are safe.

// MulCheck returns a*b, panicking if the product overflows int64.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func MulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	// The division probe misses MinInt64 * -1: the product wraps back to
	// MinInt64 and Go defines MinInt64 / -1 == MinInt64, so p/b == a.
	if (a == math.MinInt64 && b == -1) || (a == -1 && b == math.MinInt64) {
		panic("param: int64 multiplication overflow")
	}
	p := a * b //patlint:ignore exactoverflow this is the guard: the division below detects the wrap
	if p/b != a {
		panic("param: int64 multiplication overflow")
	}
	return p
}

// AddCheck returns a+b, panicking if the sum overflows int64.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func AddCheck(a, b int64) int64 {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		panic("param: int64 addition overflow")
	}
	return s
}

// ShiftCheck returns a<<k, panicking if the shift loses bits (including
// the sign bit). k must be in [0, 63).
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func ShiftCheck(a int64, k uint) int64 {
	if k >= 63 {
		panic("param: shift count out of range")
	}
	s := a << k //patlint:ignore exactoverflow this is the guard: the shift back detects lost bits
	if s>>k != a {
		panic("param: int64 shift overflow")
	}
	return s
}
