package rsmt

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestMSTValidAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		net := randNet(rng, n, 100)
		m := MST(net)
		if err := m.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if m.Len() != n {
			t.Fatalf("trial %d: MST has %d nodes, want %d (no Steiner points)", trial, m.Len(), n)
		}
		// MST length is minimal among sampled spanning trees: random
		// parent assignments never beat it.
		w := m.Wirelength()
		for s := 0; s < 20; s++ {
			rt := tree.New(net.Source(), 0)
			nodes := []int{rt.Root}
			perm := rng.Perm(n - 1)
			for _, pi := range perm {
				parent := nodes[rng.Intn(len(nodes))]
				nodes = append(nodes, rt.Add(net.Pins[pi+1], pi+1, parent))
			}
			if rt.Wirelength() < w {
				t.Fatalf("trial %d: random spanning tree beats MST: %d < %d",
					trial, rt.Wirelength(), w)
			}
		}
	}
}

func TestTreeExactSmallDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5) // 2..6 <= ExactDegree
		net := randNet(rng, n, 80)
		got := Tree(net)
		if err := got.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sols, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got.Wirelength() != sols[0].W {
			t.Fatalf("trial %d: wirelength %d, optimal %d (net %v)",
				trial, got.Wirelength(), sols[0].W, net.Pins)
		}
	}
}

func TestTreeHeuristicQuality(t *testing.T) {
	// The heuristic tree must be valid, beat or match the plain MST, and
	// respect the HPWL lower bound.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{10, 20, 40, 80} {
		for trial := 0; trial < 5; trial++ {
			net := randNet(rng, n, 400)
			got := Tree(net)
			if err := got.Validate(net); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
			mst := MST(net).Wirelength()
			if w := got.Wirelength(); w > mst {
				t.Fatalf("n=%d trial %d: heuristic %d worse than MST %d", n, trial, w, mst)
			}
			if w := got.Wirelength(); w < geom.HPWL(net.Pins...) {
				t.Fatalf("n=%d trial %d: wirelength %d below HPWL bound", n, trial, w)
			}
		}
	}
}

func TestOneSteinerImprovesCross(t *testing.T) {
	// Four pins in a cross: the MST needs 3 edges of length 2 each (6),
	// the Steiner tree uses the centre (total 4). Source at a tip.
	net := tree.NewNet(geom.Pt(0, 1), geom.Pt(2, 1), geom.Pt(1, 0), geom.Pt(1, 2))
	got := oneSteiner(net)
	if err := got.Validate(net); err != nil {
		t.Fatal(err)
	}
	if w := got.Wirelength(); w != 4 {
		t.Fatalf("cross wirelength = %d, want 4", w)
	}
}

func TestTreeTrivialDegrees(t *testing.T) {
	single := tree.Net{Pins: []geom.Point{geom.Pt(5, 5)}}
	if got := Tree(single); got.Len() != 1 || got.Wirelength() != 0 {
		t.Fatal("degree-1 tree wrong")
	}
	pair := tree.NewNet(geom.Pt(0, 0), geom.Pt(3, 4))
	got := Tree(pair)
	if err := got.Validate(pair); err != nil {
		t.Fatal(err)
	}
	if got.Wirelength() != 7 {
		t.Fatalf("degree-2 wirelength = %d", got.Wirelength())
	}
}

func TestWirelengthMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := randNet(rng, 6, 50)
	if Wirelength(net) != Tree(net).Wirelength() {
		t.Fatal("Wirelength diverges from Tree")
	}
}
