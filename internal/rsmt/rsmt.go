// Package rsmt constructs rectilinear Steiner minimum trees and stands in
// for FLUTE [4] wherever the paper uses it: producing the initial tree T₀
// of the local search (§V-B) and the wirelength normaliser w(FLUTE) of
// Figure 7.
//
// Three engines are layered by net degree:
//
//   - degree ≤ ExactDegree: the exact minimum-wirelength tree, taken from
//     the minimum-W endpoint of the exact Pareto frontier (internal/dw);
//   - degree ≤ OneSteinerDegree: the Kahng–Robins iterated 1-Steiner
//     heuristic [8] over Hanan-grid candidates;
//   - larger nets: rectilinear MST (Prim) followed by delay-preserving
//     Steinerisation and Steiner-point relocation.
package rsmt

import (
	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/tree"
)

// ExactDegree is the largest degree routed exactly.
const ExactDegree = 7

// OneSteinerDegree is the largest degree routed by iterated 1-Steiner.
const OneSteinerDegree = 32

// Tree returns a low-wirelength rectilinear Steiner tree for the net,
// rooted at the source. The result is exact for degree <= ExactDegree.
func Tree(net tree.Net) *tree.Tree {
	n := net.Degree()
	switch {
	case n <= 1:
		return tree.New(net.Source(), 0)
	case n == 2:
		return tree.Star(net)
	case n <= ExactDegree:
		items, err := dw.Frontier(net, dw.DefaultOptions())
		if err == nil && len(items) > 0 {
			return items[0].Val
		}
		// Unreachable for valid nets; fall through to the heuristic.
		fallthrough
	case n <= OneSteinerDegree:
		return oneSteiner(net)
	default:
		t := MST(net)
		refine(t)
		return t
	}
}

// Wirelength returns the wirelength of Tree(net).
func Wirelength(net tree.Net) int64 { return Tree(net).Wirelength() }

// MST returns the rectilinear minimum spanning tree of the pins (Prim's
// algorithm, O(n²)), rooted at the source. No Steiner points are added.
func MST(net tree.Net) *tree.Tree {
	n := net.Degree()
	t := tree.New(net.Source(), 0)
	if n <= 1 {
		return t
	}
	const inf = int64(1) << 62
	dist := make([]int64, n)
	from := make([]int, n) // tree node index of the closest in-tree node
	inTree := make([]bool, n)
	for i := 1; i < n; i++ {
		dist[i] = geom.Dist(net.Pins[i], net.Source())
		from[i] = t.Root
	}
	inTree[0] = true
	for added := 1; added < n; added++ {
		best, bestD := -1, inf
		for i := 1; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		node := t.Add(net.Pins[best], best, from[best])
		inTree[best] = true
		for i := 1; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := geom.Dist(net.Pins[i], net.Pins[best]); d < dist[i] {
				dist[i] = d
				from[i] = node
			}
		}
	}
	return t
}

// refine applies wirelength-reducing post-passes until fixpoint.
func refine(t *tree.Tree) {
	for pass := 0; pass < 8; pass++ {
		t.Steinerize()
		if !t.RelocateSteiners() {
			return
		}
	}
	t.Compact()
}

// oneSteiner runs the Kahng–Robins iterated 1-Steiner heuristic: greedily
// add the Hanan candidate point whose inclusion reduces the MST wirelength
// the most, until no candidate helps.
func oneSteiner(net tree.Net) *tree.Tree {
	g := hanan.NewGrid(net.Pins)
	pinSet := map[geom.Point]bool{}
	for _, p := range net.Pins {
		pinSet[p] = true
	}
	var candidates []geom.Point
	for idx := 0; idx < g.NumNodes(); idx++ {
		if p := g.Point(idx); !pinSet[p] {
			candidates = append(candidates, p)
		}
	}
	steiner := []geom.Point{}
	base := mstLength(net.Pins, steiner)
	for round := 0; round < net.Degree(); round++ {
		bestGain := int64(0)
		bestIdx := -1
		for ci, c := range candidates {
			l := mstLength(net.Pins, append(steiner, c))
			if gain := base - l; gain > bestGain {
				bestGain, bestIdx = gain, ci
			}
		}
		if bestIdx < 0 {
			break
		}
		steiner = append(steiner, candidates[bestIdx])
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		base -= bestGain
	}
	t := mstWithSteiner(net, steiner)
	// Degree-2 Steiner points are artefacts of the candidate set; splice
	// them and apply the trunk-sharing passes.
	refine(t)
	return t
}

// mstLength returns the rectilinear MST length over pins plus Steiner
// points, with Steiner points of degree < 3 contributing no benefit
// (classic 1-Steiner evaluation simply measures the MST).
func mstLength(pins []geom.Point, steiner []geom.Point) int64 {
	pts := append(append([]geom.Point(nil), pins...), steiner...)
	k := len(pts)
	const inf = int64(1) << 62
	dist := make([]int64, k)
	inT := make([]bool, k)
	for i := 1; i < k; i++ {
		dist[i] = geom.Dist(pts[i], pts[0])
	}
	inT[0] = true
	var total int64
	for added := 1; added < k; added++ {
		best, bestD := -1, inf
		for i := 1; i < k; i++ {
			if !inT[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		total += bestD
		inT[best] = true
		for i := 1; i < k; i++ {
			if !inT[i] {
				if d := geom.Dist(pts[i], pts[best]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// mstWithSteiner builds the rooted MST over pins and chosen Steiner points.
func mstWithSteiner(net tree.Net, steiner []geom.Point) *tree.Tree {
	pts := append(append([]geom.Point(nil), net.Pins...), steiner...)
	k := len(pts)
	n := net.Degree()
	t := tree.New(net.Source(), 0)
	const inf = int64(1) << 62
	dist := make([]int64, k)
	from := make([]int, k)
	inT := make([]bool, k)
	nodeOf := make([]int, k)
	nodeOf[0] = t.Root
	for i := 1; i < k; i++ {
		dist[i] = geom.Dist(pts[i], pts[0])
		from[i] = t.Root
	}
	inT[0] = true
	for added := 1; added < k; added++ {
		best, bestD := -1, inf
		for i := 1; i < k; i++ {
			if !inT[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		pin := -1
		if best < n {
			pin = best
		}
		nodeOf[best] = t.Add(pts[best], pin, from[best])
		inT[best] = true
		for i := 1; i < k; i++ {
			if inT[i] {
				continue
			}
			if d := geom.Dist(pts[i], pts[best]); d < dist[i] {
				dist[i] = d
				from[i] = nodeOf[best]
			}
		}
	}
	return t
}
