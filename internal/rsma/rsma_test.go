package rsma

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(2*span)-span, rng.Int63n(2*span)-span)
	}
	return tree.Net{Pins: pins}
}

func TestTreeIsShortestPath(t *testing.T) {
	// Property: every sink's path length equals its L1 distance from the
	// source — the defining invariant of an arborescence.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(20)
		net := randNet(rng, n, 200)
		a := Tree(net)
		if err := a.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		delays := a.SinkDelays()
		for pin := 1; pin < n; pin++ {
			want := geom.Dist(net.Source(), net.Pins[pin])
			if delays[pin] != want {
				t.Fatalf("trial %d: pin %d delay %d, want shortest-path %d (net %v)",
					trial, pin, delays[pin], want, net.Pins)
			}
		}
		if a.MaxDelay() != MinDelay(net) {
			t.Fatalf("trial %d: MaxDelay %d != MinDelay %d", trial, a.MaxDelay(), MinDelay(net))
		}
	}
}

func TestTreeWirelengthBounds(t *testing.T) {
	// Wirelength is at least the star's per-quadrant lower bound (HPWL of
	// all pins) and at most the star's wirelength (the heuristic merges,
	// never duplicates full paths).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15)
		net := randNet(rng, n, 150)
		a := Tree(net)
		star := tree.Star(net).Wirelength()
		if w := a.Wirelength(); w > star {
			t.Fatalf("trial %d: arborescence %d longer than star %d", trial, w, star)
		}
		if w := a.Wirelength(); w < geom.HPWL(net.Pins...) {
			t.Fatalf("trial %d: wirelength %d below HPWL", trial, a.Wirelength())
		}
	}
}

func TestTreeSharesTrunk(t *testing.T) {
	// Two sinks in the same direction share the trunk: the chain through
	// (10,1) costs 11+2 = 13 (the star would cost 24).
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(10, 3))
	a := Tree(net)
	if err := a.Validate(net); err != nil {
		t.Fatal(err)
	}
	if w := a.Wirelength(); w != 13 {
		t.Fatalf("wirelength = %d, want 13", w)
	}
	if d := a.MaxDelay(); d != 13 {
		t.Fatalf("delay = %d, want 13", d)
	}
}

func TestTreeAllQuadrants(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0),
		geom.Pt(5, 5), geom.Pt(-5, 5), geom.Pt(-5, -5), geom.Pt(5, -5))
	a := Tree(net)
	if err := a.Validate(net); err != nil {
		t.Fatal(err)
	}
	if a.MaxDelay() != 10 {
		t.Fatalf("delay = %d, want 10", a.MaxDelay())
	}
}

func TestSinkAtSource(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(4, 4))
	a := Tree(net)
	if err := a.Validate(net); err != nil {
		t.Fatal(err)
	}
	if a.MaxDelay() != 8 {
		t.Fatalf("delay = %d, want 8", a.MaxDelay())
	}
}

func TestDegenerate(t *testing.T) {
	single := tree.Net{Pins: []geom.Point{geom.Pt(1, 2)}}
	a := Tree(single)
	if a.Len() != 1 || a.Wirelength() != 0 {
		t.Fatal("degree-1 arborescence wrong")
	}
	if MinDelay(single) != 0 {
		t.Fatal("MinDelay of degree-1 net must be 0")
	}
}
