// Package rsma constructs rectilinear Steiner arborescences: trees in
// which every source-to-sink path is a shortest rectilinear path, so the
// delay of every sink is its L1 distance from the source — the minimum any
// routing tree can achieve. The wirelength is at most twice optimal.
//
// It stands in for the Córdova–Lee heuristic [11] wherever the paper uses
// it, notably as the delay normaliser d(CL) of Figure 7. The construction
// is the classic merge heuristic for rectilinear Steiner arborescences
// (Rao–Sadayappan–Hwang [10], which Córdova–Lee refines): per quadrant of
// the source, repeatedly merge the two points whose "meet" (componentwise
// toward the source) is farthest from the source.
package rsma

import (
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Tree returns a shortest-path rectilinear Steiner arborescence for the
// net, rooted at the source. Every sink's path length equals its L1
// distance from the source.
func Tree(net tree.Net) *tree.Tree {
	t := tree.New(net.Source(), 0)
	src := net.Source()
	// Partition sinks into the four closed quadrants around the source.
	quadOf := func(p geom.Point) int {
		q := 0
		if p.X < src.X {
			q |= 1
		}
		if p.Y < src.Y {
			q |= 2
		}
		return q
	}
	quads := make([][]sink, 4)
	for pin := 1; pin < net.Degree(); pin++ {
		p := net.Pins[pin]
		q := quadOf(p)
		tp := geom.Pt(geom.Abs64(p.X-src.X), geom.Abs64(p.Y-src.Y))
		quads[q] = append(quads[q], sink{pin: pin, p: tp})
	}
	for q, sinks := range quads {
		if len(sinks) == 0 {
			continue
		}
		buildQuadrant(t, src, q, sinks)
	}
	t.Compact()
	return t
}

// Wirelength returns the wirelength of Tree(net).
func Wirelength(net tree.Net) int64 { return Tree(net).Wirelength() }

// MinDelay returns the delay of any shortest-path tree: the maximum L1
// distance from the source to a sink. It is a lower bound on d(T) for
// every routing tree T of the net.
func MinDelay(net tree.Net) int64 {
	var d int64
	for _, p := range net.Sinks() {
		if x := geom.Dist(net.Source(), p); x > d {
			d = x
		}
	}
	return d
}

// sink is a quadrant-local sink: the original pin index and its
// first-quadrant transformed position.
type sink struct {
	pin int
	p   geom.Point
}

// buildQuadrant runs the merge heuristic on first-quadrant-transformed
// sinks and grafts the resulting arborescence onto t, mapping positions
// back through the quadrant reflection.
func buildQuadrant(t *tree.Tree, src geom.Point, quad int, sinks []sink) {
	back := func(p geom.Point) geom.Point {
		x, y := p.X, p.Y
		if quad&1 != 0 {
			x = -x
		}
		if quad&2 != 0 {
			y = -y
		}
		return geom.Pt(src.X+x, src.Y+y)
	}
	// Active forest roots: position plus the tree node realising it.
	type active struct {
		p    geom.Point
		node int
	}
	acts := make([]active, 0, len(sinks))
	for _, s := range sinks {
		node := t.Add(back(s.p), s.pin, t.Root) // parent fixed on merge
		acts = append(acts, active{p: s.p, node: node})
	}
	// Merge until one root remains: pick the pair whose meet point is
	// farthest from the origin (ties by smaller index for determinism).
	for len(acts) > 1 {
		bestI, bestJ := -1, -1
		var bestGain int64 = -1
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				m := geom.Meet(acts[i].p, acts[j].p)
				g := m.X + m.Y
				if g > bestGain {
					bestGain, bestI, bestJ = g, i, j
				}
			}
		}
		m := geom.Meet(acts[bestI].p, acts[bestJ].p)
		var node int
		switch m {
		case acts[bestI].p:
			// The meet coincides with point i: reparent j under i.
			node = acts[bestI].node
			t.Parent[acts[bestJ].node] = node
		case acts[bestJ].p:
			node = acts[bestJ].node
			t.Parent[acts[bestI].node] = node
		default:
			node = t.Add(back(m), -1, t.Root)
			t.Parent[acts[bestI].node] = node
			t.Parent[acts[bestJ].node] = node
		}
		acts[bestI] = active{p: m, node: node}
		acts = append(acts[:bestJ], acts[bestJ+1:]...)
	}
	t.Parent[acts[0].node] = t.Root
}
