package stats

import (
	"math"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if fit.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{1, 2.9, 5.2, 6.8, 9.1, 10.9}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Fatalf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := LinearRegression([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestLinearRegressionNegativeIntercept(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2}, []float64{0, 2}) // y = 2x - 2
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.String(); got == "" || fit.Intercept >= 0 {
		t.Fatalf("fit = %+v (%s)", fit, got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt(nil) != 0 || MaxInt([]int{-5, -2}) != -2 || MaxInt([]int{1, 9, 3}) != 9 {
		t.Fatal("MaxInt wrong")
	}
}
