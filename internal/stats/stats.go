// Package stats provides the small statistical toolkit the experiment
// harness needs: simple linear regression (for the Figure 6 frontier-size
// fit), means and summaries. Implemented on float64 with stdlib only.
package stats

import (
	"fmt"
	"math"
)

// LinFit is a least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinFit struct {
	Slope, Intercept, R2 float64
	N                    int
}

// String renders the fit like the paper's Figure 6 caption.
func (f LinFit) String() string {
	sign := "+"
	b := f.Intercept
	if b < 0 {
		sign, b = "-", -b
	}
	return fmt.Sprintf("y=%.2fx%s%.1f (R²=%.3f, n=%d)", f.Slope, sign, b, f.R2, f.N)
}

// LinearRegression fits y = a*x + b by least squares. It requires at least
// two distinct x values.
func LinearRegression(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// nonpositive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// MaxInt returns the maximum of xs (0 for empty input).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Summary holds order statistics of a sample.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = Mean(xs)
	return s
}
