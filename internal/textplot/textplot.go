// Package textplot renders small scatter plots and Pareto curves as ASCII
// art for terminal output of the experiment harness and examples.
package textplot

import (
	"fmt"
	"strings"
)

// Series is one labelled point set. Glyph is the plot character; when
// zero, the first character of Label is used.
type Series struct {
	Label string
	Glyph byte
	X, Y  []float64
}

func (s Series) glyph() byte {
	if s.Glyph != 0 {
		return s.Glyph
	}
	if s.Label != "" {
		return s.Label[0]
	}
	return '*'
}

// Plot renders the series into a width×height character grid with simple
// axes and a legend line per series. X grows rightward, Y grows upward.
func Plot(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX, minY, maxY, any := bounds(series)
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		glyph := s.glyph()
		for i := range s.X {
			c := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			r := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g └%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for _, s := range series {
		if s.Label != "" {
			fmt.Fprintf(&b, "    %c = %s\n", s.glyph(), s.Label)
		}
	}
	return b.String()
}

func bounds(series []Series) (minX, maxX, minY, maxY float64, any bool) {
	for _, s := range series {
		for i := range s.X {
			if !any {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				any = true
				continue
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	return
}

// Table renders rows as a fixed-width text table with a header. Rows may
// be shorter or longer than the header; extra columns get empty headings.
func Table(header []string, rows [][]string) string {
	cols := len(header)
	for _, row := range rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
