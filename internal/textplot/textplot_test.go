package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	out := Plot([]Series{
		{Label: "a-series", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Label: "b-series", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	}, 40, 10)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "a = a-series") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot(nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	out := Plot([]Series{{Label: "x", X: []float64{5, 5}, Y: []float64{3, 3}}}, 20, 8)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("degenerate plot = %q", out)
	}
}

func TestPlotMinimumSize(t *testing.T) {
	out := Plot([]Series{{Label: "x", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("plot too small:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta-long", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[3], "beta-long") {
		t.Fatalf("table layout wrong:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	out := Table([]string{"a"}, [][]string{
		{"1", "extra"},
		{"2"},
		{},
	})
	if !strings.Contains(out, "extra") {
		t.Fatalf("ragged table = %q", out)
	}
}

func TestPlotCustomGlyph(t *testing.T) {
	out := Plot([]Series{{Label: "PatLabor", Glyph: 'X', X: []float64{0, 1}, Y: []float64{0, 1}}}, 20, 6)
	if !strings.Contains(out, "X = PatLabor") || !strings.Contains(out, "X") {
		t.Fatalf("glyph plot = %q", out)
	}
}
