package netgen

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func TestUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := Uniform(rng, 12, 1000)
	if net.Degree() != 12 {
		t.Fatalf("degree = %d", net.Degree())
	}
	for _, p := range net.Pins {
		if p.X < 0 || p.X >= 1000 || p.Y < 0 || p.Y >= 1000 {
			t.Fatalf("pin %v out of die", p)
		}
	}
}

func TestSmoothedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// κ = span: window of size 1, all coordinates equal within a pin...
	// more usefully, κ=4 keeps coordinates in a quarter-span window.
	for trial := 0; trial < 20; trial++ {
		net := Smoothed(rng, 6, 4, 1000)
		if net.Degree() != 6 {
			t.Fatal("degree wrong")
		}
		for _, p := range net.Pins {
			if p.X < 0 || p.X >= 1000 || p.Y < 0 || p.Y >= 1000 {
				t.Fatalf("pin %v out of die", p)
			}
		}
	}
	// κ below 1 behaves like uniform.
	net := Smoothed(rng, 4, 0.5, 100)
	if net.Degree() != 4 {
		t.Fatal("degree wrong")
	}
}

func TestClusteredSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		net := Clustered(rng, 8, 100000, 2000)
		bb := net.BBox()
		if bb.Width() >= 2000 || bb.Height() >= 2000 {
			t.Fatalf("cluster too spread: %+v", bb)
		}
	}
}

func TestSGadgetExponentialFrontier(t *testing.T) {
	// The defining property of the Theorem-1 family: frontier size >= 2^m.
	for m := 1; m <= 2; m++ {
		net := SGadget(m)
		if net.Degree() != 4*m+1 {
			t.Fatalf("m=%d: degree %d, want %d", m, net.Degree(), 4*m+1)
		}
		sols, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) < 1<<m {
			t.Fatalf("m=%d: frontier size %d < 2^%d (sols %v)", m, len(sols), m, sols)
		}
	}
}

func TestSGadgetM3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := SGadget(3)
	sols, err := dw.FrontierSols(net, dw.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) < 8 {
		t.Fatalf("m=3: frontier size %d < 8", len(sols))
	}
}

func TestICCADMixNormalised(t *testing.T) {
	mix := ICCADMix()
	var total float64
	for _, e := range mix {
		if e.Weight < 0 {
			t.Fatalf("negative weight for degree %d", e.Degree)
		}
		total += e.Weight
	}
	if total < 0.98 || total > 1.02 {
		t.Fatalf("mix mass = %v, want ~1", total)
	}
	// Sampling respects support.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		d := mix.Sample(rng)
		if d < 4 || d > 100 {
			t.Fatalf("sampled degree %d out of mix support", d)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	cfg := DefaultSuiteConfig()
	cfg.NetsPerDesign = 100
	designs := Suite(cfg)
	if len(designs) != 8 {
		t.Fatalf("designs = %d", len(designs))
	}
	total := 0
	small := 0
	for _, d := range designs {
		if d.Name == "" {
			t.Fatal("unnamed design")
		}
		total += len(d.Nets)
		for _, net := range d.Nets {
			if net.Degree() < 4 {
				t.Fatalf("degree %d below mix support", net.Degree())
			}
			if net.Degree() <= 9 {
				small++
			}
		}
	}
	if total != 800 {
		t.Fatalf("total nets = %d", total)
	}
	// Roughly 70% of nets must be small-degree (Table III proportions).
	frac := float64(small) / float64(total)
	if frac < 0.55 || frac > 0.85 {
		t.Fatalf("small-degree fraction %.2f outside expectation", frac)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	cfg := DefaultSuiteConfig()
	cfg.NetsPerDesign = 20
	a := Suite(cfg)
	b := Suite(cfg)
	for d := range a {
		for i := range a[d].Nets {
			for p := range a[d].Nets[i].Pins {
				if a[d].Nets[i].Pins[p] != b[d].Nets[i].Pins[p] {
					t.Fatal("suite not deterministic for equal seeds")
				}
			}
		}
	}
}

func TestNetsOfDegree(t *testing.T) {
	designs := []Design{{Name: "x", Nets: []tree.Net{
		Uniform(rand.New(rand.NewSource(1)), 4, 10),
		Uniform(rand.New(rand.NewSource(2)), 6, 10),
		Uniform(rand.New(rand.NewSource(3)), 4, 10),
	}}}
	if got := len(NetsOfDegree(designs, 4)); got != 2 {
		t.Fatalf("NetsOfDegree(4) = %d", got)
	}
	if got := len(NetsInDegreeRange(designs, 4, 6)); got != 3 {
		t.Fatalf("NetsInDegreeRange = %d", got)
	}
}

func TestClusteredDriverDisplacesSource(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	displaced := 0
	for trial := 0; trial < 60; trial++ {
		net := ClusteredDriver(rng, 8, 100000, 3000)
		if net.Degree() != 8 {
			t.Fatal("degree wrong")
		}
		for _, p := range net.Pins {
			if p.X < 0 || p.X >= 100000 || p.Y < 0 || p.Y >= 100000 {
				t.Fatalf("pin %v off die", p)
			}
		}
		// The sinks stay inside a window; the source is usually outside it.
		bb := geomBBox(net.Sinks())
		if !bb.Contains(net.Source()) {
			displaced++
		}
	}
	if displaced < 30 {
		t.Fatalf("source displaced on only %d/60 nets", displaced)
	}
	// Degree-1 nets pass through untouched.
	single := ClusteredDriver(rng, 1, 1000, 100)
	if single.Degree() != 1 {
		t.Fatal("degree-1 handling wrong")
	}
}

func geomBBox(pts []geom.Point) geom.Rect { return geom.BoundingBox(pts) }
