package netgen

import (
	"math/rand"

	"patlabor/internal/eco"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// EditStreamOptions configures a synthetic ECO churn stream.
type EditStreamOptions struct {
	// Steps is the number of edit batches (one Reroute call each);
	// <= 0 defaults to 64.
	Steps int
	// EditsPerStep is the number of edits a non-revert step applies
	// (the churn fraction is EditsPerStep / degree); <= 0 defaults to 1.
	EditsPerStep int
	// RevertPercent is the percentage [0,100] of steps that exactly
	// revert the latest not-yet-undone step — the accept/reject loop of
	// real ECO flows, where a tried change is measured and rolled back.
	// Reverts chain like an EDA tool's undo stack: consecutive revert
	// steps pop successively older geometries until the stack is empty.
	// Every popped geometry was routed before, so these steps are where
	// incremental rerouting shines (the net memo answers them outright);
	// set 0 for a pure-churn stream. Default 0.
	RevertPercent int
	// StructuralPercent is the per-edit percentage [0,100] of sink
	// insertions/removals among non-revert edits; the rest are pin moves
	// and perturbations. Default 0 (coordinate churn only).
	StructuralPercent int
	// Span is the die span fresh sink positions are drawn from; <= 0
	// defaults to 100000 (the experiment suite's die).
	Span int64
	// MaxOffset bounds each perturbation component in [-MaxOffset,
	// MaxOffset]; <= 0 defaults to Span/64.
	MaxOffset int64
}

func (o EditStreamOptions) withDefaults() EditStreamOptions {
	if o.Steps <= 0 {
		o.Steps = 64
	}
	if o.EditsPerStep <= 0 {
		o.EditsPerStep = 1
	}
	if o.Span <= 0 {
		o.Span = 100000
	}
	if o.MaxOffset <= 0 {
		o.MaxOffset = o.Span / 64
		if o.MaxOffset < 1 {
			o.MaxOffset = 1
		}
	}
	return o
}

// EditStream generates a deterministic churn stream for net: a sequence
// of edit batches drawn from rng, each valid against the net state left
// by its predecessors (degrees never collapse below 2; removal indices
// track the evolving pin count). Feeding the same seed reproduces the
// stream bit for bit, so benchmarks and differential tests replay
// identical churn. The input net is not mutated.
//
// Non-revert steps mix perturbations (small offsets), moves to fresh
// die positions and — when StructuralPercent > 0 — sink insertions and
// removals, pushing the pre-step geometry onto an undo stack. Revert
// steps pop the stack, returning the net exactly to a geometry it held
// before; chained reverts walk the stack multiple levels, like holding
// undo in an EDA tool.
func EditStream(rng *rand.Rand, net tree.Net, o EditStreamOptions) [][]eco.Edit {
	o = o.withDefaults()
	cur := tree.Net{Pins: append([]geom.Point(nil), net.Pins...)}
	steps := make([][]eco.Edit, 0, o.Steps)
	// undo holds the pre-step pin slices of the not-yet-undone steps.
	var undo [][]geom.Point
	for len(steps) < o.Steps {
		if len(undo) > 0 && o.RevertPercent > 0 && rng.Intn(100) < o.RevertPercent {
			prev := undo[len(undo)-1]
			undo = undo[:len(undo)-1]
			steps = append(steps, invertTo(cur, prev))
			cur = tree.Net{Pins: prev}
			continue
		}
		undo = append(undo, append([]geom.Point(nil), cur.Pins...))
		batch := make([]eco.Edit, 0, o.EditsPerStep)
		for len(batch) < o.EditsPerStep {
			e := randomEdit(rng, cur, o)
			next, _, err := eco.Apply(cur, []eco.Edit{e})
			if err != nil {
				continue // e.g. removal refused at minimum degree
			}
			batch = append(batch, e)
			cur = next
		}
		steps = append(steps, batch)
	}
	return steps
}

// randomEdit draws one edit valid against the current net state.
func randomEdit(rng *rand.Rand, cur tree.Net, o EditStreamOptions) eco.Edit {
	n := cur.Degree()
	if o.StructuralPercent > 0 && rng.Intn(100) < o.StructuralPercent {
		if rng.Intn(2) == 0 && n > 2 {
			return eco.RemoveSink(1 + rng.Intn(n-1))
		}
		return eco.AddSink(geom.Pt(rng.Int63n(o.Span), rng.Int63n(o.Span)))
	}
	pin := rng.Intn(n) // the source moves too: cell placement shifts it
	if rng.Intn(4) == 0 {
		return eco.MovePin(pin, geom.Pt(rng.Int63n(o.Span), rng.Int63n(o.Span)))
	}
	d := geom.Pt(rng.Int63n(2*o.MaxOffset+1)-o.MaxOffset, rng.Int63n(2*o.MaxOffset+1)-o.MaxOffset)
	return eco.PerturbCoords(pin, d)
}

// invertTo builds the edit batch transforming cur into the target pin
// slice: degree adjustments first (so indices line up), then absolute
// moves for every differing pin.
func invertTo(cur tree.Net, target []geom.Point) []eco.Edit {
	var edits []eco.Edit
	pins := append([]geom.Point(nil), cur.Pins...)
	for len(pins) > len(target) {
		edits = append(edits, eco.RemoveSink(len(pins)-1))
		pins = pins[:len(pins)-1]
	}
	for len(pins) < len(target) {
		edits = append(edits, eco.AddSink(target[len(pins)]))
		pins = append(pins, target[len(pins)])
	}
	for i, p := range pins {
		if p != target[i] {
			edits = append(edits, eco.MovePin(i, target[i]))
		}
	}
	return edits
}
