// Package netgen generates routing instances for tests, experiments and
// benchmarks: uniform and κ-smoothed nets (Definition 1 of the paper),
// clustered placements, the Theorem-1 gadget family with exponentially
// many Pareto-optimal solutions, and an ICCAD-15-like synthetic benchmark
// suite whose per-degree net counts follow the proportions of Table III
// (see DESIGN.md, substitution 1).
package netgen

import (
	"fmt"
	"math/rand"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Uniform returns a net with n pins placed independently and uniformly on
// the [0,span)² die. Pin 0 is the source.
func Uniform(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

// Smoothed returns a κ-smoothed net per Definition 1: every coordinate is
// drawn uniformly from a random subinterval of length span/κ, so its
// probability density is at most κ/span everywhere (κ=1 is the uniform
// average case; growing κ approaches worst-case placements).
func Smoothed(rng *rand.Rand, n int, kappa float64, span int64) tree.Net {
	if kappa < 1 {
		kappa = 1
	}
	window := int64(float64(span) / kappa)
	if window < 1 {
		window = 1
	}
	coord := func() int64 {
		lo := int64(0)
		if span > window {
			lo = rng.Int63n(span - window + 1)
		}
		return lo + rng.Int63n(window)
	}
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(coord(), coord())
	}
	return tree.Net{Pins: pins}
}

// Clustered returns a net whose pins are placed inside a window of size
// clusterSpan positioned uniformly on the die — the placement shape of
// real netlists, where a net's pins sit near their cells.
func Clustered(rng *rand.Rand, n int, span, clusterSpan int64) tree.Net {
	if clusterSpan < 1 {
		clusterSpan = 1
	}
	if clusterSpan > span {
		clusterSpan = span
	}
	lox := rng.Int63n(span - clusterSpan + 1)
	loy := rng.Int63n(span - clusterSpan + 1)
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(lox+rng.Int63n(clusterSpan), loy+rng.Int63n(clusterSpan))
	}
	return tree.Net{Pins: pins}
}

// ClusteredDriver returns a net shaped like a placed standard-cell net:
// the sinks cluster inside a window, while the source (the driver pin)
// sits displaced from the cluster by roughly the cluster size in a random
// direction. Driver displacement is what creates wirelength/delay tension
// — sinks on the far side of the cluster can be reached through the
// cluster's trunks (cheap, slow) or directly (expensive, fast).
func ClusteredDriver(rng *rand.Rand, n int, span, clusterSpan int64) tree.Net {
	net := Clustered(rng, n, span, clusterSpan)
	if n < 2 {
		return net
	}
	// Displace the source from the cluster centre by 0.5-1.5 cluster
	// sizes in a random direction, clamped to the die.
	src := net.Pins[0]
	d := clusterSpan/2 + rng.Int63n(clusterSpan+1)
	switch rng.Intn(4) {
	case 0:
		src.X += d
	case 1:
		src.X -= d
	case 2:
		src.Y += d
	default:
		src.Y -= d
	}
	src.X = clampCoord(src.X, span)
	src.Y = clampCoord(src.Y, span)
	net.Pins[0] = src
	return net
}

// MegaClustered returns a huge-degree net (internal/hier territory,
// degree 10³–10⁴) shaped like a placed high-fanout net — a clock or reset
// spine: the sinks fall into `blobs` pin clusters of window size blobSpan
// scattered uniformly on the die, and the source sits at an independent
// uniform position (a driver far from most blobs). The blob structure is
// what the hierarchical router's geometric partition should rediscover.
func MegaClustered(rng *rand.Rand, n int, span int64, blobs int, blobSpan int64) tree.Net {
	if n < 2 {
		n = 2
	}
	if blobs < 1 {
		blobs = 1
	}
	if blobSpan < 1 {
		blobSpan = 1
	}
	if blobSpan > span {
		blobSpan = span
	}
	centers := make([]geom.Point, blobs)
	for i := range centers {
		centers[i] = geom.Pt(rng.Int63n(span-blobSpan+1), rng.Int63n(span-blobSpan+1))
	}
	pins := make([]geom.Point, n)
	pins[0] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	for i := 1; i < n; i++ {
		c := centers[rng.Intn(blobs)]
		pins[i] = geom.Pt(c.X+rng.Int63n(blobSpan), c.Y+rng.Int63n(blobSpan))
	}
	return tree.Net{Pins: pins}
}

func clampCoord(x, span int64) int64 {
	if x < 0 {
		return 0
	}
	if x >= span {
		return span - 1
	}
	return x
}

// SGadget builds the Theorem-1 instance family: m chained "S-shape"
// gadgets placed diagonally with geometrically decreasing scale. Each
// gadget hangs a bait cluster (three sinks) above its through-axis and a
// victim sink below-left; riding the trunk through the bait cluster saves
// wirelength but detours the victim — and the victim is the entry of the
// next gadget, so detour penalties accumulate along the chain. With
// per-gadget savings and penalties scaled by powers of four, the 2^m
// choice combinations are pairwise Pareto-incomparable, giving a frontier
// of size 2^Ω(n) on n = 4m+1 pins (the paper's gadget uses 11 pins each;
// this compaction preserves the exponential lower bound, see DESIGN.md).
func SGadget(m int) tree.Net {
	if m < 1 {
		m = 1
	}
	pins := []geom.Point{geom.Pt(0, 0)} // source = entry of gadget 1
	entry := geom.Pt(0, 0)
	s := int64(1)
	for k := 1; k <= m; k++ {
		// Scale grows by 8× per gadget going away from the source, so each
		// deeper gadget's wire/delay tradeoff dominates all shallower ones
		// and the 2^m choice combinations stay pairwise incomparable.
		//
		// Local motif (entry-relative): bait cluster D, C, B riding from
		// the entry toward the upper-left, victim A below-left. Taken from
		// a verified 3-point-frontier instance (see package tests).
		d := geom.Pt(entry.X-4*s, entry.Y+9*s)
		c := geom.Pt(entry.X-8*s, entry.Y+3*s)
		b := geom.Pt(entry.X-13*s, entry.Y+7*s)
		a := geom.Pt(entry.X-13*s, entry.Y-7*s)
		pins = append(pins, a, b, c, d)
		entry = a // the victim is the next gadget's entry
		s *= 8
	}
	return tree.Net{Pins: pins}
}

// Design is one synthetic benchmark design: a named collection of nets.
type Design struct {
	Name string
	Nets []tree.Net
}

// DegreeMix is a discrete distribution over net degrees.
type DegreeMix []struct {
	Degree int
	Weight float64
}

// ICCADMix returns the degree distribution of the synthetic suite: degrees
// 4..9 in the exact proportions of the paper's Table III net counts
// (degree-2/3 nets are omitted as trivial, as in the paper), plus a
// geometric tail over degrees 10..100 carrying the ~30% of nets the
// ICCAD-15 benchmark has above degree 9 (most nets below 50 pins).
func ICCADMix() DegreeMix {
	mix := DegreeMix{
		{4, 0.403 * 0.70}, {5, 0.284 * 0.70}, {6, 0.114 * 0.70},
		{7, 0.083 * 0.70}, {8, 0.047 * 0.70}, {9, 0.069 * 0.70},
	}
	// Geometric tail 10..100.
	const tailMass = 0.30
	const decay = 0.93
	var norm float64
	w := 1.0
	for d := 10; d <= 100; d++ {
		norm += w
		w *= decay
	}
	w = 1.0
	for d := 10; d <= 100; d++ {
		mix = append(mix, struct {
			Degree int
			Weight float64
		}{d, tailMass * w / norm})
		w *= decay
	}
	return mix
}

// Sample draws a degree from the mix.
func (m DegreeMix) Sample(rng *rand.Rand) int {
	var total float64
	for _, e := range m {
		total += e.Weight
	}
	x := rng.Float64() * total
	for _, e := range m {
		if x < e.Weight {
			return e.Degree
		}
		x -= e.Weight
	}
	return m[len(m)-1].Degree
}

// SuiteConfig parameterises the synthetic ICCAD-15-like benchmark.
type SuiteConfig struct {
	Seed          int64
	Designs       int   // number of designs (paper: 8)
	NetsPerDesign int   // nets per design (scaled down from ~160k)
	Span          int64 // die width/height
	ClusterSpan   int64 // pin spread of one net
	Mix           DegreeMix
}

// DefaultSuiteConfig mirrors the paper's setup at laptop scale: 8 designs,
// clustered pins on a 100k×100k die.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{
		Seed:          1,
		Designs:       8,
		NetsPerDesign: 800,
		Span:          100000,
		ClusterSpan:   4000,
		Mix:           ICCADMix(),
	}
}

// Suite generates the synthetic benchmark.
func Suite(cfg SuiteConfig) []Design {
	if cfg.Designs <= 0 {
		cfg.Designs = 8
	}
	if cfg.NetsPerDesign <= 0 {
		cfg.NetsPerDesign = 800
	}
	if cfg.Span <= 0 {
		cfg.Span = 100000
	}
	if cfg.ClusterSpan <= 0 {
		cfg.ClusterSpan = cfg.Span / 25
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = ICCADMix()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	designs := make([]Design, cfg.Designs)
	for d := range designs {
		designs[d].Name = fmt.Sprintf("synth%02d", d+1)
		designs[d].Nets = make([]tree.Net, cfg.NetsPerDesign)
		for i := range designs[d].Nets {
			deg := cfg.Mix.Sample(rng)
			// Cluster size grows gently with degree: high-fanout nets
			// spread further across the die.
			cspan := cfg.ClusterSpan
			if deg > 9 {
				cspan = cfg.ClusterSpan * int64(1+deg/10)
			}
			designs[d].Nets[i] = ClusteredDriver(rng, deg, cfg.Span, cspan)
		}
	}
	return designs
}

// NetsOfDegree collects all nets of exactly degree n across the designs.
func NetsOfDegree(designs []Design, n int) []tree.Net {
	var out []tree.Net
	for _, d := range designs {
		for _, net := range d.Nets {
			if net.Degree() == n {
				out = append(out, net)
			}
		}
	}
	return out
}

// NetsInDegreeRange collects nets with degree in [lo, hi].
func NetsInDegreeRange(designs []Design, lo, hi int) []tree.Net {
	var out []tree.Net
	for _, d := range designs {
		for _, net := range d.Nets {
			if n := net.Degree(); n >= lo && n <= hi {
				out = append(out, net)
			}
		}
	}
	return out
}
