package bookshelf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the parser. The contract: Read never
// panics, and every accepted net satisfies the tree.Net invariants — at
// least two pins with the source first — and survives a Write/Read round
// trip unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"NumNets : 1\nNet n1 3\n 10 20 s\n 5 5\n -7 3\n",
		"Net a 2\n 1 1 s\n 2 2\n",
		"Net a 2\n 1 1\n 2 2 s\n# trailing comment\n",
		"NumNets : 2\nNet a 2\n0 0 s\n1 1\nNet b 2\n0 0 s\n-1 -1\n",
		"Net a 1\n 1 1 s\n",
		"Net a 2\n 9223372036854775807 -9223372036854775808 s\n 0 0\n",
		"NumNets : x\n",
		"Net \x00 2\n 1 1 s\n 2 2\n",
		"Net a 2\n 1 1 s\n 2 2\nNet",
		strings.Repeat("Net a 2\n 0 0 s\n 1 1\n", 40),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		nets, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, n := range nets {
			if n.Net.Degree() < 2 {
				t.Fatalf("net %d (%q): accepted with %d pins", i, n.Name, n.Net.Degree())
			}
			if len(n.Net.Pins) != 1+len(n.Net.Sinks()) {
				t.Fatalf("net %d (%q): source not first", i, n.Name)
			}
		}
		// Anything Read accepts must round-trip through Write unchanged.
		var buf bytes.Buffer
		if err := Write(&buf, nets); err != nil {
			t.Fatalf("writing accepted nets: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading written nets: %v\ninput: %q", err, buf.String())
		}
		if len(nets) == 0 {
			nets = nil // Write always emits NumNets, Read returns nil for none
		}
		if !reflect.DeepEqual(nets, again) {
			t.Fatalf("round trip changed nets:\n got %+v\nwant %+v", again, nets)
		}
	})
}
