// Package bookshelf reads and writes routing nets in a Bookshelf-style
// plain-text format, so real benchmark dumps (e.g. nets extracted from the
// ICCAD-15 designs) can be fed to the router and synthetic suites can be
// exported for other tools.
//
// Format (line oriented, '#' starts a comment):
//
//	NumNets : <k>
//	Net <name> <degree>
//	  <x> <y> s      # exactly one source pin per net
//	  <x> <y>        # sink pins
//
// Coordinates are integers. Pins may appear in any order; the source line
// is marked with a trailing "s".
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// NamedNet pairs a net with its name from the file.
type NamedNet struct {
	Name string
	Net  tree.Net
}

// Read parses a Bookshelf-style net file.
func Read(r io.Reader) ([]NamedNet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var nets []NamedNet
	var declared = -1
	line := 0
	var cur *builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		n, err := cur.finish()
		if err != nil {
			return err
		}
		nets = append(nets, n)
		cur = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case strings.EqualFold(fields[0], "NumNets"):
			// "NumNets : k" or "NumNets: k"
			v := fields[len(fields)-1]
			k, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bookshelf: line %d: bad NumNets %q", line, v)
			}
			declared = k
		case strings.EqualFold(fields[0], "Net"):
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("bookshelf: line %d: want \"Net <name> <degree>\"", line)
			}
			// A routable net needs a source and at least one sink
			// (tree.Net invariant: >= 2 pins, source first).
			deg, err := strconv.Atoi(fields[2])
			if err != nil || deg < 2 {
				return nil, fmt.Errorf("bookshelf: line %d: bad degree %q", line, fields[2])
			}
			cur = &builder{name: fields[1], degree: deg, line: line}
		default:
			if cur == nil {
				return nil, fmt.Errorf("bookshelf: line %d: pin outside a Net block", line)
			}
			if err := cur.addPin(fields, line); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != len(nets) {
		return nil, fmt.Errorf("bookshelf: NumNets %d but %d nets parsed", declared, len(nets))
	}
	return nets, nil
}

type builder struct {
	name   string
	degree int
	line   int
	source *geom.Point
	sinks  []geom.Point
}

func (b *builder) addPin(fields []string, line int) error {
	if len(fields) != 2 && !(len(fields) == 3 && strings.EqualFold(fields[2], "s")) {
		return fmt.Errorf("bookshelf: line %d: want \"<x> <y> [s]\"", line)
	}
	x, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bookshelf: line %d: bad x %q", line, fields[0])
	}
	y, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bookshelf: line %d: bad y %q", line, fields[1])
	}
	p := geom.Pt(x, y)
	if len(fields) == 3 {
		if b.source != nil {
			return fmt.Errorf("bookshelf: line %d: net %s has two source pins", line, b.name)
		}
		b.source = &p
		return nil
	}
	b.sinks = append(b.sinks, p)
	return nil
}

func (b *builder) finish() (NamedNet, error) {
	if b.source == nil {
		return NamedNet{}, fmt.Errorf("bookshelf: net %s (line %d) has no source pin", b.name, b.line)
	}
	got := 1 + len(b.sinks)
	if got != b.degree {
		return NamedNet{}, fmt.Errorf("bookshelf: net %s declares degree %d but has %d pins",
			b.name, b.degree, got)
	}
	return NamedNet{Name: b.name, Net: tree.NewNet(*b.source, b.sinks...)}, nil
}

// Write emits nets in the format Read parses.
func Write(w io.Writer, nets []NamedNet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NumNets : %d\n", len(nets))
	for _, n := range nets {
		fmt.Fprintf(bw, "Net %s %d\n", n.Name, n.Net.Degree())
		src := n.Net.Source()
		fmt.Fprintf(bw, "  %d %d s\n", src.X, src.Y)
		for _, p := range n.Net.Sinks() {
			fmt.Fprintf(bw, "  %d %d\n", p.X, p.Y)
		}
	}
	return bw.Flush()
}

// ReadFile parses the net file at path.
func ReadFile(path string) ([]NamedNet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile writes nets to path.
func WriteFile(path string, nets []NamedNet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, nets); err != nil {
		return err
	}
	return f.Close()
}
