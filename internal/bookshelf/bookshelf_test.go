package bookshelf

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

const sample = `
# two nets
NumNets : 2
Net n1 3
  10 20 s
  30 40
  50 5
Net n2 2
  0 0 s
  7 -3
`

func TestReadBasic(t *testing.T) {
	nets, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 2 {
		t.Fatalf("parsed %d nets", len(nets))
	}
	if nets[0].Name != "n1" || nets[0].Net.Degree() != 3 {
		t.Fatalf("net0 = %+v", nets[0])
	}
	if nets[0].Net.Source() != geom.Pt(10, 20) {
		t.Fatalf("source = %v", nets[0].Net.Source())
	}
	if nets[1].Net.Sinks()[0] != geom.Pt(7, -3) {
		t.Fatalf("negative coordinate parsed wrong: %v", nets[1].Net.Sinks()[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no source", "Net a 2\n 1 1\n 2 2\n"},
		{"two sources", "Net a 2\n 1 1 s\n 2 2 s\n"},
		{"degree mismatch", "Net a 3\n 1 1 s\n 2 2\n"},
		{"pin outside net", " 1 1 s\n"},
		{"bad degree", "Net a x\n"},
		{"bad coord", "Net a 2\n 1 q s\n 2 2\n"},
		{"numnets mismatch", "NumNets : 2\nNet a 1\n 1 1 s\n"},
		{"bad numnets", "NumNets : x\n"},
		{"malformed net line", "Net a\n"},
		{"malformed pin", "Net a 2\n 1 1 s\n 2 2 3 4\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var nets []NamedNet
	for i := 0; i < 10; i++ {
		n := 2 + rng.Intn(10)
		pins := make([]geom.Point, n)
		for j := range pins {
			pins[j] = geom.Pt(rng.Int63n(2000)-1000, rng.Int63n(2000)-1000)
		}
		nets = append(nets, NamedNet{Name: "net" + string(rune('a'+i)), Net: tree.Net{Pins: pins}})
	}
	var buf bytes.Buffer
	if err := Write(&buf, nets); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(nets) {
		t.Fatalf("round trip count %d != %d", len(back), len(nets))
	}
	for i := range nets {
		if back[i].Name != nets[i].Name {
			t.Fatalf("name %q != %q", back[i].Name, nets[i].Name)
		}
		if back[i].Net.Degree() != nets[i].Net.Degree() {
			t.Fatal("degree mismatch")
		}
		for p := range nets[i].Net.Pins {
			if back[i].Net.Pins[p] != nets[i].Net.Pins[p] {
				t.Fatalf("pin mismatch in net %d", i)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nets.txt")
	nets := []NamedNet{{Name: "x", Net: tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 5))}}
	if err := WriteFile(path, nets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "x" {
		t.Fatalf("back = %+v", back)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadNeverPanicsOnGarbage(t *testing.T) {
	// Robustness: arbitrary byte soup must produce an error or a result,
	// never a panic.
	rng := rand.New(rand.NewSource(2))
	alphabet := []byte("Net 0123456789 -sxab\n\t #:")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf, r)
				}
			}()
			_, _ = Read(bytes.NewReader(buf))
		}()
	}
}
