// Package profiling wires the -cpuprofile/-memprofile flags of the
// command-line tools to runtime/pprof, so perf work can measure the real
// binaries (`go tool pprof <binary> cpu.pprof`) instead of guessing from
// micro-benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes an allocation-site
// heap profile to memPath (when non-empty). Either path may be empty; the
// returned stop function is never nil and is safe to call exactly once,
// typically via defer in main.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: closing CPU profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling: creating heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: writing heap profile:", err)
			}
		}
	}
	return stop, nil
}
