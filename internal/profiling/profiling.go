// Package profiling wires the -cpuprofile/-memprofile and
// -mutexprofile/-blockprofile flags of the command-line tools to
// runtime/pprof, so perf work can measure the real binaries
// (`go tool pprof <binary> cpu.pprof`) instead of guessing from
// micro-benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Contention-sampling rates while a mutex or block profile is active.
// Mutex contention events are sampled 1-in-N; blocking events are
// recorded when they exceed the rate in nanoseconds. Both are cheap
// enough to record everything: contention on the hot paths is exactly
// what these profiles exist to expose, and under-sampling a run that
// lasts seconds would hide the tail.
const (
	mutexFraction = 1
	blockRateNs   = 1
)

// Config names the profile outputs of one run. Empty paths are skipped.
type Config struct {
	CPU   string // pprof CPU profile, sampled for the whole run
	Mem   string // allocation-site heap profile, written at stop
	Mutex string // mutex-contention profile, written at stop
	Block string // goroutine-blocking profile, written at stop
}

// Start begins the profiles named in cfg and returns a stop function
// that ends the CPU profile and writes the end-of-run profiles. The
// returned stop function is never nil and is safe to call exactly once,
// typically via defer in main. Mutex and block profiling are off by
// default in the runtime; Start enables their collection only when the
// corresponding path is set, so unprofiled runs pay nothing.
func Start(cfg Config) (func(), error) {
	var cpuFile *os.File
	if cfg.CPU != "" {
		f, err := os.Create(cfg.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	if cfg.Mutex != "" {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if cfg.Block != "" {
		runtime.SetBlockProfileRate(blockRateNs)
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: closing CPU profile:", err)
			}
		}
		if cfg.Mem != "" {
			runtime.GC() // materialize up-to-date allocation statistics
			writeLookup("allocs", cfg.Mem)
		}
		if cfg.Mutex != "" {
			writeLookup("mutex", cfg.Mutex)
			runtime.SetMutexProfileFraction(0)
		}
		if cfg.Block != "" {
			writeLookup("block", cfg.Block)
			runtime.SetBlockProfileRate(0)
		}
	}
	return stop, nil
}

// writeLookup writes one named runtime profile, reporting failures to
// stderr like the other end-of-run writers: by the time stop runs the
// work is done, so a profile write error should not fail the command.
func writeLookup(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: creating %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: writing %s profile: %v\n", name, err)
	}
}
