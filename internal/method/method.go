// Package method promotes "a routing method" to a first-class,
// context-aware concept: a named constructor of Pareto frontiers over
// routing trees, registered in a process-wide registry so the public API,
// the batch engine, the CLIs, and the experiment harness all drive off the
// same set of entrants (PatLabor plus every baseline of §VI).
//
// Every method routes through a context.Context, so a slow exact DP or a
// runaway local search can be cancelled or deadlined; the built-in
// adapters thread the context into internal/core, internal/dw, internal/ks
// and internal/ysd at iteration granularity.
package method

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Method is one routing-tree construction entrant: it returns a Pareto set
// of (wirelength, delay) objective vectors, one tree per retained point,
// in canonical frontier order (W increasing, D decreasing).
type Method interface {
	// Name is the method's display name (e.g. "PatLabor", "SALT"); its
	// lowercased form is the registry key.
	Name() string
	// Frontier computes the method's Pareto set for the net, honouring
	// context cancellation and deadlines.
	Frontier(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error)
}

// Func adapts a plain function into a Method. The wrapper rejects empty
// nets and checks the context before dispatching, so every registered
// method fails fast on an already-cancelled context even when the wrapped
// routine predates context support.
type Func struct {
	name string
	fn   func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error)
}

// NewFunc builds a Func method.
func NewFunc(name string, fn func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error)) Func {
	return Func{name: name, fn: fn}
}

// Name implements Method.
func (f Func) Name() string { return f.name }

// Frontier implements Method.
func (f Func) Frontier(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if net.Degree() == 0 {
		return nil, fmt.Errorf("method %s: empty net", f.name)
	}
	return f.fn(ctx, net)
}

var (
	mu       sync.RWMutex
	registry = map[string]Method{}
	order    []string // primary keys in registration order
)

// Key canonicalises a method name for registry lookup: lookups are
// case-insensitive and whitespace-trimmed.
func Key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Register adds m under Key(m.Name()) and under every alias. Re-registering
// an existing key replaces its method (latest wins) without duplicating the
// Names entry.
func Register(m Method, aliases ...string) {
	mu.Lock()
	defer mu.Unlock()
	key := Key(m.Name())
	if key == "" {
		panic("method: Register with empty name")
	}
	if _, exists := registry[key]; !exists {
		order = append(order, key)
	}
	registry[key] = m
	for _, a := range aliases {
		registry[Key(a)] = m
	}
}

// Get resolves a method by name or alias (case-insensitive).
func Get(name string) (Method, bool) {
	mu.RLock()
	defer mu.RUnlock()
	m, ok := registry[Key(name)]
	return m, ok
}

// Names returns the primary registry keys in registration order (aliases
// are omitted). The slice is a copy.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), order...)
}

// All returns the registered methods in registration order.
func All() []Method {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Method, len(order))
	for i, k := range order {
		out[i] = registry[k]
	}
	return out
}

// Standard returns the §VI comparison entrants in table order: PatLabor,
// SALT and YSD, plus Prim–Dijkstra and Pareto-KS when all is true.
func Standard(all bool) []Method {
	names := []string{"patlabor", "salt", "ysd"}
	if all {
		names = append(names, "pd", "ks")
	}
	out := make([]Method, 0, len(names))
	for _, n := range names {
		m, ok := Get(n)
		if !ok {
			panic("method: standard entrant " + n + " not registered")
		}
		out = append(out, m)
	}
	return out
}
