package method

import (
	"context"

	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/hier"
	"patlabor/internal/ks"
	"patlabor/internal/pareto"
	"patlabor/internal/pd"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/salt"
	"patlabor/internal/tree"
	"patlabor/internal/ysd"
)

// PatLabor returns the PatLabor method routed with the given core options.
// The registry's built-in "patlabor" entry uses the zero Options (paper
// defaults); callers with a custom λ, iteration budget, table or policy
// construct their own instance.
func PatLabor(opts core.Options) Method {
	return NewFunc("PatLabor", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return core.RouteContext(ctx, net, opts)
	})
}

// Hier returns the hierarchical huge-net router with the given options:
// nets at or below the crossover degree dispatch to the flat PatLabor
// core unchanged, larger nets route via clustered two-level trees with
// the cluster subproblems fanned out over an intra-net worker pool. The
// registry's built-in "hier" entry uses the zero Options (crossover 64,
// LUT-sized clusters, GOMAXPROCS workers).
func Hier(opts hier.Options) Method {
	return NewFunc("Hier", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return hier.RouteContext(ctx, net, opts)
	})
}

// singleTree adapts a one-tree constructor (RSMT, RSMA) into a method
// whose frontier is that single tree.
func singleTree(name string, build func(tree.Net) *tree.Tree) Method {
	return NewFunc(name, func(_ context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		t := build(net)
		return []pareto.Item[*tree.Tree]{{Sol: t.Sol(), Val: t}}, nil
	})
}

// The built-in entrants: PatLabor plus every baseline the paper compares
// against. Aliases give the CLIs their historical short names.
func init() {
	Register(PatLabor(core.Options{}))
	Register(NewFunc("SALT", func(_ context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return salt.Sweep(net, nil), nil
	}))
	Register(NewFunc("YSD", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return ysd.SweepContext(ctx, net, nil)
	}))
	Register(NewFunc("PD-II", func(_ context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return pd.Sweep(net, nil), nil
	}), "pd")
	Register(NewFunc("Pareto-KS", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return ks.FrontierContext(ctx, net, ks.Options{})
	}), "ks")
	Register(NewFunc("Pareto-DW", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		return dw.FrontierContext(ctx, net, dw.DefaultOptions())
	}), "dw", "exact")
	Register(singleTree("RSMT", rsmt.Tree))
	Register(singleTree("RSMA", rsma.Tree))
	Register(Hier(hier.Options{}), "hierarchical")
}
