package method

import (
	"context"
	"errors"
	"testing"

	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"

	"math/rand"
)

func TestRegistryLookup(t *testing.T) {
	cases := []struct{ query, want string }{
		{"patlabor", "PatLabor"},
		{"PatLabor", "PatLabor"},
		{" SALT ", "SALT"},
		{"ysd", "YSD"},
		{"pd", "PD-II"},
		{"pd-ii", "PD-II"},
		{"ks", "Pareto-KS"},
		{"pareto-ks", "Pareto-KS"},
		{"dw", "Pareto-DW"},
		{"exact", "Pareto-DW"},
		{"rsmt", "RSMT"},
		{"rsma", "RSMA"},
	}
	for _, c := range cases {
		m, ok := Get(c.query)
		if !ok {
			t.Fatalf("Get(%q) missed", c.query)
		}
		if m.Name() != c.want {
			t.Fatalf("Get(%q) = %q, want %q", c.query, m.Name(), c.want)
		}
	}
	if _, ok := Get("no-such-method"); ok {
		t.Fatal("unknown method resolved")
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"patlabor", "salt", "ysd", "pd-ii", "pareto-ks", "pareto-dw", "rsmt", "rsma"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, names[i], w, names)
		}
	}
	if len(All()) != len(names) {
		t.Fatalf("All() has %d methods for %d names", len(All()), len(names))
	}
}

func TestStandardEntrants(t *testing.T) {
	base := Standard(false)
	if len(base) != 3 || base[0].Name() != "PatLabor" || base[1].Name() != "SALT" || base[2].Name() != "YSD" {
		t.Fatalf("Standard(false) = %v", methodNames(base))
	}
	all := Standard(true)
	if len(all) != 5 || all[3].Name() != "PD-II" || all[4].Name() != "Pareto-KS" {
		t.Fatalf("Standard(true) = %v", methodNames(all))
	}
}

func methodNames(ms []Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name()
	}
	return out
}

func TestFuncRejectsEmptyNetAndCancelledContext(t *testing.T) {
	m := NewFunc("probe", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		t.Fatal("fn reached despite guard")
		return nil, nil
	})
	net := netgen.Uniform(rand.New(rand.NewSource(1)), 4, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Frontier(ctx, net); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
	if _, err := m.Frontier(context.Background(), tree.Net{}); err == nil {
		t.Fatal("empty net accepted")
	}
}

func TestRegisterReplaceKeepsOneNamesEntry(t *testing.T) {
	before := len(Names())
	// The probe stays registered after this test, so keep it well-behaved:
	// a star tree is a valid single-point frontier for any net.
	probe := NewFunc("Replace-Probe", func(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], error) {
		st := tree.Star(net)
		return []pareto.Item[*tree.Tree]{{Sol: st.Sol(), Val: st}}, nil
	})
	Register(probe)
	Register(probe) // replace, not duplicate
	if got := len(Names()); got != before+1 {
		t.Fatalf("Names() grew by %d, want 1", got-before)
	}
	if _, ok := Get("replace-probe"); !ok {
		t.Fatal("replacement probe not resolvable")
	}
}
