package method

import (
	"context"
	"math/rand"
	"testing"

	"patlabor/internal/netgen"
	"patlabor/internal/tree"
)

// maxPropertyDegree caps the net degree the property test feeds a method.
// The exact DP is exponential in the degree, so the Pareto-DW entrant is
// held to small instances; every other method takes the full 2..12 range.
func maxPropertyDegree(name string) int {
	if name == "Pareto-DW" {
		return 8
	}
	return 12
}

// TestRegistryFrontierProperties is the registry-wide contract: every
// registered method, on ~200 random nets of degree 2..12, returns trees
// that validate against the net, a frontier in canonical order (W strictly
// increasing, D strictly decreasing), and objective vectors that match the
// tree's recomputed (Wirelength, MaxDelay).
func TestRegistryFrontierProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20250806))
	const count = 200
	nets := make([]tree.Net, count)
	for i := range nets {
		deg := 2 + rng.Intn(11) // 2..12
		if i%2 == 0 {
			nets[i] = netgen.Uniform(rng, deg, 5000)
		} else {
			nets[i] = netgen.Clustered(rng, deg, 20000, 1500)
		}
	}
	ctx := context.Background()
	for _, m := range All() {
		maxDeg := maxPropertyDegree(m.Name())
		checked := 0
		for i, net := range nets {
			if net.Degree() > maxDeg {
				continue
			}
			items, err := m.Frontier(ctx, net)
			if err != nil {
				t.Fatalf("%s net %d (degree %d): %v", m.Name(), i, net.Degree(), err)
			}
			if len(items) == 0 {
				t.Fatalf("%s net %d (degree %d): empty frontier", m.Name(), i, net.Degree())
			}
			for k, it := range items {
				if err := it.Val.Validate(net); err != nil {
					t.Fatalf("%s net %d item %d: invalid tree: %v", m.Name(), i, k, err)
				}
				if got := it.Val.Sol(); got != it.Sol {
					t.Fatalf("%s net %d item %d: Sol %v but tree recomputes %v",
						m.Name(), i, k, it.Sol, got)
				}
				if k > 0 {
					prev := items[k-1].Sol
					if it.Sol.W <= prev.W || it.Sol.D >= prev.D {
						t.Fatalf("%s net %d: frontier not canonical at %d: %v then %v",
							m.Name(), i, k, prev, it.Sol)
					}
				}
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%s: no nets within degree cap", m.Name())
		}
		t.Logf("%s: %d nets pass", m.Name(), checked)
	}
}
