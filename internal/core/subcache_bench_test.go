package core

import (
	"encoding/binary"
	"math/rand"
	"sync/atomic"
	"testing"
)

// BenchmarkSubCacheParallel hammers the sub-frontier memo's lookup/store
// hot path from GOMAXPROCS goroutines over a fixed key population — the
// pure cache-coordination cost of a batch whose windows all hit or all
// insert, with the actual frontier computation stripped away. Under the
// single-mutex layout every operation serialized on one lock; the
// sharded layout spreads the same traffic over SubCacheShards locks, so
// this benchmark (and its -mutexprofile) is where the difference shows
// undiluted. scripts/bench.sh pr9 does not record it — absolute numbers
// are dominated by map cost — but the mutex-profile comparison in
// EXPERIMENTS.md's lock-contention entry was captured from it.
func BenchmarkSubCacheParallel(b *testing.B) {
	cache := NewSubCache(0)
	const population = 4096
	keys := make([][]byte, population)
	rng := rand.New(rand.NewSource(9))
	for i := range keys {
		k := make([]byte, 0, 24)
		k = append(k, 'R', byte(4+i%6))
		for j := 0; j < 4; j++ {
			k = binary.AppendVarint(k, int64(rng.Intn(8000)-4000))
		}
		keys[i] = k
	}
	entry := &subEntry{}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(ctr.Add(1)) * 127
		for pb.Next() {
			key := keys[i%population]
			i++
			shard := cache.shardOfBytes(key)
			if e := shard.lookup(key); e == nil {
				shard.store(key, entry, cache.perShard)
			}
		}
	})
}
