package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// DefaultSubCacheEntries bounds a SubCache built with NewSubCache(0).
// A cached window holds at most a frontier of small trees (degree ≤ λ),
// so the default is generous while staying far below batch memory.
const DefaultSubCacheEntries = 1 << 14

// SubCacheShards is the number of independent shards a SubCache splits
// its key space over (a power of two; keys select their shard by hash).
// Each shard has its own mutex, bounded map and hit/miss counters, so
// workers touching different shards never serialize on each other — the
// single-mutex layout flattened RouteAll scaling well before the worker
// count reached the core count. 32 shards keep the per-worker collision
// probability negligible at any realistic pool size while costing only a
// few kilobytes of fixed overhead.
const SubCacheShards = 32

// SubCache memoizes sub-frontier computations of the local search: the
// exact Pareto frontier of a source-plus-selected-pins window. Windows
// recur both across iterations of one net (the policy re-selects
// overlapping windows as the base tree converges) and across nets of a
// batch (the engine shares one SubCache over all workers), so the memo
// converts repeated exact sub-net solves — the dominant cost of §V's
// local search — into tree clones plus an isometry transform.
//
// Entries are keyed at the strongest level that stays byte-exact:
//
//   - Degrees the lookup table covers use the canonical symmetry key
//     (hanan.AppendCanonicalKey plus canonically transformed gap
//     lengths): lut.Table.Query is equivariant under the 8 dihedral
//     symmetries, so any window in the same symmetry class yields the
//     transformed-identical frontier.
//
//   - Degrees answered by the exact DP use a translation key (relative
//     pin coordinates): the DP's tie-breaks are not reflection
//     invariant, so only pure translates are guaranteed to reproduce
//     its trees exactly.
//
// Stored items live in the frame of the first window that produced them
// (pre-relabel, sub-net pin indices); hits clone and map them through
// the hanan.Isometry connecting the two windows. A SubCache is safe for
// concurrent use; internally the key space is split over SubCacheShards
// independently locked shards, so concurrent lookups and inserts only
// contend when they hash to the same shard. Sharding is invisible in the
// results: cache state never affects output bytes (the NoCache/cold/warm
// differentials enforce it), only which mutex a given key takes.
type SubCache struct {
	// perShard is each shard's entry bound; the flush-at-capacity
	// eviction runs per shard, so total residency stays within the
	// NewSubCache capacity while eviction never takes more than one
	// shard lock.
	perShard int
	shards   [SubCacheShards]subShard
}

// subShard is one lock's worth of SubCache: a bounded map plus the
// hit/miss counters of the keys that hash here. Counters live with the
// shard (not on the SubCache) so hot updates from different workers
// usually land on different cache lines; the trailing pad keeps
// neighbouring shards from sharing a line (false sharing turns
// independent locks back into one contended line).
type subShard struct {
	mu      sync.Mutex
	entries map[string]*subEntry

	hits, misses atomic.Int64

	_ [88]byte // pad to 128 bytes: two cache lines, no neighbour sharing
}

// subHash is the FNV-1a shard-selection hash. The hash only balances
// load — any function of the key is correct — so the cheapest well-mixed
// one wins. Generic over the key representation so the string-keyed
// Remove path does not copy its key into a fresh byte slice.
func subHash[T ~string | ~[]byte](key T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// shardOf selects the owning shard of a key, folding the hash's high
// bits in so the index bits mix the whole key, not just its tail.
func (c *SubCache) shardOf(key string) *subShard {
	h := subHash(key)
	return &c.shards[(h^h>>32)&(SubCacheShards-1)]
}

// shardOfBytes is shardOf for the hot path's reusable key buffer.
func (c *SubCache) shardOfBytes(key []byte) *subShard {
	h := subHash(key)
	return &c.shards[(h^h>>32)&(SubCacheShards-1)]
}

// subEntry is one memoized window frontier, in the originating window's
// concrete frame with sub-net pin indices. Entries are shared by every
// goroutine that hits the cache: readers transform items through
// iso.ApplyTree (a fresh tree) and must never write the entry itself.
//
//patlint:shared cache-owned; concurrent readers alias these slices
type subEntry struct {
	canonical bool
	// src anchors translation-keyed entries: the originating window's
	// source position.
	src geom.Point
	// ranks/tf reconstruct the isometry for canonical-keyed entries.
	ranks hanan.Ranks
	tf    hanan.Transform
	items []pareto.Item[*tree.Tree]
}

// NewSubCache returns an empty sub-frontier memo holding at most
// capacity windows (<= 0 uses DefaultSubCacheEntries), spread evenly
// over SubCacheShards shards.
func NewSubCache(capacity int) *SubCache {
	if capacity <= 0 {
		capacity = DefaultSubCacheEntries
	}
	perShard := (capacity + SubCacheShards - 1) / SubCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &SubCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*subEntry)
	}
	return c
}

// Counters returns the cumulative hit/miss counts, summed over shards.
func (c *SubCache) Counters() (hits, misses int64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// Len returns the number of resident entries, summed over shards.
func (c *SubCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Remove evicts the entry stored under key, reporting whether one was
// resident. It is the precise-invalidation primitive of ECO mode
// (internal/eco): entries are keyed geometrically and therefore never
// become stale, but windows whose pins an edit moved will never be
// looked up again under their old keys, and letting them accumulate
// would trigger store's wholesale capacity flush — evicting dead keys
// one by one keeps the live ones resident. The key's hash identifies the
// owning shard, so an invalidation locks exactly one shard and never
// stalls lookups elsewhere in the cache. The hit/miss counters are
// untouched: eviction is not cache traffic.
func (c *SubCache) Remove(key string) bool {
	s := c.shardOf(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	if ok {
		delete(s.entries, key)
	}
	s.mu.Unlock()
	return ok
}

// TraceWindow records one sub-frontier window a local search consulted:
// the memo key it was cached (or answered) under, and the parent-net pin
// indices the window covered. Pin 0 (the source) is always present.
type TraceWindow struct {
	Key  string
	Pins []int
}

// SubTrace accumulates the sub-frontier windows of one Route call when
// Options.Trace is set. The incremental rerouter (internal/eco) keeps the
// trace alongside the routed net so a later edit can evict exactly the
// cached windows the edit's dirty pins touch. A SubTrace is owned by a
// single Route call and needs no locking.
type SubTrace struct {
	Windows []TraceWindow
}

// lookup returns the entry for key, or nil. It does not touch the
// hit/miss counters — a found entry only becomes a hit once the isometry
// derivation succeeds (windowFrontier counts the outcome on the owning
// shard, which it resolves once per window via shardOfBytes).
func (s *subShard) lookup(key []byte) *subEntry {
	s.mu.Lock()
	e := s.entries[string(key)]
	s.mu.Unlock()
	return e
}

// store inserts an entry under key. The first writer wins: concurrent
// workers may compute the same window, and any of the results is an
// equally valid representative (they are byte-identical up to the
// entry's isometry frame). At capacity the shard's map is flushed whole
// — correctness never depends on residency, only speed does — and the
// flush never takes another shard's lock.
func (s *subShard) store(key []byte, e *subEntry, perShard int) {
	s.mu.Lock()
	if len(s.entries) >= perShard {
		s.entries = make(map[string]*subEntry, perShard)
	}
	if _, ok := s.entries[string(key)]; !ok {
		s.entries[string(key)] = e
	}
	s.mu.Unlock()
}

// keyScratch holds the reusable buffers of sub-frontier key
// construction, one per search.
type keyScratch struct {
	buf  []byte
	h, v []int64
}

// appendWindowKey builds the memo key for a window: the canonical
// symmetry key when the lookup table answers this degree, the
// translation key otherwise (see SubCache). It returns the ranks and
// canonicalizing transform when the canonical form was computed.
func (ks *keyScratch) appendWindowKey(sub tree.Net, canonical bool) (hanan.Ranks, hanan.Transform) {
	var r hanan.Ranks
	var tf hanan.Transform
	if canonical {
		r = hanan.RanksOf(sub)
		ks.buf = append(ks.buf[:0], 'C')
		ks.buf, tf = hanan.AppendCanonicalKey(ks.buf, r.Pattern)
		ks.h, ks.v = tf.ApplyLengthsInto(r.H, r.V, ks.h, ks.v)
		for _, g := range ks.h {
			ks.buf = binary.AppendVarint(ks.buf, g)
		}
		for _, g := range ks.v {
			ks.buf = binary.AppendVarint(ks.buf, g)
		}
		return r, tf
	}
	ks.buf = append(ks.buf[:0], 'R', byte(sub.Degree()))
	src := sub.Pins[0]
	for _, p := range sub.Pins[1:] {
		ks.buf = binary.AppendVarint(ks.buf, p.X-src.X)
		ks.buf = binary.AppendVarint(ks.buf, p.Y-src.Y)
	}
	return r, tf
}
