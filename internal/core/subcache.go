package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// DefaultSubCacheEntries bounds a SubCache built with NewSubCache(0).
// A cached window holds at most a frontier of small trees (degree ≤ λ),
// so the default is generous while staying far below batch memory.
const DefaultSubCacheEntries = 1 << 14

// SubCache memoizes sub-frontier computations of the local search: the
// exact Pareto frontier of a source-plus-selected-pins window. Windows
// recur both across iterations of one net (the policy re-selects
// overlapping windows as the base tree converges) and across nets of a
// batch (the engine shares one SubCache over all workers), so the memo
// converts repeated exact sub-net solves — the dominant cost of §V's
// local search — into tree clones plus an isometry transform.
//
// Entries are keyed at the strongest level that stays byte-exact:
//
//   - Degrees the lookup table covers use the canonical symmetry key
//     (hanan.AppendCanonicalKey plus canonically transformed gap
//     lengths): lut.Table.Query is equivariant under the 8 dihedral
//     symmetries, so any window in the same symmetry class yields the
//     transformed-identical frontier.
//
//   - Degrees answered by the exact DP use a translation key (relative
//     pin coordinates): the DP's tie-breaks are not reflection
//     invariant, so only pure translates are guaranteed to reproduce
//     its trees exactly.
//
// Stored items live in the frame of the first window that produced them
// (pre-relabel, sub-net pin indices); hits clone and map them through
// the hanan.Isometry connecting the two windows. A SubCache is safe for
// concurrent use.
type SubCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*subEntry

	hits, misses atomic.Int64
}

// subEntry is one memoized window frontier, in the originating window's
// concrete frame with sub-net pin indices.
type subEntry struct {
	canonical bool
	// src anchors translation-keyed entries: the originating window's
	// source position.
	src geom.Point
	// ranks/tf reconstruct the isometry for canonical-keyed entries.
	ranks hanan.Ranks
	tf    hanan.Transform
	items []pareto.Item[*tree.Tree]
}

// NewSubCache returns an empty sub-frontier memo holding at most
// capacity windows (<= 0 uses DefaultSubCacheEntries).
func NewSubCache(capacity int) *SubCache {
	if capacity <= 0 {
		capacity = DefaultSubCacheEntries
	}
	return &SubCache{cap: capacity, entries: make(map[string]*subEntry)}
}

// Counters returns the cumulative hit/miss counts.
func (c *SubCache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of resident entries.
func (c *SubCache) Len() int {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return n
}

// Remove evicts the entry stored under key, reporting whether one was
// resident. It is the precise-invalidation primitive of ECO mode
// (internal/eco): entries are keyed geometrically and therefore never
// become stale, but windows whose pins an edit moved will never be
// looked up again under their old keys, and letting them accumulate
// would trigger store's wholesale capacity flush — evicting dead keys
// one by one keeps the live ones resident. The hit/miss counters are
// untouched: eviction is not cache traffic.
func (c *SubCache) Remove(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	if ok {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	return ok
}

// TraceWindow records one sub-frontier window a local search consulted:
// the memo key it was cached (or answered) under, and the parent-net pin
// indices the window covered. Pin 0 (the source) is always present.
type TraceWindow struct {
	Key  string
	Pins []int
}

// SubTrace accumulates the sub-frontier windows of one Route call when
// Options.Trace is set. The incremental rerouter (internal/eco) keeps the
// trace alongside the routed net so a later edit can evict exactly the
// cached windows the edit's dirty pins touch. A SubTrace is owned by a
// single Route call and needs no locking.
type SubTrace struct {
	Windows []TraceWindow
}

// lookup returns the entry for key, or nil. It does not touch the
// hit/miss counters — a found entry only becomes a hit once the isometry
// derivation succeeds (subFrontier counts the outcome).
func (c *SubCache) lookup(key []byte) *subEntry {
	c.mu.Lock()
	e := c.entries[string(key)]
	c.mu.Unlock()
	return e
}

// store inserts an entry under key. The first writer wins: concurrent
// workers may compute the same window, and any of the results is an
// equally valid representative (they are byte-identical up to the
// entry's isometry frame). At capacity the map is flushed whole —
// correctness never depends on residency, only speed does.
func (c *SubCache) store(key []byte, e *subEntry) {
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.entries = make(map[string]*subEntry, c.cap)
	}
	if _, ok := c.entries[string(key)]; !ok {
		c.entries[string(key)] = e
	}
	c.mu.Unlock()
}

// keyScratch holds the reusable buffers of sub-frontier key
// construction, one per search.
type keyScratch struct {
	buf  []byte
	h, v []int64
}

// appendWindowKey builds the memo key for a window: the canonical
// symmetry key when the lookup table answers this degree, the
// translation key otherwise (see SubCache). It returns the ranks and
// canonicalizing transform when the canonical form was computed.
func (ks *keyScratch) appendWindowKey(sub tree.Net, canonical bool) (hanan.Ranks, hanan.Transform) {
	var r hanan.Ranks
	var tf hanan.Transform
	if canonical {
		r = hanan.RanksOf(sub)
		ks.buf = append(ks.buf[:0], 'C')
		ks.buf, tf = hanan.AppendCanonicalKey(ks.buf, r.Pattern)
		ks.h, ks.v = tf.ApplyLengthsInto(r.H, r.V, ks.h, ks.v)
		for _, g := range ks.h {
			ks.buf = binary.AppendVarint(ks.buf, g)
		}
		for _, g := range ks.v {
			ks.buf = binary.AppendVarint(ks.buf, g)
		}
		return r, tf
	}
	ks.buf = append(ks.buf[:0], 'R', byte(sub.Degree()))
	src := sub.Pins[0]
	for _, p := range sub.Pins[1:] {
		ks.buf = binary.AppendVarint(ks.buf, p.X-src.X)
		ks.buf = binary.AppendVarint(ks.buf, p.Y-src.Y)
	}
	return r, tf
}
