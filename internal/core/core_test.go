package core

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestRouteSmallIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6) // 2..7
		net := randNet(rng, n, 100)
		items, err := Route(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d: %d items, want %d", trial, len(items), len(want))
		}
		for i := range want {
			if items[i].Sol != want[i] {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, items[i].Sol, want[i])
			}
			if err := items[i].Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRouteLargeValidAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for _, n := range []int{12, 20, 30} {
		net := randNet(rng, n, 400)
		items, err := Route(net, Options{Lambda: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Fatal("empty result")
		}
		var sols []pareto.Sol
		for _, it := range items {
			sols = append(sols, it.Sol)
			if err := it.Val.Validate(net); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if it.Val.Sol() != it.Sol {
				t.Fatalf("n=%d: objective mismatch", n)
			}
		}
		if !pareto.IsFrontier(sols) {
			t.Fatalf("n=%d: not canonical: %v", n, sols)
		}
	}
}

func TestRouteLargeCoversBothEnds(t *testing.T) {
	// The local search must reach near the RSMT wirelength on one end and
	// strictly improve the RSMT delay on the other for spread-out nets.
	rng := rand.New(rand.NewSource(113))
	improvedDelay := 0
	trials := 10
	for trial := 0; trial < trials; trial++ {
		net := randNet(rng, 16, 500)
		items, err := Route(net, Options{Lambda: 7})
		if err != nil {
			t.Fatal(err)
		}
		smtW := rsmt.Tree(net).Wirelength()
		if items[0].Sol.W > smtW {
			t.Fatalf("trial %d: best wirelength %d worse than seed RSMT %d",
				trial, items[0].Sol.W, smtW)
		}
		smtD := rsmt.Tree(net).MaxDelay()
		if items[len(items)-1].Sol.D < smtD {
			improvedDelay++
		}
		// Delay can never beat the shortest-path bound.
		if items[len(items)-1].Sol.D < rsma.MinDelay(net) {
			t.Fatalf("trial %d: delay below the SPT lower bound", trial)
		}
	}
	if improvedDelay == 0 {
		t.Fatal("local search never improved the RSMT delay across trials")
	}
}

func TestRouteRandomSelectionAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	net := randNet(rng, 20, 400)
	a, err := Route(net, Options{Lambda: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(net, Options{Lambda: 7, RandomSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, items := range [][]pareto.Item[*tree.Tree]{a, b} {
		for _, it := range items {
			if err := it.Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRouteNoRefineAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	net := randNet(rng, 18, 300)
	items, err := Route(net, Options{Lambda: 7, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := it.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteMoreIterationsNeverWorse(t *testing.T) {
	// Monotonicity: the Pareto set only grows tighter with iterations.
	rng := rand.New(rand.NewSource(116))
	net := randNet(rng, 24, 400)
	few, err := Route(net, Options{Lambda: 7, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Route(net, Options{Lambda: 7, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref := pareto.Sol{W: 1 << 40, D: 1 << 40}
	if pareto.Hypervolume(itemSols(many), ref) < pareto.Hypervolume(itemSols(few), ref) {
		t.Fatal("hypervolume decreased with more iterations")
	}
}

func itemSols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(tree.Net{}, Options{}); err == nil {
		t.Fatal("empty net accepted")
	}
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(1, 1))
	if _, err := Route(net, Options{Lambda: 1}); err == nil {
		t.Fatal("lambda 1 accepted")
	}
	if _, err := Route(net, Options{Lambda: dw.MaxExactDegree + 1}); err == nil {
		t.Fatal("oversized lambda accepted")
	}
}

func TestFrontierMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	net := randNet(rng, 6, 80)
	sols, err := Frontier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	items, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(items) {
		t.Fatal("Frontier and Route disagree")
	}
}

func TestStepHypervolume(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	net := randNet(rng, 14, 300)
	base := rsmt.Tree(net)
	ref := pareto.Sol{W: base.Wirelength() * 2, D: base.MaxDelay() * 2}
	before := pareto.Hypervolume([]pareto.Sol{base.Sol()}, ref)
	hv, err := StepHypervolume(net, base, []int{3, 7, 11}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hv < before {
		t.Fatalf("step hypervolume %v below base %v", hv, before)
	}
	// Base must be untouched by the step.
	if err := base.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestChunkSelectionDistinct(t *testing.T) {
	for _, tc := range []struct{ n, k, round int }{
		{10, 9, 0},     // k == sinks
		{10, 9, 1},     // wraps fully
		{10, 8, 1},     // wraps mid-window
		{10, 1, 5},     // single pin
		{5, 8, 0},      // k clamped to sinks
		{5, 8, 3},      // clamped and rotated
		{100, 8, 12},   // large net, deep round
		{100, 8, 1000}, // round far beyond one sweep
	} {
		sel := chunkSelection(tc.n, tc.k, tc.round)
		wantLen := tc.k
		if wantLen > tc.n-1 {
			wantLen = tc.n - 1
		}
		if len(sel) != wantLen {
			t.Fatalf("chunkSelection(%d,%d,%d) = %v, want %d pins", tc.n, tc.k, tc.round, sel, wantLen)
		}
		seen := map[int]bool{}
		for _, p := range sel {
			if p < 1 || p >= tc.n {
				t.Fatalf("chunkSelection(%d,%d,%d) selected invalid pin %d", tc.n, tc.k, tc.round, p)
			}
			if seen[p] {
				t.Fatalf("chunkSelection(%d,%d,%d) = %v selects pin %d twice", tc.n, tc.k, tc.round, sel, p)
			}
			seen[p] = true
		}
	}
}

// sameItems asserts two routed frontiers are byte-identical: same
// objective vectors in the same order realised by structurally identical
// trees.
func sameItems(t *testing.T, label string, a, b []pareto.Item[*tree.Tree]) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d items vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Sol != b[i].Sol {
			t.Fatalf("%s: item %d sol %v vs %v", label, i, a[i].Sol, b[i].Sol)
		}
		if !treesEqual(a[i].Val, b[i].Val) {
			t.Fatalf("%s: item %d trees differ:\n%v\n%v", label, i, a[i].Val, b[i].Val)
		}
	}
}

// TestRouteCacheDifferential proves the sub-frontier memo and the
// rebalance skip never change results: caches on vs Options.NoCache must
// be byte-identical, for both window regimes (λ=5 windows answered by
// the lookup table under canonical keys; default λ=9 windows answered by
// the exact DP under translation keys).
func TestRouteCacheDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	for _, lambda := range []int{0, 5} {
		for trial := 0; trial < 6; trial++ {
			n := 12 + rng.Intn(30)
			net := randNet(rng, n, 500)
			cached, err := Route(net, Options{Lambda: lambda})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := Route(net, Options{Lambda: lambda, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			sameItems(t, "cached vs plain", cached, plain)
			for _, it := range cached {
				if err := it.Val.Validate(net); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestRouteSharedCacheAcrossNets routes translated and reflected copies
// of one net through a shared SubCache: results must match per-net
// no-cache routing exactly, and the shared memo must actually hit.
func TestRouteSharedCacheAcrossNets(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	base := randNet(rng, 24, 400)
	nets := []tree.Net{base}
	// Translate.
	shift := tree.Net{Pins: make([]geom.Point, len(base.Pins))}
	for i, p := range base.Pins {
		shift.Pins[i] = geom.Pt(p.X+1000, p.Y-77)
	}
	nets = append(nets, shift)
	// Mirror in x (a fresh symmetry class member for canonical windows).
	mirror := tree.Net{Pins: make([]geom.Point, len(base.Pins))}
	for i, p := range base.Pins {
		mirror.Pins[i] = geom.Pt(-p.X, p.Y)
	}
	nets = append(nets, mirror)

	cache := NewSubCache(0)
	for _, lambda := range []int{0, 5} {
		for _, net := range nets {
			cached, err := Route(net, Options{Lambda: lambda, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := Route(net, Options{Lambda: lambda, NoCache: true})
			if err != nil {
				t.Fatal(err)
			}
			sameItems(t, "shared cache vs plain", cached, plain)
		}
	}
	hits, misses := cache.Counters()
	if hits == 0 || misses == 0 {
		t.Fatalf("shared cache counters hits=%d misses=%d, want both positive", hits, misses)
	}
}
