package core

import (
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestRouteSmallIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6) // 2..7
		net := randNet(rng, n, 100)
		items, err := Route(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d: %d items, want %d", trial, len(items), len(want))
		}
		for i := range want {
			if items[i].Sol != want[i] {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, items[i].Sol, want[i])
			}
			if err := items[i].Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRouteLargeValidAndCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for _, n := range []int{12, 20, 30} {
		net := randNet(rng, n, 400)
		items, err := Route(net, Options{Lambda: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			t.Fatal("empty result")
		}
		var sols []pareto.Sol
		for _, it := range items {
			sols = append(sols, it.Sol)
			if err := it.Val.Validate(net); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if it.Val.Sol() != it.Sol {
				t.Fatalf("n=%d: objective mismatch", n)
			}
		}
		if !pareto.IsFrontier(sols) {
			t.Fatalf("n=%d: not canonical: %v", n, sols)
		}
	}
}

func TestRouteLargeCoversBothEnds(t *testing.T) {
	// The local search must reach near the RSMT wirelength on one end and
	// strictly improve the RSMT delay on the other for spread-out nets.
	rng := rand.New(rand.NewSource(113))
	improvedDelay := 0
	trials := 10
	for trial := 0; trial < trials; trial++ {
		net := randNet(rng, 16, 500)
		items, err := Route(net, Options{Lambda: 7})
		if err != nil {
			t.Fatal(err)
		}
		smtW := rsmt.Tree(net).Wirelength()
		if items[0].Sol.W > smtW {
			t.Fatalf("trial %d: best wirelength %d worse than seed RSMT %d",
				trial, items[0].Sol.W, smtW)
		}
		smtD := rsmt.Tree(net).MaxDelay()
		if items[len(items)-1].Sol.D < smtD {
			improvedDelay++
		}
		// Delay can never beat the shortest-path bound.
		if items[len(items)-1].Sol.D < rsma.MinDelay(net) {
			t.Fatalf("trial %d: delay below the SPT lower bound", trial)
		}
	}
	if improvedDelay == 0 {
		t.Fatal("local search never improved the RSMT delay across trials")
	}
}

func TestRouteRandomSelectionAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	net := randNet(rng, 20, 400)
	a, err := Route(net, Options{Lambda: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(net, Options{Lambda: 7, RandomSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, items := range [][]pareto.Item[*tree.Tree]{a, b} {
		for _, it := range items {
			if err := it.Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRouteNoRefineAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	net := randNet(rng, 18, 300)
	items, err := Route(net, Options{Lambda: 7, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := it.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteMoreIterationsNeverWorse(t *testing.T) {
	// Monotonicity: the Pareto set only grows tighter with iterations.
	rng := rand.New(rand.NewSource(116))
	net := randNet(rng, 24, 400)
	few, err := Route(net, Options{Lambda: 7, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Route(net, Options{Lambda: 7, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref := pareto.Sol{W: 1 << 40, D: 1 << 40}
	if pareto.Hypervolume(itemSols(many), ref) < pareto.Hypervolume(itemSols(few), ref) {
		t.Fatal("hypervolume decreased with more iterations")
	}
}

func itemSols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(tree.Net{}, Options{}); err == nil {
		t.Fatal("empty net accepted")
	}
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(1, 1))
	if _, err := Route(net, Options{Lambda: 1}); err == nil {
		t.Fatal("lambda 1 accepted")
	}
	if _, err := Route(net, Options{Lambda: dw.MaxExactDegree + 1}); err == nil {
		t.Fatal("oversized lambda accepted")
	}
}

func TestFrontierMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	net := randNet(rng, 6, 80)
	sols, err := Frontier(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	items, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(items) {
		t.Fatal("Frontier and Route disagree")
	}
}

func TestStepHypervolume(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	net := randNet(rng, 14, 300)
	base := rsmt.Tree(net)
	ref := pareto.Sol{W: base.Wirelength() * 2, D: base.MaxDelay() * 2}
	before := pareto.Hypervolume([]pareto.Sol{base.Sol()}, ref)
	hv, err := StepHypervolume(net, base, []int{3, 7, 11}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if hv < before {
		t.Fatalf("step hypervolume %v below base %v", hv, before)
	}
	// Base must be untouched by the step.
	if err := base.Validate(net); err != nil {
		t.Fatal(err)
	}
}
