// Package core implements PatLabor (§V of the paper), the practical method
// for Pareto optimisation of timing-driven routing trees:
//
//   - Small-degree nets (n ≤ λ): the exact Pareto frontier, answered from
//     the lookup tables of internal/lut when the degree is covered and by
//     the concrete Pareto-DW of internal/dw otherwise — both produce the
//     identical exact result; the table is purely an accelerator.
//
//   - Large-degree nets (n > λ): local search. A Pareto set of trees T is
//     maintained, seeded with an RSMT T₀ (FLUTE's role). Each iteration
//     selects λ−1 pins of the current descent base with the policy π
//     (internal/policy), regenerates the topology of those pins plus the
//     source through the small-net engine, grafts each frontier subtree
//     back, refines SALT-style, Pareto-merges the candidates, and advances
//     the base to the best-delay candidate so improvements compound (see
//     DESIGN.md substitution 8). The loop runs ⌊n/λ⌋ times as in the
//     paper.
package core

import (
	"context"
	"fmt"
	"sync"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/lut"
	"patlabor/internal/pareto"
	"patlabor/internal/policy"
	"patlabor/internal/rsmt"
	"patlabor/internal/salt"
	"patlabor/internal/tree"
)

// Options configures PatLabor.
type Options struct {
	// Lambda is the small-net threshold λ. 0 defaults to DefaultLambda.
	// Values above dw.MaxExactDegree are rejected.
	Lambda int
	// Table answers small-net queries; nil uses lut.Default(). Degrees the
	// table does not cover fall back to the exact DP.
	Table *lut.Table
	// Params overrides the selection policy parameters; nil uses the
	// trained defaults per degree.
	Params *policy.Params
	// Iterations overrides the local-search iteration count; 0 uses the
	// paper's ⌊n/λ⌋.
	Iterations int
	// NoRefine disables the SALT-style post-processing of rebuilt trees
	// (for ablation).
	NoRefine bool
	// RandomSelection replaces the policy with a deterministic
	// round-robin pin chunking (for ablation of π).
	RandomSelection bool
	// Cache optionally shares a sub-frontier memo across Route calls (the
	// batch engine passes one per engine so windows recur across nets).
	// nil gives each local search a private memo unless NoCache is set.
	Cache *SubCache
	// Trace, when set together with Cache, records every sub-frontier
	// window the local search consults (memo key + parent-net pin
	// indices) so the incremental rerouter (internal/eco) can later evict
	// exactly the cached windows an edit dirties. The trace never alters
	// routing results. Ignored without a cache — windows are not keyed
	// then.
	Trace *SubTrace
	// NoCache disables all result caching: the sub-frontier memo and the
	// unchanged-base rebalance skip. Results are byte-identical either
	// way; NoCache exists to prove that (and for memory-constrained
	// runs).
	NoCache bool
}

// DefaultLambda is the paper's λ = 9.
const DefaultLambda = 9

// Route computes a Pareto set of routing trees for the net: the exact
// frontier for degree ≤ λ, a locally searched approximation otherwise.
// Items are in canonical frontier order.
func Route(net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	return RouteContext(context.Background(), net, opts)
}

// RouteContext is Route with cancellation: the context is checked once per
// local-search iteration (and threaded into the exact DP's subset loop), so
// a deadline aborts within one step of whichever engine is running.
func RouteContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	n := net.Degree()
	if n == 0 {
		return nil, fmt.Errorf("core: empty net")
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = DefaultLambda
	}
	if lambda < 2 || lambda > dw.MaxExactDegree {
		return nil, fmt.Errorf("core: lambda %d out of range [2,%d]", lambda, dw.MaxExactDegree)
	}
	if n <= lambda {
		return small(ctx, net, opts)
	}
	return localSearch(ctx, net, lambda, opts)
}

// Frontier returns only the objective vectors of Route.
func Frontier(net tree.Net, opts Options) ([]pareto.Sol, error) {
	return FrontierContext(context.Background(), net, opts)
}

// FrontierContext returns only the objective vectors of RouteContext.
func FrontierContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Sol, error) {
	items, err := RouteContext(ctx, net, opts)
	if err != nil {
		return nil, err
	}
	sols := make([]pareto.Sol, len(items))
	for i, it := range items {
		sols[i] = it.Sol
	}
	return sols, nil
}

// small answers a small-degree net exactly: lookup table when covered,
// concrete Pareto-DW otherwise.
func small(ctx context.Context, net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	table := opts.Table
	if table == nil {
		table = lut.Default()
	}
	if items, ok, err := table.Query(net); err == nil && ok {
		return items, nil
	} else if err != nil {
		return nil, err
	}
	return dw.FrontierContext(ctx, net, dw.DefaultOptions())
}

func localSearch(ctx context.Context, net tree.Net, lambda int, opts Options) ([]pareto.Item[*tree.Tree], error) {
	n := net.Degree()
	iters := opts.Iterations
	if iters <= 0 {
		iters = n / lambda
		if iters < 1 {
			iters = 1
		}
	}
	// One evaluator serves every tree evaluation of this search — policy
	// scoring, rebuild compaction, Steinerisation, rebalancing — so the
	// steady state allocates only the candidate trees themselves.
	ev := tree.NewEvaluator()
	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = NewSubCache(0)
	}
	var ks keyScratch
	t0 := rsmt.Tree(net)
	set := &pareto.Set[*tree.Tree]{}
	set.Add(ev.Sol(t0), t0)

	// The descent base: the tree whose worst pins the next iteration
	// regenerates. Starting from T0 and advancing to the best-delay
	// candidate of each round makes improvements compound — after ⌊n/λ⌋
	// rounds every pin has been regenerated roughly once (the Pareto-KS
	// connection of Remark 1). Rebuilding only the Pareto set's max-delay
	// element would rebuild T0 (which stays Pareto-optimal as the min-wire
	// point) forever and never reach the low-delay end of the frontier.
	base := t0
	// rebalance runs the SALT-style ε grid over t (§V-B "post-processing
	// techniques as in SALT"). When t is structurally identical to the
	// last tree the grid ran on, the pass is skipped: Rebalance is
	// deterministic and pareto.Set.Add rejects duplicate solutions, so
	// rerunning it on an unchanged base cannot change the set.
	var rebalanced *tree.Tree
	rebalance := func(t *tree.Tree) {
		if !opts.NoCache && rebalanced != nil && treesEqual(t, rebalanced) {
			return
		}
		for _, eps := range rebalanceGrid {
			v := salt.RebalanceWith(t, net, eps, ev)
			set.Add(ev.Sol(v), v)
		}
		rebalanced = t
	}
	// SALT-style post-processing of the seed: the rebalanced variants of
	// T0 give the frontier its shallow-tree backbone, which later rebuilds
	// refine; without them the first iterations explore only around the
	// RSMT end.
	if !opts.NoRefine {
		rebalance(t0)
	}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var sel []int
		if opts.RandomSelection {
			sel = chunkSelection(n, lambda-1, it)
		} else {
			params := policy.DefaultParams(n)
			if opts.Params != nil {
				params = *opts.Params
			}
			sel = policy.SelectWith(net, base, lambda-1, params, ev)
		}
		if len(sel) == 0 {
			break
		}
		subFront, err := subFrontier(ctx, net, sel, opts, cache, &ks)
		if err != nil {
			return nil, err
		}
		var next *tree.Tree
		var nextD int64
		for _, st := range subFront {
			cand, err := rebuildWith(net, base, sel, st.Val, ev)
			if err != nil {
				return nil, err
			}
			if !opts.NoRefine {
				cand.SteinerizeWith(ev)
			}
			sol := ev.Sol(cand)
			set.Add(sol, cand)
			if next == nil || sol.D < nextD {
				next, nextD = cand, sol.D
			}
			// Wirelength-greedy variant (may trade delay for wirelength).
			if !opts.NoRefine {
				v := cand.Clone()
				if v.RelocateSteinersWith(ev) {
					v.SteinerizeWith(ev)
					set.Add(ev.Sol(v), v)
				}
			}
		}
		if next == nil {
			break
		}
		base = next
		// Rebalanced variants of the current base repair paths that the
		// local window could not see — rebuilt subtrees may intersect the
		// other n−λ pins' routing.
		if !opts.NoRefine {
			rebalance(base)
		}
	}
	return set.Items(), nil
}

// treesEqual reports structural equality: same nodes, parents and root.
func treesEqual(a, b *tree.Tree) bool {
	if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.Parent[i] != b.Parent[i] {
			return false
		}
	}
	return true
}

// rebalanceGrid is the ε grid of the SALT-style post-processing passes.
var rebalanceGrid = []float64{0, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.6, 0.9, 1.3, 2}

// chunkSelection deterministically rotates through the sinks (the
// random-selection ablation baseline). The k window indices
// 1+(start+i)%sinks for i < k ≤ sinks are distinct by construction.
func chunkSelection(n, k, round int) []int {
	sinks := n - 1
	if k > sinks {
		k = sinks
	}
	sel := make([]int, 0, k)
	start := (round * k) % sinks
	for i := 0; i < k; i++ {
		sel = append(sel, 1+(start+i)%sinks)
	}
	return sel
}

// subFrontier computes the exact Pareto frontier of source + selected
// pins, with trees relabelled into the parent net's pin frame.
func subFrontier(ctx context.Context, net tree.Net, sel []int, opts Options, cache *SubCache, ks *keyScratch) ([]pareto.Item[*tree.Tree], error) {
	return windowFrontier(ctx, net, append([]int{0}, sel...), opts, cache, ks)
}

// windowScratch pools key-construction buffers for WindowFrontier callers
// that have no per-search keyScratch of their own (the hierarchical
// router's cluster fan-out runs thousands of windows per net across
// workers).
var windowScratch = sync.Pool{New: func() any { return new(keyScratch) }}

// WindowFrontier computes the exact Pareto frontier of the window given by
// parent-net pin indices — pins[0] is the window's source — with trees
// relabelled into the parent net's pin frame. It is the local search's
// sub-frontier solve exposed for external window decompositions
// (internal/hier routes every cluster through it): the window hits the
// lookup table's symbolic path when its degree is covered and the
// sub-frontier memo passed in opts.Cache (nil means no memo), so results
// are byte-identical with the memo cold, warm, or absent.
func WindowFrontier(ctx context.Context, net tree.Net, pins []int, opts Options) ([]pareto.Item[*tree.Tree], error) {
	if len(pins) < 2 {
		return nil, fmt.Errorf("core: window needs at least 2 pins, got %d", len(pins))
	}
	for _, p := range pins {
		if p < 0 || p >= net.Degree() {
			return nil, fmt.Errorf("core: window pin %d out of range [0,%d)", p, net.Degree())
		}
	}
	cache := opts.Cache
	if opts.NoCache {
		cache = nil
	}
	ks := windowScratch.Get().(*keyScratch)
	defer windowScratch.Put(ks)
	return windowFrontier(ctx, net, pins, opts, cache, ks)
}

// windowFrontier computes the exact Pareto frontier of the window of
// parent-net pin indices pins (pins[0] is the window source), with trees
// relabelled into the parent net's pin frame. With a cache, the window is
// answered from the memo when an equivalent window (same canonical form
// for table-covered degrees, same translation class otherwise) was solved
// before; see SubCache for why each key level is byte-exact.
func windowFrontier(ctx context.Context, net tree.Net, pins []int, opts Options, cache *SubCache, ks *keyScratch) ([]pareto.Item[*tree.Tree], error) {
	sub := tree.Net{Pins: make([]geom.Point, len(pins))}
	for i, p := range pins {
		sub.Pins[i] = net.Pins[p]
	}
	if cache == nil {
		items, err := small(ctx, sub, opts)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			if err := it.Val.RelabelPins(pins); err != nil {
				return nil, err
			}
		}
		return items, nil
	}
	table := opts.Table
	if table == nil {
		table = lut.Default()
	}
	canonical := table.Covers(sub.Degree())
	r, tf := ks.appendWindowKey(sub, canonical)
	if opts.Trace != nil {
		opts.Trace.Windows = append(opts.Trace.Windows, TraceWindow{
			Key:  string(ks.buf),
			Pins: append([]int(nil), pins...),
		})
	}
	// Resolve the owning shard once: the lookup, the hit/miss counters and
	// the store below all touch only this shard, so concurrent workers on
	// different windows almost never share a lock or a counter cache line.
	shard := cache.shardOfBytes(ks.buf)
	if e := shard.lookup(ks.buf); e != nil {
		iso, err := windowIsometry(e, sub, r, tf)
		if err == nil {
			shard.hits.Add(1)
			out := make([]pareto.Item[*tree.Tree], len(e.items))
			for i, it := range e.items {
				v := iso.ApplyTree(it.Val)
				if rerr := v.RelabelPins(pins); rerr != nil {
					return nil, rerr
				}
				out[i] = pareto.Item[*tree.Tree]{Sol: it.Sol, Val: v}
			}
			return out, nil
		}
		// A matching key whose isometry cannot be derived would be a key
		// collision; recompute rather than trust the entry.
	}
	shard.misses.Add(1)
	items, err := small(ctx, sub, opts)
	if err != nil {
		return nil, err
	}
	stored := make([]pareto.Item[*tree.Tree], len(items))
	for i, it := range items {
		stored[i] = pareto.Item[*tree.Tree]{Sol: it.Sol, Val: it.Val.Clone()}
	}
	shard.store(ks.buf, &subEntry{
		canonical: canonical,
		src:       sub.Pins[0],
		ranks:     r,
		tf:        tf,
		items:     stored,
	}, cache.perShard)
	for _, it := range items {
		if err := it.Val.RelabelPins(pins); err != nil {
			return nil, err
		}
	}
	return items, nil
}

// windowIsometry derives the map from a cache entry's window onto the
// current window sub.
func windowIsometry(e *subEntry, sub tree.Net, r hanan.Ranks, tf hanan.Transform) (*hanan.Isometry, error) {
	if e.canonical {
		return hanan.NewIsometry(e.ranks, e.tf, r, tf)
	}
	return hanan.Translation(sub.Pins[0].Sub(e.src)), nil
}

// StepHypervolume executes one local-search step on base with the given
// pin selection and returns the hypervolume (w.r.t. ref) of the Pareto set
// of {base} ∪ rebuilt candidates. It is the selection-quality signal the
// policy trainer optimises (examples/training).
func StepHypervolume(net tree.Net, base *tree.Tree, sel []int, ref pareto.Sol) (float64, error) {
	subFront, err := subFrontier(context.Background(), net, sel, Options{}, nil, nil)
	if err != nil {
		return 0, err
	}
	ev := tree.GetEvaluator()
	defer tree.PutEvaluator(ev)
	sols := []pareto.Sol{ev.Sol(base)}
	for _, st := range subFront {
		cand, err := rebuildWith(net, base, sel, st.Val, ev)
		if err != nil {
			return 0, err
		}
		cand.SteinerizeWith(ev)
		sols = append(sols, ev.Sol(cand))
	}
	return pareto.Hypervolume(sols, ref), nil
}

// rebuildWith clones base, detaches the selected pins (demoting their
// nodes to Steiner points so downstream subtrees stay connected), grafts
// the regenerated subtree at the root, and compacts, evaluating through
// ev's scratch.
func rebuildWith(net tree.Net, base *tree.Tree, sel []int, sub *tree.Tree, ev *tree.Evaluator) (*tree.Tree, error) {
	out := base.Clone()
	for _, pin := range sel {
		if err := out.RemovePinWith(pin, ev); err != nil {
			return nil, err
		}
	}
	out.Graft(sub, out.Root)
	out.CompactWith(ev)
	if err := out.Validate(net); err != nil {
		return nil, fmt.Errorf("core: rebuilt tree invalid: %w", err)
	}
	return out, nil
}
