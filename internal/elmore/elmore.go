// Package elmore evaluates routing trees under the Elmore RC delay model,
// the standard first-order interconnect timing metric. The paper optimises
// rectilinear path length as its delay proxy (linear delay); Elmore
// evaluation is the "other metrics" extension its conclusion points to:
// Pareto candidate sets produced under the path-length proxy can be
// re-ranked or filtered under Elmore delay without re-routing.
//
// Model: each wire segment of length L has resistance R·L and capacitance
// C·L (lumped as π-model halves), the driver has output resistance Rd and
// every sink pin a load capacitance Cs. The Elmore delay of sink t is
//
//	delay(t) = Σ_{edges e on path(root→t)} R(e) · ( C(e)/2 + Cdown(e) )
//	         + Rd · Ctotal
//
// where Cdown(e) is all capacitance downstream of e.
package elmore

import (
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Params are the RC technology parameters. Zero values are valid (they
// simply zero the corresponding contribution).
type Params struct {
	RUnit   float64 // wire resistance per unit length
	CUnit   float64 // wire capacitance per unit length
	DriverR float64 // source driver output resistance
	SinkCap float64 // load capacitance of every sink pin
}

// TypicalParams returns a set of plausible normalised parameters (65nm-ish
// ratios) usable for experiments when absolute calibration is irrelevant.
func TypicalParams() Params {
	return Params{RUnit: 0.1, CUnit: 0.2, DriverR: 25, SinkCap: 2}
}

// Delays returns the Elmore delay of every sink pin of the tree (keyed by
// pin index; the source pin 0 is excluded).
func Delays(t *tree.Tree, p Params) map[int]float64 {
	n := t.Len()
	order := t.TopoOrder()
	// Downstream capacitance per node: subtree wire cap + sink loads.
	cdown := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		nd := t.Nodes[v]
		if nd.Pin >= 1 {
			cdown[v] += p.SinkCap
		}
		if par := t.Parent[v]; par >= 0 {
			wire := float64(geom.Dist(nd.P, t.Nodes[par].P)) * p.CUnit
			cdown[par] += cdown[v] + wire
		}
	}
	ctotal := cdown[t.Root]
	// Accumulate delay root-first.
	delay := make([]float64, n)
	delay[t.Root] = p.DriverR * ctotal
	for _, v := range order {
		par := t.Parent[v]
		if par < 0 {
			continue
		}
		wireLen := float64(geom.Dist(t.Nodes[v].P, t.Nodes[par].P))
		r := wireLen * p.RUnit
		c := wireLen * p.CUnit
		delay[v] = delay[par] + r*(c/2+cdown[v])
	}
	out := make(map[int]float64)
	for v, nd := range t.Nodes {
		if nd.Pin >= 1 {
			if cur, ok := out[nd.Pin]; !ok || delay[v] > cur {
				out[nd.Pin] = delay[v]
			}
		}
	}
	return out
}

// MaxDelay returns the largest sink Elmore delay (0 for sink-less trees).
func MaxDelay(t *tree.Tree, p Params) float64 {
	var m float64
	for _, d := range Delays(t, p) {
		if d > m {
			m = d
		}
	}
	return m
}

// Rank re-evaluates Pareto candidates under Elmore delay and returns the
// indices of candidates on the (wirelength, Elmore delay) frontier, in
// increasing wirelength order. Because path length is only a proxy,
// some path-length-Pareto candidates collapse under Elmore — Rank tells
// the caller which ones survive.
func Rank(cands []pareto.Item[*tree.Tree], p Params) []int {
	type scored struct {
		idx int
		w   int64
		d   float64
	}
	s := make([]scored, len(cands))
	for i, c := range cands {
		s[i] = scored{idx: i, w: c.Sol.W, d: MaxDelay(c.Val, p)}
	}
	// Candidates arrive in increasing-W order; keep those with strictly
	// decreasing Elmore delay.
	var out []int
	best := -1.0
	for _, x := range s {
		if best < 0 || x.d < best {
			out = append(out, x.idx)
			best = x.d
		}
	}
	return out
}

// Best returns the candidate index minimising Elmore delay subject to a
// wirelength budget (-1 when none fits).
func Best(cands []pareto.Item[*tree.Tree], p Params, wireBudget int64) int {
	best, bestD := -1, 0.0
	for i, c := range cands {
		if c.Sol.W > wireBudget {
			continue
		}
		d := MaxDelay(c.Val, p)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
