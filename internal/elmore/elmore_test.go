package elmore

import (
	"math"
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDelaysSingleWire(t *testing.T) {
	// Source at 0, one sink at distance 10.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0))
	tr := tree.Star(net)
	p := Params{RUnit: 2, CUnit: 3, DriverR: 5, SinkCap: 7}
	// Wire: R=20, C=30. Ctotal = 30+7 = 37.
	// delay = Rd*Ctotal + R*(C/2 + Cdown) = 5*37 + 20*(15+7) = 185 + 440.
	d := Delays(tr, p)
	if !almost(d[1], 625) {
		t.Fatalf("delay = %v, want 625", d[1])
	}
	if !almost(MaxDelay(tr, p), 625) {
		t.Fatalf("MaxDelay = %v", MaxDelay(tr, p))
	}
}

func TestDelaysChainVsStar(t *testing.T) {
	// Two sinks: chained, the far sink sees the near sink's load through
	// its path; in a star it does not.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0))
	chain := tree.New(net.Source(), 0)
	a := chain.Add(net.Pins[1], 1, chain.Root)
	chain.Add(net.Pins[2], 2, a)
	p := Params{RUnit: 1, CUnit: 1, DriverR: 0, SinkCap: 0}
	// Chain: both edges length 10: R=C=10 each.
	// Cdown(edge1)=10 (second wire), delay(a) = 10*(5+10) = 150.
	// delay(b) = 150 + 10*(5+0) = 200.
	d := Delays(chain, p)
	if !almost(d[1], 150) || !almost(d[2], 200) {
		t.Fatalf("chain delays = %v", d)
	}
}

func TestDelaysZeroParams(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(5, 5))
	tr := tree.Star(net)
	d := Delays(tr, Params{})
	if d[1] != 0 {
		t.Fatalf("zero-parameter delay = %v", d[1])
	}
}

func TestElmoreMonotoneInPathLoad(t *testing.T) {
	// Property: adding a sink load increases every downstream delay.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pins := make([]geom.Point, 5)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(100), rng.Int63n(100))
		}
		net := tree.Net{Pins: pins}
		tr := tree.Star(net)
		p := TypicalParams()
		before := Delays(tr, p)
		p2 := p
		p2.SinkCap *= 2
		after := Delays(tr, p2)
		for pin, d := range before {
			if after[pin] < d {
				t.Fatalf("trial %d: delay decreased with extra load", trial)
			}
		}
	}
}

func TestRankAndBest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		pins := make([]geom.Point, 6)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(200), rng.Int63n(200))
		}
		net := tree.Net{Pins: pins}
		cands, err := dw.Frontier(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		p := TypicalParams()
		kept := Rank(cands, p)
		if len(kept) == 0 || len(kept) > len(cands) {
			t.Fatalf("Rank kept %d of %d", len(kept), len(cands))
		}
		// Kept indices must be strictly increasing and delays strictly
		// decreasing.
		prevIdx := -1
		prevD := math.Inf(1)
		for _, idx := range kept {
			if idx <= prevIdx {
				t.Fatal("Rank indices not increasing")
			}
			d := MaxDelay(cands[idx].Val, p)
			if d >= prevD {
				t.Fatal("Rank delays not decreasing")
			}
			prevIdx, prevD = idx, d
		}
		// Best under an infinite budget is the global Elmore minimum.
		best := Best(cands, p, 1<<62)
		for i := range cands {
			if MaxDelay(cands[i].Val, p) < MaxDelay(cands[best].Val, p)-1e-9 {
				t.Fatal("Best missed a faster candidate")
			}
		}
		// Best under an impossible budget returns -1.
		if Best(cands, p, 0) != -1 {
			t.Fatal("Best ignored the budget")
		}
	}
}

func TestElmoreCorrelatesWithPathLength(t *testing.T) {
	// Sanity: with negligible driver resistance and loads, a tree with
	// both smaller wirelength and smaller max path length has smaller
	// Elmore delay more often than not — check a specific dominating pair.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10))
	star := tree.Star(net) // optimal in both objectives here
	chain := tree.New(net.Source(), 0)
	a := chain.Add(net.Pins[1], 1, chain.Root)
	chain.Add(net.Pins[2], 2, a)
	p := TypicalParams()
	if MaxDelay(star, p) >= MaxDelay(chain, p) {
		t.Fatal("dominating tree not faster under Elmore")
	}
}

func TestDuplicateSinkTakesWorstDelay(t *testing.T) {
	// When a pin is realised by several nodes, Delays reports the worst.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0))
	tr := tree.Star(net)
	tr.Add(geom.Pt(10, 0), 1, tr.Root) // second realisation, same pin
	p := Params{RUnit: 1, CUnit: 1}
	d := Delays(tr, p)
	if d[1] <= 0 {
		t.Fatalf("delay = %v", d[1])
	}
}
