//go:build linux

package lut

import (
	"io"
	"os"
	"syscall"
)

// mapFile makes the contents of f available as one byte slice, preferring
// a read-only shared memory mapping: the table starts query-warm without
// decoding or copying, pages fault in on demand, and every process
// mapping the same file shares a single page-cache copy. The returned
// bool reports whether the slice is a mapping (and must go through
// unmapFile) or a plain buffer. Empty files and mmap failures (exotic
// filesystems) fall back to reading into memory.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size > 0 && size <= int64(int(^uint(0)>>1)) {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return data, true, nil
		}
	}
	return readFile(f, size)
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// readFile is the portable fallback: read the remaining file contents
// into an ordinary buffer. The file position may be anywhere (LoadFile
// has already sniffed the magic), so read from offset 0 explicitly.
func readFile(f *os.File, size int64) ([]byte, bool, error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, false, io.ErrUnexpectedEOF
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, false, err
	}
	return data, false, nil
}
