// Package lut implements the lookup tables of §V-A: for every canonical
// Hanan pattern of a small degree, the table stores all potentially
// Pareto-optimal tree topologies, produced by the symbolic Pareto-DW of
// internal/param. Querying a net instantiates the stored topologies on the
// net's concrete coordinates and Pareto-filters them, which yields the
// exact Pareto frontier together with one optimal tree per frontier point.
//
// Generation parallelises over patterns; tables serialise with
// encoding/gob so cmd/lutgen can pre-generate higher degrees once and
// reuse them across runs.
package lut

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patlabor/internal/hanan"
	"patlabor/internal/param"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Table maps canonical pattern keys to their potentially Pareto-optimal
// topologies. A Table may cover several degrees. All methods are safe for
// concurrent use: lookups take the read lock, merges (Generate/Load) take
// the write lock, and the hit/miss counters are atomics so the hot Query
// path never serialises on them.
type Table struct {
	mu      sync.RWMutex
	entries map[string][]param.Topology
	degrees map[int]bool
	stats   map[int]DegreeStats

	hits   atomic.Int64
	misses atomic.Int64
}

// DegreeStats records the generation statistics reported in Table II of
// the paper for one degree.
type DegreeStats struct {
	Degree    int
	NumIndex  int           // number of canonical (r, P) classes
	TotalTopo int           // total stored topologies
	GenTime   time.Duration // wall-clock generation time
	SampledOf int           // when only a sample of classes was generated: total classes
}

// AvgTopo returns the average number of stored topologies per index.
func (s DegreeStats) AvgTopo() float64 {
	if s.NumIndex == 0 {
		return 0
	}
	return float64(s.TotalTopo) / float64(s.NumIndex)
}

// New returns an empty table.
func New() *Table {
	return &Table{
		entries: map[string][]param.Topology{},
		degrees: map[int]bool{},
		stats:   map[int]DegreeStats{},
	}
}

// Covers reports whether the table fully covers the given degree.
func (t *Table) Covers(degree int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.degrees[degree]
}

// Stats returns the generation statistics per degree, sorted by degree.
func (t *Table) Stats() []DegreeStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]DegreeStats, 0, len(t.stats))
	for _, s := range t.stats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// Generate builds the table for every canonical pattern of the given
// degree using the given number of parallel workers (<=0 means GOMAXPROCS)
// and merges it into t. Degrees 2 and 3 are trivial and fast; degree 7 is
// the practical eager limit on one core (minutes).
func (t *Table) Generate(degree, workers int) error {
	return t.generate(degree, workers, 0)
}

// GenerateSample builds table entries for only the first `sample`
// canonical patterns of the degree (in deterministic enumeration order).
// The degree is NOT marked as covered; queries fall back. Used by the
// Table II experiment to measure per-pattern cost at high degrees.
func (t *Table) GenerateSample(degree, workers, sample int) error {
	return t.generate(degree, workers, sample)
}

func (t *Table) generate(degree, workers, sample int) error {
	if degree < 2 {
		return fmt.Errorf("lut: cannot generate degree %d", degree)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	pats := hanan.CanonicalPatterns(degree)
	total := len(pats)
	if sample > 0 && sample < len(pats) {
		pats = pats[:sample]
	}
	type result struct {
		key   string
		topos []param.Topology
		err   error
	}
	jobs := make(chan hanan.Pattern)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				topos, err := param.EnumeratePattern(p)
				results <- result{key: p.Key(), topos: topos, err: err}
			}
		}()
	}
	go func() {
		for _, p := range pats {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	entries := make(map[string][]param.Topology, len(pats))
	topoCount := 0
	for r := range results {
		if r.err != nil {
			return r.err
		}
		entries[r.key] = r.topos
		topoCount += len(r.topos)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range entries {
		t.entries[k] = v
	}
	st := DegreeStats{
		Degree:    degree,
		NumIndex:  len(pats),
		TotalTopo: topoCount,
		GenTime:   time.Since(start),
	}
	if sample > 0 && sample < total {
		st.SampledOf = total
	} else {
		t.degrees[degree] = true
	}
	t.stats[degree] = st
	return nil
}

// Query returns the exact Pareto frontier of the net with one optimal tree
// per point, when the net's canonical pattern is present in the table.
// The boolean is false when the pattern (or degree) is not covered.
func (t *Table) Query(net tree.Net) ([]pareto.Item[*tree.Tree], bool, error) {
	n := net.Degree()
	if n < 2 {
		return nil, false, nil
	}
	r := hanan.RanksOf(net)
	canon, tf := hanan.Canonical(r.Pattern)
	t.mu.RLock()
	topos, ok := t.entries[canon.Key()]
	t.mu.RUnlock()
	if !ok {
		t.misses.Add(1)
		return nil, false, nil
	}
	t.hits.Add(1)
	items := make([]pareto.Item[*tree.Tree], 0, len(topos))
	for _, topo := range topos {
		tr, err := topo.Instantiate(r, tf)
		if err != nil {
			return nil, false, fmt.Errorf("lut: instantiating pattern %v: %w", canon, err)
		}
		tr.Compact()
		items = append(items, pareto.Item[*tree.Tree]{Sol: tr.Sol(), Val: tr})
	}
	return pareto.FilterItems(items), true, nil
}

// Counters returns the cumulative Query cache statistics: hits (pattern
// found, frontier answered from the table) and misses (pattern or degree
// not covered, caller falls back to the exact DP). Nets of degree < 2
// count as neither.
func (t *Table) Counters() (hits, misses int64) {
	return t.hits.Load(), t.misses.Load()
}

// diskEntry is the gob wire form of one pattern entry.
type diskEntry struct {
	Key   string
	Topos []param.Topology
}

// diskTable is the gob wire form of a whole table.
type diskTable struct {
	Entries []diskEntry
	Degrees []int
	Stats   []DegreeStats
}

// Save serialises the table.
func (t *Table) Save(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	dt := diskTable{}
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dt.Entries = append(dt.Entries, diskEntry{Key: k, Topos: t.entries[k]})
	}
	for d := range t.degrees {
		dt.Degrees = append(dt.Degrees, d)
	}
	sort.Ints(dt.Degrees)
	for _, s := range t.stats {
		dt.Stats = append(dt.Stats, s)
	}
	sort.Slice(dt.Stats, func(i, j int) bool { return dt.Stats[i].Degree < dt.Stats[j].Degree })
	return gob.NewEncoder(w).Encode(dt)
}

// Load reads a serialised table and merges it into t.
func (t *Table) Load(r io.Reader) error {
	var dt diskTable
	if err := gob.NewDecoder(r).Decode(&dt); err != nil {
		return fmt.Errorf("lut: decoding table: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range dt.Entries {
		t.entries[e.Key] = e.Topos
	}
	for _, d := range dt.Degrees {
		t.degrees[d] = true
	}
	for _, s := range dt.Stats {
		t.stats[s.Degree] = s
	}
	return nil
}

// SaveFile writes the table to path.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile merges the table stored at path into t.
func (t *Table) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}

var (
	defaultTable     *Table
	defaultTableOnce sync.Once
)

// DefaultEagerDegree is the largest degree the shared default table
// generates eagerly on first use. Generation up to this degree takes well
// under ten seconds on one core; higher degrees can be merged from files
// produced by cmd/lutgen.
const DefaultEagerDegree = 5

// Default returns the shared process-wide table, generating degrees
// 2..DefaultEagerDegree on first use.
func Default() *Table {
	defaultTableOnce.Do(func() {
		defaultTable = New()
		for d := 2; d <= DefaultEagerDegree; d++ {
			if err := defaultTable.Generate(d, 0); err != nil {
				// Generation of tiny degrees cannot fail other than by
				// programming error; surface it loudly.
				panic(fmt.Sprintf("lut: generating default table degree %d: %v", d, err))
			}
		}
	})
	return defaultTable
}
