// Package lut implements the lookup tables of §V-A: for every canonical
// Hanan pattern of a small degree, the table stores all potentially
// Pareto-optimal tree topologies, produced by the symbolic Pareto-DW of
// internal/param, together with their precompiled (W, D) coefficient form.
//
// Queries are symbolic-first: the net's canonical pattern key is computed
// allocation free, each stored topology's objective vector is evaluated by
// dot products of its coefficient rows against the net's concrete gap
// lengths, the resulting (w, d) points are Pareto-filtered, and only the
// frontier survivors — typically a handful out of hundreds of stored
// topologies — are instantiated as concrete trees. This yields the exact
// Pareto frontier with one optimal tree per point while skipping the tree
// construction, Compact pass, and allocations for every dominated
// topology.
//
// Generation parallelises over patterns and applies dominance pruning
// (param.DominancePrune) so stored class sizes stay bounded as the degree
// grows; it can be sharded deterministically across invocations
// (GenerateShard) and the shard files merged later. Tables serialise in
// two formats: the flat zero-copy format (SaveFlat/flat.go, preferred —
// millisecond cold start via mmap) and the legacy version-tagged
// encoding/gob format (Save, kept so existing .lut files load). LoadFile
// sniffs the format from the leading magic bytes.
package lut

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/bits"
	"os"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patlabor/internal/hanan"
	"patlabor/internal/param"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// entry is one canonical pattern's stored class: the potentially
// Pareto-optimal topologies plus their precompiled coefficient solutions
// (sols[i] == topos[i].Solution(n)). Both slices are immutable once the
// entry is published in the table.
//
//patlint:shared published entries alias the table; lookups must not write them
type entry struct {
	topos []param.Topology
	sols  []param.Solution
}

// Table maps canonical pattern keys to their potentially Pareto-optimal
// topologies. A Table may cover several degrees. Behind the lookup API sit
// two backends: the in-memory builder backend (the entries map, fed by
// Generate/Load) and zero or more read-only flat backends (memory-mapped
// or in-buffer blobs attached by LoadFile/LoadFlat, queried without
// decoding). The builder backend wins on key collisions, then flat
// backends in attach order, so lookup order is deterministic.
//
// All methods are safe for concurrent use. The read path is lock free:
// Query, Covers and MaxCovered load an immutable snapshot through an
// atomic pointer and never touch the mutex, so a table shared by every
// worker of a batch engine adds no serialisation to the per-net path —
// once built, the table behaves like the immutable mmapped blob it
// usually is. Mutations (Generate/Load/LoadFile/Close) run under the
// writer mutex against the canonical maps and publish a fresh snapshot
// when done; a query concurrent with a merge sees either the old or the
// new table, never a partial one. The query counters are atomics, each
// padded to its own cache line so hot updates from different workers do
// not false-share.
type Table struct {
	// snap is the immutable read-path view; see tableSnapshot.
	snap atomic.Pointer[tableSnapshot]

	// mu guards the canonical writer state below. Readers never take it.
	mu      sync.Mutex
	entries map[string]entry
	degrees map[int]bool
	stats   map[int]DegreeStats
	flats   []*flatBlob // read-only flat backends, attach order

	hits      paddedCount
	misses    paddedCount
	queryErrs paddedCount

	evaluated    paddedCount // topologies evaluated symbolically
	materialized paddedCount // trees instantiated (frontier survivors)

	loadNanos   atomic.Int64 // cumulative wall-clock spent in LoadFile
	mappedBytes atomic.Int64 // bytes currently memory-mapped
}

// paddedCount is an atomic counter alone on its cache line: the hot
// Query counters are bumped once per query by every worker, and packing
// them densely would bounce one shared line between cores on each bump.
type paddedCount struct {
	atomic.Int64
	_ [56]byte
}

// tableSnapshot is the immutable view the lock-free read path consults:
// a copy of the builder entries, the covered-degree set, and the flat
// backends at publish time. Snapshots are never mutated after the atomic
// pointer store — writers build a fresh one per mutation — so readers
// can use one without synchronisation for as long as they hold it.
//
//patlint:shared lock-free readers hold snapshots without synchronisation
type tableSnapshot struct {
	entries map[string]entry
	degrees map[int]bool
	flats   []*flatBlob
}

// emptySnapshot backs tables created as zero values before any publish.
var emptySnapshot = &tableSnapshot{}

// snapshot returns the current read-path view (never nil).
func (t *Table) snapshot() *tableSnapshot {
	if s := t.snap.Load(); s != nil {
		return s
	}
	return emptySnapshot
}

// publishLocked builds and atomically publishes a fresh snapshot of the
// writer state; t.mu must be held. Mutations are rare (table generation,
// file loads) and heavy, so copying the key maps here is noise next to
// the work that preceded it — and it is what lets every Query between
// now and the next mutation run without a lock.
func (t *Table) publishLocked() {
	s := &tableSnapshot{
		entries: make(map[string]entry, len(t.entries)),
		degrees: make(map[int]bool, len(t.degrees)),
		flats:   append([]*flatBlob(nil), t.flats...),
	}
	for k, v := range t.entries {
		s.entries[k] = v
	}
	for d, ok := range t.degrees {
		if ok {
			s.degrees[d] = true
		}
	}
	t.snap.Store(s)
}

// DegreeStats records the generation statistics reported in Table II of
// the paper for one degree, plus the bookkeeping for sharded generation:
// a shard file carries the shard layout it was generated under and a
// bitmap of which shards its stats already cover, so merging shard files
// is idempotent and the merged table knows when a degree became complete.
type DegreeStats struct {
	Degree    int
	NumIndex  int           // number of canonical (r, P) classes generated
	TotalTopo int           // total stored topologies (after pruning)
	GenTime   time.Duration // wall-clock generation time (summed over shards)
	SampledOf int           // when only a sample of classes was generated: total classes
	Pruned    int           // topologies removed by generation-time dominance pruning

	ShardCount int    // shard layout this degree was generated under (0: unsharded)
	ShardsSeen uint64 // bitmap of shards whose stats are merged in
}

// AvgTopo returns the average number of stored topologies per index.
//
//patlint:ignore exact reporting-only statistic; never feeds routing arithmetic
func (s DegreeStats) AvgTopo() float64 {
	if s.NumIndex == 0 {
		return 0
	}
	return float64(s.TotalTopo) / float64(s.NumIndex)
}

// New returns an empty table.
func New() *Table {
	return &Table{
		entries: map[string]entry{},
		degrees: map[int]bool{},
		stats:   map[int]DegreeStats{},
	}
}

// Covers reports whether the table fully covers the given degree. Lock
// free: it reads the published snapshot, so the sub-frontier hot path
// (which probes coverage once per window) never serialises here.
func (t *Table) Covers(degree int) bool {
	return t.snapshot().degrees[degree]
}

// MaxCovered returns the largest fully covered degree that is <= limit,
// or 0 when no degree in range is covered. Callers that size work to the
// table (internal/hier's adaptive cluster sizing) use this instead of
// probing Covers degree by degree. Lock free, like Covers.
func (t *Table) MaxCovered(limit int) int {
	best := 0
	for d, ok := range t.snapshot().degrees {
		if ok && d <= limit && d > best {
			best = d
		}
	}
	return best
}

// LoadInfo reports the cumulative wall-clock time spent loading tables
// from disk (gob decode or flat open) and the number of bytes currently
// memory-mapped by flat backends. Cold-start reporting only; routing
// results never depend on it.
func (t *Table) LoadInfo() (loadTime time.Duration, mappedBytes int64) {
	return time.Duration(t.loadNanos.Load()), t.mappedBytes.Load()
}

// Stats returns the generation statistics per degree, sorted by degree.
func (t *Table) Stats() []DegreeStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DegreeStats, 0, len(t.stats))
	for _, s := range t.stats {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b DegreeStats) int { return a.Degree - b.Degree })
	return out
}

// Generate builds the table for every canonical pattern of the given
// degree using the given number of parallel workers (<=0 means GOMAXPROCS)
// and merges it into t. Degrees 2 and 3 are trivial and fast; degree 7 is
// the practical eager limit on one core (minutes) — use GenerateShard to
// split it across invocations.
func (t *Table) Generate(degree, workers int) error {
	return t.generate(degree, workers, 0, 0, 1)
}

// GenerateSample builds table entries for only the first `sample`
// canonical patterns of the degree (in deterministic enumeration order).
// The degree is NOT marked as covered; queries fall back. Used by the
// Table II experiment to measure per-pattern cost at high degrees.
func (t *Table) GenerateSample(degree, workers, sample int) error {
	return t.generate(degree, workers, sample, 0, 1)
}

// MaxShards bounds the shard count of sharded generation: ShardsSeen
// tracks merged shards in a uint64 bitmap.
const MaxShards = 64

// GenerateShard builds the table entries for one shard of the degree's
// canonical pattern space: pattern i (in deterministic enumeration order)
// belongs to shard i % shardCount. The strided partition balances cost —
// enumeration order correlates with pattern difficulty, so contiguous
// ranges would give the last shard the hardest patterns. The degree is
// marked covered only once all shards are merged into one table (the
// shard bookkeeping travels in DegreeStats through both disk formats).
func (t *Table) GenerateShard(degree, workers, shard, shardCount int) error {
	if shardCount < 1 || shardCount > MaxShards {
		return fmt.Errorf("lut: shard count %d out of range [1,%d]", shardCount, MaxShards)
	}
	if shard < 0 || shard >= shardCount {
		return fmt.Errorf("lut: shard %d out of range [0,%d)", shard, shardCount)
	}
	return t.generate(degree, workers, 0, shard, shardCount)
}

func (t *Table) generate(degree, workers, sample, shard, shardCount int) error {
	if degree < 2 {
		return fmt.Errorf("lut: cannot generate degree %d", degree)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now() //patlint:ignore nondet GenTime is a reported statistic; table contents stay deterministic
	all := hanan.CanonicalPatterns(degree)
	total := len(all)
	var pats []hanan.Pattern
	switch {
	case shardCount > 1:
		for i := shard; i < len(all); i += shardCount {
			pats = append(pats, all[i])
		}
	case sample > 0 && sample < len(all):
		pats = all[:sample]
	default:
		pats = all
	}
	type result struct {
		key    string
		ent    entry
		pruned int
		err    error
	}
	// Both channels are buffered to their maximum occupancy so the
	// early-return on r.err below cannot strand a worker (blocked sending
	// a result nobody will read) or the feeder (blocked sending a job no
	// worker will take): every send completes even after the consumer is
	// gone, and the feeder goroutine runs to close(results) unconditionally.
	jobs := make(chan hanan.Pattern, len(pats))
	results := make(chan result, len(pats))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				topos, err := param.EnumeratePattern(p)
				ent := entry{topos: topos}
				pruned := 0
				if err == nil {
					ent.sols = param.Solutions(topos, p.N)
					// Generation-time dominance pruning (Lemma-1 spirit):
					// drop topologies made redundant by an earlier stored
					// one. Queries on the pruned class stay byte-identical
					// — see param.DominancePrune.
					ent.topos, ent.sols, pruned = param.DominancePrune(ent.topos, ent.sols)
				}
				results <- result{key: p.Key(), ent: ent, pruned: pruned, err: err}
			}
		}()
	}
	go func() {
		for _, p := range pats {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	entries := make(map[string]entry, len(pats))
	topoCount, prunedCount := 0, 0
	for r := range results {
		if r.err != nil {
			return r.err
		}
		entries[r.key] = r.ent
		topoCount += len(r.ent.topos)
		prunedCount += r.pruned
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range entries {
		t.entries[k] = v
	}
	st := DegreeStats{
		Degree:    degree,
		NumIndex:  len(pats),
		TotalTopo: topoCount,
		Pruned:    prunedCount,
		GenTime:   time.Since(start), //patlint:ignore nondet GenTime is a reported statistic; table contents stay deterministic
	}
	switch {
	case shardCount > 1:
		st.ShardCount = shardCount
		st.ShardsSeen = 1 << shard
	case sample > 0 && sample < total:
		st.SampledOf = total
	default:
		t.degrees[degree] = true
	}
	t.mergeStatsLocked(st)
	t.publishLocked()
	return nil
}

// mergeStatsLocked folds one degree's incoming statistics into the table;
// the write lock must be held. Shard stats under the same layout with
// disjoint bitmaps accumulate (and flip the degree to covered when the
// bitmap completes); overlapping shard stats are skipped, which makes
// re-merging the same shard file idempotent; anything else replaces the
// stored row, matching the pre-shard behavior.
func (t *Table) mergeStatsLocked(in DegreeStats) {
	d := in.Degree
	cur, ok := t.stats[d]
	if ok && cur.ShardCount > 0 && in.ShardCount == cur.ShardCount && in.ShardsSeen != 0 {
		if cur.ShardsSeen&in.ShardsSeen != 0 {
			return // shard(s) already merged: resuming a partial merge
		}
		cur.NumIndex += in.NumIndex
		cur.TotalTopo += in.TotalTopo
		cur.Pruned += in.Pruned
		cur.GenTime += in.GenTime
		cur.ShardsSeen |= in.ShardsSeen
		if bits.OnesCount64(cur.ShardsSeen) == cur.ShardCount {
			cur.ShardCount = 0
			cur.ShardsSeen = 0
			t.degrees[d] = true
		}
		t.stats[d] = cur
		return
	}
	if ok && t.degrees[d] && in.ShardCount > 0 {
		return // degree already complete; stray shard stats add nothing
	}
	if in.ShardCount > 0 && bits.OnesCount64(in.ShardsSeen) == in.ShardCount {
		// A pre-merged file that still carries its shard layout.
		in.ShardCount = 0
		in.ShardsSeen = 0
		t.degrees[d] = true
	}
	t.stats[d] = in
}

// MissingShards returns which shards of the degree's generation are not
// yet merged into t, given how the degree was sharded. A nil result with
// ok=true means the degree is complete; ok=false means t has no sharded
// stats for the degree at all.
func (t *Table) MissingShards(degree int) (missing []int, shardCount int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.degrees[degree] {
		return nil, 0, true
	}
	s, have := t.stats[degree]
	if !have || s.ShardCount == 0 {
		return nil, 0, false
	}
	for i := 0; i < s.ShardCount; i++ {
		if s.ShardsSeen&(1<<i) == 0 {
			missing = append(missing, i)
		}
	}
	return missing, s.ShardCount, true
}

// evalItem pairs one topology's concrete objective vector with its index
// into the entry, so frontier filtering can defer instantiation.
type evalItem struct {
	sol pareto.Sol
	idx int32
}

// scratch holds the reusable per-query buffers: the canonical key, the
// transformed gap-length vectors, and the symbolic evaluation rows.
// Pooled so concurrent Query calls neither share nor reallocate them.
type scratch struct {
	key   []byte
	h, v  []int64
	evals []evalItem
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			key: make([]byte, 0, hanan.MaxKeyLen),
			h:   make([]int64, 0, hanan.MaxKeyLen),
			v:   make([]int64, 0, hanan.MaxKeyLen),
		}
	},
}

// maxRetainedEvals bounds the evals capacity a scratch may carry back
// into the pool. evals grows with the queried entry's solution count, so
// one query against a dense high-degree entry would otherwise pin its
// worst-case allocation in every pooled scratch for the process lifetime
// (the pool never shrinks what it is handed). Oversized buffers are
// dropped on put and the next query re-grows from empty; the bound is
// far above the typical entry so steady-state queries still never
// allocate.
const maxRetainedEvals = 4096

// putScratch returns sc to the pool, shedding any buffer that grew past
// its retention bound.
func putScratch(sc *scratch) {
	if cap(sc.evals) > maxRetainedEvals {
		sc.evals = nil
	}
	scratchPool.Put(sc)
}

// Query returns the exact Pareto frontier of the net with one optimal tree
// per point, when the net's canonical pattern is present in the table.
// The boolean is false when the pattern (or degree) is not covered.
//
// The fast path never materializes dominated topologies: every stored
// solution is evaluated symbolically on the net's gap lengths, and only
// the Pareto frontier survivors are instantiated. Ties keep the earliest
// stored topology, matching the materialize-then-filter reference
// (pareto.FilterItems is stable).
func (t *Table) Query(net tree.Net) ([]pareto.Item[*tree.Tree], bool, error) {
	n := net.Degree()
	if n < 2 {
		return nil, false, nil
	}
	r := hanan.RanksOf(net)
	sc := scratchPool.Get().(*scratch)
	defer putScratch(sc)
	key, tf := hanan.AppendCanonicalKey(sc.key[:0], r.Pattern)
	sc.key = key
	// Lock-free lookup: the snapshot is immutable, so the entry map and
	// the backend list can be read without synchronisation. A concurrent
	// merge publishes a new snapshot; this query finishes on the old one.
	snap := t.snapshot()
	e, ok := snap.entries[string(key)]
	if !ok {
		// Builder-backend miss: search the read-only flat backends in
		// attach order. The flat path evaluates coefficient rows directly
		// against the mapping — no decode, no entry allocation.
		for _, b := range snap.flats {
			if i, found := b.find(key); found {
				return t.queryFlat(b, i, r, tf, sc)
			}
		}
		t.misses.Add(1)
		return nil, false, nil
	}
	// Gap lengths of the canonical instance: the stored coefficient rows
	// are over the canonical pattern's gaps, so map the net's gaps through
	// the canonicalizing transform.
	hh, vv := tf.ApplyLengthsInto(r.H, r.V, sc.h, sc.v)
	sc.h, sc.v = hh, vv
	evals := sc.evals[:0]
	for i := range e.sols {
		evals = append(evals, evalItem{sol: e.sols[i].Eval(hh, vv), idx: int32(i)})
	}
	sc.evals = evals
	t.evaluated.Add(int64(len(evals)))
	winners := filterEvals(evals)
	items := make([]pareto.Item[*tree.Tree], len(winners))
	for i, w := range winners {
		tr, err := e.topos[w.idx].Instantiate(r, tf)
		if err != nil {
			t.queryErrs.Add(1)
			return nil, false, fmt.Errorf("lut: instantiating pattern key %q: %w", sc.key, err)
		}
		tr.Compact()
		items[i] = pareto.Item[*tree.Tree]{Sol: w.sol, Val: tr}
	}
	t.materialized.Add(int64(len(items)))
	t.hits.Add(1)
	return items, true, nil
}

// queryFlat answers a Query from entry i of a flat backend. The symbolic
// evaluation walks the mapped coefficient rows through aligned []int16
// views — the arithmetic, filtering, tie-break, and counters are the same
// as the builder path, so results are byte-identical across backends.
// Corrupt payloads (possible only with a damaged file) return an error
// and count as query errors, like instantiation failures do.
func (t *Table) queryFlat(b *flatBlob, i int, r hanan.Ranks, tf hanan.Transform, sc *scratch) ([]pareto.Item[*tree.Tree], bool, error) {
	fe, err := b.entryAt(i)
	if err != nil {
		t.queryErrs.Add(1)
		return nil, false, err
	}
	hh, vv := tf.ApplyLengthsInto(r.H, r.V, sc.h, sc.v)
	sc.h, sc.v = hh, vv
	evals := sc.evals[:0]
	dOff := 0
	for s := 0; s < fe.numSols; s++ {
		rows := int(fe.rowCounts[s])
		if dOff+rows > fe.totalRows {
			t.queryErrs.Add(1)
			return nil, false, fmt.Errorf("lut: flat entry key %q: row counts exceed declared total", fe.key)
		}
		// Mirror of param.Solution.Eval over the mapped rows: delay is the
		// max over the solution's delay rows, starting at zero.
		var d int64
		for rr := 0; rr < rows; rr++ {
			if x := fe.dRow(dOff+rr).Eval(hh, vv); x > d {
				d = x
			}
		}
		dOff += rows
		evals = append(evals, evalItem{
			sol: pareto.Sol{W: fe.wRow(s).Eval(hh, vv), D: d},
			idx: int32(s),
		})
	}
	sc.evals = evals
	t.evaluated.Add(int64(len(evals)))
	winners := filterEvals(evals)
	items := make([]pareto.Item[*tree.Tree], len(winners))
	for j, w := range winners {
		topo, err := fe.decodeTopo(int(w.idx))
		if err != nil {
			t.queryErrs.Add(1)
			return nil, false, err
		}
		tr, err := topo.Instantiate(r, tf)
		if err != nil {
			t.queryErrs.Add(1)
			return nil, false, fmt.Errorf("lut: instantiating pattern key %q: %w", sc.key, err)
		}
		tr.Compact()
		items[j] = pareto.Item[*tree.Tree]{Sol: w.sol, Val: tr}
	}
	t.materialized.Add(int64(len(items)))
	t.hits.Add(1)
	return items, true, nil
}

// filterEvals Pareto-filters the evaluated points in place and returns the
// frontier prefix in canonical order. Sorting by (W, D, idx) reproduces
// pareto.FilterItems' stable order exactly: idx is the original append
// order, so equal objective vectors keep the earliest stored topology.
func filterEvals(evals []evalItem) []evalItem {
	slices.SortFunc(evals, func(a, b evalItem) int {
		if a.sol.W != b.sol.W {
			if a.sol.W < b.sol.W {
				return -1
			}
			return 1
		}
		if a.sol.D != b.sol.D {
			if a.sol.D < b.sol.D {
				return -1
			}
			return 1
		}
		return int(a.idx - b.idx)
	})
	k := 0
	bestD := int64(1<<63 - 1)
	for _, it := range evals {
		if it.sol.D < bestD {
			evals[k] = it
			k++
			bestD = it.sol.D
		}
	}
	return evals[:k]
}

// Counters returns the cumulative Query cache statistics: hits (pattern
// found, frontier answered from the table) and misses (pattern or degree
// not covered, caller falls back to the exact DP). Nets of degree < 2
// count as neither, and queries that found their pattern but failed during
// instantiation are counted separately (QueryErrors), not as hits.
func (t *Table) Counters() (hits, misses int64) {
	return t.hits.Load(), t.misses.Load()
}

// QueryErrors returns how many queries found their pattern in the table
// but failed while instantiating a frontier tree. Such queries return an
// error to the caller and count neither as hits nor as misses.
func (t *Table) QueryErrors() int64 {
	return t.queryErrs.Load()
}

// EvalCounters returns the cumulative symbolic-evaluation statistics:
// topologies whose (w, d) was evaluated by coefficient dot products, and
// trees actually materialized for frontier survivors. Their ratio is the
// work the symbolic fast path avoids.
func (t *Table) EvalCounters() (evaluated, materialized int64) {
	return t.evaluated.Load(), t.materialized.Load()
}

// diskFormatVersion tags the gob wire format. Version 2 added the
// precompiled Sols per entry; version-0 files (written before the tag
// existed) lack both the tag and the Sols and are recompiled on load.
const diskFormatVersion = 2

// diskEntry is the gob wire form of one pattern entry.
type diskEntry struct {
	Key   string
	Topos []param.Topology
	Sols  []param.Solution
}

// diskTable is the gob wire form of a whole table.
type diskTable struct {
	Version int
	Entries []diskEntry
	Degrees []int
	Stats   []DegreeStats
}

// Save serialises the table in the legacy gob format, including the
// precompiled solutions so Load skips recompilation. Entries come from
// every backend (snapshotEntries), so converting a flat-backed table back
// to gob keeps all content. New tables should prefer SaveFlat; Save stays
// for interoperability with existing .lut files.
func (t *Table) Save(w io.Writer) error {
	keys, entries, err := t.snapshotEntries()
	if err != nil {
		return err
	}
	dt := diskTable{Version: diskFormatVersion}
	for i, k := range keys {
		dt.Entries = append(dt.Entries, diskEntry{Key: k, Topos: entries[i].topos, Sols: entries[i].sols})
	}
	t.mu.Lock()
	for d := range t.degrees {
		dt.Degrees = append(dt.Degrees, d)
	}
	sort.Ints(dt.Degrees)
	for _, s := range t.stats {
		dt.Stats = append(dt.Stats, s)
	}
	t.mu.Unlock()
	slices.SortFunc(dt.Stats, func(a, b DegreeStats) int { return a.Degree - b.Degree })
	return gob.NewEncoder(w).Encode(dt)
}

// Load reads a serialised table and merges it into t. Files written by
// older versions (no format tag, no precompiled solutions) load too: their
// coefficient solutions are recompiled from the stored topologies.
func (t *Table) Load(r io.Reader) error {
	var dt diskTable
	if err := gob.NewDecoder(r).Decode(&dt); err != nil {
		return fmt.Errorf("lut: decoding table: %w", err)
	}
	if dt.Version > diskFormatVersion {
		return fmt.Errorf("lut: table format version %d is newer than supported %d", dt.Version, diskFormatVersion)
	}
	for i := range dt.Entries {
		e := &dt.Entries[i]
		if len(e.Key) < 2 {
			return fmt.Errorf("lut: malformed entry key %q", e.Key)
		}
		if len(e.Sols) != len(e.Topos) {
			e.Sols = param.Solutions(e.Topos, int(e.Key[0]))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range dt.Entries {
		t.entries[e.Key] = entry{topos: e.Topos, sols: e.Sols}
	}
	for _, s := range dt.Stats {
		t.mergeStatsLocked(s)
	}
	for _, d := range dt.Degrees {
		t.degrees[d] = true
	}
	t.publishLocked()
	return nil
}

// SaveFile writes the gob-format table to path atomically: the bytes go
// to a temporary file in the target directory which is renamed into place
// only after a successful write, so an interrupted run never leaves a
// truncated table behind.
func (t *Table) SaveFile(path string) error {
	return atomicWrite(path, t.Save)
}

// LoadFile merges the table stored at path into t, sniffing the format
// from the leading bytes: flat tables (the "PLUT" magic) attach as a
// zero-copy read-only backend — memory-mapped where the platform supports
// it — while anything else decodes as the legacy gob format into the
// in-memory backend. Wall-clock cost is accumulated into LoadInfo.
func (t *Table) LoadFile(path string) error {
	start := time.Now() //patlint:ignore nondet cold-start timing is a reported statistic; table contents stay deterministic
	defer func() {
		t.loadNanos.Add(time.Since(start).Nanoseconds()) //patlint:ignore nondet cold-start timing is a reported statistic; table contents stay deterministic
	}()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var magic [4]byte
	if n, _ := io.ReadFull(f, magic[:]); n == 4 && magic == flatMagic {
		return t.loadFlatFile(f, path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return t.Load(f)
}

// LoadFlat parses data as a flat-format table and attaches it to t as a
// read-only backend. The table retains (and reads through) data, which
// must not be modified afterwards. Corrupt input returns an error and
// leaves t unchanged.
func (t *Table) LoadFlat(data []byte) error {
	b, err := openFlatBlob(data)
	if err != nil {
		return err
	}
	t.attachFlat(b)
	return nil
}

// loadFlatFile maps (or reads) an opened flat file and attaches it.
func (t *Table) loadFlatFile(f *os.File, path string) error {
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	data, mapped, err := mapFile(f, fi.Size())
	if err != nil {
		return fmt.Errorf("lut: %s: %w", path, err)
	}
	b, err := openFlatBlob(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return fmt.Errorf("lut: %s: %w", path, err)
	}
	// openFlatBlob realigns by copying only when the buffer is misaligned;
	// mappings are page-aligned, so b.data aliasing data here means the
	// mapping itself is the backend and must be tracked for Close.
	if mapped && &b.data[0] == &data[0] {
		b.mapped = true
		t.mappedBytes.Add(int64(len(data)))
	} else if mapped {
		unmapFile(data)
	}
	t.attachFlat(b)
	return nil
}

// attachFlat publishes an opened blob as a query backend and merges its
// degree coverage and statistics.
func (t *Table) attachFlat(b *flatBlob) {
	stats, covered := parseFlatDegrees(b.deg)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flats = append(t.flats, b)
	for i := range stats {
		t.mergeStatsLocked(stats[i])
		if covered[i] {
			t.degrees[stats[i].Degree] = true
		}
	}
	t.publishLocked()
}

// Close detaches and unmaps every flat backend. The table must not be
// queried concurrently with or after Close; in-memory content generated
// or gob-loaded into t survives.
func (t *Table) Close() error {
	t.mu.Lock()
	flats := t.flats
	t.flats = nil
	// Publish the detached view before unmapping: a later (contract
	// violating) query then at worst misses instead of touching unmapped
	// memory through a stale snapshot.
	t.publishLocked()
	t.mu.Unlock()
	var first error
	for _, b := range flats {
		if !b.mapped {
			continue
		}
		t.mappedBytes.Add(-int64(len(b.data)))
		if err := unmapFile(b.data); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var (
	defaultTable     *Table
	defaultTableOnce sync.Once
)

// DefaultEagerDegree is the largest degree the shared default table
// generates eagerly on first use. Generation up to this degree takes well
// under ten seconds on one core; higher degrees can be merged from files
// produced by cmd/lutgen.
const DefaultEagerDegree = 5

// Default returns the shared process-wide table, generating degrees
// 2..DefaultEagerDegree on first use.
func Default() *Table {
	defaultTableOnce.Do(func() {
		defaultTable = New()
		for d := 2; d <= DefaultEagerDegree; d++ {
			if err := defaultTable.Generate(d, 0); err != nil {
				// Generation of tiny degrees cannot fail other than by
				// programming error; surface it loudly.
				panic(fmt.Sprintf("lut: generating default table degree %d: %v", d, err))
			}
		}
	})
	return defaultTable
}
