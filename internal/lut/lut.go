// Package lut implements the lookup tables of §V-A: for every canonical
// Hanan pattern of a small degree, the table stores all potentially
// Pareto-optimal tree topologies, produced by the symbolic Pareto-DW of
// internal/param, together with their precompiled (W, D) coefficient form.
//
// Queries are symbolic-first: the net's canonical pattern key is computed
// allocation free, each stored topology's objective vector is evaluated by
// dot products of its coefficient rows against the net's concrete gap
// lengths, the resulting (w, d) points are Pareto-filtered, and only the
// frontier survivors — typically a handful out of hundreds of stored
// topologies — are instantiated as concrete trees. This yields the exact
// Pareto frontier with one optimal tree per point while skipping the tree
// construction, Compact pass, and allocations for every dominated
// topology.
//
// Generation parallelises over patterns; tables serialise with
// encoding/gob in a version-tagged format (older untagged files still
// load) so cmd/lutgen can pre-generate higher degrees once and reuse them
// across runs.
package lut

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"patlabor/internal/hanan"
	"patlabor/internal/param"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// entry is one canonical pattern's stored class: the potentially
// Pareto-optimal topologies plus their precompiled coefficient solutions
// (sols[i] == topos[i].Solution(n)). Both slices are immutable once the
// entry is published in the table.
type entry struct {
	topos []param.Topology
	sols  []param.Solution
}

// Table maps canonical pattern keys to their potentially Pareto-optimal
// topologies. A Table may cover several degrees. All methods are safe for
// concurrent use: lookups take the read lock, merges (Generate/Load) take
// the write lock, and the query counters are atomics so the hot Query
// path never serialises on them.
type Table struct {
	mu      sync.RWMutex
	entries map[string]entry
	degrees map[int]bool
	stats   map[int]DegreeStats

	hits      atomic.Int64
	misses    atomic.Int64
	queryErrs atomic.Int64

	evaluated    atomic.Int64 // topologies evaluated symbolically
	materialized atomic.Int64 // trees instantiated (frontier survivors)
}

// DegreeStats records the generation statistics reported in Table II of
// the paper for one degree.
type DegreeStats struct {
	Degree    int
	NumIndex  int           // number of canonical (r, P) classes
	TotalTopo int           // total stored topologies
	GenTime   time.Duration // wall-clock generation time
	SampledOf int           // when only a sample of classes was generated: total classes
}

// AvgTopo returns the average number of stored topologies per index.
//
//patlint:ignore exact reporting-only statistic; never feeds routing arithmetic
func (s DegreeStats) AvgTopo() float64 {
	if s.NumIndex == 0 {
		return 0
	}
	return float64(s.TotalTopo) / float64(s.NumIndex)
}

// New returns an empty table.
func New() *Table {
	return &Table{
		entries: map[string]entry{},
		degrees: map[int]bool{},
		stats:   map[int]DegreeStats{},
	}
}

// Covers reports whether the table fully covers the given degree.
func (t *Table) Covers(degree int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.degrees[degree]
}

// Stats returns the generation statistics per degree, sorted by degree.
func (t *Table) Stats() []DegreeStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]DegreeStats, 0, len(t.stats))
	for _, s := range t.stats {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b DegreeStats) int { return a.Degree - b.Degree })
	return out
}

// Generate builds the table for every canonical pattern of the given
// degree using the given number of parallel workers (<=0 means GOMAXPROCS)
// and merges it into t. Degrees 2 and 3 are trivial and fast; degree 7 is
// the practical eager limit on one core (minutes).
func (t *Table) Generate(degree, workers int) error {
	return t.generate(degree, workers, 0)
}

// GenerateSample builds table entries for only the first `sample`
// canonical patterns of the degree (in deterministic enumeration order).
// The degree is NOT marked as covered; queries fall back. Used by the
// Table II experiment to measure per-pattern cost at high degrees.
func (t *Table) GenerateSample(degree, workers, sample int) error {
	return t.generate(degree, workers, sample)
}

func (t *Table) generate(degree, workers, sample int) error {
	if degree < 2 {
		return fmt.Errorf("lut: cannot generate degree %d", degree)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now() //patlint:ignore nondet GenTime is a reported statistic; table contents stay deterministic
	pats := hanan.CanonicalPatterns(degree)
	total := len(pats)
	if sample > 0 && sample < len(pats) {
		pats = pats[:sample]
	}
	type result struct {
		key string
		ent entry
		err error
	}
	jobs := make(chan hanan.Pattern)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				topos, err := param.EnumeratePattern(p)
				ent := entry{topos: topos}
				if err == nil {
					ent.sols = param.Solutions(topos, p.N)
				}
				results <- result{key: p.Key(), ent: ent, err: err}
			}
		}()
	}
	go func() {
		for _, p := range pats {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	entries := make(map[string]entry, len(pats))
	topoCount := 0
	for r := range results {
		if r.err != nil {
			return r.err
		}
		entries[r.key] = r.ent
		topoCount += len(r.ent.topos)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range entries {
		t.entries[k] = v
	}
	st := DegreeStats{
		Degree:    degree,
		NumIndex:  len(pats),
		TotalTopo: topoCount,
		GenTime:   time.Since(start), //patlint:ignore nondet GenTime is a reported statistic; table contents stay deterministic
	}
	if sample > 0 && sample < total {
		st.SampledOf = total
	} else {
		t.degrees[degree] = true
	}
	t.stats[degree] = st
	return nil
}

// evalItem pairs one topology's concrete objective vector with its index
// into the entry, so frontier filtering can defer instantiation.
type evalItem struct {
	sol pareto.Sol
	idx int32
}

// scratch holds the reusable per-query buffers: the canonical key, the
// transformed gap-length vectors, and the symbolic evaluation rows.
// Pooled so concurrent Query calls neither share nor reallocate them.
type scratch struct {
	key   []byte
	h, v  []int64
	evals []evalItem
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			key: make([]byte, 0, hanan.MaxKeyLen),
			h:   make([]int64, 0, hanan.MaxKeyLen),
			v:   make([]int64, 0, hanan.MaxKeyLen),
		}
	},
}

// Query returns the exact Pareto frontier of the net with one optimal tree
// per point, when the net's canonical pattern is present in the table.
// The boolean is false when the pattern (or degree) is not covered.
//
// The fast path never materializes dominated topologies: every stored
// solution is evaluated symbolically on the net's gap lengths, and only
// the Pareto frontier survivors are instantiated. Ties keep the earliest
// stored topology, matching the materialize-then-filter reference
// (pareto.FilterItems is stable).
func (t *Table) Query(net tree.Net) ([]pareto.Item[*tree.Tree], bool, error) {
	n := net.Degree()
	if n < 2 {
		return nil, false, nil
	}
	r := hanan.RanksOf(net)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	key, tf := hanan.AppendCanonicalKey(sc.key[:0], r.Pattern)
	sc.key = key
	t.mu.RLock()
	e, ok := t.entries[string(key)]
	t.mu.RUnlock()
	if !ok {
		t.misses.Add(1)
		return nil, false, nil
	}
	// Gap lengths of the canonical instance: the stored coefficient rows
	// are over the canonical pattern's gaps, so map the net's gaps through
	// the canonicalizing transform.
	hh, vv := tf.ApplyLengthsInto(r.H, r.V, sc.h, sc.v)
	sc.h, sc.v = hh, vv
	evals := sc.evals[:0]
	for i := range e.sols {
		evals = append(evals, evalItem{sol: e.sols[i].Eval(hh, vv), idx: int32(i)})
	}
	sc.evals = evals
	t.evaluated.Add(int64(len(evals)))
	winners := filterEvals(evals)
	items := make([]pareto.Item[*tree.Tree], len(winners))
	for i, w := range winners {
		tr, err := e.topos[w.idx].Instantiate(r, tf)
		if err != nil {
			t.queryErrs.Add(1)
			return nil, false, fmt.Errorf("lut: instantiating pattern key %q: %w", sc.key, err)
		}
		tr.Compact()
		items[i] = pareto.Item[*tree.Tree]{Sol: w.sol, Val: tr}
	}
	t.materialized.Add(int64(len(items)))
	t.hits.Add(1)
	return items, true, nil
}

// filterEvals Pareto-filters the evaluated points in place and returns the
// frontier prefix in canonical order. Sorting by (W, D, idx) reproduces
// pareto.FilterItems' stable order exactly: idx is the original append
// order, so equal objective vectors keep the earliest stored topology.
func filterEvals(evals []evalItem) []evalItem {
	slices.SortFunc(evals, func(a, b evalItem) int {
		if a.sol.W != b.sol.W {
			if a.sol.W < b.sol.W {
				return -1
			}
			return 1
		}
		if a.sol.D != b.sol.D {
			if a.sol.D < b.sol.D {
				return -1
			}
			return 1
		}
		return int(a.idx - b.idx)
	})
	k := 0
	bestD := int64(1<<63 - 1)
	for _, it := range evals {
		if it.sol.D < bestD {
			evals[k] = it
			k++
			bestD = it.sol.D
		}
	}
	return evals[:k]
}

// Counters returns the cumulative Query cache statistics: hits (pattern
// found, frontier answered from the table) and misses (pattern or degree
// not covered, caller falls back to the exact DP). Nets of degree < 2
// count as neither, and queries that found their pattern but failed during
// instantiation are counted separately (QueryErrors), not as hits.
func (t *Table) Counters() (hits, misses int64) {
	return t.hits.Load(), t.misses.Load()
}

// QueryErrors returns how many queries found their pattern in the table
// but failed while instantiating a frontier tree. Such queries return an
// error to the caller and count neither as hits nor as misses.
func (t *Table) QueryErrors() int64 {
	return t.queryErrs.Load()
}

// EvalCounters returns the cumulative symbolic-evaluation statistics:
// topologies whose (w, d) was evaluated by coefficient dot products, and
// trees actually materialized for frontier survivors. Their ratio is the
// work the symbolic fast path avoids.
func (t *Table) EvalCounters() (evaluated, materialized int64) {
	return t.evaluated.Load(), t.materialized.Load()
}

// diskFormatVersion tags the gob wire format. Version 2 added the
// precompiled Sols per entry; version-0 files (written before the tag
// existed) lack both the tag and the Sols and are recompiled on load.
const diskFormatVersion = 2

// diskEntry is the gob wire form of one pattern entry.
type diskEntry struct {
	Key   string
	Topos []param.Topology
	Sols  []param.Solution
}

// diskTable is the gob wire form of a whole table.
type diskTable struct {
	Version int
	Entries []diskEntry
	Degrees []int
	Stats   []DegreeStats
}

// Save serialises the table, including the precompiled solutions so Load
// skips recompilation.
func (t *Table) Save(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	dt := diskTable{Version: diskFormatVersion}
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := t.entries[k]
		dt.Entries = append(dt.Entries, diskEntry{Key: k, Topos: e.topos, Sols: e.sols})
	}
	for d := range t.degrees {
		dt.Degrees = append(dt.Degrees, d)
	}
	sort.Ints(dt.Degrees)
	for _, s := range t.stats {
		dt.Stats = append(dt.Stats, s)
	}
	slices.SortFunc(dt.Stats, func(a, b DegreeStats) int { return a.Degree - b.Degree })
	return gob.NewEncoder(w).Encode(dt)
}

// Load reads a serialised table and merges it into t. Files written by
// older versions (no format tag, no precompiled solutions) load too: their
// coefficient solutions are recompiled from the stored topologies.
func (t *Table) Load(r io.Reader) error {
	var dt diskTable
	if err := gob.NewDecoder(r).Decode(&dt); err != nil {
		return fmt.Errorf("lut: decoding table: %w", err)
	}
	if dt.Version > diskFormatVersion {
		return fmt.Errorf("lut: table format version %d is newer than supported %d", dt.Version, diskFormatVersion)
	}
	for i := range dt.Entries {
		e := &dt.Entries[i]
		if len(e.Key) < 2 {
			return fmt.Errorf("lut: malformed entry key %q", e.Key)
		}
		if len(e.Sols) != len(e.Topos) {
			e.Sols = param.Solutions(e.Topos, int(e.Key[0]))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range dt.Entries {
		t.entries[e.Key] = entry{topos: e.Topos, sols: e.Sols}
	}
	for _, d := range dt.Degrees {
		t.degrees[d] = true
	}
	for _, s := range dt.Stats {
		t.stats[s.Degree] = s
	}
	return nil
}

// SaveFile writes the table to path atomically: the bytes go to a
// temporary file in the target directory which is renamed into place only
// after a successful write, so an interrupted run never leaves a
// truncated table behind.
func (t *Table) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if err := t.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = ""
	return nil
}

// LoadFile merges the table stored at path into t.
func (t *Table) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}

var (
	defaultTable     *Table
	defaultTableOnce sync.Once
)

// DefaultEagerDegree is the largest degree the shared default table
// generates eagerly on first use. Generation up to this degree takes well
// under ten seconds on one core; higher degrees can be merged from files
// produced by cmd/lutgen.
const DefaultEagerDegree = 5

// Default returns the shared process-wide table, generating degrees
// 2..DefaultEagerDegree on first use.
func Default() *Table {
	defaultTableOnce.Do(func() {
		defaultTable = New()
		for d := 2; d <= DefaultEagerDegree; d++ {
			if err := defaultTable.Generate(d, 0); err != nil {
				// Generation of tiny degrees cannot fail other than by
				// programming error; surface it loudly.
				panic(fmt.Sprintf("lut: generating default table degree %d: %v", d, err))
			}
		}
	})
	return defaultTable
}
