package lut_test

// Cross-format differential: routing a 220-net batch with the legacy gob
// table, the flat in-memory table, and the mmapped flat table must be
// byte-identical — same frontiers, same trees, same table counters — at
// workers 1 and 8, with the sub-frontier cache on and off. This is the
// contract that makes the flat format a drop-in storage swap rather than
// a behavioral change.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"patlabor/internal/engine"
	"patlabor/internal/lut"
	"patlabor/internal/netgen"
	"patlabor/internal/tree"
)

// renderResults folds a batch result into one deterministic string:
// every solution vector plus the full tree (parents and node points).
func renderResults(results []engine.Result) string {
	var b bytes.Buffer
	for i, cands := range results {
		fmt.Fprintf(&b, "net %d: %d\n", i, len(cands))
		for _, c := range cands {
			fmt.Fprintf(&b, "  %v %v", c.Sol, c.Val.Parent)
			for _, nd := range c.Val.Nodes {
				fmt.Fprintf(&b, " %v", nd.P)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestCrossFormatDifferential(t *testing.T) {
	const maxGen = 5 // covered degrees 2..5; nets go to 6 to exercise misses
	src := lut.New()
	for d := 2; d <= maxGen; d++ {
		if err := src.Generate(d, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Backend 1: legacy gob, decoded into builder entries.
	var gobBuf bytes.Buffer
	if err := src.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	gobTab := lut.New()
	if err := gobTab.Load(bytes.NewReader(gobBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Backend 2: flat format attached as an in-memory blob.
	var flatBuf bytes.Buffer
	if err := src.SaveFlat(&flatBuf); err != nil {
		t.Fatal(err)
	}
	memTab := lut.New()
	if err := memTab.LoadFlat(flatBuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Backend 3: the same flat bytes served from disk (mmapped on linux).
	path := filepath.Join(t.TempDir(), "cross.plut")
	if err := src.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
	mapTab := lut.New()
	if err := mapTab.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	defer mapTab.Close()

	backends := []struct {
		name string
		tab  *lut.Table
	}{
		{"gob", gobTab},
		{"flat-mem", memTab},
		{"flat-mmap", mapTab},
	}

	rng := rand.New(rand.NewSource(220))
	nets := make([]tree.Net, 220)
	for i := range nets {
		deg := 2 + rng.Intn(5) // 2..6: every covered degree plus misses
		nets[i] = netgen.Uniform(rng, deg, 2000)
	}

	for _, workers := range []int{1, 8} {
		for _, nocache := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/nocache=%v", workers, nocache)
			var want string
			for _, be := range backends {
				e, err := engine.New(engine.Options{
					Workers: workers,
					Table:   be.tab,
					NoCache: nocache,
				})
				if err != nil {
					t.Fatal(err)
				}
				results, err := e.RouteAll(context.Background(), nets)
				if err != nil {
					t.Fatalf("%s %s: %v", name, be.name, err)
				}
				got := renderResults(results)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: backend %s differs from gob baseline", name, be.name)
				}
			}
		}
	}

	// Every backend answered the same query stream, so the table counters
	// must agree exactly: same hits, misses, and symbolic-eval savings.
	refHits, refMisses := backends[0].tab.Counters()
	refEval, refMat := backends[0].tab.EvalCounters()
	if refHits == 0 || refMisses == 0 {
		t.Fatalf("degenerate counter mix: hits=%d misses=%d (want both paths exercised)",
			refHits, refMisses)
	}
	for _, be := range backends[1:] {
		h, m := be.tab.Counters()
		ev, mat := be.tab.EvalCounters()
		if h != refHits || m != refMisses || ev != refEval || mat != refMat {
			t.Fatalf("%s counters (%d,%d,%d,%d) != gob (%d,%d,%d,%d)",
				be.name, h, m, ev, mat, refHits, refMisses, refEval, refMat)
		}
		if qe := be.tab.QueryErrors(); qe != 0 {
			t.Fatalf("%s: %d query errors", be.name, qe)
		}
	}
}
