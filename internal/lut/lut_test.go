package lut

import (
	"bytes"
	"math/rand"
	"testing"

	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestGenerateAndQueryMatchesDW(t *testing.T) {
	tab := New()
	for d := 2; d <= 5; d++ {
		if err := tab.Generate(d, 2); err != nil {
			t.Fatal(err)
		}
		if !tab.Covers(d) {
			t.Fatalf("degree %d not covered after Generate", d)
		}
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4) // 2..5
		net := randNet(rng, n, 60)
		items, ok, err := tab.Query(net)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: query missed covered degree %d", trial, n)
		}
		want, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d net %v: LUT frontier %v, want %v", trial, net.Pins, sols(items), want)
		}
		for i := range want {
			if items[i].Sol != want[i] {
				t.Fatalf("trial %d net %v: LUT frontier %v, want %v", trial, net.Pins, sols(items), want)
			}
			if err := items[i].Val.Validate(net); err != nil {
				t.Fatalf("trial %d: invalid tree: %v", trial, err)
			}
			if items[i].Val.Sol() != items[i].Sol {
				t.Fatalf("trial %d: tree objective mismatch", trial)
			}
		}
	}
}

func sols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

func TestQueryUncoveredDegree(t *testing.T) {
	tab := New()
	if err := tab.Generate(3, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_, ok, err := tab.Query(randNet(rng, 6, 50))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("query claimed coverage of an ungenerated degree")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := New()
	if err := tab.Generate(4, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !loaded.Covers(4) {
		t.Fatal("loaded table does not cover degree 4")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		net := randNet(rng, 4, 40)
		a, okA, errA := tab.Query(net)
		b, okB, errB := loaded.Query(net)
		if errA != nil || errB != nil || okA != okB {
			t.Fatalf("query divergence: %v %v %v %v", okA, okB, errA, errB)
		}
		if len(a) != len(b) {
			t.Fatalf("frontier size divergence: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Sol != b[i].Sol {
				t.Fatalf("frontier divergence at %d", i)
			}
		}
	}
}

func TestGenerateSampleDoesNotMarkCovered(t *testing.T) {
	tab := New()
	if err := tab.GenerateSample(6, 2, 5); err != nil {
		t.Fatal(err)
	}
	if tab.Covers(6) {
		t.Fatal("sampled degree must not be marked covered")
	}
	st := tab.Stats()
	if len(st) != 1 || st[0].NumIndex != 5 || st[0].SampledOf == 0 {
		t.Fatalf("sample stats = %+v", st)
	}
}

func TestStats(t *testing.T) {
	tab := New()
	if err := tab.Generate(4, 1); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if len(st) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Degree != 4 || st[0].NumIndex == 0 || st[0].TotalTopo == 0 {
		t.Fatalf("stats = %+v", st[0])
	}
	if st[0].AvgTopo() <= 0 {
		t.Fatalf("AvgTopo = %v", st[0].AvgTopo())
	}
}

func TestDefaultTableSingleton(t *testing.T) {
	a := Default()
	b := Default()
	if a != b {
		t.Fatal("Default not a singleton")
	}
	for d := 2; d <= DefaultEagerDegree; d++ {
		if !a.Covers(d) {
			t.Fatalf("default table does not cover degree %d", d)
		}
	}
}

func TestGenerateRejectsTinyDegree(t *testing.T) {
	if err := New().Generate(1, 1); err == nil {
		t.Fatal("degree-1 generation accepted")
	}
}

func TestQueryTrivialNets(t *testing.T) {
	tab := Default()
	// Degree 1: below any table; ok=false.
	if _, ok, err := tab.Query(tree.Net{Pins: []geom.Point{geom.Pt(1, 1)}}); err != nil || ok {
		t.Fatalf("degree-1 query: ok=%v err=%v", ok, err)
	}
	// Degree 2.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(3, 4))
	items, ok, err := tab.Query(net)
	if err != nil || !ok {
		t.Fatalf("degree-2 query: ok=%v err=%v", ok, err)
	}
	if len(items) != 1 || items[0].Sol != (pareto.Sol{W: 7, D: 7}) {
		t.Fatalf("degree-2 frontier = %v", sols(items))
	}
}

func TestDegree6MatchesDW(t *testing.T) {
	if testing.Short() {
		t.Skip("degree-6 table generation takes seconds")
	}
	tab := New()
	if err := tab.Generate(6, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 25; trial++ {
		net := randNet(rng, 6, 120)
		items, ok, err := tab.Query(net)
		if err != nil || !ok {
			t.Fatalf("trial %d: ok=%v err=%v", trial, ok, err)
		}
		want, err := dw.FrontierSols(net, dw.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(want) {
			t.Fatalf("trial %d: LUT %v, DW %v", trial, sols(items), want)
		}
		for i := range want {
			if items[i].Sol != want[i] {
				t.Fatalf("trial %d: LUT %v, DW %v", trial, sols(items), want)
			}
		}
	}
}
