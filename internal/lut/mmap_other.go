//go:build !linux

package lut

import (
	"io"
	"os"
)

// mapFile on platforms without the mmap backend reads the file into an
// ordinary buffer. Queries work identically; only the page-cache sharing
// and lazy-fault cold start of the Linux mapping are lost.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, false, io.ErrUnexpectedEOF
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, false, err
	}
	return data, false, nil
}

// unmapFile is a no-op without a mapping backend.
func unmapFile([]byte) error { return nil }
