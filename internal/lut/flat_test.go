package lut

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// compareTables asserts both tables answer Query byte-identically (ok
// flag, objective vectors, full tree structure) on random nets of the
// given degrees, including tie-heavy nets with collapsed gap lengths.
func compareTables(t *testing.T, a, b *Table, degrees []int, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, d := range degrees {
		for trial := 0; trial < trials; trial++ {
			span := int64(100000)
			if trial%3 == 1 {
				span = 40
			}
			if trial%3 == 2 {
				span = int64(d)
			}
			net := randNet(rng, d, span)
			got, okG, errG := b.Query(net)
			want, okW, errW := a.Query(net)
			if errG != nil || errW != nil || okG != okW {
				t.Fatalf("degree %d trial %d net %v: ok=%v/%v err=%v/%v",
					d, trial, net.Pins, okG, okW, errG, errW)
			}
			if len(got) != len(want) {
				t.Fatalf("degree %d trial %d net %v: frontier %v, want %v",
					d, trial, net.Pins, sols(got), sols(want))
			}
			for i := range want {
				if got[i].Sol != want[i].Sol {
					t.Fatalf("degree %d trial %d net %v: frontier %v, want %v",
						d, trial, net.Pins, sols(got), sols(want))
				}
				if !reflect.DeepEqual(got[i].Val, want[i].Val) {
					t.Fatalf("degree %d trial %d net %v point %d: tree %+v, want %+v",
						d, trial, net.Pins, i, got[i].Val, want[i].Val)
				}
			}
		}
	}
}

// TestFlatRoundTrip proves SaveFlat -> LoadFlat (buffer-backed, no file)
// reproduces coverage, statistics, and byte-identical query results.
func TestFlatRoundTrip(t *testing.T) {
	src := diffTable(t, 4)
	var buf bytes.Buffer
	if err := src.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.LoadFlat(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	for d := 2; d <= 4; d++ {
		if !loaded.Covers(d) {
			t.Fatalf("flat table does not cover degree %d", d)
		}
	}
	srcStats, gotStats := src.Stats(), loaded.Stats()
	if !reflect.DeepEqual(srcStats, gotStats) {
		t.Fatalf("stats diverge:\n src %+v\nflat %+v", srcStats, gotStats)
	}
	compareTables(t, src, loaded, []int{2, 3, 4}, 60, 91)
	// Flat hits are real hits with the same eval accounting shape.
	hits, misses := loaded.Counters()
	if hits == 0 || misses != 0 {
		t.Fatalf("flat counters: hits=%d misses=%d", hits, misses)
	}
	evald, mat := loaded.EvalCounters()
	if evald <= 0 || mat <= 0 || mat > evald {
		t.Fatalf("flat eval counters: evaluated=%d materialized=%d", evald, mat)
	}
}

// TestFlatFileRoundTrip proves SaveFlatFile -> LoadFile attaches a
// mapped backend (on Linux), answers identically, reports its mapped
// bytes, and releases them on Close.
func TestFlatFileRoundTrip(t *testing.T) {
	src := diffTable(t, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.plut")
	if err := src.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
	if glob, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(glob) != 0 {
		t.Fatalf("temp files left behind: %v", glob)
	}
	loaded := New()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	loadTime, mapped := loaded.LoadInfo()
	if loadTime <= 0 {
		t.Fatalf("LoadInfo time = %v", loadTime)
	}
	if runtime.GOOS == "linux" && mapped == 0 {
		t.Fatal("flat file load did not map any bytes on linux")
	}
	compareTables(t, src, loaded, []int{2, 3, 4}, 40, 92)
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	if _, mapped := loaded.LoadInfo(); mapped != 0 {
		t.Fatalf("%d bytes still reported mapped after Close", mapped)
	}
}

// TestLoadFileSniffsGob proves LoadFile still reads legacy gob files.
func TestLoadFileSniffsGob(t *testing.T) {
	src := diffTable(t, 3)
	path := filepath.Join(t.TempDir(), "t.gob")
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !loaded.Covers(3) {
		t.Fatal("gob file loaded through LoadFile does not cover degree 3")
	}
	compareTables(t, src, loaded, []int{2, 3}, 30, 93)
}

// TestConvertBothDirections proves the migration path round trips:
// gob -> flat (the lutgen -convert direction) and flat-backed -> gob.
func TestConvertBothDirections(t *testing.T) {
	src := diffTable(t, 4)

	// gob -> flat.
	var gobBuf bytes.Buffer
	if err := src.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	fromGob := New()
	if err := fromGob.Load(&gobBuf); err != nil {
		t.Fatal(err)
	}
	var flatBuf bytes.Buffer
	if err := fromGob.SaveFlat(&flatBuf); err != nil {
		t.Fatal(err)
	}
	flat := New()
	if err := flat.LoadFlat(flatBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	compareTables(t, src, flat, []int{2, 3, 4}, 40, 94)

	// flat-backed -> gob: Save must snapshot the flat backend's entries.
	var backBuf bytes.Buffer
	if err := flat.Save(&backBuf); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.Load(&backBuf); err != nil {
		t.Fatal(err)
	}
	if !back.Covers(4) {
		t.Fatal("gob re-export of a flat-backed table lost coverage")
	}
	compareTables(t, src, back, []int{2, 3, 4}, 40, 95)
}

// TestShardGenerateMerge splits degree-5 generation across shards in
// separate tables (as separate lutgen invocations would), merges the
// shard files, and checks the merged table is byte-identical to a full
// generation — and only flips to covered once the last shard lands.
func TestShardGenerateMerge(t *testing.T) {
	const degree, shards = 5, 3
	full := New()
	if err := full.Generate(degree, 0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, shards)
	for s := 0; s < shards; s++ {
		st := New()
		if err := st.GenerateShard(degree, 0, s, shards); err != nil {
			t.Fatal(err)
		}
		if st.Covers(degree) {
			t.Fatalf("shard %d alone claims full coverage", s)
		}
		paths[s] = filepath.Join(dir, "shard.plut")
		paths[s] += string(rune('0' + s))
		if err := st.SaveFlatFile(paths[s]); err != nil {
			t.Fatal(err)
		}
	}
	merged := New()
	for s := 0; s < shards; s++ {
		if merged.Covers(degree) {
			t.Fatalf("covered before shard %d merged", s)
		}
		if s > 0 {
			missing, sc, ok := merged.MissingShards(degree)
			if !ok || sc != shards || len(missing) != shards-s {
				t.Fatalf("after %d shards: missing=%v shardCount=%d ok=%v", s, missing, sc, ok)
			}
		}
		if err := merged.LoadFile(paths[s]); err != nil {
			t.Fatal(err)
		}
	}
	if !merged.Covers(degree) {
		t.Fatal("all shards merged but degree not covered")
	}
	if missing, _, ok := merged.MissingShards(degree); !ok || missing != nil {
		t.Fatalf("complete degree reports missing=%v ok=%v", missing, ok)
	}
	fullStats, mergedStats := full.Stats(), merged.Stats()
	if len(fullStats) != 1 || len(mergedStats) != 1 {
		t.Fatalf("stats rows: %d/%d", len(fullStats), len(mergedStats))
	}
	fs, ms := fullStats[0], mergedStats[0]
	if ms.NumIndex != fs.NumIndex || ms.TotalTopo != fs.TotalTopo || ms.Pruned != fs.Pruned {
		t.Fatalf("merged stats %+v, full generation %+v", ms, fs)
	}
	if ms.ShardCount != 0 || ms.ShardsSeen != 0 {
		t.Fatalf("complete merge kept shard bookkeeping: %+v", ms)
	}
	compareTables(t, full, merged, []int{degree}, 80, 96)

	// Re-merging a shard is a no-op (resumable merges re-scan files).
	if err := merged.LoadFile(paths[1]); err != nil {
		t.Fatal(err)
	}
	if got := merged.Stats()[0]; got != ms {
		t.Fatalf("idempotent re-merge changed stats: %+v -> %+v", ms, got)
	}
}

// TestGenerateShardValidation covers the shard argument contract.
func TestGenerateShardValidation(t *testing.T) {
	tab := New()
	for _, bad := range [][2]int{{0, 0}, {-1, 4}, {4, 4}, {0, MaxShards + 1}} {
		if err := tab.GenerateShard(4, 1, bad[0], bad[1]); err == nil {
			t.Fatalf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
	if err := tab.GenerateShard(4, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !tab.Covers(4) {
		t.Fatal("single-shard generation must cover the degree")
	}
}

// TestMaxCovered checks the adaptive-sizing helper.
func TestMaxCovered(t *testing.T) {
	tab := diffTable(t, 4)
	for limit, want := range map[int]int{1: 0, 2: 2, 3: 3, 4: 4, 10: 4} {
		if got := tab.MaxCovered(limit); got != want {
			t.Fatalf("MaxCovered(%d) = %d, want %d", limit, got, want)
		}
	}
}

// TestFlatRejectsCorrupt spot-checks the validation the fuzz target
// explores exhaustively: header and structural corruption must error.
func TestFlatRejectsCorrupt(t *testing.T) {
	src := diffTable(t, 3)
	var buf bytes.Buffer
	if err := src.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mutate := func(mut func(b []byte) []byte) error {
		b := append([]byte(nil), good...)
		return New().LoadFlat(mut(b))
	}
	cases := map[string]func(b []byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"bad endian":   func(b []byte) []byte { b[6] = 0xFF; return b },
		"bad file len": func(b []byte) []byte { b[56] ^= 0x01; return b },
		"huge entries": func(b []byte) []byte { b[15] = 0xFF; return b },
		"extra byte":   func(b []byte) []byte { return append(b, 0) },
	}
	for name, mut := range cases {
		if err := mutate(mut); err == nil {
			t.Errorf("%s: corrupt flat table accepted", name)
		}
	}
	// And the pristine bytes still load after all that mutation.
	if err := New().LoadFlat(good); err != nil {
		t.Fatal(err)
	}
}

// TestPrunedStatsRecorded checks the generation-time dominance-prune
// accounting. The symbolic DP's in-flight Lemma-1 filter already leaves
// enumerated classes mutually irredundant at the shipped degrees, so the
// final DominancePrune pass — the backstop that bounds class sizes if
// reconstruction ever yields redundant members — should count zero there;
// the Pruned statistic itself must survive both disk formats.
func TestPrunedStatsRecorded(t *testing.T) {
	tab := New()
	if err := tab.Generate(5, 0); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()[0]
	if st.Pruned != 0 {
		t.Fatalf("degree 5: in-flight filter missed %d redundant topologies", st.Pruned)
	}
	if st.TotalTopo <= 0 {
		t.Fatalf("TotalTopo = %d", st.TotalTopo)
	}
	// Plumbing: a nonzero Pruned count round-trips through flat and gob.
	tab.mu.Lock()
	st = tab.stats[5]
	st.Pruned = 7
	tab.stats[5] = st
	tab.mu.Unlock()
	var flatBuf, gobBuf bytes.Buffer
	if err := tab.SaveFlat(&flatBuf); err != nil {
		t.Fatal(err)
	}
	if err := tab.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	fromFlat, fromGob := New(), New()
	if err := fromFlat.LoadFlat(flatBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := fromGob.Load(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if got := fromFlat.Stats()[0].Pruned; got != 7 {
		t.Fatalf("flat round trip lost Pruned: %d", got)
	}
	if got := fromGob.Stats()[0].Pruned; got != 7 {
		t.Fatalf("gob round trip lost Pruned: %d", got)
	}
}

// TestFlatUnalignedBuffer feeds LoadFlat a deliberately misaligned slice:
// the loader must realign (copy) rather than build misaligned int16 views.
func TestFlatUnalignedBuffer(t *testing.T) {
	src := diffTable(t, 3)
	var buf bytes.Buffer
	if err := src.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, buf.Len()+1)
	copy(raw[1:], buf.Bytes())
	loaded := New()
	if err := loaded.LoadFlat(raw[1:]); err != nil {
		t.Fatal(err)
	}
	compareTables(t, src, loaded, []int{2, 3}, 20, 97)
}

func TestLoadFileMissing(t *testing.T) {
	if err := New().LoadFile(filepath.Join(t.TempDir(), "nope.plut")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}
