package lut

import "testing"

// TestPutScratchCapsRetention pins the pool-retention bound: a scratch
// whose evals buffer grew past maxRetainedEvals must shed it on put
// (one dense high-degree query must not pin its worst-case allocation
// in the pool forever), while a normally sized buffer is kept so
// steady-state queries stay allocation-free.
func TestPutScratchCapsRetention(t *testing.T) {
	small := &scratch{evals: make([]evalItem, 0, maxRetainedEvals)}
	putScratch(small)
	if cap(small.evals) != maxRetainedEvals {
		t.Fatalf("at-bound evals dropped: cap=%d, want %d", cap(small.evals), maxRetainedEvals)
	}

	big := &scratch{evals: make([]evalItem, 0, maxRetainedEvals+1)}
	putScratch(big)
	if big.evals != nil {
		t.Fatalf("oversized evals retained: cap=%d, want nil", cap(big.evals))
	}
}
