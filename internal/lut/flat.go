package lut

// Flat zero-copy table format.
//
// The gob format (Save/Load) decodes the whole table into millions of
// small heap objects — seconds of cold start and a private copy per
// process for the larger degrees. The flat format instead lays the table
// out as one contiguous blob designed to be queried directly from a
// read-only memory mapping: a process starts answering queries
// milliseconds after open, pages are faulted in on demand, and every
// process mapping the same file shares one page-cache copy.
//
// All multi-byte fields are little-endian. The symbolic coefficient rows
// are read through aligned []int16 views of the mapping (no decode, no
// allocation on the query path), so the loader refuses to open tables on
// a big-endian host rather than silently mis-evaluating.
//
//	header (64 bytes)
//	  0  magic "PLUT"
//	  4  u16 format version (1)
//	  6  u16 endianness probe (0x1234)
//	  8  u64 number of entries
//	 16  u64 index section offset   (sorted fixed-size key records)
//	 24  u64 entry section offset   (8-aligned per-entry payloads)
//	 32  u64 entry section length
//	 40  u64 degree section offset  (per-degree coverage + statistics)
//	 48  u64 degree section length
//	 56  u64 total file length
//
//	index record (32 bytes, sorted by key bytes, strictly increasing)
//	  0  key[18]   canonical pattern key (hanan.MaxKeyLen), zero padded
//	 20  u32 entry length (bytes)
//	 24  u64 entry offset (relative to the entry section, 8-aligned)
//
//	entry payload (per canonical pattern; dim = 2*(degree-1))
//	  0  u32 numSols                 stored topologies == solutions
//	  4  u32 totalRows               Σ delay rows over all solutions
//	  8  u32 topoArrOff              byte offset of the topoEnd array
//	 12  u32 topoBlobLen
//	 16  u16 rowCounts[numSols]      delay rows per solution
//	     i16 W[numSols*dim]          wirelength coefficient rows
//	     i16 D[totalRows*dim]        delay coefficient rows (solution order)
//	     -- pad to 4 --
//	     u32 topoEnd[numSols]        cumulative end offsets into topoBlob
//	     u8  topoBlob                per topology: numNodes*3 node bytes
//	                                 (I,J,Sink as int8), then numNodes*2
//	                                 parent bytes (LE int16); numNodes =
//	                                 recordLen/5
//
//	degree record (56 bytes)
//	  u32 degree, u32 flags (bit0: fully covered), u32 numIndex,
//	  u32 sampledOf, u32 shardCount, u32 reserved,
//	  u64 shardsSeen (bitmap), u64 totalTopo, u64 pruned,
//	  i64 generation wall-clock nanoseconds
//
// The open path validates the header and the whole index (bounds, order,
// alignment) but touches no entry payloads; per-entry validation happens
// on first query of that entry, so opening stays O(index) and the kernel
// pages the rest in lazily. Every payload access is bounds-checked —
// corrupt or truncated files produce errors, never panics (FuzzFlatLoad
// enforces this).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
	"unsafe"

	"patlabor/internal/hanan"
	"patlabor/internal/param"
)

// flatMagic tags flat-format files; gob streams can never start with it
// (a gob stream begins with a type definition whose first byte is a
// length), so LoadFile sniffs the format from the first four bytes.
var flatMagic = [4]byte{'P', 'L', 'U', 'T'}

const (
	flatVersion     = 1
	flatEndianProbe = 0x1234
	flatHeaderLen   = 64
	flatIndexRec    = 32
	flatKeyLen      = hanan.MaxKeyLen // 18
	flatDegreeRec   = 56

	// flatMaxNodes bounds topology node counts: parents are int16 and
	// instantiation indexes node slots with them.
	flatMaxNodes = 1<<15 - 1

	flagCovered = 1 << 0
)

// hostLittleEndian reports whether the host stores integers little-endian
// — the byte order the flat format is defined in. The coefficient arrays
// are read through []int16 views of the raw bytes, so a big-endian host
// must not open flat tables.
func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// int16View reinterprets b as a []int16. b must be 2-aligned and of even
// length; callers derive both from validated offsets.
func int16View(b []byte) []int16 {
	if len(b) < 2 {
		return nil
	}
	return unsafe.Slice((*int16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// uint16View reinterprets b as a []uint16 under the same contract.
func uint16View(b []byte) []uint16 {
	if len(b) < 2 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// uint32View reinterprets b as a []uint32; b must be 4-aligned.
func uint32View(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func align4(x int) int { return (x + 3) &^ 3 }
func align8(x int) int { return (x + 7) &^ 7 }

// flatBlob is one opened flat table: the raw bytes (mapped or read into
// memory) plus the validated index section. It is immutable after open
// and safe for concurrent readers.
type flatBlob struct {
	data   []byte
	mapped bool // true when data is a syscall mapping that needs Munmap
	n      int  // number of entries
	index  []byte
	blob   []byte // entry section
	deg    []byte // degree section
}

// openFlatBlob validates data as a flat table and returns the blob view.
// The returned blob aliases data.
func openFlatBlob(data []byte) (*flatBlob, error) {
	if !hostLittleEndian() {
		return nil, fmt.Errorf("lut: flat tables are little-endian; this host is big-endian")
	}
	if len(data) < flatHeaderLen {
		return nil, fmt.Errorf("lut: flat table truncated: %d header bytes", len(data))
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// The coefficient views need alignment; buffers from os.ReadFile
		// and syscall.Mmap are 8-aligned, but an arbitrary caller slice
		// (fuzzing, sub-slices) may not be. Realign with a copy.
		aligned := make([]byte, len(data))
		copy(aligned, data)
		data = aligned
	}
	le := binary.LittleEndian
	if [4]byte(data[0:4]) != flatMagic {
		return nil, fmt.Errorf("lut: not a flat table (bad magic %q)", data[0:4])
	}
	if v := le.Uint16(data[4:]); v != flatVersion {
		return nil, fmt.Errorf("lut: flat table format version %d is not the supported %d", v, flatVersion)
	}
	if p := le.Uint16(data[6:]); p != flatEndianProbe {
		return nil, fmt.Errorf("lut: flat table endianness probe %#x, want %#x", p, flatEndianProbe)
	}
	size := uint64(len(data))
	numEntries := le.Uint64(data[8:])
	indexOff := le.Uint64(data[16:])
	blobOff := le.Uint64(data[24:])
	blobLen := le.Uint64(data[32:])
	degOff := le.Uint64(data[40:])
	degLen := le.Uint64(data[48:])
	if fl := le.Uint64(data[56:]); fl != size {
		return nil, fmt.Errorf("lut: flat table declares %d bytes, file has %d", fl, size)
	}
	if numEntries > (size-flatHeaderLen)/flatIndexRec {
		return nil, fmt.Errorf("lut: flat table declares %d entries, impossible in %d bytes", numEntries, size)
	}
	indexLen := numEntries * flatIndexRec
	for _, sec := range [][2]uint64{{indexOff, indexLen}, {blobOff, blobLen}, {degOff, degLen}} {
		if sec[0] < flatHeaderLen || sec[0] > size || sec[1] > size-sec[0] {
			return nil, fmt.Errorf("lut: flat table section [%d,+%d) out of bounds (%d bytes)", sec[0], sec[1], size)
		}
	}
	if blobOff%8 != 0 {
		return nil, fmt.Errorf("lut: flat table entry section misaligned at %d", blobOff)
	}
	if degLen%flatDegreeRec != 0 {
		return nil, fmt.Errorf("lut: flat table degree section length %d not a multiple of %d", degLen, flatDegreeRec)
	}
	b := &flatBlob{
		data:  data,
		n:     int(numEntries),
		index: data[indexOff : indexOff+indexLen],
		blob:  data[blobOff : blobOff+blobLen],
		deg:   data[degOff : degOff+degLen],
	}
	// Validate the whole index up front: keys strictly increasing (binary
	// search correctness, no duplicates), entry extents in bounds and
	// aligned. This touches only the contiguous index pages.
	var prev []byte
	for i := 0; i < b.n; i++ {
		rec := b.index[i*flatIndexRec : (i+1)*flatIndexRec]
		key := rec[:flatKeyLen]
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			return nil, fmt.Errorf("lut: flat table index not strictly sorted at record %d", i)
		}
		prev = key
		n := int(key[0])
		if n < 2 || n > flatKeyLen-2 {
			return nil, fmt.Errorf("lut: flat table record %d: degree %d out of range", i, n)
		}
		entryLen := uint64(le.Uint32(rec[20:]))
		entryOff := le.Uint64(rec[24:])
		if entryOff%8 != 0 || entryOff > blobLen || entryLen > blobLen-entryOff {
			return nil, fmt.Errorf("lut: flat table record %d: entry [%d,+%d) out of bounds", i, entryOff, entryLen)
		}
	}
	return b, nil
}

// find returns the index-record position of key, or (-1, false).
func (b *flatBlob) find(key []byte) (int, bool) {
	if len(key) > flatKeyLen {
		return -1, false
	}
	var padded [flatKeyLen]byte
	copy(padded[:], key)
	i := sort.Search(b.n, func(i int) bool {
		rec := b.index[i*flatIndexRec:]
		return bytes.Compare(rec[:flatKeyLen], padded[:]) >= 0
	})
	if i < b.n && bytes.Equal(b.index[i*flatIndexRec:i*flatIndexRec+flatKeyLen], padded[:]) {
		return i, true
	}
	return -1, false
}

// flatEntry is the validated zero-copy view of one entry payload: all
// slices alias the blob.
type flatEntry struct {
	key       []byte // canonical pattern key (trimmed, aliases the index)
	dim       int
	numSols   int
	totalRows int
	rowCounts []uint16
	w, d      []int16
	topoEnds  []uint32
	topoBlob  []byte
}

// entryAt parses and bounds-checks entry i. Corrupt payloads return an
// error; they can never read outside the blob.
func (b *flatBlob) entryAt(i int) (flatEntry, error) {
	le := binary.LittleEndian
	rec := b.index[i*flatIndexRec : (i+1)*flatIndexRec]
	key := rec[:flatKeyLen]
	n := int(key[0])
	entryLen := int(le.Uint32(rec[20:]))
	entryOff := int(le.Uint64(rec[24:])) // bounds validated at open
	e := b.blob[entryOff : entryOff+entryLen]
	if entryLen < 16 {
		return flatEntry{}, fmt.Errorf("lut: flat entry %d: %d bytes, want >= 16", i, entryLen)
	}
	fe := flatEntry{key: key[:n+2], dim: 2 * (n - 1)}
	numSols := int(le.Uint32(e[0:]))
	totalRows := int(le.Uint32(e[4:]))
	topoArrOff := int(le.Uint32(e[8:]))
	topoBlobLen := int(le.Uint32(e[12:]))
	// All section extents are recomputed from the counts and checked
	// against the declared layout, so a lying header cannot move a view
	// out of the entry.
	rcEnd := 16 + 2*numSols
	wEnd := rcEnd + 2*numSols*fe.dim
	dEnd := wEnd + 2*totalRows*fe.dim
	topoEndsEnd := topoArrOff + 4*numSols
	if numSols < 0 || totalRows < 0 || topoBlobLen < 0 ||
		numSols > entryLen || totalRows > entryLen || // caps the products below
		wEnd < rcEnd || dEnd < wEnd ||
		dEnd > entryLen || topoArrOff != align4(dEnd) ||
		topoEndsEnd < topoArrOff || topoEndsEnd > entryLen ||
		topoBlobLen != entryLen-topoEndsEnd {
		return flatEntry{}, fmt.Errorf("lut: flat entry %d (key %q): inconsistent layout", i, fe.key)
	}
	fe.numSols = numSols
	fe.totalRows = totalRows
	fe.rowCounts = uint16View(e[16:rcEnd])
	fe.w = int16View(e[rcEnd:wEnd])
	fe.d = int16View(e[wEnd:dEnd])
	fe.topoEnds = uint32View(e[topoArrOff:topoEndsEnd])
	fe.topoBlob = e[topoEndsEnd:]
	return fe, nil
}

// wRow returns solution s's wirelength coefficient row.
func (fe *flatEntry) wRow(s int) param.Vec {
	return param.Vec(fe.w[s*fe.dim : (s+1)*fe.dim])
}

// dRow returns delay row r (an absolute row index across the entry).
func (fe *flatEntry) dRow(r int) param.Vec {
	return param.Vec(fe.d[r*fe.dim : (r+1)*fe.dim])
}

// decodeTopo reconstructs stored topology s as a param.Topology. Only
// frontier winners are decoded, so the per-winner allocations sit next to
// the tree materialization they feed.
func (fe *flatEntry) decodeTopo(s int) (param.Topology, error) {
	start := 0
	if s > 0 {
		start = int(fe.topoEnds[s-1])
	}
	end := int(fe.topoEnds[s])
	if start < 0 || end < start || end > len(fe.topoBlob) || (end-start)%5 != 0 {
		return param.Topology{}, fmt.Errorf("lut: flat topology %d of key %q: bad record [%d,%d)", s, fe.key, start, end)
	}
	numNodes := (end - start) / 5
	if numNodes < 1 || numNodes > flatMaxNodes {
		return param.Topology{}, fmt.Errorf("lut: flat topology %d of key %q: %d nodes", s, fe.key, numNodes)
	}
	rec := fe.topoBlob[start:end]
	nodes := make([]param.RankNode, numNodes)
	parents := make([]int16, numNodes)
	for i := 0; i < numNodes; i++ {
		nodes[i] = param.RankNode{
			I:    int8(rec[3*i]),
			J:    int8(rec[3*i+1]),
			Sink: int8(rec[3*i+2]),
		}
	}
	pb := rec[3*numNodes:]
	for i := 0; i < numNodes; i++ {
		p := int16(binary.LittleEndian.Uint16(pb[2*i:]))
		if i == 0 {
			if p != -1 {
				return param.Topology{}, fmt.Errorf("lut: flat topology %d of key %q: root parent %d", s, fe.key, p)
			}
		} else if p < 0 || int(p) >= numNodes {
			return param.Topology{}, fmt.Errorf("lut: flat topology %d of key %q: parent %d out of range", s, fe.key, p)
		}
		parents[i] = p
	}
	return param.Topology{Nodes: nodes, Parent: parents}, nil
}

// decodeEntry materializes a whole flat entry as an in-memory entry:
// the merge and convert paths need builder-backend copies.
func (b *flatBlob) decodeEntry(i int) (string, entry, error) {
	fe, err := b.entryAt(i)
	if err != nil {
		return "", entry{}, err
	}
	ent := entry{
		topos: make([]param.Topology, fe.numSols),
		sols:  make([]param.Solution, fe.numSols),
	}
	dOff := 0
	for s := 0; s < fe.numSols; s++ {
		rows := int(fe.rowCounts[s])
		if dOff+rows > fe.totalRows {
			return "", entry{}, fmt.Errorf("lut: flat entry key %q: row counts exceed total", fe.key)
		}
		sol := param.Solution{W: append(param.Vec(nil), fe.wRow(s)...)}
		for r := 0; r < rows; r++ {
			sol.D = append(sol.D, append(param.Vec(nil), fe.dRow(dOff+r)...))
		}
		dOff += rows
		ent.sols[s] = sol
		ent.topos[s], err = fe.decodeTopo(s)
		if err != nil {
			return "", entry{}, err
		}
	}
	return string(fe.key), ent, nil
}

// parseFlatDegrees reads the degree section of an opened blob.
func parseFlatDegrees(data []byte) ([]DegreeStats, []bool) {
	le := binary.LittleEndian
	n := len(data) / flatDegreeRec
	stats := make([]DegreeStats, n)
	covered := make([]bool, n)
	for i := 0; i < n; i++ {
		r := data[i*flatDegreeRec:]
		stats[i] = DegreeStats{
			Degree:     int(le.Uint32(r[0:])),
			NumIndex:   int(le.Uint32(r[8:])),
			SampledOf:  int(le.Uint32(r[12:])),
			ShardCount: int(le.Uint32(r[16:])),
			ShardsSeen: le.Uint64(r[24:]),
			TotalTopo:  int(le.Uint64(r[32:])),
			Pruned:     int(le.Uint64(r[40:])),
			GenTime:    time.Duration(int64(le.Uint64(r[48:]))),
		}
		covered[i] = le.Uint32(r[4:])&flagCovered != 0
	}
	return stats, covered
}

// SaveFlat writes the table in the flat zero-copy format. Entries come
// from the builder backend and every attached flat backend (so convert
// and merge round trips keep all content); keys are written sorted, the
// layout every flat reader binary-searches.
func (t *Table) SaveFlat(w io.Writer) error {
	keys, entries, err := t.snapshotEntries()
	if err != nil {
		return err
	}
	t.mu.Lock()
	degrees := make([]int, 0, len(t.stats))
	for d := range t.stats {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	degRecs := make([]DegreeStats, len(degrees))
	covered := make([]bool, len(degrees))
	for i, d := range degrees {
		degRecs[i] = t.stats[d]
		covered[i] = t.degrees[d]
	}
	// Degrees marked covered without a stats row (possible after merging
	// old gob files) still need a record, or the coverage would be lost.
	var extra []int
	for d := range t.degrees {
		if _, ok := t.stats[d]; !ok {
			extra = append(extra, d)
		}
	}
	sort.Ints(extra)
	for _, d := range extra {
		degRecs = append(degRecs, DegreeStats{Degree: d})
		covered = append(covered, true)
	}
	t.mu.Unlock()

	le := binary.LittleEndian
	// Pass 1: per-entry layout.
	type entryLayout struct {
		off, size int
	}
	layouts := make([]entryLayout, len(keys))
	blobLen := 0
	for i, k := range keys {
		e := entries[i]
		n := int(k[0])
		dim := 2 * (n - 1)
		numSols := len(e.sols)
		if len(e.topos) != numSols {
			return fmt.Errorf("lut: entry %q has %d topologies but %d solutions", k, len(e.topos), numSols)
		}
		totalRows := 0
		topoBlobLen := 0
		for s := 0; s < numSols; s++ {
			if len(e.sols[s].W) != dim {
				return fmt.Errorf("lut: entry %q solution %d: W dimension %d, want %d", k, s, len(e.sols[s].W), dim)
			}
			for _, row := range e.sols[s].D {
				if len(row) != dim {
					return fmt.Errorf("lut: entry %q solution %d: D dimension %d, want %d", k, s, len(row), dim)
				}
			}
			totalRows += len(e.sols[s].D)
			nn := len(e.topos[s].Nodes)
			if nn < 1 || nn > flatMaxNodes || len(e.topos[s].Parent) != nn {
				return fmt.Errorf("lut: entry %q topology %d: %d nodes / %d parents", k, s, nn, len(e.topos[s].Parent))
			}
			topoBlobLen += 5 * nn
		}
		topoArrOff := align4(16 + 2*numSols + 2*numSols*dim + 2*totalRows*dim)
		size := topoArrOff + 4*numSols + topoBlobLen
		layouts[i] = entryLayout{off: blobLen, size: size}
		blobLen += align8(size)
	}
	indexOff := uint64(flatHeaderLen)
	blobOff := indexOff + uint64(len(keys))*flatIndexRec
	degOff := blobOff + uint64(blobLen)
	degLen := uint64(len(degRecs)) * flatDegreeRec
	fileLen := degOff + degLen

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [flatHeaderLen]byte
	copy(hdr[0:4], flatMagic[:])
	le.PutUint16(hdr[4:], flatVersion)
	le.PutUint16(hdr[6:], flatEndianProbe)
	le.PutUint64(hdr[8:], uint64(len(keys)))
	le.PutUint64(hdr[16:], indexOff)
	le.PutUint64(hdr[24:], blobOff)
	le.PutUint64(hdr[32:], uint64(blobLen))
	le.PutUint64(hdr[40:], degOff)
	le.PutUint64(hdr[48:], degLen)
	le.PutUint64(hdr[56:], fileLen)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [flatIndexRec]byte
	for i, k := range keys {
		clear(rec[:])
		copy(rec[:flatKeyLen], k)
		le.PutUint32(rec[20:], uint32(layouts[i].size))
		le.PutUint64(rec[24:], uint64(layouts[i].off))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	var scratch []byte
	for i, k := range keys {
		e := entries[i]
		n := int(k[0])
		dim := 2 * (n - 1)
		numSols := len(e.sols)
		size := align8(layouts[i].size)
		if cap(scratch) < size {
			scratch = make([]byte, size)
		}
		buf := scratch[:size]
		clear(buf)
		totalRows := 0
		for s := range e.sols {
			totalRows += len(e.sols[s].D)
		}
		topoArrOff := align4(16 + 2*numSols + 2*numSols*dim + 2*totalRows*dim)
		le.PutUint32(buf[0:], uint32(numSols))
		le.PutUint32(buf[4:], uint32(totalRows))
		le.PutUint32(buf[8:], uint32(topoArrOff))
		le.PutUint32(buf[12:], uint32(layouts[i].size-(topoArrOff+4*numSols)))
		rcOff := 16
		wOff := rcOff + 2*numSols
		dOff := wOff + 2*numSols*dim
		row := 0
		for s := range e.sols {
			sol := &e.sols[s]
			le.PutUint16(buf[rcOff+2*s:], uint16(len(sol.D)))
			for kk, c := range sol.W {
				le.PutUint16(buf[wOff+2*(s*dim+kk):], uint16(c))
			}
			for _, dr := range sol.D {
				for kk, c := range dr {
					le.PutUint16(buf[dOff+2*(row*dim+kk):], uint16(c))
				}
				row++
			}
		}
		topoOff := topoArrOff + 4*numSols
		cum := 0
		for s := range e.topos {
			tp := &e.topos[s]
			nn := len(tp.Nodes)
			for j, nd := range tp.Nodes {
				buf[topoOff+cum+3*j] = byte(nd.I)
				buf[topoOff+cum+3*j+1] = byte(nd.J)
				buf[topoOff+cum+3*j+2] = byte(nd.Sink)
			}
			pb := topoOff + cum + 3*nn
			for j, p := range tp.Parent {
				le.PutUint16(buf[pb+2*j:], uint16(p))
			}
			cum += 5 * nn
			le.PutUint32(buf[topoArrOff+4*s:], uint32(cum))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	var dr [flatDegreeRec]byte
	for i := range degRecs {
		s := &degRecs[i]
		clear(dr[:])
		le.PutUint32(dr[0:], uint32(s.Degree))
		if covered[i] {
			le.PutUint32(dr[4:], flagCovered)
		}
		le.PutUint32(dr[8:], uint32(s.NumIndex))
		le.PutUint32(dr[12:], uint32(s.SampledOf))
		le.PutUint32(dr[16:], uint32(s.ShardCount))
		le.PutUint64(dr[24:], s.ShardsSeen)
		le.PutUint64(dr[32:], uint64(s.TotalTopo))
		le.PutUint64(dr[40:], uint64(s.Pruned))
		le.PutUint64(dr[48:], uint64(s.GenTime.Nanoseconds()))
		if _, err := bw.Write(dr[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFlatFile writes the flat table to path atomically (temp + rename),
// like SaveFile does for the gob format.
func (t *Table) SaveFlatFile(path string) error {
	return atomicWrite(path, t.SaveFlat)
}

// atomicWrite streams save(w) into a temp file in path's directory and
// renames it into place only after a successful write and close.
func atomicWrite(path string, save func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if err := save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = ""
	return nil
}

// snapshotEntries returns every entry of the table — builder map plus all
// attached flat backends — as aligned key/entry slices sorted by key.
// Flat entries are materialized (decoded) here; the builder map wins on
// key collisions, then earlier-attached blobs, matching Query's order.
func (t *Table) snapshotEntries() ([]string, []entry, error) {
	t.mu.Lock()
	merged := make(map[string]entry, len(t.entries))
	flats := t.flats
	for k, e := range t.entries {
		merged[k] = e
	}
	t.mu.Unlock()
	for _, b := range flats {
		for i := 0; i < b.n; i++ {
			k, e, err := b.decodeEntry(i)
			if err != nil {
				return nil, nil, err
			}
			if _, ok := merged[k]; !ok {
				merged[k] = e
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]entry, len(keys))
	for i, k := range keys {
		entries[i] = merged[k]
	}
	return keys, entries, nil
}
