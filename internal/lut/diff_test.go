package lut

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"patlabor/internal/hanan"
	"patlabor/internal/param"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// queryReference is the pre-optimization Query: instantiate every stored
// topology as a concrete tree, compact it, and Pareto-filter the
// materialized items. The symbolic fast path must match it byte for byte.
func queryReference(t *Table, net tree.Net) ([]pareto.Item[*tree.Tree], bool, error) {
	n := net.Degree()
	if n < 2 {
		return nil, false, nil
	}
	r := hanan.RanksOf(net)
	canon, tf := hanan.Canonical(r.Pattern)
	t.mu.Lock()
	e, ok := t.entries[canon.Key()]
	t.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	items := make([]pareto.Item[*tree.Tree], 0, len(e.topos))
	for _, topo := range e.topos {
		tr, err := topo.Instantiate(r, tf)
		if err != nil {
			return nil, false, err
		}
		tr.Compact()
		items = append(items, pareto.Item[*tree.Tree]{Sol: tr.Sol(), Val: tr})
	}
	return pareto.FilterItems(items), true, nil
}

func diffTable(t *testing.T, maxDegree int) *Table {
	t.Helper()
	tab := New()
	for d := 2; d <= maxDegree; d++ {
		if err := tab.Generate(d, 0); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestQueryMatchesReference asserts the symbolic fast path returns exactly
// the frontier and trees of materialize-then-filter: same objective
// vectors, same tree structure, on random nets of every covered degree —
// including tie-heavy nets whose repeated coordinates collapse gap lengths
// to zero.
func TestQueryMatchesReference(t *testing.T) {
	maxDegree := 6
	if testing.Short() {
		maxDegree = 5
	}
	tab := diffTable(t, maxDegree)
	rng := rand.New(rand.NewSource(404))
	const trialsPerDegree = 220
	for d := 2; d <= maxDegree; d++ {
		for trial := 0; trial < trialsPerDegree; trial++ {
			span := int64(100000)
			if trial%3 == 1 {
				span = 40 // frequent shared coordinates
			}
			if trial%3 == 2 {
				span = int64(d) // heavy ties, many zero gaps
			}
			net := randNet(rng, d, span)
			got, okG, errG := tab.Query(net)
			want, okW, errW := queryReference(tab, net)
			if errG != nil || errW != nil || okG != okW {
				t.Fatalf("degree %d trial %d net %v: ok=%v/%v err=%v/%v",
					d, trial, net.Pins, okG, okW, errG, errW)
			}
			if len(got) != len(want) {
				t.Fatalf("degree %d trial %d net %v: frontier %v, want %v",
					d, trial, net.Pins, sols(got), sols(want))
			}
			for i := range want {
				if got[i].Sol != want[i].Sol {
					t.Fatalf("degree %d trial %d net %v: frontier %v, want %v",
						d, trial, net.Pins, sols(got), sols(want))
				}
				if !reflect.DeepEqual(got[i].Val, want[i].Val) {
					t.Fatalf("degree %d trial %d net %v point %d: tree %+v, want %+v",
						d, trial, net.Pins, i, got[i].Val, want[i].Val)
				}
			}
		}
	}
}

// TestQueryConcurrentScratch hammers Query from many goroutines so the
// race detector can see the pooled scratch buffers are not shared.
func TestQueryConcurrentScratch(t *testing.T) {
	tab := diffTable(t, 4)
	rng := rand.New(rand.NewSource(7))
	nets := make([]tree.Net, 64)
	want := make([][]pareto.Item[*tree.Tree], len(nets))
	for i := range nets {
		nets[i] = randNet(rng, 2+i%3, 500)
		var err error
		var ok bool
		want[i], ok, err = tab.Query(nets[i])
		if err != nil || !ok {
			t.Fatalf("net %d: ok=%v err=%v", i, ok, err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (seed + rep) % len(nets)
				got, ok, err := tab.Query(nets[i])
				if err != nil || !ok {
					t.Errorf("net %d: ok=%v err=%v", i, ok, err)
					return
				}
				if len(got) != len(want[i]) {
					t.Errorf("net %d: frontier size %d, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j].Sol != want[i][j].Sol {
						t.Errorf("net %d point %d: %v, want %v", i, j, got[j].Sol, want[i][j].Sol)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// oldDiskEntry/oldDiskTable replicate the wire structs the package wrote
// before the format was version-tagged: no Version field, no precompiled
// Sols. Gob matches struct fields by name, so encoding these is exactly
// what a pre-change binary produced.
type oldDiskEntry struct {
	Key   string
	Topos []param.Topology
}

type oldDiskTable struct {
	Entries []oldDiskEntry
	Degrees []int
	Stats   []DegreeStats
}

// TestLoadOldFormat proves gob files written before the version tag and
// the precompiled solutions still load: solutions are recompiled from the
// stored topologies and queries answer identically.
func TestLoadOldFormat(t *testing.T) {
	src := diffTable(t, 4)
	var old oldDiskTable
	src.mu.Lock()
	for k, e := range src.entries {
		old.Entries = append(old.Entries, oldDiskEntry{Key: k, Topos: e.topos})
	}
	for d := range src.degrees {
		old.Degrees = append(old.Degrees, d)
	}
	for _, s := range src.stats {
		old.Stats = append(old.Stats, s)
	}
	src.mu.Unlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.Load(&buf); err != nil {
		t.Fatalf("loading old-format table: %v", err)
	}
	for d := 2; d <= 4; d++ {
		if !loaded.Covers(d) {
			t.Fatalf("old-format load does not cover degree %d", d)
		}
	}
	loaded.mu.Lock()
	for k, e := range loaded.entries {
		if len(e.sols) != len(e.topos) {
			t.Fatalf("entry %q: %d sols for %d topos after old-format load", k, len(e.sols), len(e.topos))
		}
	}
	loaded.mu.Unlock()

	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		net := randNet(rng, 2+rng.Intn(3), 300)
		a, okA, errA := src.Query(net)
		b, okB, errB := loaded.Query(net)
		if errA != nil || errB != nil || okA != okB || len(a) != len(b) {
			t.Fatalf("trial %d: divergence ok=%v/%v err=%v/%v len=%d/%d",
				trial, okA, okB, errA, errB, len(a), len(b))
		}
		for i := range a {
			if a[i].Sol != b[i].Sol || !reflect.DeepEqual(a[i].Val, b[i].Val) {
				t.Fatalf("trial %d point %d: old-format table diverges", trial, i)
			}
		}
	}
}

// TestSaveIncludesVersionAndSols checks the new wire format round trips
// with its version tag and precompiled solutions intact (no lazy
// recompilation needed), and that a future version is rejected.
func TestSaveIncludesVersionAndSols(t *testing.T) {
	src := diffTable(t, 3)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var dt diskTable
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&dt); err != nil {
		t.Fatal(err)
	}
	if dt.Version != diskFormatVersion {
		t.Fatalf("saved version %d, want %d", dt.Version, diskFormatVersion)
	}
	for _, e := range dt.Entries {
		if len(e.Sols) != len(e.Topos) {
			t.Fatalf("entry %q saved %d sols for %d topos", e.Key, len(e.Sols), len(e.Topos))
		}
	}
	var future bytes.Buffer
	dt.Version = diskFormatVersion + 1
	if err := gob.NewEncoder(&future).Encode(dt); err != nil {
		t.Fatal(err)
	}
	if err := New().Load(&future); err == nil {
		t.Fatal("future format version accepted")
	}
}

// TestSaveFileAtomic checks SaveFile leaves no temp litter, survives
// overwriting an existing file, and never exposes a truncated table.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.gob")
	if err := os.WriteFile(path, []byte("garbage from an older run"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := diffTable(t, 3)
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("reloading saved file: %v", err)
	}
	if !loaded.Covers(3) {
		t.Fatal("reloaded table does not cover degree 3")
	}
	glob, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(glob) != 0 {
		t.Fatalf("temp files left behind: %v", glob)
	}
	// A failed save (unwritable directory) must leave the old file intact.
	roDir := filepath.Join(dir, "ro")
	if err := os.Mkdir(roDir, 0o555); err != nil {
		t.Fatal(err)
	}
	roPath := filepath.Join(roDir, "t.gob")
	if err := src.SaveFile(roPath); err == nil {
		if os.Getuid() != 0 { // root ignores directory permissions
			t.Fatal("SaveFile into a read-only directory succeeded")
		}
	}
}

// TestQueryCounters checks the hit/miss/error accounting: instantiation
// failures count as errors, not hits, and the eval counters expose the
// evaluated-vs-materialized savings.
func TestQueryCounters(t *testing.T) {
	tab := diffTable(t, 4)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 10; i++ {
		if _, ok, err := tab.Query(randNet(rng, 4, 200)); err != nil || !ok {
			t.Fatalf("query %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, err := tab.Query(randNet(rng, 9, 200)); err != nil || ok {
		t.Fatalf("uncovered degree: ok=%v err=%v", ok, err)
	}
	hits, misses := tab.Counters()
	if hits != 10 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 10/1", hits, misses)
	}
	if e := tab.QueryErrors(); e != 0 {
		t.Fatalf("query errors = %d, want 0", e)
	}
	evaluated, materialized := tab.EvalCounters()
	if evaluated <= 0 || materialized <= 0 || materialized > evaluated {
		t.Fatalf("eval counters: evaluated=%d materialized=%d", evaluated, materialized)
	}

	// Corrupt one entry so instantiation fails: a rank coordinate outside
	// the pattern's grid makes Instantiate error out.
	net := randNet(rng, 4, 200)
	r := hanan.RanksOf(net)
	canon, _ := hanan.Canonical(r.Pattern)
	key := canon.Key()
	tab.mu.Lock()
	e := tab.entries[key]
	bad := entry{topos: make([]param.Topology, len(e.topos)), sols: e.sols}
	copy(bad.topos, e.topos)
	for i := range bad.topos {
		nodes := append([]param.RankNode(nil), bad.topos[i].Nodes...)
		nodes[0].I = 120
		bad.topos[i] = param.Topology{Nodes: nodes, Parent: bad.topos[i].Parent}
	}
	tab.entries[key] = bad
	tab.publishLocked()
	tab.mu.Unlock()

	if _, ok, err := tab.Query(net); err == nil || ok {
		t.Fatalf("corrupted entry: ok=%v err=%v, want error", ok, err)
	}
	if e := tab.QueryErrors(); e != 1 {
		t.Fatalf("query errors = %d, want 1", e)
	}
	if h, m := tab.Counters(); h != 10 || m != 1 {
		t.Fatalf("hits=%d misses=%d after error, want 10/1 (error must not count as hit)", h, m)
	}
}
