package lut

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// FuzzFlatLoad throws arbitrary bytes at the flat-format loader. The
// contract under test: corrupt, truncated, or bit-flipped input either
// fails to load or loads into a table whose every access stays in bounds
// — never a panic, index error, or out-of-range read. Both outcomes are
// exercised: blobs that open are queried across the covered degrees and
// fully decoded through both save paths (the convert direction reads
// every entry payload).
//
// Seeds include a genuine saved table plus its truncations and targeted
// header mutations; testdata/fuzz/FuzzFlatLoad holds committed degenerate
// headers found interesting by earlier runs.
func FuzzFlatLoad(f *testing.F) {
	src := New()
	for d := 2; d <= 3; d++ {
		if err := src.Generate(d, 1); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.SaveFlat(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 3, 4, 63, 64, 65, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	for _, off := range []int{5, 8, 16, 20, 24, 32, 40, 48, 56, 64, 70, 84, 88} {
		if off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := New()
		if err := tab.LoadFlat(append([]byte(nil), data...)); err != nil {
			return
		}
		// The blob opened: every downstream path must be memory-safe.
		rng := rand.New(rand.NewSource(9))
		for d := 2; d <= 6; d++ {
			for i := 0; i < 2; i++ {
				_, _, _ = tab.Query(randNet(rng, d, 8))
			}
		}
		// Full decode of every entry (the convert/merge path); errors are
		// fine, panics are the bug.
		_ = tab.SaveFlat(io.Discard)
		_ = tab.Save(io.Discard)
	})
}
