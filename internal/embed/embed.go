// Package embed lowers abstract routing trees to concrete rectilinear
// geometry: every tree edge becomes one or two axis-parallel metal
// segments (an L-shape), and metal length is measured as the length of
// the *union* of segments per track, so wire shared by several tree edges
// is counted once — the metric a detailed router actually pays.
//
// The tree model of internal/tree charges each edge its full L1 length;
// after tree.Steinerize the two metrics coincide on well-formed trees,
// which the tests assert. For arbitrary trees MetalLength(t) can be
// smaller than t.Wirelength(), and the difference is exactly the
// overlapping metal a Steinerisation pass would expose.
package embed

import (
	"cmp"
	"slices"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Segment is one axis-parallel wire piece. A and B are endpoints with
// A <= B in the running coordinate; Horizontal reports the orientation.
// Zero-length segments are never produced.
type Segment struct {
	A, B       geom.Point
	Horizontal bool
}

// Len returns the segment length.
func (s Segment) Len() int64 { return geom.Dist(s.A, s.B) }

// Corner selects the bend of an L-shape embedding.
type Corner int

const (
	// LowerL bends at (child.X, parent.Y): horizontal first.
	LowerL Corner = iota
	// UpperL bends at (parent.X, child.Y): vertical first.
	UpperL
)

// Tree embeds every edge of t as an L-shape with the given corner rule
// and returns the segments (straight edges produce one segment, bent
// edges two).
func Tree(t *tree.Tree, corner Corner) []Segment {
	var segs []Segment
	for i, p := range t.Parent {
		if p < 0 {
			continue
		}
		segs = append(segs, Edge(t.Nodes[p].P, t.Nodes[i].P, corner)...)
	}
	return segs
}

// Edge embeds the edge from a to b as up to two segments.
func Edge(a, b geom.Point, corner Corner) []Segment {
	if a == b {
		return nil
	}
	var bend geom.Point
	if corner == LowerL {
		bend = geom.Pt(b.X, a.Y)
	} else {
		bend = geom.Pt(a.X, b.Y)
	}
	var segs []Segment
	for _, pair := range [2][2]geom.Point{{a, bend}, {bend, b}} {
		p, q := pair[0], pair[1]
		if p == q {
			continue
		}
		s := Segment{A: p, B: q, Horizontal: p.Y == q.Y}
		// Normalise endpoint order.
		if (s.Horizontal && s.A.X > s.B.X) || (!s.Horizontal && s.A.Y > s.B.Y) {
			s.A, s.B = s.B, s.A
		}
		segs = append(segs, s)
	}
	return segs
}

// MetalLength returns the total length of the union of the segments:
// overlapping pieces on the same track are counted once. Crossing
// perpendicular wires are independent tracks and do not interact.
func MetalLength(segs []Segment) int64 {
	type track struct {
		horizontal bool
		fixed      int64 // y for horizontal tracks, x for vertical
	}
	intervals := map[track][][2]int64{}
	for _, s := range segs {
		var tr track
		var iv [2]int64
		if s.Horizontal {
			tr = track{horizontal: true, fixed: s.A.Y}
			iv = [2]int64{s.A.X, s.B.X}
		} else {
			tr = track{horizontal: false, fixed: s.A.X}
			iv = [2]int64{s.A.Y, s.B.Y}
		}
		intervals[tr] = append(intervals[tr], iv)
	}
	var total int64
	for _, ivs := range intervals {
		total += unionLength(ivs)
	}
	return total
}

// unionLength returns the measure of the union of 1-D intervals.
func unionLength(ivs [][2]int64) int64 {
	// Total order on (lo, hi); the union measure is tie-insensitive but
	// the deterministic order keeps the sweep reproducible.
	slices.SortFunc(ivs, func(a, b [2]int64) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	})
	var total int64
	curLo, curHi := ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curHi {
			total += curHi - curLo
			curLo, curHi = iv[0], iv[1]
			continue
		}
		if iv[1] > curHi {
			curHi = iv[1]
		}
	}
	return total + (curHi - curLo)
}

// TreeMetal returns the overlap-aware metal length of the tree under the
// given corner rule.
func TreeMetal(t *tree.Tree, corner Corner) int64 {
	return MetalLength(Tree(t, corner))
}

// Overlap returns the metal the tree model double-counts: Wirelength
// minus the best metal length over both uniform corner rules. Zero means
// the tree's edges are disjoint as drawn.
func Overlap(t *tree.Tree) int64 {
	w := t.Wirelength()
	m := TreeMetal(t, LowerL)
	if alt := TreeMetal(t, UpperL); alt > m {
		m = alt
	}
	return w - m
}
