package embed

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func TestEdgeStraight(t *testing.T) {
	segs := Edge(geom.Pt(0, 0), geom.Pt(5, 0), LowerL)
	if len(segs) != 1 || !segs[0].Horizontal || segs[0].Len() != 5 {
		t.Fatalf("segs = %+v", segs)
	}
	segs = Edge(geom.Pt(2, 7), geom.Pt(2, 3), UpperL)
	if len(segs) != 1 || segs[0].Horizontal || segs[0].Len() != 4 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].A.Y > segs[0].B.Y {
		t.Fatal("segment endpoints not normalised")
	}
	if out := Edge(geom.Pt(1, 1), geom.Pt(1, 1), LowerL); out != nil {
		t.Fatalf("zero edge = %+v", out)
	}
}

func TestEdgeBends(t *testing.T) {
	// LowerL from (0,0) to (4,3): horizontal at y=0 then vertical at x=4.
	segs := Edge(geom.Pt(0, 0), geom.Pt(4, 3), LowerL)
	if len(segs) != 2 {
		t.Fatalf("segs = %+v", segs)
	}
	if !segs[0].Horizontal || segs[0].A != geom.Pt(0, 0) || segs[0].B != geom.Pt(4, 0) {
		t.Fatalf("first segment = %+v", segs[0])
	}
	if segs[1].Horizontal || segs[1].A != geom.Pt(4, 0) || segs[1].B != geom.Pt(4, 3) {
		t.Fatalf("second segment = %+v", segs[1])
	}
	// UpperL bends the other way.
	segs = Edge(geom.Pt(0, 0), geom.Pt(4, 3), UpperL)
	if segs[0].Horizontal || segs[1].A != geom.Pt(0, 3) {
		t.Fatalf("UpperL = %+v", segs)
	}
}

func TestMetalLengthDeduplicatesOverlap(t *testing.T) {
	// Two horizontal wires overlapping on [2,5] of y=0: union is [0,5]+[2,8] = 8.
	segs := []Segment{
		{A: geom.Pt(0, 0), B: geom.Pt(5, 0), Horizontal: true},
		{A: geom.Pt(2, 0), B: geom.Pt(8, 0), Horizontal: true},
	}
	if got := MetalLength(segs); got != 8 {
		t.Fatalf("MetalLength = %d, want 8", got)
	}
	// Different tracks do not merge.
	segs[1].A = geom.Pt(2, 1)
	segs[1].B = geom.Pt(8, 1)
	if got := MetalLength(segs); got != 11 {
		t.Fatalf("MetalLength = %d, want 11", got)
	}
	// Crossing perpendicular wires are independent.
	cross := []Segment{
		{A: geom.Pt(0, 1), B: geom.Pt(4, 1), Horizontal: true},
		{A: geom.Pt(2, 0), B: geom.Pt(2, 3), Horizontal: false},
	}
	if got := MetalLength(cross); got != 7 {
		t.Fatalf("MetalLength cross = %d, want 7", got)
	}
}

func TestUnionLengthDisjointAndNested(t *testing.T) {
	if got := unionLength([][2]int64{{0, 2}, {5, 9}}); got != 6 {
		t.Fatalf("disjoint = %d", got)
	}
	if got := unionLength([][2]int64{{0, 10}, {2, 5}}); got != 10 {
		t.Fatalf("nested = %d", got)
	}
}

func TestStarOverlapDetected(t *testing.T) {
	// Two sinks in the same direction: the star double-counts the trunk.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(6, 0))
	star := tree.Star(net)
	if star.Wirelength() != 16 {
		t.Fatalf("wirelength = %d", star.Wirelength())
	}
	if m := TreeMetal(star, LowerL); m != 10 {
		t.Fatalf("metal = %d, want 10 (shared trunk counted once)", m)
	}
	if o := Overlap(star); o != 6 {
		t.Fatalf("overlap = %d, want 6", o)
	}
}

func TestMetalNeverExceedsWirelength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(10)
		pins := make([]geom.Point, n)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(200), rng.Int63n(200))
		}
		net := tree.Net{Pins: pins}
		for _, tr := range []*tree.Tree{tree.Star(net), rsmt.MST(net)} {
			w := tr.Wirelength()
			for _, c := range []Corner{LowerL, UpperL} {
				if m := TreeMetal(tr, c); m > w {
					t.Fatalf("trial %d: metal %d exceeds wirelength %d", trial, m, w)
				}
			}
			if Overlap(tr) < 0 {
				t.Fatalf("trial %d: negative overlap", trial)
			}
		}
	}
}

func TestSteinerizedTreesHaveLittleOverlap(t *testing.T) {
	// Steinerisation extracts shared trunks: overlap must shrink to (near)
	// zero relative to the star's.
	rng := rand.New(rand.NewSource(4))
	reduced := 0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		pins := make([]geom.Point, 6)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(100), rng.Int63n(100))
		}
		net := tree.Net{Pins: geom.DedupPoints(pins)}
		if net.Degree() < 3 {
			continue
		}
		star := tree.Star(net)
		before := Overlap(star)
		st := star.Clone()
		st.Steinerize()
		after := Overlap(st)
		if after > before {
			t.Fatalf("trial %d: Steinerize increased overlap %d -> %d", trial, before, after)
		}
		if after < before {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatal("Steinerize never reduced overlap across trials")
	}
}
