package pareto

import (
	"fmt"
	"testing"
)

// benchSols builds a deterministic pseudo-random solution cloud of size n.
// A linear congruential generator keeps the input identical across runs
// and Go versions (no math/rand in exact packages).
func benchSols(n int) []Sol {
	sols := make([]Sol, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state >> 33)
	}
	for i := range sols {
		sols[i] = Sol{W: next() % 100000, D: next() % 100000}
	}
	return sols
}

// BenchmarkParetoFilter measures Filter, the sort-then-sweep frontier
// extraction on bare objective vectors. The sort dominates the cost, so
// this benchmark records the sort.Slice → slices.SortFunc conversion
// (reflection-based swapper vs monomorphised compare).
func BenchmarkParetoFilter(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		sols := benchSols(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Filter(sols)
			}
		})
	}
}

// BenchmarkParetoFilterItems measures the payload-carrying variant used by
// the tree-maintaining algorithms (stable sort + sweep over Item[T]).
func BenchmarkParetoFilterItems(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		sols := benchSols(n)
		items := make([]Item[int], n)
		for i, s := range sols {
			items[i] = Item[int]{Sol: s, Val: i}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FilterItems(items)
			}
		})
	}
}
