// Package pareto implements the exact bicriterion solution algebra used by
// every algorithm in the library: solution vectors (w,d), Pareto dominance
// and filtering, the shift (S+x) and combine (S⊕S') operators of the
// Pareto-DW recurrence, and quality indicators (hypervolume, coverage)
// used by the experiment harness.
//
// Both objectives are minimised. All values are exact int64; dominance is
// exact with no tolerances.
package pareto

import (
	"cmp"
	"fmt"
	"slices"
)

// Sol is one solution's objective vector: total wirelength W and delay D
// (the maximum source-to-sink path length).
type Sol struct {
	W, D int64
}

// String renders the solution as "(w,d)".
func (s Sol) String() string { return fmt.Sprintf("(%d,%d)", s.W, s.D) }

// Dominates reports whether s weakly dominates t: s.W<=t.W and s.D<=t.D.
// Every solution weakly dominates itself.
func (s Sol) Dominates(t Sol) bool { return s.W <= t.W && s.D <= t.D }

// StrictlyDominates reports whether s dominates t and s != t.
func (s Sol) StrictlyDominates(t Sol) bool { return s.Dominates(t) && s != t }

// Less orders solutions lexicographically by (W, D). It is the canonical
// order of a filtered Pareto set.
func (s Sol) Less(t Sol) bool {
	if s.W != t.W {
		return s.W < t.W
	}
	return s.D < t.D
}

// Compare is the three-way form of Less: a total order on solution
// vectors, lexicographic by (W, D). It is the comparator every canonical
// sort in the library uses.
func (s Sol) Compare(t Sol) int {
	if c := cmp.Compare(s.W, t.W); c != 0 {
		return c
	}
	return cmp.Compare(s.D, t.D)
}

// SortSols sorts sols in place in canonical (W asc, D asc) order.
func SortSols(sols []Sol) {
	slices.SortFunc(sols, Sol.Compare)
}

// Filter returns the Pareto frontier of sols: all solutions not strictly
// dominated by another, with duplicates removed, in canonical order
// (W strictly increasing, D strictly decreasing). The input is not
// modified. Runs in O(k log k).
func Filter(sols []Sol) []Sol {
	if len(sols) == 0 {
		return nil
	}
	cp := append([]Sol(nil), sols...)
	SortSols(cp)
	out := cp[:0]
	bestD := int64(1<<63 - 1)
	for _, s := range cp {
		if s.D < bestD {
			out = append(out, s)
			bestD = s.D
		}
	}
	return append([]Sol(nil), out...)
}

// IsFrontier reports whether sols is already a canonical Pareto frontier:
// W strictly increasing and D strictly decreasing.
func IsFrontier(sols []Sol) bool {
	for i := 1; i < len(sols); i++ {
		if sols[i].W <= sols[i-1].W || sols[i].D >= sols[i-1].D {
			return false
		}
	}
	return true
}

// Shift returns {(w+x, d+x) | (w,d) in s}: the objective change from
// extending every tree in s by a wire of length x between its root and a
// new root (the S+x operator of the Pareto-DW recurrence).
func Shift(s []Sol, x int64) []Sol {
	out := make([]Sol, len(s))
	for i, v := range s {
		out[i] = Sol{W: v.W + x, D: v.D + x}
	}
	return out
}

// Combine returns the Pareto filter of
// {(w1+w2, max(d1,d2)) | s1 in a, s2 in b}: the objective change from
// joining two subtrees at a common root (the S⊕S' operator).
func Combine(a, b []Sol) []Sol {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	prod := make([]Sol, 0, len(a)*len(b))
	for _, s1 := range a {
		for _, s2 := range b {
			prod = append(prod, Sol{W: s1.W + s2.W, D: max64(s1.D, s2.D)})
		}
	}
	return Filter(prod)
}

// Merge returns the Pareto filter of the union of the given sets.
func Merge(sets ...[]Sol) []Sol {
	var all []Sol
	for _, s := range sets {
		all = append(all, s...)
	}
	return Filter(all)
}

// Contains reports whether the frontier (any solution set) contains a
// solution weakly dominating s. When sols is a true Pareto frontier of the
// instance this tests whether s is achievable at least as well.
func Contains(sols []Sol, s Sol) bool {
	for _, t := range sols {
		if t.Dominates(s) {
			return true
		}
	}
	return false
}

// CountCovered returns how many solutions of truth are matched by found:
// a truth solution is covered when found contains a solution weakly
// dominating it. With truth the exact frontier, covered == len(truth)
// iff found attains every Pareto-optimal point.
func CountCovered(found, truth []Sol) int {
	n := 0
	for _, s := range truth {
		if Contains(found, s) {
			n++
		}
	}
	return n
}

// Hypervolume returns the area dominated by the frontier within the
// rectangle bounded by ref (solutions worse than ref contribute only the
// part inside). Larger is better. The frontier need not be filtered.
//
//patlint:ignore exact quality indicator reported to harnesses only; never feeds routing arithmetic
func Hypervolume(sols []Sol, ref Sol) float64 {
	// Iterate the filtered frontier in W order; each solution contributes a
	// horizontal strip of height (prevD - s.D) truncated at ref.
	f := Filter(sols)
	var hv float64
	prevD := ref.D
	for _, s := range f {
		if s.W >= ref.W {
			break
		}
		d := s.D
		if d >= prevD {
			continue
		}
		top := prevD
		if top > ref.D {
			top = ref.D
		}
		if d < top {
			hv += float64(ref.W-s.W) * float64(top-d)
			prevD = d
		}
	}
	return hv
}

// ApproxRatio returns the smallest c >= 1 such that for every solution t in
// truth there is s in found with s.W <= c*t.W and s.D <= c*t.D (Definition 2
// of the paper). It returns +Inf-like value 1e18 when found is empty, and 1
// when found covers truth exactly. Zero-valued objectives in truth are
// treated as requiring exact attainment.
//
//patlint:ignore exact quality indicator reported to harnesses only; never feeds routing arithmetic
func ApproxRatio(found, truth []Sol) float64 {
	if len(truth) == 0 {
		return 1
	}
	if len(found) == 0 {
		return 1e18
	}
	worst := 1.0
	for _, t := range truth {
		best := 1e18
		for _, s := range found {
			c := 1.0
			if t.W > 0 {
				if r := float64(s.W) / float64(t.W); r > c {
					c = r
				}
			} else if s.W > 0 {
				continue
			}
			if t.D > 0 {
				if r := float64(s.D) / float64(t.D); r > c {
					c = r
				}
			} else if s.D > 0 {
				continue
			}
			if c < best {
				best = c
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
