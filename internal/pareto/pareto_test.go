package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Sol{W: 1, D: 2}
	b := Sol{W: 2, D: 2}
	c := Sol{W: 2, D: 1}
	if !a.Dominates(a) {
		t.Error("self-dominance must hold (weak)")
	}
	if a.StrictlyDominates(a) {
		t.Error("no strict self-dominance")
	}
	if !a.Dominates(b) || !a.StrictlyDominates(b) {
		t.Error("a should dominate b")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("a and c are incomparable")
	}
}

func TestFilterBasic(t *testing.T) {
	in := []Sol{{5, 5}, {3, 7}, {5, 5}, {7, 3}, {4, 6}, {6, 6}, {3, 8}}
	got := Filter(in)
	want := []Sol{{3, 7}, {4, 6}, {5, 5}, {7, 3}}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Filter = %v, want %v", got, want)
		}
	}
}

func TestFilterEmptyAndSingle(t *testing.T) {
	if got := Filter(nil); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
	got := Filter([]Sol{{1, 1}})
	if len(got) != 1 || got[0] != (Sol{1, 1}) {
		t.Errorf("Filter single = %v", got)
	}
}

func TestFilterProperties(t *testing.T) {
	f := func(raw []struct{ W, D uint8 }) bool {
		in := make([]Sol, len(raw))
		for i, r := range raw {
			in[i] = Sol{int64(r.W), int64(r.D)}
		}
		out := Filter(in)
		if !IsFrontier(out) {
			return false
		}
		// Every input is weakly dominated by some output.
		for _, s := range in {
			if !Contains(out, s) {
				return false
			}
		}
		// Every output appears in the input.
		inSet := make(map[Sol]bool)
		for _, s := range in {
			inSet[s] = true
		}
		for _, s := range out {
			if !inSet[s] {
				return false
			}
		}
		// Idempotence.
		again := Filter(out)
		if len(again) != len(out) {
			return false
		}
		for i := range out {
			if again[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShift(t *testing.T) {
	in := []Sol{{1, 2}, {3, 4}}
	out := Shift(in, 10)
	if out[0] != (Sol{11, 12}) || out[1] != (Sol{13, 14}) {
		t.Fatalf("Shift = %v", out)
	}
	if in[0] != (Sol{1, 2}) {
		t.Fatal("Shift modified its input")
	}
}

func TestCombine(t *testing.T) {
	a := []Sol{{1, 5}, {2, 3}}
	b := []Sol{{4, 1}}
	got := Combine(a, b)
	// Products: (5, 5), (6, 3). Both on the frontier.
	want := []Sol{{5, 5}, {6, 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Combine = %v, want %v", got, want)
	}
	if Combine(nil, b) != nil || Combine(a, nil) != nil {
		t.Fatal("Combine with empty operand must be empty")
	}
}

func TestCombineCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := randFront(rng, 1+rng.Intn(5))
		b := randFront(rng, 1+rng.Intn(5))
		ab, ba := Combine(a, b), Combine(b, a)
		if len(ab) != len(ba) {
			t.Fatalf("Combine not commutative: %v vs %v", ab, ba)
		}
		for i := range ab {
			if ab[i] != ba[i] {
				t.Fatalf("Combine not commutative: %v vs %v", ab, ba)
			}
		}
	}
}

func TestCombineAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randFront(rng, 1+rng.Intn(4))
		b := randFront(rng, 1+rng.Intn(4))
		c := randFront(rng, 1+rng.Intn(4))
		l := Combine(Combine(a, b), c)
		r := Combine(a, Combine(b, c))
		if len(l) != len(r) {
			t.Fatalf("Combine not associative: %v vs %v", l, r)
		}
		for i := range l {
			if l[i] != r[i] {
				t.Fatalf("Combine not associative: %v vs %v", l, r)
			}
		}
	}
}

func randFront(rng *rand.Rand, k int) []Sol {
	sols := make([]Sol, k)
	for i := range sols {
		sols[i] = Sol{W: rng.Int63n(50), D: rng.Int63n(50)}
	}
	return Filter(sols)
}

func TestMerge(t *testing.T) {
	a := []Sol{{1, 9}, {5, 5}}
	b := []Sol{{2, 7}, {5, 6}}
	got := Merge(a, b)
	want := []Sol{{1, 9}, {2, 7}, {5, 5}}
	if len(got) != len(want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", got, want)
		}
	}
}

func TestCountCovered(t *testing.T) {
	truth := []Sol{{1, 9}, {5, 5}, {9, 1}}
	found := []Sol{{1, 9}, {6, 5}, {9, 1}}
	if got := CountCovered(found, truth); got != 2 {
		t.Fatalf("CountCovered = %d, want 2", got)
	}
	// A dominating solution also covers.
	found2 := []Sol{{0, 0}}
	if got := CountCovered(found2, truth); got != 3 {
		t.Fatalf("CountCovered dominating = %d, want 3", got)
	}
}

func TestHypervolume(t *testing.T) {
	ref := Sol{10, 10}
	// Single point (5,5): dominated area = 5*5 = 25.
	if hv := Hypervolume([]Sol{{5, 5}}, ref); hv != 25 {
		t.Fatalf("Hypervolume single = %v, want 25", hv)
	}
	// Two points (2,8),(8,2): strips (10-2)*(10-8)=16 and (10-8)*(8-2)=12.
	if hv := Hypervolume([]Sol{{2, 8}, {8, 2}}, ref); hv != 28 {
		t.Fatalf("Hypervolume two = %v, want 28", hv)
	}
	// Points outside ref contribute nothing.
	if hv := Hypervolume([]Sol{{11, 1}, {1, 11}}, ref); hv != 0 {
		t.Fatalf("Hypervolume outside = %v, want 0", hv)
	}
	if hv := Hypervolume(nil, ref); hv != 0 {
		t.Fatalf("Hypervolume empty = %v, want 0", hv)
	}
}

func TestHypervolumeMonotone(t *testing.T) {
	// Adding a point never decreases hypervolume.
	rng := rand.New(rand.NewSource(4))
	ref := Sol{100, 100}
	for trial := 0; trial < 100; trial++ {
		base := randFront(rng, 1+rng.Intn(6))
		hv0 := Hypervolume(base, ref)
		extra := Sol{rng.Int63n(120), rng.Int63n(120)}
		hv1 := Hypervolume(append(append([]Sol(nil), base...), extra), ref)
		if hv1 < hv0 {
			t.Fatalf("hypervolume decreased: %v + %v: %v -> %v", base, extra, hv0, hv1)
		}
	}
}

func TestApproxRatio(t *testing.T) {
	truth := []Sol{{10, 10}}
	if r := ApproxRatio([]Sol{{10, 10}}, truth); r != 1 {
		t.Fatalf("exact cover ratio = %v, want 1", r)
	}
	if r := ApproxRatio([]Sol{{20, 10}}, truth); r != 2 {
		t.Fatalf("ratio = %v, want 2", r)
	}
	if r := ApproxRatio([]Sol{{15, 12}, {30, 10}}, truth); r != 1.5 {
		t.Fatalf("ratio = %v, want 1.5", r)
	}
	if r := ApproxRatio(nil, truth); r != 1e18 {
		t.Fatalf("empty found ratio = %v", r)
	}
	if r := ApproxRatio([]Sol{{1, 1}}, nil); r != 1 {
		t.Fatalf("empty truth ratio = %v", r)
	}
}

func TestIsFrontier(t *testing.T) {
	if !IsFrontier([]Sol{{1, 9}, {2, 8}}) {
		t.Error("valid frontier rejected")
	}
	if IsFrontier([]Sol{{1, 9}, {2, 9}}) {
		t.Error("non-decreasing D accepted")
	}
	if IsFrontier([]Sol{{2, 9}, {1, 8}}) {
		t.Error("decreasing W accepted")
	}
	if !IsFrontier(nil) || !IsFrontier([]Sol{{3, 3}}) {
		t.Error("trivial frontiers rejected")
	}
}

func TestHypervolumeMatchesPixelCount(t *testing.T) {
	// Cross-check the strip formula against brute-force unit-cell counting.
	rng := rand.New(rand.NewSource(5))
	ref := Sol{W: 30, D: 30}
	for trial := 0; trial < 100; trial++ {
		front := randFront(rng, 1+rng.Intn(6))
		want := 0
		for x := int64(0); x < ref.W; x++ {
			for y := int64(0); y < ref.D; y++ {
				// Cell [x,x+1)x[y,y+1) dominated iff some solution has
				// W <= x and D <= y.
				if Contains(front, Sol{W: x, D: y}) {
					want++
				}
			}
		}
		if got := Hypervolume(front, ref); got != float64(want) {
			t.Fatalf("trial %d: Hypervolume = %v, pixel count %d (front %v)",
				trial, got, want, front)
		}
	}
}
