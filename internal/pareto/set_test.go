package pareto

import (
	"math/rand"
	"testing"
)

func TestSetAddBasic(t *testing.T) {
	s := &Set[string]{}
	if !s.Add(Sol{5, 5}, "a") {
		t.Fatal("first add rejected")
	}
	if s.Add(Sol{6, 6}, "dominated") {
		t.Fatal("dominated add accepted")
	}
	if s.Add(Sol{5, 5}, "duplicate") {
		t.Fatal("duplicate add accepted")
	}
	if !s.Add(Sol{3, 7}, "b") || !s.Add(Sol{7, 3}, "c") {
		t.Fatal("incomparable adds rejected")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// (4,4) evicts (5,5) but not (3,7)/(7,3).
	if !s.Add(Sol{4, 4}, "d") {
		t.Fatal("dominating add rejected")
	}
	sols := s.Sols()
	want := []Sol{{3, 7}, {4, 4}, {7, 3}}
	if len(sols) != len(want) {
		t.Fatalf("Sols = %v, want %v", sols, want)
	}
	for i := range want {
		if sols[i] != want[i] {
			t.Fatalf("Sols = %v, want %v", sols, want)
		}
	}
}

func TestSetAddEqualW(t *testing.T) {
	s := &Set[int]{}
	s.Add(Sol{5, 5}, 1)
	if s.Add(Sol{5, 6}, 2) {
		t.Fatal("same-W worse-D accepted")
	}
	if !s.Add(Sol{5, 4}, 3) {
		t.Fatal("same-W better-D rejected")
	}
	if s.Len() != 1 || s.Items()[0].Val != 3 {
		t.Fatalf("set = %v", s.Items())
	}
}

func TestSetMatchesFilter(t *testing.T) {
	// Property: incremental Set equals batch Filter on random streams.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		var all []Sol
		s := &Set[int]{}
		for i := 0; i < n; i++ {
			sol := Sol{W: rng.Int63n(20), D: rng.Int63n(20)}
			all = append(all, sol)
			s.Add(sol, i)
		}
		want := Filter(all)
		got := s.Sols()
		if len(got) != len(want) {
			t.Fatalf("set %v != filter %v (input %v)", got, want, all)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("set %v != filter %v", got, want)
			}
		}
		if !IsFrontier(got) {
			t.Fatalf("set invariant broken: %v", got)
		}
	}
}

func TestSetMaxDelayItem(t *testing.T) {
	s := &Set[string]{}
	if _, ok := s.MaxDelayItem(); ok {
		t.Fatal("empty set returned an item")
	}
	s.Add(Sol{3, 9}, "slow")
	s.Add(Sol{9, 3}, "fast")
	it, ok := s.MaxDelayItem()
	if !ok || it.Val != "slow" || it.Sol.D != 9 {
		t.Fatalf("MaxDelayItem = %+v, %v", it, ok)
	}
}

func TestFilterItemsKeepsFirstOnTie(t *testing.T) {
	items := []Item[string]{
		{Sol{5, 5}, "first"},
		{Sol{5, 5}, "second"},
		{Sol{9, 9}, "dominated"},
	}
	out := FilterItems(items)
	if len(out) != 1 || out[0].Val != "first" {
		t.Fatalf("FilterItems = %+v", out)
	}
}

func TestFilterItemsEmpty(t *testing.T) {
	if out := FilterItems[int](nil); out != nil {
		t.Fatalf("FilterItems(nil) = %v", out)
	}
}

func TestCapItems(t *testing.T) {
	items := make([]Item[string], 9)
	for i := range items {
		items[i] = Item[string]{Sol: Sol{W: int64(i), D: int64(9 - i)}}
	}
	out := CapItems(items, 4)
	if len(out) != 4 {
		t.Fatalf("CapItems kept %d of 9 at k=4", len(out))
	}
	if out[0].Sol != items[0].Sol || out[len(out)-1].Sol != items[8].Sol {
		t.Fatalf("CapItems dropped an endpoint: %+v", out)
	}
	// Even spread: indices must be strictly increasing in W.
	for i := 1; i < len(out); i++ {
		if out[i].Sol.W <= out[i-1].Sol.W {
			t.Fatalf("CapItems not increasing at %d: %+v", i, out)
		}
	}
	if got := CapItems(items, 0); len(got) != 9 {
		t.Fatal("k=0 must keep all")
	}
	if got := CapItems(items, 1); len(got) != 1 || got[0].Sol != items[0].Sol {
		t.Fatalf("k=1 must keep exactly the first item, got %+v", got)
	}
	if got := CapItems(items[:3], 7); len(got) != 3 {
		t.Fatal("k above size must keep all")
	}
}
