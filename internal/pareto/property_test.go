package pareto

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFilterPropertiesRandom is the property test of the Pareto filter on
// random solution slices with heavy ties and duplicates: the output is
// strictly sorted (W strictly increasing, D strictly decreasing),
// mutually non-dominated, idempotent (Filter(Filter(xs)) == Filter(xs)),
// drawn from the input, and covers every input point. It complements the
// quick-check style TestFilterProperties in pareto_test.go.
func TestFilterPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(60)
		span := int64(1 + rng.Intn(40)) // small spans force duplicates and ties
		xs := make([]Sol, n)
		for i := range xs {
			xs[i] = Sol{W: rng.Int63n(span), D: rng.Int63n(span)}
		}
		orig := make([]Sol, len(xs))
		copy(orig, xs)
		f := Filter(xs)

		if !reflect.DeepEqual(xs, orig) {
			t.Fatalf("trial %d: Filter mutated its input", trial)
		}
		if n == 0 {
			if f != nil {
				t.Fatalf("trial %d: Filter(nil-ish) = %v", trial, f)
			}
			continue
		}
		if len(f) == 0 {
			t.Fatalf("trial %d: empty frontier from %d solutions", trial, n)
		}
		// Strictly sorted, which for a 2-objective frontier is equivalent
		// to mutual non-domination.
		if !IsFrontier(f) {
			t.Fatalf("trial %d: not canonically sorted: %v", trial, f)
		}
		for i, a := range f {
			for j, b := range f {
				if i != j && a.Dominates(b) {
					t.Fatalf("trial %d: frontier member %v dominates member %v", trial, a, b)
				}
			}
		}
		// Idempotent.
		if again := Filter(f); !reflect.DeepEqual(again, f) {
			t.Fatalf("trial %d: not idempotent: %v != %v", trial, again, f)
		}
		// Every output point is an input point.
		for _, s := range f {
			found := false
			for _, x := range xs {
				if x == s {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: frontier invented %v", trial, s)
			}
		}
		// Every input point is weakly dominated by some frontier point.
		for _, x := range xs {
			if !Contains(f, x) {
				t.Fatalf("trial %d: input %v not covered by frontier %v", trial, x, f)
			}
		}
	}
}

// TestMergeCommutative checks Merge is order-insensitive: merging the
// same sets in any order yields the identical canonical frontier.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		mk := func() []Sol {
			xs := make([]Sol, rng.Intn(10))
			for i := range xs {
				xs[i] = Sol{W: rng.Int63n(30), D: rng.Int63n(30)}
			}
			return xs
		}
		a, b, c := mk(), mk(), mk()
		abc := Merge(a, b, c)
		cba := Merge(c, b, a)
		if !reflect.DeepEqual(abc, cba) {
			t.Fatalf("trial %d: Merge order-sensitive: %v != %v", trial, abc, cba)
		}
	}
}
