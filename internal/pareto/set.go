package pareto

import (
	"slices"
	"sort"
)

// Item attaches an arbitrary payload (typically a routing tree) to a
// solution vector, so algorithms can maintain Pareto sets of concrete
// trees rather than bare objective pairs.
type Item[T any] struct {
	Sol Sol
	Val T
}

// FilterItems returns the Pareto-optimal items in canonical order. When
// several items share an identical objective vector, the first in the
// (stable) sorted order is kept.
func FilterItems[T any](items []Item[T]) []Item[T] {
	if len(items) == 0 {
		return nil
	}
	cp := append([]Item[T](nil), items...)
	// Stable on the total (W, D) order: items with identical objective
	// vectors keep their input order, so the first stays the winner.
	slices.SortStableFunc(cp, func(a, b Item[T]) int { return a.Sol.Compare(b.Sol) })
	out := cp[:0]
	bestD := int64(1<<63 - 1)
	for _, it := range cp {
		if it.Sol.D < bestD {
			out = append(out, it)
			bestD = it.Sol.D
		}
	}
	return append([]Item[T](nil), out...)
}

// Set maintains a Pareto frontier of payload-carrying solutions
// incrementally. The zero value is an empty set ready for use.
type Set[T any] struct {
	items []Item[T] // invariant: canonical frontier order
}

// NewSet returns a Set seeded with the given items.
func NewSet[T any](items ...Item[T]) *Set[T] {
	s := &Set[T]{}
	for _, it := range items {
		s.Add(it.Sol, it.Val)
	}
	return s
}

// Len returns the number of Pareto-optimal items currently held.
func (s *Set[T]) Len() int { return len(s.items) }

// Items returns the frontier in canonical order. The returned slice must
// not be modified.
func (s *Set[T]) Items() []Item[T] { return s.items }

// Sols returns the objective vectors of the frontier in canonical order.
func (s *Set[T]) Sols() []Sol {
	out := make([]Sol, len(s.items))
	for i, it := range s.items {
		out[i] = it.Sol
	}
	return out
}

// Add inserts (sol, val) unless it is dominated by a held item; items that
// the newcomer strictly dominates (or duplicates) are evicted. It reports
// whether the item was inserted. Runs in O(log k + m) where m is the
// number of evictions.
func (s *Set[T]) Add(sol Sol, val T) bool {
	// Find first index with W >= sol.W.
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i].Sol.W >= sol.W })
	// Dominance by a cheaper-or-equal-W predecessor: the frontier's D is
	// decreasing in W, so only the predecessor needs checking; equal-W
	// entries at i also dominate when their D <= sol.D.
	if i > 0 && s.items[i-1].Sol.D <= sol.D {
		return false
	}
	if i < len(s.items) && s.items[i].Sol.W == sol.W && s.items[i].Sol.D <= sol.D {
		return false
	}
	// Evict items at >= W with D >= sol.D (all contiguous from i).
	j := i
	for j < len(s.items) && s.items[j].Sol.D >= sol.D {
		j++
	}
	if j > i {
		s.items = append(s.items[:i], s.items[j:]...)
	}
	s.items = append(s.items, Item[T]{})
	copy(s.items[i+1:], s.items[i:])
	s.items[i] = Item[T]{Sol: sol, Val: val}
	return true
}

// MaxDelayItem returns the held item with the largest delay (the leftmost
// frontier point) and true, or a zero item and false when the set is empty.
func (s *Set[T]) MaxDelayItem() (Item[T], bool) {
	if len(s.items) == 0 {
		return Item[T]{}, false
	}
	return s.items[0], true
}

// CapItems keeps at most k items of a frontier in canonical order,
// preferring an even spread across it (both endpoints always survive).
// k <= 0 means no cap; the input slice is returned unchanged when it
// already fits. Divide-and-conquer combiners (internal/ks, internal/hier)
// use it to keep carried set sizes — and therefore combination cost —
// bounded at a small loss of frontier resolution.
func CapItems[T any](items []Item[T], k int) []Item[T] {
	if k <= 0 || len(items) <= k {
		return items
	}
	if k == 1 {
		return items[:1:1]
	}
	out := make([]Item[T], 0, k)
	for i := 0; i < k; i++ {
		idx := i * (len(items) - 1) / (k - 1)
		out = append(out, items[idx])
	}
	// Deduplicate possible repeats at the ends.
	dst := out[:1]
	for _, it := range out[1:] {
		if it.Sol != dst[len(dst)-1].Sol {
			dst = append(dst, it)
		}
	}
	return dst
}
