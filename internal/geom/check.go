package geom

import "math"

// Checked int64 arithmetic for the exact layers that cannot import
// internal/param (tree, rsmt, eco sit below param in the import graph).
// The exactness contract promises that every wirelength and delay is an
// exact int64; a silent two's-complement wrap would instead produce a
// plausible-looking wrong frontier. These helpers make the failure loud:
// they panic on overflow, which no routing instance within the supported
// coordinate range can trigger.

// AddCheck returns a+b, panicking if the sum overflows int64.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func AddCheck(a, b int64) int64 {
	s := a + b
	// Overflow iff the operands share a sign the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		panic("geom: int64 addition overflow")
	}
	return s
}

// MulCheck returns a*b, panicking if the product overflows int64.
//
//patlint:checked result is overflow-guarded (panics instead of wrapping)
func MulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	// The division probe misses MinInt64 * -1: the product wraps back to
	// MinInt64 and Go defines MinInt64 / -1 == MinInt64, so p/b == a.
	if (a == math.MinInt64 && b == -1) || (a == -1 && b == math.MinInt64) {
		panic("geom: int64 multiplication overflow")
	}
	p := a * b //patlint:ignore exactoverflow this is the guard: the division below detects the wrap
	if p/b != a {
		panic("geom: int64 multiplication overflow")
	}
	return p
}
