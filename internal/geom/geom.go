// Package geom provides exact rectilinear (L1) geometry primitives used
// throughout the router: points, bounding boxes, distances, medians and
// half-perimeter wirelength. All coordinates are int64 so every distance,
// wirelength and delay computed by the library is exact.
package geom

import (
	"fmt"
	"slices"
)

// Point is a point in the rectilinear plane.
type Point struct {
	X, Y int64
}

// Pt is a convenience constructor for Point.
func Pt(x, y int64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Abs64 returns the absolute value of x.
func Abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Min64 returns the smaller of a and b.
func Min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max64 returns the larger of a and b.
func Max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Dist returns the rectilinear (L1) distance between p and q.
func Dist(p, q Point) int64 {
	return Abs64(p.X-q.X) + Abs64(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle with inclusive bounds.
// A Rect is valid when MinX<=MaxX and MinY<=MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY int64
}

// RectOf returns the degenerate rectangle containing only p.
func RectOf(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// BoundingBox returns the smallest Rect containing all points.
// It panics if pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	r := RectOf(pts[0])
	for _, p := range pts[1:] {
		r = r.Include(p)
	}
	return r
}

// Include returns the smallest Rect containing both r and p.
func (r Rect) Include(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Union returns the smallest Rect containing both rectangles.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: Min64(r.MinX, s.MinX),
		MinY: Min64(r.MinY, s.MinY),
		MaxX: Max64(r.MaxX, s.MaxX),
		MaxY: Max64(r.MaxY, s.MaxY),
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() int64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() int64 { return r.MaxY - r.MinY }

// HalfPerimeter returns the half-perimeter length of r.
func (r Rect) HalfPerimeter() int64 { return r.Width() + r.Height() }

// Project returns the point of r closest (in L1) to p: p itself when p is
// inside r, otherwise the projection of p onto r's boundary.
func (r Rect) Project(p Point) Point {
	q := p
	if q.X < r.MinX {
		q.X = r.MinX
	} else if q.X > r.MaxX {
		q.X = r.MaxX
	}
	if q.Y < r.MinY {
		q.Y = r.MinY
	} else if q.Y > r.MaxY {
		q.Y = r.MaxY
	}
	return q
}

// DistToRect returns the L1 distance from p to the closest point of r
// (zero when p is inside r).
func (r Rect) DistToRect(p Point) int64 { return Dist(p, r.Project(p)) }

// HPWL returns the half-perimeter wirelength of the point set: the half
// perimeter of its bounding box. HPWL of an empty set is 0.
func HPWL(pts ...Point) int64 {
	if len(pts) == 0 {
		return 0
	}
	return BoundingBox(pts).HalfPerimeter()
}

// Median returns a 1-D rectilinear median of xs: a value minimising the sum
// of absolute deviations. For even counts the lower median is returned.
// It panics on an empty slice. The input slice is not modified.
func Median(xs []int64) int64 {
	if len(xs) == 0 {
		panic("geom: Median of empty slice")
	}
	cp := append([]int64(nil), xs...)
	slices.Sort(cp)
	return cp[(len(cp)-1)/2]
}

// MedianPoint returns the componentwise rectilinear median of the points,
// which minimises the sum of L1 distances to them.
func MedianPoint(pts []Point) Point {
	xs := make([]int64, len(pts))
	ys := make([]int64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	return Point{X: Median(xs), Y: Median(ys)}
}

// Meet returns the "meeting point" of p and q toward the origin-side corner:
// (min(x), min(y)). It is the canonical merge point used by rectilinear
// Steiner arborescence heuristics for first-quadrant instances.
func Meet(p, q Point) Point {
	return Point{X: Min64(p.X, q.X), Y: Min64(p.Y, q.Y)}
}

// SortUnique sorts xs ascending and removes duplicates in place, returning
// the deduplicated slice.
func SortUnique(xs []int64) []int64 {
	if len(xs) == 0 {
		return xs
	}
	slices.Sort(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// DedupPoints returns the distinct points of pts, preserving the first
// occurrence order.
func DedupPoints(pts []Point) []Point {
	seen := make(map[Point]bool, len(pts))
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
