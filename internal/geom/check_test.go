package geom

import (
	"math"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestAddCheck(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MinInt64 + 1, -1, math.MinInt64},
		{-7, 12, 5},
		{math.MaxInt64, math.MinInt64, -1}, // opposite signs never overflow
	}
	for _, c := range cases {
		if got := AddCheck(c.a, c.b); got != c.want {
			t.Errorf("AddCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	mustPanic(t, "AddCheck(max, 1)", func() { AddCheck(math.MaxInt64, 1) })
	mustPanic(t, "AddCheck(min, -1)", func() { AddCheck(math.MinInt64, -1) })
	mustPanic(t, "AddCheck(max, max)", func() { AddCheck(math.MaxInt64, math.MaxInt64) })
}

func TestMulCheck(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, math.MaxInt64, 0},
		{math.MinInt64, 0, 0},
		{6, -7, -42},
		{math.MaxInt64 / 3, 3, math.MaxInt64 / 3 * 3},
		{math.MinInt64, 1, math.MinInt64},
		{1, math.MinInt64, math.MinInt64},
	}
	for _, c := range cases {
		if got := MulCheck(c.a, c.b); got != c.want {
			t.Errorf("MulCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	mustPanic(t, "MulCheck(max, 2)", func() { MulCheck(math.MaxInt64, 2) })
	mustPanic(t, "MulCheck(min, -1)", func() { MulCheck(math.MinInt64, -1) })
	mustPanic(t, "MulCheck(-1, min)", func() { MulCheck(-1, math.MinInt64) })
	mustPanic(t, "MulCheck(1<<32, 1<<32)", func() { MulCheck(1<<32, 1<<32) })
}
