package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want int64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-2, -3), Pt(2, 3), 10},
		{Pt(5, 5), Pt(1, 9), 8},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := Dist(c.q, c.p); got != c.want {
			t.Errorf("Dist not symmetric for %v,%v", c.p, c.q)
		}
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int32) bool {
		a, b, c := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)), Pt(int64(cx), int64(cy))
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{Pt(3, 1), Pt(-1, 4), Pt(2, 2)}
	r := BoundingBox(pts)
	want := Rect{MinX: -1, MinY: 1, MaxX: 3, MaxY: 4}
	if r != want {
		t.Fatalf("BoundingBox = %+v, want %+v", r, want)
	}
	if r.HalfPerimeter() != 7 {
		t.Errorf("HalfPerimeter = %d, want 7", r.HalfPerimeter())
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding box does not contain %v", p)
		}
	}
}

func TestBoundingBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BoundingBox(nil) did not panic")
		}
	}()
	BoundingBox(nil)
}

func TestRectProject(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	cases := []struct {
		p, want Point
		dist    int64
	}{
		{Pt(3, 3), Pt(3, 3), 0},
		{Pt(-2, 3), Pt(0, 3), 2},
		{Pt(12, 7), Pt(10, 5), 4},
		{Pt(5, -1), Pt(5, 0), 1},
		{Pt(-1, -1), Pt(0, 0), 2},
	}
	for _, c := range cases {
		if got := r.Project(c.p); got != c.want {
			t.Errorf("Project(%v) = %v, want %v", c.p, got, c.want)
		}
		if got := r.DistToRect(c.p); got != c.dist {
			t.Errorf("DistToRect(%v) = %d, want %d", c.p, got, c.dist)
		}
	}
}

func TestRectProjectIsClosestPoint(t *testing.T) {
	// Property: the projection is at least as close as any sampled point in r.
	rng := rand.New(rand.NewSource(1))
	r := Rect{MinX: -5, MinY: -3, MaxX: 8, MaxY: 6}
	for i := 0; i < 200; i++ {
		p := Pt(rng.Int63n(40)-20, rng.Int63n(40)-20)
		d := r.DistToRect(p)
		for j := 0; j < 50; j++ {
			q := Pt(r.MinX+rng.Int63n(r.Width()+1), r.MinY+rng.Int63n(r.Height()+1))
			if Dist(p, q) < d {
				t.Fatalf("projection of %v not closest: %v is closer", p, q)
			}
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{-1, 1, 1, 5}
	u := a.Union(b)
	want := Rect{-1, 0, 2, 5}
	if u != want {
		t.Fatalf("Union = %+v, want %+v", u, want)
	}
}

func TestHPWL(t *testing.T) {
	if got := HPWL(); got != 0 {
		t.Errorf("HPWL() = %d, want 0", got)
	}
	if got := HPWL(Pt(1, 1)); got != 0 {
		t.Errorf("HPWL single = %d, want 0", got)
	}
	if got := HPWL(Pt(0, 0), Pt(3, 4)); got != 7 {
		t.Errorf("HPWL two pts = %d, want 7", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{1, 9}, 1},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 4, 1, 9}, 4},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMedianMinimizesL1(t *testing.T) {
	// Property: MedianPoint minimises total L1 distance over sampled candidates.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 5+rng.Intn(6))
		for i := range pts {
			pts[i] = Pt(rng.Int63n(100), rng.Int63n(100))
		}
		m := MedianPoint(pts)
		sum := func(q Point) int64 {
			var s int64
			for _, p := range pts {
				s += Dist(p, q)
			}
			return s
		}
		best := sum(m)
		for j := 0; j < 100; j++ {
			q := Pt(rng.Int63n(100), rng.Int63n(100))
			if sum(q) < best {
				t.Fatalf("median %v not optimal: %v has sum %d < %d", m, q, sum(q), best)
			}
		}
	}
}

func TestMeet(t *testing.T) {
	if got := Meet(Pt(3, 7), Pt(5, 2)); got != Pt(3, 2) {
		t.Errorf("Meet = %v, want (3,2)", got)
	}
}

func TestSortUnique(t *testing.T) {
	got := SortUnique([]int64{3, 1, 3, 2, 1})
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortUnique = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortUnique = %v, want %v", got, want)
		}
	}
	if out := SortUnique(nil); len(out) != 0 {
		t.Errorf("SortUnique(nil) = %v", out)
	}
}

func TestDedupPoints(t *testing.T) {
	in := []Point{Pt(1, 1), Pt(2, 2), Pt(1, 1), Pt(3, 3), Pt(2, 2)}
	out := DedupPoints(in)
	if len(out) != 3 || out[0] != Pt(1, 1) || out[1] != Pt(2, 2) || out[2] != Pt(3, 3) {
		t.Fatalf("DedupPoints = %v", out)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min64(2, -3) != -3 || Max64(2, -3) != 2 || Abs64(-5) != 5 || Abs64(5) != 5 {
		t.Fatal("Min64/Max64/Abs64 basic cases failed")
	}
}
