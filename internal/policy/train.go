package policy

import (
	"fmt"
	"math/rand"

	"patlabor/internal/tree"
)

// TrainConfig drives the policy-iteration trainer. Base and Eval decouple
// the trainer from the local-search implementation (internal/core wires
// them up), so training lives here without an import cycle.
type TrainConfig struct {
	// Degrees to train, processed in order (curriculum: each degree
	// warm-starts greedy sampling from the previous degree's parameters).
	Degrees []int
	// Instances sampled per degree.
	Instances int
	// Candidate selections sampled per instance.
	Samples int
	// K is the selection size (λ-1); 0 defaults to 8.
	K int
	// Seed for the instance and selection sampling.
	Seed int64
	// Gen produces a random training net of the given degree.
	Gen func(rng *rand.Rand, n int) tree.Net
	// Base builds the tree the selection features are computed against
	// (the current worst tree of the local search; typically the RSMT).
	Base func(net tree.Net) *tree.Tree
	// Eval scores a selection: the improvement one local-search step with
	// this selection achieves (higher is better).
	Eval func(net tree.Net, base *tree.Tree, selection []int) float64
}

// Train runs policy iteration across the curriculum and returns the
// trained parameters per degree.
func Train(cfg TrainConfig) (map[int]Params, error) {
	if cfg.Gen == nil || cfg.Base == nil || cfg.Eval == nil {
		return nil, fmt.Errorf("policy: TrainConfig requires Gen, Base and Eval")
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 20
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 12
	}
	if cfg.K <= 0 {
		cfg.K = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make(map[int]Params, len(cfg.Degrees))
	cur := DefaultParams(0) // warm start for the first degree
	ev := tree.NewEvaluator()
	for _, n := range cfg.Degrees {
		if n < 3 {
			return nil, fmt.Errorf("policy: cannot train degree %d", n)
		}
		var feats []Features
		var perfs []float64
		for inst := 0; inst < cfg.Instances; inst++ {
			net := cfg.Gen(rng, n)
			base := cfg.Base(net)
			treeDist := ev.SinkDelaysInto(base, n)
			for s := 0; s < cfg.Samples; s++ {
				var sel []int
				if s%2 == 0 {
					sel = randomSelection(rng, net.Degree(), cfg.K)
				} else {
					sel = noisyGreedy(rng, net, base, cfg.K, cur)
				}
				if len(sel) == 0 {
					continue
				}
				f := selectionFeatures(net, treeDist, sel)
				feats = append(feats, f)
				perfs = append(perfs, cfg.Eval(net, base, sel))
			}
		}
		p, ok := fit(feats, perfs)
		if ok {
			cur = normalize(p.Clamp())
		}
		out[n] = cur
	}
	return out, nil
}

// selectionFeatures sums the per-pin features in selection order,
// normalised by the selection size.
func selectionFeatures(net tree.Net, treeDist []int64, sel []int) Features {
	var acc Features
	for i, pin := range sel {
		f := PinFeatures(net, treeDist, pin, sel[:i])
		acc.F1 += f.F1
		acc.F2 += f.F2
		acc.F3 += f.F3
		acc.F4 += f.F4
	}
	k := float64(len(sel))
	return Features{F1: acc.F1 / k, F2: acc.F2 / k, F3: acc.F3 / k, F4: acc.F4 / k}
}

func randomSelection(rng *rand.Rand, degree, k int) []int {
	if k > degree-1 {
		k = degree - 1
	}
	perm := rng.Perm(degree - 1)
	sel := make([]int, k)
	for i := 0; i < k; i++ {
		sel[i] = perm[i] + 1
	}
	sortInts(sel)
	return sel
}

// noisyGreedy perturbs the greedy policy selection for exploration.
func noisyGreedy(rng *rand.Rand, net tree.Net, base *tree.Tree, k int, p Params) []int {
	noisy := Params{
		A1: p.A1 * (0.5 + rng.Float64()),
		A2: p.A2 * (0.5 + rng.Float64()),
		A3: p.A3 * (0.5 + rng.Float64()),
		A4: p.A4 * (0.5 + rng.Float64()),
	}
	return Select(net, base, k, noisy)
}

// normalize rescales the weights so the dominant one is 1 — only ratios
// matter for the greedy argmax selection. A degenerate all-zero fit falls
// back to a pure tree-distance policy.
func normalize(p Params) Params {
	m := p.A1
	for _, v := range []float64{p.A2, p.A3, p.A4} {
		if v > m {
			m = v
		}
	}
	if m <= 0 {
		return Params{A2: 1}
	}
	return Params{A1: p.A1 / m, A2: p.A2 / m, A3: p.A3 / m, A4: p.A4 / m}
}

// fit solves the least-squares regression perf ~ b0 + b·F and maps the
// coefficients onto score weights (signs of F3/F4 flipped). Returns false
// when the normal equations are singular.
func fit(feats []Features, perfs []float64) (Params, bool) {
	if len(feats) < 8 {
		return Params{}, false
	}
	const dim = 5
	var ata [dim][dim]float64
	var atb [dim]float64
	for i, f := range feats {
		x := [dim]float64{1, f.F1, f.F2, f.F3, f.F4}
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				ata[r][c] += x[r] * x[c]
			}
			atb[r] += x[r] * perfs[i]
		}
	}
	sol, ok := solve(ata, atb)
	if !ok {
		return Params{}, false
	}
	return Params{A1: sol[1], A2: sol[2], A3: -sol[3], A4: -sol[4]}, true
}

// solve performs Gaussian elimination with partial pivoting on a 5x5
// system.
func solve(a [5][5]float64, b [5]float64) ([5]float64, bool) {
	const dim = 5
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-12 {
			return [5]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < dim; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [5]float64
	for i := 0; i < dim; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
