// Package policy implements the pin-selection policy π of PatLabor's local
// search (§V-B) and its training apparatus. The policy scores each
// unselected pin p given the already selected pins p_1..p_λ' as
//
//	score(p) = α1·‖r−p‖₁ + α2·dist_T(r,p)
//	         − α3·min_i ‖p−p_i‖₁ − α4·HPWL(p, p_1..p_λ')
//
// and greedily selects the λ−1 highest-scoring pins: far-from-source,
// high-delay pins that cluster together, so one lookup-table call can
// rebuild their whole neighbourhood.
//
// Parameters are trained by the policy-iteration scheme of the paper:
// sample candidate selections on random instances, keep the selections
// whose local-search step improved the Pareto set the most, and fit the
// four weights by least squares, warm-starting each degree from the
// previous one (curriculum). Trained weights for the shipped defaults were
// produced by examples/training.
package policy

import (
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Params are the four nonnegative score weights.
type Params struct {
	A1, A2, A3, A4 float64
}

// DefaultParams returns the shipped trained parameters for a net of
// degree n: smoothed checkpoints of an examples/training run (curriculum
// degrees 10..100 on driver-displaced clustered instances). The tree-path
// term dominates at moderate degrees — regenerate the pins the current
// tree reaches slowly — while the clustering terms gain weight as nets
// grow and one λ-pin window covers a smaller fraction of the net.
func DefaultParams(n int) Params {
	switch {
	case n <= 12:
		return Params{A1: 0.00, A2: 1.00, A3: 0.30, A4: 0.20}
	case n <= 24:
		return Params{A1: 0.00, A2: 1.00, A3: 0.50, A4: 0.15}
	case n <= 48:
		return Params{A1: 0.00, A2: 1.00, A3: 0.45, A4: 0.30}
	default:
		return Params{A1: 0.10, A2: 0.60, A3: 1.00, A4: 0.15}
	}
}

// Clamp returns the parameters with negative weights zeroed (the score
// model requires α >= 0).
func (p Params) Clamp() Params {
	c := p
	if c.A1 < 0 {
		c.A1 = 0
	}
	if c.A2 < 0 {
		c.A2 = 0
	}
	if c.A3 < 0 {
		c.A3 = 0
	}
	if c.A4 < 0 {
		c.A4 = 0
	}
	return c
}

// Features are the four score terms of one pin given a partial selection.
// The score is A1*F1 + A2*F2 - A3*F3 - A4*F4.
type Features struct {
	F1, F2, F3, F4 float64
}

// Score evaluates the policy on a feature vector.
func (p Params) Score(f Features) float64 {
	return p.A1*f.F1 + p.A2*f.F2 - p.A3*f.F3 - p.A4*f.F4
}

// PinFeatures computes the features of candidate pin `pin` given the
// source, per-pin tree path lengths (indexed by pin, as produced by
// tree.Evaluator.SinkDelaysInto), and the already selected pins. The HPWL
// term grows a bounding box incrementally, so scoring performs no
// allocations.
func PinFeatures(net tree.Net, treeDist []int64, pin int, selected []int) Features {
	r := net.Source()
	p := net.Pins[pin]
	f := Features{
		F1: float64(geom.Dist(r, p)),
		F2: float64(treeDist[pin]),
	}
	if len(selected) > 0 {
		minD := int64(1) << 62
		box := geom.RectOf(p)
		for _, s := range selected {
			q := net.Pins[s]
			if d := geom.Dist(p, q); d < minD {
				minD = d
			}
			box = box.Include(q)
		}
		f.F3 = float64(minD)
		f.F4 = float64(box.HalfPerimeter())
	}
	return f
}

// Select greedily picks up to k sink pins of the net by descending policy
// score, using the tree t to supply the dist_T term. Returned pin indices
// are sorted ascending.
func Select(net tree.Net, t *tree.Tree, k int, params Params) []int {
	ev := tree.GetEvaluator()
	sel := SelectWith(net, t, k, params, ev)
	tree.PutEvaluator(ev)
	return sel
}

// SelectWith is Select evaluating tree path lengths through ev's scratch,
// for callers (the local search) that score many trees with one
// evaluator.
func SelectWith(net tree.Net, t *tree.Tree, k int, params Params, ev *tree.Evaluator) []int {
	n := net.Degree()
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil
	}
	treeDist := ev.SinkDelaysInto(t, n)
	remaining := make([]int, 0, n-1)
	for pin := 1; pin < n; pin++ {
		remaining = append(remaining, pin)
	}
	var selected []int
	for len(selected) < k && len(remaining) > 0 {
		bestIdx, bestScore := -1, 0.0
		for i, pin := range remaining {
			s := params.Score(PinFeatures(net, treeDist, pin, selected))
			if bestIdx < 0 || s > bestScore {
				bestIdx, bestScore = i, s
			}
		}
		selected = append(selected, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	sortInts(selected)
	return selected
}

func sortInts(x []int) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
