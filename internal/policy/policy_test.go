package policy

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(200), rng.Int63n(200))
	}
	return tree.Net{Pins: pins}
}

func TestSelectBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := randNet(rng, 15)
	base := rsmt.Tree(net)
	sel := Select(net, base, 8, DefaultParams(15))
	if len(sel) != 8 {
		t.Fatalf("selected %d pins, want 8", len(sel))
	}
	seen := map[int]bool{}
	for _, p := range sel {
		if p < 1 || p >= net.Degree() {
			t.Fatalf("selected invalid pin %d", p)
		}
		if seen[p] {
			t.Fatalf("pin %d selected twice", p)
		}
		seen[p] = true
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatalf("selection not sorted: %v", sel)
		}
	}
}

func TestSelectPrefersFarPins(t *testing.T) {
	// With pure distance weights the farthest pin must be selected first.
	net := tree.NewNet(geom.Pt(0, 0),
		geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(100, 100))
	base := tree.Star(net)
	sel := Select(net, base, 1, Params{A1: 1, A2: 1})
	if len(sel) != 1 || sel[0] != 3 {
		t.Fatalf("selection = %v, want [3]", sel)
	}
}

func TestSelectClampsK(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(1, 1))
	base := tree.Star(net)
	if sel := Select(net, base, 8, DefaultParams(2)); len(sel) != 1 {
		t.Fatalf("selection = %v", sel)
	}
	if sel := Select(net, base, 0, DefaultParams(2)); sel != nil {
		t.Fatalf("k=0 selection = %v", sel)
	}
}

func TestClamp(t *testing.T) {
	p := Params{A1: -1, A2: 2, A3: -3, A4: 4}.Clamp()
	if p.A1 != 0 || p.A2 != 2 || p.A3 != 0 || p.A4 != 4 {
		t.Fatalf("Clamp = %+v", p)
	}
}

func TestPinFeaturesNoSelection(t *testing.T) {
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(3, 4))
	base := tree.Star(net)
	ev := tree.NewEvaluator()
	f := PinFeatures(net, ev.SinkDelaysInto(base, net.Degree()), 1, nil)
	if f.F1 != 7 || f.F2 != 7 || f.F3 != 0 || f.F4 != 0 {
		t.Fatalf("features = %+v", f)
	}
}

func TestDefaultParamsMonotoneBuckets(t *testing.T) {
	for _, n := range []int{10, 20, 40, 100} {
		p := DefaultParams(n)
		if p.A2 <= 0 {
			t.Fatalf("DefaultParams(%d).A2 = %v", n, p.A2)
		}
	}
}

func TestSolve(t *testing.T) {
	// x = (1,2,3,4,5) with identity-ish system.
	var a [5][5]float64
	for i := 0; i < 5; i++ {
		a[i][i] = 2
	}
	a[0][1] = 1
	b := [5]float64{2*1 + 2, 4, 6, 8, 10}
	x, ok := solve(a, b)
	if !ok {
		t.Fatal("solve failed")
	}
	want := [5]float64{1, 2, 3, 4, 5}
	for i := range want {
		if diff := x[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Singular system rejected.
	var s [5][5]float64
	if _, ok := solve(s, [5]float64{}); ok {
		t.Fatal("singular system solved")
	}
}

func TestTrainProducesUsableParams(t *testing.T) {
	cfg := TrainConfig{
		Degrees:   []int{10, 12},
		Instances: 6,
		Samples:   6,
		K:         4,
		Seed:      7,
		Gen:       func(rng *rand.Rand, n int) tree.Net { return randNet(rng, n) },
		Base:      func(net tree.Net) *tree.Tree { return rsmt.MST(net) },
		// A toy objective: prefer selections whose pins are far from the
		// source on the tree (correlates with F2).
		Eval: func(net tree.Net, base *tree.Tree, sel []int) float64 {
			d := tree.NewEvaluator().SinkDelaysInto(base, net.Degree())
			var s float64
			for _, pin := range sel {
				s += float64(d[pin])
			}
			return s
		},
	}
	params, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 2 {
		t.Fatalf("trained %d degrees", len(params))
	}
	for n, p := range params {
		if p.A1 < 0 || p.A2 < 0 || p.A3 < 0 || p.A4 < 0 {
			t.Fatalf("degree %d: negative weights %+v", n, p)
		}
	}
}

func TestTrainRequiresCallbacks(t *testing.T) {
	if _, err := Train(TrainConfig{Degrees: []int{10}}); err == nil {
		t.Fatal("missing callbacks accepted")
	}
}
