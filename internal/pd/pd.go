// Package pd implements the Prim–Dijkstra baseline [2] (Alpert et al.):
// a spanning-tree construction whose attachment cost blends Prim's
// wirelength greed with Dijkstra's path-length greed,
//
//	key(v) = α·pathlen(u) + ‖u−v‖₁ ,
//
// attaching v under the in-tree node u minimising the key. α = 0 is pure
// Prim (an MST); α = 1 is pure Dijkstra (a shortest-path tree). BuildII
// adds PD-II-style post-processing: a delay-safe reparenting pass followed
// by delay-preserving Steinerisation.
package pd

import (
	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Build constructs the Prim–Dijkstra spanning tree for the blend α ∈ [0,1].
func Build(net tree.Net, alpha float64) *tree.Tree {
	n := net.Degree()
	t := tree.New(net.Source(), 0)
	if n <= 1 {
		return t
	}
	const inf = 1e30
	key := make([]float64, n)
	from := make([]int, n)     // tree node to attach under
	fromPL := make([]int64, n) // path length of that node
	inT := make([]bool, n)
	for i := 1; i < n; i++ {
		key[i] = float64(geom.Dist(net.Pins[i], net.Source()))
		from[i] = t.Root
	}
	inT[0] = true
	for added := 1; added < n; added++ {
		best := -1
		bestK := inf
		for i := 1; i < n; i++ {
			if !inT[i] && key[i] < bestK {
				best, bestK = i, key[i]
			}
		}
		node := t.Add(net.Pins[best], best, from[best])
		inT[best] = true
		plBest := fromPL[best] + geom.Dist(net.Pins[best], t.Nodes[from[best]].P)
		for i := 1; i < n; i++ {
			if inT[i] {
				continue
			}
			k := alpha*float64(plBest) + float64(geom.Dist(net.Pins[i], net.Pins[best]))
			if k < key[i] {
				key[i] = k
				from[i] = node
				fromPL[i] = plBest
			}
		}
	}
	return t
}

// BuildII runs Build and then the PD-II-style improvement passes:
// reparenting that reduces wirelength without increasing the tree delay,
// and delay-preserving Steinerisation.
func BuildII(net tree.Net, alpha float64) *tree.Tree {
	t := Build(net, alpha)
	improveReparent(t)
	t.Steinerize()
	return t
}

// improveReparent repeatedly moves a node under a closer parent when that
// strictly reduces wirelength and does not increase the maximum delay.
func improveReparent(t *tree.Tree) {
	for pass := 0; pass < 6; pass++ {
		base := t.MaxDelay()
		changed := false
		for v := range t.Nodes {
			p := t.Parent[v]
			if p < 0 {
				continue
			}
			cur := geom.Dist(t.Nodes[v].P, t.Nodes[p].P)
			bestU, bestD := -1, cur
			for u := range t.Nodes {
				if u == v || u == p {
					continue
				}
				d := geom.Dist(t.Nodes[v].P, t.Nodes[u].P)
				if d >= bestD {
					continue
				}
				if inSubtree(t, u, v) {
					continue
				}
				// Trial reparent; keep only if the delay did not grow.
				old := t.Parent[v]
				t.Parent[v] = u
				if t.MaxDelay() <= base {
					bestU, bestD = u, d
				}
				t.Parent[v] = old
			}
			if bestU >= 0 {
				t.Parent[v] = bestU
				changed = true
				base = t.MaxDelay()
			}
		}
		if !changed {
			return
		}
	}
}

// inSubtree reports whether u lies in the subtree rooted at v.
func inSubtree(t *tree.Tree, u, v int) bool {
	for u >= 0 {
		if u == v {
			return true
		}
		u = t.Parent[u]
	}
	return false
}

// DefaultAlphas is the blend grid used for sweeping.
func DefaultAlphas() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// Sweep runs PD-II across the blend grid and returns the Pareto set of the
// produced trees.
func Sweep(net tree.Net, alphas []float64) []pareto.Item[*tree.Tree] {
	if len(alphas) == 0 {
		alphas = DefaultAlphas()
	}
	set := &pareto.Set[*tree.Tree]{}
	for _, a := range alphas {
		t := BuildII(net, a)
		set.Add(t.Sol(), t)
	}
	return set.Items()
}
