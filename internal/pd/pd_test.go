package pd

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/tree"
)

func randNet(rng *rand.Rand, n int, span int64) tree.Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return tree.Net{Pins: pins}
}

func TestBuildAlphaOneIsShortestPathTree(t *testing.T) {
	// α = 1 is Dijkstra on the complete rectilinear graph: in L1 every
	// direct edge is a shortest path, so all sink delays are minimal.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		net := randNet(rng, 3+rng.Intn(15), 150)
		tr := Build(net, 1)
		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.MaxDelay() != rsma.MinDelay(net) {
			t.Fatalf("trial %d: delay %d, want %d", trial, tr.MaxDelay(), rsma.MinDelay(net))
		}
	}
}

func TestBuildAlphaZeroIsMST(t *testing.T) {
	// α = 0 is Prim: wirelength equals the rectilinear MST's.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		net := randNet(rng, 3+rng.Intn(15), 150)
		tr := Build(net, 0)
		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// An independent Prim over pins only.
		want := mstLen(net)
		if tr.Wirelength() != want {
			t.Fatalf("trial %d: wirelength %d, want MST %d", trial, tr.Wirelength(), want)
		}
	}
}

func mstLen(net tree.Net) int64 {
	n := net.Degree()
	const inf = int64(1) << 62
	dist := make([]int64, n)
	inT := make([]bool, n)
	for i := 1; i < n; i++ {
		dist[i] = geom.Dist(net.Pins[i], net.Source())
	}
	inT[0] = true
	var total int64
	for k := 1; k < n; k++ {
		best, bd := -1, inf
		for i := 1; i < n; i++ {
			if !inT[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		total += bd
		inT[best] = true
		for i := 1; i < n; i++ {
			if !inT[i] {
				if d := geom.Dist(net.Pins[i], net.Pins[best]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

func TestBuildIIImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		net := randNet(rng, 6+rng.Intn(12), 200)
		for _, a := range []float64{0.3, 0.6} {
			plain := Build(net, a)
			better := BuildII(net, a)
			if err := better.Validate(net); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if better.Wirelength() > plain.Wirelength() {
				t.Fatalf("trial %d α=%v: PD-II wirelength %d worse than PD %d",
					trial, a, better.Wirelength(), plain.Wirelength())
			}
			if better.MaxDelay() > plain.MaxDelay() {
				t.Fatalf("trial %d α=%v: PD-II delay %d worse than PD %d",
					trial, a, better.MaxDelay(), plain.MaxDelay())
			}
		}
	}
}

func TestSweepIsFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 10; trial++ {
		net := randNet(rng, 5+rng.Intn(15), 200)
		items := Sweep(net, nil)
		if len(items) == 0 {
			t.Fatal("empty sweep")
		}
		var sols []pareto.Sol
		for _, it := range items {
			sols = append(sols, it.Sol)
			if err := it.Val.Validate(net); err != nil {
				t.Fatal(err)
			}
		}
		if !pareto.IsFrontier(sols) {
			t.Fatalf("sweep not canonical: %v", sols)
		}
	}
}

func TestBuildTrivial(t *testing.T) {
	single := tree.Net{Pins: []geom.Point{geom.Pt(0, 0)}}
	if tr := Build(single, 0.5); tr.Len() != 1 {
		t.Fatal("degree-1 PD wrong")
	}
}
