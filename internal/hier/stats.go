package hier

import "sync/atomic"

// Counters accumulates hierarchical-routing statistics across Route calls
// and across the workers of the intra-net fan-out; all fields are atomic,
// so one Counters value may be shared by an entire engine. The additive
// counters (Nets, Flat, Clusters, Singletons) are deltas a caller can
// rebase; MaxCluster and MaxLevels are high-water marks.
type Counters struct {
	// Nets counts nets that took the hierarchical path (degree above the
	// crossover); Flat counts nets handed straight to the flat router.
	Nets atomic.Int64
	Flat atomic.Int64
	// Clusters counts bottom-level cluster subproblems solved (at every
	// recursion level); Singletons counts single-pin clusters, which need
	// no subproblem — the top-level tree reaches their port directly.
	Clusters   atomic.Int64
	Singletons atomic.Int64
	// MaxCluster is the largest cluster size seen; MaxLevels the deepest
	// top-level recursion (1 = one cluster/top split).
	MaxCluster atomic.Int64
	MaxLevels  atomic.Int64
}

// CounterSnapshot is one point-in-time reading of a Counters.
type CounterSnapshot struct {
	Nets, Flat, Clusters, Singletons int64
	MaxCluster, MaxLevels            int64
}

// Snapshot reads every counter.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Nets:       c.Nets.Load(),
		Flat:       c.Flat.Load(),
		Clusters:   c.Clusters.Load(),
		Singletons: c.Singletons.Load(),
		MaxCluster: c.MaxCluster.Load(),
		MaxLevels:  c.MaxLevels.Load(),
	}
}

// maxInto lifts a to at least v (atomic maximum).
func maxInto(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
