// Package hier routes huge nets (degree 10³–10⁴) hierarchically, in the
// style of Held–Kämmerling two-level rectilinear Steiner trees: the sinks
// are partitioned into geometric clusters (recursive median split, see
// Partition), a top-level tree is routed over the source plus one
// representative "port" per cluster, each cluster becomes a small
// subproblem rooted at its port — a perfect lookup-table-degree window
// answered through core.WindowFrontier, hitting the symbolic LUT path and
// the shared sub-frontier memo — and the per-cluster Pareto frontiers are
// stitched onto the top-level frontier with the ⊕ combination of
// internal/pareto.
//
// The delay algebra is exact int64 throughout: a top-level tree T with
// port delays p_i (path length from the source to cluster i's port) and a
// frontier pick (w_i, d_i) for every cluster combine to
//
//	W = w(T) + Σ_i w_i        D = max_i (p_i + d_i)
//
// which is precisely the wirelength and worst sink delay of the grafted
// tree: cluster trees are rooted at their port pin, so grafting merges
// the root with the top tree's port node and every cluster-internal sink
// s has delay p_i + d(port→s); the port's own sink delay p_i is covered
// because d_i ≥ 0. The fold over clusters keeps a capped Pareto set of
// partial combinations (cons-list choice payloads, so memory stays linear
// in the live frontier) and only the final survivors are materialized as
// trees.
//
// Cluster subproblems are independent, so they fan out over an
// internal/pool worker pool — the intra-net parallelism that lets one
// 10k-pin net saturate all cores. Clusters are solved into per-index
// slots and every later step (top-level routing, the combination fold,
// materialization) runs serially in the deterministic cluster order, so
// results are byte-identical at any worker count and with the sub-frontier
// memo cold, warm, or absent — the standing invariant, enforced by the
// differential test in this package.
package hier

import (
	"context"
	"fmt"
	"runtime"

	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/lut"
	"patlabor/internal/pareto"
	"patlabor/internal/pool"
	"patlabor/internal/tree"
)

// DefaultCrossover is the degree above which nets route hierarchically:
// the flat local search tops out around degree 64 in the benchmarks
// (BenchmarkLocalSearch), and the quality regression test pins the
// hierarchical frontiers to it at 64–128.
const DefaultCrossover = 64

// DefaultMaxSet caps the Pareto-set size carried per cluster and per
// combination step.
const DefaultMaxSet = 24

// MinClusterSize floors the adaptive cluster-size choice: clusters of 2–3
// pins make the top-level net nearly as big as the original.
const MinClusterSize = 4

// Options configures the hierarchical router. The zero value routes with
// the defaults: crossover 64, adaptive LUT-sized clusters, GOMAXPROCS
// workers.
type Options struct {
	// Crossover: nets of degree ≤ Crossover are handed to the flat router
	// (core.RouteContext) unchanged; larger nets route hierarchically.
	// 0 means DefaultCrossover. Values below ClusterSize+2 are lifted to
	// it so the hierarchical path always has a real partition.
	Crossover int
	// ClusterSize is the target cluster size of the recursive median
	// partition. 0 picks the largest degree the lookup table answers
	// (clamped to [MinClusterSize, λ]) so every cluster subproblem hits
	// the symbolic fast path; explicit values are clamped to
	// [2, dw.MaxExactDegree].
	ClusterSize int
	// MaxSet caps the Pareto-set size carried per cluster, per
	// combination step, and in the final frontier (0 = DefaultMaxSet).
	// Combination cost is quadratic in set sizes; the cap trades frontier
	// resolution for tractability, exactly like ks.Options.MaxSet.
	MaxSet int
	// Workers sizes the worker pool fanning the cluster subproblems of
	// one net (<=0 = GOMAXPROCS). Results are byte-identical at any
	// value.
	Workers int
	// Core configures the flat router used below the crossover and for
	// every cluster and top-level subproblem: λ, lookup table, policy
	// parameters, and — crucially for batch workloads — the shared
	// sub-frontier memo (Core.Cache).
	Core core.Options
	// Stats, when set, accumulates cluster counts and recursion depths
	// across Route calls (the engine surfaces them in -stats).
	Stats *Counters
}

// config is a resolved Options.
type config struct {
	crossover   int
	clusterSize int
	maxSet      int
	workers     int
	core        core.Options
	stats       *Counters
}

func resolve(opts Options) (config, error) {
	cfg := config{core: opts.Core, stats: opts.Stats}
	lambda := opts.Core.Lambda
	if lambda == 0 {
		lambda = core.DefaultLambda
	}
	if lambda < 2 || lambda > dw.MaxExactDegree {
		return config{}, fmt.Errorf("hier: lambda %d out of range [2,%d]", lambda, dw.MaxExactDegree)
	}
	cs := opts.ClusterSize
	if cs == 0 {
		// Adaptive: the largest table-covered degree ≤ λ, so every cluster
		// window is answered symbolically (≈µs, not the ms-scale DP); when
		// the table covers nothing useful, MinClusterSize keeps the DP
		// windows tiny.
		table := opts.Core.Table
		if table == nil {
			table = lut.Default()
		}
		cs = MinClusterSize
		// One scan of the table's coverage set instead of λ Covers probes
		// — with flat tables attached the covered set can reach degree 7+,
		// and every extra covered degree grows the clusters for free.
		if d := table.MaxCovered(lambda); d > cs {
			cs = d
		}
	}
	if cs < 2 {
		cs = 2
	}
	if cs > dw.MaxExactDegree {
		cs = dw.MaxExactDegree
	}
	cfg.clusterSize = cs
	cfg.crossover = opts.Crossover
	if cfg.crossover == 0 {
		cfg.crossover = DefaultCrossover
	}
	if cfg.crossover < cs+2 {
		cfg.crossover = cs + 2
	}
	cfg.maxSet = opts.MaxSet
	if cfg.maxSet == 0 {
		cfg.maxSet = DefaultMaxSet
	}
	if cfg.maxSet < 2 {
		cfg.maxSet = 2
	}
	cfg.workers = opts.Workers
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// Route computes a Pareto set of routing trees for the net: flat through
// core below the crossover degree, hierarchically above it. Items are in
// canonical frontier order.
func Route(net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	return RouteContext(context.Background(), net, opts)
}

// RouteContext is Route with cancellation, threaded to cluster
// granularity: the fan-out stops dispatching clusters, in-flight windows
// abort at their next check, and the combination fold checks the context
// once per cluster step.
func RouteContext(ctx context.Context, net tree.Net, opts Options) ([]pareto.Item[*tree.Tree], error) {
	if net.Degree() == 0 {
		return nil, fmt.Errorf("hier: empty net")
	}
	cfg, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	return route(ctx, net, cfg, 0)
}

// route is one level of the hierarchy: partition the sinks, solve the
// clusters in parallel, route the top-level net over the ports (itself
// hierarchically when still above the crossover), and stitch.
func route(ctx context.Context, net tree.Net, cfg config, level int) ([]pareto.Item[*tree.Tree], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := net.Degree()
	if n <= cfg.crossover {
		if cfg.stats != nil && level == 0 {
			cfg.stats.Flat.Add(1)
		}
		return core.RouteContext(ctx, net, cfg.core)
	}
	if cfg.stats != nil {
		if level == 0 {
			cfg.stats.Nets.Add(1)
		}
		maxInto(&cfg.stats.MaxLevels, int64(level+1))
	}
	clusters := Partition(net, cfg.clusterSize)
	ports := make([]int, len(clusters))
	for i, cl := range clusters {
		ports[i] = Port(net, cl)
		if cfg.stats != nil {
			maxInto(&cfg.stats.MaxCluster, int64(len(cl)))
		}
	}
	// Bottom level: one exact window per non-singleton cluster, rooted at
	// its port, fanned out across the pool. Workers write only their own
	// index's slot; the cluster order is fixed by the serial partition
	// above, so the result is byte-identical at any worker count.
	fronts := make([][]pareto.Item[*tree.Tree], len(clusters))
	err := pool.Each(ctx, len(clusters), cfg.workers, func(_, i int) error {
		cl := clusters[i]
		if len(cl) == 1 {
			if cfg.stats != nil {
				cfg.stats.Singletons.Add(1)
			}
			return nil // the top-level tree reaches the port itself
		}
		pins := make([]int, 0, len(cl))
		pins = append(pins, ports[i])
		for _, p := range cl {
			if p != ports[i] {
				pins = append(pins, p)
			}
		}
		items, werr := core.WindowFrontier(ctx, net, pins, cfg.core)
		if werr != nil {
			return werr
		}
		fronts[i] = pareto.CapItems(items, cfg.maxSet)
		if cfg.stats != nil {
			cfg.stats.Clusters.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Top level: the source plus one port per cluster. The partition
	// guarantees strictly fewer pins than net (clusters average ≥ 1.5
	// pins), so the recursion terminates; when the port count is still
	// above the crossover this recurses into another cluster/top split.
	topPins := make([]int, 0, len(clusters)+1)
	topPins = append(topPins, 0)
	topPins = append(topPins, ports...)
	topNet := tree.Net{Pins: make([]geom.Point, len(topPins))}
	for i, p := range topPins {
		topNet.Pins[i] = net.Pins[p]
	}
	topItems, err := route(ctx, topNet, cfg, level+1)
	if err != nil {
		return nil, err
	}
	topItems = pareto.CapItems(topItems, cfg.maxSet)
	return combine(ctx, topNet, topPins, topItems, ports, fronts, cfg)
}

// choice is a persistent cons cell recording one cluster's frontier pick;
// partial combinations share tails, so the fold's memory stays linear in
// the live frontier instead of quadratic in cluster count.
type choice struct {
	cluster int32
	item    int32
	prev    *choice
}

// comboRef names one full combination: a top-level tree plus a pick per
// non-singleton cluster (clusters absent from the list picked item 0).
type comboRef struct {
	top   int
	picks *choice
}

// combine folds the per-cluster frontiers onto each top-level tree with
// the ⊕ delay algebra (see the package comment), Pareto-filters across
// all top-level trees, and materializes only the surviving combinations
// by grafting the chosen cluster trees at their port nodes.
func combine(ctx context.Context, topNet tree.Net, topPins []int, topItems []pareto.Item[*tree.Tree], ports []int, fronts [][]pareto.Item[*tree.Tree], cfg config) ([]pareto.Item[*tree.Tree], error) {
	ev := tree.GetEvaluator()
	defer tree.PutEvaluator(ev)
	final := &pareto.Set[comboRef]{}
	for ti, top := range topItems {
		// delays[k] is the top-tree path length from the source to sink k
		// of topNet — cluster k-1's port delay p_{k-1}.
		delays := ev.SinkDelaysInto(top.Val, topNet.Degree())
		acc := []pareto.Item[*choice]{{Sol: pareto.Sol{W: top.Sol.W, D: 0}}}
		for ci, front := range fronts {
			// The fold is |acc|×|front| work per cluster and there are up
			// to n/clusterSize clusters: honour cancellation per cluster.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p := delays[ci+1]
			next := &pareto.Set[*choice]{}
			if front == nil {
				// Singleton cluster: its port is its only pin, so the pick
				// is empty and only the delay floor rises to p.
				for _, a := range acc {
					next.Add(pareto.Sol{W: a.Sol.W, D: geom.Max64(a.Sol.D, p)}, a.Val)
				}
			} else {
				for _, a := range acc {
					for j, s := range front {
						sol := pareto.Sol{
							W: a.Sol.W + s.Sol.W,
							D: geom.Max64(a.Sol.D, p+s.Sol.D),
						}
						next.Add(sol, &choice{cluster: int32(ci), item: int32(j), prev: a.Val})
					}
				}
			}
			acc = pareto.CapItems(next.Items(), cfg.maxSet)
		}
		for _, a := range acc {
			final.Add(a.Sol, comboRef{top: ti, picks: a.Val})
		}
	}
	picked := pareto.CapItems(final.Items(), cfg.maxSet)
	refined := &pareto.Set[*tree.Tree]{}
	chosen := make([]int32, len(fronts))
	for _, it := range picked {
		// Materialization clones and grafts a full-size tree per survivor.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range chosen {
			chosen[i] = 0
		}
		for c := it.Val.picks; c != nil; c = c.prev {
			chosen[c.cluster] = c.item
		}
		t := topItems[it.Val.top].Val.Clone()
		if err := t.RelabelPins(topPins); err != nil {
			return nil, err
		}
		portNode := make(map[int]int, len(ports))
		for i, nd := range t.Nodes {
			if nd.Pin > 0 {
				portNode[nd.Pin] = i
			}
		}
		for ci, front := range fronts {
			if front == nil {
				continue
			}
			at, ok := portNode[ports[ci]]
			if !ok {
				return nil, fmt.Errorf("hier: port pin %d missing from top-level tree", ports[ci])
			}
			t.Graft(front[chosen[ci]].Val, at)
		}
		// The grafted tree realises the folded (W, D) exactly; Steinerize
		// then shaves wirelength where top-level and cluster wires run in
		// parallel, leaving every source-sink path length unchanged — so
		// the re-evaluated solution dominates-or-equals the folded one and
		// the re-filter below keeps the frontier canonical.
		t.SteinerizeWith(ev)
		refined.Add(ev.Sol(t), t)
	}
	return refined.Items(), nil
}
