package hier

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// testNets builds the differential corpus: a mix of uniform, clustered
// and mega-clustered nets across the degrees the lowered-crossover
// configuration routes hierarchically, plus degenerate shapes (duplicate
// and collinear pins).
func testNets(t *testing.T, count int) []tree.Net {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	nets := make([]tree.Net, 0, count)
	for i := 0; len(nets) < count; i++ {
		deg := 13 + rng.Intn(36)
		var net tree.Net
		switch i % 4 {
		case 0:
			net = netgen.Uniform(rng, deg, 10000)
		case 1:
			net = netgen.Clustered(rng, deg, 100000, 4000)
		case 2:
			net = netgen.MegaClustered(rng, deg, 100000, 1+rng.Intn(6), 5000)
		default:
			net = netgen.Uniform(rng, deg, 10000)
			// Degenerates: duplicate a few pins and flatten a few onto a line.
			for k := 0; k < 3 && deg > 4; k++ {
				net.Pins[1+rng.Intn(deg-1)] = net.Pins[1+rng.Intn(deg-1)]
			}
			for k := 1; k < deg; k += 5 {
				net.Pins[k].Y = net.Pins[0].Y
			}
		}
		nets = append(nets, net)
	}
	return nets
}

// diffOptions is the lowered-crossover configuration of the differential
// and determinism tests: small clusters and a λ=5 flat engine keep every
// subproblem on the LUT fast path, so 220 nets route in seconds while
// still exercising two hierarchy levels.
func diffOptions(workers int, cache *core.SubCache, noCache bool) Options {
	return Options{
		Crossover:   12,
		ClusterSize: 4,
		Workers:     workers,
		Core:        core.Options{Lambda: 5, Cache: cache, NoCache: noCache},
	}
}

func sameFrontier(t *testing.T, label string, got, want []pareto.Item[*tree.Tree]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frontier size %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Sol != want[i].Sol {
			t.Fatalf("%s: item %d sol %+v, want %+v", label, i, got[i].Sol, want[i].Sol)
		}
		a, b := got[i].Val, want[i].Val
		if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("%s: item %d tree shape differs", label, i)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] || a.Parent[j] != b.Parent[j] {
				t.Fatalf("%s: item %d node %d differs", label, i, j)
			}
		}
	}
}

// TestDifferential is the PR's byte-identity harness: 220 nets (plus two
// degree-1024 mega-nets) are routed hierarchically with every combination
// of worker count 1/8/4×GOMAXPROCS and sub-frontier memo off/cold/warm,
// and every frontier must match the serial cache-less reference node for
// node.
func TestDifferential(t *testing.T) {
	nets := testNets(t, 218)
	rng := rand.New(rand.NewSource(11))
	nets = append(nets,
		netgen.MegaClustered(rng, 1024, 1000000, 12, 30000),
		netgen.Uniform(rng, 1024, 1000000),
	)
	ctx := context.Background()
	// over oversubscribes the intra-net fan-out: 4×GOMAXPROCS workers on
	// however many cores exist, the aggressive-interleaving regime where
	// shard-level races in the sub-frontier cache would surface.
	over := 4 * runtime.GOMAXPROCS(0)
	warm1 := core.NewSubCache(0)
	warm8 := core.NewSubCache(0)
	warmOver := core.NewSubCache(0)
	for i, net := range nets {
		want, err := RouteContext(ctx, net, diffOptions(1, nil, true))
		if err != nil {
			t.Fatalf("net %d: reference: %v", i, err)
		}
		runs := []struct {
			label string
			opts  Options
		}{
			{"workers=8 cache=off", diffOptions(8, nil, true)},
			{"workers=1 cache=cold", diffOptions(1, core.NewSubCache(0), false)},
			{"workers=8 cache=cold", diffOptions(8, core.NewSubCache(0), false)},
			{fmt.Sprintf("workers=%d cache=cold", over), diffOptions(over, core.NewSubCache(0), false)},
			// The warm caches persist across all nets of the loop, so
			// later nets are answered from windows earlier nets stored.
			{"workers=1 cache=warm", diffOptions(1, warm1, false)},
			{"workers=8 cache=warm", diffOptions(8, warm8, false)},
			{fmt.Sprintf("workers=%d cache=warm", over), diffOptions(over, warmOver, false)},
		}
		for _, run := range runs {
			got, err := RouteContext(ctx, net, run.opts)
			if err != nil {
				t.Fatalf("net %d: %s: %v", i, run.label, err)
			}
			sameFrontier(t, fmt.Sprintf("net %d (degree %d): %s", i, net.Degree(), run.label), got, want)
		}
	}
}

// TestValidExact checks every returned tree against the net and its
// declared objective vector, across generators, degrees and degenerate
// shapes, and checks canonical frontier order.
func TestValidExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ev := tree.NewEvaluator()
	for _, deg := range []int{66, 100, 150, 300, 1024} {
		for gen := 0; gen < 2; gen++ {
			var net tree.Net
			if gen == 0 {
				net = netgen.MegaClustered(rng, deg, 100000, 8, 6000)
			} else {
				net = netgen.Uniform(rng, deg, 50000)
			}
			items, err := Route(net, Options{})
			if err != nil {
				t.Fatalf("deg %d gen %d: %v", deg, gen, err)
			}
			if len(items) == 0 {
				t.Fatalf("deg %d gen %d: empty frontier", deg, gen)
			}
			for i, it := range items {
				if err := it.Val.Validate(net); err != nil {
					t.Fatalf("deg %d gen %d item %d: invalid tree: %v", deg, gen, i, err)
				}
				if got := ev.Sol(it.Val); got != it.Sol {
					t.Fatalf("deg %d gen %d item %d: declared %+v, tree evaluates to %+v",
						deg, gen, i, it.Sol, got)
				}
				if i > 0 && !(items[i].Sol.W > items[i-1].Sol.W && items[i].Sol.D < items[i-1].Sol.D) {
					t.Fatalf("deg %d gen %d: not canonical at %d: %+v then %+v",
						deg, gen, i, items[i-1].Sol, items[i].Sol)
				}
			}
		}
	}
	// All-coincident pins: every sink on top of the source.
	co := netgen.Uniform(rng, 80, 1)
	items, err := Route(co, Options{Crossover: 20, ClusterSize: 4, Core: core.Options{Lambda: 5}})
	if err != nil {
		t.Fatalf("coincident: %v", err)
	}
	for i, it := range items {
		if err := it.Val.Validate(co); err != nil {
			t.Fatalf("coincident item %d: %v", i, err)
		}
	}
}

// TestCrossoverDispatch pins the wrapper semantics: at or below the
// crossover the result is byte-identical to the flat router with the same
// core options, and the counters attribute the net to the flat side.
func TestCrossoverDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var stats Counters
	opts := Options{Stats: &stats, Core: core.Options{NoCache: true}}
	for _, deg := range []int{2, 5, 9, 30, 64} {
		net := netgen.Clustered(rng, deg, 100000, 4000)
		got, err := Route(net, opts)
		if err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
		want, err := core.Route(net, core.Options{NoCache: true})
		if err != nil {
			t.Fatalf("deg %d: flat: %v", deg, err)
		}
		sameFrontier(t, fmt.Sprintf("deg %d flat dispatch", deg), got, want)
	}
	s := stats.Snapshot()
	if s.Flat != 5 || s.Nets != 0 {
		t.Fatalf("flat dispatch counters: %+v", s)
	}
	net := netgen.MegaClustered(rng, 200, 100000, 6, 5000)
	if _, err := Route(net, opts); err != nil {
		t.Fatal(err)
	}
	s = stats.Snapshot()
	if s.Nets != 1 {
		t.Fatalf("hierarchical net not counted: %+v", s)
	}
	if s.Clusters == 0 || s.MaxCluster < 2 || s.MaxLevels < 1 {
		t.Fatalf("cluster counters empty: %+v", s)
	}
}

// TestCancellation: an expired context aborts the fan-out and surfaces
// ctx.Err, at any worker count.
func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := netgen.MegaClustered(rng, 512, 100000, 8, 5000)
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RouteContext(ctx, net, diffOptions(workers, nil, true))
		if err != context.Canceled {
			t.Fatalf("workers=%d: err %v, want context.Canceled", workers, err)
		}
	}
}

// TestPartition pins the partition invariants the fuzzer also enforces,
// on structured instances.
func TestPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, deg := range []int{2, 3, 10, 65, 500, 4096} {
		for _, target := range []int{2, 4, 5, 9, 16} {
			net := netgen.MegaClustered(rng, deg, 100000, 5, 8000)
			clusters := Partition(net, target)
			seen := make(map[int]bool)
			for _, cl := range clusters {
				if len(cl) == 0 || len(cl) > target {
					t.Fatalf("deg %d target %d: cluster size %d", deg, target, len(cl))
				}
				for _, p := range cl {
					if p < 1 || p >= deg || seen[p] {
						t.Fatalf("deg %d target %d: bad or repeated pin %d", deg, target, p)
					}
					seen[p] = true
				}
				port := Port(net, cl)
				found := false
				for _, p := range cl {
					if p == port {
						found = true
					}
				}
				if !found {
					t.Fatalf("deg %d target %d: port %d not a member", deg, target, port)
				}
			}
			if len(seen) != deg-1 {
				t.Fatalf("deg %d target %d: covered %d sinks", deg, target, len(seen))
			}
			// Determinism: a second run over a fresh index slice matches.
			again := Partition(net, target)
			if len(again) != len(clusters) {
				t.Fatalf("deg %d target %d: cluster count changed", deg, target)
			}
			for i := range again {
				if len(again[i]) != len(clusters[i]) {
					t.Fatalf("deg %d target %d: cluster %d size changed", deg, target, i)
				}
				for j := range again[i] {
					if again[i][j] != clusters[i][j] {
						t.Fatalf("deg %d target %d: cluster %d order changed", deg, target, i)
					}
				}
			}
		}
	}
}
