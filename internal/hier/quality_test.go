package hier

import (
	"math/rand"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/netgen"
)

// TestQualityRegression freezes the approximation quality of the
// hierarchical router against the flat local search on a seeded 50-net
// sample at degrees 65–128 (the first band routed hierarchically under
// the default crossover). The sample is deterministic, so the measured
// ratios are exact reference points; the bounds below add headroom over
// the values measured when the test was frozen —
//
//	per-net worst:  best-D 1.87×, best-W 2.19×
//	sample mean:    best-D 1.11×, best-W 1.46×
//
// — so the test fails only if a change makes hierarchical quality
// meaningfully worse, not on noise (there is none: everything here is
// deterministic). Ratios are compared in scaled int64 arithmetic; see
// EXPERIMENTS.md "Hierarchical routing" for the quality table.
func TestQualityRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		nets         = 50
		perNetDMilli = 2000 // per-net best-D ratio bound: 2.00×
		perNetWMilli = 2400 // per-net best-W ratio bound: 2.40×
		meanDMilli   = 1250 // sample mean best-D bound: 1.25×
		meanWMilli   = 1600 // sample mean best-W bound: 1.60×
	)
	var sumDMilli, sumWMilli int64
	for i := 0; i < nets; i++ {
		deg := 65 + rng.Intn(64)
		net := netgen.MegaClustered(rng, deg, 100000, 2+rng.Intn(6), 8000)
		if i%3 == 2 {
			net = netgen.Uniform(rng, deg, 50000)
		}
		h, err := Route(net, Options{})
		if err != nil {
			t.Fatalf("net %d (degree %d): hier: %v", i, deg, err)
		}
		f, err := core.Route(net, core.Options{})
		if err != nil {
			t.Fatalf("net %d (degree %d): flat: %v", i, deg, err)
		}
		// Canonical frontier order: minimum W first, minimum D last.
		bestDh, bestWh := h[len(h)-1].Sol.D, h[0].Sol.W
		bestDf, bestWf := f[len(f)-1].Sol.D, f[0].Sol.W
		if bestDf <= 0 || bestWf <= 0 {
			// All pins coincident with the source; any tree is optimal.
			continue
		}
		if bestDh*1000 > bestDf*perNetDMilli {
			t.Errorf("net %d (degree %d): best-D %d vs flat %d exceeds %.2fx",
				i, deg, bestDh, bestDf, float64(perNetDMilli)/1000)
		}
		if bestWh*1000 > bestWf*perNetWMilli {
			t.Errorf("net %d (degree %d): best-W %d vs flat %d exceeds %.2fx",
				i, deg, bestWh, bestWf, float64(perNetWMilli)/1000)
		}
		sumDMilli += bestDh * 1000 / bestDf
		sumWMilli += bestWh * 1000 / bestWf
	}
	if sumDMilli > nets*meanDMilli {
		t.Errorf("mean best-D ratio %dm exceeds bound %dm", sumDMilli/nets, meanDMilli)
	}
	if sumWMilli > nets*meanWMilli {
		t.Errorf("mean best-W ratio %dm exceeds bound %dm", sumWMilli/nets, meanWMilli)
	}
}
