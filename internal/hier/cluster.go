package hier

import (
	"cmp"
	"slices"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Partition splits the net's sink pin indices into geometric clusters of
// at most target pins by recursive median split on axes alternating with
// depth — the divide step of ks.route, applied to the whole pin cloud at
// once. Sinks are sorted stably on the full (axis, off-axis) coordinate
// key at every level, so coincident pins keep their input order and the
// result is a pure function of the pin coordinates: the cluster list, the
// order of clusters (depth-first, near half before far half) and the pin
// order inside each cluster are all independent of worker count, memo
// state, or anything else the router varies. Every sink appears in
// exactly one cluster; clusters are non-empty.
func Partition(net tree.Net, target int) [][]int {
	n := net.Degree()
	if n <= 1 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	sinks := make([]int, n-1)
	for i := range sinks {
		sinks[i] = i + 1
	}
	out := make([][]int, 0, (n-1+target-1)/target)
	var split func(idx []int, depth int)
	split = func(idx []int, depth int) {
		if len(idx) <= target {
			out = append(out, idx)
			return
		}
		axis := depth % 2
		slices.SortStableFunc(idx, func(a, b int) int {
			pa, pb := net.Pins[a], net.Pins[b]
			if axis == 0 {
				if c := cmp.Compare(pa.X, pb.X); c != 0 {
					return c
				}
				return cmp.Compare(pa.Y, pb.Y)
			}
			if c := cmp.Compare(pa.Y, pb.Y); c != 0 {
				return c
			}
			return cmp.Compare(pa.X, pb.X)
		})
		mid := len(idx) / 2
		split(idx[:mid], depth+1)
		split(idx[mid:], depth+1)
	}
	split(sinks, 0)
	return out
}

// Port returns a cluster's representative pin: the member closest to the
// net's source, ties broken by the lowest pin index. The port anchors the
// cluster in the top-level net and roots the cluster's own subproblem, so
// the choice only shapes quality — but it must be deterministic, hence
// the total tie-break.
func Port(net tree.Net, cluster []int) int {
	best := cluster[0]
	bd := geom.Dist(net.Pins[best], net.Pins[0])
	for _, p := range cluster[1:] {
		d := geom.Dist(net.Pins[p], net.Pins[0])
		if d < bd || (d == bd && p < best) {
			best, bd = p, d
		}
	}
	return best
}
