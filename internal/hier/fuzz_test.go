package hier

import (
	"encoding/binary"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// FuzzClusterPartition decodes arbitrary bytes into a pin placement and a
// target cluster size and asserts the Partition/Port contract: every sink
// lands in exactly one cluster, cluster sizes stay within [1, target],
// ports are members, and a second run is identical — the invariants the
// hierarchical router's determinism proof rests on. Degenerate seeds
// (coincident, collinear, duplicated pins) are included explicitly.
func FuzzClusterPartition(f *testing.F) {
	// Seed corpus: coincident pins, a horizontal line, duplicates, and a
	// generic scatter. Encoding: first byte = target, then 4-byte pairs of
	// little-endian uint16 coordinates per pin.
	coincident := []byte{4}
	for i := 0; i < 12; i++ {
		coincident = append(coincident, 0x10, 0x00, 0x10, 0x00)
	}
	f.Add(coincident)
	line := []byte{3}
	for i := 0; i < 10; i++ {
		line = append(line, byte(i), 0x01, 0x42, 0x00)
	}
	f.Add(line)
	dup := []byte{5}
	for i := 0; i < 16; i++ {
		dup = append(dup, byte(i%3), 0x00, byte(i%2), 0x00)
	}
	f.Add(dup)
	scatter := []byte{9}
	for i := 0; i < 40; i++ {
		scatter = append(scatter, byte(i*37), byte(i*11), byte(i*53), byte(i*7))
	}
	f.Add(scatter)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1+4*2 {
			return // need a target byte and at least source + one sink
		}
		target := int(data[0]%16) + 2
		data = data[1:]
		n := len(data) / 4
		if n > 4096 {
			n = 4096
		}
		pins := make([]geom.Point, n)
		for i := range pins {
			x := int64(binary.LittleEndian.Uint16(data[4*i:]))
			y := int64(binary.LittleEndian.Uint16(data[4*i+2:]))
			pins[i] = geom.Pt(x, y)
		}
		net := tree.Net{Pins: pins}

		clusters := Partition(net, target)
		seen := make(map[int]bool, n-1)
		for ci, cl := range clusters {
			if len(cl) == 0 || len(cl) > target {
				t.Fatalf("cluster %d has size %d, target %d", ci, len(cl), target)
			}
			member := false
			port := Port(net, cl)
			for _, p := range cl {
				if p < 1 || p >= n {
					t.Fatalf("cluster %d holds out-of-range pin %d (n=%d)", ci, p, n)
				}
				if seen[p] {
					t.Fatalf("pin %d appears in two clusters", p)
				}
				seen[p] = true
				if p == port {
					member = true
				}
			}
			if !member {
				t.Fatalf("cluster %d port %d is not a member", ci, port)
			}
		}
		if len(seen) != n-1 {
			t.Fatalf("clusters cover %d of %d sinks", len(seen), n-1)
		}

		again := Partition(net, target)
		if len(again) != len(clusters) {
			t.Fatalf("re-partition produced %d clusters, first run %d", len(again), len(clusters))
		}
		for i := range again {
			if len(again[i]) != len(clusters[i]) {
				t.Fatalf("cluster %d size changed between runs", i)
			}
			for j := range again[i] {
				if again[i][j] != clusters[i][j] {
					t.Fatalf("cluster %d differs between runs at position %d", i, j)
				}
			}
		}
	})
}
