package eco_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/eco"
	"patlabor/internal/geom"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

func pt(x, y int64) geom.Point { return geom.Pt(x, y) }

func TestApplySemantics(t *testing.T) {
	net := tree.NewNet(pt(0, 0), pt(10, 0), pt(0, 10), pt(10, 10))

	t.Run("move", func(t *testing.T) {
		next, diff, err := eco.Apply(net, []eco.Edit{eco.MovePin(1, pt(20, 0))})
		if err != nil {
			t.Fatal(err)
		}
		if next.Pins[1] != pt(20, 0) {
			t.Fatalf("pin 1 = %v", next.Pins[1])
		}
		if fmt.Sprint(diff.OldDirty) != "[1]" || fmt.Sprint(diff.NewDirty) != "[1]" {
			t.Fatalf("dirty = %v / %v", diff.OldDirty, diff.NewDirty)
		}
		if diff.Structural || diff.Unchanged {
			t.Fatalf("diff = %+v", diff)
		}
	})
	t.Run("perturb accumulates", func(t *testing.T) {
		next, diff, err := eco.Apply(net, []eco.Edit{
			eco.PerturbCoords(2, pt(1, -2)),
			eco.PerturbCoords(2, pt(-3, 5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if next.Pins[2] != pt(-2, 13) {
			t.Fatalf("pin 2 = %v", next.Pins[2])
		}
		if fmt.Sprint(diff.OldDirty) != "[2]" {
			t.Fatalf("dirty = %v", diff.OldDirty)
		}
	})
	t.Run("cancelling edits are unchanged", func(t *testing.T) {
		_, diff, err := eco.Apply(net, []eco.Edit{
			eco.MovePin(1, pt(99, 99)),
			eco.PerturbCoords(3, pt(5, 5)),
			eco.MovePin(1, net.Pins[1]),
			eco.PerturbCoords(3, pt(-5, -5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Unchanged || len(diff.OldDirty) != 0 {
			t.Fatalf("diff = %+v", diff)
		}
	})
	t.Run("remove shifts indices", func(t *testing.T) {
		next, diff, err := eco.Apply(net, []eco.Edit{eco.RemoveSink(1)})
		if err != nil {
			t.Fatal(err)
		}
		if next.Degree() != 3 || next.Pins[1] != pt(0, 10) || next.Pins[2] != pt(10, 10) {
			t.Fatalf("pins = %v", next.Pins)
		}
		if fmt.Sprint(diff.PinMap) != "[0 -1 1 2]" {
			t.Fatalf("pinMap = %v", diff.PinMap)
		}
		if !diff.Structural || fmt.Sprint(diff.OldDirty) != "[1]" {
			t.Fatalf("diff = %+v", diff)
		}
	})
	t.Run("add then remove restores", func(t *testing.T) {
		_, diff, err := eco.Apply(net, []eco.Edit{eco.AddSink(pt(5, 5)), eco.RemoveSink(4)})
		if err != nil {
			t.Fatal(err)
		}
		// Correspondence is restored, but the structural flag records
		// that the pin count changed along the way; final-state geometry
		// is what matters for dirtiness.
		if len(diff.OldDirty) != 0 || len(diff.NewDirty) != 0 {
			t.Fatalf("diff = %+v", diff)
		}
	})
	t.Run("errors", func(t *testing.T) {
		two := tree.NewNet(pt(0, 0), pt(5, 5))
		cases := [][]eco.Edit{
			{eco.MovePin(9, pt(0, 0))},
			{eco.PerturbCoords(-1, pt(0, 0))},
			{eco.RemoveSink(0)},
			{eco.RemoveSink(5)},
		}
		for i, edits := range cases {
			if _, _, err := eco.Apply(net, edits); err == nil {
				t.Fatalf("case %d: no error", i)
			}
		}
		if _, _, err := eco.Apply(two, []eco.Edit{eco.RemoveSink(1)}); err == nil {
			t.Fatal("degree-2 removal accepted")
		}
	})
	t.Run("input never mutated", func(t *testing.T) {
		before := fmt.Sprint(net.Pins)
		_, _, _ = eco.Apply(net, []eco.Edit{eco.MovePin(0, pt(-7, -7)), eco.AddSink(pt(1, 1)), eco.RemoveSink(1)})
		if fmt.Sprint(net.Pins) != before {
			t.Fatalf("input mutated: %v", net.Pins)
		}
	})
}

// sameFrontier fails the test unless got and want are byte-identical
// frontiers (objective vectors and trees, node for node) and every tree
// validates against net.
func sameFrontier(t *testing.T, label string, net tree.Net, got, want []pareto.Item[*tree.Tree]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Sol != want[i].Sol {
			t.Fatalf("%s: item %d sol %+v, want %+v", label, i, got[i].Sol, want[i].Sol)
		}
		a, b := got[i].Val, want[i].Val
		if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
			t.Fatalf("%s: item %d tree shape differs", label, i)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] || a.Parent[j] != b.Parent[j] {
				t.Fatalf("%s: item %d node %d differs", label, i, j)
			}
		}
		if err := a.Validate(net); err != nil {
			t.Fatalf("%s: item %d: %v", label, i, err)
		}
	}
}

// TestChurnDifferential is the ECO determinism contract on 220 nets:
// every incremental Reroute result is byte-identical to a from-scratch
// core.Route of the post-edit net — with the session cache cold (fresh
// session per net), warm (one session across all nets and steps) and
// disabled (NoCache). The worker-pool variant of the same contract lives
// in the engine's RerouteBatch differential.
func TestChurnDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	const count = 220
	nets := make([]tree.Net, count)
	for i := range nets {
		deg := 2 + rng.Intn(6) // 2..7: exact small-net frontiers
		if i%11 == 0 {
			deg = 10 + rng.Intn(9) // sprinkle local-search nets
		}
		nets[i] = netgen.Uniform(rng, deg, 4000)
	}
	streams := make([][][]eco.Edit, count)
	for i, net := range nets {
		streams[i] = netgen.EditStream(rng, net, netgen.EditStreamOptions{
			Steps: 2, EditsPerStep: 1 + net.Degree()/8,
			RevertPercent: 30, StructuralPercent: 25, Span: 4000,
		})
	}

	ctx := context.Background()
	warm, err := eco.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nocache, err := eco.NewSession(core.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name    string
		session func() *eco.Session // per-net session supplier
	}{
		{"warm", func() *eco.Session { return warm }},
		{"cold", func() *eco.Session {
			s, err := eco.NewSession(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"nocache", func() *eco.Session { return nocache }},
	}
	for _, mode := range modes {
		for i, net := range nets {
			s := mode.session()
			h, err := s.Track(ctx, net)
			if err != nil {
				t.Fatalf("%s: net %d: %v", mode.name, i, err)
			}
			for si, edits := range streams[i] {
				label := fmt.Sprintf("%s: net %d step %d", mode.name, i, si)
				got, err := h.Reroute(ctx, edits)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				post := h.Net()
				want, err := core.Route(post, core.Options{})
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				sameFrontier(t, label, post, got, want)
			}
		}
	}
	for _, s := range []*eco.Session{warm, nocache} {
		st := s.Stats()
		if st.EcoHits+st.FullReroutes != st.Tracks+st.Reroutes {
			t.Fatalf("stats invariant: %+v", st)
		}
	}
	if st := warm.Stats(); st.EcoHits == 0 {
		t.Fatalf("warm session never hit: %+v", st)
	}
	if nocache.SubCache() != nil || nocache.MemoLen() != 0 {
		t.Fatal("NoCache session retained cache state")
	}
}

// TestPreviewDelta checks the incremental delta evaluation is exact: the
// previewed objective vectors equal a from-scratch evaluation of each
// frontier tree with the edited pins patched in.
func TestPreviewDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	s, err := eco.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []int{4, 9, 17, 33} {
		net := netgen.Clustered(rng, deg, 20000, 2000)
		h, err := s.Track(ctx, net)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			var edits []eco.Edit
			for k := 0; k <= trial; k++ {
				pin := rng.Intn(deg) // source included
				if rng.Intn(2) == 0 {
					edits = append(edits, eco.MovePin(pin, pt(rng.Int63n(20000), rng.Int63n(20000))))
				} else {
					edits = append(edits, eco.PerturbCoords(pin, pt(rng.Int63n(201)-100, rng.Int63n(201)-100)))
				}
			}
			sols, err := h.PreviewDelta(edits)
			if err != nil {
				t.Fatal(err)
			}
			post, _, err := eco.Apply(h.Net(), edits)
			if err != nil {
				t.Fatal(err)
			}
			items := h.Frontier()
			if len(sols) != len(items) {
				t.Fatalf("deg %d: %d sols for %d items", deg, len(sols), len(items))
			}
			moved := make(map[int]bool)
			for p := range post.Pins {
				if post.Pins[p] != h.Net().Pins[p] {
					moved[p] = true
				}
			}
			for i, it := range items {
				patched := it.Val.Clone()
				for v := range patched.Nodes {
					if p := patched.Nodes[v].Pin; p >= 0 && moved[p] {
						patched.Nodes[v].P = post.Pins[p]
					}
				}
				if want := patched.Sol(); sols[i] != want {
					t.Fatalf("deg %d trial %d item %d: preview %+v, scratch %+v", deg, trial, i, sols[i], want)
				}
			}
		}
		// Structural edits are rejected, and the handle is untouched.
		if _, err := h.PreviewDelta([]eco.Edit{eco.AddSink(pt(1, 1))}); err == nil {
			t.Fatal("structural preview accepted")
		}
	}
}

// render canonicalizes a frontier to bytes (trees print their nodes and
// parents, not their pointer identity).
func render(items []pareto.Item[*tree.Tree]) string {
	out := ""
	for _, it := range items {
		out += fmt.Sprintf("%v r%d %v %v|", it.Sol, it.Val.Root, it.Val.Nodes, it.Val.Parent)
	}
	return out
}

// TestHandleIsolation proves the deep-copy boundaries: mutating the
// input net after Track, a returned tree, or the edit slice can never
// change what the handle later returns.
func TestHandleIsolation(t *testing.T) {
	ctx := context.Background()
	s, err := eco.NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net := tree.NewNet(pt(0, 0), pt(40, 10), pt(35, -20), pt(12, 33))
	h, err := s.Track(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	ref := render(h.Frontier())

	net.Pins[1] = pt(-999, -999) // caller clobbers the tracked net
	first, err := h.Reroute(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if render(first) != ref {
		t.Fatal("caller mutation of the input net leaked into the handle")
	}

	first[0].Val.Nodes[0].P = pt(7, 7) // caller clobbers a returned tree
	edits := []eco.Edit{eco.MovePin(1, pt(41, 10))}
	if _, err := h.Reroute(ctx, edits); err != nil {
		t.Fatal(err)
	}
	edits[0] = eco.MovePin(1, pt(-5, -5)) // caller clobbers the edit slice
	back, err := h.Reroute(ctx, []eco.Edit{eco.MovePin(1, pt(40, 10))})
	if err != nil {
		t.Fatal(err)
	}
	if render(back) != ref {
		t.Fatal("handle state corrupted by caller-side mutation")
	}
}
