package eco_test

import (
	"context"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/eco"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// decodeNet reads a degree-3..7 base net off the front of data on a
// 16×16 grid. Duplicate pin positions are deliberately representable —
// the router tolerates them and ECO must match it byte for byte.
func decodeNet(data []byte) (tree.Net, []byte, bool) {
	if len(data) < 1 {
		return tree.Net{}, nil, false
	}
	d := 3 + int(data[0]%5)
	data = data[1:]
	if len(data) < d {
		return tree.Net{}, nil, false
	}
	pins := make([]geom.Point, d)
	for i := 0; i < d; i++ {
		pins[i] = geom.Pt(int64(data[i]%16), int64(data[i]/16))
	}
	return tree.Net{Pins: pins}, data[d:], true
}

// decodeEdit turns a 3-byte chunk into one valid edit against a
// degree-deg net. Every chunk decodes to something: ops that would be
// invalid in the current state (removing at degree 2, growing past
// degree 9) degrade to a MovePin, so the stream keeps exercising the
// degenerate cases — duplicate positions, collapse to degree 2, undo
// pairs — without aborting.
func decodeEdit(op, pin, val byte, deg int) eco.Edit {
	p := geom.Pt(int64(val%16), int64(val/16))
	switch op % 4 {
	case 1: // AddSink, capped
		if deg < 9 {
			return eco.AddSink(p)
		}
	case 2: // RemoveSink, floored
		if deg > 2 {
			return eco.RemoveSink(1 + int(pin)%(deg-1))
		}
	case 3:
		return eco.PerturbCoords(int(pin)%deg, geom.Pt(int64(val%7)-3, int64(val/7%7)-3))
	}
	return eco.MovePin(int(pin)%deg, p)
}

// FuzzEditStream is the adversarial half of the churn differential: an
// arbitrary byte string decodes to a base net plus an edit stream, and
// every incremental step must stay byte-identical to a from-scratch
// core.Route of the post-edit net, with every tree validating. The
// committed corpus seeds the degenerate shapes (all pins coincident,
// collapse to degree 2, exact undo pairs).
func FuzzEditStream(f *testing.F) {
	// All pins coincident, then moves on top of each other.
	f.Add([]byte{0, 17, 17, 17, 0, 1, 17, 0, 2, 34})
	// Degree 7 collapsing to 2: removals beyond the floor degrade to moves.
	f.Add([]byte{4, 1, 2, 3, 4, 5, 6, 7, 2, 0, 0, 2, 0, 0, 2, 0, 0, 2, 0, 0, 2, 0, 0, 2, 0, 0})
	// Undo pair: pin 1 to (5,5) and back to its original (2,0).
	f.Add([]byte{1, 1, 2, 3, 4, 0, 1, 85, 0, 1, 2})
	// Grow, shuffle, shrink.
	f.Add([]byte{2, 9, 200, 13, 77, 150, 1, 0, 240, 0, 3, 6, 2, 1, 0, 3, 2, 100, 1, 0, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		net, rest, ok := decodeNet(data)
		if !ok {
			t.Skip()
		}
		s, err := eco.NewSession(core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		h, err := s.Track(ctx, net)
		if err != nil {
			t.Fatalf("track: %v", err)
		}
		steps := 0
		for len(rest) >= 3 && steps < 24 {
			edit := decodeEdit(rest[0], rest[1], rest[2], h.Degree())
			rest = rest[3:]
			steps++
			got, err := h.Reroute(ctx, []eco.Edit{edit})
			if err != nil {
				t.Fatalf("step %d (%v): %v", steps, edit.Op, err)
			}
			post := h.Net()
			want, err := core.Route(post, core.Options{})
			if err != nil {
				t.Fatalf("step %d: reference: %v", steps, err)
			}
			sameFrontier(t, "fuzz step", post, got, want)
		}
		if st := s.Stats(); st.EcoHits+st.FullReroutes != st.Tracks+st.Reroutes {
			t.Fatalf("channel invariant broken: %+v", st)
		}
	})
}
