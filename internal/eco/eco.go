// Package eco implements incremental re-routing (ECO mode): applying a
// stream of small net mutations — pin moves, sink insertions and
// removals, coordinate perturbations — and re-deriving each post-edit
// Pareto frontier at a fraction of the from-scratch cost.
//
// The correctness bar is absolute: an incremental Reroute returns the
// byte-identical frontier that core.Route would produce on the post-edit
// net. PatLabor's pipeline is deterministic, so no divergent "warm
// start" of the search is admissible; every saving must come from
// exactness-preserving reuse instead:
//
//   - Net-level memo: post-edit nets whose geometry matches a previously
//     routed net — up to translation always, up to the 8 dihedral
//     symmetries for table-covered small degrees — are answered by
//     transforming the memoized frontier through a verified
//     hanan.Isometry. This mirrors the batch engine's planDedup key
//     scheme, extended across time instead of across a batch, and is
//     what makes ECO try/revert loops nearly free.
//
//   - Warm sub-frontier memo: the Session shares one core.SubCache
//     across every reroute, so local-search windows whose pins an edit
//     did not touch are answered by the byte-exact window memo.
//
//   - Precise invalidation: each full route records its consulted
//     windows (core.SubTrace); an edit marks the dirtied subtrees of the
//     previous trees, closes them to a dirty pin set, and evicts exactly
//     the traced cache keys that set touches (SubCache.Remove) — dead
//     keys never pile up into the wholesale capacity flush, and
//     unrelated windows stay resident.
//
// Handles deep-copy their nets and frontiers on every boundary: callers
// mutating a returned tree, an input net, or an edit slice can never
// corrupt session state (the aliasing hazard the batch engine's dedup
// avoids only within a single call).
package eco

import (
	"fmt"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Op is the kind of one net mutation.
type Op uint8

const (
	// OpMovePin repositions pin Pin (the source is allowed) to the
	// absolute position P.
	OpMovePin Op = iota
	// OpAddSink appends a new sink at P; it becomes the highest pin
	// index.
	OpAddSink
	// OpRemoveSink deletes sink Pin (never the source); higher pin
	// indices shift down by one. The net must keep at least two pins.
	OpRemoveSink
	// OpPerturbCoords nudges pin Pin (the source is allowed) by the
	// relative offset P.
	OpPerturbCoords
)

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpMovePin:
		return "MovePin"
	case OpAddSink:
		return "AddSink"
	case OpRemoveSink:
		return "RemoveSink"
	case OpPerturbCoords:
		return "PerturbCoords"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Edit is one net mutation. Construct edits with MovePin, AddSink,
// RemoveSink and PerturbCoords; the zero Edit moves the source onto the
// origin.
type Edit struct {
	Op  Op
	Pin int
	// P is the absolute position (MovePin, AddSink) or the relative
	// offset (PerturbCoords); unused by RemoveSink.
	P geom.Point
}

// MovePin repositions pin (source allowed) to the absolute position p.
func MovePin(pin int, p geom.Point) Edit { return Edit{Op: OpMovePin, Pin: pin, P: p} }

// AddSink appends a sink at p as the highest pin index.
func AddSink(p geom.Point) Edit { return Edit{Op: OpAddSink, P: p} }

// RemoveSink deletes sink pin (never the source), shifting higher pin
// indices down by one.
func RemoveSink(pin int) Edit { return Edit{Op: OpRemoveSink, Pin: pin} }

// PerturbCoords nudges pin (source allowed) by the relative offset d.
func PerturbCoords(pin int, d geom.Point) Edit { return Edit{Op: OpPerturbCoords, Pin: pin, P: d} }

// Diff summarizes the net difference produced by an edit sequence. It is
// computed on final state versus original — edits that cancel each other
// out contribute nothing.
type Diff struct {
	// PinMap maps each original pin index to its post-edit index, -1 for
	// removed sinks. Added sinks have no original counterpart.
	PinMap []int
	// OldDirty lists, in increasing order, the original pin indices that
	// the edits moved or removed — the pins whose previous routing (and
	// cached windows) the edit dirties.
	OldDirty []int
	// NewDirty lists, in increasing order, the post-edit pin indices
	// whose positions differ from their original counterparts, plus the
	// added sinks.
	NewDirty []int
	// Structural reports whether the pin count or correspondence changed
	// (any sink added or removed).
	Structural bool
	// Unchanged reports whether the post-edit net is identical to the
	// original: same degree, same correspondence, every pin in place.
	Unchanged bool
}

// Apply applies edits to net in order and returns the post-edit net plus
// the final-state Diff. The input net is never mutated; the returned net
// shares no storage with it. An invalid edit (pin out of range, removing
// the source, shrinking below two pins) aborts with the index of the
// offending edit and no partial result.
func Apply(net tree.Net, edits []Edit) (tree.Net, *Diff, error) {
	pins := append([]geom.Point(nil), net.Pins...)
	// pinMap[i] tracks where original pin i currently lives; origin[j]
	// tracks which original pin currently lives at j (-1 for added).
	pinMap := make([]int, len(net.Pins))
	origin := make([]int, len(net.Pins))
	for i := range pinMap {
		pinMap[i] = i
		origin[i] = i
	}
	structural := false
	for k, e := range edits {
		switch e.Op {
		case OpMovePin:
			if e.Pin < 0 || e.Pin >= len(pins) {
				return tree.Net{}, nil, fmt.Errorf("eco: edit %d: MovePin %d out of range [0,%d)", k, e.Pin, len(pins))
			}
			pins[e.Pin] = e.P
		case OpPerturbCoords:
			if e.Pin < 0 || e.Pin >= len(pins) {
				return tree.Net{}, nil, fmt.Errorf("eco: edit %d: PerturbCoords %d out of range [0,%d)", k, e.Pin, len(pins))
			}
			pins[e.Pin] = pins[e.Pin].Add(e.P)
		case OpAddSink:
			pins = append(pins, e.P)
			origin = append(origin, -1)
			structural = true
		case OpRemoveSink:
			if e.Pin < 1 || e.Pin >= len(pins) {
				return tree.Net{}, nil, fmt.Errorf("eco: edit %d: RemoveSink %d out of range [1,%d)", k, e.Pin, len(pins))
			}
			if len(pins) <= 2 {
				return tree.Net{}, nil, fmt.Errorf("eco: edit %d: RemoveSink %d would leave a degree-%d net", k, e.Pin, len(pins)-1)
			}
			if o := origin[e.Pin]; o >= 0 {
				pinMap[o] = -1
			}
			pins = append(pins[:e.Pin], pins[e.Pin+1:]...)
			origin = append(origin[:e.Pin], origin[e.Pin+1:]...)
			for j := e.Pin; j < len(origin); j++ {
				if o := origin[j]; o >= 0 {
					pinMap[o] = j
				}
			}
			structural = true
		default:
			return tree.Net{}, nil, fmt.Errorf("eco: edit %d: unknown op %d", k, e.Op)
		}
	}
	d := &Diff{PinMap: pinMap, Structural: structural}
	for i, j := range pinMap {
		if j < 0 || pins[j] != net.Pins[i] {
			d.OldDirty = append(d.OldDirty, i)
		}
	}
	for j, o := range origin {
		if o < 0 || pins[j] != net.Pins[o] {
			d.NewDirty = append(d.NewDirty, j)
		}
	}
	d.Unchanged = !structural && len(d.OldDirty) == 0
	return tree.Net{Pins: pins}, d, nil
}
