package eco

import (
	"fmt"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// PreviewDelta evaluates coordinate-only edits (MovePin, PerturbCoords)
// against the handle's current frontier without rerouting: each tree is
// notionally patched — nodes realising an edited pin move with it, the
// topology stays — and the objective vector of every patched tree is
// returned. Path lengths are re-evaluated only inside the dirtied
// subtrees, seeded from the handle's stored per-item path-length arrays
// (the VPR-style delta propagation), through a pooled tree.Evaluator.
//
// The result is exact for the patched trees — byte-identical to
// evaluating them from scratch — but the patched trees are generally not
// the post-edit Pareto frontier; PreviewDelta is the cheap screen an ECO
// loop runs before deciding to Reroute. Structural edits (AddSink,
// RemoveSink) cannot be previewed and return an error. The handle is not
// modified.
func (h *Handle) PreviewDelta(edits []Edit) ([]pareto.Sol, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	next, diff, err := Apply(h.net, edits)
	if err != nil {
		return nil, err
	}
	if diff.Structural {
		return nil, fmt.Errorf("eco: PreviewDelta is coordinate-only; got a structural edit (AddSink/RemoveSink)")
	}
	out := make([]pareto.Sol, len(h.items))
	if diff.Unchanged {
		for i, it := range h.items {
			out[i] = it.Sol
		}
		return out, nil
	}
	h.ensurePathLengths()
	moved := make([]bool, h.net.Degree())
	for _, p := range diff.OldDirty {
		moved[p] = true
	}
	ev := tree.GetEvaluator()
	defer tree.PutEvaluator(ev)
	var dirty []bool
	var newpl []int64
	for i, it := range h.items {
		t := it.Val
		n := t.Len()
		if cap(dirty) < n {
			dirty = make([]bool, n)
			newpl = make([]int64, n)
		}
		dirty = dirty[:n]
		newpl = newpl[:n]
		for v := range dirty {
			dirty[v] = false
		}
		ev.Load(t)
		// pos is the patched position of node v.
		pos := func(v int32) geom.Point {
			if p := t.Nodes[v].Pin; p >= 0 && moved[p] {
				return next.Pins[p]
			}
			return t.Nodes[v].P
		}
		// Wirelength delta over affected edges, and dirty-subtree roots:
		// an edge (v, parent) changes iff either endpoint moved; the
		// subtree below a changed edge is dirty.
		w := it.Sol.W
		for v := range t.Nodes {
			if p := t.Nodes[v].Pin; p >= 0 && moved[p] {
				h.markDirtyNodes(ev, v, dirty)
			}
		}
		for v, par := range t.Parent {
			if par < 0 {
				continue
			}
			affected := false
			if p := t.Nodes[v].Pin; p >= 0 && moved[p] {
				affected = true
			}
			if p := t.Nodes[par].Pin; p >= 0 && moved[p] {
				affected = true
			}
			if affected {
				w += geom.Dist(pos(int32(v)), pos(int32(par))) -
					geom.Dist(t.Nodes[v].P, t.Nodes[par].P)
			}
		}
		// Path lengths: recompute only dirty nodes, reading clean parents
		// from the stored array. Order() is root-first, so parents are
		// final before their children.
		pl := h.pl[i]
		read := func(v int32) int64 {
			if dirty[v] {
				return newpl[v]
			}
			return pl[v]
		}
		for _, v := range ev.Order() {
			if !dirty[v] {
				continue
			}
			par := t.Parent[v]
			if par < 0 {
				newpl[v] = 0
				continue
			}
			newpl[v] = read(int32(par)) + geom.Dist(pos(v), pos(int32(par)))
		}
		var d int64
		for v, nd := range t.Nodes {
			if nd.Pin >= 1 {
				if l := read(int32(v)); l > d {
					d = l
				}
			}
		}
		out[i] = pareto.Sol{W: w, D: d}
	}
	return out, nil
}

// markDirtyNodes marks node v's whole subtree dirty (BFS over the loaded
// evaluator adjacency).
func (h *Handle) markDirtyNodes(ev *tree.Evaluator, v int, dirty []bool) {
	if dirty[v] {
		return
	}
	queue := []int32{int32(v)}
	dirty[v] = true
	for head := 0; head < len(queue); head++ {
		for _, c := range ev.Children(int(queue[head])) {
			if !dirty[c] {
				dirty[c] = true
				queue = append(queue, c)
			}
		}
	}
}

// ensurePathLengths lazily builds the per-item node path-length arrays
// PreviewDelta seeds its delta propagation from; dropped on reroute.
func (h *Handle) ensurePathLengths() {
	if h.pl != nil {
		return
	}
	ev := tree.GetEvaluator()
	h.pl = make([][]int64, len(h.items))
	for i, it := range h.items {
		h.pl[i] = append([]int64(nil), ev.PathLengthsInto(it.Val)...)
	}
	tree.PutEvaluator(ev)
}
