package eco

// White-box property tests for the precise-invalidation protocol: which
// sub-frontier cache keys an edit evicts, which survive, and how the
// session counters bound the traffic. The black-box differential suite
// lives in eco_test.go (package eco_test).

import (
	"context"
	"math/rand"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// randNet builds a degree-n net spread over span×span at offset.
func randNet(rng *rand.Rand, n int, span int64, offset geom.Point) tree.Net {
	pins := make([]geom.Point, n)
	seen := map[geom.Point]bool{}
	for i := range pins {
		for {
			p := geom.Pt(offset.X+rng.Int63n(span), offset.Y+rng.Int63n(span))
			if !seen[p] {
				seen[p] = true
				pins[i] = p
				break
			}
		}
	}
	return tree.Net{Pins: pins}
}

// TestInvalidatePrecision pins the eviction protocol down key by key:
// after an edit dirties one pin, exactly the traced windows containing
// that pin are evicted; every other traced window — including all the
// windows of an unrelated tracked net — survives, and the hit/miss
// counters do not move (eviction is not cache traffic).
func TestInvalidatePrecision(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	s, err := NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hA, err := s.Track(ctx, randNet(rng, 40, 30000, geom.Pt(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	// B lives in a disjoint coordinate region, so no window key collides
	// with A's (keys are relative, but relative geometries of independent
	// random nets do not coincide).
	hB, err := s.Track(ctx, randNet(rng, 40, 30000, geom.Pt(1_000_000, 1_000_000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(hA.trace) == 0 || len(hB.trace) == 0 {
		t.Fatalf("no traced windows (A %d, B %d) — local search did not run?", len(hA.trace), len(hB.trace))
	}

	// Dirty one sink that at least one window covers.
	var dirty int
	for _, w := range hA.trace {
		for _, p := range w.Pins {
			if p > 0 {
				dirty = p
				break
			}
		}
		if dirty > 0 {
			break
		}
	}
	if dirty == 0 {
		t.Fatal("no sink appears in any traced window")
	}
	geo := make([]bool, hA.net.Degree())
	geo[dirty] = true

	touched, untouched := map[string]bool{}, map[string]bool{}
	for _, w := range hA.trace {
		hit := false
		for _, p := range w.Pins {
			if p == dirty {
				hit = true
				break
			}
		}
		if hit {
			touched[w.Key] = true
		}
	}
	for _, w := range hA.trace {
		if !touched[w.Key] {
			untouched[w.Key] = true
		}
	}
	if len(touched) == 0 {
		t.Fatal("dirty pin touches no window")
	}

	cache := s.copts.Cache
	hits0, misses0 := cache.Counters()
	len0 := cache.Len()
	inv0 := s.cacheInvalidations.Load()

	s.invalidate(hA.trace, geo)

	inv := s.cacheInvalidations.Load() - inv0
	if inv <= 0 || inv > int64(len(touched)) {
		t.Fatalf("%d invalidations for %d touched keys", inv, len(touched))
	}
	if h, m := cache.Counters(); h != hits0 || m != misses0 {
		t.Fatalf("eviction moved the hit/miss counters: (%d,%d) -> (%d,%d)", hits0, misses0, h, m)
	}
	if got := int64(len0 - cache.Len()); got != inv {
		t.Fatalf("cache shrank by %d, counted %d invalidations", got, inv)
	}
	// Touched keys are gone; untouched keys of A and all of B survive.
	// (Remove doubles as a destructive residency probe.)
	for k := range touched {
		if cache.Remove(k) {
			t.Fatal("touched key still resident after invalidate")
		}
	}
	for k := range untouched {
		if !cache.Remove(k) {
			t.Fatal("untouched key of the edited net was evicted")
		}
	}
	seen := map[string]bool{}
	for _, w := range hB.trace {
		if seen[w.Key] || untouched[w.Key] || touched[w.Key] {
			continue
		}
		seen[w.Key] = true
		if !cache.Remove(w.Key) {
			t.Fatal("unrelated net's window was evicted")
		}
	}
}

// TestInvalidationBounds replays a churn stream and checks, step by
// step, that the invalidation count never exceeds the number of traced
// windows touched by the edit's dirty-subtree closure (the documented
// upper bound), and that the channel invariant
// EcoHits + FullReroutes == Tracks + Reroutes holds throughout.
func TestInvalidationBounds(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	s, err := NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Track(ctx, randNet(rng, 32, 20000, geom.Pt(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 12; step++ {
		edits := []Edit{
			MovePin(1+rng.Intn(h.net.Degree()-1), geom.Pt(rng.Int63n(20000), rng.Int63n(20000))),
		}
		_, diff, err := Apply(h.net, edits)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute the closure the reroute will derive (the extra
		// markDirty call inflates only the DirtySubtrees stat, which this
		// test does not assert on).
		_, closure := h.markDirty(diff.OldDirty)
		bound := map[string]bool{}
		for _, w := range h.trace {
			for _, p := range w.Pins {
				if p < len(closure) && closure[p] {
					bound[w.Key] = true
					break
				}
			}
		}
		inv0 := s.cacheInvalidations.Load()
		if _, err := h.Reroute(ctx, edits); err != nil {
			t.Fatal(err)
		}
		if inv := s.cacheInvalidations.Load() - inv0; inv > int64(len(bound)) {
			t.Fatalf("step %d: %d invalidations exceed the %d windows the dirty closure touches", step, inv, len(bound))
		}
		st := s.Stats()
		if st.EcoHits+st.FullReroutes != st.Tracks+st.Reroutes {
			t.Fatalf("step %d: channel invariant broken: %+v", step, st)
		}
	}
}

// TestMemoRevisit checks the net-level memo across handles: tracking a
// pure translate of an already-routed geometry is answered as an EcoHit
// with the trace carried over, so a later edit on the translated handle
// still invalidates precisely.
func TestMemoRevisit(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	s, err := NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := randNet(rng, 24, 15000, geom.Pt(0, 0))
	h1, err := s.Track(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	moved := copyNet(base)
	for i := range moved.Pins {
		moved.Pins[i] = moved.Pins[i].Add(geom.Pt(777, -333))
	}
	hits0 := s.ecoHits.Load()
	h2, err := s.Track(ctx, moved)
	if err != nil {
		t.Fatal(err)
	}
	if s.ecoHits.Load() != hits0+1 {
		t.Fatalf("translated revisit was not a memo hit: %+v", s.Stats())
	}
	if len(h2.trace) != len(h1.trace) {
		t.Fatalf("trace not carried over: %d windows, want %d", len(h2.trace), len(h1.trace))
	}
	inv0 := s.cacheInvalidations.Load()
	if _, err := h2.Reroute(ctx, []Edit{MovePin(3, geom.Pt(500, 500))}); err != nil {
		t.Fatal(err)
	}
	if s.cacheInvalidations.Load() == inv0 {
		t.Fatal("edit on a memo-answered handle invalidated nothing")
	}
}

// TestMemoEviction checks the FIFO memo evicts one key at a time in
// insertion order, never wholesale.
func TestMemoEviction(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	s, err := NewSession(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.memoCap = 3
	var keys []string
	for i := 0; i < 5; i++ {
		net := randNet(rng, 12, 5000, geom.Pt(int64(i)*100_000, 0))
		k, _, _, _ := s.netKey(net)
		keys = append(keys, k)
		if _, err := s.Track(ctx, net); err != nil {
			t.Fatal(err)
		}
		if got := s.MemoLen(); got > 3 {
			t.Fatalf("after %d inserts: %d entries resident, cap 3", i+1, got)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		_, resident := s.memo[k]
		if want := i >= 2; resident != want {
			t.Fatalf("key %d resident=%v, want %v (FIFO order)", i, resident, want)
		}
	}
}
