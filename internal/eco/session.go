package eco

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/geom"
	"patlabor/internal/hanan"
	"patlabor/internal/lut"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// DefaultMemoEntries bounds a Session's net-level frontier memo. ECO
// try/revert loops revisit a handful of geometries per tracked net, so
// the bound is generous while staying far below batch memory.
const DefaultMemoEntries = 1 << 12

// Session is the incremental-rerouting state shared by a set of tracked
// nets: the resolved routing options, the warm sub-frontier memo
// (core.SubCache, shared with the batch engine when one constructed the
// session), and the net-level frontier memo that answers revisited
// geometries by a verified isometry. A Session is safe for concurrent
// use; all cached state is reuse-only — every answer is byte-identical
// to a from-scratch core.Route of the post-edit net.
type Session struct {
	// copts is the resolved core configuration every full route uses;
	// copts.Cache is the shared sub-frontier memo (nil iff NoCache).
	copts  core.Options
	lambda int
	table  *lut.Table

	// memo answers whole-net geometry revisits, keyed exactly like the
	// batch engine's planDedup — canonical dihedral class ('S') for
	// table-covered small degrees, translation class ('L') otherwise —
	// so every hit is synthesized through the same verified
	// hanan.Isometry machinery. nil iff NoCache. Entries are evicted one
	// key at a time in insertion order when the memo is full (precise,
	// never a wholesale flush) and are never stale: keys encode the full
	// geometry, so a mutated net simply keys elsewhere.
	mu       sync.Mutex
	memo     map[string]*memoEntry
	memoFIFO []string
	memoCap  int

	tracks             atomic.Int64
	reroutes           atomic.Int64
	ecoHits            atomic.Int64
	fullReroutes       atomic.Int64
	dirtySubtrees      atomic.Int64
	cacheInvalidations atomic.Int64
}

// memoEntry is one memoized net frontier in the originating net's
// concrete frame, plus the sub-frontier windows its route consulted.
// Entries are immutable after construction: later hits (and the traces
// solve returns) alias them directly.
//
//patlint:shared cache-owned; memo hits and returned traces alias these slices
type memoEntry struct {
	canonical bool
	src       geom.Point
	ranks     hanan.Ranks
	tf        hanan.Transform
	items     []pareto.Item[*tree.Tree]
	// trace carries to translation-keyed hits verbatim: window keys are
	// translation invariant and pin selections are translation
	// equivariant, so the hit net's route would record exactly these
	// windows. Canonical-keyed entries are small nets with empty traces.
	trace []core.TraceWindow
}

// Stats is a snapshot of a Session's cumulative counters. The invariant
// EcoHits + FullReroutes == Tracks + Reroutes holds at every quiescent
// point: each Track or Reroute resolves through exactly one of the two
// channels.
type Stats struct {
	// Tracks / Reroutes count the nets entering the session and the
	// incremental reroute calls on them.
	Tracks   int64
	Reroutes int64
	// EcoHits counts routes answered without running the router: the
	// identity fast path (edits cancelled out) and net-memo isometry
	// hits.
	EcoHits int64
	// FullReroutes counts routes answered by a full core.Route (with the
	// session's warm sub-frontier memo).
	FullReroutes int64
	// DirtySubtrees counts the subtree roots edits dirtied across the
	// previous frontiers' trees.
	DirtySubtrees int64
	// CacheInvalidations counts the sub-frontier cache keys evicted
	// precisely because their window contained a dirtied pin.
	CacheInvalidations int64
}

// NewSession builds a session from resolved core options. A nil
// opts.Table uses the shared default table; a nil opts.Cache (with
// caching on) gets a private sub-frontier memo. NoCache disables both
// the sub-frontier memo and the net-level memo — reroutes then exercise
// only the identity fast path, proving results never depend on cache
// state.
func NewSession(opts core.Options) (*Session, error) {
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = core.DefaultLambda
	}
	if lambda < 2 || lambda > dw.MaxExactDegree {
		return nil, fmt.Errorf("eco: lambda %d out of range [2,%d]", lambda, dw.MaxExactDegree)
	}
	table := opts.Table
	if table == nil {
		table = lut.Default()
	}
	copts := opts
	copts.Lambda = lambda
	copts.Table = table
	copts.Trace = nil
	if opts.NoCache {
		copts.Cache = nil
	} else if copts.Cache == nil {
		copts.Cache = core.NewSubCache(0)
	}
	s := &Session{copts: copts, lambda: lambda, table: table}
	if !opts.NoCache {
		s.memo = make(map[string]*memoEntry)
		s.memoCap = DefaultMemoEntries
	}
	return s, nil
}

// SubCache returns the session's shared sub-frontier memo (nil iff the
// session was built with NoCache).
func (s *Session) SubCache() *core.SubCache { return s.copts.Cache }

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() Stats {
	return Stats{
		Tracks:             s.tracks.Load(),
		Reroutes:           s.reroutes.Load(),
		EcoHits:            s.ecoHits.Load(),
		FullReroutes:       s.fullReroutes.Load(),
		DirtySubtrees:      s.dirtySubtrees.Load(),
		CacheInvalidations: s.cacheInvalidations.Load(),
	}
}

// Handle is one tracked net: the session's private copy of its current
// geometry, its current frontier, and the sub-frontier windows the route
// that produced the frontier consulted. Handles deep-copy on every
// boundary, so callers mutating inputs or returned trees cannot corrupt
// session state. A Handle is safe for concurrent use, but edits
// serialize — the net has one current geometry.
type Handle struct {
	s *Session

	mu    sync.Mutex
	net   tree.Net
	items []pareto.Item[*tree.Tree]
	trace []core.TraceWindow
	// pl caches, per frontier item, the node path lengths of the current
	// trees; built lazily by PreviewDelta and dropped on reroute.
	pl [][]int64
}

// Track registers net with the session, routes it (through the memo if
// an equivalent geometry was routed before) and returns its handle. The
// input net is copied; later caller mutations of it are invisible to the
// handle.
func (s *Session) Track(ctx context.Context, net tree.Net) (*Handle, error) {
	s.tracks.Add(1)
	n := copyNet(net)
	items, trace, err := s.solve(ctx, n)
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, net: n, items: items, trace: trace}, nil
}

// Degree returns the handle's current net degree.
func (h *Handle) Degree() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.net.Degree()
}

// Net returns a copy of the handle's current (post-edit) net.
func (h *Handle) Net() tree.Net {
	h.mu.Lock()
	defer h.mu.Unlock()
	return copyNet(h.net)
}

// Frontier returns a deep copy of the handle's current Pareto frontier.
func (h *Handle) Frontier() []pareto.Item[*tree.Tree] {
	h.mu.Lock()
	defer h.mu.Unlock()
	return cloneItems(h.items)
}

// Reroute applies edits to the handle's net and returns the post-edit
// Pareto frontier, byte-identical to core.Route on the post-edit net.
// Cancelled edits short-circuit to the previous frontier; revisited
// geometries are answered from the net memo; everything else is a full
// route against the warm sub-frontier memo, after the edit's dirtied
// windows have been precisely evicted from it. An invalid edit leaves
// the handle unchanged.
func (h *Handle) Reroute(ctx context.Context, edits []Edit) ([]pareto.Item[*tree.Tree], error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.s
	s.reroutes.Add(1)
	next, diff, err := Apply(h.net, edits)
	if err != nil {
		return nil, err
	}
	if diff.Unchanged {
		s.ecoHits.Add(1)
		return cloneItems(h.items), nil
	}
	geo, _ := h.markDirty(diff.OldDirty)
	if s.copts.Cache != nil && len(h.trace) > 0 {
		s.invalidate(h.trace, geo)
	}
	items, trace, err := s.solve(ctx, next)
	if err != nil {
		return nil, err
	}
	h.net = next
	h.items = items
	h.trace = trace
	h.pl = nil
	return cloneItems(items), nil
}

// markDirty marks the pins of the previous net dirtied by the edit. geo
// holds the geometrically dirty pins themselves — the pins whose cached
// window keys can never be reproduced again and are therefore safe to
// evict. closure additionally holds every pin realised inside their
// subtrees across the previous frontier's trees (the VPR-style dirty
// region — any reuse of the old routing below an edited pin is void);
// it upper-bounds the cache entries an edit may touch and scopes
// PreviewDelta's re-evaluation. Both slices are indexed by previous-net
// pin; subtree roots found count toward the DirtySubtrees stat.
func (h *Handle) markDirty(oldDirty []int) (geo, closure []bool) {
	// Roots are detected against geo only, so closure pins do not
	// cascade into further subtrees.
	geo = make([]bool, h.net.Degree())
	for _, p := range oldDirty {
		geo[p] = true
	}
	closure = append([]bool(nil), geo...)
	var roots int64
	ev := tree.GetEvaluator()
	for _, it := range h.items {
		t := it.Val
		ev.Load(t)
		for v := range t.Nodes {
			p := t.Nodes[v].Pin
			if p < 0 || p >= len(geo) || !geo[p] {
				continue
			}
			roots++
			h.markSubtree(ev, t, v, closure)
		}
	}
	tree.PutEvaluator(ev)
	h.s.dirtySubtrees.Add(roots)
	return geo, closure
}

// markSubtree marks every pin realised in the subtree of node v (BFS
// over the evaluator's CSR adjacency, reusing the caller's stack-free
// queue pattern from tree.TopoOrder).
func (h *Handle) markSubtree(ev *tree.Evaluator, t *tree.Tree, v int, dirty []bool) {
	queue := []int32{int32(v)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if p := t.Nodes[u].Pin; p >= 0 && p < len(dirty) {
			dirty[p] = true
		}
		queue = append(queue, ev.Children(int(u))...)
	}
}

// invalidate evicts from the sub-frontier cache exactly the traced
// windows containing a dirtied pin — their keys encode geometry the edit
// changed, so this net can never look them up again; evicting them
// precisely keeps live windows clear of the cache's wholesale capacity
// flush. Each distinct key is removed at most once; only keys actually
// resident count as invalidations.
func (s *Session) invalidate(trace []core.TraceWindow, geo []bool) {
	var n int64
	removed := make(map[string]bool)
	for _, w := range trace {
		if removed[w.Key] {
			continue
		}
		touched := false
		for _, p := range w.Pins {
			if p < len(geo) && geo[p] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		removed[w.Key] = true
		if s.copts.Cache.Remove(w.Key) {
			n++
		}
	}
	s.cacheInvalidations.Add(n)
}

// solve answers net through the net-level memo when possible and by a
// full (warm-cache) route otherwise. The returned items are fresh trees
// owned by the caller; the trace may alias an immutable memo entry.
func (s *Session) solve(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], []core.TraceWindow, error) {
	if s.memo == nil || net.Degree() < 2 {
		return s.routeFull(ctx, net)
	}
	key, canonical, r, tf := s.netKey(net)
	s.mu.Lock()
	e := s.memo[key]
	s.mu.Unlock()
	if e != nil {
		if iso, err := netIsometry(e, net, r, tf); err == nil {
			s.ecoHits.Add(1)
			out := make([]pareto.Item[*tree.Tree], len(e.items))
			for i, it := range e.items {
				out[i] = pareto.Item[*tree.Tree]{Sol: it.Sol, Val: iso.ApplyTree(it.Val)}
			}
			return out, e.trace, nil
		}
		// A matching key whose isometry cannot be derived would be a key
		// collision; route rather than trust the entry.
	}
	items, trace, err := s.routeFull(ctx, net)
	if err != nil {
		return nil, nil, err
	}
	s.memoStore(key, &memoEntry{
		canonical: canonical,
		src:       net.Pins[0],
		ranks:     r,
		tf:        tf,
		items:     cloneItems(items),
		trace:     trace,
	})
	return items, trace, nil
}

// routeFull runs the full router on net, recording the consulted
// sub-frontier windows when the session has a cache.
func (s *Session) routeFull(ctx context.Context, net tree.Net) ([]pareto.Item[*tree.Tree], []core.TraceWindow, error) {
	s.fullReroutes.Add(1)
	copts := s.copts
	var tr *core.SubTrace
	if copts.Cache != nil {
		tr = &core.SubTrace{}
		copts.Trace = tr
	}
	items, err := core.RouteContext(ctx, net, copts)
	if err != nil {
		return nil, nil, err
	}
	var windows []core.TraceWindow
	if tr != nil {
		windows = tr.Windows
	}
	return items, windows, nil
}

// netKey builds the net-level memo key, mirroring the batch engine's
// planDedup byte for byte: canonical dihedral class ('S') when the
// lookup table answers the degree directly, translation class ('L')
// otherwise (the DP and the local search are translation-equivariant but
// not reflection-invariant in their tie-breaks).
func (s *Session) netKey(net tree.Net) (key string, canonical bool, r hanan.Ranks, tf hanan.Transform) {
	n := net.Degree()
	canonical = n <= s.lambda && s.table.Covers(n)
	var buf []byte
	if canonical {
		r = hanan.RanksOf(net)
		buf = append(buf, 'S')
		buf, tf = hanan.AppendCanonicalKey(buf, r.Pattern)
		hs, vs := tf.ApplyLengthsInto(r.H, r.V, nil, nil)
		for _, g := range hs {
			buf = binary.AppendVarint(buf, g)
		}
		for _, g := range vs {
			buf = binary.AppendVarint(buf, g)
		}
		return string(buf), canonical, r, tf
	}
	buf = append(buf, 'L')
	buf = binary.AppendUvarint(buf, uint64(n))
	src := net.Pins[0]
	for _, p := range net.Pins[1:] {
		buf = binary.AppendVarint(buf, p.X-src.X)
		buf = binary.AppendVarint(buf, p.Y-src.Y)
	}
	return string(buf), canonical, r, tf
}

// netIsometry derives the verified map from a memo entry's net onto net.
func netIsometry(e *memoEntry, net tree.Net, r hanan.Ranks, tf hanan.Transform) (*hanan.Isometry, error) {
	if e.canonical {
		return hanan.NewIsometry(e.ranks, e.tf, r, tf)
	}
	return hanan.Translation(net.Pins[0].Sub(e.src)), nil
}

// memoStore inserts an entry, evicting the oldest keys one at a time at
// capacity (first writer wins on duplicate keys).
func (s *Session) memoStore(key string, e *memoEntry) {
	s.mu.Lock()
	if _, ok := s.memo[key]; !ok {
		for len(s.memo) >= s.memoCap && len(s.memoFIFO) > 0 {
			delete(s.memo, s.memoFIFO[0])
			s.memoFIFO = s.memoFIFO[1:]
		}
		s.memo[key] = e
		s.memoFIFO = append(s.memoFIFO, key)
	}
	s.mu.Unlock()
}

// MemoLen returns the number of resident net-memo entries (0 with
// NoCache).
func (s *Session) MemoLen() int {
	s.mu.Lock()
	n := len(s.memo)
	s.mu.Unlock()
	return n
}

func copyNet(n tree.Net) tree.Net {
	return tree.Net{Pins: append([]geom.Point(nil), n.Pins...)}
}

func cloneItems(items []pareto.Item[*tree.Tree]) []pareto.Item[*tree.Tree] {
	out := make([]pareto.Item[*tree.Tree], len(items))
	for i, it := range items {
		out[i] = pareto.Item[*tree.Tree]{Sol: it.Sol, Val: it.Val.Clone()}
	}
	return out
}
