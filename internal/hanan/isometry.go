package hanan

import (
	"fmt"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Isometry is a concrete L1 isometry between two instances of the same
// canonical symmetry class: an optional axis swap followed by per-axis
// sign flips and translations, plus the induced pin bijection. It is the
// bridge that lets one routed instance answer for another — trees routed
// for instance A map onto exact trees for instance B with identical
// wirelength and delay, because L1 distances are invariant under axis
// swaps, reflections and translations.
type Isometry struct {
	swap bool
	// The axis signs are ±1; the narrow type carries that bound into the
	// sign*coordinate products (an int8 factor cannot overflow an int64
	// product with an in-range coordinate).
	sx, sy int8
	cx, cy int64
	// pins maps A's pin indices to B's; nil means the identity.
	pins []int
}

// Translation returns the isometry that translates points by d with the
// identity pin mapping.
func Translation(d geom.Point) *Isometry {
	return &Isometry{sx: 1, sy: 1, cx: d.X, cy: d.Y}
}

// NewIsometry derives the isometry mapping instance A onto instance B
// from their rank-space views and canonicalizing transforms (as returned
// by RanksOf and AppendCanonicalKey). The caller must have established
// that A and B share a canonical key — same canonical pattern and same
// canonically transformed gap vectors; NewIsometry then composes
// tb⁻¹ ∘ ta on the rank grid, solves for the per-axis affine maps, and
// verifies every rank coordinate and every pin correspondence, so a
// caller bug (or a key collision) surfaces as an error rather than a
// wrong tree.
func NewIsometry(ra Ranks, ta Transform, rb Ranks, tb Transform) (*Isometry, error) {
	n := ra.Pattern.N
	if rb.Pattern.N != n {
		return nil, fmt.Errorf("hanan: isometry between degree %d and %d", n, rb.Pattern.N)
	}
	if n == 0 {
		return nil, fmt.Errorf("hanan: isometry of empty instance")
	}
	tbInv := tb.Invert()
	mapCell := func(i, j int) (int, int) {
		ci, cj := ta.Apply(n, i, j)
		return tbInv.Apply(n, ci, cj)
	}
	iso := &Isometry{swap: ta.Transpose != tb.Transpose}

	// Each output axis of the composite depends on exactly one input
	// axis: B's x-rank on A's x-rank (or y-rank when the composite
	// transposes), and symmetrically for y. Solve each 1-D affine map
	// from the extreme ranks, then verify it on every rank coordinate.
	var srcX, srcY []int64 // A-side coordinate tables feeding B's x and y
	if iso.swap {
		srcX, srcY = ra.Ys, ra.Xs
	} else {
		srcX, srcY = ra.Xs, ra.Ys
	}
	biOf := func(k int) int {
		if iso.swap {
			bi, _ := mapCell(0, k)
			return bi
		}
		bi, _ := mapCell(k, 0)
		return bi
	}
	bjOf := func(k int) int {
		if iso.swap {
			_, bj := mapCell(k, 0)
			return bj
		}
		_, bj := mapCell(0, k)
		return bj
	}
	var err error
	if iso.sx, iso.cx, err = axisMap(srcX, rb.Xs, biOf); err != nil {
		return nil, fmt.Errorf("hanan: isometry x-axis: %w", err)
	}
	if iso.sy, iso.cy, err = axisMap(srcY, rb.Ys, bjOf); err != nil {
		return nil, fmt.Errorf("hanan: isometry y-axis: %w", err)
	}

	// Pin bijection: A's pin p occupies rank cell (XRank[p], YRank[p]);
	// its image cell must be occupied by exactly one B pin (x-ranks are a
	// bijection), and that pin's y-rank must agree.
	invX := make([]int, n)
	for p, r := range rb.XRank {
		invX[r] = p
	}
	pins := make([]int, n)
	identity := true
	for p := 0; p < n; p++ {
		bi, bj := mapCell(ra.XRank[p], ra.YRank[p])
		q := invX[bi]
		if rb.YRank[q] != bj {
			return nil, fmt.Errorf("hanan: isometry pin %d: image cell (%d,%d) not realised by a B pin", p, bi, bj)
		}
		pins[p] = q
		if q != p {
			identity = false
		}
	}
	if pins[0] != 0 {
		return nil, fmt.Errorf("hanan: isometry maps source to pin %d", pins[0])
	}
	if !identity {
		iso.pins = pins
	}
	return iso, nil
}

// axisMap solves dst[biOf(k)] = s*src[k] + c for s ∈ {±1} and c, or
// reports that no such map exists.
func axisMap(src, dst []int64, biOf func(int) int) (s int8, c int64, err error) {
	n := len(src)
	s = 1
	lo, hi := src[0], src[n-1]
	dlo, dhi := dst[biOf(0)], dst[biOf(n-1)]
	if (hi-lo > 0) != (dhi-dlo > 0) && hi != lo {
		s = -1
	}
	c = dlo - int64(s)*lo
	for k := 0; k < n; k++ {
		if int64(s)*src[k]+c != dst[biOf(k)] {
			return 0, 0, fmt.Errorf("rank %d: %d does not map to %d under (%+d, %+d)", k, src[k], dst[biOf(k)], s, c)
		}
	}
	return s, c, nil
}

// Point maps a point of instance A's plane into instance B's.
func (iso *Isometry) Point(p geom.Point) geom.Point {
	if iso.swap {
		return geom.Point{X: int64(iso.sx)*p.Y + iso.cx, Y: int64(iso.sy)*p.X + iso.cy}
	}
	return geom.Point{X: int64(iso.sx)*p.X + iso.cx, Y: int64(iso.sy)*p.Y + iso.cy}
}

// Pin maps a pin index of instance A to the corresponding pin of B.
func (iso *Isometry) Pin(p int) int {
	if iso.pins == nil {
		return p
	}
	return iso.pins[p]
}

// ApplyTree returns a copy of t (a tree routed for instance A) mapped
// into instance B's frame: node positions through Point, pin indices
// through Pin. Structure, wirelength and every path length are
// preserved exactly.
func (iso *Isometry) ApplyTree(t *tree.Tree) *tree.Tree {
	out := t.Clone()
	for i := range out.Nodes {
		out.Nodes[i].P = iso.Point(out.Nodes[i].P)
		if out.Nodes[i].Pin >= 0 {
			out.Nodes[i].Pin = iso.Pin(out.Nodes[i].Pin)
		}
	}
	return out
}
