package hanan

import (
	"bytes"
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// concreteApply realises a Transform plus a translation as a concrete
// plane isometry (the test's ground truth, independent of Isometry).
func concreteApply(tf Transform, d geom.Point, p geom.Point) geom.Point {
	x, y := p.X, p.Y
	if tf.Transpose {
		x, y = y, x
	}
	if tf.FlipX {
		x = -x
	}
	if tf.FlipY {
		y = -y
	}
	return geom.Pt(x+d.X, y+d.Y)
}

func canonicalKeyAndGaps(t *testing.T, net tree.Net) ([]byte, Ranks, Transform) {
	t.Helper()
	r := RanksOf(net)
	key, tf := AppendCanonicalKey(nil, r.Pattern)
	hh, vv := tf.ApplyLengths(r.H, r.V)
	for _, g := range hh {
		key = append(key, byte(g), byte(g>>8))
	}
	for _, g := range vv {
		key = append(key, byte(g), byte(g>>8))
	}
	return key, r, tf
}

// TestIsometryRandomSymmetries checks the contract the sub-frontier memo
// and batch dedup rely on: whenever two instances produce the same
// canonical key (pattern plus canonically transformed gaps), NewIsometry
// derives a verified map between them. Keys of symmetric instances may
// still differ when the canonical pattern has a nontrivial stabilizer —
// the two instances then canonicalize through different transforms and
// the gap vectors land in different frames. That only costs a missed
// cache hit, so the test tolerates (and counts) such trials.
func TestIsometryRandomSymmetries(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	transforms := AllTransforms()
	matched := 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		// Distinct coordinates keep rank tie-breaks out of the picture.
		xs := rng.Perm(500)
		ys := rng.Perm(500)
		netA := tree.Net{Pins: make([]geom.Point, n)}
		for i := 0; i < n; i++ {
			netA.Pins[i] = geom.Pt(int64(xs[i]), int64(ys[i]))
		}
		tf := transforms[rng.Intn(len(transforms))]
		d := geom.Pt(rng.Int63n(2000)-1000, rng.Int63n(2000)-1000)
		// B: a concrete symmetry+translation of A, with the sink order
		// permuted (pin identity must be recovered, not assumed).
		perm := rng.Perm(n - 1)
		netB := tree.Net{Pins: make([]geom.Point, n)}
		netB.Pins[0] = concreteApply(tf, d, netA.Pins[0])
		for i, j := range perm {
			netB.Pins[1+j] = concreteApply(tf, d, netA.Pins[1+i])
		}

		keyA, ra, ta := canonicalKeyAndGaps(t, netA)
		keyB, rb, tb := canonicalKeyAndGaps(t, netB)
		if !bytes.Equal(keyA, keyB) {
			continue // stabilizer ambiguity: a missed hit, not an error
		}
		matched++
		iso, err := NewIsometry(ra, ta, rb, tb)
		if err != nil {
			t.Fatalf("trial %d: NewIsometry: %v", trial, err)
		}
		if iso.Pin(0) != 0 {
			t.Fatalf("trial %d: source maps to pin %d", trial, iso.Pin(0))
		}
		for p := 0; p < n; p++ {
			got := iso.Point(netA.Pins[p])
			want := netB.Pins[iso.Pin(p)]
			if got != want {
				t.Fatalf("trial %d: pin %d maps to %v, want %v", trial, p, got, want)
			}
		}

		// A routed tree for A must map to a valid tree for B with the
		// same objectives.
		tr := tree.Star(netA)
		tr.Steinerize()
		mapped := iso.ApplyTree(tr)
		if err := mapped.Validate(netB); err != nil {
			t.Fatalf("trial %d: mapped tree invalid: %v", trial, err)
		}
		if tr.Sol() != mapped.Sol() {
			t.Fatalf("trial %d: sol %v != mapped sol %v", trial, tr.Sol(), mapped.Sol())
		}
	}
	// Most random patterns have a trivial stabilizer, so the isometry
	// path must have been exercised on the bulk of the trials.
	if matched < 200 {
		t.Fatalf("only %d/300 trials produced matching canonical keys", matched)
	}
}

func TestIsometryTranslation(t *testing.T) {
	iso := Translation(geom.Pt(5, -3))
	if got := iso.Point(geom.Pt(10, 10)); got != geom.Pt(15, 7) {
		t.Fatalf("Point = %v", got)
	}
	if iso.Pin(4) != 4 {
		t.Fatalf("Pin(4) = %d", iso.Pin(4))
	}
}

func TestIsometryRejectsMismatch(t *testing.T) {
	netA := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 5), geom.Pt(20, 30))
	netB := tree.NewNet(geom.Pt(0, 0), geom.Pt(10, 5), geom.Pt(20, 31))
	ra, rb := RanksOf(netA), RanksOf(netB)
	_, ta := AppendCanonicalKey(nil, ra.Pattern)
	_, tb := AppendCanonicalKey(nil, rb.Pattern)
	// Same pattern, different geometry: the coordinate verification must
	// refuse to produce a map.
	if _, err := NewIsometry(ra, ta, rb, tb); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
