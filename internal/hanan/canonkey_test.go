package hanan

import (
	"math/rand"
	"testing"
)

// canonicalReference is the pre-optimization implementation of Canonical:
// materialize all 8 transformed patterns and keep the lexicographically
// smallest key, earliest transform winning ties.
func canonicalReference(p Pattern) (Pattern, Transform) {
	best := p
	bestT := Transform{}
	bestKey := p.Key()
	for _, t := range AllTransforms() {
		q := TransformPattern(p, t)
		if k := q.Key(); k < bestKey {
			best, bestT, bestKey = q, t, k
		}
	}
	return best, bestT
}

func TestAppendCanonicalKeyMatchesReference(t *testing.T) {
	check := func(p Pattern) {
		t.Helper()
		wantP, wantT := canonicalReference(p)
		var buf [MaxKeyLen]byte
		key, tf := AppendCanonicalKey(buf[:0], p)
		if string(key) != wantP.Key() {
			t.Fatalf("pattern %v: canonical key %q, want %q", p, key, wantP.Key())
		}
		if tf != wantT {
			t.Fatalf("pattern %v: transform %+v, want %+v", p, tf, wantT)
		}
		gotP, gotT := Canonical(p)
		if gotP.Key() != wantP.Key() || gotT != wantT {
			t.Fatalf("pattern %v: Canonical = (%v, %+v), want (%v, %+v)", p, gotP, gotT, wantP, wantT)
		}
	}
	for n := 2; n <= 5; n++ {
		for _, p := range AllPatterns(n) {
			check(p)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 6 + rng.Intn(11) // 6..16 (up to dw.MaxExactDegree)
		perm := rng.Perm(n)
		p := Pattern{N: n, Perm: make([]uint8, n), Src: uint8(rng.Intn(n))}
		for i, v := range perm {
			p.Perm[i] = uint8(v)
		}
		check(p)
	}
}

func TestAppendCanonicalKeyAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	perm := rng.Perm(9)
	p := Pattern{N: 9, Perm: make([]uint8, 9), Src: 3}
	for i, v := range perm {
		p.Perm[i] = uint8(v)
	}
	var buf [MaxKeyLen]byte
	allocs := testing.AllocsPerRun(200, func() {
		AppendCanonicalKey(buf[:0], p)
	})
	if allocs != 0 {
		t.Fatalf("AppendCanonicalKey allocates %.1f objects per run, want 0", allocs)
	}
}

func TestApplyLengthsIntoMatchesApplyLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var hbuf, vbuf [MaxKeyLen]int64
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		h := make([]int64, n-1)
		v := make([]int64, n-1)
		for k := range h {
			h[k] = rng.Int63n(100)
			v[k] = rng.Int63n(100)
		}
		for _, tf := range AllTransforms() {
			wantH, wantV := tf.ApplyLengths(h, v)
			gotH, gotV := tf.ApplyLengthsInto(h, v, hbuf[:0], vbuf[:0])
			if len(gotH) != len(wantH) || len(gotV) != len(wantV) {
				t.Fatalf("transform %+v: length mismatch", tf)
			}
			for k := range wantH {
				if gotH[k] != wantH[k] || gotV[k] != wantV[k] {
					t.Fatalf("transform %+v: Into (%v,%v), want (%v,%v)", tf, gotH, gotV, wantH, wantV)
				}
			}
		}
	}
}
