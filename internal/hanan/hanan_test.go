package hanan

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

func TestGridBasics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 2), geom.Pt(3, 7), geom.Pt(5, 7)}
	g := NewGrid(pts)
	if len(g.Xs) != 3 || len(g.Ys) != 3 {
		t.Fatalf("grid lines = %v x %v", g.Xs, g.Ys)
	}
	if g.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d, want 9", g.NumNodes())
	}
	for _, p := range pts {
		idx, err := g.Locate(p)
		if err != nil {
			t.Fatalf("Locate(%v): %v", p, err)
		}
		if g.Point(idx) != p {
			t.Fatalf("Point(Locate(%v)) = %v", p, g.Point(idx))
		}
	}
	if _, err := g.Locate(geom.Pt(1, 1)); err == nil {
		t.Fatal("Locate accepted an off-grid point")
	}
	a, _ := g.Locate(geom.Pt(0, 0))
	b, _ := g.Locate(geom.Pt(5, 7))
	if g.Dist(a, b) != 12 {
		t.Fatalf("Dist = %d, want 12", g.Dist(a, b))
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g := NewGrid([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 2), geom.Pt(4, 5), geom.Pt(9, 3)})
	for idx := 0; idx < g.NumNodes(); idx++ {
		i, j := g.Coords(idx)
		if g.Node(i, j) != idx {
			t.Fatalf("Coords/Node round trip failed at %d", idx)
		}
	}
}

func TestRanksOf(t *testing.T) {
	// Pins: source (5,5); sinks (0,0), (10,2).
	net := tree.NewNet(geom.Pt(5, 5), geom.Pt(0, 0), geom.Pt(10, 2))
	r := RanksOf(net)
	if r.Pattern.N != 3 {
		t.Fatalf("N = %d", r.Pattern.N)
	}
	// x order: (0,0)=pin1, (5,5)=pin0, (10,2)=pin2 -> source x-rank 1.
	if r.Pattern.Src != 1 {
		t.Fatalf("Src = %d, want 1", r.Pattern.Src)
	}
	// y ranks: pin1 y=0 -> 0, pin2 y=2 -> 1, pin0 y=5 -> 2.
	want := []uint8{0, 2, 1}
	for i := range want {
		if r.Pattern.Perm[i] != want[i] {
			t.Fatalf("Perm = %v, want %v", r.Pattern.Perm, want)
		}
	}
	if r.H[0] != 5 || r.H[1] != 5 || r.V[0] != 2 || r.V[1] != 3 {
		t.Fatalf("gaps H=%v V=%v", r.H, r.V)
	}
	if !r.Pattern.Valid() {
		t.Fatal("pattern invalid")
	}
}

func TestRanksOfTies(t *testing.T) {
	// Two pins share x; ranks must still be a permutation, gap zero.
	net := tree.NewNet(geom.Pt(0, 0), geom.Pt(0, 5), geom.Pt(3, 2))
	r := RanksOf(net)
	if !r.Pattern.Valid() {
		t.Fatalf("pattern with ties invalid: %v", r.Pattern)
	}
	if r.H[0] != 0 {
		t.Fatalf("tied gap H[0] = %d, want 0", r.H[0])
	}
}

func TestTransformApplyInvert(t *testing.T) {
	n := 5
	for _, tr := range AllTransforms() {
		inv := tr.Invert()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ai, aj := tr.Apply(n, i, j)
				bi, bj := inv.Apply(n, ai, aj)
				if bi != i || bj != j {
					t.Fatalf("transform %+v: invert failed at (%d,%d) -> (%d,%d) -> (%d,%d)",
						tr, i, j, ai, aj, bi, bj)
				}
			}
		}
	}
}

func TestTransformPatternBijective(t *testing.T) {
	p := Pattern{N: 4, Perm: []uint8{2, 0, 3, 1}, Src: 2}
	for _, tr := range AllTransforms() {
		q := TransformPattern(p, tr)
		if !q.Valid() {
			t.Fatalf("transform %+v produced invalid pattern %v", tr, q)
		}
		back := TransformPattern(q, tr.Invert())
		if back.Key() != p.Key() {
			t.Fatalf("transform %+v not invertible: %v -> %v -> %v", tr, p, q, back)
		}
	}
}

func TestCanonicalIsIdempotentAndInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		perm := rng.Perm(n)
		p := Pattern{N: n, Perm: make([]uint8, n), Src: uint8(rng.Intn(n))}
		for i, v := range perm {
			p.Perm[i] = uint8(v)
		}
		c, tr := Canonical(p)
		if TransformPattern(p, tr).Key() != c.Key() {
			t.Fatal("returned transform does not map to the canonical pattern")
		}
		// Canonical of any transformed variant is the same pattern.
		for _, u := range AllTransforms() {
			c2, _ := Canonical(TransformPattern(p, u))
			if c2.Key() != c.Key() {
				t.Fatalf("canonical not invariant under %+v: %v vs %v", u, c2, c)
			}
		}
		cc, _ := Canonical(c)
		if cc.Key() != c.Key() {
			t.Fatal("Canonical not idempotent")
		}
	}
}

func TestApplyLengthsRoundTrip(t *testing.T) {
	h := []int64{1, 2, 3}
	v := []int64{4, 5, 6}
	for _, tr := range AllTransforms() {
		hh, vv := tr.ApplyLengths(h, v)
		h2, v2 := tr.Invert().ApplyLengths(hh, vv)
		for k := range h {
			if h2[k] != h[k] || v2[k] != v[k] {
				t.Fatalf("transform %+v: lengths round trip failed: %v %v", tr, h2, v2)
			}
		}
	}
}

func TestApplyLengthsMatchesGeometry(t *testing.T) {
	// Transforming an instance geometrically must give the same gaps as
	// ApplyLengths on the original gaps.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(4)
		net := randomGeneralNet(rng, n)
		r := RanksOf(net)
		for _, tr := range AllTransforms() {
			tnet := transformNet(net, tr)
			tr2 := RanksOf(tnet)
			hh, vv := tr.ApplyLengths(r.H, r.V)
			for k := 0; k < n-1; k++ {
				if tr2.H[k] != hh[k] || tr2.V[k] != vv[k] {
					t.Fatalf("trial %d transform %+v: geometric gaps H=%v V=%v, ApplyLengths H=%v V=%v",
						trial, tr, tr2.H, tr2.V, hh, vv)
				}
			}
			// Pattern must match too.
			if TransformPattern(r.Pattern, tr).Key() != tr2.Pattern.Key() {
				t.Fatalf("trial %d transform %+v: pattern mismatch", trial, tr)
			}
		}
	}
}

// randomGeneralNet returns a net with pairwise distinct x and y coords.
func randomGeneralNet(rng *rand.Rand, n int) tree.Net {
	xs := rng.Perm(100)[:n]
	ys := rng.Perm(100)[:n]
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(int64(xs[i]), int64(ys[i]))
	}
	return tree.Net{Pins: pins}
}

// transformNet applies the rank-grid transform geometrically: transpose
// swaps coordinates, flips negate them.
func transformNet(net tree.Net, tr Transform) tree.Net {
	pins := make([]geom.Point, len(net.Pins))
	for i, p := range net.Pins {
		q := p
		if tr.Transpose {
			q.X, q.Y = q.Y, q.X
		}
		if tr.FlipX {
			q.X = -q.X
		}
		if tr.FlipY {
			q.Y = -q.Y
		}
		pins[i] = q
	}
	return tree.Net{Pins: pins}
}

func TestAllPatternsCount(t *testing.T) {
	if got := len(AllPatterns(3)); got != 6*3 {
		t.Fatalf("AllPatterns(3) = %d, want 18", got)
	}
	if got := len(AllPatterns(4)); got != 24*4 {
		t.Fatalf("AllPatterns(4) = %d, want 96", got)
	}
}

func TestCanonicalPatternsCoverAll(t *testing.T) {
	for n := 2; n <= 5; n++ {
		canon := CanonicalPatterns(n)
		keys := make(map[string]bool)
		for _, c := range canon {
			keys[c.Key()] = true
		}
		for _, p := range AllPatterns(n) {
			c, _ := Canonical(p)
			if !keys[c.Key()] {
				t.Fatalf("n=%d: pattern %v canonicalises outside the canonical set", n, p)
			}
		}
		// Symmetry classes have size at most 8, so the reduction is bounded.
		if len(canon)*8 < len(AllPatterns(n)) {
			t.Fatalf("n=%d: too few canonical patterns: %d classes for %d patterns",
				n, len(canon), len(AllPatterns(n)))
		}
	}
}

func TestCanonicalPatternCounts(t *testing.T) {
	// Deterministic class counts; recorded for Table II comparisons.
	got4 := len(CanonicalPatterns(4))
	got5 := len(CanonicalPatterns(5))
	if got4 <= 0 || got5 <= 0 || got4 >= 96 || got5 >= 600 {
		t.Fatalf("unexpected canonical counts: n=4: %d, n=5: %d", got4, got5)
	}
	t.Logf("canonical pattern classes: n=4: %d, n=5: %d", got4, got5)
}
