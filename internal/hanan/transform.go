package hanan

import "bytes"

// Transform is one of the 8 symmetries of the rank grid (the dihedral
// group of the square): an optional transpose (swap of the x and y roles)
// followed by optional flips of each axis. Two instances whose patterns
// differ only by such a transform share the same set of Pareto-optimal
// topologies up to relabelling, so lookup tables store one canonical
// representative per symmetry class (§V-A "breaking symmetries").
type Transform struct {
	Transpose, FlipX, FlipY bool
}

// AllTransforms lists the 8 symmetries.
func AllTransforms() []Transform {
	out := make([]Transform, 0, 8)
	for _, tr := range []bool{false, true} {
		for _, fx := range []bool{false, true} {
			for _, fy := range []bool{false, true} {
				out = append(out, Transform{Transpose: tr, FlipX: fx, FlipY: fy})
			}
		}
	}
	return out
}

// Apply maps the rank pair (i, j) of an n×n rank grid through the
// transform: transpose first, then the axis flips.
func (t Transform) Apply(n, i, j int) (int, int) {
	if t.Transpose {
		i, j = j, i
	}
	if t.FlipX {
		i = n - 1 - i
	}
	if t.FlipY {
		j = n - 1 - j
	}
	return i, j
}

// Invert returns the inverse transform: u such that u.Apply undoes t.Apply.
func (t Transform) Invert() Transform {
	if !t.Transpose {
		return t
	}
	return Transform{Transpose: true, FlipX: t.FlipY, FlipY: t.FlipX}
}

// ApplyLengths maps gap-length vectors through the transform: transpose
// swaps the horizontal and vertical gaps, flips reverse them. Fresh slices
// are returned; the inputs are not modified.
func (t Transform) ApplyLengths(h, v []int64) (hh, vv []int64) {
	return t.ApplyLengthsInto(h, v, nil, nil)
}

// ApplyLengthsInto is ApplyLengths appending into caller-provided buffers
// (which may be nil or recycled slices with spare capacity), so hot query
// paths can map gap lengths without allocating.
func (t Transform) ApplyLengthsInto(h, v []int64, hbuf, vbuf []int64) (hh, vv []int64) {
	hh = append(hbuf[:0], h...)
	vv = append(vbuf[:0], v...)
	if t.Transpose {
		hh, vv = vv, hh
	}
	if t.FlipX {
		reverse(hh)
	}
	if t.FlipY {
		reverse(vv)
	}
	return hh, vv
}

func reverse(x []int64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// TransformPattern maps a pattern through t, returning the pattern of the
// transformed instance.
func TransformPattern(p Pattern, t Transform) Pattern {
	n := p.N
	perm := make([]uint8, n)
	var src uint8
	for i := 0; i < n; i++ {
		ni, nj := t.Apply(n, i, int(p.Perm[i]))
		perm[ni] = uint8(nj)
		if uint8(i) == p.Src {
			src = uint8(ni)
		}
	}
	return Pattern{N: n, Perm: perm, Src: src}
}

// Canonical returns the lexicographically smallest pattern reachable from
// p by a symmetry, together with the transform that maps p onto it. Ties
// between transforms producing the same key keep the earliest transform in
// AllTransforms order (the identity when it already yields the minimum).
func Canonical(p Pattern) (Pattern, Transform) {
	var buf [MaxKeyLen]byte
	key, tf := AppendCanonicalKey(buf[:0], p)
	return Pattern{N: int(key[0]), Src: key[1], Perm: append([]uint8(nil), key[2:]...)}, tf
}

// MaxKeyLen is the byte length of the largest Pattern.Key the library can
// produce (degree dw.MaxExactDegree, plus the N and Src header bytes).
// Fixed-size key buffers of this length make canonical-key computation
// allocation free.
const MaxKeyLen = 16 + 2

// AppendCanonicalKey appends the canonical key of p's symmetry class —
// Pattern.Key of the lexicographically smallest transformed pattern — to
// dst, returning the extended buffer and the transform that maps p onto
// the canonical pattern. It is equivalent to Canonical(p) followed by
// Key() with the same tie-break, but generates the 8 candidate keys
// digit-by-digit into stack scratch instead of materializing 8 patterns,
// so it performs no allocations when dst has capacity (lut.Table.Query's
// hot path relies on this).
func AppendCanonicalKey(dst []byte, p Pattern) ([]byte, Transform) {
	n := p.N
	base := len(dst)
	// Seed with the identity transform's key (transform index 0).
	dst = append(dst, byte(n), byte(p.Src))
	dst = append(dst, p.Perm...)
	best := dst[base:]
	bestT := Transform{}

	// Inverse permutation, needed to emit transposed keys in x-rank order.
	var ipermBuf [MaxKeyLen]uint8
	iperm := ipermBuf[:0]
	if n <= len(ipermBuf) {
		iperm = ipermBuf[:n]
	} else {
		iperm = make([]uint8, n)
	}
	for i, j := range p.Perm {
		iperm[j] = uint8(i)
	}

	var candBuf [MaxKeyLen]byte
	cand := candBuf[:0]
	if n+2 > len(candBuf) {
		cand = make([]byte, 0, n+2)
	}
	// Transform index encodes (Transpose, FlipX, FlipY) exactly as the
	// nesting order of AllTransforms, so the tie-break matches Canonical's.
	for ti := 1; ti < 8; ti++ {
		t := Transform{Transpose: ti&4 != 0, FlipX: ti&2 != 0, FlipY: ti&1 != 0}
		cand = cand[:0]
		cand = append(cand, byte(n), 0)
		if !t.Transpose {
			for ni := 0; ni < n; ni++ {
				i := ni
				if t.FlipX {
					i = n - 1 - ni
				}
				nj := int(p.Perm[i])
				if t.FlipY {
					nj = n - 1 - nj
				}
				cand = append(cand, byte(nj))
			}
			src := int(p.Src)
			if t.FlipX {
				src = n - 1 - src
			}
			cand[1] = byte(src)
		} else {
			for ni := 0; ni < n; ni++ {
				j := ni
				if t.FlipX {
					j = n - 1 - ni
				}
				i := int(iperm[j])
				nj := i
				if t.FlipY {
					nj = n - 1 - i
				}
				cand = append(cand, byte(nj))
			}
			src := int(p.Perm[p.Src])
			if t.FlipX {
				src = n - 1 - src
			}
			cand[1] = byte(src)
		}
		if bytes.Compare(cand, best) < 0 {
			copy(best, cand)
			bestT = t
		}
	}
	return dst, bestT
}

// AllPatterns enumerates every pattern of degree n (n! permutations × n
// source choices). Intended for small n only (LUT generation).
func AllPatterns(n int) []Pattern {
	perms := permutations(n)
	out := make([]Pattern, 0, len(perms)*n)
	for _, perm := range perms {
		for s := 0; s < n; s++ {
			out = append(out, Pattern{N: n, Perm: append([]uint8(nil), perm...), Src: uint8(s)})
		}
	}
	return out
}

// CanonicalPatterns enumerates the canonical representatives of the
// symmetry classes of degree-n patterns, in deterministic order.
func CanonicalPatterns(n int) []Pattern {
	seen := make(map[string]bool)
	var out []Pattern
	for _, p := range AllPatterns(n) {
		c, _ := Canonical(p)
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func permutations(n int) [][]uint8 {
	cur := make([]uint8, n)
	for i := range cur {
		cur[i] = uint8(i)
	}
	var out [][]uint8
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]uint8(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}
