package hanan

import (
	"cmp"
	"fmt"
	"slices"

	"patlabor/internal/geom"
	"patlabor/internal/tree"
)

// Pattern is the combinatorial shape of a degree-n instance: pins are
// identified by their x-rank 0..n-1; Perm[i] is the y-rank of the pin at
// x-rank i; Src is the x-rank of the source pin. Coordinate ties are
// broken by pin index, so a Pattern always encodes a full permutation
// (tied coordinates simply produce zero gap lengths).
type Pattern struct {
	N    int
	Perm []uint8
	Src  uint8
}

// Key returns a compact unique encoding usable as a map key.
func (p Pattern) Key() string {
	b := make([]byte, 0, p.N+2)
	b = append(b, byte(p.N), byte(p.Src))
	for _, v := range p.Perm {
		b = append(b, byte(v))
	}
	return string(b)
}

// String renders the pattern for diagnostics, e.g. "n=4 src=2 perm=[1 0 3 2]".
func (p Pattern) String() string {
	return fmt.Sprintf("n=%d src=%d perm=%v", p.N, p.Src, p.Perm)
}

// Valid reports whether Perm is a permutation of 0..N-1 and Src < N.
func (p Pattern) Valid() bool {
	if len(p.Perm) != p.N || int(p.Src) >= p.N {
		return false
	}
	seen := make([]bool, p.N)
	for _, v := range p.Perm {
		if int(v) >= p.N || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Ranks is the rank-space view of a concrete instance: the pattern, the
// symbolic gap lengths, and the rank coordinates of every pin.
//
// Gap lengths follow the paper's l_1..l_{2n-2} convention stored
// zero-based: H[k] = x_{(k+1)} - x_{(k)} for k in 0..n-2 (horizontal grid
// spacing) and V[k] = y_{(k+1)} - y_{(k)} (vertical spacing).
type Ranks struct {
	Pattern Pattern
	H, V    []int64
	// XRank[p], YRank[p] give the rank coordinates of pin p.
	XRank, YRank []int
	// Xs, Ys are the rank->coordinate tables (with ties, entries repeat).
	Xs, Ys []int64
}

// RanksOf computes the rank-space view of a net. The source (pin 0) may
// sit anywhere in the pin list.
func RanksOf(net tree.Net) Ranks {
	n := net.Degree()
	xr := rankBy(net.Pins, func(p geom.Point) int64 { return p.X })
	yr := rankBy(net.Pins, func(p geom.Point) int64 { return p.Y })
	perm := make([]uint8, n)
	for pin := 0; pin < n; pin++ {
		perm[xr[pin]] = uint8(yr[pin])
	}
	xs := make([]int64, n)
	ys := make([]int64, n)
	for pin := 0; pin < n; pin++ {
		xs[xr[pin]] = net.Pins[pin].X
		ys[yr[pin]] = net.Pins[pin].Y
	}
	h := make([]int64, n-1)
	v := make([]int64, n-1)
	for k := 0; k < n-1; k++ {
		h[k] = xs[k+1] - xs[k]
		v[k] = ys[k+1] - ys[k]
	}
	return Ranks{
		Pattern: Pattern{N: n, Perm: perm, Src: uint8(xr[0])},
		H:       h, V: v,
		XRank: xr, YRank: yr,
		Xs: xs, Ys: ys,
	}
}

// rankBy assigns each pin a distinct rank 0..n-1 ordered by coord(p),
// ties broken by pin index.
func rankBy(pins []geom.Point, coord func(geom.Point) int64) []int {
	n := len(pins)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Total order: coordinate, then pin index — no equal keys, so the
	// unstable monomorphised sort is deterministic.
	slices.SortFunc(idx, func(x, y int) int {
		if c := cmp.Compare(coord(pins[x]), coord(pins[y])); c != 0 {
			return c
		}
		return cmp.Compare(x, y)
	})
	rank := make([]int, n)
	for r, pin := range idx {
		rank[pin] = r
	}
	return rank
}
