// Package hanan implements the Hanan grid underlying every exact algorithm
// in the library, in two forms:
//
//   - Grid: the concrete, deduplicated Hanan grid of a point set, used by
//     the concrete Pareto-DW dynamic program (internal/dw). Hanan [20]
//     showed optimal rectilinear Steiner trees exist on this grid; the
//     paper notes the same holds for Pareto-optimal timing-driven trees.
//
//   - Pattern/Ranks: the combinatorial rank-space form of an instance — a
//     permutation recording which y-rank each x-rank carries plus the
//     source position — together with the symbolic grid-gap lengths
//     l_1..l_{2n-2}. Lookup tables (internal/lut) are keyed by patterns
//     canonicalised under the 8 mirror/rotation symmetries (§V-A).
package hanan

import (
	"fmt"
	"sort"

	"patlabor/internal/geom"
)

// Grid is the deduplicated Hanan grid of a point set: the intersections of
// horizontal and vertical lines through the points. Node indices are
// row-major: idx = j*len(Xs)+i addresses (Xs[i], Ys[j]).
type Grid struct {
	Xs, Ys []int64
}

// NewGrid builds the Hanan grid of the given points.
func NewGrid(pts []geom.Point) *Grid {
	xs := make([]int64, len(pts))
	ys := make([]int64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	return &Grid{Xs: geom.SortUnique(xs), Ys: geom.SortUnique(ys)}
}

// NumNodes returns the number of grid nodes.
func (g *Grid) NumNodes() int { return len(g.Xs) * len(g.Ys) }

// Node returns the index of grid node (i, j).
func (g *Grid) Node(i, j int) int { return j*len(g.Xs) + i }

// Coords returns the (i, j) coordinates of node idx.
func (g *Grid) Coords(idx int) (i, j int) { return idx % len(g.Xs), idx / len(g.Xs) }

// Point returns the plane position of node idx.
func (g *Grid) Point(idx int) geom.Point {
	i, j := g.Coords(idx)
	return geom.Point{X: g.Xs[i], Y: g.Ys[j]}
}

// Locate returns the node index of p, which must lie on the grid.
func (g *Grid) Locate(p geom.Point) (int, error) {
	i := sort.Search(len(g.Xs), func(i int) bool { return g.Xs[i] >= p.X })
	j := sort.Search(len(g.Ys), func(j int) bool { return g.Ys[j] >= p.Y })
	if i == len(g.Xs) || g.Xs[i] != p.X || j == len(g.Ys) || g.Ys[j] != p.Y {
		return 0, fmt.Errorf("hanan: point %v is not a grid node", p)
	}
	return g.Node(i, j), nil
}

// Dist returns the L1 distance between two grid nodes.
func (g *Grid) Dist(a, b int) int64 {
	return geom.Dist(g.Point(a), g.Point(b))
}
