package exp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"patlabor/internal/engine"
	"patlabor/internal/netgen"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// ScaleResult is the scalability experiment: one fixed mixed batch swept
// over worker-pool widths × cache modes, reporting wall clock, speedup
// over workers=1 and the engine's effective parallelism per cell.
type ScaleResult struct {
	Rows    [][]string
	Widths  []int
	Nets    int
	MaxProc int
}

// RunScale measures batch-routing scalability: the same mixed batch
// (small exact-frontier nets plus large local-search nets, like the
// BenchmarkScaling batch) is routed at worker widths 1, 2, 4, …, up to
// GOMAXPROCS and at GOMAXPROCS itself, each width once with the shared
// caches on (sub-frontier memo + batch dedup — the configuration whose
// coordination cost the sharded SubCache bounds) and once with them off
// (the embarrassingly parallel reference). Every cell's frontiers are
// verified byte-identical to the serial cache-off routing of the same
// batch, so the table can only ever trade wall clock, never results.
// The speedup column is that cell's wall clock against the same mode's
// workers=1 row; Amdahl headroom beyond GOMAXPROCS does not exist, so
// widths are clamped there.
func RunScale(ctx context.Context, cfg Config) (*ScaleResult, error) {
	batchSize := 48
	if cfg.Quick {
		batchSize = 16
	}
	rng := rand.New(rand.NewSource(cfg.Suite.Seed + 9))
	nets := make([]tree.Net, batchSize)
	for i := range nets {
		deg := 4 + rng.Intn(6)
		if i%4 == 0 {
			deg = 14 + rng.Intn(12)
		}
		nets[i] = netgen.Clustered(rng, deg, 100000, 4000)
	}

	maxProc := runtime.GOMAXPROCS(0)
	if cfg.Workers > 0 {
		maxProc = cfg.Workers
	}
	widths := []int{1}
	for w := 2; w < maxProc; w *= 2 {
		widths = append(widths, w)
	}
	if maxProc > 1 {
		widths = append(widths, maxProc)
	}

	// The byte-identity reference: serial, cache-off. Also warms the
	// shared lookup table outside every timed cell.
	ref, err := engine.RouteAll(ctx, nets, engine.Options{Workers: 1, NoCache: true})
	if err != nil {
		return nil, fmt.Errorf("scale: reference routing: %w", err)
	}

	res := &ScaleResult{Widths: widths, Nets: batchSize, MaxProc: maxProc}
	for _, mode := range []struct {
		label   string
		noCache bool
	}{{"on", false}, {"off", true}} {
		var base time.Duration
		for _, w := range widths {
			eng, err := engine.New(engine.Options{Workers: w, NoCache: mode.noCache})
			if err != nil {
				return nil, fmt.Errorf("scale: %w", err)
			}
			var out []engine.Result
			var elapsed time.Duration
			if err := timed(&elapsed, func() error {
				var rerr error
				out, rerr = eng.RouteAll(ctx, nets)
				return rerr
			}); err != nil {
				return nil, fmt.Errorf("scale: cache=%s workers=%d: %w", mode.label, w, err)
			}
			for i := range out {
				if err := sameFrontier(out[i], ref[i]); err != nil {
					return nil, fmt.Errorf("scale: cache=%s workers=%d: net %d differs from serial reference: %w",
						mode.label, w, i, err)
				}
			}
			if w == 1 {
				base = elapsed
			}
			speedup := "-"
			if w > 1 && elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(base)/float64(elapsed))
			}
			st := eng.Stats()
			res.Rows = append(res.Rows, []string{
				mode.label, fmt.Sprintf("%d", w),
				fmtDur(elapsed), speedup, fmt.Sprintf("%.2fx", st.Speedup()),
			})
		}
	}
	return res, nil
}

// Render formats the speedup-vs-workers table with the determinism and
// host-parallelism notes.
func (r *ScaleResult) Render() string {
	out := fmt.Sprintf("Scalability — %d-net mixed batch, GOMAXPROCS=%d\n", r.Nets, r.MaxProc)
	out += textplot.Table(
		[]string{"cache", "workers", "wall", "speedup", "busy/wall"},
		r.Rows)
	out += "\nspeedup is against the same cache mode's workers=1 row; busy/wall is summed per-net\n"
	out += "routing time over wall clock (the pool's effective parallelism, engine.Stats.Speedup)\n"
	out += "byte-identity: every cell verified against the serial cache-off routing of the batch\n"
	if r.MaxProc == 1 {
		out += "GOMAXPROCS=1: the sweep degenerates to coordination-overhead measurement; run on a multi-core host for a real speedup curve\n"
	}
	return out
}
