// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§VI), drawing its entrants from the shared
// method registry (internal/method) and the synthetic ICCAD-15-like suite
// of internal/netgen. cmd/experiments drives it; the root bench_test.go
// wraps each runner in a testing.B benchmark. Every runner takes a
// context.Context, so a -timeout flag (or a test deadline) aborts the
// suite mid-experiment. EXPERIMENTS.md records paper-reported versus
// measured values.
package exp

import (
	"fmt"
	"time"

	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/tree"
)

// Config scales the experiments. Quick mode shrinks sample counts so the
// whole suite runs in seconds (used by tests and benchmarks); the full
// configuration regenerates the paper-scale shapes in minutes.
type Config struct {
	Suite netgen.SuiteConfig
	Quick bool
	// Workers sizes the worker pool the per-net experiment loops fan out
	// on (0 = GOMAXPROCS). Results are independent of the worker count:
	// nets are evaluated into per-index slots and aggregated serially in
	// input order.
	Workers int
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{Suite: netgen.DefaultSuiteConfig()}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	cfg := Config{Suite: netgen.DefaultSuiteConfig(), Quick: true}
	cfg.Suite.Designs = 2
	cfg.Suite.NetsPerDesign = 60
	return cfg
}

func itemSols(items []pareto.Item[*tree.Tree]) []pareto.Sol {
	out := make([]pareto.Sol, len(items))
	for i, it := range items {
		out[i] = it.Sol
	}
	return out
}

// timed runs f and accumulates its wall-clock duration into *acc.
func timed(acc *time.Duration, f func() error) error {
	start := time.Now()
	err := f()
	*acc += time.Since(start)
	return err
}

// fmtDur renders a duration rounded for table output.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
