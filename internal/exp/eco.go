package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"patlabor/internal/eco"
	"patlabor/internal/engine"
	"patlabor/internal/netgen"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// EcoResult is the ECO churn experiment: tracked nets absorb a
// deterministic edit stream, every step is rerouted incrementally AND
// from scratch, the two frontiers are verified byte-identical, and the
// accumulated times give the incremental speedup per degree.
type EcoResult struct {
	Rows  [][]string
	Stats engine.Stats
}

// RunEco drives the ECO churn scenario: per degree, a batch of clustered
// nets is tracked on one engine, then an EditStream (reverts, perturbs,
// moves, sink insertions/removals) is replayed step by step through
// Engine.RerouteBatch. Each step's frontiers are verified byte-identical
// to a cold from-scratch engine's on the post-edit nets — the churn
// differential the CI quick suite runs — and both sides are timed.
func RunEco(ctx context.Context, cfg Config) (*EcoResult, error) {
	degrees := []int{8, 16, 32, 64}
	netsPerDegree, steps := 6, 16
	if cfg.Quick {
		netsPerDegree, steps = 2, 6
	}
	res := &EcoResult{}
	eng, err := engine.New(engine.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	for _, deg := range degrees {
		rng := rand.New(rand.NewSource(cfg.Suite.Seed + int64(deg)))
		nets := make([]tree.Net, netsPerDegree)
		for i := range nets {
			nets[i] = netgen.Clustered(rng, deg, 100000, 4000)
		}
		streams := make([][][]eco.Edit, len(nets))
		for i, net := range nets {
			streams[i] = netgen.EditStream(rng, net, netgen.EditStreamOptions{
				Steps:             steps,
				EditsPerStep:      1 + deg/16,
				RevertPercent:     40,
				StructuralPercent: 10,
			})
		}
		handles, err := eng.Track(ctx, nets)
		if err != nil {
			return nil, err
		}
		var ecoTime, fullTime time.Duration
		for s := 0; s < steps; s++ {
			batch := make([][]eco.Edit, len(handles))
			for i := range handles {
				batch[i] = streams[i][s]
			}
			var got []engine.Result
			if err := timed(&ecoTime, func() error {
				var rerr error
				got, rerr = eng.RerouteBatch(ctx, handles, batch)
				return rerr
			}); err != nil {
				return nil, err
			}
			// From-scratch reference on a cold engine (fresh caches): the
			// incremental side must match it byte for byte.
			post := make([]tree.Net, len(handles))
			for i, h := range handles {
				post[i] = h.Net()
			}
			cold, err := engine.New(engine.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			var want []engine.Result
			if err := timed(&fullTime, func() error {
				var rerr error
				want, rerr = cold.RouteAll(ctx, post)
				return rerr
			}); err != nil {
				return nil, err
			}
			for i := range got {
				if err := sameFrontier(got[i], want[i]); err != nil {
					return nil, fmt.Errorf("eco: degree %d step %d net %d: %w", deg, s, i, err)
				}
			}
		}
		speedup := "n/a"
		if ecoTime > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(fullTime)/float64(ecoTime))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", deg),
			fmt.Sprintf("%d×%d", netsPerDegree, steps),
			fmtDur(ecoTime), fmtDur(fullTime), speedup,
		})
	}
	res.Stats = eng.Stats()
	return res, nil
}

// sameFrontier checks two frontiers are byte-identical: same objective
// vectors and same trees node for node.
func sameFrontier(got, want engine.Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("frontier size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Sol != want[i].Sol {
			return fmt.Errorf("item %d: sol %+v, want %+v", i, got[i].Sol, want[i].Sol)
		}
		a, b := got[i].Val, want[i].Val
		if a.Root != b.Root || len(a.Nodes) != len(b.Nodes) {
			return fmt.Errorf("item %d: tree shape differs", i)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] || a.Parent[j] != b.Parent[j] {
				return fmt.Errorf("item %d: node %d differs", i, j)
			}
		}
	}
	return nil
}

// Render formats the churn table plus the engine's eco counters.
func (r *EcoResult) Render() string {
	out := "ECO churn — incremental reroute vs from-scratch (byte-identity verified per step)\n"
	out += textplot.Table([]string{"degree", "nets×steps", "eco time", "full time", "speedup"}, r.Rows)
	s := r.Stats
	out += fmt.Sprintf("\neco counters: %d hits, %d full reroutes, %d dirty subtrees, %d cache invalidations\n",
		s.EcoHits, s.EcoFullReroutes, s.DirtySubtrees, s.CacheInvalidations)
	return out
}
