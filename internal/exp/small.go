package exp

import (
	"context"
	"fmt"
	"slices"
	"strconv"
	"time"

	"patlabor/internal/dw"
	"patlabor/internal/engine"
	"patlabor/internal/method"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/stats"
	"patlabor/internal/textplot"
)

// DegreeAgg aggregates the small-net pass for one degree: the inputs to
// Table III (non-optimal ratios), Table IV (frontier solutions found) and
// Figure 6 (maximum frontier size).
type DegreeAgg struct {
	Degree       int
	Nets         int
	MaxFrontier  int
	FrontierSols int            // total Pareto-optimal solutions (truth)
	Found        map[string]int // per method: frontier solutions attained
	NonOptimal   map[string]int // per method: nets missing >=1 frontier point
}

// SmallResult is the outcome of the single pass over all degree-4..9 nets
// of the suite, feeding Figure 6, Table III, Table IV and Figure 7(a).
type SmallResult struct {
	Methods []string
	Agg     []*DegreeAgg
	Fit     stats.LinFit             // Figure 6 linear fit
	Curves  map[string]*Curve        // Figure 7(a): averaged on non-optimal nets
	Runtime map[string]time.Duration // total construction time per method
	NonOpt  int                      // nets where SALT or YSD is non-optimal
}

// Curve is an averaged normalised Pareto curve: D[i] is the mean
// normalised delay attainable at normalised wirelength at most Grid[i].
type Curve struct {
	Grid []float64
	D    []float64
	cnt  []int
}

func newCurve() *Curve {
	c := &Curve{}
	for g := 1.0; g <= 1.6+1e-9; g += 0.025 {
		c.Grid = append(c.Grid, g)
		c.D = append(c.D, 0)
		c.cnt = append(c.cnt, 0)
	}
	return c
}

// add accumulates one net's solution set normalised by (wNorm, dNorm).
// The step function is extended flat below the cheapest solution.
func (c *Curve) add(sols []pareto.Sol, wNorm, dNorm int64) {
	if len(sols) == 0 || wNorm <= 0 || dNorm <= 0 {
		return
	}
	for i, g := range c.Grid {
		best := float64(sols[0].D) / float64(dNorm)
		for _, s := range sols {
			if float64(s.W)/float64(wNorm) <= g+1e-12 {
				if d := float64(s.D) / float64(dNorm); d < best {
					best = d
				}
			}
		}
		c.D[i] += best
		c.cnt[i]++
	}
}

func (c *Curve) finalize() {
	for i := range c.D {
		if c.cnt[i] > 0 {
			c.D[i] /= float64(c.cnt[i])
		}
	}
}

// RunSmall executes the small-degree pass over the suite under ctx.
func RunSmall(ctx context.Context, cfg Config, designs []netgen.Design) (*SmallResult, error) {
	methods := method.Standard(false)
	res := &SmallResult{
		Curves:  map[string]*Curve{},
		Runtime: map[string]time.Duration{},
	}
	aggBy := map[int]*DegreeAgg{}
	for d := 4; d <= 9; d++ {
		aggBy[d] = &DegreeAgg{
			Degree:     d,
			Found:      map[string]int{},
			NonOptimal: map[string]int{},
		}
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		res.Curves[m.Name()] = newCurve()
	}

	nets := netgen.NetsInDegreeRange(designs, 4, 9)
	if cfg.Quick && len(nets) > 150 {
		nets = nets[:150]
	}
	// Evaluate nets on the worker pool — each net's truth frontier and
	// per-method runs land in its own slot — then aggregate serially in
	// input order, so every table is identical at any worker count.
	type netEval struct {
		truth []pareto.Sol
		sols  map[string][]pareto.Sol
		dur   map[string]time.Duration
	}
	evals := make([]netEval, len(nets))
	err := engine.ForEachContext(ctx, len(nets), cfg.Workers, func(i int) error {
		net := nets[i]
		truth, err := dw.FrontierSolsContext(ctx, net, dw.DefaultOptions())
		if err != nil {
			return fmt.Errorf("exp: truth for degree-%d net: %w", net.Degree(), err)
		}
		ev := netEval{
			truth: truth,
			sols:  map[string][]pareto.Sol{},
			dur:   map[string]time.Duration{},
		}
		for _, m := range methods {
			var sols []pareto.Sol
			var acc time.Duration
			err := timed(&acc, func() error {
				items, err := m.Frontier(ctx, net)
				if err != nil {
					return err
				}
				sols = itemSols(items)
				return nil
			})
			if err != nil {
				return fmt.Errorf("exp: %s on degree-%d net: %w", m.Name(), net.Degree(), err)
			}
			ev.sols[m.Name()] = sols
			ev.dur[m.Name()] = acc
		}
		evals[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, net := range nets {
		ev := evals[i]
		truth := ev.truth
		agg := aggBy[net.Degree()]
		agg.Nets++
		if len(truth) > agg.MaxFrontier {
			agg.MaxFrontier = len(truth)
		}
		agg.FrontierSols += len(truth)
		for _, m := range methods {
			res.Runtime[m.Name()] += ev.dur[m.Name()]
			found := pareto.CountCovered(ev.sols[m.Name()], truth)
			agg.Found[m.Name()] += found
			if found < len(truth) {
				agg.NonOptimal[m.Name()]++
			}
		}
		// PatLabor must be exact on small nets — a broken table or DP
		// would silently skew every downstream number, so verify here.
		if pareto.CountCovered(ev.sols["PatLabor"], truth) != len(truth) {
			return nil, fmt.Errorf("exp: PatLabor non-optimal on a degree-%d net (pins %v)",
				net.Degree(), net.Pins)
		}
		// Figure 7(a) averages over nets where SALT or YSD miss a point.
		saltNon := pareto.CountCovered(ev.sols["SALT"], truth) < len(truth)
		ysdNon := pareto.CountCovered(ev.sols["YSD"], truth) < len(truth)
		if saltNon || ysdNon {
			res.NonOpt++
			wN, dN := truth[0].W, truth[len(truth)-1].D
			for _, m := range methods {
				res.Curves[m.Name()].add(ev.sols[m.Name()], wN, dN)
			}
		}
	}
	for _, c := range res.Curves {
		c.finalize()
	}
	for d := 4; d <= 9; d++ {
		res.Agg = append(res.Agg, aggBy[d])
	}
	slices.SortFunc(res.Agg, func(a, b *DegreeAgg) int { return a.Degree - b.Degree })

	// Figure 6: linear fit of max frontier size vs degree.
	var xs, ys []float64
	for _, a := range res.Agg {
		if a.Nets > 0 {
			xs = append(xs, float64(a.Degree))
			ys = append(ys, float64(a.MaxFrontier))
		}
	}
	if len(xs) >= 2 {
		fit, err := stats.LinearRegression(xs, ys)
		if err == nil {
			res.Fit = fit
		}
	}
	return res, nil
}

// RenderFig6 renders the Figure 6 reproduction.
func (r *SmallResult) RenderFig6() string {
	rows := make([][]string, 0, len(r.Agg))
	var series textplot.Series
	series.Label = "max frontier size"
	for _, a := range r.Agg {
		rows = append(rows, []string{
			strconv.Itoa(a.Degree), strconv.Itoa(a.Nets), strconv.Itoa(a.MaxFrontier),
			fmt.Sprintf("%.2f", avgFrontier(a)),
		})
		series.X = append(series.X, float64(a.Degree))
		series.Y = append(series.Y, float64(a.MaxFrontier))
	}
	out := "Figure 6 — maximum Pareto frontier size per degree\n"
	out += textplot.Table([]string{"degree", "#nets", "max |frontier|", "avg |frontier|"}, rows)
	out += "fitted line: " + r.Fit.String() + " (paper: y=2.85x-10.9)\n"
	out += textplot.Plot([]textplot.Series{series}, 44, 10)
	return out
}

func avgFrontier(a *DegreeAgg) float64 {
	if a.Nets == 0 {
		return 0
	}
	return float64(a.FrontierSols) / float64(a.Nets)
}

// RenderTable3 renders the Table III reproduction: the ratio of nets on
// which each method misses at least one Pareto-optimal solution.
func (r *SmallResult) RenderTable3() string {
	header := append([]string{"degree", "#nets"}, r.Methods...)
	var rows [][]string
	totals := map[string]int{}
	totalNets := 0
	for _, a := range r.Agg {
		row := []string{strconv.Itoa(a.Degree), strconv.Itoa(a.Nets)}
		for _, m := range r.Methods {
			row = append(row, ratio(a.NonOptimal[m], a.Nets))
			totals[m] += a.NonOptimal[m]
		}
		totalNets += a.Nets
		rows = append(rows, row)
	}
	row := []string{"total", strconv.Itoa(totalNets)}
	for _, m := range r.Methods {
		row = append(row, ratio(totals[m], totalNets))
	}
	rows = append(rows, row)
	return "Table III — ratio of non-optimal nets (n ≤ 9)\n" +
		textplot.Table(header, rows)
}

// RenderTable4 renders the Table IV reproduction: frontier solutions found.
func (r *SmallResult) RenderTable4() string {
	header := append([]string{"degree", "|frontier|"}, r.Methods...)
	var rows [][]string
	found := map[string]int{}
	total := 0
	for _, a := range r.Agg {
		row := []string{strconv.Itoa(a.Degree), strconv.Itoa(a.FrontierSols)}
		for _, m := range r.Methods {
			row = append(row, strconv.Itoa(a.Found[m]))
			found[m] += a.Found[m]
		}
		total += a.FrontierSols
		rows = append(rows, row)
	}
	row := []string{"total", strconv.Itoa(total)}
	for _, m := range r.Methods {
		if total > 0 {
			row = append(row, fmt.Sprintf("%.3f", float64(found[m])/float64(total)))
		} else {
			row = append(row, "-")
		}
	}
	rows = append(rows, row)
	return "Table IV — Pareto-optimal solutions found (n ≤ 9; total row is the fraction of all)\n" +
		textplot.Table(header, rows)
}

// RenderFig7a renders the Figure 7(a) reproduction: averaged normalised
// Pareto curves on non-optimal nets plus total running times.
func (r *SmallResult) RenderFig7a() string {
	out := fmt.Sprintf("Figure 7(a) — averaged Pareto curves on %d non-optimal small nets\n", r.NonOpt)
	out += renderCurves(r.Methods, r.Curves)
	out += "total construction time:\n"
	for _, m := range r.Methods {
		out += fmt.Sprintf("  %-10s %s\n", m, fmtDur(r.Runtime[m]))
	}
	return out
}

// methodGlyphs disambiguates plot characters (three method names start
// with 'P').
var methodGlyphs = map[string]byte{
	"PatLabor": 'P', "SALT": 'S', "YSD": 'Y', "PD-II": 'D', "Pareto-KS": 'K',
}

func renderCurves(methods []string, curves map[string]*Curve) string {
	// Paint PatLabor last so it stays visible where curves overlap.
	ordered := make([]string, 0, len(methods))
	for _, m := range methods {
		if m != "PatLabor" {
			ordered = append(ordered, m)
		}
	}
	ordered = append(ordered, "PatLabor")
	var series []textplot.Series
	for _, m := range ordered {
		c := curves[m]
		if c == nil {
			continue
		}
		series = append(series, textplot.Series{
			Label: m, Glyph: methodGlyphs[m], X: c.Grid, Y: c.D,
		})
	}
	out := textplot.Plot(series, 56, 14)
	out += "x: w / w(RSMT)   y: mean d / d(arborescence)\n"
	return out
}

func ratio(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
