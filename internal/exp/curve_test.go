package exp

import (
	"math"
	"testing"

	"patlabor/internal/pareto"
)

func TestCurveFlatExtension(t *testing.T) {
	c := newCurve()
	// One net: solutions (120, 90) and (150, 60) with norms (100, 50):
	// normalised (1.2, 1.8) and (1.5, 1.2).
	c.add([]pareto.Sol{{W: 120, D: 90}, {W: 150, D: 60}}, 100, 50)
	c.finalize()
	at := func(g float64) float64 {
		for i, x := range c.Grid {
			if math.Abs(x-g) < 1e-9 {
				return c.D[i]
			}
		}
		t.Fatalf("grid point %v missing", g)
		return 0
	}
	// Below the cheapest solution: flat extension at its delay.
	if d := at(1.0); math.Abs(d-1.8) > 1e-9 {
		t.Fatalf("flat extension = %v, want 1.8", d)
	}
	// Between the two solutions: the cheap one's delay.
	if d := at(1.3); math.Abs(d-1.8) > 1e-9 {
		t.Fatalf("mid curve = %v, want 1.8", d)
	}
	// At and beyond the second: its delay.
	if d := at(1.5); math.Abs(d-1.2) > 1e-9 {
		t.Fatalf("tail = %v, want 1.2", d)
	}
	if d := at(1.6); math.Abs(d-1.2) > 1e-9 {
		t.Fatalf("end = %v, want 1.2", d)
	}
}

func TestCurveAveragesNets(t *testing.T) {
	c := newCurve()
	c.add([]pareto.Sol{{W: 100, D: 100}}, 100, 100) // flat 1.0
	c.add([]pareto.Sol{{W: 100, D: 300}}, 100, 100) // flat 3.0
	c.finalize()
	for i := range c.Grid {
		if math.Abs(c.D[i]-2.0) > 1e-9 {
			t.Fatalf("average at %v = %v, want 2.0", c.Grid[i], c.D[i])
		}
	}
}

func TestCurveIgnoresDegenerate(t *testing.T) {
	c := newCurve()
	c.add(nil, 100, 100)
	c.add([]pareto.Sol{{W: 1, D: 1}}, 0, 100)
	c.add([]pareto.Sol{{W: 1, D: 1}}, 100, 0)
	c.finalize()
	for _, d := range c.D {
		if d != 0 {
			t.Fatal("degenerate additions contributed")
		}
	}
}
