package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"patlabor/internal/core"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/policy"
	"patlabor/internal/rsmt"
	"patlabor/internal/stats"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// Thm5Result verifies Theorem 5 empirically: the generalisation gap of the
// learned selection policy — |mean training performance − mean test
// performance| — shrinks as the number of training samples m grows
// (the theorem bounds it by Õ(√(n/m))).
type Thm5Result struct {
	Degree int
	M      []int
	Train  []float64
	Test   []float64
	Gap    []float64
	Bound  []float64 // √(n/m), the theorem's shape
}

// RunThm5 trains the policy on m instances for several m and measures the
// gap on a fixed held-out set, checking ctx between training sizes.
func RunThm5(ctx context.Context, cfg Config, degree int, ms []int, testSize int) (*Thm5Result, error) {
	if degree < 10 {
		degree = 12
	}
	if len(ms) == 0 {
		ms = []int{4, 8, 16, 32}
	}
	if testSize <= 0 {
		testSize = 40
	}
	if cfg.Quick {
		ms = ms[:2]
		testSize = 10
	}
	gen := func(rng *rand.Rand, n int) tree.Net {
		return netgen.ClusteredDriver(rng, n, 100000, 5000)
	}
	eval := func(net tree.Net, base *tree.Tree, sel []int) float64 {
		ref := pareto.Sol{W: base.Wirelength() * 2, D: base.MaxDelay() * 2}
		hv, err := core.StepHypervolume(net, base, sel, ref)
		if err != nil {
			return 0
		}
		// Normalise by the reference area so instances are comparable.
		return hv / (float64(ref.W) * float64(ref.D))
	}
	// Held-out test set, fixed across m.
	testRng := rand.New(rand.NewSource(555))
	type inst struct {
		net  tree.Net
		base *tree.Tree
	}
	tests := make([]inst, testSize)
	for i := range tests {
		tests[i].net = gen(testRng, degree)
		tests[i].base = rsmt.Tree(tests[i].net)
	}
	res := &Thm5Result{Degree: degree}
	k := core.DefaultLambda - 1
	for _, m := range ms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := policy.TrainConfig{
			Degrees:   []int{degree},
			Instances: m,
			Samples:   8,
			K:         k,
			Seed:      int64(1000 + m),
			Gen:       gen,
			Base:      func(net tree.Net) *tree.Tree { return rsmt.Tree(net) },
			Eval:      eval,
		}
		params, err := policy.Train(cfg)
		if err != nil {
			return nil, err
		}
		p := params[degree]
		// Training performance: the trained policy's selections on the
		// same distribution slice it was trained on.
		trainRng := rand.New(rand.NewSource(int64(1000 + m)))
		var trainPerf []float64
		for i := 0; i < m; i++ {
			net := gen(trainRng, degree)
			base := rsmt.Tree(net)
			sel := policy.Select(net, base, k, p)
			trainPerf = append(trainPerf, eval(net, base, sel))
		}
		var testPerf []float64
		for _, ti := range tests {
			sel := policy.Select(ti.net, ti.base, k, p)
			testPerf = append(testPerf, eval(ti.net, ti.base, sel))
		}
		tr, te := stats.Mean(trainPerf), stats.Mean(testPerf)
		gap := tr - te
		if gap < 0 {
			gap = -gap
		}
		res.M = append(res.M, m)
		res.Train = append(res.Train, tr)
		res.Test = append(res.Test, te)
		res.Gap = append(res.Gap, gap)
		res.Bound = append(res.Bound, math.Sqrt(float64(degree)/float64(m)))
	}
	return res, nil
}

// Render renders the Theorem 5 verification.
func (r *Thm5Result) Render() string {
	var rows [][]string
	for i := range r.M {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.M[i]),
			fmt.Sprintf("%.4f", r.Train[i]),
			fmt.Sprintf("%.4f", r.Test[i]),
			fmt.Sprintf("%.4f", r.Gap[i]),
			fmt.Sprintf("%.2f", r.Bound[i]),
		})
	}
	return fmt.Sprintf("Theorem 5 — policy generalisation gap (degree %d)\n", r.Degree) +
		textplot.Table([]string{"m (train size)", "train perf", "test perf", "|gap|", "√(n/m) shape"}, rows) +
		"the gap must shrink roughly like √(n/m) as training data grows\n"
}
