package exp

import (
	"context"
	"fmt"
	"math/rand"

	"patlabor/internal/engine"
	"patlabor/internal/groute"
	"patlabor/internal/netgen"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// GRouteResult is the extension experiment beyond the paper's evaluation:
// global-routing topology selection from Pareto candidate sets versus
// single-topology routing (the §I motivation). Rows: selection mode →
// overflow / max edge use / total wirelength / timing misses.
type GRouteResult struct {
	Nets    int
	Rows    [][]string
	Heatmap string // congestion after Pareto selection
}

// RunGRoute builds a congested block (drivers east, sink clusters west),
// routes every net with PatLabor, and compares three topology sources on
// the same capacity grid.
func RunGRoute(ctx context.Context, cfg Config) (*GRouteResult, error) {
	rng := rand.New(rand.NewSource(23))
	count := 120
	if cfg.Quick {
		count = 20
	}
	const die = 1600
	eng, err := engine.New(engine.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	// Nets are synthesised serially (the rng sequence is the experiment's
	// identity) and routed in batches on the engine's worker pool; nets
	// whose frontier is a single point are rejected and replaced, exactly
	// as the serial loop did.
	var nets []groute.NetCandidates
	for len(nets) < count {
		batch := make([]tree.Net, count-len(nets))
		for i := range batch {
			net := netgen.ClusteredDriver(rng, 5+rng.Intn(4), die, 500)
			// Reposition the driver into the east band to create the
			// shared corridor.
			net.Pins[0].X = 1200 + rng.Int63n(300)
			batch[i] = net
		}
		results, err := eng.RouteAll(ctx, batch)
		if err != nil {
			return nil, err
		}
		for _, cands := range results {
			if len(cands) < 2 {
				continue
			}
			// Timing budget at 60% of the wire-optimal tree's slack.
			minD := cands[len(cands)-1].Sol.D
			maxD := cands[0].Sol.D
			budget := minD + (maxD-minD)*3/5
			nets = append(nets, groute.NetCandidates{Cands: cands, Budget: budget})
		}
	}

	res := &GRouteResult{Nets: len(nets)}
	type mode struct {
		name   string
		narrow func(groute.NetCandidates) groute.NetCandidates
		passes int
	}
	modes := []mode{
		{"min-wire topology only", func(nc groute.NetCandidates) groute.NetCandidates {
			return groute.NetCandidates{Cands: nc.Cands[:1], Budget: nc.Budget}
		}, 1},
		{"min-delay topology only", func(nc groute.NetCandidates) groute.NetCandidates {
			return groute.NetCandidates{Cands: nc.Cands[len(nc.Cands)-1:], Budget: nc.Budget}
		}, 1},
		{"Pareto candidate selection", func(nc groute.NetCandidates) groute.NetCandidates {
			return nc
		}, 5},
	}
	for _, m := range modes {
		grid, err := groute.NewGrid(16, 16, die/16, die/16, 10)
		if err != nil {
			return nil, err
		}
		sel := make([]groute.NetCandidates, len(nets))
		for i, nc := range nets {
			sel[i] = m.narrow(nc)
		}
		_, r, err := groute.Select(grid, sel, m.passes)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			m.name,
			fmt.Sprintf("%d", r.Overflow),
			fmt.Sprintf("%d", r.MaxUse),
			fmt.Sprintf("%d", r.TotalWire),
			fmt.Sprintf("%d", r.BudgetMiss),
		})
		if m.name == "Pareto candidate selection" {
			res.Heatmap = grid.Heatmap()
			// Pattern rerouting on top of topology selection: rip up the
			// chosen trees and re-embed each edge with the best of the
			// L/Z patterns (internal/groute pattern routing).
			grid2, err := groute.NewGrid(16, 16, die/16, die/16, 10)
			if err != nil {
				return nil, err
			}
			choice, _, err := groute.Select(grid2, sel, m.passes)
			if err != nil {
				return nil, err
			}
			trees := make([]*tree.Tree, len(sel))
			var wire int64
			miss := 0
			for i, ci := range choice {
				trees[i] = sel[i].Cands[ci].Val
				wire += sel[i].Cands[ci].Sol.W
				if sel[i].Budget > 0 && sel[i].Cands[ci].Sol.D > sel[i].Budget {
					miss++
				}
			}
			// Replace the L-embeddings Select applied with pattern routes.
			for i, ci := range choice {
				grid2.Remove(sel[i].Cands[ci].Val)
			}
			if _, err := groute.Reroute(grid2, trees, nil, 3, 3); err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				"  + L/Z pattern rerouting",
				fmt.Sprintf("%d", grid2.Overflow()),
				fmt.Sprintf("%d", grid2.MaxUse()),
				fmt.Sprintf("%d", wire),
				fmt.Sprintf("%d", miss),
			})
		}
	}
	return res, nil
}

// Render renders the extension experiment.
func (r *GRouteResult) Render() string {
	out := fmt.Sprintf("Extension — global-routing topology selection (%d nets, timing budgets)\n", r.Nets)
	out += textplot.Table(
		[]string{"topology source", "overflow", "max use", "total wire", "budget misses"},
		r.Rows)
	out += r.Heatmap
	return out
}
