package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"patlabor/internal/dw"
	"patlabor/internal/netgen"
	"patlabor/internal/stats"
	"patlabor/internal/textplot"
)

// Thm1Result verifies Theorem 1: the S-gadget family has exponentially
// many Pareto-optimal solutions.
type Thm1Result struct {
	M        []int
	Degree   []int
	Frontier []int
}

// RunThm1 measures the exact frontier size of the gadget for m = 1..maxM.
func RunThm1(ctx context.Context, maxM int) (*Thm1Result, error) {
	res := &Thm1Result{}
	for m := 1; m <= maxM; m++ {
		net := netgen.SGadget(m)
		sols, err := dw.FrontierSolsContext(ctx, net, dw.DefaultOptions())
		if err != nil {
			return nil, err
		}
		res.M = append(res.M, m)
		res.Degree = append(res.Degree, net.Degree())
		res.Frontier = append(res.Frontier, len(sols))
	}
	return res, nil
}

// Render renders the Theorem 1 verification.
func (r *Thm1Result) Render() string {
	var rows [][]string
	for i := range r.M {
		rows = append(rows, []string{
			strconv.Itoa(r.M[i]), strconv.Itoa(r.Degree[i]),
			strconv.Itoa(r.Frontier[i]), strconv.Itoa(1 << r.M[i]),
		})
	}
	return "Theorem 1 / Figure 4 — exponential frontier on the S-gadget family\n" +
		textplot.Table([]string{"m", "degree", "|frontier|", "2^m bound"}, rows)
}

// Thm2Result verifies Theorem 2 empirically: the expected frontier size of
// κ-smoothed instances grows at most polynomially (≈ linearly) in κ and
// stays tiny in absolute terms.
type Thm2Result struct {
	Kappa    []float64
	MeanSize []float64
	MaxSize  []int
	Fit      stats.LinFit
}

// RunThm2 samples κ-smoothed degree-n instances per κ and measures exact
// frontier sizes.
func RunThm2(ctx context.Context, cfg Config, degree int, kappas []float64, samples int) (*Thm2Result, error) {
	if len(kappas) == 0 {
		kappas = []float64{1, 2, 4, 8, 16}
	}
	if samples <= 0 {
		samples = 200
	}
	if cfg.Quick && samples > 30 {
		samples = 30
	}
	rng := rand.New(rand.NewSource(7))
	res := &Thm2Result{}
	for _, k := range kappas {
		var sizes []float64
		maxSize := 0
		for s := 0; s < samples; s++ {
			net := netgen.Smoothed(rng, degree, k, 100000)
			sols, err := dw.FrontierSolsContext(ctx, net, dw.DefaultOptions())
			if err != nil {
				return nil, err
			}
			sizes = append(sizes, float64(len(sols)))
			if len(sols) > maxSize {
				maxSize = len(sols)
			}
		}
		res.Kappa = append(res.Kappa, k)
		res.MeanSize = append(res.MeanSize, stats.Mean(sizes))
		res.MaxSize = append(res.MaxSize, maxSize)
	}
	if fit, err := stats.LinearRegression(res.Kappa, res.MeanSize); err == nil {
		res.Fit = fit
	}
	return res, nil
}

// Render renders the Theorem 2 verification.
func (r *Thm2Result) Render() string {
	var rows [][]string
	for i := range r.Kappa {
		rows = append(rows, []string{
			fmt.Sprintf("%g", r.Kappa[i]),
			fmt.Sprintf("%.2f", r.MeanSize[i]),
			strconv.Itoa(r.MaxSize[i]),
		})
	}
	return "Theorem 2 — frontier size of κ-smoothed instances (poly(n)·κ bound)\n" +
		textplot.Table([]string{"κ", "mean |frontier|", "max |frontier|"}, rows) +
		"linear fit vs κ: " + r.Fit.String() + "\n"
}
