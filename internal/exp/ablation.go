package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/lut"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// AblationResult measures the design choices DESIGN.md calls out:
// the three Pareto-DW pruning lemmas, the lookup table versus the direct
// DP on small nets, and the selection policy / refinement of the local
// search.
type AblationResult struct {
	PruneRows  [][]string // per pruning configuration: name, time
	LUTRows    [][]string // LUT query vs direct DP
	SearchRows [][]string // policy vs random, refine on/off
}

// RunAblation executes all ablations at a size driven by cfg.Quick,
// checking ctx between timed runs.
func RunAblation(ctx context.Context, cfg Config) (*AblationResult, error) {
	res := &AblationResult{}
	rng := rand.New(rand.NewSource(99))

	// 1. Pruning lemmas: time the exact DP on degree-8 nets.
	nNets := 12
	if cfg.Quick {
		nNets = 3
	}
	nets := make([]tree.Net, nNets)
	for i := range nets {
		nets[i] = netgen.Clustered(rng, 8, 100000, 4000)
	}
	configs := []struct {
		name string
		opt  dw.Options
	}{
		{"none", dw.Options{}},
		{"corners (L2)", dw.Options{PruneCorners: true}},
		{"projection (L3)", dw.Options{ProjectOutside: true}},
		{"boundary splits (L4)", dw.Options{BoundarySplits: true}},
		{"all (default)", dw.DefaultOptions()},
	}
	var ref []pareto.Sol
	for ci, c := range configs {
		var total time.Duration
		for i, net := range nets {
			start := time.Now()
			sols, err := dw.FrontierSolsContext(ctx, net, c.opt)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			// Cross-check: every configuration must agree exactly.
			if ci == 0 && i == 0 {
				ref = sols
			} else if i == 0 {
				if len(sols) != len(ref) {
					return nil, fmt.Errorf("exp: pruning %q changed the frontier", c.name)
				}
				for k := range ref {
					if sols[k] != ref[k] {
						return nil, fmt.Errorf("exp: pruning %q changed the frontier", c.name)
					}
				}
			}
		}
		res.PruneRows = append(res.PruneRows, []string{
			c.name, fmtDur(total / time.Duration(len(nets)))})
	}

	// 2. Lookup table vs direct DP on covered degrees.
	table := lut.Default()
	qNets := 200
	if cfg.Quick {
		qNets = 40
	}
	smalls := make([]tree.Net, qNets)
	for i := range smalls {
		smalls[i] = netgen.Clustered(rng, 4+rng.Intn(2), 100000, 4000)
	}
	var lutTime, dpTime time.Duration
	for _, net := range smalls {
		start := time.Now()
		if _, ok, err := table.Query(net); err != nil || !ok {
			return nil, fmt.Errorf("exp: LUT query failed: ok=%v err=%v", ok, err)
		}
		lutTime += time.Since(start)
		start = time.Now()
		if _, err := dw.FrontierSolsContext(ctx, net, dw.DefaultOptions()); err != nil {
			return nil, err
		}
		dpTime += time.Since(start)
	}
	res.LUTRows = append(res.LUTRows,
		[]string{"lookup table", fmtDur(lutTime / time.Duration(qNets))},
		[]string{"direct Pareto-DW", fmtDur(dpTime / time.Duration(qNets))},
	)

	// 3. Local search: policy vs random selection, refinement on/off.
	lNets := 10
	if cfg.Quick {
		lNets = 3
	}
	large := make([]tree.Net, lNets)
	for i := range large {
		large[i] = netgen.Clustered(rng, 16+rng.Intn(20), 100000, 8000)
	}
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"policy + refine (default)", core.Options{Lambda: 7}},
		{"random selection", core.Options{Lambda: 7, RandomSelection: true}},
		{"no refinement", core.Options{Lambda: 7, NoRefine: true}},
	}
	// Normalise objectives per net by the RSMT wirelength and the
	// shortest-path delay (×100 integer scale), as in Figure 7, so the
	// hypervolumes of different variants are comparable.
	ref2 := pareto.Sol{W: 160, D: 160}
	for _, v := range variants {
		var hv float64
		var total time.Duration
		for _, net := range large {
			wN := rsmt.Wirelength(net)
			dN := rsma.MinDelay(net)
			start := time.Now()
			sols, err := core.FrontierContext(ctx, net, v.opt)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			norm := make([]pareto.Sol, 0, len(sols))
			for _, s := range sols {
				norm = append(norm, pareto.Sol{W: s.W * 100 / wN, D: s.D * 100 / dN})
			}
			hv += pareto.Hypervolume(norm, ref2)
		}
		res.SearchRows = append(res.SearchRows, []string{
			v.name,
			fmtDur(total / time.Duration(lNets)),
			fmt.Sprintf("%.1f", hv/float64(lNets)),
		})
	}
	return res, nil
}

// Render renders the ablation report.
func (r *AblationResult) Render() string {
	out := "Ablation — pruning lemmas (mean exact-DP time per degree-8 net)\n"
	out += textplot.Table([]string{"pruning", "time/net"}, r.PruneRows)
	out += "\nAblation — small-net engine (mean time per degree-4/5 net)\n"
	out += textplot.Table([]string{"engine", "time/net"}, r.LUTRows)
	out += "\nAblation — local search variants (mean over large nets)\n"
	out += textplot.Table([]string{"variant", "time/net", "mean hypervolume"}, r.SearchRows)
	return out
}
