package exp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"patlabor/internal/core"
	"patlabor/internal/engine"
	"patlabor/internal/hier"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/textplot"
	"patlabor/internal/tree"
)

// HugeNetResult is the hierarchical-routing experiment: per degree, the
// clustered two-level router is timed at one worker and at the full pool,
// verified byte-identical across the two, and compared against the flat
// local search where the flat search is still feasible.
type HugeNetResult struct {
	Rows     [][]string
	Counters hier.CounterSnapshot
	Workers  int
}

// RunHugeNet times hierarchical routing on mega-clustered nets of degree
// 64–4096 (quick: 64–1024). Per degree it routes the same net with
// workers=1 and workers=N and demands byte-identical frontiers — the
// intra-net determinism contract — then routes flat where the degree is
// small enough (the flat local search is quadratic-ish in degree; past
// ~256 it stops being interactive) and reports best-D/best-W ratios.
// The degree-64 and degree-256 rows bound the dispatch overhead at the
// crossover; the degree-1024/4096 rows are territory only the
// hierarchical router reaches.
func RunHugeNet(ctx context.Context, cfg Config) (*HugeNetResult, error) {
	degrees := []int{64, 256, 1024, 4096}
	flatMax := 256
	if cfg.Quick {
		degrees = []int{64, 256, 1024}
		flatMax = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counters := &hier.Counters{}
	res := &HugeNetResult{Workers: workers, Counters: hier.CounterSnapshot{}}
	// Crossover 32 forces the degree-64 row through the clustered path
	// too, so the table has a hier-vs-flat pair on both sides of the
	// default crossover; all other knobs are defaults.
	opts := func(w int) hier.Options {
		return hier.Options{Crossover: 32, Workers: w, Stats: counters}
	}
	// Warm the shared lookup table outside the timed region so the first
	// row does not pay the one-time eager generation cost.
	warm := netgen.MegaClustered(rand.New(rand.NewSource(0)), 40, 100000, 2, 5000)
	if _, err := hier.RouteContext(ctx, warm, hier.Options{Crossover: 32, Workers: 1}); err != nil {
		return nil, fmt.Errorf("hugenet: warmup: %w", err)
	}
	for _, deg := range degrees {
		rng := rand.New(rand.NewSource(cfg.Suite.Seed + int64(deg)))
		net := netgen.MegaClustered(rng, deg, 1000000, deg/80+2, 30000)
		before := counters.Snapshot()

		var one, many []pareto.Item[*tree.Tree]
		var oneTime, manyTime time.Duration
		if err := timed(&oneTime, func() error {
			items, err := hier.RouteContext(ctx, net, opts(1))
			one = items
			return err
		}); err != nil {
			return nil, fmt.Errorf("hugenet: degree %d workers=1: %w", deg, err)
		}
		if err := timed(&manyTime, func() error {
			items, err := hier.RouteContext(ctx, net, opts(workers))
			many = items
			return err
		}); err != nil {
			return nil, fmt.Errorf("hugenet: degree %d workers=%d: %w", deg, workers, err)
		}
		if err := sameFrontier(engine.Result(many), engine.Result(one)); err != nil {
			return nil, fmt.Errorf("hugenet: degree %d: workers=%d differs from workers=1: %w",
				deg, workers, err)
		}

		after := counters.Snapshot()
		clusters := fmt.Sprintf("%d", after.Clusters-before.Clusters)
		flatTime, ratioD, ratioW := "-", "-", "-"
		if deg <= flatMax {
			var flat []pareto.Item[*tree.Tree]
			var ft time.Duration
			if err := timed(&ft, func() error {
				items, err := core.RouteContext(ctx, net, core.Options{})
				flat = items
				return err
			}); err != nil {
				return nil, fmt.Errorf("hugenet: degree %d flat: %w", deg, err)
			}
			flatTime = fmtDur(ft)
			ratioD = fmt.Sprintf("%.2fx", float64(one[len(one)-1].Sol.D)/float64(flat[len(flat)-1].Sol.D))
			ratioW = fmt.Sprintf("%.2fx", float64(one[0].Sol.W)/float64(flat[0].Sol.W))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", deg), clusters,
			fmtDur(oneTime), fmtDur(manyTime), flatTime,
			ratioD, ratioW, fmt.Sprintf("%d", len(one)),
		})
	}
	res.Counters = counters.Snapshot()
	return res, nil
}

// Render formats the hierarchical-routing table plus the cluster shape
// counters and the determinism note.
func (r *HugeNetResult) Render() string {
	out := "Huge nets — hierarchical clustered routing vs flat local search\n"
	out += textplot.Table(
		[]string{"degree", "clusters", "hier w=1", fmt.Sprintf("hier w=%d", r.Workers),
			"flat", "best-D", "best-W", "items"},
		r.Rows)
	c := r.Counters
	out += fmt.Sprintf("\nhier counters: %d hierarchical nets, %d clusters + %d singletons, max cluster %d pins, max depth %d levels\n",
		c.Nets, c.Clusters, c.Singletons, c.MaxCluster, c.MaxLevels)
	out += fmt.Sprintf("byte-identity: every degree verified workers=%d ≡ workers=1 (node-for-node)\n", r.Workers)
	out += "best-D/best-W are hier÷flat ratios where the flat search ran; \"-\" marks degrees past the flat baseline's feasible range\n"
	return out
}
