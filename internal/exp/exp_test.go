package exp

import (
	"context"
	"strings"
	"testing"

	"patlabor/internal/netgen"
)

func quickDesigns(t *testing.T, cfg Config) []netgen.Design {
	t.Helper()
	return netgen.Suite(cfg.Suite)
}

func TestRunSmallQuick(t *testing.T) {
	cfg := QuickConfig()
	designs := quickDesigns(t, cfg)
	res, err := RunSmall(context.Background(), cfg, designs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 3 {
		t.Fatalf("methods = %v", res.Methods)
	}
	totalNets := 0
	for _, a := range res.Agg {
		totalNets += a.Nets
		// PatLabor is exact by construction.
		if a.NonOptimal["PatLabor"] != 0 {
			t.Fatalf("PatLabor non-optimal at degree %d", a.Degree)
		}
		if a.Found["PatLabor"] != a.FrontierSols {
			t.Fatalf("PatLabor missed solutions at degree %d", a.Degree)
		}
		// No method can find more than the frontier.
		for _, m := range res.Methods {
			if a.Found[m] > a.FrontierSols {
				t.Fatalf("%s found more than the frontier at degree %d", m, a.Degree)
			}
		}
	}
	if totalNets == 0 {
		t.Fatal("no small nets evaluated")
	}
	// Rendering must produce non-empty output mentioning each method.
	for _, s := range []string{res.RenderFig6(), res.RenderTable3(), res.RenderTable4(), res.RenderFig7a()} {
		if len(s) < 40 {
			t.Fatalf("render too short: %q", s)
		}
	}
	if !strings.Contains(res.RenderTable3(), "SALT") {
		t.Fatal("Table III render missing SALT")
	}
}

func TestRunLargeQuick(t *testing.T) {
	cfg := QuickConfig()
	designs := quickDesigns(t, cfg)
	nets := LargeSuiteNets(cfg, designs)
	if len(nets) == 0 {
		t.Skip("no large nets in quick suite sample")
	}
	res, err := RunLarge(context.Background(), cfg, "Figure 7(b)", nets, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nets != len(nets) {
		t.Fatalf("nets = %d", res.Nets)
	}
	for _, m := range res.Methods {
		if res.Hypervolume[m] <= 0 {
			t.Fatalf("method %s has zero hypervolume", m)
		}
	}
	if !strings.Contains(res.Render(), "Figure 7(b)") {
		t.Fatal("render missing title")
	}
}

func TestDegree100NetsQuick(t *testing.T) {
	cfg := QuickConfig()
	nets := Degree100Nets(cfg)
	if len(nets) != 3 {
		t.Fatalf("quick degree-100 nets = %d", len(nets))
	}
	for _, n := range nets {
		if n.Degree() != 100 {
			t.Fatalf("degree = %d", n.Degree())
		}
	}
}

func TestRunThm1(t *testing.T) {
	res, err := RunThm1(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.M {
		if res.Frontier[i] < 1<<m {
			t.Fatalf("m=%d frontier %d below 2^m", m, res.Frontier[i])
		}
	}
	if !strings.Contains(res.Render(), "Theorem 1") {
		t.Fatal("render missing title")
	}
}

func TestRunThm2Quick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunThm2(context.Background(), cfg, 6, []float64{1, 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kappa) != 2 {
		t.Fatalf("kappas = %v", res.Kappa)
	}
	for i := range res.Kappa {
		if res.MeanSize[i] < 1 {
			t.Fatalf("mean frontier size %v below 1", res.MeanSize[i])
		}
	}
	if !strings.Contains(res.Render(), "Theorem 2") {
		t.Fatal("render missing title")
	}
}

func TestRunTable2Quick(t *testing.T) {
	res, err := RunTable2(context.Background(), 5, 6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 { // degrees 4, 5 eager + 6 sampled
		t.Fatalf("stats rows = %d", len(res.Stats))
	}
	if res.Stats[2].SampledOf == 0 {
		t.Fatal("sampled row not marked")
	}
	out := res.Render()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "sampled") {
		t.Fatalf("render = %q", out)
	}
}

func TestRunAblationQuick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunAblation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PruneRows) != 5 || len(res.LUTRows) != 2 || len(res.SearchRows) != 3 {
		t.Fatalf("rows = %d/%d/%d", len(res.PruneRows), len(res.LUTRows), len(res.SearchRows))
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render missing title")
	}
}

func TestRunGRouteQuick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunGRoute(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nets == 0 || len(res.Rows) != 4 {
		t.Fatalf("result = %+v", res)
	}
	out := res.Render()
	if !strings.Contains(out, "heatmap") || !strings.Contains(out, "Pareto candidate selection") {
		t.Fatalf("render = %q", out)
	}
}

func TestRunThm5Quick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunThm5(context.Background(), cfg, 12, []int{3, 6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.M) != 2 || len(res.Gap) != 2 {
		t.Fatalf("result = %+v", res)
	}
	for i, g := range res.Gap {
		if g < 0 {
			t.Fatalf("negative gap at %d", i)
		}
	}
	if !strings.Contains(res.Render(), "Theorem 5") {
		t.Fatal("render missing title")
	}
}

func TestRunHugeNetQuick(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunHugeNet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // quick mode: degrees 64, 256, 1024
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Counters.Nets == 0 || res.Counters.Clusters == 0 {
		t.Fatalf("counters empty: %+v", res.Counters)
	}
	out := res.Render()
	if !strings.Contains(out, "Huge nets") || !strings.Contains(out, "byte-identity") {
		t.Fatalf("render = %q", out)
	}
}
