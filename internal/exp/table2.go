package exp

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"patlabor/internal/lut"
	"patlabor/internal/textplot"
)

// Table2Result reproduces Table II: lookup table statistics per degree.
type Table2Result struct {
	Stats []lut.DegreeStats
	Sizes []int64 // serialised bytes per degree row
}

// countingWriter measures serialised size without buffering content.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// RunTable2 generates lookup tables eagerly up to eagerMax and a sampled
// slice of the sampleDegree patterns (the per-pattern cost extrapolates to
// the full generation time the paper reports in hours for degree 9).
func RunTable2(ctx context.Context, eagerMax, sampleDegree, sampleCount, workers int) (*Table2Result, error) {
	res := &Table2Result{}
	for d := 4; d <= eagerMax; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := lut.New()
		if err := t.Generate(d, workers); err != nil {
			return nil, err
		}
		st := t.Stats()
		if len(st) != 1 {
			return nil, fmt.Errorf("exp: unexpected stats for degree %d", d)
		}
		res.Stats = append(res.Stats, st[0])
		cw := &countingWriter{}
		if err := t.Save(cw); err != nil {
			return nil, err
		}
		res.Sizes = append(res.Sizes, cw.n)
	}
	if sampleDegree > eagerMax && sampleCount > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := lut.New()
		if err := t.GenerateSample(sampleDegree, workers, sampleCount); err != nil {
			return nil, err
		}
		st := t.Stats()
		if len(st) == 1 {
			res.Stats = append(res.Stats, st[0])
			cw := &countingWriter{}
			if err := t.Save(cw); err != nil {
				return nil, err
			}
			res.Sizes = append(res.Sizes, cw.n)
		}
	}
	return res, nil
}

// Render renders the Table II reproduction.
func (r *Table2Result) Render() string {
	var rows [][]string
	for i, st := range r.Stats {
		idx := strconv.Itoa(st.NumIndex)
		gen := fmtDur(st.GenTime)
		if st.SampledOf > 0 {
			idx = fmt.Sprintf("%d of %d (sampled)", st.NumIndex, st.SampledOf)
			denom := st.NumIndex
			if denom < 1 {
				denom = 1
			}
			est := st.GenTime / time.Duration(denom) * time.Duration(st.SampledOf)
			gen = fmt.Sprintf("%s (est. full: %s)", fmtDur(st.GenTime), fmtDur(est))
		}
		rows = append(rows, []string{
			strconv.Itoa(st.Degree), idx,
			fmt.Sprintf("%.2f", st.AvgTopo()),
			fmtBytes(r.Sizes[i]), gen,
		})
	}
	return "Table II — lookup table statistics\n" +
		textplot.Table([]string{"degree", "#index", "#topo (avg)", "size", "gen time"}, rows) +
		"(paper at degree 9: 429,516 indices, 378 avg topologies, 240 MB, 4.68 h on 16 cores)\n"
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
