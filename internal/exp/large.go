package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"patlabor/internal/engine"
	"patlabor/internal/method"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

// LargeResult is the outcome of a large-net comparison (Figure 7(b)/(c)):
// averaged normalised Pareto curves, runtimes and mean hypervolume.
type LargeResult struct {
	Title       string
	Nets        int
	Methods     []string
	Curves      map[string]*Curve
	Runtime     map[string]time.Duration
	Hypervolume map[string]float64 // mean normalised hypervolume, ref (1.6, 1.6)
}

// RunLarge compares all methods on the given nets, fanning nets out on
// cfg.Workers workers. Wirelength is normalised by the RSMT engine's tree
// (FLUTE's role) and delay by the shortest-path arborescence delay (CL's
// role), exactly as in Figure 7.
func RunLarge(ctx context.Context, cfg Config, title string, nets []tree.Net, allMethods bool) (*LargeResult, error) {
	methods := method.Standard(allMethods)
	res := &LargeResult{
		Title:       title,
		Nets:        len(nets),
		Curves:      map[string]*Curve{},
		Runtime:     map[string]time.Duration{},
		Hypervolume: map[string]float64{},
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		res.Curves[m.Name()] = newCurve()
	}
	ref := pareto.Sol{W: 160, D: 160} // on the ×100 normalised scale below
	// Per-net evaluation runs on the worker pool; each net fills its own
	// slot and the curves/hypervolume accumulate serially afterwards, so
	// the rendered figure is identical at any worker count.
	type netEval struct {
		wN, dN int64
		sols   map[string][]pareto.Sol
		dur    map[string]time.Duration
	}
	evals := make([]netEval, len(nets))
	err := engine.ForEachContext(ctx, len(nets), cfg.Workers, func(i int) error {
		net := nets[i]
		ev := netEval{
			wN:   rsmt.Wirelength(net),
			dN:   rsma.MinDelay(net),
			sols: map[string][]pareto.Sol{},
			dur:  map[string]time.Duration{},
		}
		if ev.wN > 0 && ev.dN > 0 {
			for _, m := range methods {
				var sols []pareto.Sol
				var acc time.Duration
				err := timed(&acc, func() error {
					items, err := m.Frontier(ctx, net)
					if err != nil {
						return err
					}
					sols = itemSols(items)
					return nil
				})
				if err != nil {
					return fmt.Errorf("exp: %s on degree-%d net: %w", m.Name(), net.Degree(), err)
				}
				ev.sols[m.Name()] = sols
				ev.dur[m.Name()] = acc
			}
		}
		evals[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range evals {
		if ev.wN <= 0 || ev.dN <= 0 {
			continue
		}
		for _, m := range methods {
			res.Runtime[m.Name()] += ev.dur[m.Name()]
			sols := ev.sols[m.Name()]
			res.Curves[m.Name()].add(sols, ev.wN, ev.dN)
			// Normalised hypervolume on a ×100 integer scale.
			norm := make([]pareto.Sol, 0, len(sols))
			for _, s := range sols {
				norm = append(norm, pareto.Sol{
					W: s.W * 100 / ev.wN,
					D: s.D * 100 / ev.dN,
				})
			}
			res.Hypervolume[m.Name()] += pareto.Hypervolume(norm, ref)
		}
	}
	for _, c := range res.Curves {
		c.finalize()
	}
	if res.Nets > 0 {
		for m := range res.Hypervolume {
			res.Hypervolume[m] /= float64(res.Nets)
		}
	}
	return res, nil
}

// LargeSuiteNets picks the large-degree nets of the suite (Figure 7(b)).
func LargeSuiteNets(cfg Config, designs []netgen.Design) []tree.Net {
	nets := netgen.NetsInDegreeRange(designs, 10, 100)
	limit := 300
	if cfg.Quick {
		limit = 12
	}
	if len(nets) > limit {
		nets = nets[:limit]
	}
	return nets
}

// Degree100Nets synthesises the Figure 7(c) workload: random degree-100
// nets, uniform pins.
func Degree100Nets(cfg Config) []tree.Net {
	count := 100
	if cfg.Quick {
		count = 3
	}
	rng := rand.New(rand.NewSource(42))
	nets := make([]tree.Net, count)
	for i := range nets {
		nets[i] = netgen.Uniform(rng, 100, 100000)
	}
	return nets
}

// Render renders the large-net comparison.
func (r *LargeResult) Render() string {
	out := fmt.Sprintf("%s — %d nets\n", r.Title, r.Nets)
	out += renderCurves(r.Methods, r.Curves)
	out += "method       total time   mean hypervolume (ref 1.6,1.6; higher = tighter)\n"
	for _, m := range r.Methods {
		out += fmt.Sprintf("  %-10s %-12s %.1f\n", m, fmtDur(r.Runtime[m]), r.Hypervolume[m])
	}
	return out
}
