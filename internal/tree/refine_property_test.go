package tree

import (
	"math/rand"
	"testing"
)

// TestSteinerizeProperties checks the invariants Steinerize promises on
// arbitrary valid trees: the result still validates against its net, the
// wirelength never increases, and the objective vector agrees with a
// from-scratch re-evaluation through the Evaluator.
func TestSteinerizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ev := NewEvaluator()
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(20)
		net := randomNet(rng, n, 2500)
		var tr *Tree
		if trial%2 == 0 {
			tr = Star(net)
		} else {
			tr = randomTopology(rng, net)
		}
		before := tr.Wirelength()

		tr.Steinerize()

		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: Steinerize broke validity: %v", trial, err)
		}
		if after := tr.Wirelength(); after > before {
			t.Fatalf("trial %d: Steinerize increased wirelength %d -> %d", trial, before, after)
		}
		if got, want := tr.Sol(), ev.Sol(tr); got != want {
			t.Fatalf("trial %d: Sol %v inconsistent with re-evaluation %v", trial, got, want)
		}
	}
}

// TestRelocateSteinersProperties checks the same invariants for the
// Steiner-point relocation pass, which moves coordinates but never edges.
func TestRelocateSteinersProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ev := NewEvaluator()
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(18)
		net := randomNet(rng, n, 2500)
		tr := randomTopology(rng, net)
		tr.Steinerize()
		before := tr.Wirelength()
		structure := append([]int(nil), tr.Parent...)

		tr.RelocateSteiners()

		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: RelocateSteiners broke validity: %v", trial, err)
		}
		if after := tr.Wirelength(); after > before {
			t.Fatalf("trial %d: RelocateSteiners increased wirelength %d -> %d", trial, before, after)
		}
		for i, p := range tr.Parent {
			if p != structure[i] {
				t.Fatalf("trial %d: RelocateSteiners changed the edge set at node %d", trial, i)
			}
		}
		if got, want := tr.Sol(), ev.Sol(tr); got != want {
			t.Fatalf("trial %d: Sol %v inconsistent with re-evaluation %v", trial, got, want)
		}
	}
}

// TestCompactProperties checks that Compact preserves validity and the
// realised connectivity: wirelength never grows (it only removes dead
// Steiner nodes and splices pass-throughs) and every pin keeps its delay.
func TestCompactProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ev := NewEvaluator()
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(20)
		net := randomNet(rng, n, 2500)
		tr := randomTopology(rng, net)
		tr.Steinerize()
		// Orphan a few pins into Steiner points, as RemovePin does, so
		// Compact has real work.
		for i := range tr.Nodes {
			if tr.Nodes[i].Pin >= 1 && rng.Intn(4) == 0 {
				tr.Nodes[i].Pin = -1
			}
		}
		pins := map[int]bool{}
		for _, nd := range tr.Nodes {
			if nd.Pin >= 0 {
				pins[nd.Pin] = true
			}
		}
		beforeDelay := ev.SinkDelaysInto(tr, n)
		beforeKept := make([]int64, n)
		copy(beforeKept, beforeDelay)
		before := tr.Wirelength()

		tr.Compact()

		if after := tr.Wirelength(); after > before {
			t.Fatalf("trial %d: Compact increased wirelength %d -> %d", trial, before, after)
		}
		afterDelay := ev.SinkDelaysInto(tr, n)
		for pin := range pins {
			if afterDelay[pin] > beforeKept[pin] {
				t.Fatalf("trial %d: Compact increased pin %d delay %d -> %d",
					trial, pin, beforeKept[pin], afterDelay[pin])
			}
		}
	}
}
