package tree

import (
	"sync"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
)

// Evaluator is reusable evaluation scratch for routing trees. The
// allocating helpers on Tree (Children, PathLengths, SinkDelays, Sol)
// build fresh slices and maps on every call, which dominates the
// allocation profile of the large-net local search — every iteration
// evaluates dozens of candidate trees. An Evaluator holds the child
// adjacency in CSR form (one offset slice, one child slice) plus the
// traversal order and per-node length buffers, all grown once and reused
// across calls, so steady-state evaluation is allocation free.
//
// An Evaluator is not safe for concurrent use; each search (or worker)
// owns its own, typically via GetEvaluator/PutEvaluator.
type Evaluator struct {
	// CSR child adjacency of the last loaded tree: the children of node v
	// are child[start[v]:start[v+1]].
	start []int32
	child []int32
	// order is the root-first traversal order of the last loaded tree.
	order []int32
	// pl is the per-node path-length buffer.
	pl []int64
	// sink is the per-pin delay buffer of SinkDelaysInto.
	sink []int64
	// nbr/xs/ys are neighbourhood scratch for median relocation.
	nbr    []geom.Point
	xs, ys []int64
}

// evalPool recycles evaluators for the compatibility wrappers (Compact,
// Steinerize, salt.Rebalance, policy.Select) so one-shot callers do not
// pay a fresh scratch allocation per call.
var evalPool = sync.Pool{New: func() any { return new(Evaluator) }}

// NewEvaluator returns a fresh evaluator. Long-lived owners (one local
// search, one engine worker) should prefer this over the pool.
func NewEvaluator() *Evaluator { return new(Evaluator) }

// GetEvaluator borrows an evaluator from the shared pool.
func GetEvaluator() *Evaluator { return evalPool.Get().(*Evaluator) }

// PutEvaluator returns a borrowed evaluator to the shared pool.
func PutEvaluator(e *Evaluator) { evalPool.Put(e) }

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// Load rebuilds the CSR child adjacency and the root-first order for t.
// It must be called again after any structural change (Add, remove,
// reparenting); coordinate or pin-index changes do not invalidate it.
func (e *Evaluator) Load(t *Tree) {
	n := len(t.Nodes)
	e.start = growInt32(e.start, n+1)
	e.child = growInt32(e.child, n)
	for i := range e.start {
		e.start[i] = 0
	}
	for _, p := range t.Parent {
		if p >= 0 {
			e.start[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		e.start[v+1] += e.start[v]
	}
	// Fill buckets with a moving cursor per parent: iterating node indices
	// ascending keeps each child list in index order, matching
	// Tree.Children.
	for i, p := range t.Parent {
		if p >= 0 {
			e.child[e.start[p]] = int32(i)
			e.start[p]++
		}
	}
	// The cursors drifted to each bucket's end; shift back to starts.
	for v := n; v > 0; v-- {
		e.start[v] = e.start[v-1]
	}
	e.start[0] = 0
	// Root-first order, children in index order (matches Tree.TopoOrder).
	// The order slice doubles as the BFS queue.
	e.order = append(e.order[:0], int32(t.Root))
	for head := 0; head < len(e.order); head++ {
		v := e.order[head]
		e.order = append(e.order, e.child[e.start[v]:e.start[v+1]]...)
	}
}

// Children returns the child indices of node v in the last loaded tree.
// The slice aliases the evaluator's scratch and is valid until the next
// Load.
func (e *Evaluator) Children(v int) []int32 {
	return e.child[e.start[v]:e.start[v+1]]
}

// Order returns the root-first traversal order of the last loaded tree.
// The slice aliases the evaluator's scratch and is valid until the next
// Load.
func (e *Evaluator) Order() []int32 { return e.order }

// LengthScratch returns the evaluator's zeroed per-node length buffer of
// length n, for callers that compute path lengths interleaved with tree
// edits (salt.RebalanceWith). The slice is valid until the next
// path-length call.
func (e *Evaluator) LengthScratch(n int) []int64 {
	e.pl = growInt64(e.pl, n)
	for i := range e.pl {
		e.pl[i] = 0
	}
	return e.pl
}

// PathLengthsInto computes, for each node of t, the rectilinear path
// length from the root along tree edges, into the evaluator's buffer. It
// is Tree.PathLengths without the per-call allocations; the returned
// slice is valid until the next path-length call on e.
func (e *Evaluator) PathLengthsInto(t *Tree) []int64 {
	e.Load(t)
	return e.pathLengths(t)
}

// pathLengths assumes Load(t) has been called.
func (e *Evaluator) pathLengths(t *Tree) []int64 {
	pl := e.LengthScratch(len(t.Nodes))
	for _, v := range e.order {
		if p := t.Parent[v]; p >= 0 {
			pl[v] = pl[p] + geom.Dist(t.Nodes[v].P, t.Nodes[p].P)
		}
	}
	return pl
}

// SinkDelaysInto computes the per-pin path lengths of t indexed by pin
// (0..degree-1): the maximum path length over the nodes realising each
// pin, 0 for pins not present. It replaces the map-returning
// Tree.SinkDelays on hot paths; the returned slice aliases the
// evaluator's scratch and is valid until its next call.
func (e *Evaluator) SinkDelaysInto(t *Tree, degree int) []int64 {
	e.Load(t)
	pl := e.pathLengths(t)
	e.sink = growInt64(e.sink, degree)
	out := e.sink
	for i := range out {
		out[i] = 0
	}
	for i, nd := range t.Nodes {
		if nd.Pin >= 0 && nd.Pin < degree && pl[i] > out[nd.Pin] {
			out[nd.Pin] = pl[i]
		}
	}
	return out
}

// Sol returns the objective vector (wirelength, delay) of t in one pass
// over the loaded adjacency, without the intermediate slices of
// Tree.Sol.
func (e *Evaluator) Sol(t *Tree) pareto.Sol {
	e.Load(t)
	pl := e.pathLengths(t)
	var w, d int64
	for i, p := range t.Parent {
		if p >= 0 {
			w = geom.AddCheck(w, geom.Dist(t.Nodes[i].P, t.Nodes[p].P))
		}
	}
	for i, nd := range t.Nodes {
		if nd.Pin >= 1 && pl[i] > d {
			d = pl[i]
		}
	}
	return pareto.Sol{W: w, D: d}
}

// medianPoint is geom.MedianPoint on the evaluator's scratch: the
// componentwise lower median of the points. Neighbourhood sets are tiny
// (a node's parent plus children), so insertion sort beats sort.Slice
// and keeps the call allocation free.
func (e *Evaluator) medianPoint(pts []geom.Point) geom.Point {
	e.xs = e.xs[:0]
	e.ys = e.ys[:0]
	for _, p := range pts {
		e.xs = append(e.xs, p.X)
		e.ys = append(e.ys, p.Y)
	}
	insort64(e.xs)
	insort64(e.ys)
	return geom.Point{X: e.xs[(len(e.xs)-1)/2], Y: e.ys[(len(e.ys)-1)/2]}
}

func insort64(x []int64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
