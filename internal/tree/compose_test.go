package tree

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
)

func TestRelabelPins(t *testing.T) {
	sub := NewNet(geom.Pt(0, 0), geom.Pt(5, 5))
	tr := Star(sub)
	if err := tr.RelabelPins([]int{3, 7}); err != nil {
		t.Fatal(err)
	}
	if tr.Nodes[0].Pin != 3 || tr.Nodes[1].Pin != 7 {
		t.Fatalf("pins = %d,%d", tr.Nodes[0].Pin, tr.Nodes[1].Pin)
	}
	if err := tr.RelabelPins([]int{0}); err == nil {
		t.Fatal("out-of-range relabel accepted")
	}
}

func TestMergeAtRoot(t *testing.T) {
	netA := NewNet(geom.Pt(0, 0), geom.Pt(5, 0))
	netB := NewNet(geom.Pt(0, 0), geom.Pt(0, 7))
	a := Star(netA)
	b := Star(netB)
	if err := b.RelabelPins([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := MergeAtRoot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	full := NewNet(geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(0, 7))
	if err := m.Validate(full); err != nil {
		t.Fatal(err)
	}
	if m.Wirelength() != 12 || m.MaxDelay() != 7 {
		t.Fatalf("merged sol = %v", m.Sol())
	}
	// Mismatched roots rejected.
	c := Star(NewNet(geom.Pt(1, 1), geom.Pt(2, 2)))
	if _, err := MergeAtRoot(a, c); err == nil {
		t.Fatal("mismatched roots accepted")
	}
}

func TestGraftAtDifferentPosition(t *testing.T) {
	net := NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 5))
	// Build a subtree rooted at pin 1's position carrying pin 2.
	sub2 := New(net.Pins[1], 1)
	sub2.Add(net.Pins[2], 2, 0)
	// Graft onto the node at (10,0): positions match, so they merge.
	base2 := New(net.Source(), 0)
	n1 := base2.Add(net.Pins[1], 1, base2.Root)
	base2.Graft(sub2, n1)
	if err := base2.Validate(net); err != nil {
		t.Fatal(err)
	}
	if base2.Wirelength() != 15 {
		t.Fatalf("wirelength = %d, want 15", base2.Wirelength())
	}
}

func TestRemovePin(t *testing.T) {
	net := NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0))
	// Chain 0 -> 1 -> 2: removing pin 1 must keep pin 2 connected.
	tr := New(net.Source(), 0)
	a := tr.Add(net.Pins[1], 1, tr.Root)
	tr.Add(net.Pins[2], 2, a)
	if err := tr.RemovePin(1); err != nil {
		t.Fatal(err)
	}
	// Pin 1 no longer present; pin 2 still reachable.
	for _, nd := range tr.Nodes {
		if nd.Pin == 1 {
			t.Fatal("pin 1 still present")
		}
	}
	d := tr.SinkDelays()
	if d[2] != 20 {
		t.Fatalf("pin 2 delay = %d", d[2])
	}
	if err := tr.RemovePin(0); err == nil {
		t.Fatal("removing the source accepted")
	}
	if err := tr.RemovePin(9); err == nil {
		t.Fatal("removing an absent pin accepted")
	}
}

func TestCompactPreservesValidityProperty(t *testing.T) {
	// Random valid trees with extra Steiner noise stay valid through
	// Compact, and objectives never get worse.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		pins := make([]geom.Point, n)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(60), rng.Int63n(60))
		}
		net := Net{Pins: geom.DedupPoints(pins)}
		tr := Star(net)
		// Insert random Steiner chains above random nodes.
		for k := 0; k < 4; k++ {
			v := rng.Intn(tr.Len())
			if v == tr.Root {
				continue
			}
			s := tr.Add(geom.Pt(rng.Int63n(60), rng.Int63n(60)), -1, tr.Parent[v])
			tr.Parent[v] = s
		}
		w0, d0 := tr.Wirelength(), tr.MaxDelay()
		tr.Compact()
		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Wirelength() > w0 || tr.MaxDelay() > d0 {
			t.Fatalf("trial %d: Compact worsened objectives", trial)
		}
	}
}

func TestGraftThenRemovePinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		base := NewNet(geom.Pt(0, 0), geom.Pt(rng.Int63n(50)+1, rng.Int63n(50)+1))
		tr := Star(base)
		// Graft a subtree carrying pin 2 at the root.
		p2 := geom.Pt(rng.Int63n(50), rng.Int63n(50)+60)
		sub := New(geom.Pt(0, 0), 0)
		sub.Add(p2, 2, sub.Root)
		tr.Graft(sub, tr.Root)
		full := Net{Pins: append(append([]geom.Point(nil), base.Pins...), p2)}
		if err := tr.Validate(full); err != nil {
			t.Fatalf("trial %d after graft: %v", trial, err)
		}
		if err := tr.RemovePin(2); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.Validate(base); err != nil {
			t.Fatalf("trial %d after remove: %v", trial, err)
		}
	}
}
