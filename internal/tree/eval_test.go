package tree

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
)

// randomTopology builds a tree over net with each sink attached to a
// uniformly random earlier node — arbitrary branching, unlike Star.
func randomTopology(rng *rand.Rand, net Net) *Tree {
	t := New(net.Pins[0], 0)
	for i := 1; i < net.Degree(); i++ {
		t.Add(net.Pins[i], i, rng.Intn(t.Len()))
	}
	return t
}

func randomNet(rng *rand.Rand, n int, span int64) Net {
	pins := make([]geom.Point, n)
	for i := range pins {
		pins[i] = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return Net{Pins: pins}
}

// TestEvaluatorDifferential drives one shared Evaluator across trees of
// varying size and shape and checks every scratch computation against the
// allocating Tree methods it replaces.
func TestEvaluatorDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ev := NewEvaluator()
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(24)
		net := randomNet(rng, n, 3000)
		tr := randomTopology(rng, net)
		switch trial % 3 {
		case 1:
			tr.Steinerize()
		case 2:
			tr.Steinerize()
			tr.RelocateSteiners()
		}

		ev.Load(tr)

		// Adjacency must agree with the allocating Children.
		want := tr.Children()
		for v := 0; v < tr.Len(); v++ {
			got := ev.Children(v)
			if len(got) != len(want[v]) {
				t.Fatalf("trial %d node %d: %d children, want %d", trial, v, len(got), len(want[v]))
			}
			for k, c := range got {
				if int(c) != want[v][k] {
					t.Fatalf("trial %d node %d child %d: %d, want %d", trial, v, k, c, want[v][k])
				}
			}
		}

		// Order: every node exactly once, root first, parents before
		// children (the property all traversals rely on).
		order := ev.Order()
		if len(order) != tr.Len() {
			t.Fatalf("trial %d: order has %d nodes, want %d", trial, len(order), tr.Len())
		}
		pos := make([]int, tr.Len())
		for k, v := range order {
			pos[v] = k
		}
		if order[0] != int32(tr.Root) {
			t.Fatalf("trial %d: order starts at %d, not the root", trial, order[0])
		}
		for _, v := range order[1:] {
			if pos[tr.Parent[v]] >= pos[v] {
				t.Fatalf("trial %d: node %d precedes its parent", trial, v)
			}
		}

		pl := ev.PathLengthsInto(tr)
		for i, d := range tr.PathLengths() {
			if pl[i] != d {
				t.Fatalf("trial %d: path length of node %d = %d, want %d", trial, i, pl[i], d)
			}
		}

		sd := ev.SinkDelaysInto(tr, net.Degree())
		byPin := tr.SinkDelays()
		for pin := 0; pin < net.Degree(); pin++ {
			want, ok := byPin[pin]
			if !ok {
				want = 0
			}
			if sd[pin] != want {
				t.Fatalf("trial %d: delay of pin %d = %d, want %d", trial, pin, sd[pin], want)
			}
		}

		if got, want := ev.Sol(tr), tr.Sol(); got != want {
			t.Fatalf("trial %d: Sol %v, want %v", trial, got, want)
		}
	}
}

// TestEvaluatorDuplicatePins pins down SinkDelaysInto's max-over-
// duplicates semantics: when several nodes realise one pin, the reported
// delay is the largest (matching the deprecated map's fold).
func TestEvaluatorDuplicatePins(t *testing.T) {
	tr := New(geom.Pt(0, 0), 0)
	a := tr.Add(geom.Pt(10, 0), 1, tr.Root)
	tr.Add(geom.Pt(10, 20), 1, a) // pin 1 again, deeper
	tr.Add(geom.Pt(0, 5), 2, tr.Root)

	ev := NewEvaluator()
	sd := ev.SinkDelaysInto(tr, 4)
	if sd[1] != 30 {
		t.Fatalf("duplicate pin delay = %d, want the max 30", sd[1])
	}
	if sd[2] != 5 {
		t.Fatalf("pin 2 delay = %d, want 5", sd[2])
	}
	if sd[3] != 0 {
		t.Fatalf("absent pin delay = %d, want 0", sd[3])
	}
}

// TestEvaluatorSteadyStateAllocs is the point of the type: once warm, a
// Load-and-evaluate cycle performs no allocation at all.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := randomNet(rng, 40, 5000)
	tr := randomTopology(rng, net)
	tr.Steinerize()

	ev := NewEvaluator()
	ev.Load(tr) // warm the scratch to this size
	allocs := testing.AllocsPerRun(50, func() {
		ev.Load(tr)
		_ = ev.PathLengthsInto(tr)
		_ = ev.SinkDelaysInto(tr, net.Degree())
		_ = ev.Sol(tr)
	})
	if allocs != 0 {
		t.Fatalf("steady-state evaluator cycle allocates %.1f times", allocs)
	}
}
