package tree

import "fmt"

// RelabelPins rewrites the pin indices of t through pinMap: a node
// realising sub-net pin k comes to realise pinMap[k]. Used when a tree was
// routed for a sub-net and is grafted back into the parent net's frame.
func (t *Tree) RelabelPins(pinMap []int) error {
	for i, nd := range t.Nodes {
		if nd.Pin < 0 {
			continue
		}
		if nd.Pin >= len(pinMap) {
			return fmt.Errorf("tree: node %d realises pin %d, map has %d entries", i, nd.Pin, len(pinMap))
		}
		t.Nodes[i].Pin = pinMap[nd.Pin]
	}
	return nil
}

// Graft attaches a copy of sub (rooted anywhere) under node at of t: sub's
// root becomes a child of at unless it coincides with at's position, in
// which case sub's children hang directly off at. Pin indices of sub must
// already be in t's net frame; sub's root pin marking is dropped when the
// roots are merged. It returns the index in t of the node corresponding to
// sub's root.
func (t *Tree) Graft(sub *Tree, at int) int {
	idx := make([]int, sub.Len())
	var rootIdx int
	for _, i := range sub.TopoOrder() {
		nd := sub.Nodes[i]
		if i == sub.Root {
			if nd.P == t.Nodes[at].P {
				idx[i] = at
				if nd.Pin >= 0 && t.Nodes[at].IsSteiner() {
					t.Nodes[at].Pin = nd.Pin
				}
			} else {
				idx[i] = t.Add(nd.P, nd.Pin, at)
			}
			rootIdx = idx[i]
			continue
		}
		idx[i] = t.Add(nd.P, nd.Pin, idx[sub.Parent[i]])
	}
	return rootIdx
}

// MergeAtRoot returns a new tree combining a and b, which must be rooted
// at the same position; the result's root carries a's root pin.
func MergeAtRoot(a, b *Tree) (*Tree, error) {
	if a.Nodes[a.Root].P != b.Nodes[b.Root].P {
		return nil, fmt.Errorf("tree: MergeAtRoot roots differ: %v vs %v",
			a.Nodes[a.Root].P, b.Nodes[b.Root].P)
	}
	out := a.Clone()
	idx := make([]int, b.Len())
	for _, i := range b.TopoOrder() {
		if i == b.Root {
			idx[i] = out.Root
			continue
		}
		nd := b.Nodes[i]
		idx[i] = out.Add(nd.P, nd.Pin, idx[b.Parent[i]])
	}
	return out, nil
}

// RemovePin detaches the node realising pin from the tree structure: if it
// is a leaf it is removed, otherwise it is demoted to a Steiner point so
// its subtree stays connected. The pin can then be re-routed and grafted
// back. Removing the source pin (0) is rejected.
func (t *Tree) RemovePin(pin int) error {
	e := GetEvaluator()
	err := t.RemovePinWith(pin, e)
	PutEvaluator(e)
	return err
}

// RemovePinWith is RemovePin compacting through e's scratch adjacency.
func (t *Tree) RemovePinWith(pin int, e *Evaluator) error {
	if pin == 0 {
		return fmt.Errorf("tree: cannot remove the source pin")
	}
	found := false
	for i := range t.Nodes {
		if t.Nodes[i].Pin == pin {
			t.Nodes[i].Pin = -1
			found = true
		}
	}
	if !found {
		return fmt.Errorf("tree: pin %d not present", pin)
	}
	t.CompactWith(e)
	return nil
}
