package tree

import (
	"math/rand"
	"testing"

	"patlabor/internal/geom"
)

func testNet() Net {
	return NewNet(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(10, 10))
}

func TestStar(t *testing.T) {
	net := testNet()
	s := Star(net)
	if err := s.Validate(net); err != nil {
		t.Fatalf("Star invalid: %v", err)
	}
	if got := s.Wirelength(); got != 40 {
		t.Errorf("Wirelength = %d, want 40", got)
	}
	if got := s.MaxDelay(); got != 20 {
		t.Errorf("MaxDelay = %d, want 20", got)
	}
}

func TestPathTreeDelays(t *testing.T) {
	// Chain: source -> (10,0) -> (10,10) -> (0,10).
	net := testNet()
	tr := New(net.Source(), 0)
	a := tr.Add(net.Pins[1], 1, tr.Root)
	b := tr.Add(net.Pins[3], 3, a)
	tr.Add(net.Pins[2], 2, b)
	if err := tr.Validate(net); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := tr.Wirelength(); got != 30 {
		t.Errorf("Wirelength = %d, want 30", got)
	}
	if got := tr.MaxDelay(); got != 30 {
		t.Errorf("MaxDelay = %d, want 30", got)
	}
	d := tr.SinkDelays()
	if d[1] != 10 || d[3] != 20 || d[2] != 30 {
		t.Errorf("SinkDelays = %v", d)
	}
}

func TestSolMatchesComponents(t *testing.T) {
	net := testNet()
	s := Star(net)
	sol := s.Sol()
	if sol.W != s.Wirelength() || sol.D != s.MaxDelay() {
		t.Fatalf("Sol = %v, want (%d,%d)", sol, s.Wirelength(), s.MaxDelay())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	net := testNet()

	// Missing pin.
	tr := New(net.Source(), 0)
	tr.Add(net.Pins[1], 1, tr.Root)
	if err := tr.Validate(net); err == nil {
		t.Error("missing pins not detected")
	}

	// Wrong pin position.
	tr2 := Star(net)
	tr2.Nodes[1].P = geom.Pt(99, 99)
	if err := tr2.Validate(net); err == nil {
		t.Error("wrong pin position not detected")
	}

	// Cycle.
	tr3 := Star(net)
	tr3.Parent[1] = 2
	tr3.Parent[2] = 1
	if err := tr3.Validate(net); err == nil {
		t.Error("cycle not detected")
	}

	// Root not at source.
	tr4 := Star(net)
	tr4.Nodes[0].P = geom.Pt(1, 1)
	if err := tr4.Validate(net); err == nil {
		t.Error("displaced root not detected")
	}

	// Pin index out of range.
	tr5 := Star(net)
	tr5.Nodes[1].Pin = 9
	if err := tr5.Validate(net); err == nil {
		t.Error("out-of-range pin not detected")
	}
}

func TestClone(t *testing.T) {
	net := testNet()
	a := Star(net)
	b := a.Clone()
	b.Add(geom.Pt(5, 5), -1, b.Root)
	b.Nodes[1].P = geom.Pt(7, 7)
	if a.Len() != 4 || a.Nodes[1].P != net.Pins[1] {
		t.Fatal("Clone is not independent of the original")
	}
}

func TestCompactSplicesSteinerChains(t *testing.T) {
	net := NewNet(geom.Pt(0, 0), geom.Pt(10, 0))
	tr := New(net.Source(), 0)
	s1 := tr.Add(geom.Pt(3, 0), -1, tr.Root)
	s2 := tr.Add(geom.Pt(6, 0), -1, s1)
	tr.Add(net.Pins[1], 1, s2)
	leaf := tr.Add(geom.Pt(4, 4), -1, s1)
	_ = leaf
	tr.Compact()
	if err := tr.Validate(net); err != nil {
		t.Fatalf("invalid after Compact: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after Compact = %d, want 2 (all Steiner removed)", tr.Len())
	}
	if tr.Wirelength() != 10 || tr.MaxDelay() != 10 {
		t.Fatalf("objectives after Compact = %v", tr.Sol())
	}
}

func TestSteinerizeSharesTrunk(t *testing.T) {
	// Source at origin, two sinks straight up then fanning out: the star
	// wastes a shared vertical trunk of length 5.
	net := NewNet(geom.Pt(0, 0), geom.Pt(-3, 5), geom.Pt(3, 5))
	tr := Star(net)
	wBefore := tr.Wirelength()
	dBefore := tr.MaxDelay()
	tr.Steinerize()
	if err := tr.Validate(net); err != nil {
		t.Fatalf("invalid after Steinerize: %v", err)
	}
	if got := tr.Wirelength(); got != wBefore-5 {
		t.Errorf("Wirelength = %d, want %d", got, wBefore-5)
	}
	if got := tr.MaxDelay(); got != dBefore {
		t.Errorf("MaxDelay changed: %d -> %d", dBefore, got)
	}
}

func TestSteinerizePreservesDelaysProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(8)
		pins := make([]geom.Point, n)
		for i := range pins {
			pins[i] = geom.Pt(rng.Int63n(100), rng.Int63n(100))
		}
		net := Net{Pins: geom.DedupPoints(pins)}
		if net.Degree() < 3 {
			continue
		}
		tr := Star(net)
		before := tr.SinkDelays()
		w0 := tr.Wirelength()
		tr.Steinerize()
		if err := tr.Validate(net); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if tr.Wirelength() > w0 {
			t.Fatalf("trial %d: Steinerize increased wirelength %d -> %d", trial, w0, tr.Wirelength())
		}
		after := tr.SinkDelays()
		for pin, d := range before {
			if after[pin] != d {
				t.Fatalf("trial %d: delay of pin %d changed %d -> %d", trial, pin, d, after[pin])
			}
		}
	}
}

func TestRelocateSteinersReducesWL(t *testing.T) {
	net := NewNet(geom.Pt(0, 0), geom.Pt(10, 10), geom.Pt(10, 12))
	tr := New(net.Source(), 0)
	// A badly placed Steiner node.
	s := tr.Add(geom.Pt(2, 9), -1, tr.Root)
	tr.Add(net.Pins[1], 1, s)
	tr.Add(net.Pins[2], 2, s)
	w0 := tr.Wirelength()
	if !tr.RelocateSteiners() {
		t.Fatal("RelocateSteiners did not move the misplaced node")
	}
	if err := tr.Validate(net); err != nil {
		t.Fatalf("invalid after relocate: %v", err)
	}
	if tr.Wirelength() >= w0 {
		t.Fatalf("wirelength did not decrease: %d -> %d", w0, tr.Wirelength())
	}
}

func TestTopoOrderRootFirst(t *testing.T) {
	net := testNet()
	tr := Star(net)
	order := tr.TopoOrder()
	if len(order) != tr.Len() || order[0] != tr.Root {
		t.Fatalf("TopoOrder = %v", order)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for i, p := range tr.Parent {
		if p >= 0 && pos[p] > pos[i] {
			t.Fatalf("node %d before its parent %d in %v", i, p, order)
		}
	}
}

func TestChildren(t *testing.T) {
	net := testNet()
	tr := Star(net)
	ch := tr.Children()
	if len(ch[tr.Root]) != 3 {
		t.Fatalf("root children = %v", ch[tr.Root])
	}
}
