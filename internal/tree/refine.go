package tree

import "patlabor/internal/geom"

// Compact removes useless Steiner nodes in place: Steiner leaves are
// dropped and Steiner nodes with exactly one child are spliced out
// (their child is reattached to their parent). Both operations never
// increase wirelength or any source-sink path length. Node indices are
// renumbered; the root keeps realising the source pin.
func (t *Tree) Compact() {
	e := GetEvaluator()
	t.CompactWith(e)
	PutEvaluator(e)
}

// CompactWith is Compact evaluating through e's scratch adjacency, for
// callers that run many passes with one evaluator.
func (t *Tree) CompactWith(e *Evaluator) {
	for {
		e.Load(t)
		victim := -1
		for i, nd := range t.Nodes {
			if i == t.Root {
				continue
			}
			if nd.IsSteiner() && len(e.Children(i)) <= 1 {
				victim = i
				break
			}
			// A pin co-located with a Steiner parent absorbs the parent's
			// role: promote the pin into the parent node and drop the
			// child (its own children, if any, are re-homed below).
			p := t.Parent[i]
			if !nd.IsSteiner() && t.Nodes[p].IsSteiner() && t.Nodes[p].P == nd.P {
				t.Nodes[p].Pin = nd.Pin
				t.Nodes[i].Pin = -1
				if len(e.Children(i)) <= 1 {
					victim = i
					break
				}
			}
		}
		if victim < 0 {
			return
		}
		// Splice: reattach the (at most one) child to victim's parent.
		for _, c := range e.Children(victim) {
			t.Parent[c] = t.Parent[victim]
		}
		t.remove(victim)
	}
}

// remove deletes node i, renumbering indices. The caller must have
// re-homed i's children first.
func (t *Tree) remove(i int) {
	last := len(t.Nodes) - 1
	// Move the last node into slot i.
	if i != last {
		t.Nodes[i] = t.Nodes[last]
		t.Parent[i] = t.Parent[last]
		for j := range t.Parent {
			if t.Parent[j] == last {
				t.Parent[j] = i
			}
		}
		if t.Root == last {
			t.Root = i
		}
	}
	t.Nodes = t.Nodes[:last]
	t.Parent = t.Parent[:last]
}

// Steinerize reduces wirelength in place by inserting Steiner points:
// for a node v with children a and b, the componentwise median s of
// (v, a, b) lies inside the pairwise bounding boxes, so replacing edges
// (v,a),(v,b) by (v,s),(s,a),(s,b) saves exactly dist(v,s) wirelength
// while leaving every source-sink path length unchanged. The pass greedily
// applies the best saving until none remains, then compacts.
func (t *Tree) Steinerize() {
	e := GetEvaluator()
	t.SteinerizeWith(e)
	PutEvaluator(e)
}

// SteinerizeWith is Steinerize evaluating through e's scratch adjacency.
func (t *Tree) SteinerizeWith(e *Evaluator) {
	for {
		e.Load(t)
		bestGain := int64(0)
		bestV, bestA, bestB := -1, -1, -1
		var bestS geom.Point
		for v := range t.Nodes {
			kids := e.Children(v)
			for i := 0; i < len(kids); i++ {
				for j := i + 1; j < len(kids); j++ {
					a, b := int(kids[i]), int(kids[j])
					s := medianOf3(t.Nodes[v].P, t.Nodes[a].P, t.Nodes[b].P)
					gain := geom.Dist(t.Nodes[v].P, s)
					if gain > bestGain {
						bestGain, bestV, bestA, bestB, bestS = gain, v, a, b, s
					}
				}
			}
		}
		if bestGain == 0 {
			break
		}
		s := t.Add(bestS, -1, bestV)
		t.Parent[bestA] = s
		t.Parent[bestB] = s
	}
	t.CompactWith(e)
}

func medianOf3(a, b, c geom.Point) geom.Point {
	return geom.Point{X: med3(a.X, b.X, c.X), Y: med3(a.Y, b.Y, c.Y)}
}

func med3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// RelocateSteiners moves each Steiner node to the componentwise median of
// its parent and children when that strictly reduces wirelength. Unlike
// Steinerize this may lengthen individual source-sink paths, so callers
// should treat the result as a candidate and Pareto-filter it against the
// original. It reports whether any node moved.
func (t *Tree) RelocateSteiners() bool {
	e := GetEvaluator()
	moved := t.RelocateSteinersWith(e)
	PutEvaluator(e)
	return moved
}

// RelocateSteinersWith is RelocateSteiners evaluating through e's
// scratch adjacency. Relocation only moves coordinates, never edges, so
// the adjacency is loaded once for all passes.
func (t *Tree) RelocateSteinersWith(e *Evaluator) bool {
	moved := false
	e.Load(t)
	for pass := 0; pass < len(t.Nodes); pass++ {
		changed := false
		for i, nd := range t.Nodes {
			if !nd.IsSteiner() || i == t.Root {
				continue
			}
			e.nbr = append(e.nbr[:0], t.Nodes[t.Parent[i]].P)
			for _, c := range e.Children(i) {
				e.nbr = append(e.nbr, t.Nodes[c].P)
			}
			m := e.medianPoint(e.nbr)
			if m == nd.P {
				continue
			}
			before := localWL(nd.P, e.nbr)
			after := localWL(m, e.nbr)
			if after < before {
				t.Nodes[i].P = m
				changed = true
				moved = true
			}
		}
		if !changed {
			break
		}
	}
	return moved
}

func localWL(p geom.Point, nbr []geom.Point) int64 {
	var s int64
	for _, q := range nbr {
		s = geom.AddCheck(s, geom.Dist(p, q))
	}
	return s
}
