// Package tree defines the rooted rectilinear Steiner routing tree type
// shared by every construction algorithm in the library, together with the
// exact evaluation of the two optimisation objectives (wirelength and
// source-to-sink delay), structural validation, and delay-preserving
// Steinerisation and cleanup passes.
package tree

import (
	"fmt"

	"patlabor/internal/geom"
	"patlabor/internal/pareto"
)

// Net is a routing instance: Pins[0] is the source r, the remaining pins
// are sinks.
type Net struct {
	Pins []geom.Point
}

// NewNet builds a net from a source and sinks.
func NewNet(source geom.Point, sinks ...geom.Point) Net {
	pins := make([]geom.Point, 0, 1+len(sinks))
	pins = append(pins, source)
	pins = append(pins, sinks...)
	return Net{Pins: pins}
}

// Source returns the source pin r = Pins[0].
func (n Net) Source() geom.Point { return n.Pins[0] }

// Degree returns the number of pins.
func (n Net) Degree() int { return len(n.Pins) }

// Sinks returns the sink pins (all but the source).
func (n Net) Sinks() []geom.Point { return n.Pins[1:] }

// BBox returns the bounding box of all pins.
func (n Net) BBox() geom.Rect { return geom.BoundingBox(n.Pins) }

// Node is one vertex of a routing tree. Pin is the index of the pin it
// realises (0 for the source), or -1 for a Steiner point.
type Node struct {
	P   geom.Point
	Pin int
}

// IsSteiner reports whether the node is a Steiner point rather than a pin.
func (nd Node) IsSteiner() bool { return nd.Pin < 0 }

// Tree is a routing tree rooted at the source. Parent[i] is the node index
// of i's parent, -1 for the root. Each edge (i, Parent[i]) is realised
// rectilinearly with length equal to the L1 distance of its endpoints.
type Tree struct {
	Nodes  []Node
	Parent []int
	Root   int
}

// New returns a tree containing only the root node at p realising pin.
func New(p geom.Point, pin int) *Tree {
	return &Tree{
		Nodes:  []Node{{P: p, Pin: pin}},
		Parent: []int{-1},
		Root:   0,
	}
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	return &Tree{
		Nodes:  append([]Node(nil), t.Nodes...),
		Parent: append([]int(nil), t.Parent...),
		Root:   t.Root,
	}
}

// Add appends a node at p realising pin (or -1 for Steiner) as a child of
// parent, returning its index.
func (t *Tree) Add(p geom.Point, pin, parent int) int {
	t.Nodes = append(t.Nodes, Node{P: p, Pin: pin})
	t.Parent = append(t.Parent, parent)
	return len(t.Nodes) - 1
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// Children returns, for each node, the indices of its children.
func (t *Tree) Children() [][]int {
	ch := make([][]int, len(t.Nodes))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// Wirelength returns the total rectilinear edge length of the tree.
func (t *Tree) Wirelength() int64 {
	var w int64
	for i, p := range t.Parent {
		if p >= 0 {
			w = geom.AddCheck(w, geom.Dist(t.Nodes[i].P, t.Nodes[p].P))
		}
	}
	return w
}

// PathLengths returns, for each node, the rectilinear path length from the
// root along tree edges.
func (t *Tree) PathLengths() []int64 {
	d := make([]int64, len(t.Nodes))
	order := t.TopoOrder()
	for _, i := range order {
		if p := t.Parent[i]; p >= 0 {
			d[i] = d[p] + geom.Dist(t.Nodes[i].P, t.Nodes[p].P)
		}
	}
	return d
}

// MaxDelay returns the maximum path length from the root to any sink node
// (nodes with Pin >= 1). A tree with no sinks has delay 0.
func (t *Tree) MaxDelay() int64 {
	d := t.PathLengths()
	var m int64
	for i, nd := range t.Nodes {
		if nd.Pin >= 1 && d[i] > m {
			m = d[i]
		}
	}
	return m
}

// Sol returns the objective vector (wirelength, delay) of the tree.
func (t *Tree) Sol() pareto.Sol {
	return pareto.Sol{W: t.Wirelength(), D: t.MaxDelay()}
}

// SinkDelays returns path lengths keyed by pin index, for pins present in
// the tree (including the source at delay of its tree position).
//
// Deprecated: the map allocation makes this unsuitable for hot paths; use
// Evaluator.SinkDelaysInto, which returns a reusable pin-indexed slice
// with the same max-over-duplicates semantics (absent pins read 0).
func (t *Tree) SinkDelays() map[int]int64 {
	d := t.PathLengths()
	out := make(map[int]int64)
	for i, nd := range t.Nodes {
		if nd.Pin >= 0 {
			if cur, ok := out[nd.Pin]; !ok || d[i] > cur {
				out[nd.Pin] = d[i]
			}
		}
	}
	return out
}

// TopoOrder returns node indices reachable from the root in root-first
// order (every node appears after its parent). Nodes not reachable from
// the root — only possible in invalid trees — are omitted; Validate
// rejects such trees.
func (t *Tree) TopoOrder() []int {
	ch := t.Children()
	order := make([]int, 0, len(t.Nodes))
	queue := []int{t.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		queue = append(queue, ch[v]...)
	}
	return order
}

// Validate checks the tree realises net: the root is at the net's source,
// every pin appears at its exact position with the right index, the parent
// structure is a connected acyclic rooted tree, and no node is orphaned.
func (t *Tree) Validate(net Net) error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("tree: empty")
	}
	if len(t.Parent) != n {
		return fmt.Errorf("tree: %d nodes but %d parent entries", n, len(t.Parent))
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("tree: root index %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("tree: root has parent %d", t.Parent[t.Root])
	}
	if t.Nodes[t.Root].Pin != 0 {
		return fmt.Errorf("tree: root realises pin %d, want 0 (source)", t.Nodes[t.Root].Pin)
	}
	if t.Nodes[t.Root].P != net.Source() {
		return fmt.Errorf("tree: root at %v, source at %v", t.Nodes[t.Root].P, net.Source())
	}
	seen := make([]bool, net.Degree())
	for i, nd := range t.Nodes {
		if i != t.Root && (t.Parent[i] < 0 || t.Parent[i] >= n) {
			return fmt.Errorf("tree: node %d has invalid parent %d", i, t.Parent[i])
		}
		if i != t.Root && t.Parent[i] == i {
			return fmt.Errorf("tree: node %d is its own parent", i)
		}
		if nd.Pin >= net.Degree() {
			return fmt.Errorf("tree: node %d realises pin %d, net has %d pins", i, nd.Pin, net.Degree())
		}
		if nd.Pin >= 0 {
			if nd.P != net.Pins[nd.Pin] {
				return fmt.Errorf("tree: node %d claims pin %d at %v, pin is at %v",
					i, nd.Pin, nd.P, net.Pins[nd.Pin])
			}
			seen[nd.Pin] = true
		}
	}
	for pin, ok := range seen {
		if !ok {
			return fmt.Errorf("tree: pin %d not present", pin)
		}
	}
	// Acyclicity + connectivity: every node must reach the root.
	for i := 0; i < n; i++ {
		v, steps := i, 0
		for v != t.Root {
			v = t.Parent[v]
			steps++
			if v < 0 || steps > n {
				return fmt.Errorf("tree: node %d does not reach the root", i)
			}
		}
	}
	return nil
}

// Star returns the trivial tree connecting every sink directly to the
// source. It is a valid routing tree with minimum possible delay and
// (generally) large wirelength.
func Star(net Net) *Tree {
	t := New(net.Source(), 0)
	for i := 1; i < net.Degree(); i++ {
		t.Add(net.Pins[i], i, t.Root)
	}
	return t
}
