#!/usr/bin/env bash
# Runs the lookup-table query benchmark suite and records the performance
# trajectory in BENCH_PR2.json: the frozen pre-PR-2 baseline (the
# materialize-every-topology Query) next to the numbers measured on the
# current tree. CI hosts vary, so compare the measured block against a
# baseline re-measured on the same machine when absolute numbers matter;
# the allocs/op column is machine independent.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_PR2.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkLUTQuery' -benchmem . | tee "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bytes[name] = $5; allocs[name] = $7
    order[n++] = name
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"benchmark\": \"go test -bench BenchmarkLUTQuery -benchmem\",\n"
    printf "  \"baseline_pre_pr2\": {\n"
    printf "    \"note\": \"materialize-every-topology Query, measured at the PR 2 branch point (Intel Xeon @ 2.10GHz)\",\n"
    printf "    \"BenchmarkLUTQuery/degree=2\": {\"ns_op\": 2155, \"b_op\": 856, \"allocs_op\": 61},\n"
    printf "    \"BenchmarkLUTQuery/degree=3\": {\"ns_op\": 2689, \"b_op\": 1344, \"allocs_op\": 69},\n"
    printf "    \"BenchmarkLUTQuery/degree=4\": {\"ns_op\": 4479, \"b_op\": 2960, \"allocs_op\": 103},\n"
    printf "    \"BenchmarkLUTQuery/degree=5\": {\"ns_op\": 11864, \"b_op\": 8294, \"allocs_op\": 230},\n"
    printf "    \"BenchmarkLUTQueryDegree5\": {\"ns_op\": 10566, \"b_op\": 4496, \"allocs_op\": 137}\n"
    printf "  },\n"
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      name = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
        name, ns[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }' "$TMP" > "$OUT"

echo "wrote $OUT"
