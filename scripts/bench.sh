#!/usr/bin/env bash
# Runs one of the repo's benchmark suites and records the performance
# trajectory in a BENCH_PR<N>.json file: the frozen pre-PR baseline next
# to the numbers measured on the current tree. CI hosts vary, so compare
# the measured block against a baseline re-measured on the same machine
# when absolute numbers matter; the allocs/op column is machine
# independent.
#
# Usage: scripts/bench.sh [pr2|pr4|pr5|pr6|pr7|pr8] [output.json]
#
#   pr2 (default)  BenchmarkLUTQuery — the symbolic-first lookup-table
#                  query fast path (baseline: materialize-every-topology
#                  Query).
#   pr4            BenchmarkLocalSearch — the large-net local search
#                  (baseline: per-call allocation of adjacency and delay
#                  structures, no sub-frontier memo).
#   pr5            BenchmarkParetoFilter — Pareto frontier extraction
#                  (baseline: reflection-based sort.Slice/sort.SliceStable
#                  before the slices.SortFunc conversion patlint enforces).
#   pr6            BenchmarkReroute — incremental re-routing (ECO mode) on
#                  churn streams (baseline: the mode=full rows, i.e. a
#                  from-scratch core.Route of every post-edit net; the eco
#                  speedup is full/eco within one measured block, so it is
#                  machine independent).
#   pr7            BenchmarkHugeNet — hierarchical clustered routing of
#                  degree 64-4096 mega-nets (baseline: the flat local
#                  search at the crossover degrees 64/256, frozen at the
#                  PR 7 merge point; degrees 1024/4096 have no flat rows —
#                  the flat search takes minutes there, which is the point).
#   pr8            BenchmarkColdStart + BenchmarkLUTQueryFlat — the flat
#                  zero-copy table format (baseline: gob decode cold start
#                  and the in-memory builder query path). The JSON also
#                  carries a frozen lut_scale_out block: degree-6/7 table
#                  sizes, sharded generation time, big-table cold start,
#                  and the LUT-hit-rate lift from degree-7 coverage.
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE="${1:-pr2}"
BASEFILE="$(mktemp)"
EXTRAFILE="$(mktemp)"
TMP="$(mktemp)"
trap 'rm -f "$TMP" "$BASEFILE" "$EXTRAFILE"' EXIT
: > "$EXTRAFILE"

case "$SUITE" in
  pr2)
    PATTERN='BenchmarkLUTQuery'
    OUT="${2:-BENCH_PR2.json}"
    BASELINE_KEY="baseline_pre_pr2"
    cat > "$BASEFILE" <<'EOF'
    "note": "materialize-every-topology Query, measured at the PR 2 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLUTQuery/degree=2": {"ns_op": 2155, "b_op": 856, "allocs_op": 61},
    "BenchmarkLUTQuery/degree=3": {"ns_op": 2689, "b_op": 1344, "allocs_op": 69},
    "BenchmarkLUTQuery/degree=4": {"ns_op": 4479, "b_op": 2960, "allocs_op": 103},
    "BenchmarkLUTQuery/degree=5": {"ns_op": 11864, "b_op": 8294, "allocs_op": 230},
    "BenchmarkLUTQueryDegree5": {"ns_op": 10566, "b_op": 4496, "allocs_op": 137}
EOF
    ;;
  pr4)
    PATTERN='BenchmarkLocalSearch'
    OUT="${2:-BENCH_PR4.json}"
    BASELINE_KEY="baseline_pre_pr4"
    cat > "$BASEFILE" <<'EOF'
    "note": "per-call Children()/SinkDelays() allocation, no sub-frontier memo, measured at the PR 4 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLocalSearch/degree=16": {"ns_op": 46047651, "b_op": 9888755, "allocs_op": 89755},
    "BenchmarkLocalSearch/degree=32": {"ns_op": 174141133, "b_op": 52759127, "allocs_op": 312043},
    "BenchmarkLocalSearch/degree=64": {"ns_op": 265924169, "b_op": 59694168, "allocs_op": 683395}
EOF
    ;;
  pr5)
    PATTERN='BenchmarkParetoFilter'
    PKG=./internal/pareto
    OUT="${2:-BENCH_PR5.json}"
    BASELINE_KEY="baseline_pre_pr5"
    cat > "$BASEFILE" <<'EOF'
    "note": "sort.Slice/sort.SliceStable reflection swapper, measured at the PR 5 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkParetoFilter/n=16": {"ns_op": 779, "b_op": 376, "allocs_op": 5},
    "BenchmarkParetoFilter/n=256": {"ns_op": 24183, "b_op": 4312, "allocs_op": 5},
    "BenchmarkParetoFilter/n=4096": {"ns_op": 730500, "b_op": 65704, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=16": {"ns_op": 1302, "b_op": 528, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=256": {"ns_op": 74881, "b_op": 6432, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=4096": {"ns_op": 2827310, "b_op": 98528, "allocs_op": 5}
EOF
    ;;
  pr6)
    PATTERN='BenchmarkReroute'
    OUT="${2:-BENCH_PR6.json}"
    BASELINE_KEY="baseline_full_reroute"
    cat > "$BASEFILE" <<'BASE'
    "note": "from-scratch routing of every post-edit net, frozen from the mode=full rows at the PR 6 merge point (Intel Xeon @ 2.10GHz); compare eco vs full within one measured block for the speedup",
    "BenchmarkReroute/degree=16/frac=5/mode=full": {"ns_op": 21032742},
    "BenchmarkReroute/degree=16/frac=10/mode=full": {"ns_op": 25181678},
    "BenchmarkReroute/degree=32/frac=5/mode=full": {"ns_op": 97088346},
    "BenchmarkReroute/degree=32/frac=10/mode=full": {"ns_op": 147340865},
    "BenchmarkReroute/degree=64/frac=5/mode=full": {"ns_op": 97989838},
    "BenchmarkReroute/degree=64/frac=10/mode=full": {"ns_op": 127055768}
BASE
    ;;
  pr7)
    PATTERN='BenchmarkHugeNet'
    OUT="${2:-BENCH_PR7.json}"
    BASELINE_KEY="baseline_flat_search"
    cat > "$BASEFILE" <<'EOF'
    "note": "flat local search (core.Route, default options) on the same mega-clustered nets, frozen from the mode=flat rows at the PR 7 merge point (Intel Xeon @ 2.10GHz); no flat rows exist past degree 256 because the flat search stops being interactive there",
    "BenchmarkHugeNet/degree=64/mode=flat": {"ns_op": 150487625, "b_op": 28074912, "allocs_op": 109278},
    "BenchmarkHugeNet/degree=256/mode=flat": {"ns_op": 284449704, "b_op": 41845886, "allocs_op": 154542}
EOF
    ;;
  pr8)
    PATTERN='BenchmarkColdStart|BenchmarkLUTQueryFlat'
    OUT="${2:-BENCH_PR8.json}"
    BASELINE_KEY="baseline_gob"
    cat > "$BASEFILE" <<'EOF'
    "note": "gob decode cold start (LoadFile + first query + Close on the degrees 2-5 table) and the in-memory builder query path, measured at the PR 8 merge point (Intel Xeon @ 2.10GHz); the format=gob ColdStart rows below re-measure the same path on the current tree",
    "BenchmarkColdStart/format=gob": {"ns_op": 1077298, "b_op": 515523, "allocs_op": 11905},
    "BenchmarkLUTQuery/degree=2": {"ns_op": 1466, "b_op": 584, "allocs_op": 27},
    "BenchmarkLUTQuery/degree=3": {"ns_op": 1972, "b_op": 946, "allocs_op": 33},
    "BenchmarkLUTQuery/degree=4": {"ns_op": 3041, "b_op": 1458, "allocs_op": 39},
    "BenchmarkLUTQuery/degree=5": {"ns_op": 4032, "b_op": 1904, "allocs_op": 47}
EOF
    cat > "$EXTRAFILE" <<'EOF'
  "lut_scale_out": {
    "note": "frozen at the PR 8 merge point (Intel Xeon @ 2.10GHz, 1 core): lutgen -degrees 2-6 direct, degree 7 via -shard i/8 + -merge; cold start read from the CLI's 'LUT load' stats line on the merged degrees 2-7 table; hit rate from routing a 1600-net ICCAD-mix suite (cmd/netgen -designs 2 -nets 800) with -stats",
    "table_2_6_direct": {"degree6_indices": 579, "degree6_avg_topologies": 10.60, "degree6_gen_seconds": 3.7, "flat_bytes": 1128168},
    "degree7_sharded": {"shards": 8, "indices": 4549, "avg_topologies": 32.31, "gen_seconds_total": 282.1, "merged_2_7_flat_bytes": 34796936, "degree7_bytes_per_pattern": 7401},
    "coldstart_degrees_2_7": {"gob_ms": 1010.6, "flat_mmap_ms": 0.093, "speedup": 10867},
    "hit_rate_lift_1600_nets": {"table_2_6_pct": 45.4, "table_2_7_pct": 50.2, "lift_points": 4.8}
  },
EOF
    ;;
  *)
    echo "unknown suite: $SUITE (want pr2, pr4, pr5, pr6, pr7 or pr8)" >&2
    exit 2
    ;;
esac

# BENCHTIME (e.g. BENCHTIME=30x) pins the iteration count; the heavy
# reroute cells need it for stable ratios.
go test -run '^$' -bench "$PATTERN" -benchmem ${BENCHTIME:+-benchtime "$BENCHTIME"} "${PKG:-.}" | tee "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v pattern="$PATTERN${BENCHTIME:+ -benchtime $BENCHTIME}" \
    -v basekey="$BASELINE_KEY" -v basefile="$BASEFILE" -v extrafile="$EXTRAFILE" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bytes[name] = $5; allocs[name] = $7
    order[n++] = name
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"benchmark\": \"go test -bench %s -benchmem\",\n", pattern
    printf "  \"%s\": {\n", basekey
    while ((getline line < basefile) > 0) print line
    printf "  },\n"
    while ((getline line < extrafile) > 0) print line
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      name = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
        name, ns[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }' "$TMP" > "$OUT"

echo "wrote $OUT"
