#!/usr/bin/env bash
# Runs one of the repo's benchmark suites and records the performance
# trajectory in a BENCH_PR<N>.json file: the frozen pre-PR baseline next
# to the numbers measured on the current tree. CI hosts vary, so compare
# the measured block against a baseline re-measured on the same machine
# when absolute numbers matter; the allocs/op column is machine
# independent.
#
# Usage: scripts/bench.sh [pr2|pr4|pr5|pr6|pr7|pr8|pr9] [output.json]
#
#   pr2 (default)  BenchmarkLUTQuery — the symbolic-first lookup-table
#                  query fast path (baseline: materialize-every-topology
#                  Query).
#   pr4            BenchmarkLocalSearch — the large-net local search
#                  (baseline: per-call allocation of adjacency and delay
#                  structures, no sub-frontier memo).
#   pr5            BenchmarkParetoFilter — Pareto frontier extraction
#                  (baseline: reflection-based sort.Slice/sort.SliceStable
#                  before the slices.SortFunc conversion patlint enforces).
#   pr6            BenchmarkReroute — incremental re-routing (ECO mode) on
#                  churn streams (baseline: the mode=full rows, i.e. a
#                  from-scratch core.Route of every post-edit net; the eco
#                  speedup is full/eco within one measured block, so it is
#                  machine independent).
#   pr7            BenchmarkHugeNet — hierarchical clustered routing of
#                  degree 64-4096 mega-nets (baseline: the flat local
#                  search at the crossover degrees 64/256, frozen at the
#                  PR 7 merge point; degrees 1024/4096 have no flat rows —
#                  the flat search takes minutes there, which is the point).
#   pr8            BenchmarkColdStart + BenchmarkLUTQueryFlat — the flat
#                  zero-copy table format (baseline: gob decode cold start
#                  and the in-memory builder query path). The JSON also
#                  carries a frozen lut_scale_out block: degree-6/7 table
#                  sizes, sharded generation time, big-table cold start,
#                  and the LUT-hit-rate lift from degree-7 coverage.
#   pr9            BenchmarkRouteAll + BenchmarkScaling + BenchmarkEach —
#                  the contention-free hot path (baseline: single-mutex
#                  SubCache, RWMutex LUT reads, index-at-a-time pool
#                  dispatch, frozen at the PR 9 branch point). The JSON
#                  also carries a frozen lock_contention block: the
#                  GOMAXPROCS=8 block-profile shares of the pool's channel
#                  dispatch before and after chunking.
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE="${1:-pr2}"
BASEFILE="$(mktemp)"
EXTRAFILE="$(mktemp)"
TMP="$(mktemp)"
trap 'rm -f "$TMP" "$BASEFILE" "$EXTRAFILE"' EXIT
: > "$EXTRAFILE"

case "$SUITE" in
  pr2)
    PATTERN='BenchmarkLUTQuery'
    OUT="${2:-BENCH_PR2.json}"
    BASELINE_KEY="baseline_pre_pr2"
    cat > "$BASEFILE" <<'EOF'
    "note": "materialize-every-topology Query, measured at the PR 2 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLUTQuery/degree=2": {"ns_op": 2155, "b_op": 856, "allocs_op": 61},
    "BenchmarkLUTQuery/degree=3": {"ns_op": 2689, "b_op": 1344, "allocs_op": 69},
    "BenchmarkLUTQuery/degree=4": {"ns_op": 4479, "b_op": 2960, "allocs_op": 103},
    "BenchmarkLUTQuery/degree=5": {"ns_op": 11864, "b_op": 8294, "allocs_op": 230},
    "BenchmarkLUTQueryDegree5": {"ns_op": 10566, "b_op": 4496, "allocs_op": 137}
EOF
    ;;
  pr4)
    PATTERN='BenchmarkLocalSearch'
    OUT="${2:-BENCH_PR4.json}"
    BASELINE_KEY="baseline_pre_pr4"
    cat > "$BASEFILE" <<'EOF'
    "note": "per-call Children()/SinkDelays() allocation, no sub-frontier memo, measured at the PR 4 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLocalSearch/degree=16": {"ns_op": 46047651, "b_op": 9888755, "allocs_op": 89755},
    "BenchmarkLocalSearch/degree=32": {"ns_op": 174141133, "b_op": 52759127, "allocs_op": 312043},
    "BenchmarkLocalSearch/degree=64": {"ns_op": 265924169, "b_op": 59694168, "allocs_op": 683395}
EOF
    ;;
  pr5)
    PATTERN='BenchmarkParetoFilter'
    PKG=./internal/pareto
    OUT="${2:-BENCH_PR5.json}"
    BASELINE_KEY="baseline_pre_pr5"
    cat > "$BASEFILE" <<'EOF'
    "note": "sort.Slice/sort.SliceStable reflection swapper, measured at the PR 5 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkParetoFilter/n=16": {"ns_op": 779, "b_op": 376, "allocs_op": 5},
    "BenchmarkParetoFilter/n=256": {"ns_op": 24183, "b_op": 4312, "allocs_op": 5},
    "BenchmarkParetoFilter/n=4096": {"ns_op": 730500, "b_op": 65704, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=16": {"ns_op": 1302, "b_op": 528, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=256": {"ns_op": 74881, "b_op": 6432, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=4096": {"ns_op": 2827310, "b_op": 98528, "allocs_op": 5}
EOF
    ;;
  pr6)
    PATTERN='BenchmarkReroute'
    OUT="${2:-BENCH_PR6.json}"
    BASELINE_KEY="baseline_full_reroute"
    cat > "$BASEFILE" <<'BASE'
    "note": "from-scratch routing of every post-edit net, frozen from the mode=full rows at the PR 6 merge point (Intel Xeon @ 2.10GHz); compare eco vs full within one measured block for the speedup",
    "BenchmarkReroute/degree=16/frac=5/mode=full": {"ns_op": 21032742},
    "BenchmarkReroute/degree=16/frac=10/mode=full": {"ns_op": 25181678},
    "BenchmarkReroute/degree=32/frac=5/mode=full": {"ns_op": 97088346},
    "BenchmarkReroute/degree=32/frac=10/mode=full": {"ns_op": 147340865},
    "BenchmarkReroute/degree=64/frac=5/mode=full": {"ns_op": 97989838},
    "BenchmarkReroute/degree=64/frac=10/mode=full": {"ns_op": 127055768}
BASE
    ;;
  pr7)
    PATTERN='BenchmarkHugeNet'
    OUT="${2:-BENCH_PR7.json}"
    BASELINE_KEY="baseline_flat_search"
    cat > "$BASEFILE" <<'EOF'
    "note": "flat local search (core.Route, default options) on the same mega-clustered nets, frozen from the mode=flat rows at the PR 7 merge point (Intel Xeon @ 2.10GHz); no flat rows exist past degree 256 because the flat search stops being interactive there",
    "BenchmarkHugeNet/degree=64/mode=flat": {"ns_op": 150487625, "b_op": 28074912, "allocs_op": 109278},
    "BenchmarkHugeNet/degree=256/mode=flat": {"ns_op": 284449704, "b_op": 41845886, "allocs_op": 154542}
EOF
    ;;
  pr8)
    PATTERN='BenchmarkColdStart|BenchmarkLUTQueryFlat'
    OUT="${2:-BENCH_PR8.json}"
    BASELINE_KEY="baseline_gob"
    cat > "$BASEFILE" <<'EOF'
    "note": "gob decode cold start (LoadFile + first query + Close on the degrees 2-5 table) and the in-memory builder query path, measured at the PR 8 merge point (Intel Xeon @ 2.10GHz); the format=gob ColdStart rows below re-measure the same path on the current tree",
    "BenchmarkColdStart/format=gob": {"ns_op": 1077298, "b_op": 515523, "allocs_op": 11905},
    "BenchmarkLUTQuery/degree=2": {"ns_op": 1466, "b_op": 584, "allocs_op": 27},
    "BenchmarkLUTQuery/degree=3": {"ns_op": 1972, "b_op": 946, "allocs_op": 33},
    "BenchmarkLUTQuery/degree=4": {"ns_op": 3041, "b_op": 1458, "allocs_op": 39},
    "BenchmarkLUTQuery/degree=5": {"ns_op": 4032, "b_op": 1904, "allocs_op": 47}
EOF
    cat > "$EXTRAFILE" <<'EOF'
  "lut_scale_out": {
    "note": "frozen at the PR 8 merge point (Intel Xeon @ 2.10GHz, 1 core): lutgen -degrees 2-6 direct, degree 7 via -shard i/8 + -merge; cold start read from the CLI's 'LUT load' stats line on the merged degrees 2-7 table; hit rate from routing a 1600-net ICCAD-mix suite (cmd/netgen -designs 2 -nets 800) with -stats",
    "table_2_6_direct": {"degree6_indices": 579, "degree6_avg_topologies": 10.60, "degree6_gen_seconds": 3.7, "flat_bytes": 1128168},
    "degree7_sharded": {"shards": 8, "indices": 4549, "avg_topologies": 32.31, "gen_seconds_total": 282.1, "merged_2_7_flat_bytes": 34796936, "degree7_bytes_per_pattern": 7401},
    "coldstart_degrees_2_7": {"gob_ms": 1010.6, "flat_mmap_ms": 0.093, "speedup": 10867},
    "hit_rate_lift_1600_nets": {"table_2_6_pct": 45.4, "table_2_7_pct": 50.2, "lift_points": 4.8}
  },
EOF
    ;;
  pr9)
    PATTERN='BenchmarkRouteAll|BenchmarkScaling|BenchmarkEach'
    PKGS=". ./internal/pool"
    OUT="${2:-BENCH_PR9.json}"
    BASELINE_KEY="baseline_pre_pr9"
    cat > "$BASEFILE" <<'EOF'
    "note": "single-mutex SubCache, RWMutex LUT reads, index-at-a-time pool dispatch, measured at the PR 9 branch point (Intel Xeon @ 2.10GHz, 1 core — workers>1 rows measure coordination overhead, not speedup; the two workers=1 RouteAll rows are the same configuration and their spread is the host's noise band). BenchmarkScaling did not exist pre-PR; compare its workers=1 rows against BenchmarkRouteAll/workers=1",
    "BenchmarkRouteAll/workers=1": {"ns_op": 743035452, "b_op": 191402460, "allocs_op": 745065},
    "BenchmarkRouteAll/workers=4": {"ns_op": 869686824, "b_op": 191395960, "allocs_op": 744941},
    "BenchmarkRouteAll/workers=1#01": {"ns_op": 813587378, "b_op": 191402184, "allocs_op": 745059},
    "BenchmarkEach/work=tiny/workers=1": {"ns_op": 12409, "b_op": 32, "allocs_op": 1},
    "BenchmarkEach/work=tiny/workers=4": {"ns_op": 307348, "b_op": 19136, "allocs_op": 14},
    "BenchmarkEach/work=tiny/workers=8": {"ns_op": 328010, "b_op": 19552, "allocs_op": 22},
    "BenchmarkEach/work=spin/workers=1": {"ns_op": 675597, "b_op": 32, "allocs_op": 1},
    "BenchmarkEach/work=spin/workers=4": {"ns_op": 949416, "b_op": 19136, "allocs_op": 14},
    "BenchmarkEach/work=spin/workers=8": {"ns_op": 968476, "b_op": 19552, "allocs_op": 22}
EOF
    cat > "$EXTRAFILE" <<'EOF'
  "lock_contention": {
    "note": "contention profiles at GOMAXPROCS=8 on the 1-core CI host (absolute delay totals include preemption noise; the load-bearing signals are the profile shape and ns/op)",
    "pool_dispatch_block_profile": {
      "benchmark": "BenchmarkEach/work=tiny/workers=8, 2000 fixed ops, -blockprofile",
      "before_ns_op": 492280, "after_ns_op": 80772,
      "before_block_delay_s": 3.04, "after_block_delay_s": 0.56,
      "top_site": "runtime.chanrecv1 (the pool's jobs channel); chunked dispatch cut its absolute delay 5.4x on identical work"
    },
    "subcache_mutex_profile": {
      "benchmark": "BenchmarkSubCacheParallel, 2M fixed ops, -mutexprofile",
      "before_ns_op": 39.18, "after_ns_op": 32.16,
      "before_top_site": "core.(*SubCache).lookup — 90.6% of mutex delay through the one cache-global lock",
      "after_top_site": "core.(*subShard).lookup — the cache-global lock no longer exists; delay spread over 32 shard locks"
    }
  },
EOF
    ;;
  *)
    echo "unknown suite: $SUITE (want pr2, pr4, pr5, pr6, pr7, pr8 or pr9)" >&2
    exit 2
    ;;
esac

# BENCHTIME (e.g. BENCHTIME=30x) pins the iteration count; the heavy
# reroute cells need it for stable ratios. PKGS lets a suite span several
# packages (pr9 benches the root module and internal/pool together).
# shellcheck disable=SC2086
go test -run '^$' -bench "$PATTERN" -benchmem ${BENCHTIME:+-benchtime "$BENCHTIME"} ${PKGS:-"${PKG:-.}"} | tee "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v pattern="$PATTERN${BENCHTIME:+ -benchtime $BENCHTIME}" \
    -v basekey="$BASELINE_KEY" -v basefile="$BASEFILE" -v extrafile="$EXTRAFILE" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    # Key on unit labels, not column positions: custom metrics such as
    # BenchmarkScaling'\''s nets/op insert extra columns before B/op.
    for (f = 2; f < NF; f++) {
      if ($(f + 1) == "ns/op") ns[name] = $f
      else if ($(f + 1) == "B/op") bytes[name] = $f
      else if ($(f + 1) == "allocs/op") allocs[name] = $f
    }
    order[n++] = name
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"benchmark\": \"go test -bench %s -benchmem\",\n", pattern
    printf "  \"%s\": {\n", basekey
    while ((getline line < basefile) > 0) print line
    printf "  },\n"
    while ((getline line < extrafile) > 0) print line
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      name = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
        name, ns[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }' "$TMP" > "$OUT"

echo "wrote $OUT"
