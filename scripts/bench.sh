#!/usr/bin/env bash
# Runs one of the repo's benchmark suites and records the performance
# trajectory in a BENCH_PR<N>.json file: the frozen pre-PR baseline next
# to the numbers measured on the current tree. CI hosts vary, so compare
# the measured block against a baseline re-measured on the same machine
# when absolute numbers matter; the allocs/op column is machine
# independent.
#
# Usage: scripts/bench.sh [pr2|pr4|pr5|pr6|pr7] [output.json]
#
#   pr2 (default)  BenchmarkLUTQuery — the symbolic-first lookup-table
#                  query fast path (baseline: materialize-every-topology
#                  Query).
#   pr4            BenchmarkLocalSearch — the large-net local search
#                  (baseline: per-call allocation of adjacency and delay
#                  structures, no sub-frontier memo).
#   pr5            BenchmarkParetoFilter — Pareto frontier extraction
#                  (baseline: reflection-based sort.Slice/sort.SliceStable
#                  before the slices.SortFunc conversion patlint enforces).
#   pr6            BenchmarkReroute — incremental re-routing (ECO mode) on
#                  churn streams (baseline: the mode=full rows, i.e. a
#                  from-scratch core.Route of every post-edit net; the eco
#                  speedup is full/eco within one measured block, so it is
#                  machine independent).
#   pr7            BenchmarkHugeNet — hierarchical clustered routing of
#                  degree 64-4096 mega-nets (baseline: the flat local
#                  search at the crossover degrees 64/256, frozen at the
#                  PR 7 merge point; degrees 1024/4096 have no flat rows —
#                  the flat search takes minutes there, which is the point).
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE="${1:-pr2}"
BASEFILE="$(mktemp)"
TMP="$(mktemp)"
trap 'rm -f "$TMP" "$BASEFILE"' EXIT

case "$SUITE" in
  pr2)
    PATTERN='BenchmarkLUTQuery'
    OUT="${2:-BENCH_PR2.json}"
    BASELINE_KEY="baseline_pre_pr2"
    cat > "$BASEFILE" <<'EOF'
    "note": "materialize-every-topology Query, measured at the PR 2 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLUTQuery/degree=2": {"ns_op": 2155, "b_op": 856, "allocs_op": 61},
    "BenchmarkLUTQuery/degree=3": {"ns_op": 2689, "b_op": 1344, "allocs_op": 69},
    "BenchmarkLUTQuery/degree=4": {"ns_op": 4479, "b_op": 2960, "allocs_op": 103},
    "BenchmarkLUTQuery/degree=5": {"ns_op": 11864, "b_op": 8294, "allocs_op": 230},
    "BenchmarkLUTQueryDegree5": {"ns_op": 10566, "b_op": 4496, "allocs_op": 137}
EOF
    ;;
  pr4)
    PATTERN='BenchmarkLocalSearch'
    OUT="${2:-BENCH_PR4.json}"
    BASELINE_KEY="baseline_pre_pr4"
    cat > "$BASEFILE" <<'EOF'
    "note": "per-call Children()/SinkDelays() allocation, no sub-frontier memo, measured at the PR 4 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkLocalSearch/degree=16": {"ns_op": 46047651, "b_op": 9888755, "allocs_op": 89755},
    "BenchmarkLocalSearch/degree=32": {"ns_op": 174141133, "b_op": 52759127, "allocs_op": 312043},
    "BenchmarkLocalSearch/degree=64": {"ns_op": 265924169, "b_op": 59694168, "allocs_op": 683395}
EOF
    ;;
  pr5)
    PATTERN='BenchmarkParetoFilter'
    PKG=./internal/pareto
    OUT="${2:-BENCH_PR5.json}"
    BASELINE_KEY="baseline_pre_pr5"
    cat > "$BASEFILE" <<'EOF'
    "note": "sort.Slice/sort.SliceStable reflection swapper, measured at the PR 5 branch point (Intel Xeon @ 2.10GHz)",
    "BenchmarkParetoFilter/n=16": {"ns_op": 779, "b_op": 376, "allocs_op": 5},
    "BenchmarkParetoFilter/n=256": {"ns_op": 24183, "b_op": 4312, "allocs_op": 5},
    "BenchmarkParetoFilter/n=4096": {"ns_op": 730500, "b_op": 65704, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=16": {"ns_op": 1302, "b_op": 528, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=256": {"ns_op": 74881, "b_op": 6432, "allocs_op": 5},
    "BenchmarkParetoFilterItems/n=4096": {"ns_op": 2827310, "b_op": 98528, "allocs_op": 5}
EOF
    ;;
  pr6)
    PATTERN='BenchmarkReroute'
    OUT="${2:-BENCH_PR6.json}"
    BASELINE_KEY="baseline_full_reroute"
    cat > "$BASEFILE" <<'BASE'
    "note": "from-scratch routing of every post-edit net, frozen from the mode=full rows at the PR 6 merge point (Intel Xeon @ 2.10GHz); compare eco vs full within one measured block for the speedup",
    "BenchmarkReroute/degree=16/frac=5/mode=full": {"ns_op": 21032742},
    "BenchmarkReroute/degree=16/frac=10/mode=full": {"ns_op": 25181678},
    "BenchmarkReroute/degree=32/frac=5/mode=full": {"ns_op": 97088346},
    "BenchmarkReroute/degree=32/frac=10/mode=full": {"ns_op": 147340865},
    "BenchmarkReroute/degree=64/frac=5/mode=full": {"ns_op": 97989838},
    "BenchmarkReroute/degree=64/frac=10/mode=full": {"ns_op": 127055768}
BASE
    ;;
  pr7)
    PATTERN='BenchmarkHugeNet'
    OUT="${2:-BENCH_PR7.json}"
    BASELINE_KEY="baseline_flat_search"
    cat > "$BASEFILE" <<'EOF'
    "note": "flat local search (core.Route, default options) on the same mega-clustered nets, frozen from the mode=flat rows at the PR 7 merge point (Intel Xeon @ 2.10GHz); no flat rows exist past degree 256 because the flat search stops being interactive there",
    "BenchmarkHugeNet/degree=64/mode=flat": {"ns_op": 150487625, "b_op": 28074912, "allocs_op": 109278},
    "BenchmarkHugeNet/degree=256/mode=flat": {"ns_op": 284449704, "b_op": 41845886, "allocs_op": 154542}
EOF
    ;;
  *)
    echo "unknown suite: $SUITE (want pr2, pr4, pr5, pr6 or pr7)" >&2
    exit 2
    ;;
esac

# BENCHTIME (e.g. BENCHTIME=30x) pins the iteration count; the heavy
# reroute cells need it for stable ratios.
go test -run '^$' -bench "$PATTERN" -benchmem ${BENCHTIME:+-benchtime "$BENCHTIME"} "${PKG:-.}" | tee "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v pattern="$PATTERN${BENCHTIME:+ -benchtime $BENCHTIME}" \
    -v basekey="$BASELINE_KEY" -v basefile="$BASEFILE" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; bytes[name] = $5; allocs[name] = $7
    order[n++] = name
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"benchmark\": \"go test -bench %s -benchmem\",\n", pattern
    printf "  \"%s\": {\n", basekey
    while ((getline line < basefile) > 0) print line
    printf "  },\n"
    printf "  \"measured\": {\n"
    for (i = 0; i < n; i++) {
      name = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
        name, ns[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }' "$TMP" > "$OUT"

echo "wrote $OUT"
