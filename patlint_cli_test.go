package patlabor

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// patlintBin builds the patlint CLI once per test run. `go run` would
// mangle the exit status (it reports "exit status N" on stderr and exits
// 1), and the tests assert on patlint's real codes: 1 on findings, 2 on
// usage/load errors.
var patlintBin = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "patlint-cli")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "patlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/patlint")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &exec.Error{Name: string(out), Err: err}
	}
	return bin, nil
})

// runPatlint runs the patlint CLI, returning stdout, stderr and the exit
// code. Unlike runCLI it tolerates nonzero exits.
func runPatlint(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	bin, err := patlintBin()
	if err != nil {
		t.Fatalf("building patlint: %v", err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Dir = "."
	var outBuf, errBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err = cmd.Run()
	if err != nil {
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("patlint %v: %v\n%s", args, err, errBuf.String())
		}
		code = exitErr.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

const badCorpus = "internal/patlint/testdata/exactoverflow"

func TestPatlintCLIFindingsAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test (builds binaries)")
	}
	// Plain run over a corpus with known findings: exit 1, stable text format.
	stdout, stderr, code := runPatlint(t, badCorpus)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "patlint(exactoverflow):") {
		t.Errorf("text output missing rule tag:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr)
	}

	// -json: same findings as a machine-readable array with the documented shape.
	stdout, _, code = runPatlint(t, "-json", badCorpus)
	if code != 1 {
		t.Fatalf("-json exit = %d, want 1", code)
	}
	var diags []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for a corpus with findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Rule != "exactoverflow" || d.Msg == "" {
			t.Errorf("malformed JSON diagnostic: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("JSON file path is absolute, want repo-relative: %s", d.File)
		}
	}

	// -json on a clean package: an empty array (not null), exit 0.
	stdout, _, code = runPatlint(t, "-json", "internal/geom")
	if code != 0 {
		t.Fatalf("clean -json exit = %d, want 0\n%s", code, stdout)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", strings.TrimSpace(stdout))
	}
}

func TestPatlintCLIBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test (builds binaries)")
	}
	base := filepath.Join(t.TempDir(), "baseline.json")

	// -write-baseline requires -baseline.
	_, stderr, code := runPatlint(t, "-write-baseline", badCorpus)
	if code != 2 || !strings.Contains(stderr, "-write-baseline requires -baseline") {
		t.Fatalf("bare -write-baseline: exit=%d stderr=%s", code, stderr)
	}

	// Record the corpus findings, then verify the baseline forgives them.
	_, stderr, code = runPatlint(t, "-baseline", base, "-write-baseline", badCorpus)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d: %s", code, stderr)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runPatlint(t, "-baseline", base, badCorpus)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}

	// The same baseline against a clean package: every entry is stale and
	// reported on stderr, but stale entries alone do not fail the run.
	stdout, stderr, code = runPatlint(t, "-baseline", base, "internal/geom")
	if code != 0 {
		t.Fatalf("stale-baseline run exit = %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("stderr missing stale-entry report: %s", stderr)
	}
}

func TestPatlintCLIRuleSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test (builds binaries)")
	}
	// Restricting to an unrelated rule silences the corpus findings.
	stdout, _, code := runPatlint(t, "-rules", "sortslice", badCorpus)
	if code != 0 {
		t.Fatalf("-rules sortslice exit = %d, want 0\n%s", code, stdout)
	}
	// An unknown rule is a usage error listing the catalog.
	_, stderr, code := runPatlint(t, "-rules", "nosuchrule", badCorpus)
	if code != 2 || !strings.Contains(stderr, "exactoverflow") {
		t.Fatalf("unknown rule: exit=%d stderr=%s", code, stderr)
	}
}
