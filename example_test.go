package patlabor_test

import (
	"fmt"

	"patlabor"
)

// The basic workflow: route a net, walk its Pareto frontier.
func ExampleRoute() {
	net := patlabor.NewNet(
		patlabor.Pt(180, 70), // source
		patlabor.Pt(50, 0), patlabor.Pt(50, 140),
		patlabor.Pt(100, 100), patlabor.Pt(140, 160), patlabor.Pt(20, 60),
	)
	cands, err := patlabor.Route(net, patlabor.Options{})
	if err != nil {
		panic(err)
	}
	for _, c := range cands {
		fmt.Printf("w=%d d=%d\n", c.Sol.W, c.Sol.D)
	}
	// Output:
	// w=390 d=260
	// w=410 d=210
	// w=420 d=200
}

// Comparing the frontier endpoints against the single-objective optima.
func ExampleExactFrontier() {
	net := patlabor.NewNet(patlabor.Pt(0, 0),
		patlabor.Pt(10, 1), patlabor.Pt(10, -1), patlabor.Pt(20, 0))
	cands, err := patlabor.ExactFrontier(net)
	if err != nil {
		panic(err)
	}
	first, last := cands[0], cands[len(cands)-1]
	fmt.Printf("min wirelength: w=%d d=%d\n", first.Sol.W, first.Sol.D)
	fmt.Printf("min delay:      w=%d d=%d\n", last.Sol.W, last.Sol.D)
	// Output:
	// min wirelength: w=22 d=20
	// min delay:      w=22 d=20
}

// Re-ranking Pareto candidates under the Elmore RC delay model.
func ExampleElmoreRank() {
	net := patlabor.NewNet(
		patlabor.Pt(180, 70),
		patlabor.Pt(50, 0), patlabor.Pt(50, 140),
		patlabor.Pt(100, 100), patlabor.Pt(20, 60),
	)
	cands, err := patlabor.Route(net, patlabor.Options{})
	if err != nil {
		panic(err)
	}
	kept := patlabor.ElmoreRank(cands, patlabor.TypicalElmoreParams())
	fmt.Printf("%d of %d candidates stay Pareto-optimal under Elmore delay\n",
		len(kept), len(cands))
	// Output:
	// 1 of 1 candidates stay Pareto-optimal under Elmore delay
}
