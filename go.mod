module patlabor

go 1.22
