// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), one testing.B benchmark per artefact, plus micro-benchmarks of
// the core engines. cmd/experiments runs the same experiments at full
// scale; these benches use the quick configuration so `go test -bench=.`
// finishes in minutes. EXPERIMENTS.md records paper-vs-measured values.
package patlabor

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/eco"
	"patlabor/internal/exp"
	"patlabor/internal/hier"
	"patlabor/internal/lut"
	"patlabor/internal/netgen"
	"patlabor/internal/salt"
	"patlabor/internal/tree"
	"patlabor/internal/ysd"
)

func benchDesigns(b *testing.B) (exp.Config, []netgen.Design) {
	b.Helper()
	cfg := exp.QuickConfig()
	designs := netgen.Suite(cfg.Suite)
	return cfg, designs
}

// BenchmarkFig6FrontierSize regenerates Figure 6: maximum Pareto frontier
// size per degree with a linear fit (paper: y = 2.85x − 10.9).
func BenchmarkFig6FrontierSize(b *testing.B) {
	cfg, designs := benchDesigns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSmall(context.Background(), cfg, designs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fit.Slope, "fit-slope")
	}
}

// BenchmarkTable2LUTGeneration regenerates Table II rows: lookup-table
// construction (degree 5 here; cmd/experiments covers 4-7 with a degree-8
// sample).
func BenchmarkTable2LUTGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := lut.New()
		if err := t.Generate(5, 0); err != nil {
			b.Fatal(err)
		}
		st := t.Stats()
		b.ReportMetric(float64(st[0].NumIndex), "indices")
		b.ReportMetric(st[0].AvgTopo(), "avg-topo")
	}
}

// BenchmarkTable3NonOptimalRatio regenerates Table III: the ratio of nets
// on which each method misses at least one Pareto-optimal solution.
func BenchmarkTable3NonOptimalRatio(b *testing.B) {
	cfg, designs := benchDesigns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSmall(context.Background(), cfg, designs)
		if err != nil {
			b.Fatal(err)
		}
		nets, non := 0, 0
		for _, a := range res.Agg {
			nets += a.Nets
			non += a.NonOptimal["YSD"]
		}
		if nets > 0 {
			b.ReportMetric(100*float64(non)/float64(nets), "ysd-nonopt-%")
		}
	}
}

// BenchmarkTable4SolutionCounts regenerates Table IV: the fraction of all
// Pareto-optimal solutions each method finds.
func BenchmarkTable4SolutionCounts(b *testing.B) {
	cfg, designs := benchDesigns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSmall(context.Background(), cfg, designs)
		if err != nil {
			b.Fatal(err)
		}
		total, salt := 0, 0
		for _, a := range res.Agg {
			total += a.FrontierSols
			salt += a.Found["SALT"]
		}
		if total > 0 {
			b.ReportMetric(float64(salt)/float64(total), "salt-fraction")
		}
	}
}

// BenchmarkFig7aSmallNets regenerates Figure 7(a): averaged Pareto curves
// and running time on non-optimal small-degree nets.
func BenchmarkFig7aSmallNets(b *testing.B) {
	cfg, designs := benchDesigns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunSmall(context.Background(), cfg, designs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NonOpt), "nonopt-nets")
	}
}

// BenchmarkFig7bLargeNets regenerates Figure 7(b): curves and runtime on
// the suite's large-degree nets.
func BenchmarkFig7bLargeNets(b *testing.B) {
	cfg, designs := benchDesigns(b)
	nets := exp.LargeSuiteNets(cfg, designs)
	if len(nets) == 0 {
		b.Skip("no large nets in quick sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunLarge(context.Background(), cfg, "fig7b", nets, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Hypervolume["PatLabor"], "patlabor-hv")
	}
}

// BenchmarkFig7cDegree100 regenerates Figure 7(c): 100 (quick: 3) random
// degree-100 nets.
func BenchmarkFig7cDegree100(b *testing.B) {
	cfg := exp.QuickConfig()
	nets := exp.Degree100Nets(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunLarge(context.Background(), cfg, "fig7c", nets, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Hypervolume["PatLabor"], "patlabor-hv")
	}
}

// BenchmarkTheorem1Gadget regenerates the Theorem 1 / Figure 4
// verification: exponential frontier growth on the S-gadget family.
func BenchmarkTheorem1Gadget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunThm1(context.Background(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Frontier[len(res.Frontier)-1]), "frontier-m2")
	}
}

// BenchmarkSmoothedFrontier regenerates the Theorem 2 verification:
// frontier sizes of κ-smoothed instances.
func BenchmarkSmoothedFrontier(b *testing.B) {
	cfg := exp.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunThm2(context.Background(), cfg, 6, []float64{1, 4}, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSize[len(res.MeanSize)-1], "mean-size-k4")
	}
}

// BenchmarkAblationAll regenerates the ablation study: pruning lemmas,
// LUT-vs-DP, and local-search variants.
func BenchmarkAblationAll(b *testing.B) {
	cfg := exp.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAblation(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteAll measures the batch-routing engine on a fixed mixed
// batch (small exact-frontier nets plus large local-search nets) at
// several worker-pool sizes. The workers=1 sub-benchmark is the serial
// baseline; the speedup of workers=N over workers=1 is recorded in
// EXPERIMENTS.md.
func BenchmarkRouteAll(b *testing.B) {
	rng := rand.New(rand.NewSource(2024))
	nets := make([]Net, 48)
	for i := range nets {
		deg := 4 + rng.Intn(6) // 4..9: exact small-net path
		if i%4 == 0 {
			deg = 14 + rng.Intn(12) // local-search path
		}
		nets[i] = netgen.Clustered(rng, deg, 100000, 4000)
	}
	// Warm the shared lookup table so no sub-benchmark pays the one-time
	// generation cost.
	if _, err := RouteAll(nets[:1], Options{}, 1); err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RouteAll(nets, Options{}, w); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(nets)), "nets/op")
		})
	}
}

// BenchmarkScaling is the scalability harness: one fixed mixed batch
// swept over worker-pool widths × cache modes, the grid scripts/bench.sh
// pr9 freezes into BENCH_PR9.json. cache=on shares one sub-frontier memo
// and the batch dedup across workers (the contended configuration the
// sharded SubCache exists for); cache=off routes every net from scratch
// (the embarrassingly parallel upper bound — any scaling gap between the
// two modes is cache-coordination cost, not algorithm). Frontiers are
// byte-identical across every cell of the grid, so cells differ only in
// wall clock. On a single-core host the workers>1 rows measure pure
// coordination overhead over workers=1 — the speedup-vs-workers table
// needs a multi-core host (`go test -bench Scaling` there; see the
// EXPERIMENTS.md lock-contention entry).
func BenchmarkScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(2026))
	nets := make([]Net, 48)
	for i := range nets {
		deg := 4 + rng.Intn(6) // 4..9: exact small-net path
		if i%4 == 0 {
			deg = 14 + rng.Intn(12) // local-search path
		}
		nets[i] = netgen.Clustered(rng, deg, 100000, 4000)
	}
	// Warm the shared lookup table so no cell pays the one-time build.
	if _, err := RouteAll(nets[:1], Options{}, 1); err != nil {
		b.Fatal(err)
	}
	widths := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, cache := range []struct {
		label   string
		noCache bool
	}{{"on", false}, {"off", true}} {
		for _, w := range widths {
			b.Run(fmt.Sprintf("cache=%s/workers=%d", cache.label, w), func(b *testing.B) {
				opts := Options{NoCache: cache.noCache}
				for i := 0; i < b.N; i++ {
					if _, err := RouteAll(nets, opts, w); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(nets)), "nets/op")
			})
		}
	}
}

// BenchmarkHugeNet measures the hierarchical router (internal/hier) on
// mega-clustered nets of degree 64–4096 — the clock/reset-spine regime the
// flat local search cannot reach interactively. Crossover 32 forces even
// the degree-64 cells through the clustered two-level path so the
// mode=flat rows at degrees 64 and 256 give a hier-vs-flat pair on both
// sides of the default crossover; past 256 the flat search is omitted
// (minutes per op). workers=max fans the per-cluster subproblems over
// GOMAXPROCS workers; results are byte-identical at any worker count (the
// differential test in internal/hier enforces it), so the workers rows
// differ only in wall clock. scripts/bench.sh pr7 records this suite in
// BENCH_PR7.json against the frozen flat baseline.
func BenchmarkHugeNet(b *testing.B) {
	for _, deg := range []int{64, 256, 1024, 4096} {
		rng := rand.New(rand.NewSource(int64(3000 + deg)))
		net := netgen.MegaClustered(rng, deg, 1000000, deg/80+2, 30000)
		// Warm the shared lookup table outside the timed region.
		if _, err := hier.Route(net, hier.Options{Crossover: 32}); err != nil {
			b.Fatal(err)
		}
		for _, w := range []struct {
			label string
			n     int
		}{{"1", 1}, {"max", runtime.GOMAXPROCS(0)}} {
			b.Run(fmt.Sprintf("degree=%d/mode=hier/workers=%s", deg, w.label), func(b *testing.B) {
				opts := hier.Options{Crossover: 32, Workers: w.n}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					items, err := hier.Route(net, opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(items) == 0 {
						b.Fatal("empty frontier")
					}
				}
			})
		}
		if deg <= 256 {
			b.Run(fmt.Sprintf("degree=%d/mode=flat", deg), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Route(net, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- micro-benchmarks of the individual engines ----

func benchNet(n int, seed int64) tree.Net {
	rng := rand.New(rand.NewSource(seed))
	return netgen.Clustered(rng, n, 100000, 4000)
}

func BenchmarkExactFrontierDegree5(b *testing.B) { benchExact(b, 5) }
func BenchmarkExactFrontierDegree7(b *testing.B) { benchExact(b, 7) }
func BenchmarkExactFrontierDegree9(b *testing.B) { benchExact(b, 9) }

func benchExact(b *testing.B, n int) {
	net := benchNet(n, int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dw.FrontierSols(net, dw.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactFrontierNoPruning quantifies the speedup of Lemmas 2-4.
func BenchmarkExactFrontierNoPruning(b *testing.B) {
	net := benchNet(7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dw.FrontierSols(net, dw.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUTQueryDegree5(b *testing.B) {
	table := lut.Default()
	net := benchNet(5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := table.Query(net); err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkLUTQuery measures the per-net lookup-table query cost and
// allocation count per covered degree, cycling through a pool of random
// nets so one pattern's frontier shape does not dominate. This is the
// per-net latency floor of the batch engine's small-net path; scripts/
// bench.sh records it in BENCH_PR2.json and EXPERIMENTS.md tracks the
// trajectory.
func BenchmarkLUTQuery(b *testing.B) {
	table := lut.Default()
	for d := 2; d <= 5; d++ {
		b.Run(fmt.Sprintf("degree=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(100 + d)))
			nets := make([]tree.Net, 16)
			for i := range nets {
				nets[i] = netgen.Clustered(rng, d, 100000, 4000)
				if _, ok, err := table.Query(nets[i]); err != nil || !ok {
					b.Fatalf("net %d: ok=%v err=%v", i, ok, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := table.Query(nets[i%len(nets)]); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkLocalSearch measures the policy-guided local search of §V on
// clustered large-degree nets — the path that dominates batch routing time
// on real netlists. It cycles through a small pool of nets per degree so no
// single net's frontier shape dominates; each Route carries its own
// sub-frontier memo (windows recur across iterations within one search),
// which is the cold-batch case — cross-net reuse only makes the engine
// faster still. scripts/bench.sh pr4 records it in BENCH_PR4.json.
func BenchmarkLocalSearch(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("degree=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(200 + n)))
			nets := make([]tree.Net, 4)
			for i := range nets {
				nets[i] = netgen.Clustered(rng, n, 100000, 4000)
			}
			// Warm the shared lookup table outside the timed region.
			if _, err := core.Route(nets[0], core.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Route(nets[i%len(nets)], core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPatLaborLargeNet(b *testing.B) {
	net := benchNet(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Route(net, core.Options{Lambda: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSALTSweepLargeNet(b *testing.B) {
	net := benchNet(30, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		salt.Sweep(net, nil)
	}
}

func BenchmarkYSDSweepLargeNet(b *testing.B) {
	net := benchNet(30, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ysd.Sweep(net, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSMTLargeNet(b *testing.B) {
	net := benchNet(30, 33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RSMT(net)
	}
}

func BenchmarkRSMALargeNet(b *testing.B) {
	net := benchNet(30, 34)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RSMA(net)
	}
}

// BenchmarkExtensionGRoute regenerates the beyond-the-paper experiment:
// global-routing topology selection from Pareto candidate sets.
func BenchmarkExtensionGRoute(b *testing.B) {
	cfg := exp.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunGRoute(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkElmoreEvaluation measures Elmore delay evaluation of a routing
// tree (the per-candidate cost of Elmore re-ranking).
func BenchmarkElmoreEvaluation(b *testing.B) {
	net := benchNet(30, 35)
	t := RSMT(net)
	p := TypicalElmoreParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ElmoreDelay(t, p) <= 0 {
			b.Fatal("bad delay")
		}
	}
}

// BenchmarkReroute measures ECO mode against from-scratch routing on a
// churning net: per step, fraction×degree pins receive edits (minimum
// one) and the post-edit frontier is recomputed. mode=full routes every
// post-edit net from scratch with core.Route (no shared caches — the
// honest baseline); mode=eco replays the identical deterministic stream
// through a Session handle. RevertPercent 70 models the low-acceptance
// try/rollback loop of a timing ECO — most tried edits are measured and
// undone, walking back down the undo stack to a geometry routed before,
// the case the net-level memo answers without routing. BENCH_PR6.json
// records both sides (scripts/bench.sh pr6).
func BenchmarkReroute(b *testing.B) {
	for _, deg := range []int{8, 16, 32, 64} {
		for _, frac := range []int{1, 5, 10, 25} {
			editsPerStep := deg * frac / 100
			if editsPerStep < 1 {
				editsPerStep = 1
			}
			stream := func(n int) (tree.Net, [][]eco.Edit) {
				rng := rand.New(rand.NewSource(int64(1000*deg + frac)))
				net := netgen.Clustered(rng, deg, 100000, 4000)
				return net, netgen.EditStream(rng, net, netgen.EditStreamOptions{
					Steps:             n,
					EditsPerStep:      editsPerStep,
					RevertPercent:     70,
					StructuralPercent: 10,
					Span:              100000,
				})
			}
			name := fmt.Sprintf("degree=%d/frac=%d", deg, frac)
			b.Run(name+"/mode=full", func(b *testing.B) {
				net, steps := stream(b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					next, _, err := eco.Apply(net, steps[i])
					if err != nil {
						b.Fatal(err)
					}
					net = next
					if _, err := core.Route(net, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/mode=eco", func(b *testing.B) {
				net, steps := stream(b.N)
				s, err := eco.NewSession(core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				h, err := s.Track(context.Background(), net)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := h.Reroute(context.Background(), steps[i]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchTableFiles builds one degrees-2..5 table and saves it in both
// on-disk formats, returning the two paths. The build is cached across
// sub-benchmarks via sync.Once-style package state to keep -bench runs
// from regenerating the table per case.
func benchTableFiles(b *testing.B) (gobPath, flatPath string) {
	b.Helper()
	benchTableOnce.Do(func() {
		tab := lut.New()
		for d := 2; d <= 5; d++ {
			if benchTableErr = tab.Generate(d, 0); benchTableErr != nil {
				return
			}
		}
		dir, err := os.MkdirTemp("", "patlabor-bench")
		if err != nil {
			benchTableErr = err
			return
		}
		benchTableGob = filepath.Join(dir, "t.gob")
		benchTableFlat = filepath.Join(dir, "t.plut")
		if benchTableErr = tab.SaveFile(benchTableGob); benchTableErr != nil {
			return
		}
		benchTableErr = tab.SaveFlatFile(benchTableFlat)
	})
	if benchTableErr != nil {
		b.Fatal(benchTableErr)
	}
	return benchTableGob, benchTableFlat
}

var (
	benchTableOnce sync.Once
	benchTableErr  error
	benchTableGob  string
	benchTableFlat string
)

// BenchmarkColdStart measures time from LoadFile to the first answered
// query — the interactive-startup cost a router pays before routing its
// first net. The gob path decodes every entry eagerly; the flat path
// mmaps the file and validates only the index, so cold start is O(index)
// instead of O(table). scripts/bench.sh pr8 records the gap in
// BENCH_PR8.json.
func BenchmarkColdStart(b *testing.B) {
	gobPath, flatPath := benchTableFiles(b)
	net := benchNet(5, 5)
	for _, c := range []struct{ name, path string }{
		{"format=gob", gobPath},
		{"format=flat", flatPath},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tab := lut.New()
				if err := tab.LoadFile(c.path); err != nil {
					b.Fatal(err)
				}
				if _, ok, err := tab.Query(net); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
				if err := tab.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLUTQueryFlat is BenchmarkLUTQuery on the mmapped flat backend:
// the symbolic query evaluates dot products directly against the mapped
// coefficient arrays, so steady-state cost must stay on par with the
// in-memory builder entries that BENCH_PR2.json tracks.
func BenchmarkLUTQueryFlat(b *testing.B) {
	_, flatPath := benchTableFiles(b)
	table := lut.New()
	if err := table.LoadFile(flatPath); err != nil {
		b.Fatal(err)
	}
	defer table.Close()
	for d := 2; d <= 5; d++ {
		b.Run(fmt.Sprintf("degree=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(100 + d)))
			nets := make([]tree.Net, 16)
			for i := range nets {
				nets[i] = netgen.Clustered(rng, d, 100000, 4000)
				if _, ok, err := table.Query(nets[i]); err != nil || !ok {
					b.Fatalf("net %d: ok=%v err=%v", i, ok, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := table.Query(nets[i%len(nets)]); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
