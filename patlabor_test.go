package patlabor

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func TestRouteSmallPublicAPI(t *testing.T) {
	net := NewNet(Pt(0, 0), Pt(40, 10), Pt(35, -20), Pt(-15, 25))
	cands, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	exact, err := ExactFrontier(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(exact) {
		t.Fatalf("Route %d candidates, exact %d", len(cands), len(exact))
	}
	for i := range cands {
		if cands[i].Sol != exact[i].Sol {
			t.Fatalf("candidate %d = %v, exact %v", i, cands[i].Sol, exact[i].Sol)
		}
		if err := cands[i].Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteLargePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pins := make([]Point, 18)
	for i := range pins {
		pins[i] = Pt(rng.Int63n(1000), rng.Int63n(1000))
	}
	net := Net{Pins: pins}
	cands, err := Route(net, Options{Lambda: 7, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if err := c.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	net := NewNet(Pt(0, 0), Pt(100, 30), Pt(90, -40), Pt(-60, 70), Pt(20, 110))
	if tr := RSMT(net); tr.Validate(net) != nil {
		t.Fatal("RSMT invalid")
	}
	if tr := RSMA(net); tr.Validate(net) != nil {
		t.Fatal("RSMA invalid")
	}
	if items := SALTSweep(net, nil); len(items) == 0 {
		t.Fatal("SALT sweep empty")
	}
	if items, err := YSDSweep(net, nil); err != nil || len(items) == 0 {
		t.Fatalf("YSD sweep: %v, %d items", err, len(items))
	}
	if items := PDSweep(net, nil); len(items) == 0 {
		t.Fatal("PD sweep empty")
	}
	if items, err := KSFrontier(net); err != nil || len(items) == 0 {
		t.Fatalf("KS frontier: %v, %d items", err, len(items))
	}
}

func TestNetFileRoundTripPublicAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nets.txt")
	nets := []NamedNet{{Name: "demo", Net: NewNet(Pt(0, 0), Pt(5, 5), Pt(-3, 8))}}
	if err := WriteNets(path, nets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "demo" || back[0].Net.Degree() != 3 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestRouteWithTablePath(t *testing.T) {
	// A missing table file must error cleanly.
	net := NewNet(Pt(0, 0), Pt(1, 1))
	if _, err := Route(net, Options{TablePath: filepath.Join(t.TempDir(), "nope.gob")}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestRouteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nets := make([]Net, 9)
	for i := range nets {
		pins := make([]Point, 4+rng.Intn(4))
		for j := range pins {
			pins[j] = Pt(rng.Int63n(500), rng.Int63n(500))
		}
		nets[i] = Net{Pins: pins}
	}
	batch, err := RouteAll(nets, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(nets) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, cands := range batch {
		want, err := Route(nets[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != len(want) {
			t.Fatalf("net %d: concurrent result differs", i)
		}
		for k := range want {
			if cands[k].Sol != want[k].Sol {
				t.Fatalf("net %d: concurrent result differs at %d", i, k)
			}
		}
	}
	// Errors propagate.
	bad := []Net{{}}
	if _, err := RouteAll(bad, Options{}, 2); err == nil {
		t.Fatal("empty net accepted")
	}
}

func TestElmorePublicAPI(t *testing.T) {
	net := NewNet(Pt(180, 70), Pt(50, 0), Pt(50, 140), Pt(100, 100), Pt(20, 60))
	cands, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := TypicalElmoreParams()
	kept := ElmoreRank(cands, p)
	if len(kept) == 0 {
		t.Fatal("Elmore rank kept nothing")
	}
	for _, idx := range kept {
		if d := ElmoreDelay(cands[idx].Val, p); d <= 0 {
			t.Fatalf("Elmore delay = %v", d)
		}
	}
}
