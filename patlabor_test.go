package patlabor

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"patlabor/internal/lut"
)

func TestRouteSmallPublicAPI(t *testing.T) {
	net := NewNet(Pt(0, 0), Pt(40, 10), Pt(35, -20), Pt(-15, 25))
	cands, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	exact, err := ExactFrontier(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(exact) {
		t.Fatalf("Route %d candidates, exact %d", len(cands), len(exact))
	}
	for i := range cands {
		if cands[i].Sol != exact[i].Sol {
			t.Fatalf("candidate %d = %v, exact %v", i, cands[i].Sol, exact[i].Sol)
		}
		if err := cands[i].Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouteLargePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pins := make([]Point, 18)
	for i := range pins {
		pins[i] = Pt(rng.Int63n(1000), rng.Int63n(1000))
	}
	net := Net{Pins: pins}
	cands, err := Route(net, Options{Lambda: 7, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if err := c.Val.Validate(net); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	net := NewNet(Pt(0, 0), Pt(100, 30), Pt(90, -40), Pt(-60, 70), Pt(20, 110))
	if tr := RSMT(net); tr.Validate(net) != nil {
		t.Fatal("RSMT invalid")
	}
	if tr := RSMA(net); tr.Validate(net) != nil {
		t.Fatal("RSMA invalid")
	}
	if items := SALTSweep(net, nil); len(items) == 0 {
		t.Fatal("SALT sweep empty")
	}
	if items, err := YSDSweep(net, nil); err != nil || len(items) == 0 {
		t.Fatalf("YSD sweep: %v, %d items", err, len(items))
	}
	if items := PDSweep(net, nil); len(items) == 0 {
		t.Fatal("PD sweep empty")
	}
	if items, err := KSFrontier(net); err != nil || len(items) == 0 {
		t.Fatalf("KS frontier: %v, %d items", err, len(items))
	}
}

func TestNetFileRoundTripPublicAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nets.txt")
	nets := []NamedNet{{Name: "demo", Net: NewNet(Pt(0, 0), Pt(5, 5), Pt(-3, 8))}}
	if err := WriteNets(path, nets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Name != "demo" || back[0].Net.Degree() != 3 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestRouteWithTablePath(t *testing.T) {
	// A missing table file must error cleanly.
	net := NewNet(Pt(0, 0), Pt(1, 1))
	if _, err := Route(net, Options{TablePath: filepath.Join(t.TempDir(), "nope.gob")}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestRouteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nets := make([]Net, 9)
	for i := range nets {
		pins := make([]Point, 4+rng.Intn(4))
		for j := range pins {
			pins[j] = Pt(rng.Int63n(500), rng.Int63n(500))
		}
		nets[i] = Net{Pins: pins}
	}
	batch, err := RouteAll(nets, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(nets) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, cands := range batch {
		want, err := Route(nets[i], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != len(want) {
			t.Fatalf("net %d: concurrent result differs", i)
		}
		for k := range want {
			if cands[k].Sol != want[k].Sol {
				t.Fatalf("net %d: concurrent result differs at %d", i, k)
			}
		}
	}
	// Errors propagate.
	bad := []Net{{}}
	if _, err := RouteAll(bad, Options{}, 2); err == nil {
		t.Fatal("empty net accepted")
	}
}

func TestElmorePublicAPI(t *testing.T) {
	net := NewNet(Pt(180, 70), Pt(50, 0), Pt(50, 140), Pt(100, 100), Pt(20, 60))
	cands, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := TypicalElmoreParams()
	kept := ElmoreRank(cands, p)
	if len(kept) == 0 {
		t.Fatal("Elmore rank kept nothing")
	}
	for _, idx := range kept {
		if d := ElmoreDelay(cands[idx].Val, p); d <= 0 {
			t.Fatalf("Elmore delay = %v", d)
		}
	}
}

func TestMethodsAndRouteWith(t *testing.T) {
	names := Methods()
	for _, want := range []string{"patlabor", "salt", "ysd", "pd-ii", "pareto-ks", "pareto-dw", "rsmt", "rsma"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Methods() = %v, missing %q", names, want)
		}
	}
	net := NewNet(Pt(0, 0), Pt(40, 10), Pt(35, -20), Pt(-15, 25))
	ctx := context.Background()

	got, err := RouteWith(ctx, "patlabor", net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RouteWith(patlabor) %d candidates, Route %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Sol != want[i].Sol {
			t.Fatalf("RouteWith(patlabor) differs at %d", i)
		}
	}

	saltGot, err := RouteWith(ctx, "SALT", net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saltWant := SALTSweep(net, nil)
	if len(saltGot) != len(saltWant) {
		t.Fatalf("RouteWith(SALT) %d candidates, SALTSweep %d", len(saltGot), len(saltWant))
	}
	for i := range saltWant {
		if saltGot[i].Sol != saltWant[i].Sol {
			t.Fatalf("RouteWith(SALT) differs at %d", i)
		}
	}

	if _, err := RouteWith(ctx, "no-such-method", net, Options{}); err == nil {
		t.Fatal("unknown method accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := RouteWith(cancelled, "ysd", net, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RouteWith: err = %v", err)
	}
}

// TestTablePathLoadedOnce is the regression test for the per-call table
// reload: the file must be read on the first Route and never again —
// deleting it between calls must not matter, and the second Route must
// return the same frontier.
func TestTablePathLoadedOnce(t *testing.T) {
	table := lut.New()
	if err := table.Generate(4, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "deg4.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	net := NewNet(Pt(0, 0), Pt(17, 4), Pt(3, 21), Pt(11, 9))
	first, err := Route(net, Options{TablePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// The file is gone; only the memoized table can answer now.
	second, err := Route(net, Options{TablePath: path})
	if err != nil {
		t.Fatalf("second Route re-read the deleted table file: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("frontiers differ across memoized calls: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Sol != second[i].Sol {
			t.Fatalf("memoized frontier differs at %d", i)
		}
	}
	// The engine path must share the same cache — the file is deleted, so
	// constructing an engine on the path only works via the memo.
	if _, err := NewEngine(Options{TablePath: path}, 2); err != nil {
		t.Fatalf("NewEngine re-read the deleted table file: %v", err)
	}
}

func TestRouteAllContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nets := []Net{NewNet(Pt(0, 0), Pt(9, 9), Pt(4, 1))}
	if _, err := RouteAllContext(ctx, nets, Options{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReroutePublicAPI(t *testing.T) {
	ctx := context.Background()
	r, err := NewRerouter(Options{})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNet(Pt(0, 0), Pt(40, 10), Pt(35, -20), Pt(-15, 25))
	h, err := r.Track(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	edits := []Edit{
		MovePin(3, Pt(120, -40)),
		AddSink(Pt(-30, -30)),
		PerturbCoords(1, Pt(5, 5)),
	}
	cands, err := Reroute(ctx, h, edits)
	if err != nil {
		t.Fatal(err)
	}
	post, err := ApplyEdits(net, edits)
	if err != nil {
		t.Fatal(err)
	}
	if hn := h.Net(); len(hn.Pins) != len(post.Pins) {
		t.Fatalf("handle degree %d, ApplyEdits degree %d", len(hn.Pins), len(post.Pins))
	}
	want, err := Route(post, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(want) {
		t.Fatalf("incremental %d candidates, from-scratch %d", len(cands), len(want))
	}
	for i := range cands {
		if cands[i].Sol != want[i].Sol {
			t.Fatalf("candidate %d: %v != %v", i, cands[i].Sol, want[i].Sol)
		}
		if err := cands[i].Val.Validate(post); err != nil {
			t.Fatal(err)
		}
	}
	// Removing the just-added sink restores the original geometry, and the
	// session's memo answers it without routing again.
	st0 := r.Stats()
	back, err := Reroute(ctx, h, []Edit{
		RemoveSink(4),
		MovePin(3, Pt(-15, 25)),
		PerturbCoords(1, Pt(-5, -5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.EcoHits != st0.EcoHits+1 {
		t.Fatalf("revert was not a memo hit: %+v -> %+v", st0, st)
	}
	orig, err := Route(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i].Sol != orig[i].Sol {
			t.Fatalf("revert candidate %d: %v != %v", i, back[i].Sol, orig[i].Sol)
		}
	}
	if _, err := ApplyEdits(net, []Edit{RemoveSink(0)}); err == nil {
		t.Fatal("source removal accepted")
	}
}
