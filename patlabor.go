// Package patlabor is a from-scratch Go implementation of PatLabor
// ("Pareto Optimization of Timing-Driven Routing Trees", DAC 2025):
// bicriterion routing-tree construction that returns the Pareto frontier
// of total wirelength w(T) and source-to-sink delay d(T) instead of a
// single parameter-tuned compromise.
//
// The entry point is Route: exact Pareto frontiers for small-degree nets
// (lookup tables / Pareto-DW dynamic programming) and policy-guided local
// search for large-degree nets. The baselines the paper compares against
// (SALT, YSD, Prim–Dijkstra, RSMT/FLUTE-role, RSMA/CL-role, Pareto-KS) are
// exposed for benchmarking. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
//
//	net := patlabor.NewNet(patlabor.Pt(0, 0), patlabor.Pt(40, 10), patlabor.Pt(35, -20))
//	cands, err := patlabor.Route(net, patlabor.Options{})
//	for _, c := range cands {
//	    fmt.Println(c.Sol.W, c.Sol.D) // one tree per Pareto point in c.Val
//	}
package patlabor

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"patlabor/internal/bookshelf"
	"patlabor/internal/core"
	"patlabor/internal/dw"
	"patlabor/internal/eco"
	"patlabor/internal/elmore"
	"patlabor/internal/engine"
	"patlabor/internal/geom"
	"patlabor/internal/ks"
	"patlabor/internal/lut"
	"patlabor/internal/method"
	"patlabor/internal/pareto"
	"patlabor/internal/pd"
	"patlabor/internal/policy"
	"patlabor/internal/rsma"
	"patlabor/internal/rsmt"
	"patlabor/internal/salt"
	"patlabor/internal/tree"
	"patlabor/internal/ysd"
)

// Point is a pin position in the rectilinear plane.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y int64) Point { return geom.Pt(x, y) }

// Net is a routing instance: Pins[0] is the source, the rest are sinks.
type Net = tree.Net

// NewNet builds a net from a source and its sinks.
func NewNet(source Point, sinks ...Point) Net { return tree.NewNet(source, sinks...) }

// Tree is a rooted rectilinear Steiner routing tree.
type Tree = tree.Tree

// Solution is one objective vector (wirelength W, delay D).
type Solution = pareto.Sol

// Candidate pairs a Pareto-optimal objective vector with a tree attaining
// it.
type Candidate = pareto.Item[*tree.Tree]

// Options configures Route.
type Options struct {
	// Lambda is the small-net threshold λ (default 9): nets with at most
	// λ pins are solved exactly; larger nets use local search with
	// λ-pin lookup-table regeneration steps.
	Lambda int
	// Iterations overrides the local-search iteration count (default
	// ⌊n/λ⌋ as in the paper).
	Iterations int
	// TablePath optionally points at a lookup-table file produced by
	// cmd/lutgen; its degrees are merged over the built-in eager tables.
	// Both formats load: the flat zero-copy format ("PLUT" magic) attaches
	// as a memory-mapped read-only backend — queries start in milliseconds
	// and every process mapping the same file shares one page-cache copy —
	// while legacy gob files decode in memory (read-only support; new
	// tables should use the flat format, see `lutgen -convert`).
	TablePath string
	// PolicyParams overrides the trained pin-selection policy weights.
	PolicyParams *PolicyParams
	// NoCache disables the local search's sub-frontier memo and, for
	// batch routing, the cross-net dedup. Frontiers are byte-identical
	// either way; the flag exists for A-B benchmarking and for runs that
	// must not retain per-batch cache memory.
	NoCache bool
}

// PolicyParams are the four selection-policy weights of §V-B.
type PolicyParams = policy.Params

// Route computes a Pareto set of routing trees for the net: the exact
// frontier when the degree is at most λ, a locally searched approximation
// otherwise. Candidates are ordered by increasing wirelength (and thus
// decreasing delay).
func Route(net Net, opts Options) ([]Candidate, error) {
	return RouteContext(context.Background(), net, opts)
}

// RouteContext is Route under a context: cancelling ctx (or letting its
// deadline expire) aborts the exact DP at subset granularity and the local
// search at iteration granularity.
func RouteContext(ctx context.Context, net Net, opts Options) ([]Candidate, error) {
	copts, err := prepareOptions(opts)
	if err != nil {
		return nil, err
	}
	return core.RouteContext(ctx, net, copts)
}

// Methods lists the registered routing methods (primary names, in
// registration order): PatLabor plus every baseline. Any of them — or
// their aliases such as "pd", "ks", "dw" — can be passed to RouteWith.
func Methods() []string { return method.Names() }

// RouteWith routes the net with the named registry method (case-
// insensitive; see Methods). The "patlabor" method honours opts; baselines
// route with their own defaults and ignore opts.
func RouteWith(ctx context.Context, name string, net Net, opts Options) ([]Candidate, error) {
	if name == "" || method.Key(name) == "patlabor" {
		return RouteContext(ctx, net, opts)
	}
	m, ok := method.Get(name)
	if !ok {
		return nil, fmt.Errorf("patlabor: unknown method %q (have %s)",
			name, strings.Join(method.Names(), ", "))
	}
	return m.Frontier(ctx, net)
}

// tableCache memoizes lookup-table files by path: loading and eager
// generation are expensive, and Route may be called per net, so each path
// is read and resolved exactly once per process.
var tableCache struct {
	mu     sync.Mutex
	tables map[string]*lut.Table
}

// loadTable returns the resolved table for path, reading the file on the
// first call only. The mutex covers the load, so concurrent first calls
// do not read the file twice.
func loadTable(path string) (*lut.Table, error) {
	tableCache.mu.Lock()
	defer tableCache.mu.Unlock()
	if t, ok := tableCache.tables[path]; ok {
		return t, nil
	}
	t := lut.New()
	if err := t.LoadFile(path); err != nil {
		return nil, fmt.Errorf("patlabor: loading table: %w", err)
	}
	// Merge the built-in eager degrees underneath.
	for d := 2; d <= lut.DefaultEagerDegree; d++ {
		if !t.Covers(d) {
			if err := t.Generate(d, 0); err != nil {
				return nil, err
			}
		}
	}
	if tableCache.tables == nil {
		tableCache.tables = map[string]*lut.Table{}
	}
	tableCache.tables[path] = t
	return t, nil
}

// prepareOptions resolves the public Options into the core configuration.
func prepareOptions(opts Options) (core.Options, error) {
	copts := core.Options{
		Lambda:     opts.Lambda,
		Iterations: opts.Iterations,
		Params:     opts.PolicyParams,
		NoCache:    opts.NoCache,
	}
	if opts.TablePath != "" {
		t, err := loadTable(opts.TablePath)
		if err != nil {
			return core.Options{}, err
		}
		copts.Table = t
	}
	return copts, nil
}

// ExactFrontier computes the provably exact Pareto frontier with the
// Pareto-DW dynamic program. The degree must be at most MaxExactDegree.
func ExactFrontier(net Net) ([]Candidate, error) {
	return dw.Frontier(net, dw.DefaultOptions())
}

// MaxExactDegree is the largest degree ExactFrontier accepts.
const MaxExactDegree = dw.MaxExactDegree

// RSMT returns a low-wirelength Steiner tree (FLUTE's role in the paper):
// exact minimum wirelength for small degrees, strong heuristics beyond.
func RSMT(net Net) *Tree { return rsmt.Tree(net) }

// RSMA returns a shortest-path Steiner arborescence (the Córdova–Lee
// role): every sink is reached with minimum possible delay.
func RSMA(net Net) *Tree { return rsma.Tree(net) }

// SALTSweep runs the SALT baseline across an ε grid (nil for defaults) and
// returns the Pareto set of the produced trees.
func SALTSweep(net Net, epsilons []float64) []Candidate {
	return salt.Sweep(net, epsilons)
}

// YSDSweep runs the YSD weighted-sum baseline across a β grid (nil for
// defaults).
func YSDSweep(net Net, betas []float64) ([]Candidate, error) {
	return ysd.Sweep(net, betas)
}

// PDSweep runs the Prim–Dijkstra baseline across an α grid (nil for
// defaults).
func PDSweep(net Net, alphas []float64) []Candidate {
	return pd.Sweep(net, alphas)
}

// KSFrontier runs the Pareto-KS divide-and-conquer approximation (§IV-B).
func KSFrontier(net Net) ([]Candidate, error) {
	return ks.Frontier(net, ks.Options{})
}

// RouteAll routes many nets concurrently on a worker pool (workers <= 0
// uses GOMAXPROCS) via the batch engine (internal/engine). Results are
// positionally aligned with nets and identical to routing each net
// serially with Route; the lowest-index failure aborts the batch. For
// cumulative statistics (cache hit rates, per-degree latency histograms)
// construct an Engine directly.
func RouteAll(nets []Net, opts Options, workers int) ([][]Candidate, error) {
	return RouteAllContext(context.Background(), nets, opts, workers)
}

// RouteAllContext is RouteAll under a context: cancellation stops
// dispatching new nets, aborts in-flight nets at their next iteration
// check, and returns ctx.Err() with nil results.
func RouteAllContext(ctx context.Context, nets []Net, opts Options, workers int) ([][]Candidate, error) {
	eopts, err := engineOptions(opts, workers)
	if err != nil {
		return nil, err
	}
	return engine.RouteAll(ctx, nets, eopts)
}

// Engine is the reusable batch router: it keeps the resolved options and
// accumulates EngineStats across RouteAll calls.
type Engine = engine.Engine

// EngineStats is a snapshot of a batch engine's counters.
type EngineStats = engine.Stats

// NewEngine builds a batch engine routing on the given worker-pool size
// (<=0 uses GOMAXPROCS).
func NewEngine(opts Options, workers int) (*Engine, error) {
	eopts, err := engineOptions(opts, workers)
	if err != nil {
		return nil, err
	}
	return engine.New(eopts)
}

// engineOptions resolves public options for the batch engine, sharing the
// process-wide memoized table cache (the engine would otherwise re-read
// the file per NewEngine call).
func engineOptions(opts Options, workers int) (engine.Options, error) {
	eopts := engine.Options{
		Workers:    workers,
		Lambda:     opts.Lambda,
		Iterations: opts.Iterations,
		Params:     opts.PolicyParams,
		NoCache:    opts.NoCache,
	}
	if opts.TablePath != "" {
		t, err := loadTable(opts.TablePath)
		if err != nil {
			return engine.Options{}, err
		}
		eopts.Table = t
	}
	return eopts, nil
}

// Edit is one incremental net mutation (ECO mode): construct edits with
// MovePin, AddSink, RemoveSink and PerturbCoords, then feed them to
// Reroute.
type Edit = eco.Edit

// MovePin repositions pin (the source is allowed) to the absolute
// position p.
func MovePin(pin int, p Point) Edit { return eco.MovePin(pin, p) }

// AddSink appends a sink at p as the highest pin index.
func AddSink(p Point) Edit { return eco.AddSink(p) }

// RemoveSink deletes sink pin (never the source), shifting higher pin
// indices down by one; the net must keep at least two pins.
func RemoveSink(pin int) Edit { return eco.RemoveSink(pin) }

// PerturbCoords nudges pin (the source is allowed) by the relative
// offset d.
func PerturbCoords(pin int, d Point) Edit { return eco.PerturbCoords(pin, d) }

// ApplyEdits applies edits to net in order and returns the post-edit net
// without routing anything; the input net is not mutated. It is the pure
// mutation underlying Reroute, exposed so callers can maintain their own
// net state.
func ApplyEdits(net Net, edits []Edit) (Net, error) {
	next, _, err := eco.Apply(net, edits)
	return next, err
}

// Rerouter is an incremental-rerouting session (ECO mode): nets are
// registered once with Track, then rerouted after each edit batch with
// Reroute at a fraction of the from-scratch cost — while every result
// stays byte-identical to Route on the post-edit net. The speedup comes
// from exactness-preserving reuse only (revisited geometries answered by
// verified isometries, warm sub-frontier windows); see internal/eco. A
// Rerouter is safe for concurrent use. For pooled batch rerouting with
// statistics, use Engine.Track and Engine.RerouteBatch instead.
type Rerouter = eco.Session

// Tracked is one net registered with a Rerouter (or an Engine).
type Tracked = eco.Handle

// RerouteStats is a snapshot of a Rerouter's counters.
type RerouteStats = eco.Stats

// NewRerouter builds an incremental-rerouting session with the resolved
// options (the same resolution Route uses, including the memoized
// lookup-table cache).
func NewRerouter(opts Options) (*Rerouter, error) {
	copts, err := prepareOptions(opts)
	if err != nil {
		return nil, err
	}
	return eco.NewSession(copts)
}

// Reroute applies edits to the tracked net and returns the post-edit
// Pareto frontier, byte-identical to Route on the post-edit net.
//
//	r, _ := patlabor.NewRerouter(patlabor.Options{})
//	h, _ := r.Track(ctx, net)
//	cands, _ := patlabor.Reroute(ctx, h, []patlabor.Edit{
//	    patlabor.MovePin(3, patlabor.Pt(120, -40)),
//	})
func Reroute(ctx context.Context, h *Tracked, edits []Edit) ([]Candidate, error) {
	return h.Reroute(ctx, edits)
}

// ElmoreParams are the RC parameters of the Elmore delay model (see
// internal/elmore): an evaluation-model extension beyond the paper's
// path-length delay.
type ElmoreParams = elmore.Params

// TypicalElmoreParams returns plausible normalised RC parameters.
func TypicalElmoreParams() ElmoreParams { return elmore.TypicalParams() }

// ElmoreDelay returns the maximum sink Elmore delay of a tree.
func ElmoreDelay(t *Tree, p ElmoreParams) float64 { return elmore.MaxDelay(t, p) }

// ElmoreRank returns the indices of the candidates that remain Pareto
// optimal when delay is re-evaluated under the Elmore model.
func ElmoreRank(cands []Candidate, p ElmoreParams) []int { return elmore.Rank(cands, p) }

// NamedNet pairs a net with a name, as read from net files.
type NamedNet = bookshelf.NamedNet

// ReadNets parses a Bookshelf-style net file (see internal/bookshelf for
// the format).
func ReadNets(path string) ([]NamedNet, error) { return bookshelf.ReadFile(path) }

// WriteNets writes nets in the format ReadNets parses.
func WriteNets(path string, nets []NamedNet) error { return bookshelf.WriteFile(path, nets) }
