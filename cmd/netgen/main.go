// Command netgen emits the synthetic ICCAD-15-like benchmark suite (or a
// Theorem-1 gadget instance) as Bookshelf-style net files for use with
// cmd/patlabor or external tools.
//
// Usage:
//
//	netgen -o outdir [-designs 8] [-nets 800] [-seed 1]
//	netgen -gadget 3 -o outdir
//	netgen -mega 8 -megadeg 1024 -o outdir
//
// -mega emits one file of clustered mega-nets (blob-structured
// high-fanout nets of degree -megadeg, internal/hier territory) instead
// of the suite.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"patlabor/internal/bookshelf"
	"patlabor/internal/netgen"
)

func main() {
	out := flag.String("o", "benchmark", "output directory")
	designs := flag.Int("designs", 8, "number of designs")
	nets := flag.Int("nets", 800, "nets per design")
	seed := flag.Int64("seed", 1, "suite seed")
	gadget := flag.Int("gadget", 0, "emit one Theorem-1 gadget with m gadgets instead of the suite")
	mega := flag.Int("mega", 0, "emit this many clustered mega-nets instead of the suite")
	megadeg := flag.Int("megadeg", 1024, "degree of each mega-net (with -mega)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *gadget > 0 {
		net := netgen.SGadget(*gadget)
		path := filepath.Join(*out, fmt.Sprintf("sgadget_m%d.nets", *gadget))
		err := bookshelf.WriteFile(path, []bookshelf.NamedNet{
			{Name: fmt.Sprintf("sgadget_m%d", *gadget), Net: net},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d pins)\n", path, net.Degree())
		return
	}
	if *mega > 0 {
		rng := rand.New(rand.NewSource(*seed))
		named := make([]bookshelf.NamedNet, *mega)
		for i := range named {
			net := netgen.MegaClustered(rng, *megadeg, 1000000, *megadeg/80+2, 30000)
			named[i] = bookshelf.NamedNet{Name: fmt.Sprintf("mega_d%d_n%03d", *megadeg, i), Net: net}
		}
		path := filepath.Join(*out, fmt.Sprintf("mega_d%d.nets", *megadeg))
		if err := bookshelf.WriteFile(path, named); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nets of degree %d)\n", path, *mega, *megadeg)
		return
	}
	cfg := netgen.DefaultSuiteConfig()
	cfg.Designs = *designs
	cfg.NetsPerDesign = *nets
	cfg.Seed = *seed
	for _, d := range netgen.Suite(cfg) {
		named := make([]bookshelf.NamedNet, len(d.Nets))
		for i, n := range d.Nets {
			named[i] = bookshelf.NamedNet{Name: fmt.Sprintf("%s_n%05d", d.Name, i), Net: n}
		}
		path := filepath.Join(*out, d.Name+".nets")
		if err := bookshelf.WriteFile(path, named); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nets)\n", path, len(named))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
