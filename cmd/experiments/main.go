// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic ICCAD-15-like suite.
//
// Usage:
//
//	experiments [-exp all|fig6|table2|table3|table4|fig7a|fig7b|fig7c|thm1|thm2|ablation|eco|hugenet|scale]
//	            [-quick] [-designs N] [-nets N] [-seed S] [-timeout 10m]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	            [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// The small-net experiments (fig6, table3, table4, fig7a) share one pass
// over the suite and are computed together when any of them is requested.
// -timeout bounds the whole run: when it expires, the in-flight experiment
// aborts at its next per-net check and the command fails.
// -cpuprofile/-memprofile write runtime/pprof profiles of the full run;
// -mutexprofile/-blockprofile add the contention profiles the scale
// experiment's analysis reads.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"patlabor/internal/exp"
	"patlabor/internal/lut"
	"patlabor/internal/netgen"
	"patlabor/internal/profiling"
)

func main() {
	which := flag.String("exp", "all", "experiment to run (all, fig6, table2, table3, table4, fig7a, fig7b, fig7c, thm1, thm2, thm5, ablation, groute, eco, hugenet, scale)")
	quick := flag.Bool("quick", false, "use reduced sample sizes")
	designs := flag.Int("designs", 0, "override number of designs")
	nets := flag.Int("nets", 0, "override nets per design")
	seed := flag.Int64("seed", 0, "override suite seed")
	table := flag.String("table", "", "lookup-table file from cmd/lutgen (flat or legacy gob), merged into the default table (speeds up PatLabor's small-net path)")
	workers := flag.Int("workers", 0, "worker-pool size for per-net experiment loops (0 = GOMAXPROCS; results are identical at any worker count)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(profiling.Config{
		CPU:   *cpuProfile,
		Mem:   *memProfile,
		Mutex: *mutexProfile,
		Block: *blockProfile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *table != "" {
		if err := lut.Default().LoadFile(*table); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: loading table:", err)
			os.Exit(1)
		}
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *designs > 0 {
		cfg.Suite.Designs = *designs
	}
	if *nets > 0 {
		cfg.Suite.NetsPerDesign = *nets
	}
	if *seed != 0 {
		cfg.Suite.Seed = *seed
	}
	cfg.Workers = *workers

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, cfg, strings.ToLower(*which)); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg exp.Config, which string) error {
	want := func(names ...string) bool {
		if which == "all" {
			return true
		}
		for _, n := range names {
			if which == n {
				return true
			}
		}
		return false
	}

	if want("thm1", "fig4") {
		maxM := 3
		if cfg.Quick {
			maxM = 2
		}
		res, err := exp.RunThm1(ctx, maxM)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("thm2") {
		res, err := exp.RunThm2(ctx, cfg, 7, nil, 200)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("thm5") {
		res, err := exp.RunThm5(ctx, cfg, 12, nil, 40)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("table2") {
		eager, sampleDeg, sampleCnt := 6, 7, 40
		if cfg.Quick {
			eager, sampleDeg, sampleCnt = 5, 6, 10
		}
		res, err := exp.RunTable2(ctx, eager, sampleDeg, sampleCnt, 0)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	needSmall := want("fig6", "table3", "table4", "fig7a")
	needLarge := want("fig7b")
	var suite []netgen.Design
	if needSmall || needLarge {
		fmt.Printf("generating suite: %d designs × %d nets (seed %d)...\n",
			cfg.Suite.Designs, cfg.Suite.NetsPerDesign, cfg.Suite.Seed)
		suite = netgen.Suite(cfg.Suite)
	}
	if needSmall {
		res, err := exp.RunSmall(ctx, cfg, suite)
		if err != nil {
			return err
		}
		if want("fig6") {
			fmt.Println(res.RenderFig6())
		}
		if want("table3") {
			fmt.Println(res.RenderTable3())
		}
		if want("table4") {
			fmt.Println(res.RenderTable4())
		}
		if want("fig7a") {
			fmt.Println(res.RenderFig7a())
		}
	}
	if needLarge {
		nets := exp.LargeSuiteNets(cfg, suite)
		res, err := exp.RunLarge(ctx, cfg, "Figure 7(b) — large-degree suite nets", nets, true)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("fig7c") {
		nets := exp.Degree100Nets(cfg)
		res, err := exp.RunLarge(ctx, cfg, "Figure 7(c) — random degree-100 nets", nets, true)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("ablation") {
		res, err := exp.RunAblation(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("groute") {
		res, err := exp.RunGRoute(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("eco") {
		res, err := exp.RunEco(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("hugenet") {
		res, err := exp.RunHugeNet(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if want("scale") {
		res, err := exp.RunScale(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	return nil
}
