// Command lutgen generates PatLabor lookup tables (§V-A) and serialises
// them for reuse. Pre-generated tables can be handed to the router via
// patlabor.Options.TablePath or cmd/patlabor's -table flag.
//
// Usage:
//
//	lutgen -degrees 4-7 -o tables.gob [-workers N] [-sample K] [-check]
//
// Generating degree 7 takes minutes on one core; degrees 8-9 are feasible
// but long (the paper reports 4.76 h on 16 cores for the full λ=9 set) —
// use -sample to time a slice first.
//
// Tables are written atomically (temp file + rename) in the version-tagged
// gob format that stores each topology's precompiled (W, D) coefficient
// solution alongside it, so routers load without recompiling; files from
// older lutgen builds remain loadable. -check reloads the written file and
// verifies its coverage before reporting success.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"patlabor/internal/lut"
)

func main() {
	degrees := flag.String("degrees", "4-6", "degree or range to generate, e.g. 5 or 4-7")
	out := flag.String("o", "tables.gob", "output file")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	sample := flag.Int("sample", 0, "generate only the first K patterns per degree (timing probe; table not marked complete)")
	check := flag.Bool("check", false, "reload the written file and verify its degree coverage")
	flag.Parse()

	lo, hi, err := parseRange(*degrees)
	if err != nil {
		fatal(err)
	}
	t := lut.New()
	for d := lo; d <= hi; d++ {
		fmt.Printf("generating degree %d...\n", d)
		if *sample > 0 {
			err = t.GenerateSample(d, *workers, *sample)
		} else {
			err = t.Generate(d, *workers)
		}
		if err != nil {
			fatal(err)
		}
	}
	for _, st := range t.Stats() {
		fmt.Printf("degree %d: %d indices, %.2f avg topologies, %v\n",
			st.Degree, st.NumIndex, st.AvgTopo(), st.GenTime)
	}
	if err := t.SaveFile(*out); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	if *check {
		re := lut.New()
		if err := re.LoadFile(*out); err != nil {
			fatal(fmt.Errorf("check: reloading %s: %w", *out, err))
		}
		if *sample == 0 {
			for d := lo; d <= hi; d++ {
				if !re.Covers(d) {
					fatal(fmt.Errorf("check: reloaded table does not cover degree %d", d))
				}
			}
		}
		fmt.Println("check: reload ok")
	}
}

func parseRange(s string) (int, int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 2 || b < a {
			return 0, 0, fmt.Errorf("bad degree range %q", s)
		}
		return a, b, nil
	}
	d, err := strconv.Atoi(s)
	if err != nil || d < 2 {
		return 0, 0, fmt.Errorf("bad degree %q", s)
	}
	return d, d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lutgen:", err)
	os.Exit(1)
}
