// Command lutgen generates PatLabor lookup tables (§V-A) and serialises
// them for reuse. Pre-generated tables can be handed to the router via
// patlabor.Options.TablePath or cmd/patlabor's -table flag, which accept
// both table formats.
//
// Usage:
//
//	lutgen -degrees 4-7 -o tables.plut [-workers N] [-sample K] [-check]
//	lutgen -degrees 7 -shard 3/8 -o shard3.plut      # one shard of degree 7
//	lutgen -merge -o tables.plut shard*.plut         # merge shard files
//	lutgen -convert legacy.gob -o tables.plut        # migrate gob -> flat
//
// The default output is the flat zero-copy format ("PLUT" magic): routers
// memory-map it and start query-warm in milliseconds, sharing one
// page-cache copy across processes. -format gob keeps writing the legacy
// version-tagged gob format, which stays loadable read-only but is
// deprecated for new tables.
//
// Generating degree 7 takes minutes on one core (the paper reports 4.76 h
// on 16 cores for the full λ=9 set) — split it with -shard i/N across
// invocations or machines: the canonical pattern space partitions
// deterministically (pattern index mod N), each shard file carries its
// shard bookkeeping, and -merge folds any subset of shard files together,
// idempotently, marking a degree covered only once every shard is present
// (-merge errors out listing the missing shards otherwise; -partial
// downgrades that to a warning so merges can resume later). -resume skips
// generation when the output file already loads, making shard sweeps
// restartable with a shell loop.
//
// Tables are written atomically (temp file + rename). -check reloads the
// written file and verifies its coverage before reporting success.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"patlabor/internal/lut"
)

func main() {
	degrees := flag.String("degrees", "4-6", "degree or range to generate, e.g. 5 or 4-7")
	out := flag.String("o", "tables.plut", "output file")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	sample := flag.Int("sample", 0, "generate only the first K patterns per degree (timing probe; table not marked complete)")
	check := flag.Bool("check", false, "reload the written file and verify its degree coverage")
	format := flag.String("format", "flat", "output format: flat (zero-copy, default) or gob (legacy)")
	shard := flag.String("shard", "", "generate one shard i/N of each degree's pattern space, e.g. 3/8")
	merge := flag.Bool("merge", false, "merge the table files given as arguments into -o instead of generating")
	partial := flag.Bool("partial", false, "with -merge: allow incompletely sharded degrees (warn instead of erroring)")
	convert := flag.String("convert", "", "read this table file (either format) and rewrite it as -o in -format")
	resume := flag.Bool("resume", false, "skip generation when -o already exists and loads cleanly")
	flag.Parse()

	switch *format {
	case "flat", "gob":
	default:
		fatal(fmt.Errorf("unknown -format %q (want flat or gob)", *format))
	}
	if *merge && *convert != "" {
		fatal(fmt.Errorf("-merge and -convert are mutually exclusive"))
	}

	switch {
	case *convert != "":
		runConvert(*convert, *out, *format)
	case *merge:
		runMerge(flag.Args(), *out, *format, *partial)
	default:
		runGenerate(*degrees, *out, *format, *shard, *workers, *sample, *resume)
	}
	if *check {
		runCheck(*out, *degrees, *sample > 0, *merge || *convert != "")
	}
}

// runGenerate is the classic path plus sharding: build the requested
// degrees (or one shard of each) and write them out.
func runGenerate(degrees, out, format, shard string, workers, sample int, resume bool) {
	lo, hi, err := parseRange(degrees)
	if err != nil {
		fatal(err)
	}
	shardIdx, shardCount, err := parseShard(shard)
	if err != nil {
		fatal(err)
	}
	if resume {
		if probe := lut.New(); probe.LoadFile(out) == nil {
			fmt.Printf("resume: %s already loads, skipping generation\n", out)
			return
		}
	}
	t := lut.New()
	for d := lo; d <= hi; d++ {
		switch {
		case shardCount > 1:
			fmt.Printf("generating degree %d shard %d/%d...\n", d, shardIdx, shardCount)
			err = t.GenerateShard(d, workers, shardIdx, shardCount)
		case sample > 0:
			fmt.Printf("generating degree %d (sample %d)...\n", d, sample)
			err = t.GenerateSample(d, workers, sample)
		default:
			fmt.Printf("generating degree %d...\n", d)
			err = t.Generate(d, workers)
		}
		if err != nil {
			fatal(err)
		}
	}
	printStats(t)
	writeTable(t, out, format)
}

// runMerge folds shard (or whole) table files into one output table.
func runMerge(paths []string, out, format string, partial bool) {
	if len(paths) == 0 {
		fatal(fmt.Errorf("-merge needs table files as arguments"))
	}
	t := lut.New()
	for _, p := range paths {
		if err := t.LoadFile(p); err != nil {
			fatal(fmt.Errorf("merging %s: %w", p, err))
		}
		fmt.Printf("merged %s\n", p)
	}
	for _, st := range t.Stats() {
		missing, shardCount, ok := t.MissingShards(st.Degree)
		if ok && len(missing) > 0 {
			msg := fmt.Errorf("degree %d incomplete: missing shards %v of %d", st.Degree, missing, shardCount)
			if !partial {
				fatal(fmt.Errorf("%v (re-run those shards, or pass -partial to write anyway)", msg))
			}
			fmt.Printf("warning: %v\n", msg)
		}
	}
	printStats(t)
	writeTable(t, out, format)
}

// runConvert migrates a table file between formats (gob -> flat being the
// expected direction).
func runConvert(in, out, format string) {
	t := lut.New()
	if err := t.LoadFile(in); err != nil {
		fatal(fmt.Errorf("convert: reading %s: %w", in, err))
	}
	printStats(t)
	writeTable(t, out, format)
}

func runCheck(out, degrees string, sampled, skipRange bool) {
	re := lut.New()
	if err := re.LoadFile(out); err != nil {
		fatal(fmt.Errorf("check: reloading %s: %w", out, err))
	}
	defer re.Close()
	if !sampled && !skipRange {
		lo, hi, err := parseRange(degrees)
		if err != nil {
			fatal(err)
		}
		for d := lo; d <= hi; d++ {
			if !re.Covers(d) {
				if _, _, sharded := re.MissingShards(d); sharded {
					continue // shard files are legitimately partial
				}
				fatal(fmt.Errorf("check: reloaded table does not cover degree %d", d))
			}
		}
	}
	fmt.Println("check: reload ok")
}

func printStats(t *lut.Table) {
	for _, st := range t.Stats() {
		line := fmt.Sprintf("degree %d: %d indices, %.2f avg topologies, %v",
			st.Degree, st.NumIndex, st.AvgTopo(), st.GenTime)
		if st.Pruned > 0 {
			line += fmt.Sprintf(", %d pruned", st.Pruned)
		}
		if missing, shardCount, ok := t.MissingShards(st.Degree); ok && len(missing) > 0 {
			line += fmt.Sprintf(" [shards %d/%d, missing %v]", shardCount-len(missing), shardCount, missing)
		}
		fmt.Println(line)
	}
}

func writeTable(t *lut.Table, out, format string) {
	var err error
	if format == "gob" {
		err = t.SaveFile(out)
	} else {
		err = t.SaveFlatFile(out)
	}
	if err != nil {
		fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, %d bytes)\n", out, format, info.Size())
}

func parseRange(s string) (int, int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 2 || b < a {
			return 0, 0, fmt.Errorf("bad degree range %q", s)
		}
		return a, b, nil
	}
	d, err := strconv.Atoi(s)
	if err != nil || d < 2 {
		return 0, 0, fmt.Errorf("bad degree %q", s)
	}
	return d, d, nil
}

// parseShard parses "i/N"; empty means unsharded (0, 1).
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/N)", s)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil || n < 1 || n > lut.MaxShards || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/N, 0 <= i < N <= %d)", s, lut.MaxShards)
	}
	return i, n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lutgen:", err)
	os.Exit(1)
}
