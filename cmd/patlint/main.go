// Command patlint runs the PatLabor domain-invariant static-analysis
// suite over the module: exact int64 arithmetic in the exact packages,
// deterministic map-iteration output, no wall-clock/rand in algorithm
// packages, slices.SortFunc instead of reflection-based sort.Slice, and
// context propagation discipline in the routing packages.
//
// Usage:
//
//	go run ./cmd/patlint ./...                # whole module (CI gate)
//	go run ./cmd/patlint internal/pareto      # one package
//	go run ./cmd/patlint internal/...         # a subtree
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Findings print as
//
//	pkg/file.go:line: patlint(rule): message
//
// and are suppressed with `//patlint:ignore <rule> <reason>` on (or
// above) the offending line, or in the doc comment of the declaration.
// See internal/patlint for the rule catalog.
package main

import (
	"fmt"
	"os"

	"patlabor/internal/patlint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l, err := patlint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := patlint.Check(l, patterns)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d.Format(l.Root))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "patlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
