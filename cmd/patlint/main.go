// Command patlint runs the PatLabor domain-invariant static-analysis
// suite over the module: exact int64 arithmetic in the exact packages,
// deterministic map-iteration output, no wall-clock/rand in algorithm
// packages, slices.SortFunc instead of reflection-based sort.Slice,
// context propagation discipline in the routing packages, and the
// interprocedural dataflow rules (cache-ownership aliasing, hidden
// cancellable work in loops, goroutine leaks, unbounded int64
// arithmetic).
//
// Usage:
//
//	go run ./cmd/patlint ./...                     # whole module (CI gate)
//	go run ./cmd/patlint internal/pareto           # one package
//	go run ./cmd/patlint -rules exact,goleak ./... # a rule subset
//	go run ./cmd/patlint -json ./...               # machine-readable output
//	go run ./cmd/patlint -baseline .patlint-baseline.json ./...
//	go run ./cmd/patlint -baseline .patlint-baseline.json -write-baseline ./...
//
// With -baseline, findings recorded in the baseline file are forgiven
// (matched by file/rule/message as a multiset, so unrelated edits that
// move lines do not churn it); only new findings fail the run, and stale
// baseline entries — recorded findings that no longer occur — are
// reported on stderr so the file gets regenerated. -write-baseline
// rewrites the baseline to the current findings and exits 0; the
// preferred steady state is the empty baseline "[]".
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Findings print as
//
//	pkg/file.go:line: patlint(rule): message
//
// or, with -json, as a JSON array of {file, line, rule, msg} objects in
// the same stable (file, line, column, rule) order. Findings are
// suppressed with `//patlint:ignore <rule> <reason>` on (or above) the
// offending line, or in the doc comment of the declaration. See
// internal/patlint for the rule catalog.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"patlabor/internal/patlint"
)

func main() {
	var (
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array")
		baselinePath  = flag.String("baseline", "", "baseline file of grandfathered findings")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the -baseline file to the current findings and exit 0")
		rulesFlag     = flag.String("rules", "", "comma-separated rules to run (default: all); known: "+strings.Join(patlint.Rules(), ","))
	)
	flag.Parse()
	if *writeBaseline && *baselinePath == "" {
		fatal(fmt.Errorf("patlint: -write-baseline requires -baseline <file>"))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var rules []string
	if *rulesFlag != "" {
		rules = strings.Split(*rulesFlag, ",")
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	l, err := patlint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := patlint.CheckRules(l, patterns, rules)
	if err != nil {
		fatal(err)
	}
	if *writeBaseline {
		if err := patlint.SaveBaseline(*baselinePath, patlint.BaselineOf(l.Root, diags)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "patlint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return
	}
	if *baselinePath != "" {
		base, err := patlint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var stale []patlint.BaselineEntry
		diags, stale = patlint.ApplyBaseline(l.Root, diags, base)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "patlint: stale baseline entry (finding fixed — regenerate with -write-baseline): %s: patlint(%s): %s\n",
				e.File, e.Rule, e.Msg)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := patlint.ToJSON(l.Root, diags)
		if out == nil {
			out = []patlint.JSONDiagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.Format(l.Root))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "patlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
