// Command patlabor routes nets from a Bookshelf-style file and prints the
// Pareto set of each: one (wirelength, delay) row per Pareto-optimal tree.
//
// Usage:
//
//	patlabor -nets nets.txt [-method patlabor|salt|ysd|pd|ks]
//	         [-lambda 9] [-table tables.gob] [-workers N] [-stats] [-v]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The patlabor method routes the whole file as one batch on a worker pool
// (-workers, default GOMAXPROCS; output order and content are identical at
// any worker count). -stats prints the engine's counters — nets routed,
// lookup-table hit rate and symbolic-evaluation savings, per-degree
// latency — to stderr. With -v each solution also prints its tree edges.
// -cpuprofile/-memprofile write runtime/pprof profiles of the routing run
// for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"

	"patlabor"
	"patlabor/internal/profiling"
)

func main() {
	netsPath := flag.String("nets", "", "Bookshelf-style net file (required)")
	method := flag.String("method", "patlabor", "routing method: patlabor, salt, ysd, pd, ks")
	lambda := flag.Int("lambda", 0, "small-net threshold λ (default 9)")
	table := flag.String("table", "", "pre-generated lookup table file (from lutgen)")
	verbose := flag.Bool("v", false, "print tree edges")
	workers := flag.Int("workers", 0, "worker-pool size for batch routing (0 = GOMAXPROCS; patlabor method only)")
	stats := flag.Bool("stats", false, "print batch-engine statistics to stderr (patlabor method only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *netsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	nets, err := patlabor.ReadNets(*netsPath)
	if err != nil {
		fatal(err)
	}
	if *method == "patlabor" {
		batch := make([]patlabor.Net, len(nets))
		for i, nn := range nets {
			batch[i] = nn.Net
		}
		eng, err := patlabor.NewEngine(patlabor.Options{Lambda: *lambda, TablePath: *table}, *workers)
		if err != nil {
			fatal(err)
		}
		results, err := eng.RouteAll(batch)
		if err != nil {
			fatal(err)
		}
		for i, nn := range nets {
			printNet(nn.Name, nn.Net, results[i], *verbose)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "batch engine (%d workers):\n%s", eng.Workers(), eng.Stats())
		}
		return
	}
	for _, nn := range nets {
		cands, err := route(*method, nn.Net)
		if err != nil {
			fatal(fmt.Errorf("net %s: %w", nn.Name, err))
		}
		printNet(nn.Name, nn.Net, cands, *verbose)
	}
}

func printNet(name string, net patlabor.Net, cands []patlabor.Candidate, verbose bool) {
	fmt.Printf("net %s degree %d: %d Pareto solutions\n", name, net.Degree(), len(cands))
	for _, c := range cands {
		fmt.Printf("  w=%-10d d=%-10d\n", c.Sol.W, c.Sol.D)
		if verbose {
			for i, p := range c.Val.Parent {
				if p >= 0 {
					fmt.Printf("    %v -- %v\n", c.Val.Nodes[p].P, c.Val.Nodes[i].P)
				}
			}
		}
	}
}

func route(method string, net patlabor.Net) ([]patlabor.Candidate, error) {
	switch method {
	case "salt":
		return patlabor.SALTSweep(net, nil), nil
	case "ysd":
		return patlabor.YSDSweep(net, nil)
	case "pd":
		return patlabor.PDSweep(net, nil), nil
	case "ks":
		return patlabor.KSFrontier(net)
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "patlabor:", err)
	os.Exit(1)
}
