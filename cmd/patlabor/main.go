// Command patlabor routes nets from a Bookshelf-style file and prints the
// Pareto set of each: one (wirelength, delay) row per Pareto-optimal tree.
//
// Usage:
//
//	patlabor -nets nets.txt [-method patlabor|hier|salt|ysd|pd|ks|dw|rsmt|rsma]
//	         [-lambda 9] [-table tables.gob] [-workers N] [-timeout 30s]
//	         [-nocache] [-stats] [-v]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// Every method routes the whole file as one batch on a worker pool
// (-workers, default GOMAXPROCS; output order and content are identical at
// any worker count). -method picks any entrant of the method registry —
// patlabor (default), hier (the hierarchical router for huge nets, which
// routes nets at or below its crossover degree exactly like patlabor's
// core and clusters the rest), the baselines, or an alias like dw/exact.
// -timeout
// bounds the whole batch: when it expires, in-flight nets abort at their
// next iteration check and the command fails. -nocache disables the
// sub-frontier memo and the batch net dedup (output is byte-identical
// either way; the flag exists for A-B timing). -stats prints the engine's
// counters — per-method nets routed, lookup-table hit rate and
// symbolic-evaluation savings, sub-frontier memo and net-dedup hit rates,
// per-degree latency — to stderr. With -v
// each solution also prints its tree edges. -cpuprofile/-memprofile write
// runtime/pprof profiles of the routing run for `go tool pprof`;
// -mutexprofile/-blockprofile add the contention profiles (lock waits,
// channel/scheduler blocking) the scalability work reads — they enable
// the runtime's contention sampling only for profiled runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"patlabor"
	"patlabor/internal/engine"
	"patlabor/internal/profiling"
)

func main() {
	netsPath := flag.String("nets", "", "Bookshelf-style net file (required)")
	method := flag.String("method", "patlabor",
		"routing method: "+strings.Join(patlabor.Methods(), ", ")+" (or an alias like pd, ks, dw)")
	lambda := flag.Int("lambda", 0, "small-net threshold λ (default 9; patlabor method only)")
	table := flag.String("table", "", "pre-generated lookup table file from lutgen (flat or legacy gob format)")
	verbose := flag.Bool("v", false, "print tree edges")
	workers := flag.Int("workers", 0, "worker-pool size for batch routing (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the batch after this duration (0 = no limit)")
	stats := flag.Bool("stats", false, "print batch-engine statistics to stderr")
	nocache := flag.Bool("nocache", false, "disable the sub-frontier memo and batch net dedup (output identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	if *netsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(profiling.Config{
		CPU:   *cpuProfile,
		Mem:   *memProfile,
		Mutex: *mutexProfile,
		Block: *blockProfile,
	})
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	nets, err := patlabor.ReadNets(*netsPath)
	if err != nil {
		fatal(err)
	}
	batch := make([]patlabor.Net, len(nets))
	for i, nn := range nets {
		batch[i] = nn.Net
	}
	eng, err := engine.New(engine.Options{
		Workers:   *workers,
		Method:    *method,
		Lambda:    *lambda,
		TablePath: *table,
		NoCache:   *nocache,
	})
	if err != nil {
		fatal(err)
	}
	// The timeout bounds routing, not setup: the clock starts after the
	// engine (and any eager lookup tables) is built.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	results, err := eng.RouteAll(ctx, batch)
	if err != nil {
		fatal(err)
	}
	for i, nn := range nets {
		printNet(nn.Name, nn.Net, results[i], *verbose)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "batch engine (%d workers, method %s):\n%s",
			eng.Workers(), eng.Method(), eng.Stats())
	}
}

func printNet(name string, net patlabor.Net, cands []patlabor.Candidate, verbose bool) {
	fmt.Printf("net %s degree %d: %d Pareto solutions\n", name, net.Degree(), len(cands))
	for _, c := range cands {
		fmt.Printf("  w=%-10d d=%-10d\n", c.Sol.W, c.Sol.D)
		if verbose {
			for i, p := range c.Val.Parent {
				if p >= 0 {
					fmt.Printf("    %v -- %v\n", c.Val.Nodes[p].P, c.Val.Nodes[i].P)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "patlabor:", err)
	os.Exit(1)
}
