// Congestion: drive the global-routing substrate (internal/groute) with
// PatLabor's Pareto candidate sets. Many nets funnel through one region of
// the die; a router locked to each net's single "best" topology overflows
// the hotspot, while rip-up-and-reselect over the candidate sets trades a
// little wirelength on a few nets to dissolve the congestion — the DGR-
// style use-case the paper's introduction motivates.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"math/rand"

	"patlabor"
	"patlabor/internal/groute"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	const (
		die     = 800
		numNets = 40
	)

	// Nets with drivers on the east edge and sink clusters on the west:
	// every cheap topology wants the same few horizontal tracks.
	var nets []groute.NetCandidates
	for len(nets) < numNets {
		src := patlabor.Pt(650+rng.Int63n(120), 250+rng.Int63n(300))
		sinks := make([]patlabor.Point, 4)
		for j := range sinks {
			sinks[j] = patlabor.Pt(rng.Int63n(250), rng.Int63n(die))
		}
		net := patlabor.NewNet(src, sinks...)
		cands, err := patlabor.Route(net, patlabor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(cands) < 2 {
			continue // no tradeoff to exploit on this net
		}
		nets = append(nets, groute.NetCandidates{Cands: cands})
	}

	run := func(label string, pick func(groute.NetCandidates) groute.NetCandidates, passes int) groute.Result {
		grid, err := groute.NewGrid(10, 10, die/10, die/10, 9)
		if err != nil {
			log.Fatal(err)
		}
		sel := make([]groute.NetCandidates, len(nets))
		for i, nc := range nets {
			sel[i] = pick(nc)
		}
		_, res, err := groute.Select(grid, sel, passes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s overflow %4d   max edge use %3d   wire %7d\n",
			label, res.Overflow, res.MaxUse, res.TotalWire)
		return res
	}

	fmt.Printf("%d nets, 10×10 G-cell grid, capacity 9 per boundary\n\n", len(nets))
	cheapest := run("RSMT only (min-wire topology)",
		func(nc groute.NetCandidates) groute.NetCandidates {
			return groute.NetCandidates{Cands: nc.Cands[:1]}
		}, 1)
	fastest := run("arborescence only (min-delay)",
		func(nc groute.NetCandidates) groute.NetCandidates {
			return groute.NetCandidates{Cands: nc.Cands[len(nc.Cands)-1:]}
		}, 1)
	pareto := run("Pareto candidate selection",
		func(nc groute.NetCandidates) groute.NetCandidates { return nc }, 5)

	fmt.Println()
	switch {
	case pareto.Overflow < cheapest.Overflow && pareto.Overflow < fastest.Overflow:
		fmt.Println("Candidate selection beats both single-topology routers on overflow,")
		fmt.Println("paying only the wirelength needed to steer around the hotspot.")
	case pareto.Overflow <= cheapest.Overflow:
		fmt.Println("Candidate selection matches the best single-topology overflow with")
		fmt.Println("a better wirelength/turnaround mix.")
	default:
		fmt.Println("On this seed the single-topology router got lucky — rerun with more")
		fmt.Println("nets to see the candidate sets pull ahead.")
	}
}
