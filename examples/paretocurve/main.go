// Paretocurve: compare PatLabor against the SALT, YSD and Prim–Dijkstra
// baselines on one net and plot every method's solution set against the
// exact Pareto frontier (the Figure 1 story: parameter-sweeping heuristics
// leave frontier points on the table; PatLabor returns them all).
//
//	go run ./examples/paretocurve
package main

import (
	"fmt"
	"log"
	"math/rand"

	"patlabor"
	"patlabor/internal/netgen"
	"patlabor/internal/textplot"
)

func main() {
	// A degree-9 driver-displaced net, the largest degree with guaranteed
	// exactness.
	rng := rand.New(rand.NewSource(20))
	var net patlabor.Net
	// Pick a seed whose net has a rich frontier.
	for {
		net = netgen.ClusteredDriver(rng, 9, 4000, 1500)
		cands, err := patlabor.Route(net, patlabor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(cands) >= 4 {
			break
		}
	}

	exact, err := patlabor.Route(net, patlabor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	saltSet := patlabor.SALTSweep(net, nil)
	ysdSet, err := patlabor.YSDSweep(net, nil)
	if err != nil {
		log.Fatal(err)
	}
	pdSet := patlabor.PDSweep(net, nil)

	fmt.Printf("net degree %d — exact frontier has %d solutions\n\n", net.Degree(), len(exact))
	show := func(name string, cands []patlabor.Candidate) textplot.Series {
		s := textplot.Series{Label: name}
		onFront := 0
		for _, c := range cands {
			s.X = append(s.X, float64(c.Sol.W))
			s.Y = append(s.Y, float64(c.Sol.D))
			for _, e := range exact {
				if e.Sol == c.Sol {
					onFront++
					break
				}
			}
		}
		fmt.Printf("%-9s: %d solutions, %d on the exact frontier\n", name, len(cands), onFront)
		return s
	}
	series := []textplot.Series{
		show("PatLabor", exact),
		show("SALT", saltSet),
		show("YSD", ysdSet),
		show("pd (PD-II)", pdSet),
	}
	fmt.Println()
	fmt.Println(textplot.Plot(series, 60, 16))
	fmt.Println("x: wirelength   y: delay   (lower-left is better)")
}
