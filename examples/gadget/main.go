// Gadget: demonstrate Theorem 1 — the S-gadget family has exponentially
// many Pareto-optimal routing trees. Each chained gadget adds an
// independent binary choice (save wire through the bait cluster, or keep
// the victim sink fast), so the exact frontier doubles with every gadget.
//
//	go run ./examples/gadget
package main

import (
	"fmt"
	"log"

	"patlabor"
	"patlabor/internal/netgen"
)

func main() {
	fmt.Println("Theorem 1: exponential Pareto frontiers on adversarial chains")
	fmt.Println()
	for m := 1; m <= 3; m++ {
		net := netgen.SGadget(m)
		cands, err := patlabor.ExactFrontier(net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("m=%d gadgets (%d pins): %d Pareto-optimal trees (2^m = %d)\n",
			m, net.Degree(), len(cands), 1<<m)
		for _, c := range cands {
			fmt.Printf("    w=%-6d d=%-6d\n", c.Sol.W, c.Sol.D)
		}
	}
	fmt.Println()
	fmt.Println("Real placements never look like this: Theorem 2 shows κ-smoothed")
	fmt.Println("instances have only O(n³κ) expected frontier points, which is why")
	fmt.Println("PatLabor's lookup tables stay small (run cmd/experiments -exp thm2).")
}
