// Globalrouting: the paper's motivating use-case (§I) — a global router
// that picks each net's topology from a Pareto candidate set instead of
// committing to one heuristic tree per net.
//
// The toy scenario: a block of nets, each with a timing budget (a maximum
// source-to-sink delay). The router must meet every budget while using as
// little total wirelength as possible. With a single-solution
// constructor you get either the RSMT (cheapest, misses budgets) or the
// arborescence (fastest, wastes wire); with PatLabor's Pareto sets the
// router simply picks, per net, the cheapest candidate meeting the budget.
//
//	go run ./examples/globalrouting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"patlabor"
	"patlabor/internal/netgen"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const numNets = 40

	type job struct {
		net    patlabor.Net
		budget int64
		cands  []patlabor.Candidate
	}
	jobs := make([]job, 0, numNets)
	for len(jobs) < numNets {
		net := netgen.ClusteredDriver(rng, 5+rng.Intn(5), 8000, 2500)
		cands, err := patlabor.Route(net, patlabor.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// Timing budget: somewhere between the best possible delay and
		// the RSMT's delay — tight enough to bite, loose enough to meet.
		minD := cands[len(cands)-1].Sol.D
		maxD := cands[0].Sol.D
		if maxD <= minD {
			continue // no tension on this net; budgets trivially met
		}
		budget := minD + (maxD-minD)*int64(20+rng.Intn(60))/100
		jobs = append(jobs, job{net: net, budget: budget, cands: cands})
	}

	var wRSMT, wRSMA, wPareto int64
	var missRSMT, missRSMA, missPareto int
	for _, j := range jobs {
		// Single-solution baselines.
		rsmtTree := patlabor.RSMT(j.net)
		if rsmtTree.MaxDelay() > j.budget {
			missRSMT++
		}
		wRSMT += rsmtTree.Wirelength()
		rsmaTree := patlabor.RSMA(j.net)
		if rsmaTree.MaxDelay() > j.budget {
			missRSMA++
		}
		wRSMA += rsmaTree.Wirelength()
		// Pareto selection: cheapest candidate meeting the budget
		// (candidates are sorted by wirelength, so the first fit wins).
		picked := false
		for _, c := range j.cands {
			if c.Sol.D <= j.budget {
				wPareto += c.Sol.W
				picked = true
				break
			}
		}
		if !picked {
			missPareto++
			wPareto += j.cands[len(j.cands)-1].Sol.W
		}
	}

	fmt.Printf("%d nets with per-net delay budgets\n\n", len(jobs))
	fmt.Printf("%-28s %14s %16s\n", "topology source", "total wire", "budget misses")
	fmt.Printf("%-28s %14d %16d\n", "RSMT (wire-only)", wRSMT, missRSMT)
	fmt.Printf("%-28s %14d %16d\n", "arborescence (delay-only)", wRSMA, missRSMA)
	fmt.Printf("%-28s %14d %16d\n", "PatLabor Pareto selection", wPareto, missPareto)
	fmt.Println()
	fmt.Printf("Pareto selection meets every budget using %.1f%% less wire than the\n",
		100*(1-float64(wPareto)/float64(wRSMA)))
	fmt.Println("always-fast arborescence — the candidate sets let the router pay for")
	fmt.Println("speed only where timing actually requires it.")
}
