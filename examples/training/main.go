// Training: retrain the local-search pin-selection policy π (§V-B) with
// the policy-iteration scheme of the paper: sample candidate selections on
// random instances, score each by the Pareto improvement one local-search
// step achieves with it, and fit the four score weights by least squares,
// warm-starting each degree from the previous one (curriculum).
//
// The shipped defaults in internal/policy were produced by this program.
//
//	go run ./examples/training [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"patlabor/internal/core"
	"patlabor/internal/netgen"
	"patlabor/internal/pareto"
	"patlabor/internal/policy"
	"patlabor/internal/rsmt"
	"patlabor/internal/tree"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sample counts")
	flag.Parse()

	degrees := []int{10, 14, 20, 28, 40, 56, 80, 100}
	instances, samples := 16, 10
	if *quick {
		degrees = []int{10, 14}
		instances, samples = 4, 4
	}

	cfg := policy.TrainConfig{
		Degrees:   degrees,
		Instances: instances,
		Samples:   samples,
		K:         core.DefaultLambda - 1,
		Seed:      2025,
		Gen: func(rng *rand.Rand, n int) tree.Net {
			return netgen.ClusteredDriver(rng, n, 100000, 4000+int64(n)*300)
		},
		Base: func(net tree.Net) *tree.Tree { return rsmt.Tree(net) },
		Eval: evalSelection,
	}
	params, err := policy.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("trained selection-policy weights (α1 ‖r−p‖, α2 dist_T, α3 min-dist, α4 HPWL):")
	keys := make([]int, 0, len(params))
	for n := range params {
		keys = append(keys, n)
	}
	sort.Ints(keys)
	for _, n := range keys {
		p := params[n]
		fmt.Printf("  degree %3d: α = (%.3f, %.3f, %.3f, %.3f)\n", n, p.A1, p.A2, p.A3, p.A4)
	}
	fmt.Println("\nto adopt these defaults, update DefaultParams in internal/policy.")
}

// evalSelection scores a pin selection by the hypervolume gained when one
// local-search step regenerates exactly those pins on the RSMT seed.
func evalSelection(net tree.Net, base *tree.Tree, sel []int) float64 {
	ref := pareto.Sol{
		W: base.Wirelength() * 2,
		D: base.MaxDelay() * 2,
	}
	before := pareto.Hypervolume([]pareto.Sol{base.Sol()}, ref)
	after, err := core.StepHypervolume(net, base, sel, ref)
	if err != nil {
		return 0
	}
	return after - before
}
