// Quickstart: route one net with PatLabor and print its full Pareto
// frontier — every wirelength/delay tradeoff the net admits, with one
// routing tree per point.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"patlabor"
)

func main() {
	// A degree-6 net: the driver sits right of a sink cluster, the shape
	// that makes wirelength and delay genuinely compete.
	net := patlabor.NewNet(
		patlabor.Pt(180, 70), // source (driver)
		patlabor.Pt(50, 0),
		patlabor.Pt(50, 140),
		patlabor.Pt(100, 100),
		patlabor.Pt(140, 160),
		patlabor.Pt(20, 60),
	)

	cands, err := patlabor.Route(net, patlabor.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("degree-%d net: %d Pareto-optimal routing trees\n\n", net.Degree(), len(cands))
	fmt.Println("   wirelength   delay   tree")
	for i, c := range cands {
		fmt.Printf("%d  %-11d  %-6d  %d nodes, %d Steiner points\n",
			i+1, c.Sol.W, c.Sol.D, c.Val.Len(), steinerCount(c))
	}

	// The endpoints of the frontier are the two classic single-objective
	// optima; everything between them is invisible to single-objective
	// routers.
	fmt.Printf("\nmin wirelength: %d (the RSMT objective)\n", cands[0].Sol.W)
	fmt.Printf("min delay:      %d (the shortest-path-tree objective)\n",
		cands[len(cands)-1].Sol.D)

	// Each candidate is a concrete routing tree; print the cheapest one.
	fmt.Println("\nedges of the minimum-wirelength tree:")
	t := cands[0].Val
	for i, p := range t.Parent {
		if p >= 0 {
			fmt.Printf("  %v -- %v\n", t.Nodes[p].P, t.Nodes[i].P)
		}
	}
}

func steinerCount(c patlabor.Candidate) int {
	n := 0
	for _, nd := range c.Val.Nodes {
		if nd.IsSteiner() {
			n++
		}
	}
	return n
}
